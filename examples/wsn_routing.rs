//! The paper's wireless-sensor-network case study end to end: model a
//! query-routing grid, check the attempts bound, and repair both the model
//! (§V-A.1) and the data (§V-A.2).
//!
//! Run with `cargo run --release --example wsn_routing`.

use trusted_ml::checker::Checker;
use trusted_ml::logic::parse_query;
use trusted_ml::repair::{DataRepair, ModelRepair, RepairStatus};
use trusted_ml::wsn::{
    attempts_property, build_dtmc, classes, generate_traces, model_spec, repair_template, WsnConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = WsnConfig::default();
    let chain = build_dtmc(&config)?;
    let checker = Checker::new();
    let q = parse_query("R{\"attempts\"}=? [ F \"delivered\" ]")?;
    println!(
        "{0}x{0} grid, expected routing attempts field->station: {1:.2}",
        config.n,
        checker.query_dtmc(&chain, &q)?[config.source()]
    );

    // --- Model repair: meet X = 40 by lowering ignore probabilities.
    let template = repair_template(&config)?;
    let out = ModelRepair::new().repair_dtmc(&chain, &attempts_property(40.0), &template)?;
    println!("\nmodel repair for X = 40: {:?}", out.status);
    for (name, v) in &out.parameters {
        println!("  ignore-probability correction {name} = {v:.4}");
    }

    // X = 19 is beyond any small perturbation.
    let out19 = ModelRepair::new().repair_dtmc(&chain, &attempts_property(19.0), &template)?;
    println!("model repair for X = 19: {:?}", out19.status);
    assert_eq!(out19.status, RepairStatus::Infeasible);

    // --- Data repair: noisy traces inflate the learned ignore rates; drop
    // the corrupt classes so the re-learned model meets X = 19.
    let dataset = generate_traces(&config, 120, 40.0, 42)?;
    let out_data = DataRepair::new().keep_class(classes::FORWARD_SUCCESS).repair(
        &dataset,
        &model_spec(&config),
        &attempts_property(19.0),
    )?;
    println!("\ndata repair for X = 19: {:?} (verified {})", out_data.status, out_data.verified);
    for (class, w) in &out_data.keep_weights {
        println!("  keep weight for {class}: {w:.4}");
    }
    let repaired = out_data.model.expect("repaired model");
    println!(
        "re-learned expected attempts: {:.2}",
        checker.query_dtmc(&repaired, &q)?[config.source()]
    );
    Ok(())
}
