//! The introduction's motivating lane-change property:
//! `P > 0.99 [ F ("changedLane" | "reducedSpeed") ]` — a car that sees a
//! slow truck must eventually change lanes or slow down with high
//! probability. We model a small reactive controller, find that a learned
//! (slightly miscalibrated) version violates the property, and run the
//! full TML pipeline: verify → model repair → data repair.
//!
//! Run with `cargo run --release --example lane_change`.

use trusted_ml::logic::parse_formula;
use trusted_ml::models::{Path, TraceDataset};
use trusted_ml::repair::pipeline::{TmlOutcome, TmlPipeline};
use trusted_ml::repair::{ModelSpec, PerturbationTemplate};

// States: 0 = cruising behind the truck, 1 = changed lane, 2 = reduced
// speed, 3 = still tailgating after the window closed (bad outcome).
const CRUISE: usize = 0;
const CHANGED: usize = 1;
const REDUCED: usize = 2;
const TAILGATE: usize = 3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Synthetic driving logs: each trace records what the controller did
    // when stuck behind the truck. The "sensor-glitch" class records runs
    // where the controller froze (kept tailgating) — corrupt data that
    // drags the learned model below the safety bar.
    let mut logs = TraceDataset::new();
    let nominal = logs.add_class("nominal");
    let glitch = logs.add_class("sensor-glitch");
    logs.push(nominal, Path::from_states(vec![CRUISE, CHANGED, CHANGED]), 70.0)?;
    logs.push(nominal, Path::from_states(vec![CRUISE, REDUCED, REDUCED]), 26.0)?;
    logs.push(glitch, Path::from_states(vec![CRUISE, TAILGATE, TAILGATE]), 4.0)?;

    let spec = ModelSpec::new(4).label(CHANGED, "changedLane").label(REDUCED, "reducedSpeed");
    let phi = parse_formula("P>0.99 [ F (\"changedLane\" | \"reducedSpeed\") ]")?;
    println!("property: {phi}");

    // Allow the controller's reaction probabilities to be nudged a little.
    let mut template = PerturbationTemplate::new();
    let v = template.parameter("v", 0.0, 0.008);
    template.nudge(CRUISE, CHANGED, v, 1.0)?;
    template.nudge(CRUISE, TAILGATE, v, -1.0)?;

    let outcome =
        TmlPipeline::new(spec, phi).with_model_repair(template).with_data_repair().run(&logs)?;

    match &outcome {
        TmlOutcome::Satisfied { .. } => println!("learned model already satisfies the property"),
        TmlOutcome::ModelRepaired { outcome } => {
            println!("model repair succeeded: parameters {:?}", outcome.parameters);
        }
        TmlOutcome::DataRepaired { outcome, model_repair_status } => {
            println!("model repair: {model_repair_status:?}; data repair succeeded");
            for (class, w) in &outcome.keep_weights {
                println!("  keep weight for {class}: {w:.4}");
            }
        }
        TmlOutcome::Unrepairable { .. } => println!("no configured repair suffices"),
    }
    let model = outcome.model().expect("trusted model");
    println!(
        "trusted model: P(cruise -> changedLane) = {:.4}, P(cruise -> tailgate) = {:.4}",
        model.probability(CRUISE, CHANGED),
        model.probability(CRUISE, TAILGATE),
    );
    assert!(outcome.is_trusted());
    Ok(())
}
