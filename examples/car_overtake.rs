//! The paper's autonomous-car case study: learn a reward from an expert
//! overtake demonstration by max-entropy IRL, observe that the greedy
//! policy collides with the van, and repair the reward (§V-B).
//!
//! Run with `cargo run --release --example car_overtake`.

use trusted_ml::car;
use trusted_ml::repair::{RepairStatus, RewardRepair};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mdp = car::build_mdp()?;
    let features = car::features()?;

    println!("expert demonstration: {:?}", car::expert_path().states);

    // Inverse reinforcement learning on the single demonstration.
    let irl = car::learn_reward(&mdp)?;
    println!(
        "learned reward(s) = {:.3}*lane + {:.3}*dist_unsafe + {:.3}*goal",
        irl.theta[0], irl.theta[1], irl.theta[2]
    );

    let policy = car::greedy_policy(&mdp, &irl.theta)?;
    let trace = car::rollout(&mdp, &policy, 25);
    println!("greedy rollout under the learned reward: {trace:?}");
    println!("safe: {}", car::policy_is_safe(&mdp, &policy));
    assert!(!car::policy_is_safe(&mdp, &policy), "IRL alone learns the unsafe shortcut");

    // Reward repair: force Q(S1, left) > Q(S1, forward).
    let outcome = RewardRepair::new().q_constraint_repair(
        &mdp,
        &features,
        &irl.theta,
        &[car::q_repair_constraint()],
        car::GAMMA,
        3.0,
    )?;
    assert_eq!(outcome.status, RepairStatus::Repaired);
    println!(
        "\nrepaired reward(s) = {:.3}*lane + {:.3}*dist_unsafe + {:.3}*goal (cost {:.4})",
        outcome.theta[0], outcome.theta[1], outcome.theta[2], outcome.cost
    );
    let repaired_policy = car::greedy_policy(&mdp, &outcome.theta)?;
    let repaired_trace = car::rollout(&mdp, &repaired_policy, 25);
    println!("greedy rollout under the repaired reward: {repaired_trace:?}");
    println!("safe: {}", car::policy_is_safe(&mdp, &repaired_policy));
    assert!(car::policy_is_safe(&mdp, &repaired_policy));
    Ok(())
}
