//! Closed-form sensitivity analysis with the parametric engine: derive the
//! WSN routing cost as a *rational function* of the repair parameters
//! (Proposition 2's reduction), then read off values and exact gradients —
//! the artifact that PRISM + AMPL exchange in the paper.
//!
//! Run with `cargo run --release --example parametric_analysis`.

use trusted_ml::checker::Checker;
use trusted_ml::logic::parse_query;
use trusted_ml::wsn::{build_dtmc, repair_template, WsnConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The 2×2 grid keeps the closed form small enough to print and exact
    // in f64 (see EXPERIMENTS.md for the degree threshold discussion).
    let config = WsnConfig { n: 2, ..Default::default() };
    let chain = build_dtmc(&config)?;
    let template = repair_template(&config)?;
    let pdtmc = template.apply(&chain)?;

    let target = pdtmc.labeling().mask("delivered");
    let symbolic = pdtmc.expected_reward("attempts", &target)?;
    let f = &symbolic[config.source()];

    println!("expected routing attempts as a rational function of (p, q):");
    println!("  f(p, q) = {f}");
    println!(
        "  numerator terms: {}, denominator terms: {}, combined degree: {}",
        f.numerator().num_terms(),
        f.denominator().num_terms(),
        f.complexity()
    );

    // On the 2×2 grid every node lies on an edge row, so the interior
    // correction q has no effect — the closed form depends on p alone and
    // df/dq is identically zero, which the table makes visible.
    println!("\nsensitivity analysis along the diagonal p = q:");
    println!("{:>8} {:>12} {:>14} {:>14}", "p=q", "f(p,q)", "df/dp", "df/dq");
    for i in 0..6 {
        let v = 0.02 * i as f64;
        let point = [v, v];
        let value = f.eval(&point)?;
        let grad = f.grad(&point)?;
        println!("{v:>8.2} {value:>12.4} {:>14.4} {:>14.4}", grad[0], grad[1]);
    }

    // Cross-check one point against the concrete checker.
    let point = [0.05, 0.03];
    let inst = pdtmc.instantiate(&point)?;
    let q = parse_query("R{\"attempts\"}=? [ F \"delivered\" ]")?;
    let oracle = Checker::new().query_dtmc(&inst, &q)?[config.source()];
    let sym = f.eval(&point)?;
    println!("\ncross-check at (0.05, 0.03): symbolic {sym:.10} vs checker {oracle:.10}");
    assert!((sym - oracle).abs() < 1e-9);
    println!("agreement to 1e-9 — the closed form is exact here.");
    Ok(())
}
