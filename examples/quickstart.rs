//! Quickstart: build a model, check a PCTL property, repair the model when
//! it fails, and re-verify.
//!
//! Run with `cargo run --example quickstart`.

use trusted_ml::checker::Checker;
use trusted_ml::logic::parse_formula;
use trusted_ml::models::DtmcBuilder;
use trusted_ml::repair::{ModelRepair, PerturbationTemplate, RepairStatus};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A communication channel: each attempt succeeds with probability 0.8,
    // is retried with probability 0.15, and hard-fails with probability
    // 0.05.
    let mut b = DtmcBuilder::new(3);
    b.transition(0, 1, 0.80)?; // delivered
    b.transition(0, 0, 0.15)?; // retry
    b.transition(0, 2, 0.05)?; // failed
    b.transition(1, 1, 1.0)?;
    b.transition(2, 2, 1.0)?;
    b.label(1, "delivered")?;
    b.label(2, "failed")?;
    let channel = b.build()?;

    // Requirement: messages are eventually delivered with probability 0.97.
    let phi = parse_formula("P>=0.97 [ F \"delivered\" ]")?;
    let checker = Checker::new();
    let result = checker.check_dtmc(&channel, &phi)?;
    println!("property: {phi}");
    println!(
        "base model: P(F delivered) = {:.4} -> satisfied: {}",
        result.value_at_initial().unwrap_or(f64::NAN),
        result.holds()
    );

    // The model fails (0.8 / 0.85 ≈ 0.941). Allow shifting failure mass to
    // the retry loop (e.g. by adding a retransmission buffer).
    let mut template = PerturbationTemplate::new();
    let v = template.parameter("v", 0.0, 0.045);
    template.nudge(0, 0, v, 1.0)?; // retries go up…
    template.nudge(0, 2, v, -1.0)?; // …hard failures go down

    let outcome = ModelRepair::new().repair_dtmc(&channel, &phi, &template)?;
    println!("\nrepair status: {:?}", outcome.status);
    assert_eq!(outcome.status, RepairStatus::Repaired);
    for (name, value) in &outcome.parameters {
        println!("  parameter {name} = {value:.5}");
    }
    println!("  perturbation cost ||Z||_F^2 = {:.6}", outcome.cost);

    let repaired = outcome.model.expect("repaired model");
    let after = checker.check_dtmc(&repaired, &phi)?;
    println!(
        "repaired model: P(F delivered) = {:.4} -> satisfied: {}",
        after.value_at_initial().unwrap_or(f64::NAN),
        after.holds()
    );
    assert!(after.holds());
    Ok(())
}
