use crate::{Field, NumericsError};

/// A row-major dense matrix over an arbitrary [`Field`].
///
/// Dense matrices are used for the (small) linear systems that arise when
/// solving unbounded-until probabilities and expected rewards on the
/// "maybe" fragment of a Markov chain, and — instantiated with rational
/// functions — for parametric state elimination.
///
/// # Example
///
/// ```
/// use tml_numerics::DenseMatrix;
///
/// # fn main() -> Result<(), tml_numerics::NumericsError> {
/// let m = DenseMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// assert_eq!(m.rows(), 2);
/// assert_eq!(*m.get(1, 0), 3.0);
/// let v = m.mat_vec(&[1.0, 1.0])?;
/// assert_eq!(v, vec![3.0, 7.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Field> DenseMatrix<T> {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix { rows, cols, data: vec![T::zero(); rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, T::one());
        }
        m
    }

    /// Builds a matrix from a vector of rows.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::ShapeMismatch`] if the rows do not all have
    /// the same length or if there are zero rows.
    pub fn from_rows(rows: Vec<Vec<T>>) -> Result<Self, NumericsError> {
        let nrows = rows.len();
        if nrows == 0 {
            return Err(NumericsError::ShapeMismatch {
                detail: "cannot build a matrix from zero rows".into(),
            });
        }
        let ncols = rows[0].len();
        if rows.iter().any(|r| r.len() != ncols) {
            return Err(NumericsError::ShapeMismatch {
                detail: format!("rows have unequal lengths (expected {ncols})"),
            });
        }
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            data.extend(r);
        }
        Ok(DenseMatrix { rows: nrows, cols: ncols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the entry at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()` or `c >= cols()`.
    pub fn get(&self, r: usize, c: usize) -> &T {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &self.data[r * self.cols + c]
    }

    /// Mutably borrow the entry at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()` or `c >= cols()`.
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut T {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &mut self.data[r * self.cols + c]
    }

    /// Overwrites the entry at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()` or `c >= cols()`.
    pub fn set(&mut self, r: usize, c: usize, value: T) {
        *self.get_mut(r, c) = value;
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    pub fn row(&self, r: usize) -> &[T] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::ShapeMismatch`] if `x.len() != cols()`.
    pub fn mat_vec(&self, x: &[T]) -> Result<Vec<T>, NumericsError> {
        if x.len() != self.cols {
            return Err(NumericsError::ShapeMismatch {
                detail: format!("mat_vec: {} columns vs vector of length {}", self.cols, x.len()),
            });
        }
        let mut out = Vec::with_capacity(self.rows);
        for r in 0..self.rows {
            let mut acc = T::zero();
            for (a, b) in self.row(r).iter().zip(x) {
                if !a.is_zero() && !b.is_zero() {
                    acc = acc.add(&a.mul(b));
                }
            }
            out.push(acc);
        }
        Ok(out)
    }

    /// Matrix–matrix product `A·B`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::ShapeMismatch`] if `self.cols() != rhs.rows()`.
    pub fn mat_mul(&self, rhs: &DenseMatrix<T>) -> Result<DenseMatrix<T>, NumericsError> {
        if self.cols != rhs.rows {
            return Err(NumericsError::ShapeMismatch {
                detail: format!(
                    "mat_mul: {}x{} times {}x{}",
                    self.rows, self.cols, rhs.rows, rhs.cols
                ),
            });
        }
        let mut out: DenseMatrix<T> = DenseMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.get(i, k);
                if aik.is_zero() {
                    continue;
                }
                for j in 0..rhs.cols {
                    let b = rhs.get(k, j);
                    if b.is_zero() {
                        continue;
                    }
                    let cur = out.get(i, j).clone();
                    out.set(i, j, cur.add(&aik.mul(b)));
                }
            }
        }
        Ok(out)
    }

    /// Returns the transpose of the matrix.
    pub fn transpose(&self) -> DenseMatrix<T> {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c).clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_mat_vec_is_identity() {
        let id: DenseMatrix<f64> = DenseMatrix::identity(3);
        let x = vec![1.0, -2.0, 0.5];
        assert_eq!(id.mat_vec(&x).unwrap(), x);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = DenseMatrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]).unwrap_err();
        assert!(matches!(err, NumericsError::ShapeMismatch { .. }));
    }

    #[test]
    fn from_rows_rejects_empty() {
        let err = DenseMatrix::<f64>::from_rows(vec![]).unwrap_err();
        assert!(matches!(err, NumericsError::ShapeMismatch { .. }));
    }

    #[test]
    fn mat_mul_small() {
        let a = DenseMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = DenseMatrix::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let c = a.mat_mul(&b).unwrap();
        assert_eq!(c, DenseMatrix::from_rows(vec![vec![2.0, 1.0], vec![4.0, 3.0]]).unwrap());
    }

    #[test]
    fn mat_vec_shape_error() {
        let a = DenseMatrix::from_rows(vec![vec![1.0, 2.0]]).unwrap();
        assert!(a.mat_vec(&[1.0]).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = DenseMatrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(*a.transpose().get(2, 1), 6.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let a: DenseMatrix<f64> = DenseMatrix::zeros(2, 2);
        let _ = a.get(2, 0);
    }
}
