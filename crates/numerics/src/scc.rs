//! SCC condensation and block-decomposed fixed-point solves.
//!
//! The transition graphs of large Markov models are rarely one big knot:
//! they decompose into strongly connected components whose condensation is
//! a DAG. For the fixed-point systems `x = A·x + b` that reachability and
//! expected-reward checking produce, that structure is a gift — `x_i`
//! depends on `x_j` only when `A[i][j] ≠ 0`, so solving components in
//! dependency order (successors first) turns one gigantic iterative solve
//! into a sequence of small ones:
//!
//! * **trivial components** (a single state) resolve by *back-substitution*
//!   in closed form — they never enter an iterative sweep;
//! * **small non-trivial components** are solved exactly by dense
//!   elimination on the block;
//! * **large components** fall back to Gauss–Seidel restricted to the
//!   block, with everything already solved folded in as constants.
//!
//! Before solving, the matrix is symmetrically permuted so each component
//! occupies a contiguous row/column block ([`CsrMatrix::permute_symmetric`]),
//! which makes the block sweeps stream through memory in order.
//!
//! On layered models (DAGs of small components) this replaces the
//! `O(depth)` sweeps a monolithic Gauss–Seidel needs to propagate values
//! backward through the graph with a single back-substitution pass.

use tml_telemetry::{counter, span};

use crate::budget::{Budget, Exhaustion};
use crate::iterative::{gs_sweep_range, IterOptions, IterRun};
use crate::{CsrMatrix, NumericsError};

/// Components of a directed graph, condensed to a DAG.
///
/// Components are listed in **dependency order**: for every edge `u → v`
/// with `comp_of[u] ≠ comp_of[v]`, `comp_of[v] < comp_of[u]`. Equivalently
/// the order is a reverse topological sort of the condensation — sinks
/// first — which is exactly the order in which the fixed-point systems of
/// this crate must be solved (a state's value depends on its successors').
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Condensation {
    /// Component index of each node, indexing into `components`.
    pub comp_of: Vec<usize>,
    /// The components in dependency order; nodes within a component are
    /// sorted ascending.
    pub components: Vec<Vec<usize>>,
}

impl Condensation {
    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Number of trivial (single-node) components.
    pub fn num_trivial(&self) -> usize {
        self.components.iter().filter(|c| c.len() == 1).count()
    }

    /// Size of the largest component.
    pub fn largest(&self) -> usize {
        self.components.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The node order that lists components contiguously in dependency
    /// order (`order[new] = old`), suitable for
    /// [`CsrMatrix::permute_symmetric`].
    pub fn permutation(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.comp_of.len());
        for comp in &self.components {
            order.extend_from_slice(comp);
        }
        order
    }
}

/// Condenses the graph whose node `v` has successors `succ(v)`.
///
/// Iterative Tarjan: linear in nodes plus edges, no recursion, so it is
/// safe on million-state chains. Successor slices may contain duplicates
/// and self-loops; both are handled.
pub fn condensation_from<'a, F>(n: usize, succ: F) -> Condensation
where
    F: Fn(usize) -> &'a [usize],
{
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut comp_of = vec![UNVISITED; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut components: Vec<Vec<usize>> = Vec::new();
    let mut next_index = 0usize;
    // (node, position in its successor slice)
    let mut call: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        call.push((root, 0));
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut pos)) = call.last_mut() {
            let succs = succ(v);
            if *pos < succs.len() {
                let w = succs[*pos];
                *pos += 1;
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] && index[w] < low[v] {
                    low[v] = index[w];
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    if low[v] < low[parent] {
                        low[parent] = low[v];
                    }
                }
                if low[v] == index[v] {
                    // v roots a component: pop it off the node stack.
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp_of[w] = components.len();
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    components.push(comp);
                }
            }
        }
    }
    Condensation { comp_of, components }
}

/// Condenses the sparsity structure of a square [`CsrMatrix`].
pub fn condensation_csr(a: &CsrMatrix) -> Condensation {
    condensation_from(a.rows(), |v| a.row_cols(v))
}

/// Structural statistics of an SCC-decomposed solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SccStats {
    /// Number of strongly connected components.
    pub components: usize,
    /// Components resolved by closed-form back-substitution.
    pub trivial: usize,
    /// States in the largest component (the solve degenerates to a
    /// monolithic sweep as this approaches the state count).
    pub largest: usize,
    /// Non-trivial components solved exactly by dense elimination.
    pub dense_blocks: usize,
    /// Non-trivial components solved iteratively (Gauss–Seidel).
    pub iterative_blocks: usize,
}

/// Outcome of [`solve_scc_budgeted`].
#[derive(Debug, Clone, PartialEq)]
pub struct SccRun {
    /// The best-effort solution, in the caller's original state order.
    pub run: IterRun,
    /// How the state space decomposed.
    pub stats: SccStats,
}

/// Non-trivial components up to this many states are solved exactly by
/// dense elimination on the block; larger blocks use Gauss–Seidel.
const DENSE_BLOCK_LIMIT: usize = 64;

/// Poll the budget every this many back-substituted states, so the
/// `Instant::now` cost of a deadline check does not dominate million-state
/// back-substitution passes.
const BUDGET_POLL_STRIDE: usize = 4096;

/// Solves `x = A·x + b` by SCC decomposition.
///
/// The matrix is condensed and symmetrically permuted so that every
/// component is a contiguous block in dependency order, then blocks are
/// solved in sequence: trivial blocks by back-substitution, small blocks
/// by dense elimination on `(I − A_block)`, large blocks by in-place
/// Gauss–Seidel sweeps over the block's row range (states of earlier
/// blocks are already final and act as constants).
///
/// Iteration accounting: back-substitution and dense blocks together are
/// charged as one sweep-equivalent; each Gauss–Seidel block adds its own
/// sweep count. The budget is polled between blocks and once per block
/// sweep; on exhaustion the solved prefix is kept and the remaining states
/// stay at zero, with `run.stopped` carrying the cause.
///
/// # Errors
///
/// Returns [`NumericsError::ShapeMismatch`] on dimension mismatch — like
/// the other budgeted solvers, never `NoConvergence`.
pub fn solve_scc_budgeted(
    a: &CsrMatrix,
    b: &[f64],
    opts: IterOptions,
    budget: &Budget,
) -> Result<SccRun, NumericsError> {
    if a.rows() != a.cols() {
        return Err(NumericsError::ShapeMismatch {
            detail: format!("scc solver requires square matrix, got {}x{}", a.rows(), a.cols()),
        });
    }
    if b.len() != a.rows() {
        return Err(NumericsError::ShapeMismatch {
            detail: format!("dimension mismatch: matrix {}x{}, b {}", a.rows(), a.cols(), b.len()),
        });
    }
    let n = a.rows();
    let _span = span!("numerics.scc_solve", states = n, nnz = a.nnz());
    let cond = condensation_csr(a);
    let order = cond.permutation();
    let ap = a.permute_symmetric(&order)?;
    let bp: Vec<f64> = order.iter().map(|&old| b[old]).collect();

    let mut stats = SccStats {
        components: cond.num_components(),
        trivial: 0,
        largest: cond.largest(),
        dense_blocks: 0,
        iterative_blocks: 0,
    };
    counter!("numerics.scc.components", stats.components as u64);

    let mut x = vec![0.0_f64; n];
    let mut scratch = DenseScratch::new();
    let mut sweeps: u64 = 1; // the back-substitution pass itself
    let mut worst_delta = 0.0_f64;
    let mut converged = true;
    let mut stopped: Option<Exhaustion> = None;
    let mut since_poll = 0usize;

    let mut start = 0usize;
    'blocks: for comp in &cond.components {
        let len = comp.len();
        let end = start + len;
        since_poll += len;
        if since_poll >= BUDGET_POLL_STRIDE || len > 1 {
            since_poll = 0;
            if let Some(cause) = budget.check(sweeps) {
                stopped = Some(cause);
                converged = false;
                break 'blocks;
            }
        }
        if len == 1 {
            stats.trivial += 1;
            // Closed form: x_s = (b_s + Σ_{c≠s} a_sc·x_c) / (1 − a_ss).
            // All off-block columns belong to earlier (solved) blocks.
            // No span here: million-state chains are all trivial blocks,
            // and a span per state would swamp the trace.
            gs_sweep_range(&ap, &bp, &mut x, start, end);
        } else if len <= DENSE_BLOCK_LIMIT {
            let _span = span!("numerics.scc.block", states = len);
            if solve_block_dense(&ap, &bp, &mut x, start, end, &mut scratch) {
                stats.dense_blocks += 1;
            } else {
                // Singular (I − A_block): fall back to sweeps.
                stats.iterative_blocks += 1;
                if !solve_block_gs(
                    &ap,
                    &bp,
                    &mut x,
                    start,
                    end,
                    opts,
                    budget,
                    &mut sweeps,
                    &mut worst_delta,
                    &mut stopped,
                ) {
                    converged = false;
                    if stopped.is_some() {
                        break 'blocks;
                    }
                }
            }
        } else {
            let _span = span!("numerics.scc.block", states = len);
            stats.iterative_blocks += 1;
            if !solve_block_gs(
                &ap,
                &bp,
                &mut x,
                start,
                end,
                opts,
                budget,
                &mut sweeps,
                &mut worst_delta,
                &mut stopped,
            ) {
                converged = false;
                if stopped.is_some() {
                    break 'blocks;
                }
            }
        }
        start = end;
    }
    counter!("numerics.solve.sweeps", sweeps);

    // Undo the permutation: x is indexed by new position, order[new] = old.
    let mut result = vec![0.0_f64; n];
    for (new, &old) in order.iter().enumerate() {
        result[old] = x[new];
    }
    Ok(SccRun {
        run: IterRun {
            x: result,
            iterations: sweeps as usize,
            delta: worst_delta,
            converged,
            stopped,
        },
        stats,
    })
}

/// Reusable scratch for the small dense block solves: one flat
/// `DENSE_BLOCK_LIMIT²` matrix plus a right-hand side, shared across every
/// block of a solve so the hot path performs no per-block allocation.
struct DenseScratch {
    a: Vec<f64>,
    rhs: Vec<f64>,
}

impl DenseScratch {
    fn new() -> Self {
        DenseScratch {
            a: vec![0.0; DENSE_BLOCK_LIMIT * DENSE_BLOCK_LIMIT],
            rhs: vec![0.0; DENSE_BLOCK_LIMIT],
        }
    }
}

/// Solves one block exactly: assembles `(I − A_block) y = rhs` on the
/// reusable scratch with the already-solved outside contributions folded
/// into `rhs`, runs in-place Gaussian elimination with partial pivoting,
/// and writes the solution directly into `x[start..end]`. Returns `false`
/// (leaving `x` untouched) when the block matrix is singular, in which
/// case the caller falls back to iterating the block.
fn solve_block_dense(
    ap: &CsrMatrix,
    bp: &[f64],
    x: &mut [f64],
    start: usize,
    end: usize,
    scratch: &mut DenseScratch,
) -> bool {
    let k = end - start;
    let a = &mut scratch.a[..k * k];
    a.fill(0.0);
    let rhs = &mut scratch.rhs[..k];
    for i in 0..k {
        let r = start + i;
        let mut acc = bp[r];
        a[i * k + i] = 1.0;
        for (c, v) in ap.row_entries(r) {
            if (start..end).contains(&c) {
                a[i * k + (c - start)] -= v;
            } else {
                acc += v * x[c];
            }
        }
        rhs[i] = acc;
    }
    for col in 0..k {
        let mut piv = col;
        let mut best = a[col * k + col].abs();
        for r in col + 1..k {
            let cand = a[r * k + col].abs();
            if cand > best {
                best = cand;
                piv = r;
            }
        }
        if best < 1e-300 {
            return false;
        }
        if piv != col {
            for c in col..k {
                a.swap(col * k + c, piv * k + c);
            }
            rhs.swap(col, piv);
        }
        let d = a[col * k + col];
        for r in col + 1..k {
            let f = a[r * k + col] / d;
            if f == 0.0 {
                continue;
            }
            a[r * k + col] = 0.0;
            for c in col + 1..k {
                a[r * k + c] -= f * a[col * k + c];
            }
            rhs[r] -= f * rhs[col];
        }
    }
    for i in (0..k).rev() {
        let mut acc = rhs[i];
        for c in i + 1..k {
            acc -= a[i * k + c] * x[start + c];
        }
        x[start + i] = acc / a[i * k + i];
    }
    true
}

/// Gauss–Seidel on one block's row range until the block converges, the
/// iteration cap is hit, or the budget stops the run. Returns whether the
/// block converged; accumulates sweep count and worst residual, and
/// records a budget stop in `stopped`.
#[allow(clippy::too_many_arguments)]
fn solve_block_gs(
    ap: &CsrMatrix,
    bp: &[f64],
    x: &mut [f64],
    start: usize,
    end: usize,
    opts: IterOptions,
    budget: &Budget,
    sweeps: &mut u64,
    worst_delta: &mut f64,
    stopped: &mut Option<Exhaustion>,
) -> bool {
    let mut delta = f64::INFINITY;
    for _ in 0..opts.max_iterations {
        if let Some(cause) = budget.check(*sweeps) {
            *stopped = Some(cause);
            if delta.is_finite() && delta > *worst_delta {
                *worst_delta = delta;
            }
            return false;
        }
        delta = gs_sweep_range(ap, bp, x, start, end);
        *sweeps += 1;
        if delta <= opts.tolerance {
            if delta > *worst_delta {
                *worst_delta = delta;
            }
            return true;
        }
    }
    if delta.is_finite() && delta > *worst_delta {
        *worst_delta = delta;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Triplet;

    fn csr(n: usize, entries: &[(usize, usize, f64)]) -> CsrMatrix {
        let trips: Vec<Triplet> = entries.iter().map(|&(r, c, v)| Triplet::new(r, c, v)).collect();
        CsrMatrix::from_triplets(n, n, &trips).unwrap()
    }

    #[test]
    fn condensation_of_a_cycle_and_tail() {
        // 0 → 1 → 2 → 0 (cycle), 3 → 0 (tail).
        let cond = condensation_from(4, |v| {
            const ADJ: [&[usize]; 4] = [&[1], &[2], &[0], &[0]];
            ADJ[v]
        });
        assert_eq!(cond.num_components(), 2);
        assert_eq!(cond.components[0], vec![0, 1, 2]);
        assert_eq!(cond.components[1], vec![3]);
        assert_eq!(cond.comp_of[3], 1);
        assert_eq!(cond.largest(), 3);
        assert_eq!(cond.num_trivial(), 1);
    }

    #[test]
    fn dependency_order_puts_successors_first() {
        // 0 → 1 → 2: pure chain, components are singletons and every edge
        // u → v must satisfy comp_of[v] < comp_of[u].
        let cond = condensation_from(3, |v| {
            const ADJ: [&[usize]; 3] = [&[1], &[2], &[]];
            ADJ[v]
        });
        assert_eq!(cond.num_components(), 3);
        assert!(cond.comp_of[1] < cond.comp_of[0]);
        assert!(cond.comp_of[2] < cond.comp_of[1]);
    }

    #[test]
    fn permutation_is_a_permutation() {
        let a = csr(5, &[(0, 1, 0.5), (1, 0, 0.5), (2, 3, 1.0), (4, 2, 1.0)]);
        let cond = condensation_csr(&a);
        let mut order = cond.permutation();
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn chain_solved_by_back_substitution_alone() {
        // x_i = 0.9·x_{i+1}, x_9 = 0·x + 1  ⇒ x_i = 0.9^(9-i).
        let n = 10;
        let mut entries = Vec::new();
        for i in 0..n - 1 {
            entries.push((i, i + 1, 0.9));
        }
        let a = csr(n, &entries);
        let mut b = vec![0.0; n];
        b[n - 1] = 1.0;
        let out = solve_scc_budgeted(&a, &b, IterOptions::default(), &Budget::unlimited()).unwrap();
        assert!(out.run.converged);
        assert_eq!(out.stats.components, n);
        assert_eq!(out.stats.trivial, n);
        assert_eq!(out.stats.iterative_blocks, 0);
        // Exactly one sweep-equivalent: never entered an iterative sweep.
        assert_eq!(out.run.iterations, 1);
        for i in 0..n {
            let want = 0.9_f64.powi((n - 1 - i) as i32);
            assert!((out.run.x[i] - want).abs() < 1e-12, "state {i}");
        }
    }

    #[test]
    fn self_loops_resolve_in_closed_form() {
        // x = 0.5x + 1 ⇒ x = 2, still a trivial component.
        let a = csr(1, &[(0, 0, 0.5)]);
        let out =
            solve_scc_budgeted(&a, &[1.0], IterOptions::default(), &Budget::unlimited()).unwrap();
        assert!(out.run.converged);
        assert_eq!(out.stats.trivial, 1);
        assert!((out.run.x[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn nontrivial_blocks_match_gauss_seidel() {
        // Two coupled states feeding a third: one 2-cycle block + trivial.
        let a = csr(3, &[(0, 1, 0.5), (1, 0, 0.25), (0, 2, 0.3), (2, 2, 0.5)]);
        let b = vec![0.1, 0.2, 1.0];
        let scc = solve_scc_budgeted(&a, &b, IterOptions::default(), &Budget::unlimited()).unwrap();
        let gs = crate::iterative::gauss_seidel(&a, &b, &[0.0; 3], IterOptions::default()).unwrap();
        assert!(scc.run.converged);
        assert_eq!(scc.stats.components, 2);
        assert_eq!(scc.stats.dense_blocks, 1);
        for (got, want) in scc.run.x.iter().zip(&gs.x) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn large_block_takes_iterative_path() {
        // A single SCC bigger than DENSE_BLOCK_LIMIT: ring of 100 states
        // with damping, so the whole system is one iterative block.
        let n = 100;
        let mut entries = Vec::new();
        for i in 0..n {
            entries.push((i, (i + 1) % n, 0.7));
        }
        let a = csr(n, &entries);
        let b = vec![0.3; n];
        let out = solve_scc_budgeted(&a, &b, IterOptions::default(), &Budget::unlimited()).unwrap();
        assert!(out.run.converged);
        assert_eq!(out.stats.components, 1);
        assert_eq!(out.stats.iterative_blocks, 1);
        // Symmetric fixed point: x = 0.3 / (1 - 0.7) = 1.
        for v in &out.run.x {
            assert!((v - 1.0).abs() < 1e-8);
        }
    }

    #[test]
    fn budget_stop_is_reported() {
        let token = crate::CancelToken::new();
        token.cancel();
        let budget = Budget::unlimited().with_cancel_token(token);
        let a = csr(2, &[(0, 1, 0.5), (1, 0, 0.5)]);
        let out = solve_scc_budgeted(&a, &[1.0, 1.0], IterOptions::default(), &budget).unwrap();
        assert_eq!(out.run.stopped, Some(Exhaustion::Cancelled));
        assert!(!out.run.converged);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = CsrMatrix::from_triplets(2, 3, &[]).unwrap();
        assert!(solve_scc_budgeted(&a, &[0.0; 2], IterOptions::default(), &Budget::unlimited())
            .is_err());
        let sq = csr(2, &[]);
        assert!(solve_scc_budgeted(&sq, &[0.0; 3], IterOptions::default(), &Budget::unlimited())
            .is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::Triplet;
    use proptest::prelude::*;

    proptest! {
        /// The component order is a valid reverse topological order of the
        /// condensation DAG: every edge points into the same or an earlier
        /// component, and the components partition the nodes.
        #[test]
        fn condensation_is_reverse_topological(
            edges in proptest::collection::vec((0usize..20, 0usize..20), 0..60),
        ) {
            let n = 20;
            let mut adj = vec![Vec::new(); n];
            for &(u, v) in &edges {
                adj[u].push(v);
            }
            let cond = condensation_from(n, |v| &adj[v][..]);
            let mut seen = vec![false; n];
            for comp in &cond.components {
                for &v in comp {
                    prop_assert!(!seen[v]);
                    seen[v] = true;
                }
            }
            prop_assert!(seen.into_iter().all(|s| s));
            for &(u, v) in &edges {
                prop_assert!(
                    cond.comp_of[v] <= cond.comp_of[u],
                    "edge {u}->{v} violates dependency order"
                );
            }
        }

        /// SCC-decomposed solves agree with monolithic Gauss–Seidel on
        /// random strictly sub-stochastic systems.
        #[test]
        fn scc_solve_matches_gauss_seidel(
            raw in proptest::collection::vec(0.0_f64..1.0, 36),
            b in proptest::collection::vec(0.0_f64..1.0, 6),
        ) {
            let n = 6;
            let mut triplets = Vec::new();
            for r in 0..n {
                let row: Vec<f64> = (0..n).map(|c| raw[r * n + c]).collect();
                let sum: f64 = row.iter().sum();
                let scale = if sum > 0.0 { 0.9 / sum } else { 0.0 };
                for (c, v) in row.iter().enumerate() {
                    // Sparsify: drop small entries so varied SCC structure
                    // appears instead of one dense block.
                    if *v > 0.3 {
                        triplets.push(Triplet::new(r, c, v * scale));
                    }
                }
            }
            let a = CsrMatrix::from_triplets(n, n, &triplets).unwrap();
            let opts = IterOptions { tolerance: 1e-12, max_iterations: 200_000 };
            let scc = solve_scc_budgeted(&a, &b, opts, &Budget::unlimited()).unwrap();
            let gs = crate::iterative::gauss_seidel(&a, &b, &vec![0.0; n], opts).unwrap();
            prop_assert!(scc.run.converged);
            for (x, y) in scc.run.x.iter().zip(&gs.x) {
                prop_assert!((x - y).abs() < 1e-8, "scc {x} vs gs {y}");
            }
        }
    }
}
