use crate::NumericsError;

/// A `(row, col, value)` entry used to assemble a [`CsrMatrix`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triplet {
    /// Row index.
    pub row: usize,
    /// Column index.
    pub col: usize,
    /// Entry value.
    pub value: f64,
}

impl Triplet {
    /// Convenience constructor.
    pub fn new(row: usize, col: usize, value: f64) -> Self {
        Triplet { row, col, value }
    }
}

/// Minimum number of stored entries before [`CsrMatrix::mat_vec`]
/// distributes rows over threads; below this the per-dispatch overhead of
/// spawning workers exceeds the multiply itself.
pub const PAR_NNZ_THRESHOLD: usize = 16_384;

/// A compressed-sparse-row matrix over `f64`.
///
/// Used for the transition matrices of large Markov chains where dense
/// storage would be wasteful. Duplicate `(row, col)` entries passed to
/// [`CsrMatrix::from_triplets`] are summed, matching the usual sparse
/// assembly convention.
///
/// # Example
///
/// ```
/// use tml_numerics::{CsrMatrix, Triplet};
///
/// # fn main() -> Result<(), tml_numerics::NumericsError> {
/// let m = CsrMatrix::from_triplets(
///     2,
///     2,
///     &[Triplet::new(0, 0, 0.5), Triplet::new(0, 1, 0.5), Triplet::new(1, 1, 1.0)],
/// )?;
/// assert_eq!(m.mat_vec(&[1.0, 2.0])?, vec![1.5, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Assembles a CSR matrix from triplets, summing duplicates.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::IndexOutOfBounds`] if any triplet addresses
    /// a position outside `rows × cols`.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[Triplet],
    ) -> Result<Self, NumericsError> {
        for t in triplets {
            if t.row >= rows {
                return Err(NumericsError::IndexOutOfBounds { index: t.row, len: rows });
            }
            if t.col >= cols {
                return Err(NumericsError::IndexOutOfBounds { index: t.col, len: cols });
            }
        }
        // Bucket triplets per row, then sort and merge duplicates per row.
        let mut buckets: Vec<Vec<(usize, f64)>> = vec![Vec::new(); rows];
        for t in triplets {
            buckets[t.row].push((t.col, t.value));
        }
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        row_ptr.push(0);
        for bucket in &mut buckets {
            bucket.sort_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < bucket.len() {
                let c = bucket[i].0;
                let mut v = 0.0;
                while i < bucket.len() && bucket[i].0 == c {
                    v += bucket[i].1;
                    i += 1;
                }
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        Ok(CsrMatrix { rows, cols, row_ptr, col_idx, values })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of explicitly stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates over the `(col, value)` pairs of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(r < self.rows, "row {r} out of bounds");
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        self.col_idx[lo..hi].iter().copied().zip(self.values[lo..hi].iter().copied())
    }

    /// Matrix–vector product `A·x`.
    ///
    /// Rows are distributed over threads when the matrix is large enough
    /// to amortize the dispatch (see [`PAR_NNZ_THRESHOLD`]). Each output
    /// element is the dot product of one row computed in its natural entry
    /// order, so the parallel product is **bitwise identical** to the
    /// serial one.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::ShapeMismatch`] if `x.len() != cols()`.
    pub fn mat_vec(&self, x: &[f64]) -> Result<Vec<f64>, NumericsError> {
        if x.len() != self.cols {
            return Err(NumericsError::ShapeMismatch {
                detail: format!("mat_vec: {} columns vs vector of length {}", self.cols, x.len()),
            });
        }
        let dot = |r: usize| -> f64 {
            let mut acc = 0.0;
            for (c, v) in self.row_entries(r) {
                acc += v * x[c];
            }
            acc
        };
        if self.nnz() >= PAR_NNZ_THRESHOLD && self.rows >= 2 && rayon::current_num_threads() > 1 {
            use rayon::prelude::*;
            return Ok((0..self.rows).into_par_iter().map(dot).collect());
        }
        Ok((0..self.rows).map(dot).collect())
    }

    /// Sum of the entries of row `r` (e.g. to verify row-stochasticity).
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    pub fn row_sum(&self, r: usize) -> f64 {
        self.row_entries(r).map(|(_, v)| v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_triplets(
            3,
            3,
            &[Triplet::new(0, 0, 1.0), Triplet::new(0, 2, 2.0), Triplet::new(2, 1, 3.0)],
        )
        .unwrap()
    }

    #[test]
    fn basic_assembly() {
        let m = sample();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.row_entries(0).collect::<Vec<_>>(), vec![(0, 1.0), (2, 2.0)]);
        assert_eq!(m.row_entries(1).count(), 0);
    }

    #[test]
    fn duplicates_are_summed() {
        let m =
            CsrMatrix::from_triplets(1, 2, &[Triplet::new(0, 1, 0.25), Triplet::new(0, 1, 0.5)])
                .unwrap();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.row_entries(0).next(), Some((1, 0.75)));
    }

    #[test]
    fn mat_vec_matches_dense() {
        let m = sample();
        let y = m.mat_vec(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(y, vec![7.0, 0.0, 6.0]);
    }

    #[test]
    fn out_of_bounds_triplet_rejected() {
        let err = CsrMatrix::from_triplets(1, 1, &[Triplet::new(0, 5, 1.0)]).unwrap_err();
        assert!(matches!(err, NumericsError::IndexOutOfBounds { index: 5, len: 1 }));
    }

    #[test]
    fn row_sum_works() {
        let m = sample();
        assert_eq!(m.row_sum(0), 3.0);
        assert_eq!(m.row_sum(1), 0.0);
    }

    #[test]
    fn mat_vec_shape_error() {
        assert!(sample().mat_vec(&[1.0]).is_err());
    }

    #[test]
    fn large_mat_vec_parallel_path_matches_serial_reference() {
        // A tridiagonal matrix big enough to cross PAR_NNZ_THRESHOLD; the
        // row-parallel product must be bitwise identical to a hand-rolled
        // serial dot per row.
        let n = 8_000;
        let mut trips = Vec::new();
        for i in 0..n {
            trips.push(Triplet::new(i, i, 2.0 + (i % 7) as f64 * 0.125));
            if i > 0 {
                trips.push(Triplet::new(i, i - 1, -0.5));
            }
            if i + 1 < n {
                trips.push(Triplet::new(i, i + 1, -0.25));
            }
        }
        let m = CsrMatrix::from_triplets(n, n, &trips).unwrap();
        assert!(m.nnz() >= PAR_NNZ_THRESHOLD);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let got = m.mat_vec(&x).unwrap();
        for (r, &g) in got.iter().enumerate() {
            let want: f64 = m.row_entries(r).map(|(c, v)| v * x[c]).sum();
            assert_eq!(g, want, "row {r}");
        }
    }
}
