use crate::NumericsError;

/// A `(row, col, value)` entry used to assemble a [`CsrMatrix`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triplet {
    /// Row index.
    pub row: usize,
    /// Column index.
    pub col: usize,
    /// Entry value.
    pub value: f64,
}

impl Triplet {
    /// Convenience constructor.
    pub fn new(row: usize, col: usize, value: f64) -> Self {
        Triplet { row, col, value }
    }
}

/// Minimum number of stored entries before [`CsrMatrix::mat_vec`]
/// distributes rows over threads; below this the per-dispatch overhead of
/// spawning workers exceeds the multiply itself.
pub const PAR_NNZ_THRESHOLD: usize = 16_384;

/// A compressed-sparse-row matrix over `f64`.
///
/// Used for the transition matrices of large Markov chains where dense
/// storage would be wasteful. Duplicate `(row, col)` entries passed to
/// [`CsrMatrix::from_triplets`] are summed, matching the usual sparse
/// assembly convention.
///
/// # Example
///
/// ```
/// use tml_numerics::{CsrMatrix, Triplet};
///
/// # fn main() -> Result<(), tml_numerics::NumericsError> {
/// let m = CsrMatrix::from_triplets(
///     2,
///     2,
///     &[Triplet::new(0, 0, 0.5), Triplet::new(0, 1, 0.5), Triplet::new(1, 1, 1.0)],
/// )?;
/// assert_eq!(m.mat_vec(&[1.0, 2.0])?, vec![1.5, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Assembles a CSR matrix from triplets, summing duplicates.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::IndexOutOfBounds`] if any triplet addresses
    /// a position outside `rows × cols`.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[Triplet],
    ) -> Result<Self, NumericsError> {
        for t in triplets {
            if t.row >= rows {
                return Err(NumericsError::IndexOutOfBounds { index: t.row, len: rows });
            }
            if t.col >= cols {
                return Err(NumericsError::IndexOutOfBounds { index: t.col, len: cols });
            }
        }
        // Two-pass counting sort by row: a single O(nnz) scatter into flat
        // arrays instead of one heap-allocated bucket per row, which matters
        // when assembling million-row systems.
        let mut start = vec![0usize; rows + 1];
        for t in triplets {
            start[t.row + 1] += 1;
        }
        for r in 0..rows {
            start[r + 1] += start[r];
        }
        let mut cursor = start.clone();
        let mut raw: Vec<(usize, f64)> = vec![(0, 0.0); triplets.len()];
        for t in triplets {
            raw[cursor[t.row]] = (t.col, t.value);
            cursor[t.row] += 1;
        }
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        row_ptr.push(0);
        for r in 0..rows {
            let bucket = &mut raw[start[r]..start[r + 1]];
            // Stable sort keeps duplicates in input order, so their sum is
            // accumulated in the same floating-point order as before.
            bucket.sort_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < bucket.len() {
                let c = bucket[i].0;
                let mut v = 0.0;
                while i < bucket.len() && bucket[i].0 == c {
                    v += bucket[i].1;
                    i += 1;
                }
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        Ok(CsrMatrix { rows, cols, row_ptr, col_idx, values })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of explicitly stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates over the `(col, value)` pairs of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(r < self.rows, "row {r} out of bounds");
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        self.col_idx[lo..hi].iter().copied().zip(self.values[lo..hi].iter().copied())
    }

    /// Matrix–vector product `A·x`.
    ///
    /// Rows are distributed over threads when the matrix is large enough
    /// to amortize the dispatch (see [`PAR_NNZ_THRESHOLD`]). Each output
    /// element is the dot product of one row computed in its natural entry
    /// order, so the parallel product is **bitwise identical** to the
    /// serial one.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::ShapeMismatch`] if `x.len() != cols()`.
    pub fn mat_vec(&self, x: &[f64]) -> Result<Vec<f64>, NumericsError> {
        if x.len() != self.cols {
            return Err(NumericsError::ShapeMismatch {
                detail: format!("mat_vec: {} columns vs vector of length {}", self.cols, x.len()),
            });
        }
        let mut out = vec![0.0; self.rows];
        self.mat_vec_into(x, &mut out)?;
        Ok(out)
    }

    /// The column indices of row `r` as a slice (no values).
    ///
    /// Graph algorithms (SCC condensation, reachability) only need the
    /// sparsity structure; a direct slice avoids iterator overhead.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    pub fn row_cols(&self, r: usize) -> &[usize] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Matrix–vector product `A·x` written into a caller-provided buffer.
    ///
    /// This is the allocation-free kernel behind [`CsrMatrix::mat_vec`]:
    /// rows are processed in contiguous tiles (recursively split over
    /// threads via work-stealing `join` when the matrix is large enough),
    /// and each output element folds its row in natural entry order, so the
    /// result is **bitwise identical** to a serial row-by-row product.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::ShapeMismatch`] if `x.len() != cols()` or
    /// `out.len() != rows()`.
    pub fn mat_vec_into(&self, x: &[f64], out: &mut [f64]) -> Result<(), NumericsError> {
        if x.len() != self.cols || out.len() != self.rows {
            return Err(NumericsError::ShapeMismatch {
                detail: format!(
                    "mat_vec_into: matrix {}x{}, x {}, out {}",
                    self.rows,
                    self.cols,
                    x.len(),
                    out.len()
                ),
            });
        }
        let threads = if self.nnz() >= PAR_NNZ_THRESHOLD && self.rows >= 2 {
            rayon::current_num_threads()
        } else {
            1
        };
        self.tile_rows_into(x, out, 0, threads);
        Ok(())
    }

    /// Computes `out[i] = row(first + i) · x` for a contiguous tile of rows,
    /// splitting the tile in half across threads while `split > 1`.
    fn tile_rows_into(&self, x: &[f64], out: &mut [f64], first: usize, split: usize) {
        if split > 1 && out.len() >= 2 {
            let mid = out.len() / 2;
            let (lo, hi) = out.split_at_mut(mid);
            rayon::join(
                || self.tile_rows_into(x, lo, first, split / 2),
                || self.tile_rows_into(x, hi, first + mid, split - split / 2),
            );
            return;
        }
        for (i, slot) in out.iter_mut().enumerate() {
            let r = first + i;
            let mut acc = 0.0;
            for (c, v) in self.row_entries(r) {
                acc += v * x[c];
            }
            *slot = acc;
        }
    }

    /// The symmetric permutation `B[i][j] = A[order[i]][order[j]]`.
    ///
    /// `order[new] = old` must be a permutation of `0..rows()`; the matrix
    /// must be square. This is how the solver lays a transition matrix out
    /// in SCC order: states of one component become a contiguous row/column
    /// block, so block solves stream through memory instead of chasing the
    /// original state numbering.
    ///
    /// # Errors
    ///
    /// * [`NumericsError::ShapeMismatch`] if the matrix is not square or
    ///   `order.len() != rows()`.
    /// * [`NumericsError::IndexOutOfBounds`] if `order` is not a
    ///   permutation of `0..rows()`.
    pub fn permute_symmetric(&self, order: &[usize]) -> Result<CsrMatrix, NumericsError> {
        if self.rows != self.cols || order.len() != self.rows {
            return Err(NumericsError::ShapeMismatch {
                detail: format!(
                    "permute_symmetric: matrix {}x{}, order {}",
                    self.rows,
                    self.cols,
                    order.len()
                ),
            });
        }
        let n = self.rows;
        let mut inv = vec![usize::MAX; n];
        for (new, &old) in order.iter().enumerate() {
            if old >= n {
                return Err(NumericsError::IndexOutOfBounds { index: old, len: n });
            }
            if inv[old] != usize::MAX {
                return Err(NumericsError::IndexOutOfBounds { index: old, len: n });
            }
            inv[old] = new;
        }
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        row_ptr.push(0);
        for &old_r in order.iter() {
            scratch.clear();
            scratch.extend(self.row_entries(old_r).map(|(c, v)| (inv[c], v)));
            scratch.sort_unstable_by_key(|&(c, _)| c);
            for &(c, v) in &scratch {
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        Ok(CsrMatrix { rows: n, cols: n, row_ptr, col_idx, values })
    }

    /// Sum of the entries of row `r` (e.g. to verify row-stochasticity).
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    pub fn row_sum(&self, r: usize) -> f64 {
        self.row_entries(r).map(|(_, v)| v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_triplets(
            3,
            3,
            &[Triplet::new(0, 0, 1.0), Triplet::new(0, 2, 2.0), Triplet::new(2, 1, 3.0)],
        )
        .unwrap()
    }

    #[test]
    fn basic_assembly() {
        let m = sample();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.row_entries(0).collect::<Vec<_>>(), vec![(0, 1.0), (2, 2.0)]);
        assert_eq!(m.row_entries(1).count(), 0);
    }

    #[test]
    fn duplicates_are_summed() {
        let m =
            CsrMatrix::from_triplets(1, 2, &[Triplet::new(0, 1, 0.25), Triplet::new(0, 1, 0.5)])
                .unwrap();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.row_entries(0).next(), Some((1, 0.75)));
    }

    #[test]
    fn mat_vec_matches_dense() {
        let m = sample();
        let y = m.mat_vec(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(y, vec![7.0, 0.0, 6.0]);
    }

    #[test]
    fn out_of_bounds_triplet_rejected() {
        let err = CsrMatrix::from_triplets(1, 1, &[Triplet::new(0, 5, 1.0)]).unwrap_err();
        assert!(matches!(err, NumericsError::IndexOutOfBounds { index: 5, len: 1 }));
    }

    #[test]
    fn row_sum_works() {
        let m = sample();
        assert_eq!(m.row_sum(0), 3.0);
        assert_eq!(m.row_sum(1), 0.0);
    }

    #[test]
    fn mat_vec_shape_error() {
        assert!(sample().mat_vec(&[1.0]).is_err());
    }

    #[test]
    fn mat_vec_into_matches_mat_vec() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        let mut out = vec![0.0; 3];
        m.mat_vec_into(&x, &mut out).unwrap();
        assert_eq!(out, m.mat_vec(&x).unwrap());
        let mut short = vec![0.0; 2];
        assert!(m.mat_vec_into(&x, &mut short).is_err());
    }

    #[test]
    fn row_cols_exposes_structure() {
        let m = sample();
        assert_eq!(m.row_cols(0), &[0, 2]);
        assert_eq!(m.row_cols(1), &[] as &[usize]);
        assert_eq!(m.row_cols(2), &[1]);
    }

    #[test]
    fn permute_symmetric_relabels_entries() {
        let m = sample();
        // order[new] = old: new 0 is old 2, new 1 is old 0, new 2 is old 1.
        let p = m.permute_symmetric(&[2, 0, 1]).unwrap();
        // old (2,1)=3.0 -> new (0,2); old (0,0)=1.0 -> new (1,1);
        // old (0,2)=2.0 -> new (1,0).
        assert_eq!(p.row_entries(0).collect::<Vec<_>>(), vec![(2, 3.0)]);
        assert_eq!(p.row_entries(1).collect::<Vec<_>>(), vec![(0, 2.0), (1, 1.0)]);
        assert_eq!(p.row_entries(2).count(), 0);
        // mat_vec commutes with the permutation.
        let x = [0.5, -1.0, 2.0];
        let xp: Vec<f64> = [2, 0, 1].iter().map(|&o| x[o]).collect();
        let y = m.mat_vec(&x).unwrap();
        let yp = p.mat_vec(&xp).unwrap();
        for (new, &old) in [2usize, 0, 1].iter().enumerate() {
            assert!((yp[new] - y[old]).abs() < 1e-15);
        }
    }

    #[test]
    fn permute_symmetric_rejects_bad_orders() {
        let m = sample();
        assert!(m.permute_symmetric(&[0, 1]).is_err()); // wrong length
        assert!(m.permute_symmetric(&[0, 1, 1]).is_err()); // repeated index
        assert!(m.permute_symmetric(&[0, 1, 5]).is_err()); // out of range
        let rect = CsrMatrix::from_triplets(2, 1, &[]).unwrap();
        assert!(rect.permute_symmetric(&[0, 1]).is_err()); // not square
    }

    #[test]
    fn large_mat_vec_parallel_path_matches_serial_reference() {
        // A tridiagonal matrix big enough to cross PAR_NNZ_THRESHOLD; the
        // row-parallel product must be bitwise identical to a hand-rolled
        // serial dot per row.
        let n = 8_000;
        let mut trips = Vec::new();
        for i in 0..n {
            trips.push(Triplet::new(i, i, 2.0 + (i % 7) as f64 * 0.125));
            if i > 0 {
                trips.push(Triplet::new(i, i - 1, -0.5));
            }
            if i + 1 < n {
                trips.push(Triplet::new(i, i + 1, -0.25));
            }
        }
        let m = CsrMatrix::from_triplets(n, n, &trips).unwrap();
        assert!(m.nnz() >= PAR_NNZ_THRESHOLD);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let got = m.mat_vec(&x).unwrap();
        for (r, &g) in got.iter().enumerate() {
            let want: f64 = m.row_entries(r).map(|(c, v)| v * x[c]).sum();
            assert_eq!(g, want, "row {r}");
        }
    }
}
