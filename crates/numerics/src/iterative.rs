//! Iterative fixed-point solvers for equations of the form `x = A·x + b`.
//!
//! Value iteration, bounded-until unrolling and Gauss–Seidel refinement all
//! reduce to repeatedly applying an affine operator until the iterates stop
//! moving. These routines operate on [`CsrMatrix`] so they scale to large
//! sparse transition systems.

use tml_telemetry::{counter, span};

use crate::budget::{Budget, Exhaustion};
use crate::{CsrMatrix, NumericsError};

/// Options controlling the iterative solvers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterOptions {
    /// Convergence threshold on the max-norm difference between iterates.
    pub tolerance: f64,
    /// Maximum number of sweeps before giving up.
    pub max_iterations: usize,
}

impl Default for IterOptions {
    fn default() -> Self {
        IterOptions { tolerance: 1e-10, max_iterations: 100_000 }
    }
}

/// Outcome of an iterative solve.
#[derive(Debug, Clone, PartialEq)]
pub struct IterSolution {
    /// The final iterate.
    pub x: Vec<f64>,
    /// Number of sweeps performed.
    pub iterations: usize,
    /// Max-norm difference of the last two iterates.
    pub delta: f64,
}

/// Best-effort outcome of a budgeted iterative solve.
///
/// Unlike [`IterSolution`]-returning entry points, the budgeted solvers
/// never turn non-convergence into an error: they hand back the last
/// iterate with `converged == false` and, when the [`Budget`] cut the run
/// short, the [`Exhaustion`] cause.
#[derive(Debug, Clone, PartialEq)]
pub struct IterRun {
    /// The final iterate (best effort when not converged).
    pub x: Vec<f64>,
    /// Number of sweeps performed.
    pub iterations: usize,
    /// Max-norm difference of the last two iterates.
    pub delta: f64,
    /// Whether the tolerance was reached.
    pub converged: bool,
    /// Why the budget stopped the run early, if it did.
    pub stopped: Option<Exhaustion>,
}

/// Jacobi iteration for `x = A·x + b`, starting from `x0`.
///
/// Converges whenever the spectral radius of `A` is below one — which holds
/// for the sub-stochastic "maybe-state" fragments that arise in
/// unbounded-until and expected-reward computations.
///
/// # Errors
///
/// * [`NumericsError::ShapeMismatch`] on dimension mismatch.
/// * [`NumericsError::NoConvergence`] if the tolerance is not reached within
///   the iteration budget.
///
/// # Example
///
/// ```
/// use tml_numerics::{CsrMatrix, Triplet};
/// use tml_numerics::iterative::{jacobi, IterOptions};
///
/// # fn main() -> Result<(), tml_numerics::NumericsError> {
/// // x = 0.5 x + 1 has solution x = 2.
/// let a = CsrMatrix::from_triplets(1, 1, &[Triplet::new(0, 0, 0.5)])?;
/// let sol = jacobi(&a, &[1.0], &[0.0], IterOptions::default())?;
/// assert!((sol.x[0] - 2.0).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
pub fn jacobi(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    opts: IterOptions,
) -> Result<IterSolution, NumericsError> {
    let run = jacobi_budgeted(a, b, x0, opts, &Budget::unlimited())?;
    finish_unbudgeted(run)
}

/// Budget-aware [`jacobi`]: polls `budget` once per sweep and returns the
/// best-effort iterate instead of erroring on non-convergence.
///
/// # Errors
///
/// Returns [`NumericsError::ShapeMismatch`] on dimension mismatch — never
/// `NoConvergence`.
pub fn jacobi_budgeted(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    opts: IterOptions,
    budget: &Budget,
) -> Result<IterRun, NumericsError> {
    check_shapes(a, b, x0)?;
    let _span = span!("numerics.jacobi", states = a.rows(), nnz = a.nnz());
    // Double buffer: `x` is the current iterate, `next` the reusable
    // scratch target. Swapping pointers each sweep means the inner loop
    // never allocates, no matter how many sweeps run.
    let mut x = x0.to_vec();
    let mut next = vec![0.0; x.len()];
    let mut delta = f64::INFINITY;
    let run = 'solve: {
        for it in 1..=opts.max_iterations {
            if let Some(cause) = budget.check(it as u64 - 1) {
                break 'solve IterRun {
                    x,
                    iterations: it - 1,
                    delta,
                    converged: false,
                    stopped: Some(cause),
                };
            }
            affine_apply_into(a, b, &x, &mut next);
            delta = max_abs_diff(&next, &x);
            std::mem::swap(&mut x, &mut next);
            if delta <= opts.tolerance {
                break 'solve IterRun { x, iterations: it, delta, converged: true, stopped: None };
            }
        }
        IterRun { x, iterations: opts.max_iterations, delta, converged: false, stopped: None }
    };
    counter!("numerics.solve.sweeps", run.iterations);
    Ok(run)
}

/// One Jacobi sweep `out = A·x + b` into a caller-provided buffer.
///
/// The matvec streams rows in contiguous tiles (threaded for large
/// matrices, see [`CsrMatrix::mat_vec_into`]); each element folds its row
/// in natural order and then adds `b[r]` — the exact floating-point order
/// of the historical serial sweep, so results are bitwise reproducible.
///
/// Shapes must have been validated by the caller.
fn affine_apply_into(a: &CsrMatrix, b: &[f64], x: &[f64], out: &mut [f64]) {
    a.mat_vec_into(x, out).expect("caller validated shapes");
    for (o, &rhs) in out.iter_mut().zip(b) {
        *o += rhs;
    }
}

/// Gauss–Seidel iteration for `x = A·x + b`, starting from `x0`.
///
/// Like [`jacobi`] but updates components in place within each sweep, which
/// typically roughly halves the iteration count on transition systems.
///
/// # Errors
///
/// Same conditions as [`jacobi`].
pub fn gauss_seidel(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    opts: IterOptions,
) -> Result<IterSolution, NumericsError> {
    let run = gauss_seidel_budgeted(a, b, x0, opts, &Budget::unlimited())?;
    finish_unbudgeted(run)
}

/// Budget-aware [`gauss_seidel`]: polls `budget` once per sweep and returns
/// the best-effort iterate instead of erroring on non-convergence.
///
/// # Errors
///
/// Returns [`NumericsError::ShapeMismatch`] on dimension mismatch — never
/// `NoConvergence`.
pub fn gauss_seidel_budgeted(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    opts: IterOptions,
    budget: &Budget,
) -> Result<IterRun, NumericsError> {
    check_shapes(a, b, x0)?;
    let _span = span!("numerics.gauss_seidel", states = a.rows(), nnz = a.nnz());
    let n = a.rows();
    let mut x = x0.to_vec();
    let mut delta = f64::INFINITY;
    let run = 'solve: {
        for it in 1..=opts.max_iterations {
            if let Some(cause) = budget.check(it as u64 - 1) {
                break 'solve IterRun {
                    x,
                    iterations: it - 1,
                    delta,
                    converged: false,
                    stopped: Some(cause),
                };
            }
            delta = gs_sweep_range(a, b, &mut x, 0, n);
            if delta <= opts.tolerance {
                break 'solve IterRun { x, iterations: it, delta, converged: true, stopped: None };
            }
        }
        IterRun { x, iterations: opts.max_iterations, delta, converged: false, stopped: None }
    };
    counter!("numerics.solve.sweeps", run.iterations);
    Ok(run)
}

/// One in-place Gauss–Seidel sweep over rows `lo..hi` of `x = A·x + b`,
/// returning the max-norm change across the swept range.
///
/// Entries of `x` outside the range are read but never written. The SCC
/// solver exploits this to sweep one component block of an SCC-permuted
/// matrix while earlier (already solved) blocks act as constants folded
/// into the effective right-hand side.
///
/// Rows with a diagonal entry solve `x_r = diag·x_r + acc` exactly as
/// `x_r = acc / (1 - diag)`, so self-loops cost nothing extra; a diagonal
/// within `f64::EPSILON` of one falls back to the raw accumulator.
pub(crate) fn gs_sweep_range(a: &CsrMatrix, b: &[f64], x: &mut [f64], lo: usize, hi: usize) -> f64 {
    let mut delta = 0.0_f64;
    for r in lo..hi {
        let mut acc = b[r];
        let mut diag = 0.0;
        for (c, v) in a.row_entries(r) {
            if c == r {
                diag = v;
            } else {
                acc += v * x[c];
            }
        }
        let denom = 1.0 - diag;
        let new = if denom.abs() < f64::EPSILON { acc } else { acc / denom };
        let d = (new - x[r]).abs();
        if d > delta {
            delta = d;
        }
        x[r] = new;
    }
    delta
}

/// Converts a budgeted run into the legacy strict result: non-convergence
/// (for any reason) becomes [`NumericsError::NoConvergence`] carrying the
/// genuine last residual.
fn finish_unbudgeted(run: IterRun) -> Result<IterSolution, NumericsError> {
    if run.converged {
        Ok(IterSolution { x: run.x, iterations: run.iterations, delta: run.delta })
    } else {
        Err(NumericsError::NoConvergence { iterations: run.iterations, residual: run.delta })
    }
}

/// Applies `k` steps of `x ← A·x + b` and returns every intermediate iterate's
/// final value (used for step-bounded until / cumulative reward).
///
/// # Errors
///
/// Returns [`NumericsError::ShapeMismatch`] on dimension mismatch.
pub fn affine_power(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    k: usize,
) -> Result<Vec<f64>, NumericsError> {
    check_shapes(a, b, x0)?;
    let mut x = x0.to_vec();
    let mut next = vec![0.0; x.len()];
    for _ in 0..k {
        affine_apply_into(a, b, &x, &mut next);
        std::mem::swap(&mut x, &mut next);
    }
    Ok(x)
}

fn check_shapes(a: &CsrMatrix, b: &[f64], x0: &[f64]) -> Result<(), NumericsError> {
    if a.rows() != a.cols() {
        return Err(NumericsError::ShapeMismatch {
            detail: format!(
                "iterative solver requires square matrix, got {}x{}",
                a.rows(),
                a.cols()
            ),
        });
    }
    if b.len() != a.rows() || x0.len() != a.rows() {
        return Err(NumericsError::ShapeMismatch {
            detail: format!(
                "dimension mismatch: matrix {}x{}, b {}, x0 {}",
                a.rows(),
                a.cols(),
                b.len(),
                x0.len()
            ),
        });
    }
    Ok(())
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Triplet;

    fn chain() -> (CsrMatrix, Vec<f64>) {
        // Random walk on {0,1,2}: from 1 go to 0 or 2 with prob 1/2 each;
        // probability of hitting state 2 from 1 is 1/2, from 0 is 0.
        // maybe-states = {1}; x1 = 0.5*x0(absorbed 0) + 0.5 (to target).
        let a = CsrMatrix::from_triplets(1, 1, &[Triplet::new(0, 0, 0.0)]).unwrap();
        (a, vec![0.5])
    }

    #[test]
    fn jacobi_simple() {
        let (a, b) = chain();
        let sol = jacobi(&a, &b, &[0.0], IterOptions::default()).unwrap();
        assert!((sol.x[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn gauss_seidel_matches_jacobi() {
        let a =
            CsrMatrix::from_triplets(2, 2, &[Triplet::new(0, 1, 0.5), Triplet::new(1, 0, 0.25)])
                .unwrap();
        let b = vec![1.0, 2.0];
        let j = jacobi(&a, &b, &[0.0, 0.0], IterOptions::default()).unwrap();
        let g = gauss_seidel(&a, &b, &[0.0, 0.0], IterOptions::default()).unwrap();
        for (x, y) in j.x.iter().zip(&g.x) {
            assert!((x - y).abs() < 1e-8, "jacobi {x} vs gauss-seidel {y}");
        }
        assert!(g.iterations <= j.iterations);
    }

    #[test]
    fn affine_power_counts_steps() {
        // x <- 0*x + 1 repeated: after any k >= 1, x = 1.
        let a = CsrMatrix::from_triplets(1, 1, &[]).unwrap();
        let x = affine_power(&a, &[1.0], &[0.0], 3).unwrap();
        assert_eq!(x, vec![1.0]);
        let x0 = affine_power(&a, &[1.0], &[0.0], 0).unwrap();
        assert_eq!(x0, vec![0.0]);
    }

    #[test]
    fn non_convergent_reports_error() {
        // x = 2x + 1 diverges.
        let a = CsrMatrix::from_triplets(1, 1, &[Triplet::new(0, 0, 2.0)]).unwrap();
        let err = jacobi(&a, &[1.0], &[1.0], IterOptions { tolerance: 1e-12, max_iterations: 50 })
            .unwrap_err();
        assert!(matches!(err, NumericsError::NoConvergence { .. }));
    }

    #[test]
    fn budgeted_solvers_return_best_effort() {
        // x = 2x + 1 diverges; the budgeted API must not error.
        let a = CsrMatrix::from_triplets(1, 1, &[Triplet::new(0, 0, 2.0)]).unwrap();
        let opts = IterOptions { tolerance: 1e-12, max_iterations: 50 };
        let run = jacobi_budgeted(&a, &[1.0], &[1.0], opts, &Budget::unlimited()).unwrap();
        assert!(!run.converged);
        assert!(run.stopped.is_none());
        assert_eq!(run.iterations, 50);
        assert!(run.delta.is_finite() || run.delta.is_infinite()); // real residual, not NaN
        assert!(!run.delta.is_nan());
    }

    #[test]
    fn evaluation_cap_stops_sweeps() {
        // Off-diagonal coupling so Gauss–Seidel converges slowly (rate ~0.998).
        let a =
            CsrMatrix::from_triplets(2, 2, &[Triplet::new(0, 1, 0.999), Triplet::new(1, 0, 0.999)])
                .unwrap();
        let opts = IterOptions { tolerance: 1e-14, max_iterations: 1_000_000 };
        let budget = Budget::unlimited().with_max_evaluations(7);
        let run = gauss_seidel_budgeted(&a, &[1.0, 1.0], &[0.0, 0.0], opts, &budget).unwrap();
        assert_eq!(run.stopped, Some(crate::Exhaustion::Evaluations));
        assert!(run.iterations <= 7);
        assert!(!run.converged);
    }

    #[test]
    fn cancelled_solve_stops_immediately() {
        let token = crate::CancelToken::new();
        token.cancel();
        let budget = Budget::unlimited().with_cancel_token(token);
        let a = CsrMatrix::from_triplets(1, 1, &[Triplet::new(0, 0, 0.5)]).unwrap();
        let run = jacobi_budgeted(&a, &[1.0], &[0.0], IterOptions::default(), &budget).unwrap();
        assert_eq!(run.stopped, Some(crate::Exhaustion::Cancelled));
        assert_eq!(run.iterations, 0);
        assert_eq!(run.x, vec![0.0]); // untouched start vector
    }

    #[test]
    fn shape_errors() {
        let a = CsrMatrix::from_triplets(2, 1, &[]).unwrap();
        assert!(jacobi(&a, &[0.0], &[0.0], IterOptions::default()).is_err());
        let sq = CsrMatrix::from_triplets(2, 2, &[]).unwrap();
        assert!(gauss_seidel(&sq, &[0.0], &[0.0, 0.0], IterOptions::default()).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::Triplet;
    use proptest::prelude::*;

    proptest! {
        /// For random strictly sub-stochastic matrices both solvers converge
        /// and agree with each other.
        #[test]
        fn substochastic_systems_converge(
            raw in proptest::collection::vec(0.0_f64..1.0, 9),
            b in proptest::collection::vec(0.0_f64..1.0, 3),
        ) {
            let n = 3;
            let mut triplets = Vec::new();
            for r in 0..n {
                let row: Vec<f64> = (0..n).map(|c| raw[r * n + c]).collect();
                let sum: f64 = row.iter().sum();
                // scale row sum to 0.9 so the spectral radius is < 1
                let scale = if sum > 0.0 { 0.9 / sum } else { 0.0 };
                for (c, v) in row.iter().enumerate() {
                    if *v > 0.0 {
                        triplets.push(Triplet::new(r, c, v * scale));
                    }
                }
            }
            let a = CsrMatrix::from_triplets(n, n, &triplets).unwrap();
            let opts = IterOptions { tolerance: 1e-12, max_iterations: 200_000 };
            let j = jacobi(&a, &b, &vec![0.0; n], opts).unwrap();
            let g = gauss_seidel(&a, &b, &vec![0.0; n], opts).unwrap();
            for (x, y) in j.x.iter().zip(&g.x) {
                prop_assert!((x - y).abs() < 1e-8);
            }
        }
    }
}
