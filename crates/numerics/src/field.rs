/// A field of scalars that the generic linear solvers can operate on.
///
/// The direct solvers in [`crate::solve`] are written against this trait so
/// that the *same* Gaussian-elimination code runs both on `f64` (concrete
/// model checking) and on symbolic rational functions (parametric model
/// checking, where elimination over the field of rational functions is
/// exactly the classic "state elimination" algorithm).
///
/// Implementations must satisfy the usual field laws up to the numeric
/// tolerance inherent in their representation: associativity and
/// commutativity of [`add`](Field::add)/[`mul`](Field::mul), distributivity,
/// `x.add(&Field::zero()) == x`, `x.mul(&Field::one()) == x`, and
/// `x.mul(&y).div(&y) ≈ x` for non-zero `y`.
///
/// # Example
///
/// ```
/// use tml_numerics::Field;
///
/// let x = 3.0_f64;
/// let y = 4.0_f64;
/// assert_eq!(Field::add(&x, &y), 7.0);
/// assert_eq!(Field::mul(&x, &y), 12.0);
/// assert!(Field::is_zero(&0.0));
/// ```
pub trait Field: Clone + PartialEq + std::fmt::Debug {
    /// The additive identity.
    fn zero() -> Self;

    /// The multiplicative identity.
    fn one() -> Self;

    /// `self + rhs`.
    fn add(&self, rhs: &Self) -> Self;

    /// `self - rhs`.
    fn sub(&self, rhs: &Self) -> Self;

    /// `self * rhs`.
    fn mul(&self, rhs: &Self) -> Self;

    /// `self / rhs`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `rhs.is_zero()`. Callers inside this
    /// workspace always guard divisions with [`is_zero`](Field::is_zero).
    fn div(&self, rhs: &Self) -> Self;

    /// `-self`.
    fn neg(&self) -> Self;

    /// Whether this element is (recognizably) the additive identity.
    fn is_zero(&self) -> bool;

    /// A non-negative weight used for pivot selection in Gaussian
    /// elimination. Larger is a better pivot. Must be `0.0` exactly when
    /// [`is_zero`](Field::is_zero) holds.
    fn pivot_weight(&self) -> f64 {
        if self.is_zero() {
            0.0
        } else {
            1.0
        }
    }
}

impl Field for f64 {
    fn zero() -> Self {
        0.0
    }

    fn one() -> Self {
        1.0
    }

    fn add(&self, rhs: &Self) -> Self {
        self + rhs
    }

    fn sub(&self, rhs: &Self) -> Self {
        self - rhs
    }

    fn mul(&self, rhs: &Self) -> Self {
        self * rhs
    }

    fn div(&self, rhs: &Self) -> Self {
        self / rhs
    }

    fn neg(&self) -> Self {
        -self
    }

    fn is_zero(&self) -> bool {
        *self == 0.0
    }

    fn pivot_weight(&self) -> f64 {
        self.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_field_laws() {
        let (x, y, z) = (2.5, -1.25, 4.0);
        assert_eq!(Field::add(&x, &y), x + y);
        assert_eq!(Field::sub(&x, &y), x - y);
        assert_eq!(Field::mul(&x, &z), 10.0);
        assert_eq!(Field::div(&z, &x), 1.6);
        assert_eq!(Field::neg(&x), -2.5);
        assert!(Field::is_zero(&0.0));
        assert!(!Field::is_zero(&1e-300));
        assert_eq!(<f64 as Field>::zero(), 0.0);
        assert_eq!(<f64 as Field>::one(), 1.0);
    }

    #[test]
    fn f64_pivot_weight_is_abs() {
        assert_eq!(Field::pivot_weight(&-3.0), 3.0);
        assert_eq!(Field::pivot_weight(&0.0), 0.0);
    }

    #[test]
    fn mul_div_roundtrip() {
        let x = 7.25_f64;
        let y = -0.3_f64;
        let got = Field::div(&Field::mul(&x, &y), &y);
        assert!((got - x).abs() < 1e-12);
    }
}
