//! Small vector helpers shared across the workspace.

/// Dot product of two slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// assert_eq!(tml_numerics::vector::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch {} vs {}", a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y ← y + alpha·x` in place.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch {} vs {}", x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Max-norm `‖a‖∞`.
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().map(|v| v.abs()).fold(0.0, f64::max)
}

/// Euclidean norm `‖a‖₂`.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Max-norm distance `‖a − b‖∞`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dist_inf(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dist_inf: length mismatch {} vs {}", a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

/// Normalizes a non-negative slice so it sums to one.
///
/// Returns `false` (leaving the slice untouched) when the sum is zero or
/// non-finite, since no distribution can be formed.
pub fn normalize_in_place(a: &mut [f64]) -> bool {
    let sum: f64 = a.iter().sum();
    if sum <= 0.0 || !sum.is_finite() {
        return false;
    }
    for v in a.iter_mut() {
        *v /= sum;
    }
    true
}

/// Index of the maximum element, breaking ties toward the lower index.
///
/// Returns `None` for an empty slice.
pub fn argmax(a: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in a.iter().enumerate() {
        match best {
            Some((_, bv)) if v <= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Numerically stable log-sum-exp of a slice.
///
/// Returns negative infinity for an empty slice (the sum of zero terms).
pub fn log_sum_exp(a: &[f64]) -> f64 {
    let m = a.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !m.is_finite() {
        return m;
    }
    let s: f64 = a.iter().map(|v| (v - m).exp()).sum();
    m + s.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm_inf(&[-3.0, 2.0]), 3.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(dist_inf(&[1.0, 5.0], &[2.0, 5.0]), 1.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn normalize_ok_and_degenerate() {
        let mut a = vec![1.0, 3.0];
        assert!(normalize_in_place(&mut a));
        assert_eq!(a, vec![0.25, 0.75]);
        let mut z = vec![0.0, 0.0];
        assert!(!normalize_in_place(&mut z));
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn argmax_tie_break_and_empty() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), Some(1));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn log_sum_exp_stable() {
        // logsumexp(1000, 1000) = 1000 + ln 2 without overflow.
        let v = log_sum_exp(&[1000.0, 1000.0]);
        assert!((v - (1000.0 + 2.0_f64.ln())).abs() < 1e-9);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
