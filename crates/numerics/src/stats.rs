//! Confidence intervals for estimated probabilities and bounded means.
//!
//! Two interval constructions are shared across the workspace:
//!
//! * the **Wilson score interval** for Bernoulli proportions (transition
//!   probabilities, reachability estimates) — well-behaved near 0 and 1,
//!   where the naive normal interval collapses;
//! * the **Hoeffding interval** for means of bounded random variables
//!   (accumulated rewards) — distribution-free, needs only the value range.
//!
//! Both are parameterized by a *confidence* `1 − α`. The conformance
//! simulator uses them for statistical verdicts (a very small `α` so a
//! disagreement is evidence of a bug, not noise); `tml-models::learn` uses
//! the Wilson interval per transition row to build interval DTMCs whose
//! uncertainty sets are calibrated to the trace counts. Living here keeps
//! the checker and core crates free of any dependency on the conformance
//! harness.

/// A closed interval `[low, high]` with the point estimate that produced it.
///
/// ```
/// use tml_numerics::stats::Interval;
///
/// let i = Interval { estimate: 0.5, low: 0.4, high: 0.6 };
/// assert!(i.contains(0.55));
/// assert!(!i.contains(0.7));
/// assert!((i.half_width() - 0.1).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Point estimate (empirical mean).
    pub estimate: f64,
    /// Lower confidence limit.
    pub low: f64,
    /// Upper confidence limit.
    pub high: f64,
}

impl Interval {
    /// Whether `value` lies inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        self.low <= value && value <= self.high
    }

    /// The half-width `(high − low) / 2`.
    pub fn half_width(&self) -> f64 {
        (self.high - self.low) / 2.0
    }
}

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// absolute error below `1.2e-9` — ample for interval construction).
///
/// ```
/// use tml_numerics::stats::normal_quantile;
///
/// // Φ⁻¹(0.975) = 1.959964…; the median is 0; tails are symmetric.
/// assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-5);
/// assert!(normal_quantile(0.5).abs() < 1e-9);
/// assert!((normal_quantile(0.01) + normal_quantile(0.99)).abs() < 1e-8);
/// ```
///
/// # Panics
///
/// Panics unless `p ∈ (0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile argument must be in (0, 1)");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

/// The Wilson score interval for `successes` out of `n` Bernoulli trials at
/// confidence `1 − alpha`.
///
/// ```
/// use tml_numerics::stats::wilson_interval;
///
/// let i = wilson_interval(75, 100, 0.05);
/// assert!(i.contains(0.75));
/// assert!(i.low > 0.6 && i.high < 0.9);
/// ```
///
/// # Panics
///
/// Panics if `n == 0`, `successes > n`, or `alpha` is not in `(0, 1)`.
pub fn wilson_interval(successes: u64, n: u64, alpha: f64) -> Interval {
    assert!(successes <= n, "successes exceed trials");
    wilson_interval_weighted(successes as f64, n as f64, alpha)
}

/// The Wilson score interval for *weighted* counts: `successes` is a
/// non-negative real success mass out of a total mass `n` (the effective
/// sample size). Weighted traces make transition counts fractional, so the
/// interval-DTMC learner needs this generalization; for integer counts it
/// coincides with [`wilson_interval`].
///
/// ```
/// use tml_numerics::stats::{wilson_interval, wilson_interval_weighted};
///
/// let a = wilson_interval(3, 4, 0.1);
/// let b = wilson_interval_weighted(3.0, 4.0, 0.1);
/// assert_eq!(a, b);
/// ```
///
/// # Panics
///
/// Panics if `n ≤ 0`, the success mass is outside `[0, n]`, or `alpha` is
/// not in `(0, 1)`.
pub fn wilson_interval_weighted(successes: f64, n: f64, alpha: f64) -> Interval {
    assert!(n > 0.0 && n.is_finite(), "wilson interval needs positive total mass");
    assert!(successes >= 0.0 && successes <= n + 1e-9, "success mass {successes} outside [0, {n}]");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
    let z = normal_quantile(1.0 - alpha / 2.0);
    let p = (successes / n).clamp(0.0, 1.0);
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let margin = (z / denom) * ((p * (1.0 - p) / n) + z2 / (4.0 * n * n)).sqrt();
    Interval { estimate: p, low: (center - margin).max(0.0), high: (center + margin).min(1.0) }
}

/// The Hoeffding interval for the mean of `n` i.i.d. samples bounded in
/// `[range_low, range_high]` at confidence `1 − alpha`: half-width
/// `(hi − lo) · sqrt(ln(2/α) / 2n)`.
///
/// ```
/// use tml_numerics::stats::hoeffding_interval;
///
/// let i = hoeffding_interval(10.0, 1000, 0.0, 20.0, 0.01);
/// assert!(i.contains(10.0));
/// ```
///
/// # Panics
///
/// Panics if `n == 0`, the range is inverted, or `alpha` is not in `(0, 1)`.
pub fn hoeffding_interval(
    mean: f64,
    n: u64,
    range_low: f64,
    range_high: f64,
    alpha: f64,
) -> Interval {
    assert!(n > 0, "hoeffding interval needs at least one sample");
    assert!(range_high >= range_low, "inverted sample range");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
    let half = (range_high - range_low) * ((2.0 / alpha).ln() / (2.0 * n as f64)).sqrt();
    Interval {
        estimate: mean,
        low: (mean - half).max(range_low),
        high: (mean + half).min(range_high),
    }
}

/// The Hoeffding half-width for Bernoulli samples (range `[0, 1]`): the
/// number of trajectories needed so the half-width drops below `eps` is
/// `n ≥ ln(2/α) / (2 eps²)`.
pub fn hoeffding_half_width(n: u64, alpha: f64) -> f64 {
    assert!(n > 0 && alpha > 0.0 && alpha < 1.0);
    ((2.0 / alpha).ln() / (2.0 * n as f64)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_quantile_matches_known_values() {
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-5);
        assert!(normal_quantile(0.5).abs() < 1e-9);
        assert!((normal_quantile(0.001) + normal_quantile(0.999)).abs() < 1e-8);
    }

    #[test]
    fn wilson_contains_truth_and_shrinks() {
        let i = wilson_interval(75, 100, 0.05);
        assert!(i.contains(0.75));
        assert!(i.low > 0.6 && i.high < 0.9);
        let tighter = wilson_interval(7500, 10_000, 0.05);
        assert!(tighter.half_width() < i.half_width());
        // Degenerate corners stay inside [0, 1].
        let zero = wilson_interval(0, 50, 0.01);
        assert_eq!(zero.low, 0.0);
        assert!(zero.high > 0.0 && zero.high < 0.25);
        let one = wilson_interval(50, 50, 0.01);
        assert_eq!(one.high, 1.0);
        assert!(one.low > 0.75);
    }

    #[test]
    fn weighted_wilson_matches_integer_wilson() {
        for (s, n) in [(0u64, 5u64), (3, 7), (10, 10)] {
            let a = wilson_interval(s, n, 0.05);
            let b = wilson_interval_weighted(s as f64, n as f64, 0.05);
            assert_eq!(a, b);
        }
        // Fractional masses are accepted and stay inside [0, 1].
        let w = wilson_interval_weighted(1.5, 2.5, 0.1);
        assert!(w.low >= 0.0 && w.high <= 1.0 && w.low < w.high);
        assert!((w.estimate - 0.6).abs() < 1e-12);
    }

    #[test]
    fn hoeffding_covers_and_scales() {
        let i = hoeffding_interval(10.0, 1000, 0.0, 20.0, 0.01);
        assert!(i.contains(10.0));
        let wider = hoeffding_interval(10.0, 100, 0.0, 20.0, 0.01);
        assert!(wider.half_width() > i.half_width());
        assert!((hoeffding_half_width(1000, 0.01) * 20.0 - i.half_width()).abs() < 1e-12);
    }
}
