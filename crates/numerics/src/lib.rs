//! Dense and sparse linear algebra with generic-field solvers.
//!
//! This crate is the numeric substrate of the `trusted-ml` workspace. It
//! provides exactly the kernels a probabilistic model checker needs:
//!
//! * [`Field`] — an abstraction over the scalars that linear solvers operate
//!   on. It is implemented for `f64` here and for symbolic rational
//!   functions in the `tml-parametric` crate, which is how the same
//!   Gaussian-elimination routine doubles as a *parametric* model-checking
//!   engine (state elimination in matrix form).
//! * [`DenseMatrix`] — a small row-major dense matrix over any [`Field`].
//! * [`CsrMatrix`] — compressed sparse row matrix over `f64` for large
//!   transition systems.
//! * [`solve`] — direct solvers (Gaussian elimination with partial
//!   pivoting) over any [`Field`].
//! * [`iterative`] — Jacobi, Gauss–Seidel and power-iteration style solvers
//!   for fixed-point equations `x = A x + b`, the workhorse of value
//!   iteration.
//! * [`scc`] — Tarjan condensation of the transition graph and
//!   block-decomposed solves: components are processed in dependency
//!   order, trivial components by closed-form back-substitution.
//! * [`interval`] — two-sided (interval) iteration that brackets the
//!   fixed point with sound lower/upper bounds.
//! * [`stats`] — Wilson/Hoeffding confidence intervals shared by the
//!   conformance simulator and the interval-model learner.
//!
//! # Example
//!
//! Solve a 2×2 linear system:
//!
//! ```
//! use tml_numerics::{DenseMatrix, solve::solve_dense};
//!
//! # fn main() -> Result<(), tml_numerics::NumericsError> {
//! let a = DenseMatrix::from_rows(vec![vec![2.0, 1.0], vec![1.0, 3.0]])?;
//! let x = solve_dense(&a, &[3.0, 5.0])?;
//! assert!((x[0] - 0.8).abs() < 1e-12);
//! assert!((x[1] - 1.4).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
mod dense;
mod error;
mod field;
pub mod interval;
pub mod iterative;
pub mod scc;
pub mod solve;
mod sparse;
pub mod stats;
pub mod vector;

pub use budget::{Budget, CancelToken, Diagnostics, Exhaustion};
pub use dense::DenseMatrix;
pub use error::NumericsError;
pub use field::Field;
pub use sparse::{CsrMatrix, Triplet, PAR_NNZ_THRESHOLD};
