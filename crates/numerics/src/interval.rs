//! Interval (two-sided) iteration with sound error bounds.
//!
//! Plain value iteration stops when consecutive iterates are close — a
//! heuristic that is known to report wrong answers on slowly mixing
//! chains. Interval iteration (Haddad & Monmege) instead maintains *two*
//! iterates around the fixed point of `x = A·x + b`:
//!
//! * a lower iterate started below the fixed point, and
//! * an upper iterate started above it.
//!
//! When `A` is entrywise non-negative the update is monotone, so both
//! iterates bracket the fixed point after every sweep; the solver stops
//! once the bracket is narrower than the tolerance, and the reported
//! bounds are **sound**: the true solution lies between them (up to
//! floating-point rounding of individual sweeps).
//!
//! For reachability probabilities the bracket `[0, 1]` always works. For
//! expected rewards there is no a-priori upper bound; [`certified_upper_bound`]
//! grows a candidate from an approximate solution and *verifies* it with a
//! single sweep — `F(hi) ≤ hi` pointwise implies `hi` dominates the least
//! fixed point by Knaster–Tarski.

use tml_telemetry::{counter, span};

use crate::budget::{Budget, Exhaustion};
use crate::iterative::{gs_sweep_range, IterOptions};
use crate::{CsrMatrix, NumericsError};

/// Outcome of a two-sided iteration: a bracket around the fixed point.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalRun {
    /// Lower iterate: pointwise at most the fixed point.
    pub lo: Vec<f64>,
    /// Upper iterate: pointwise at least the fixed point.
    pub hi: Vec<f64>,
    /// Number of sweeps performed (each sweep updates both iterates).
    pub iterations: usize,
    /// Final max-norm bracket width `max_s (hi_s − lo_s)`.
    pub width: f64,
    /// Whether the width reached the tolerance.
    pub converged: bool,
    /// Why the budget stopped the run early, if it did.
    pub stopped: Option<Exhaustion>,
}

impl IntervalRun {
    /// The bracket midpoint — the point estimate whose error is at most
    /// half the final width.
    pub fn midpoint(&self) -> Vec<f64> {
        self.lo.iter().zip(&self.hi).map(|(l, h)| 0.5 * (l + h)).collect()
    }
}

/// Two-sided Gauss–Seidel iteration for `x = A·x + b`.
///
/// Requires `A` entrywise non-negative (the update must be monotone) and
/// an initial bracket `lo0 ≤ x* ≤ hi0` around the fixed point `x*` — for
/// sub-stochastic probability systems `lo0 = 0`, `hi0 = 1`; for reward
/// systems obtain `hi0` from [`certified_upper_bound`]. Both iterates
/// remain valid bounds after every sweep; convergence is declared when
/// the bracket width drops to `opts.tolerance`.
///
/// # Errors
///
/// * [`NumericsError::ShapeMismatch`] on dimension mismatch.
/// * [`NumericsError::NotMonotone`] if `A` has a negative entry.
pub fn interval_iteration_budgeted(
    a: &CsrMatrix,
    b: &[f64],
    lo0: &[f64],
    hi0: &[f64],
    opts: IterOptions,
    budget: &Budget,
) -> Result<IntervalRun, NumericsError> {
    if a.rows() != a.cols() {
        return Err(NumericsError::ShapeMismatch {
            detail: format!(
                "interval iteration requires square matrix, got {}x{}",
                a.rows(),
                a.cols()
            ),
        });
    }
    if b.len() != a.rows() || lo0.len() != a.rows() || hi0.len() != a.rows() {
        return Err(NumericsError::ShapeMismatch {
            detail: format!(
                "dimension mismatch: matrix {}x{}, b {}, lo {}, hi {}",
                a.rows(),
                a.cols(),
                b.len(),
                lo0.len(),
                hi0.len()
            ),
        });
    }
    check_nonnegative(a)?;
    let n = a.rows();
    let _span = span!("numerics.interval", states = n, nnz = a.nnz());
    let mut lo = lo0.to_vec();
    let mut hi = hi0.to_vec();
    let mut width = bracket_width(&lo, &hi);
    let run = 'solve: {
        if width <= opts.tolerance {
            break 'solve IntervalRun {
                lo,
                hi,
                iterations: 0,
                width,
                converged: true,
                stopped: None,
            };
        }
        for it in 1..=opts.max_iterations {
            if let Some(cause) = budget.check(it as u64 - 1) {
                break 'solve IntervalRun {
                    lo,
                    hi,
                    iterations: it - 1,
                    width,
                    converged: false,
                    stopped: Some(cause),
                };
            }
            gs_sweep_range(a, b, &mut lo, 0, n);
            gs_sweep_range(a, b, &mut hi, 0, n);
            width = bracket_width(&lo, &hi);
            if width <= opts.tolerance {
                break 'solve IntervalRun {
                    lo,
                    hi,
                    iterations: it,
                    width,
                    converged: true,
                    stopped: None,
                };
            }
        }
        IntervalRun {
            lo,
            hi,
            iterations: opts.max_iterations,
            width,
            converged: false,
            stopped: None,
        }
    };
    counter!("numerics.solve.sweeps", run.iterations);
    Ok(run)
}

/// Grows a verified upper bound on the least fixed point of `x = A·x + b`
/// from an approximate solution.
///
/// Starting from `x̃` inflated by a small margin, the candidate is checked
/// with one matvec: if `A·hi + b ≤ hi` pointwise the candidate dominates
/// the least fixed point (Knaster–Tarski) and is returned. Otherwise the
/// margin doubles; after `MAX_GROWTH_STEPS` failures `None` is returned
/// (the operator is likely not contractive).
///
/// Requires `A` entrywise non-negative and `b ≥ 0` for the domination
/// argument; returns `None` otherwise rather than an unsound bound.
pub fn certified_upper_bound(a: &CsrMatrix, b: &[f64], x_approx: &[f64]) -> Option<Vec<f64>> {
    const MAX_GROWTH_STEPS: u32 = 40;
    if a.rows() != a.cols() || b.len() != a.rows() || x_approx.len() != a.rows() {
        return None;
    }
    if check_nonnegative(a).is_err() || b.iter().any(|&v| v.is_nan() || v < 0.0) {
        return None;
    }
    if x_approx.iter().any(|v| !v.is_finite()) {
        return None;
    }
    let n = a.rows();
    let mut margin = 1e-9_f64;
    let mut candidate = vec![0.0_f64; n];
    let mut image = vec![0.0_f64; n];
    for _ in 0..MAX_GROWTH_STEPS {
        for (c, &x) in candidate.iter_mut().zip(x_approx) {
            *c = x.max(0.0) * (1.0 + margin) + margin;
        }
        a.mat_vec_into(&candidate, &mut image).ok()?;
        let dominated =
            image.iter().zip(b).zip(&candidate).all(|((ax, rhs), cand)| ax + rhs <= *cand);
        if dominated {
            return Some(candidate);
        }
        margin *= 2.0;
    }
    None
}

/// The interval sweeps are monotone only when every entry is non-negative
/// **and** every diagonal entry is strictly below one (the Gauss–Seidel
/// update divides by `1 − a_rr`; a negative denominator would flip the
/// inequality and silently produce unsound "bounds").
fn check_nonnegative(a: &CsrMatrix) -> Result<(), NumericsError> {
    for r in 0..a.rows() {
        for (c, v) in a.row_entries(r) {
            if v < 0.0 || v.is_nan() || (c == r && v >= 1.0) {
                return Err(NumericsError::NotMonotone { row: r });
            }
        }
    }
    Ok(())
}

fn bracket_width(lo: &[f64], hi: &[f64]) -> f64 {
    lo.iter().zip(hi).map(|(l, h)| h - l).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Triplet;

    fn csr(n: usize, entries: &[(usize, usize, f64)]) -> CsrMatrix {
        let trips: Vec<Triplet> = entries.iter().map(|&(r, c, v)| Triplet::new(r, c, v)).collect();
        CsrMatrix::from_triplets(n, n, &trips).unwrap()
    }

    #[test]
    fn brackets_the_fixed_point() {
        // x = 0.5x + 0.25 ⇒ x* = 0.5, probability-style bracket [0, 1].
        let a = csr(1, &[(0, 0, 0.5)]);
        let opts = IterOptions { tolerance: 1e-12, max_iterations: 10_000 };
        let run =
            interval_iteration_budgeted(&a, &[0.25], &[0.0], &[1.0], opts, &Budget::unlimited())
                .unwrap();
        assert!(run.converged);
        assert!(run.lo[0] <= 0.5 + 1e-12 && 0.5 <= run.hi[0] + 1e-12);
        assert!((run.midpoint()[0] - 0.5).abs() < 1e-11);
    }

    #[test]
    fn every_sweep_keeps_bounds_sound() {
        // Slowly mixing 2-cycle; check the partial bracket after a budget
        // stop still contains the true solution x* = (1, 1).
        let a = csr(2, &[(0, 1, 0.99), (1, 0, 0.99)]);
        let b = [0.01, 0.01];
        let budget = Budget::unlimited().with_max_evaluations(5);
        let opts = IterOptions { tolerance: 1e-14, max_iterations: 1_000_000 };
        let run =
            interval_iteration_budgeted(&a, &b, &[0.0, 0.0], &[1.0, 1.0], opts, &budget).unwrap();
        assert_eq!(run.stopped, Some(Exhaustion::Evaluations));
        assert!(!run.converged);
        for s in 0..2 {
            assert!(run.lo[s] <= 1.0 + 1e-12 && 1.0 <= run.hi[s] + 1e-12);
        }
    }

    #[test]
    fn negative_entries_rejected() {
        let a = csr(1, &[(0, 0, -0.5)]);
        let err = interval_iteration_budgeted(
            &a,
            &[1.0],
            &[0.0],
            &[1.0],
            IterOptions::default(),
            &Budget::unlimited(),
        )
        .unwrap_err();
        assert!(matches!(err, NumericsError::NotMonotone { row: 0 }));
    }

    #[test]
    fn upper_bound_certificate_for_rewards() {
        // Expected-reward style system: x = 0.9x + 1 ⇒ x* = 10.
        let a = csr(1, &[(0, 0, 0.9)]);
        let hi = certified_upper_bound(&a, &[1.0], &[10.0]).expect("certificate");
        assert!(hi[0] >= 10.0);
        // The certificate must verify: A·hi + b ≤ hi.
        assert!(0.9 * hi[0] + 1.0 <= hi[0]);
        // And it should be usable as an interval start.
        let opts = IterOptions { tolerance: 1e-9, max_iterations: 100_000 };
        let run = interval_iteration_budgeted(&a, &[1.0], &[0.0], &hi, opts, &Budget::unlimited())
            .unwrap();
        assert!(run.converged);
        assert!(run.lo[0] <= 10.0 + 1e-9 && 10.0 <= run.hi[0] + 1e-9);
    }

    #[test]
    fn non_contractive_certificate_fails_cleanly() {
        // x = 2x + 1 has no finite least fixed point; no certificate exists.
        let a = csr(1, &[(0, 0, 2.0)]);
        assert!(certified_upper_bound(&a, &[1.0], &[1.0]).is_none());
    }

    #[test]
    fn shape_errors() {
        let a = CsrMatrix::from_triplets(2, 1, &[]).unwrap();
        assert!(interval_iteration_budgeted(
            &a,
            &[0.0],
            &[0.0],
            &[1.0],
            IterOptions::default(),
            &Budget::unlimited()
        )
        .is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::iterative::{gauss_seidel, IterOptions};
    use crate::Triplet;
    use proptest::prelude::*;

    proptest! {
        /// On random sub-stochastic systems the bracket always contains
        /// the (tightly converged) Gauss–Seidel solution.
        #[test]
        fn bracket_contains_reference_solution(
            raw in proptest::collection::vec(0.0_f64..1.0, 16),
            b in proptest::collection::vec(0.0_f64..1.0, 4),
        ) {
            let n = 4;
            let mut triplets = Vec::new();
            for r in 0..n {
                let row: Vec<f64> = (0..n).map(|c| raw[r * n + c]).collect();
                let sum: f64 = row.iter().sum();
                let scale = if sum > 0.0 { 0.9 / sum } else { 0.0 };
                for (c, v) in row.iter().enumerate() {
                    if *v > 0.0 {
                        triplets.push(Triplet::new(r, c, v * scale));
                    }
                }
            }
            let a = CsrMatrix::from_triplets(n, n, &triplets).unwrap();
            let opts = IterOptions { tolerance: 1e-12, max_iterations: 200_000 };
            let hi0 = certified_upper_bound(&a, &b, &vec![1.0; n])
                .expect("sub-stochastic systems always certify");
            let run = interval_iteration_budgeted(
                &a, &b, &vec![0.0; n], &hi0, opts, &Budget::unlimited(),
            ).unwrap();
            let reference = gauss_seidel(&a, &b, &vec![0.0; n], opts).unwrap();
            prop_assert!(run.converged);
            for s in 0..n {
                prop_assert!(run.lo[s] <= reference.x[s] + 1e-9);
                prop_assert!(reference.x[s] <= run.hi[s] + 1e-9);
            }
        }
    }
}
