//! Direct linear solvers over an arbitrary [`Field`].
//!
//! The central routine is [`solve_dense`]: Gaussian elimination with
//! partial pivoting. Because it is generic over [`Field`], instantiating it
//! with rational functions performs *symbolic* elimination — which is the
//! matrix formulation of the state-elimination algorithm used by parametric
//! probabilistic model checkers such as PARAM and PRISM's parametric engine.

use crate::{DenseMatrix, Field, NumericsError};

/// Solves `A·x = b` by Gaussian elimination with partial pivoting.
///
/// Pivot rows are chosen by [`Field::pivot_weight`]; for `f64` this is the
/// usual magnitude-based partial pivoting, while for symbolic fields any
/// non-zero pivot is acceptable.
///
/// # Errors
///
/// * [`NumericsError::ShapeMismatch`] if `A` is not square or `b` has the
///   wrong length.
/// * [`NumericsError::SingularMatrix`] if no non-zero pivot can be found in
///   some column.
///
/// # Example
///
/// ```
/// use tml_numerics::{DenseMatrix, solve::solve_dense};
///
/// # fn main() -> Result<(), tml_numerics::NumericsError> {
/// let a = DenseMatrix::from_rows(vec![vec![0.0, 2.0], vec![1.0, 0.0]])?;
/// let x = solve_dense(&a, &[4.0, 3.0])?;
/// assert_eq!(x, vec![3.0, 2.0]);
/// # Ok(())
/// # }
/// ```
pub fn solve_dense<T: Field>(a: &DenseMatrix<T>, b: &[T]) -> Result<Vec<T>, NumericsError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(NumericsError::ShapeMismatch {
            detail: format!("solve_dense requires a square matrix, got {}x{}", a.rows(), a.cols()),
        });
    }
    if b.len() != n {
        return Err(NumericsError::ShapeMismatch {
            detail: format!("right-hand side has length {}, expected {n}", b.len()),
        });
    }

    // Augmented working copy.
    let mut m: Vec<Vec<T>> = (0..n).map(|r| a.row(r).to_vec()).collect();
    let mut rhs: Vec<T> = b.to_vec();

    for col in 0..n {
        // Partial pivoting by weight.
        let mut best = col;
        let mut best_w = m[col][col].pivot_weight();
        for (r, row) in m.iter().enumerate().skip(col + 1) {
            let w = row[col].pivot_weight();
            if w > best_w {
                best = r;
                best_w = w;
            }
        }
        if best_w == 0.0 || m[best][col].is_zero() {
            return Err(NumericsError::SingularMatrix { at: col });
        }
        m.swap(col, best);
        rhs.swap(col, best);

        let pivot = m[col][col].clone();
        for r in (col + 1)..n {
            if m[r][col].is_zero() {
                continue;
            }
            let factor = m[r][col].div(&pivot);
            // Rows `col` and `r` of `m` are read and written together, so an
            // iterator form would need split borrows.
            #[allow(clippy::needless_range_loop)]
            for c in col..n {
                if m[col][c].is_zero() {
                    continue;
                }
                let delta = factor.mul(&m[col][c]);
                m[r][c] = m[r][c].sub(&delta);
            }
            // Exact zero below the pivot by construction.
            m[r][col] = T::zero();
            if !rhs[col].is_zero() {
                let delta = factor.mul(&rhs[col]);
                rhs[r] = rhs[r].sub(&delta);
            }
        }
    }

    // Back-substitution.
    let mut x = vec![T::zero(); n];
    for col in (0..n).rev() {
        let mut acc = rhs[col].clone();
        for c in (col + 1)..n {
            if m[col][c].is_zero() || x[c].is_zero() {
                continue;
            }
            acc = acc.sub(&m[col][c].mul(&x[c]));
        }
        x[col] = acc.div(&m[col][col]);
    }
    Ok(x)
}

/// Computes the residual `‖A·x − b‖∞` of a candidate `f64` solution.
///
/// # Errors
///
/// Returns [`NumericsError::ShapeMismatch`] on dimension mismatch.
pub fn residual_inf(a: &DenseMatrix<f64>, x: &[f64], b: &[f64]) -> Result<f64, NumericsError> {
    let ax = a.mat_vec(x)?;
    if ax.len() != b.len() {
        return Err(NumericsError::ShapeMismatch {
            detail: format!("residual: A·x has length {}, b has length {}", ax.len(), b.len()),
        });
    }
    Ok(ax.iter().zip(b).map(|(p, q)| (p - q).abs()).fold(0.0, f64::max))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_3x3() {
        let a = DenseMatrix::from_rows(vec![
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ])
        .unwrap();
        let b = vec![8.0, -11.0, -3.0];
        let x = solve_dense(&a, &b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!((x[2] - -1.0).abs() < 1e-12);
        assert!(residual_inf(&a, &x, &b).unwrap() < 1e-12);
    }

    #[test]
    fn detects_singular() {
        let a = DenseMatrix::from_rows(vec![vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        let err = solve_dense(&a, &[1.0, 2.0]).unwrap_err();
        assert!(matches!(err, NumericsError::SingularMatrix { .. }));
    }

    #[test]
    fn rejects_non_square() {
        let a = DenseMatrix::from_rows(vec![vec![1.0, 2.0]]).unwrap();
        assert!(solve_dense(&a, &[1.0]).is_err());
    }

    #[test]
    fn rejects_bad_rhs_length() {
        let a: DenseMatrix<f64> = DenseMatrix::identity(2);
        assert!(solve_dense(&a, &[1.0]).is_err());
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = DenseMatrix::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = solve_dense(&a, &[5.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 5.0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// For random well-conditioned (diagonally dominant) systems the
        /// solver's residual is tiny.
        #[test]
        fn random_dd_systems_have_small_residual(
            seed_entries in proptest::collection::vec(-1.0_f64..1.0, 16),
            b in proptest::collection::vec(-10.0_f64..10.0, 4),
        ) {
            let n = 4;
            let mut rows = Vec::new();
            for r in 0..n {
                let mut row: Vec<f64> = (0..n).map(|c| seed_entries[r * n + c]).collect();
                // Make strictly diagonally dominant => nonsingular.
                let sum: f64 = row.iter().map(|v| v.abs()).sum();
                row[r] = sum + 1.0;
                rows.push(row);
            }
            let a = DenseMatrix::from_rows(rows).unwrap();
            let x = solve_dense(&a, &b).unwrap();
            prop_assert!(residual_inf(&a, &x, &b).unwrap() < 1e-9);
        }

        /// Solving with the identity returns the right-hand side.
        #[test]
        fn identity_solve_is_rhs(b in proptest::collection::vec(-100.0_f64..100.0, 1..8)) {
            let a: DenseMatrix<f64> = DenseMatrix::identity(b.len());
            let x = solve_dense(&a, &b).unwrap();
            prop_assert_eq!(x, b);
        }
    }
}
