//! Execution budgets and degradation diagnostics.
//!
//! Every long-running routine in the workspace — iterative linear solvers,
//! value iteration, the penalty optimizer, the repair pipelines — accepts a
//! [`Budget`]: a wall-clock deadline, a cap on evaluations/iterations and a
//! shareable [`CancelToken`]. Routines poll the budget and, instead of
//! aborting, return the **best result found so far** together with a
//! [`Diagnostics`] record describing what was spent and which degradation
//! paths (solver fallbacks, accepted residuals, exhaustion) were taken.
//!
//! The evaluation cap is interpreted in the consumer's local unit: sweeps
//! for iterative solvers and value iteration, merit-function evaluations
//! for the penalty solver. The deadline and the cancellation token are
//! global — the same `Budget` (and its clones) can be handed to every layer
//! of a pipeline and a single `cancel()` stops them all.
//!
//! # Thread-safety contract
//!
//! A [`Budget`] and its clones may be shared freely across threads:
//!
//! * The [`CancelToken`] is an `Arc<AtomicBool>` — `cancel()` on any clone
//!   is observed by every other clone on every thread (relaxed ordering;
//!   cancellation is best-effort and needs no synchronizing side effects).
//! * The **shared evaluation counter** is an `Arc<AtomicU64>` that clones
//!   share, exactly like the token. Parallel workers call
//!   [`Budget::charge`] to add their evaluations and atomically compare the
//!   running total against the cap, so one cap governs the *sum* of work
//!   across all threads rather than each thread individually.
//! * The deadline is an immutable `Instant`; reading it is trivially safe.
//!
//! Two polling styles coexist:
//!
//! * [`Budget::check`]`(local_count)` — for single-threaded consumers that
//!   keep their own counter (iterative solvers, value iteration, the
//!   checker). The shared counter is not involved.
//! * [`Budget::charge`]`(n)` / [`Budget::spent`] — for parallel consumers
//!   (the penalty solver's restarts). Exhaustion is detected against the
//!   shared total.
//!
//! Under a finite cap, *which* parallel worker observes exhaustion first is
//! scheduling-dependent; determinism across serial and parallel execution
//! is guaranteed only for unlimited evaluation budgets (see DESIGN.md §8).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tml_telemetry::summary::DegradationReport;
use tml_telemetry::MetricsSnapshot;

/// A shareable cancellation flag.
///
/// Cloning the token shares the underlying flag: cancelling any clone
/// cancels them all. This is how a server front-end aborts an in-flight
/// repair from another thread.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; observed by every clone of this token.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Why a budgeted computation stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exhaustion {
    /// The wall-clock deadline passed.
    Deadline,
    /// The evaluation/iteration cap was reached.
    Evaluations,
    /// The [`CancelToken`] was triggered.
    Cancelled,
}

impl Exhaustion {
    /// Merge priority when combining diagnostics from parallel workers:
    /// an explicit cancellation outranks a deadline, which outranks an
    /// evaluation cap. Using a total order (rather than "first seen wins")
    /// makes [`Diagnostics::absorb`] commutative, so per-thread diagnostics
    /// merged in any order agree with a serial run.
    fn severity(self) -> u8 {
        match self {
            Exhaustion::Evaluations => 0,
            Exhaustion::Deadline => 1,
            Exhaustion::Cancelled => 2,
        }
    }
}

impl std::fmt::Display for Exhaustion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Exhaustion::Deadline => f.write_str("deadline exceeded"),
            Exhaustion::Evaluations => f.write_str("evaluation cap reached"),
            Exhaustion::Cancelled => f.write_str("cancelled"),
        }
    }
}

/// An effort bound for a computation: optional wall-clock deadline,
/// optional evaluation cap and optional cancellation token.
///
/// The default budget is unlimited, so budget-aware code behaves exactly
/// like its unbudgeted predecessor unless a caller opts in.
///
/// # Example
///
/// ```
/// use std::time::Duration;
/// use tml_numerics::budget::Budget;
///
/// let budget = Budget::unlimited()
///     .with_deadline(Duration::from_millis(50))
///     .with_max_evaluations(10_000);
/// assert!(budget.check(0).is_none());
/// assert!(budget.check(10_000).is_some());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    max_evaluations: Option<u64>,
    cancel: Option<CancelToken>,
    // Shared across clones (like the cancel token) so parallel workers
    // charging the same budget are governed by one cumulative total.
    spent: Arc<AtomicU64>,
}

impl Budget {
    /// A budget with no limits (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Caps wall-clock time at `duration` from **now**.
    #[must_use]
    pub fn with_deadline(mut self, duration: Duration) -> Self {
        self.deadline = Some(Instant::now() + duration);
        self
    }

    /// Caps wall-clock time at an absolute instant.
    #[must_use]
    pub fn with_deadline_at(mut self, at: Instant) -> Self {
        self.deadline = Some(at);
        self
    }

    /// Caps the number of evaluations (consumer-local unit: solver sweeps,
    /// merit evaluations, …).
    #[must_use]
    pub fn with_max_evaluations(mut self, n: u64) -> Self {
        self.max_evaluations = Some(n);
        self
    }

    /// Attaches a cancellation token.
    #[must_use]
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// A copy of this budget with the evaluation cap removed, keeping the
    /// deadline and the cancellation token.
    ///
    /// Evaluation caps are consumer-local (sweeps, merit evaluations, …),
    /// so a budget handed down to a *nested* computation with a different
    /// evaluation unit should carry only the global limits.
    #[must_use]
    pub fn without_evaluation_cap(&self) -> Budget {
        Budget {
            deadline: self.deadline,
            max_evaluations: None,
            cancel: self.cancel.clone(),
            spent: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A copy of this budget with the **same limits** but a fresh shared
    /// counter.
    ///
    /// Use this to scope cumulative [`charge`](Self::charge) accounting to
    /// one run: a solver that forks the caller's budget per `solve` gives
    /// every solve the full evaluation cap, while clones *within* the run
    /// still share one counter across worker threads. The deadline and the
    /// cancellation token remain shared with the original.
    #[must_use]
    pub fn fork(&self) -> Budget {
        Budget {
            deadline: self.deadline,
            max_evaluations: self.max_evaluations,
            cancel: self.cancel.clone(),
            spent: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Whether this budget imposes no limit at all.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_evaluations.is_none() && self.cancel.is_none()
    }

    /// The absolute deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The evaluation cap, if any.
    pub fn max_evaluations(&self) -> Option<u64> {
        self.max_evaluations
    }

    /// The attached cancellation token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Time left until the deadline (`None` when no deadline is set; zero
    /// once it has passed).
    pub fn remaining_time(&self) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Polls the budget: given the evaluations spent so far, reports why
    /// the computation must stop, or `None` to continue.
    ///
    /// Cancellation is reported first, then the deadline, then the
    /// evaluation cap.
    pub fn check(&self, evaluations: u64) -> Option<Exhaustion> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Some(Exhaustion::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(Exhaustion::Deadline);
            }
        }
        if let Some(cap) = self.max_evaluations {
            if evaluations >= cap {
                return Some(Exhaustion::Evaluations);
            }
        }
        None
    }

    /// Atomically adds `n` evaluations to the **shared** counter and polls
    /// the budget against the new cumulative total.
    ///
    /// The counter is shared by every clone of this budget (like the
    /// cancellation token), so parallel workers charging concurrently are
    /// governed by a single cap on their combined work. Cancellation is
    /// reported first, then the deadline, then the evaluation cap —
    /// matching [`check`](Self::check).
    pub fn charge(&self, n: u64) -> Option<Exhaustion> {
        let total = self.spent.fetch_add(n, Ordering::Relaxed) + n;
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Some(Exhaustion::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(Exhaustion::Deadline);
            }
        }
        if let Some(cap) = self.max_evaluations {
            if total >= cap {
                return Some(Exhaustion::Evaluations);
            }
        }
        None
    }

    /// The cumulative total charged to the shared counter (across all
    /// clones and threads). Does not reflect counts polled via
    /// [`check`](Self::check), which is local-counter based.
    pub fn spent(&self) -> u64 {
        self.spent.load(Ordering::Relaxed)
    }
}

/// What a budgeted computation spent and which degradation paths it took.
///
/// Attached to checker results, optimizer solutions and repair outcomes so
/// callers can distinguish a pristine answer from a best-effort one.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Diagnostics {
    /// Evaluations spent (consumer-local unit: sweeps, merit evaluations…).
    pub evaluations: u64,
    /// Human-readable fallback events, in the order they fired.
    pub fallbacks: Vec<String>,
    /// Worst residual accepted in lieu of full convergence (zero when every
    /// solve converged to tolerance).
    pub worst_residual: f64,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// Why the computation stopped early, if it did.
    pub exhausted: Option<Exhaustion>,
    /// Aggregated telemetry (named counters and span-duration histograms)
    /// for the producing computation. Empty unless the producer records
    /// metrics; merged commutatively by [`absorb`](Self::absorb).
    pub telemetry: MetricsSnapshot,
}

impl Diagnostics {
    /// Fresh, empty diagnostics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a fallback event (e.g. a solver switch).
    pub fn record_fallback(&mut self, event: impl Into<String>) {
        self.fallbacks.push(event.into());
    }

    /// Records a residual accepted without full convergence; keeps the
    /// worst (NaN residuals are recorded as infinite).
    pub fn record_residual(&mut self, residual: f64) {
        let r = if residual.is_nan() { f64::INFINITY } else { residual };
        if r > self.worst_residual {
            self.worst_residual = r;
        }
    }

    /// Marks the computation as stopped early; the first cause sticks.
    pub fn mark_exhausted(&mut self, cause: Exhaustion) {
        self.exhausted.get_or_insert(cause);
    }

    /// Whether the result is degraded — produced via fallbacks, accepted
    /// residuals or an exhausted budget.
    pub fn degraded(&self) -> bool {
        self.exhausted.is_some() || !self.fallbacks.is_empty() || self.worst_residual > 0.0
    }

    /// Folds another diagnostics record into this one: evaluations add,
    /// fallbacks append, residuals take the max, elapsed adds, telemetry
    /// merges, and exhaustion causes combine by severity (Cancelled >
    /// Deadline > Evaluations).
    ///
    /// Every component is commutative and associative up to fallback
    /// *ordering* (the fallback multiset is order-independent), so
    /// absorbing per-thread diagnostics from parallel restarts in any order
    /// yields the same evaluation counts, worst residual, fallback set and
    /// exhaustion cause as a serial run. The previous "first cause sticks"
    /// rule made the merged cause depend on thread completion order.
    pub fn absorb(&mut self, other: &Diagnostics) {
        self.evaluations += other.evaluations;
        self.fallbacks.extend(other.fallbacks.iter().cloned());
        self.record_residual(other.worst_residual);
        self.elapsed += other.elapsed;
        self.telemetry.merge(&other.telemetry);
        if let Some(cause) = other.exhausted {
            match self.exhausted {
                Some(existing) if existing.severity() >= cause.severity() => {}
                _ => self.exhausted = Some(cause),
            }
        }
    }

    /// Renders the degradation block (fallbacks, worst residual, early-stop
    /// cause) through the telemetry summary renderer — the same code path
    /// that formats JSONL-derived summaries, so the two can never disagree.
    /// Returns an empty string when the run was clean.
    pub fn render_degradation(&self) -> String {
        DegradationReport {
            fallbacks: &self.fallbacks,
            worst_residual: if self.worst_residual > 0.0 {
                Some(self.worst_residual)
            } else {
                None
            },
            exhausted: self.exhausted.map(|e| e.to_string()),
        }
        .render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_stops() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        assert!(b.check(u64::MAX).is_none());
        assert!(b.remaining_time().is_none());
    }

    #[test]
    fn evaluation_cap() {
        let b = Budget::unlimited().with_max_evaluations(10);
        assert!(!b.is_unlimited());
        assert_eq!(b.check(9), None);
        assert_eq!(b.check(10), Some(Exhaustion::Evaluations));
    }

    #[test]
    fn deadline_in_the_past_stops_immediately() {
        let b = Budget::unlimited().with_deadline(Duration::ZERO);
        assert_eq!(b.check(0), Some(Exhaustion::Deadline));
        assert_eq!(b.remaining_time(), Some(Duration::ZERO));
    }

    #[test]
    fn cancellation_is_shared_and_wins() {
        let token = CancelToken::new();
        let b = Budget::unlimited().with_cancel_token(token.clone()).with_max_evaluations(0);
        // Evaluation cap already hit, but not cancelled yet.
        assert_eq!(b.check(0), Some(Exhaustion::Evaluations));
        token.clone().cancel();
        assert_eq!(b.check(0), Some(Exhaustion::Cancelled));
        assert!(token.is_cancelled());
    }

    #[test]
    fn diagnostics_merge() {
        let mut a = Diagnostics::new();
        a.evaluations = 5;
        a.record_fallback("gauss-seidel -> jacobi");
        a.record_residual(1e-3);
        let mut b = Diagnostics::new();
        b.evaluations = 7;
        b.record_residual(1e-2);
        b.mark_exhausted(Exhaustion::Deadline);
        a.absorb(&b);
        assert_eq!(a.evaluations, 12);
        assert_eq!(a.fallbacks.len(), 1);
        assert_eq!(a.worst_residual, 1e-2);
        assert_eq!(a.exhausted, Some(Exhaustion::Deadline));
        assert!(a.degraded());
        // First cause sticks.
        a.mark_exhausted(Exhaustion::Cancelled);
        assert_eq!(a.exhausted, Some(Exhaustion::Deadline));
    }

    #[test]
    fn absorb_exhaustion_merge_is_commutative() {
        let causes = [
            None,
            Some(Exhaustion::Evaluations),
            Some(Exhaustion::Deadline),
            Some(Exhaustion::Cancelled),
        ];
        for &ca in &causes {
            for &cb in &causes {
                let mut a = Diagnostics::new();
                if let Some(c) = ca {
                    a.mark_exhausted(c);
                }
                let mut b = Diagnostics::new();
                if let Some(c) = cb {
                    b.mark_exhausted(c);
                }
                let mut ab = a.clone();
                ab.absorb(&b);
                let mut ba = b.clone();
                ba.absorb(&a);
                assert_eq!(ab.exhausted, ba.exhausted, "absorb({ca:?}, {cb:?})");
            }
        }
        // Severity: a cancellation is never masked by a deadline.
        let mut d = Diagnostics::new();
        d.mark_exhausted(Exhaustion::Deadline);
        let mut c = Diagnostics::new();
        c.mark_exhausted(Exhaustion::Cancelled);
        d.absorb(&c);
        assert_eq!(d.exhausted, Some(Exhaustion::Cancelled));
    }

    #[test]
    fn absorb_merges_telemetry_snapshots() {
        let mut a = Diagnostics::new();
        a.telemetry.incr("checker.solve.sweeps", 3);
        let mut b = Diagnostics::new();
        b.telemetry.incr("checker.solve.sweeps", 4);
        b.telemetry.incr("checker.solve.fallbacks", 1);
        a.absorb(&b);
        assert_eq!(a.telemetry.counter("checker.solve.sweeps"), 7);
        assert_eq!(a.telemetry.counter("checker.solve.fallbacks"), 1);
    }

    #[test]
    fn degradation_rendering_matches_diagnostics() {
        let mut d = Diagnostics::new();
        assert_eq!(d.render_degradation(), "");
        d.record_fallback("jacobi stalled; solving directly");
        d.record_residual(2e-6);
        d.mark_exhausted(Exhaustion::Deadline);
        let text = d.render_degradation();
        assert!(text.starts_with("degraded:"));
        assert!(text.contains("jacobi stalled; solving directly"));
        assert!(text.contains("deadline exceeded"));
    }

    #[test]
    fn charge_accumulates_across_clones() {
        let b = Budget::unlimited().with_max_evaluations(10);
        let c = b.clone();
        assert!(b.charge(4).is_none());
        assert!(c.charge(4).is_none());
        // 4 + 4 + 2 = 10 hits the cap, even though no single clone did.
        assert_eq!(b.charge(2), Some(Exhaustion::Evaluations));
        assert_eq!(b.spent(), 10);
        assert_eq!(c.spent(), 10);
        // The local-counter API remains independent of the shared total.
        assert!(b.check(9).is_none());
    }

    #[test]
    fn charge_is_sound_under_concurrency() {
        let b = Budget::unlimited().with_max_evaluations(1000);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let b = b.clone();
                s.spawn(move || {
                    for _ in 0..250 {
                        b.charge(1);
                    }
                });
            }
        });
        assert_eq!(b.spent(), 1000);
        assert_eq!(b.charge(1), Some(Exhaustion::Evaluations));
    }

    #[test]
    fn without_evaluation_cap_gets_a_fresh_counter() {
        let b = Budget::unlimited().with_max_evaluations(5);
        b.charge(5);
        let nested = b.without_evaluation_cap();
        assert_eq!(nested.spent(), 0);
        assert!(nested.charge(1_000_000).is_none());
        // The parent's shared total is untouched by the nested budget.
        assert_eq!(b.spent(), 5);
    }

    #[test]
    fn charge_reports_cancellation_first() {
        let token = CancelToken::new();
        let b = Budget::unlimited().with_cancel_token(token.clone()).with_max_evaluations(0);
        token.cancel();
        assert_eq!(b.charge(1), Some(Exhaustion::Cancelled));
    }

    #[test]
    fn nan_residual_recorded_as_infinite() {
        let mut d = Diagnostics::new();
        d.record_residual(f64::NAN);
        assert!(d.worst_residual.is_infinite());
        assert!(d.degraded());
    }
}
