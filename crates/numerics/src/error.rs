use std::error::Error;
use std::fmt;

/// Errors produced by the numeric kernels in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NumericsError {
    /// A matrix was constructed from rows of unequal length, or with a
    /// dimension of zero where a non-empty matrix was required.
    ShapeMismatch {
        /// Human-readable description of the offending shapes.
        detail: String,
    },
    /// A direct solver hit a (numerically) singular pivot.
    SingularMatrix {
        /// Row/column index at which elimination failed.
        at: usize,
    },
    /// An iterative solver did not converge within its iteration budget.
    NoConvergence {
        /// Number of iterations performed.
        iterations: usize,
        /// Residual norm when the solver gave up.
        residual: f64,
    },
    /// An index was out of bounds for the matrix or vector it addressed.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The length/dimension that was exceeded.
        len: usize,
    },
    /// An interval solver requires a monotone (entrywise non-negative)
    /// operator, but the matrix carries a negative entry — two-sided
    /// bounds would not be sound.
    NotMonotone {
        /// Row containing the offending negative entry.
        row: usize,
    },
}

impl fmt::Display for NumericsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericsError::ShapeMismatch { detail } => {
                write!(f, "shape mismatch: {detail}")
            }
            NumericsError::SingularMatrix { at } => {
                write!(f, "matrix is singular (no usable pivot at index {at})")
            }
            NumericsError::NoConvergence { iterations, residual } => write!(
                f,
                "iterative solver did not converge after {iterations} iterations \
                 (residual {residual:.3e})"
            ),
            NumericsError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for dimension {len}")
            }
            NumericsError::NotMonotone { row } => {
                write!(f, "interval iteration requires a non-negative matrix (row {row})")
            }
        }
    }
}

impl Error for NumericsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            NumericsError::ShapeMismatch { detail: "2x2 vs 3".into() },
            NumericsError::SingularMatrix { at: 1 },
            NumericsError::NoConvergence { iterations: 10, residual: 0.5 },
            NumericsError::IndexOutOfBounds { index: 5, len: 3 },
            NumericsError::NotMonotone { row: 2 },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumericsError>();
    }
}
