//! Robust (min-max) value iteration for interval DTMCs and MDPs.
//!
//! An interval model describes an *uncertainty set* of concrete models;
//! robust checking brackets the value of a property over every member:
//!
//! * the **pessimistic** value is the minimum over all members (nature
//!   adversarially re-picks a feasible row distribution at every step —
//!   the standard rectangular relaxation);
//! * the **optimistic** value is the maximum.
//!
//! A bounded property holds *robustly* when its worst-case side satisfies
//! the bound: lower bounds (`P>=b`, `R>=c`) test the pessimistic value,
//! upper bounds the optimistic one. For the degenerate set `lo == hi` both
//! sides collapse onto the scalar checker's value.
//!
//! The inner adversary problem per state — extremize `Σ p_t · x_t` over
//! the row polytope `{p : lo ≤ p ≤ hi, Σ p = 1}` — is solved exactly in
//! `O(n log n)`: start every transition at its lower bound and distribute
//! the remaining mass `1 − Σ lo` greedily in value order (ascending to
//! minimize, descending to maximize), capping each transition at `hi`.
//!
//! **Supported fragment.** Top-level `P ⋈ b [·]` / `R ⋈ c [·]` whose
//! operands are propositional (labels and boolean connectives), plus purely
//! propositional formulas (which need no uncertainty reasoning). Nested
//! probabilistic operators are rejected with [`CheckError::Unsupported`]:
//! negating a robustly-evaluated set would silently flip a for-all-members
//! claim into an exists-member claim. Reach rewards on interval MDPs are
//! likewise unsupported (the scheduler/nature finiteness interaction needs
//! qualitative machinery this checker does not carry); cumulative rewards
//! work on both model kinds.
//!
//! Every solve is budget-aware (sweeps charge the shared [`Budget`]) and
//! telemetry-instrumented: `checker.robust.solves` / `.sweeps` /
//! `.degraded` counters plus the `checker.backend.robust.{ok,fail}` pair
//! that feeds the runtime's `robust` circuit breaker. When that breaker has
//! cleared [`CheckOptions::robust_vi_enabled`] under [`LinearSolver::Auto`],
//! robust calls degrade to a scalar solve on the nominal (midpoint) model
//! with a collapsed bracket and a recorded fallback.

use tml_logic::{PathFormula, Query, RewardKind, StateFormula};
use tml_models::interval::{IntervalChoice, IntervalDtmc, IntervalMdp, IntervalTransition};
use tml_models::{Labeling, RewardStructure};
use tml_numerics::{Budget, Diagnostics};

use crate::run::CheckRun;
use crate::{CheckError, CheckOptions, LinearSolver};

/// Reach probabilities this close to one count as "almost surely" when
/// classifying which states have finite robust reach rewards. Documented in
/// DESIGN.md §16: reach probabilities within this margin of one may
/// misclassify a reward as infinite (never the reverse direction into
/// unsound finite values below the true one, since value iteration
/// converges from below).
const AS_REACH_EPS: f64 = 1e-6;

/// A two-sided robust value bracket: per-state pessimistic (minimum over
/// the uncertainty set) and optimistic (maximum) values.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustBracket {
    /// Minimum value over every member of the uncertainty set.
    pub pessimistic: Vec<f64>,
    /// Maximum value over every member.
    pub optimistic: Vec<f64>,
}

impl RobustBracket {
    /// The `[pessimistic, optimistic]` pair at one state.
    pub fn at(&self, state: usize) -> (f64, f64) {
        (self.pessimistic[state], self.optimistic[state])
    }

    /// Whether per-state `values` lie inside the bracket everywhere, up to
    /// `tol` (the nominal model's values must — that is the
    /// `robust-contains-nominal` conformance oracle).
    pub fn contains(&self, values: &[f64], tol: f64) -> bool {
        values.len() == self.pessimistic.len()
            && values
                .iter()
                .enumerate()
                .all(|(s, &v)| v >= self.pessimistic[s] - tol && v <= self.optimistic[s] + tol)
    }

    /// The widest per-state gap `optimistic − pessimistic`.
    pub fn width(&self) -> f64 {
        self.pessimistic.iter().zip(&self.optimistic).map(|(&lo, &hi)| hi - lo).fold(0.0, f64::max)
    }

    fn collapsed(values: Vec<f64>) -> Self {
        RobustBracket { pessimistic: values.clone(), optimistic: values }
    }
}

/// Result of robustly checking a formula on an interval model.
#[derive(Debug, Clone)]
pub struct RobustCheckResult {
    sat: Vec<bool>,
    values: Option<RobustBracket>,
    initial: usize,
    diagnostics: Diagnostics,
}

impl RobustCheckResult {
    fn new(sat: Vec<bool>, values: Option<RobustBracket>, initial: usize) -> Self {
        RobustCheckResult { sat, values, initial, diagnostics: Diagnostics::new() }
    }

    pub(crate) fn with_diagnostics(mut self, diagnostics: Diagnostics) -> Self {
        self.diagnostics = diagnostics;
        self
    }

    /// Whether the formula holds robustly (for every member) in `state`.
    pub fn holds_in(&self, state: usize) -> bool {
        self.sat[state]
    }

    /// Whether the formula holds robustly in the initial state.
    pub fn holds(&self) -> bool {
        self.sat[self.initial]
    }

    /// The per-state robust satisfaction mask.
    pub fn sat_mask(&self) -> &[bool] {
        &self.sat
    }

    /// The value bracket of a top-level `P`/`R` operator (`None` for purely
    /// propositional formulas).
    pub fn bracket(&self) -> Option<&RobustBracket> {
        self.values.as_ref()
    }

    /// The `[pessimistic, optimistic]` values in the initial state, when a
    /// bracket was computed.
    pub fn bracket_at_initial(&self) -> Option<(f64, f64)> {
        self.values.as_ref().map(|b| b.at(self.initial))
    }

    /// Diagnostics of the robust solve (sweeps, fallbacks, exhaustion).
    pub fn diagnostics(&self) -> &Diagnostics {
        &self.diagnostics
    }
}

/// Validates an interval DTMC's uncertainty set: finite endpoints inside
/// `[0, 1]`, `lo ≤ hi`, and a non-empty row polytope per state.
///
/// # Errors
///
/// Returns [`CheckError::InvalidInterval`] naming the first offending state.
pub fn validate_interval_dtmc(model: &IntervalDtmc) -> Result<(), CheckError> {
    for s in 0..model.num_states() {
        validate_row(model.row(s), s)?;
    }
    Ok(())
}

/// Validates an interval MDP (every choice of every state).
///
/// # Errors
///
/// Returns [`CheckError::InvalidInterval`] naming the first offending state.
pub fn validate_interval_mdp(model: &IntervalMdp) -> Result<(), CheckError> {
    for s in 0..model.num_states() {
        if model.choices(s).is_empty() {
            return Err(CheckError::InvalidInterval {
                state: s,
                detail: "state offers no choice".into(),
            });
        }
        for c in model.choices(s) {
            validate_row(&c.transitions, s)?;
        }
    }
    Ok(())
}

fn validate_row(row: &[IntervalTransition], state: usize) -> Result<(), CheckError> {
    let tol = tml_models::STOCHASTIC_TOLERANCE;
    if row.is_empty() {
        return Err(CheckError::InvalidInterval {
            state,
            detail: "state has no outgoing intervals".into(),
        });
    }
    let (mut lo_sum, mut hi_sum) = (0.0, 0.0);
    for &(t, lo, hi) in row {
        if !lo.is_finite() || !hi.is_finite() {
            return Err(CheckError::InvalidInterval {
                state,
                detail: format!("non-finite endpoint [{lo}, {hi}] on transition to {t}"),
            });
        }
        if lo < -tol || hi > 1.0 + tol {
            return Err(CheckError::InvalidInterval {
                state,
                detail: format!("endpoint outside [0, 1]: [{lo}, {hi}] on transition to {t}"),
            });
        }
        if lo > hi + tol {
            return Err(CheckError::InvalidInterval {
                state,
                detail: format!("inverted interval [{lo}, {hi}] on transition to {t}"),
            });
        }
        lo_sum += lo;
        hi_sum += hi;
    }
    if lo_sum > 1.0 + tol {
        return Err(CheckError::InvalidInterval {
            state,
            detail: format!("empty polytope: lower bounds sum to {lo_sum} > 1"),
        });
    }
    if hi_sum < 1.0 - tol {
        return Err(CheckError::InvalidInterval {
            state,
            detail: format!("empty polytope: upper bounds sum to {hi_sum} < 1"),
        });
    }
    Ok(())
}

/// Extremizes `Σ p_t · x_t` over the row polytope in `O(n log n)`: lower
/// bounds everywhere, then the remaining mass in value order. Ties break on
/// the target index so the result is independent of input ordering.
fn inner_expectation(row: &[IntervalTransition], values: &[f64], maximize: bool) -> f64 {
    // Accumulate in target order so the result is bitwise independent of
    // the input row ordering (builders sort rows, hand-built slices may not).
    let mut order: Vec<usize> = (0..row.len()).collect();
    order.sort_unstable_by_key(|&i| row[i].0);
    let mut total = 0.0;
    let mut budget = 1.0;
    for &i in &order {
        let (t, lo, _) = row[i];
        if lo > 0.0 {
            total += lo * values[t];
        }
        budget -= lo;
    }
    if budget <= 0.0 {
        return total;
    }
    order.sort_unstable_by(|&a, &b| {
        let (va, vb) = (values[row[a].0], values[row[b].0]);
        let ord = va.partial_cmp(&vb).unwrap_or(std::cmp::Ordering::Equal);
        let ord = if maximize { ord.reverse() } else { ord };
        ord.then_with(|| row[a].0.cmp(&row[b].0))
    });
    for &i in &order {
        let (t, lo, hi) = row[i];
        let take = (hi - lo).min(budget);
        if take > 0.0 {
            total += take * values[t];
            budget -= take;
            if budget <= 0.0 {
                break;
            }
        }
    }
    total
}

/// The per-state row accessor both model kinds share: a DTMC state has one
/// implicit choice, an MDP state one per action. The outer operator folds
/// over choices (`min` under `Opt::Min`-style resolution, `max` otherwise —
/// a DTMC fold sees exactly one element, so the flag is vacuous there).
trait RobustModel {
    fn num_states(&self) -> usize;
    fn initial_state(&self) -> usize;
    fn labeling(&self) -> &Labeling;
    /// Extremized one-step backup at `state`: inner adversary per choice,
    /// outer fold over choices. `extra` adds a per-choice offset (choice
    /// rewards); `minimize_outer` picks the scheduler side.
    fn backup(
        &self,
        state: usize,
        values: &[f64],
        maximize_inner: bool,
        minimize_outer: bool,
        extra: &dyn Fn(usize, usize) -> f64,
    ) -> f64;
    fn reward_structure(&self, name: Option<&str>) -> Result<&RewardStructure, CheckError>;
}

impl RobustModel for IntervalDtmc {
    fn num_states(&self) -> usize {
        IntervalDtmc::num_states(self)
    }
    fn initial_state(&self) -> usize {
        IntervalDtmc::initial_state(self)
    }
    fn labeling(&self) -> &Labeling {
        IntervalDtmc::labeling(self)
    }
    fn backup(
        &self,
        state: usize,
        values: &[f64],
        maximize_inner: bool,
        _minimize_outer: bool,
        extra: &dyn Fn(usize, usize) -> f64,
    ) -> f64 {
        inner_expectation(self.row(state), values, maximize_inner) + extra(state, 0)
    }
    fn reward_structure(&self, name: Option<&str>) -> Result<&RewardStructure, CheckError> {
        lookup(name, |n| self.reward_structure(n).ok(), self.default_reward_structure())
    }
}

impl RobustModel for IntervalMdp {
    fn num_states(&self) -> usize {
        IntervalMdp::num_states(self)
    }
    fn initial_state(&self) -> usize {
        IntervalMdp::initial_state(self)
    }
    fn labeling(&self) -> &Labeling {
        IntervalMdp::labeling(self)
    }
    fn backup(
        &self,
        state: usize,
        values: &[f64],
        maximize_inner: bool,
        minimize_outer: bool,
        extra: &dyn Fn(usize, usize) -> f64,
    ) -> f64 {
        let fold = |acc: f64, v: f64| if minimize_outer { acc.min(v) } else { acc.max(v) };
        let mut best = if minimize_outer { f64::INFINITY } else { f64::NEG_INFINITY };
        for (c, choice) in self.choices(state).iter().enumerate() {
            let IntervalChoice { transitions, .. } = choice;
            best = fold(
                best,
                inner_expectation(transitions, values, maximize_inner) + extra(state, c),
            );
        }
        best
    }
    fn reward_structure(&self, name: Option<&str>) -> Result<&RewardStructure, CheckError> {
        lookup(name, |n| self.reward_structure(n).ok(), self.default_reward_structure())
    }
}

fn lookup<'a>(
    name: Option<&str>,
    by_name: impl Fn(&str) -> Option<&'a RewardStructure>,
    default: Option<&'a RewardStructure>,
) -> Result<&'a RewardStructure, CheckError> {
    let found = match name {
        Some(n) => by_name(n),
        None => default,
    };
    found.ok_or_else(|| {
        CheckError::Model(tml_models::ModelError::NotFound {
            kind: "reward structure",
            name: name.unwrap_or("<default>").into(),
        })
    })
}

/// Evaluates a propositional formula against the labeling. Probabilistic or
/// reward operators anywhere inside are rejected: robust satisfaction is a
/// for-all-members claim and does not commute with negation.
fn eval_propositional(
    labeling: &Labeling,
    n: usize,
    formula: &StateFormula,
) -> Result<Vec<bool>, CheckError> {
    Ok(match formula {
        StateFormula::True => vec![true; n],
        StateFormula::False => vec![false; n],
        StateFormula::Atom(a) => labeling.mask(a),
        StateFormula::Not(f) => eval_propositional(labeling, n, f)?.iter().map(|b| !b).collect(),
        StateFormula::And(a, b) => {
            zip(eval_propositional(labeling, n, a)?, eval_propositional(labeling, n, b)?, |x, y| {
                x && y
            })
        }
        StateFormula::Or(a, b) => {
            zip(eval_propositional(labeling, n, a)?, eval_propositional(labeling, n, b)?, |x, y| {
                x || y
            })
        }
        StateFormula::Implies(a, b) => {
            zip(eval_propositional(labeling, n, a)?, eval_propositional(labeling, n, b)?, |x, y| {
                !x || y
            })
        }
        StateFormula::Prob { .. } | StateFormula::Reward { .. } => {
            return Err(CheckError::Unsupported {
                detail: "robust checking supports P/R only at the top level \
                         with propositional operands"
                    .into(),
            })
        }
    })
}

fn zip(a: Vec<bool>, b: Vec<bool>, f: impl Fn(bool, bool) -> bool) -> Vec<bool> {
    a.into_iter().zip(b).map(|(x, y)| f(x, y)).collect()
}

/// One robust value-iteration solve. `seed` initializes the iterate,
/// `frozen[s]` states never update (targets, infinite-reward states),
/// `step` computes the backup for a live state. Charges the run's budget
/// per sweep and returns the best iterate on exhaustion.
fn robust_vi(
    run: &CheckRun<'_>,
    mut x: Vec<f64>,
    frozen: &[bool],
    horizon: Option<u64>,
    step: impl Fn(usize, &[f64]) -> f64,
) -> Vec<f64> {
    let n = x.len();
    let opts = run.opts;
    let max_sweeps = horizon.unwrap_or(opts.max_iterations as u64);
    tml_telemetry::counter!("checker.robust.solves", 1);
    let mut sweeps = 0u64;
    let mut diff = f64::INFINITY;
    while sweeps < max_sweeps {
        if let Some(cause) = run.exhausted() {
            run.mark_exhausted(cause);
            break;
        }
        diff = 0.0;
        let mut next = x.clone();
        for s in 0..n {
            if frozen[s] {
                continue;
            }
            let v = step(s, &x);
            let d = if v.is_infinite() && x[s].is_infinite() { 0.0 } else { (v - x[s]).abs() };
            diff = diff.max(d);
            next[s] = v;
        }
        x = next;
        sweeps += 1;
        run.spend(1);
        // A fixed horizon runs exactly `horizon` sweeps; an unbounded solve
        // stops at the tolerance.
        if horizon.is_none() && diff <= opts.tolerance {
            break;
        }
    }
    tml_telemetry::counter!("checker.robust.sweeps", sweeps);
    if horizon.is_none() {
        let converged = diff <= opts.tolerance;
        run.record_backend("robust", converged);
        if !converged && diff.is_finite() {
            run.record_residual(diff);
        }
    } else {
        run.record_backend("robust", true);
    }
    x
}

/// Robust `P(φ U ψ)` per state for one side of the bracket.
fn robust_until<M: RobustModel>(
    model: &M,
    phi: &[bool],
    target: &[bool],
    bound: Option<u64>,
    run: &CheckRun<'_>,
    maximize: bool,
    minimize_outer: bool,
) -> Vec<f64> {
    let n = model.num_states();
    let x: Vec<f64> = target.iter().map(|&t| if t { 1.0 } else { 0.0 }).collect();
    let frozen: Vec<bool> = (0..n).map(|s| target[s] || !phi[s]).collect();
    let zero = |_: usize, _: usize| 0.0;
    robust_vi(run, x, &frozen, bound, |s, vals| {
        model.backup(s, vals, maximize, minimize_outer, &zero).clamp(0.0, 1.0)
    })
}

/// One-step robust `P(X target)`.
fn robust_next<M: RobustModel>(
    model: &M,
    target: &[bool],
    run: &CheckRun<'_>,
    maximize: bool,
    minimize_outer: bool,
) -> Vec<f64> {
    let n = model.num_states();
    let ind: Vec<f64> = target.iter().map(|&t| if t { 1.0 } else { 0.0 }).collect();
    run.spend(1);
    tml_telemetry::counter!("checker.robust.solves", 1);
    tml_telemetry::counter!("checker.robust.sweeps", 1);
    run.record_backend("robust", true);
    let zero = |_: usize, _: usize| 0.0;
    (0..n).map(|s| model.backup(s, &ind, maximize, minimize_outer, &zero).clamp(0.0, 1.0)).collect()
}

/// Robust expected reward accumulated until reaching `target` on an
/// interval DTMC. States whose worst-case (for this side) reach probability
/// falls short of one get `+∞`.
fn robust_reach_rewards(
    model: &IntervalDtmc,
    rewards: &RewardStructure,
    target: &[bool],
    run: &CheckRun<'_>,
    maximize: bool,
) -> Vec<f64> {
    let n = RobustModel::num_states(model);
    let all = vec![true; n];
    // Maximal reward is finite only when *every* member reaches a.s.
    // (pessimistic reach = 1); minimal reward needs *some* member to reach
    // a.s. (optimistic reach = 1).
    let reach = robust_until(model, &all, target, None, run, !maximize, false);
    let finite: Vec<bool> = reach.iter().map(|&p| p >= 1.0 - AS_REACH_EPS).collect();
    let x: Vec<f64> =
        (0..n).map(|s| if target[s] || finite[s] { 0.0 } else { f64::INFINITY }).collect();
    let frozen: Vec<bool> = (0..n).map(|s| target[s] || !finite[s]).collect();
    let zero = |_: usize, _: usize| 0.0;
    robust_vi(run, x, &frozen, None, |s, vals| {
        rewards.state_reward(s) + RobustModel::backup(model, s, vals, maximize, false, &zero)
    })
}

/// Robust expected reward cumulated over `k` steps.
fn robust_cumulative_rewards<M: RobustModel>(
    model: &M,
    rewards: &RewardStructure,
    k: u64,
    run: &CheckRun<'_>,
    maximize: bool,
    minimize_outer: bool,
) -> Vec<f64> {
    let n = model.num_states();
    let x = vec![0.0; n];
    let frozen = vec![false; n];
    let extra = |s: usize, c: usize| rewards.state_reward(s) + rewards.choice_reward(s, c);
    robust_vi(run, x, &frozen, Some(k), |s, vals| {
        model.backup(s, vals, maximize, minimize_outer, &extra)
    })
}

/// The `(pessimistic, optimistic)` bracket of a path formula's probability.
/// `outer`: `(minimize_outer_for_pessimistic, minimize_outer_for_optimistic)`
/// — on a DTMC both are vacuous; on an MDP the scheduler joins nature on
/// each side (min with min, max with max), bracketing over schedulers *and*
/// members.
fn path_bracket<M: RobustModel>(
    model: &M,
    path: &PathFormula,
    run: &CheckRun<'_>,
) -> Result<RobustBracket, CheckError> {
    let n = model.num_states();
    let lab = model.labeling();
    let (pess, opt) = match path {
        PathFormula::Next(f) => {
            let target = eval_propositional(lab, n, f)?;
            (
                robust_next(model, &target, run, false, true),
                robust_next(model, &target, run, true, false),
            )
        }
        PathFormula::Until { lhs, rhs, bound } => {
            let phi = eval_propositional(lab, n, lhs)?;
            let target = eval_propositional(lab, n, rhs)?;
            (
                robust_until(model, &phi, &target, *bound, run, false, true),
                robust_until(model, &phi, &target, *bound, run, true, false),
            )
        }
        PathFormula::Eventually { sub, bound } => {
            let target = eval_propositional(lab, n, sub)?;
            let phi = vec![true; n];
            (
                robust_until(model, &phi, &target, *bound, run, false, true),
                robust_until(model, &phi, &target, *bound, run, true, false),
            )
        }
        PathFormula::Globally { sub, bound } => {
            // Robust duality: the adversary maximizing P(F ¬φ) is the one
            // minimizing P(G φ), so the G-bracket is the complemented,
            // side-swapped F-bracket.
            let inv: Vec<bool> = eval_propositional(lab, n, sub)?.iter().map(|b| !b).collect();
            let phi = vec![true; n];
            let f_hi = robust_until(model, &phi, &inv, *bound, run, true, false);
            let f_lo = robust_until(model, &phi, &inv, *bound, run, false, true);
            (
                f_hi.iter().map(|p| (1.0 - p).clamp(0.0, 1.0)).collect(),
                f_lo.iter().map(|p| (1.0 - p).clamp(0.0, 1.0)).collect(),
            )
        }
    };
    Ok(RobustBracket { pessimistic: pess, optimistic: opt })
}

enum AnyInterval<'a> {
    Dtmc(&'a IntervalDtmc),
    Mdp(&'a IntervalMdp),
}

impl AnyInterval<'_> {
    fn validate(&self) -> Result<(), CheckError> {
        match self {
            AnyInterval::Dtmc(m) => validate_interval_dtmc(m),
            AnyInterval::Mdp(m) => validate_interval_mdp(m),
        }
    }

    fn path_bracket(
        &self,
        path: &PathFormula,
        run: &CheckRun<'_>,
    ) -> Result<RobustBracket, CheckError> {
        match self {
            AnyInterval::Dtmc(m) => path_bracket(*m, path, run),
            AnyInterval::Mdp(m) => path_bracket(*m, path, run),
        }
    }

    fn reward_bracket(
        &self,
        structure: Option<&str>,
        kind: &RewardKind,
        run: &CheckRun<'_>,
    ) -> Result<RobustBracket, CheckError> {
        match self {
            AnyInterval::Dtmc(m) => {
                let rewards = RobustModel::reward_structure(*m, structure)?;
                match kind {
                    RewardKind::Reach(target) => {
                        let n = RobustModel::num_states(*m);
                        let mask = eval_propositional(RobustModel::labeling(*m), n, target)?;
                        Ok(RobustBracket {
                            pessimistic: robust_reach_rewards(m, rewards, &mask, run, false),
                            optimistic: robust_reach_rewards(m, rewards, &mask, run, true),
                        })
                    }
                    RewardKind::Cumulative(k) => Ok(RobustBracket {
                        pessimistic: robust_cumulative_rewards(*m, rewards, *k, run, false, true),
                        optimistic: robust_cumulative_rewards(*m, rewards, *k, run, true, false),
                    }),
                }
            }
            AnyInterval::Mdp(m) => match kind {
                RewardKind::Reach(_) => Err(CheckError::Unsupported {
                    detail: "robust reach rewards on interval MDPs are not supported \
                             (see DESIGN.md §16); use cumulative rewards or an induced \
                             interval DTMC"
                        .into(),
                }),
                RewardKind::Cumulative(k) => {
                    let rewards = RobustModel::reward_structure(*m, structure)?;
                    Ok(RobustBracket {
                        pessimistic: robust_cumulative_rewards(*m, rewards, *k, run, false, true),
                        optimistic: robust_cumulative_rewards(*m, rewards, *k, run, true, false),
                    })
                }
            },
        }
    }

    fn labeling(&self) -> &Labeling {
        match self {
            AnyInterval::Dtmc(m) => RobustModel::labeling(*m),
            AnyInterval::Mdp(m) => RobustModel::labeling(*m),
        }
    }

    fn num_states(&self) -> usize {
        match self {
            AnyInterval::Dtmc(m) => RobustModel::num_states(*m),
            AnyInterval::Mdp(m) => RobustModel::num_states(*m),
        }
    }

    fn initial_state(&self) -> usize {
        match self {
            AnyInterval::Dtmc(m) => RobustModel::initial_state(*m),
            AnyInterval::Mdp(m) => RobustModel::initial_state(*m),
        }
    }
}

/// Whether the robust backend is disabled for this run (breaker open under
/// `Auto`).
fn degraded(opts: &CheckOptions) -> bool {
    opts.solver == LinearSolver::Auto && !opts.robust_vi_enabled
}

fn check_any(
    model: &AnyInterval<'_>,
    formula: &StateFormula,
    run: &CheckRun<'_>,
) -> Result<RobustCheckResult, CheckError> {
    model.validate().inspect_err(|_| run.record_backend("robust", false))?;
    let n = model.num_states();
    if degraded(run.opts) {
        return degrade_check(model, formula, run);
    }
    let (sat, values) = match formula {
        StateFormula::Prob { op, bound, path, .. } => {
            let bracket = model.path_bracket(path, run)?;
            let sat = robust_sat(run.opts, *op, *bound, &bracket);
            (sat, Some(bracket))
        }
        StateFormula::Reward { structure, op, bound, kind, .. } => {
            let bracket = model.reward_bracket(structure.as_deref(), kind, run)?;
            let sat = robust_sat(run.opts, *op, *bound, &bracket);
            (sat, Some(bracket))
        }
        prop => (eval_propositional(model.labeling(), n, prop)?, None),
    };
    Ok(RobustCheckResult::new(sat, values, model.initial_state()))
}

/// Robust satisfaction: lower bounds must hold at the pessimistic value,
/// upper bounds at the optimistic one — i.e. on the worst member.
fn robust_sat(
    opts: &CheckOptions,
    op: tml_logic::CmpOp,
    bound: f64,
    bracket: &RobustBracket,
) -> Vec<bool> {
    let side = if op.is_lower_bound() { &bracket.pessimistic } else { &bracket.optimistic };
    side.iter().map(|&v| opts.test_bound(op, v, bound)).collect()
}

/// Breaker-open degradation: scalar-check the nominal (midpoint) model and
/// report a collapsed bracket plus an explicit fallback event. Only interval
/// DTMCs have a nominal scalar model; MDPs keep the structured error.
fn degrade_check(
    model: &AnyInterval<'_>,
    formula: &StateFormula,
    run: &CheckRun<'_>,
) -> Result<RobustCheckResult, CheckError> {
    let AnyInterval::Dtmc(m) = model else {
        return Err(CheckError::Unsupported {
            detail: "robust backend disabled (breaker open) and interval MDPs \
                     have no nominal scalar fallback"
                .into(),
        });
    };
    tml_telemetry::counter!("checker.robust.degraded", 1);
    run.record_fallback("robust -> nominal (breaker open)");
    let nominal = m.nominal_dtmc()?;
    let result = crate::dtmc::check_run(&nominal, formula, run)?;
    let sat = (0..nominal.num_states()).map(|s| result.holds_in(s)).collect();
    let values = result.values().map(|v| RobustBracket::collapsed(v.to_vec()));
    Ok(RobustCheckResult::new(sat, values, nominal.initial_state()))
}

fn query_any(
    model: &AnyInterval<'_>,
    query: &Query,
    run: &CheckRun<'_>,
) -> Result<RobustBracket, CheckError> {
    model.validate().inspect_err(|_| run.record_backend("robust", false))?;
    if degraded(run.opts) {
        let AnyInterval::Dtmc(m) = model else {
            return Err(CheckError::Unsupported {
                detail: "robust backend disabled (breaker open) and interval MDPs \
                         have no nominal scalar fallback"
                    .into(),
            });
        };
        tml_telemetry::counter!("checker.robust.degraded", 1);
        run.record_fallback("robust -> nominal (breaker open)");
        let nominal = m.nominal_dtmc()?;
        let values = crate::dtmc::query_run(&nominal, query, run)?;
        return Ok(RobustBracket::collapsed(values));
    }
    match query {
        Query::Prob { path, .. } => model.path_bracket(path, run),
        Query::Reward { structure, kind, .. } => {
            model.reward_bracket(structure.as_deref(), kind, run)
        }
    }
}

/// Robustly checks a formula on an interval DTMC with explicit options and
/// an unlimited budget (the [`crate::Checker`] facade threads a budget).
///
/// # Errors
///
/// * [`CheckError::InvalidInterval`] for malformed uncertainty sets.
/// * [`CheckError::Unsupported`] for nested `P`/`R` operators.
pub fn check_interval_dtmc(
    model: &IntervalDtmc,
    formula: &StateFormula,
    opts: &CheckOptions,
) -> Result<RobustCheckResult, CheckError> {
    let budget = Budget::unlimited();
    let run = CheckRun::new(opts, &budget);
    let result = check_any(&AnyInterval::Dtmc(model), formula, &run)?;
    Ok(result.with_diagnostics(run.finish()))
}

/// Robustly checks a formula on an interval MDP (bracketing over schedulers
/// *and* members).
///
/// # Errors
///
/// Same as [`check_interval_dtmc`], plus [`CheckError::Unsupported`] for
/// reach rewards (see the module docs).
pub fn check_interval_mdp(
    model: &IntervalMdp,
    formula: &StateFormula,
    opts: &CheckOptions,
) -> Result<RobustCheckResult, CheckError> {
    let budget = Budget::unlimited();
    let run = CheckRun::new(opts, &budget);
    let result = check_any(&AnyInterval::Mdp(model), formula, &run)?;
    Ok(result.with_diagnostics(run.finish()))
}

pub(crate) fn check_dtmc_run(
    model: &IntervalDtmc,
    formula: &StateFormula,
    run: &CheckRun<'_>,
) -> Result<RobustCheckResult, CheckError> {
    check_any(&AnyInterval::Dtmc(model), formula, run)
}

pub(crate) fn check_mdp_run(
    model: &IntervalMdp,
    formula: &StateFormula,
    run: &CheckRun<'_>,
) -> Result<RobustCheckResult, CheckError> {
    check_any(&AnyInterval::Mdp(model), formula, run)
}

pub(crate) fn query_dtmc_run(
    model: &IntervalDtmc,
    query: &Query,
    run: &CheckRun<'_>,
) -> Result<RobustBracket, CheckError> {
    query_any(&AnyInterval::Dtmc(model), query, run)
}

pub(crate) fn query_mdp_run(
    model: &IntervalMdp,
    query: &Query,
    run: &CheckRun<'_>,
) -> Result<RobustBracket, CheckError> {
    query_any(&AnyInterval::Mdp(model), query, run)
}

/// The robust bracket of a numeric query on an interval DTMC.
///
/// # Errors
///
/// Same conditions as [`check_interval_dtmc`].
pub fn query_interval_dtmc(
    model: &IntervalDtmc,
    query: &Query,
    opts: &CheckOptions,
) -> Result<RobustBracket, CheckError> {
    let budget = Budget::unlimited();
    let run = CheckRun::new(opts, &budget);
    query_any(&AnyInterval::Dtmc(model), query, &run)
}

/// The robust bracket of a numeric query on an interval MDP.
///
/// # Errors
///
/// Same conditions as [`check_interval_mdp`].
pub fn query_interval_mdp(
    model: &IntervalMdp,
    query: &Query,
    opts: &CheckOptions,
) -> Result<RobustBracket, CheckError> {
    let budget = Budget::unlimited();
    let run = CheckRun::new(opts, &budget);
    query_any(&AnyInterval::Mdp(model), query, &run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tml_logic::parse_formula;
    use tml_models::interval::IntervalDtmcBuilder;
    use tml_models::{Dtmc, DtmcBuilder};

    fn gambler() -> Dtmc {
        let mut b = DtmcBuilder::new(3);
        b.transition(0, 1, 0.3).unwrap();
        b.transition(0, 2, 0.7).unwrap();
        b.transition(1, 1, 1.0).unwrap();
        b.transition(2, 2, 1.0).unwrap();
        b.label(1, "rich").unwrap();
        b.state_reward("steps", 0, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn degenerate_bracket_collapses_to_scalar_value() {
        let d = gambler();
        let m = IntervalDtmc::degenerate(&d);
        let phi = parse_formula("P>=0.25 [ F \"rich\" ]").unwrap();
        let r = check_interval_dtmc(&m, &phi, &CheckOptions::default()).unwrap();
        let (lo, hi) = r.bracket_at_initial().unwrap();
        assert!((lo - 0.3).abs() < 1e-10 && (hi - 0.3).abs() < 1e-10);
        assert!(r.holds());
    }

    #[test]
    fn widening_widens_the_bracket_and_flips_the_verdict() {
        let d = gambler();
        let phi = parse_formula("P>=0.25 [ F \"rich\" ]").unwrap();
        let narrow = IntervalDtmc::from_dtmc(&d, 0.01);
        let wide = IntervalDtmc::from_dtmc(&d, 0.2);
        let rn = check_interval_dtmc(&narrow, &phi, &CheckOptions::default()).unwrap();
        let rw = check_interval_dtmc(&wide, &phi, &CheckOptions::default()).unwrap();
        let (nlo, nhi) = rn.bracket_at_initial().unwrap();
        let (wlo, whi) = rw.bracket_at_initial().unwrap();
        assert!(wlo <= nlo && whi >= nhi, "wider set, wider bracket");
        assert!(rn.holds(), "±0.01 keeps the bound");
        // ±0.2 admits a member with P(F rich) = 0.1 < 0.25.
        assert!(!rw.holds(), "±0.2 breaks the bound robustly");
        // Both brackets contain the nominal value 0.3.
        assert!(rn.bracket().unwrap().contains(&[0.3, 1.0, 0.0], 1e-9));
        assert!(rw.bracket().unwrap().contains(&[0.3, 1.0, 0.0], 1e-9));
    }

    #[test]
    fn rewards_bracket_and_go_infinite() {
        let d = gambler();
        let m = IntervalDtmc::from_dtmc(&d, 0.05);
        // Expected steps until absorption: exactly one step from state 0.
        let phi = parse_formula("R{\"steps\"}<=1.5 [ F \"rich\" ]").unwrap();
        let r = check_interval_dtmc(&m, &phi, &CheckOptions::default()).unwrap();
        let (lo, hi) = r.bracket_at_initial().unwrap();
        // "rich" is not reached a.s. (the loser loop absorbs), so the
        // reward is infinite on every side.
        assert!(lo.is_infinite() && hi.is_infinite());
        assert!(!r.holds());

        // Against the full absorption target the reward is exactly 1.
        let mut b = DtmcBuilder::new(2);
        b.transition(0, 1, 1.0).unwrap();
        b.transition(1, 1, 1.0).unwrap();
        b.label(1, "done").unwrap();
        b.state_reward("steps", 0, 1.0).unwrap();
        let line = b.build().unwrap();
        let m = IntervalDtmc::degenerate(&line);
        let phi = parse_formula("R{\"steps\"}<=1.0 [ F \"done\" ]").unwrap();
        let r = check_interval_dtmc(&m, &phi, &CheckOptions::default()).unwrap();
        let (lo, hi) = r.bracket_at_initial().unwrap();
        assert!((lo - 1.0).abs() < 1e-9 && (hi - 1.0).abs() < 1e-9);
        assert!(r.holds());
    }

    #[test]
    fn validation_rejects_degenerate_sets() {
        let mut b = IntervalDtmcBuilder::unchecked(2);
        b.transition(0, 1, 0.9, 0.1).unwrap();
        b.transition(1, 1, 1.0, 1.0).unwrap();
        let inverted = b.build().unwrap();
        let phi = parse_formula("P>=0.5 [ F \"x\" ]").unwrap();
        let err = check_interval_dtmc(&inverted, &phi, &CheckOptions::default()).unwrap_err();
        assert!(matches!(err, CheckError::InvalidInterval { state: 0, .. }), "{err}");

        let mut b = IntervalDtmcBuilder::unchecked(1);
        b.transition(0, 0, f64::NAN, 1.0).unwrap();
        let nan = b.build().unwrap();
        let err = check_interval_dtmc(&nan, &phi, &CheckOptions::default()).unwrap_err();
        assert!(matches!(err, CheckError::InvalidInterval { .. }), "{err}");
        assert!(err.to_string().contains("state 0"), "{err}");
    }

    #[test]
    fn nested_probabilistic_operators_rejected() {
        let d = gambler();
        let m = IntervalDtmc::degenerate(&d);
        let nested = parse_formula("P>=0.5 [ F P>=0.5 [ F \"rich\" ] ]").unwrap();
        let err = check_interval_dtmc(&m, &nested, &CheckOptions::default()).unwrap_err();
        assert!(matches!(err, CheckError::Unsupported { .. }), "{err}");
    }

    #[test]
    fn breaker_open_degrades_to_nominal_under_auto() {
        let d = gambler();
        let m = IntervalDtmc::from_dtmc(&d, 0.1);
        let phi = parse_formula("P>=0.25 [ F \"rich\" ]").unwrap();
        let opts = CheckOptions { robust_vi_enabled: false, ..CheckOptions::default() };
        let r = check_interval_dtmc(&m, &phi, &opts).unwrap();
        // Collapsed bracket at the nominal value; the fallback is recorded.
        let (lo, hi) = r.bracket_at_initial().unwrap();
        assert!((lo - hi).abs() < 1e-12);
        assert!((lo - 0.3).abs() < 1e-9);
        assert!(r.diagnostics().fallbacks.iter().any(|f| f.contains("breaker")));
        // A pinned (non-Auto) solver ignores the breaker flag.
        let pinned = CheckOptions {
            robust_vi_enabled: false,
            solver: LinearSolver::GaussSeidel,
            ..CheckOptions::default()
        };
        let r = check_interval_dtmc(&m, &phi, &pinned).unwrap();
        let (lo, hi) = r.bracket_at_initial().unwrap();
        assert!(hi - lo > 0.01, "real bracket, not collapsed");
    }

    #[test]
    fn interval_mdp_brackets_over_schedulers_and_members() {
        let mut b = tml_models::interval::IntervalMdpBuilder::new(3);
        b.choice(0, "safe", &[(1, 0.55, 0.65), (2, 0.35, 0.45)]).unwrap();
        b.choice(0, "risky", &[(1, 0.2, 0.9), (2, 0.1, 0.8)]).unwrap();
        b.choice(1, "stay", &[(1, 1.0, 1.0)]).unwrap();
        b.choice(2, "stay", &[(2, 1.0, 1.0)]).unwrap();
        b.label(1, "goal").unwrap();
        let m = b.build().unwrap();
        let q = tml_logic::parse_query("P=? [ F \"goal\" ]").unwrap();
        let bracket = query_interval_mdp(&m, &q, &CheckOptions::default()).unwrap();
        let (lo, hi) = bracket.at(0);
        // Worst scheduler+member: risky with p(goal)=0.2; best: risky with 0.9.
        assert!((lo - 0.2).abs() < 1e-9, "pessimistic {lo}");
        assert!((hi - 0.9).abs() < 1e-9, "optimistic {hi}");
        // Reach rewards are unsupported on interval MDPs.
        let phi = parse_formula("R<=1.0 [ F \"goal\" ]").unwrap();
        let err = check_interval_mdp(&m, &phi, &CheckOptions::default()).unwrap_err();
        assert!(matches!(err, CheckError::Unsupported { .. }));
    }

    #[test]
    fn budget_exhaustion_is_reported_not_hung() {
        let d = gambler();
        let m = IntervalDtmc::from_dtmc(&d, 0.1);
        let phi = parse_formula("P>=0.25 [ F \"rich\" ]").unwrap();
        let budget = Budget::unlimited().with_max_evaluations(1);
        let opts = CheckOptions::default();
        let run = CheckRun::new(&opts, &budget);
        let r = check_dtmc_run(&m, &phi, &run).unwrap();
        let diag = run.finish();
        assert!(diag.exhausted.is_some());
        // Best-effort values are still in range.
        let (lo, hi) = r.bracket_at_initial().unwrap();
        assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
    }

    #[test]
    fn bounded_and_next_and_globally() {
        let d = gambler();
        let m = IntervalDtmc::from_dtmc(&d, 0.1);
        let o = CheckOptions::default();
        let q = tml_logic::parse_query("P=? [ X \"rich\" ]").unwrap();
        let b = query_interval_dtmc(&m, &q, &o).unwrap();
        let (lo, hi) = b.at(0);
        assert!((lo - 0.2).abs() < 1e-9 && (hi - 0.4).abs() < 1e-9);

        let q = tml_logic::parse_query("P=? [ F<=1 \"rich\" ]").unwrap();
        let b2 = query_interval_dtmc(&m, &q, &o).unwrap();
        assert_eq!(b2.at(0), (lo, hi), "one-step eventually equals next here");

        let q = tml_logic::parse_query("P=? [ G !\"rich\" ]").unwrap();
        let g = query_interval_dtmc(&m, &q, &o).unwrap();
        let (glo, ghi) = g.at(0);
        // P(G ¬rich) = 1 − P(F rich): bracket [1−0.4, 1−0.2].
        assert!((glo - 0.6).abs() < 1e-9 && (ghi - 0.8).abs() < 1e-9);
    }

    #[test]
    fn inner_assignment_is_order_independent() {
        let values = [0.9, 0.1, 0.5];
        let row_a = vec![(0, 0.1, 0.5), (1, 0.2, 0.6), (2, 0.1, 0.4)];
        let mut row_b = row_a.clone();
        row_b.reverse();
        for maximize in [false, true] {
            let a = inner_expectation(&row_a, &values, maximize);
            let b = inner_expectation(&row_b, &values, maximize);
            assert_eq!(a.to_bits(), b.to_bits(), "bitwise determinism");
        }
        // Hand-checked pessimistic assignment: mass 1−0.4=0.6 distributed
        // to v=0.1 first (cap 0.4), then v=0.5 (cap 0.2 of 0.3):
        // 0.1*0.9(lo) + 0.2*0.1(lo) + 0.1*0.5(lo) + 0.4*0.1 + 0.2*0.5.
        let pess = inner_expectation(&row_a, &values, false);
        assert!((pess - (0.09 + 0.02 + 0.05 + 0.04 + 0.1)).abs() < 1e-12, "{pess}");
    }
}
