use tml_numerics::Diagnostics;

/// Outcome of checking a PCTL state formula: the set of states satisfying
/// it, plus — when the top-level operator was `P` or `R` — the underlying
/// numeric values for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckResult {
    sat: Vec<bool>,
    values: Option<Vec<f64>>,
    initial: usize,
    diagnostics: Diagnostics,
}

impl CheckResult {
    pub(crate) fn new(sat: Vec<bool>, values: Option<Vec<f64>>, initial: usize) -> Self {
        CheckResult { sat, values, initial, diagnostics: Diagnostics::new() }
    }

    pub(crate) fn with_diagnostics(mut self, diagnostics: Diagnostics) -> Self {
        self.diagnostics = diagnostics;
        self
    }

    /// Whether the formula holds in `state` (out-of-range states do not
    /// satisfy anything).
    pub fn holds_in(&self, state: usize) -> bool {
        self.sat.get(state).copied().unwrap_or(false)
    }

    /// Whether the formula holds in the model's initial state — the usual
    /// notion of "the model satisfies φ".
    pub fn holds(&self) -> bool {
        self.holds_in(self.initial)
    }

    /// The full satisfaction mask (one entry per state).
    pub fn sat_mask(&self) -> &[bool] {
        &self.sat
    }

    /// The states satisfying the formula, in increasing order.
    pub fn sat_states(&self) -> Vec<usize> {
        self.sat.iter().enumerate().filter(|(_, &b)| b).map(|(s, _)| s).collect()
    }

    /// Number of satisfying states.
    pub fn count(&self) -> usize {
        self.sat.iter().filter(|&&b| b).count()
    }

    /// For a top-level `P`/`R` operator, the per-state probability/reward
    /// that the bound was compared against.
    pub fn values(&self) -> Option<&[f64]> {
        self.values.as_deref()
    }

    /// The numeric value at the initial state, when available.
    pub fn value_at_initial(&self) -> Option<f64> {
        self.values.as_ref().map(|v| v[self.initial])
    }

    /// What the check spent and which degradation paths (solver fallbacks,
    /// accepted residuals, budget exhaustion) it took.
    pub fn diagnostics(&self) -> &Diagnostics {
        &self.diagnostics
    }

    /// Whether this result is best-effort rather than fully converged —
    /// shorthand for [`Diagnostics::degraded`].
    pub fn degraded(&self) -> bool {
        self.diagnostics.degraded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let r = CheckResult::new(vec![true, false, true], Some(vec![1.0, 0.2, 0.9]), 2);
        assert!(r.holds_in(0));
        assert!(!r.holds_in(1));
        assert!(!r.holds_in(99));
        assert!(r.holds());
        assert_eq!(r.sat_states(), vec![0, 2]);
        assert_eq!(r.count(), 2);
        assert_eq!(r.values().unwrap()[1], 0.2);
        assert_eq!(r.value_at_initial(), Some(0.9));
    }

    #[test]
    fn no_values_for_boolean_results() {
        let r = CheckResult::new(vec![true], None, 0);
        assert!(r.values().is_none());
        assert_eq!(r.value_at_initial(), None);
    }
}
