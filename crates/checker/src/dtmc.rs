//! PCTL model checking for discrete-time Markov chains.
//!
//! The quantitative primitives ([`until_probabilities`], [`reach_rewards`],
//! …) are public because Model Repair and the parametric engine's tests
//! reuse them directly.

use tml_logic::{PathFormula, Query, RewardKind, StateFormula};
use tml_models::{graph, Dtmc, RewardStructure};
use tml_numerics::interval::{certified_upper_bound, interval_iteration_budgeted};
use tml_numerics::iterative::{gauss_seidel_budgeted, jacobi_budgeted, IterOptions, IterRun};
use tml_numerics::scc::solve_scc_budgeted;
use tml_numerics::solve::solve_dense;
use tml_numerics::{Budget, CsrMatrix, DenseMatrix, Diagnostics, NumericsError, Triplet};

use crate::run::CheckRun;
use crate::{CheckError, CheckOptions, CheckResult, LinearSolver};

/// Checks a state formula, returning the satisfying set (plus numeric values
/// when the top-level operator is `P` or `R`).
///
/// # Errors
///
/// Returns a [`CheckError`] for unknown reward structures or numeric
/// failures.
pub fn check(
    model: &Dtmc,
    formula: &StateFormula,
    opts: &CheckOptions,
) -> Result<CheckResult, CheckError> {
    let budget = Budget::unlimited();
    let run = CheckRun::new(opts, &budget);
    let result = check_run(model, formula, &run)?;
    Ok(result.with_diagnostics(run.finish()))
}

pub(crate) fn check_run(
    model: &Dtmc,
    formula: &StateFormula,
    run: &CheckRun<'_>,
) -> Result<CheckResult, CheckError> {
    let values = top_level_values(model, formula, run)?;
    let sat = evaluate_run(model, formula, run)?;
    Ok(CheckResult::new(sat, values, model.initial_state()))
}

fn top_level_values(
    model: &Dtmc,
    formula: &StateFormula,
    run: &CheckRun<'_>,
) -> Result<Option<Vec<f64>>, CheckError> {
    match formula {
        StateFormula::Prob { path, .. } => Ok(Some(path_probabilities_run(model, path, run)?)),
        StateFormula::Reward { structure, kind, .. } => {
            Ok(Some(reward_values(model, structure.as_deref(), kind, run)?))
        }
        _ => Ok(None),
    }
}

/// Evaluates a state formula to a per-state satisfaction mask.
///
/// # Errors
///
/// Returns a [`CheckError`] for unknown reward structures or numeric
/// failures.
pub fn evaluate(
    model: &Dtmc,
    formula: &StateFormula,
    opts: &CheckOptions,
) -> Result<Vec<bool>, CheckError> {
    let budget = Budget::unlimited();
    let run = CheckRun::new(opts, &budget);
    evaluate_run(model, formula, &run)
}

pub(crate) fn evaluate_run(
    model: &Dtmc,
    formula: &StateFormula,
    run: &CheckRun<'_>,
) -> Result<Vec<bool>, CheckError> {
    let n = model.num_states();
    let opts = run.opts;
    Ok(match formula {
        StateFormula::True => vec![true; n],
        StateFormula::False => vec![false; n],
        StateFormula::Atom(a) => model.labeling().mask(a),
        StateFormula::Not(f) => evaluate_run(model, f, run)?.iter().map(|b| !b).collect(),
        StateFormula::And(a, b) => {
            zip_masks(evaluate_run(model, a, run)?, evaluate_run(model, b, run)?, |x, y| x && y)
        }
        StateFormula::Or(a, b) => {
            zip_masks(evaluate_run(model, a, run)?, evaluate_run(model, b, run)?, |x, y| x || y)
        }
        StateFormula::Implies(a, b) => {
            zip_masks(evaluate_run(model, a, run)?, evaluate_run(model, b, run)?, |x, y| !x || y)
        }
        StateFormula::Prob { op, bound, path, .. } => {
            // A DTMC has no schedulers: min/max annotations are vacuous.
            let probs = path_probabilities_run(model, path, run)?;
            probs.iter().map(|&p| opts.test_bound(*op, p, *bound)).collect()
        }
        StateFormula::Reward { structure, op, bound, kind, .. } => {
            let values = reward_values(model, structure.as_deref(), kind, run)?;
            values.iter().map(|&v| opts.test_bound(*op, v, *bound)).collect()
        }
    })
}

/// Evaluates a numeric query, returning one value per state.
///
/// # Errors
///
/// Returns a [`CheckError`] for unknown reward structures or numeric
/// failures.
pub fn query(model: &Dtmc, q: &Query, opts: &CheckOptions) -> Result<Vec<f64>, CheckError> {
    let budget = Budget::unlimited();
    let run = CheckRun::new(opts, &budget);
    query_run(model, q, &run)
}

pub(crate) fn query_run(
    model: &Dtmc,
    q: &Query,
    run: &CheckRun<'_>,
) -> Result<Vec<f64>, CheckError> {
    match q {
        Query::Prob { path, .. } => path_probabilities_run(model, path, run),
        Query::Reward { structure, kind, .. } => {
            reward_values(model, structure.as_deref(), kind, run)
        }
    }
}

fn reward_values(
    model: &Dtmc,
    structure: Option<&str>,
    kind: &RewardKind,
    run: &CheckRun<'_>,
) -> Result<Vec<f64>, CheckError> {
    let rewards = lookup_rewards(model, structure)?;
    match kind {
        RewardKind::Reach(target) => {
            let target_mask = evaluate_run(model, target, run)?;
            reach_rewards_run(model, rewards, &target_mask, run)
        }
        RewardKind::Cumulative(k) => Ok(cumulative_rewards(model, rewards, *k)),
    }
}

fn lookup_rewards<'a>(
    model: &'a Dtmc,
    structure: Option<&str>,
) -> Result<&'a RewardStructure, CheckError> {
    match structure {
        Some(name) => Ok(model.reward_structure(name)?),
        None => model.default_reward_structure().ok_or_else(|| {
            CheckError::Model(tml_models::ModelError::NotFound {
                kind: "reward structure",
                name: "<default>".into(),
            })
        }),
    }
}

/// Per-state probability of a path formula.
///
/// # Errors
///
/// Returns a [`CheckError`] on numeric failures.
pub fn path_probabilities(
    model: &Dtmc,
    path: &PathFormula,
    opts: &CheckOptions,
) -> Result<Vec<f64>, CheckError> {
    let budget = Budget::unlimited();
    let run = CheckRun::new(opts, &budget);
    path_probabilities_run(model, path, &run)
}

pub(crate) fn path_probabilities_run(
    model: &Dtmc,
    path: &PathFormula,
    run: &CheckRun<'_>,
) -> Result<Vec<f64>, CheckError> {
    let n = model.num_states();
    match path {
        PathFormula::Next(f) => {
            let target = evaluate_run(model, f, run)?;
            Ok(next_probabilities(model, &target))
        }
        PathFormula::Until { lhs, rhs, bound } => {
            let phi = evaluate_run(model, lhs, run)?;
            let target = evaluate_run(model, rhs, run)?;
            match bound {
                Some(k) => Ok(bounded_until_probabilities(model, &phi, &target, *k)),
                None => until_probabilities_run(model, &phi, &target, run),
            }
        }
        PathFormula::Eventually { sub, bound } => {
            let target = evaluate_run(model, sub, run)?;
            let phi = vec![true; n];
            match bound {
                Some(k) => Ok(bounded_until_probabilities(model, &phi, &target, *k)),
                None => until_probabilities_run(model, &phi, &target, run),
            }
        }
        PathFormula::Globally { sub, bound } => {
            // P(G φ) = 1 − P(F ¬φ), valid for both bounded and unbounded
            // horizons on Markov chains.
            let inv: Vec<bool> = evaluate_run(model, sub, run)?.iter().map(|b| !b).collect();
            let phi = vec![true; n];
            let f_not = match bound {
                Some(k) => bounded_until_probabilities(model, &phi, &inv, *k),
                None => until_probabilities_run(model, &phi, &inv, run)?,
            };
            Ok(f_not.iter().map(|p| 1.0 - p).collect())
        }
    }
}

/// `P(X target)` per state: one matrix–vector product.
pub fn next_probabilities(model: &Dtmc, target: &[bool]) -> Vec<f64> {
    (0..model.num_states())
        .map(|s| model.successors(s).filter(|&(t, _)| target[t]).map(|(_, p)| p).sum())
        .collect()
}

/// `P(φ U≤k ψ)` per state, by `k`-fold backward unrolling.
pub fn bounded_until_probabilities(
    model: &Dtmc,
    phi: &[bool],
    target: &[bool],
    k: u64,
) -> Vec<f64> {
    let n = model.num_states();
    let mut x: Vec<f64> = target.iter().map(|&t| if t { 1.0 } else { 0.0 }).collect();
    for _ in 0..k {
        let mut next = vec![0.0; n];
        for s in 0..n {
            next[s] = if target[s] {
                1.0
            } else if phi[s] {
                model.successors(s).map(|(t, p)| p * x[t]).sum()
            } else {
                0.0
            };
        }
        x = next;
    }
    x
}

/// `P(φ U ψ)` per state: qualitative precomputation plus a linear solve on
/// the maybe-states.
///
/// # Errors
///
/// Returns a [`CheckError`] if the linear solver fails.
pub fn until_probabilities(
    model: &Dtmc,
    phi: &[bool],
    target: &[bool],
    opts: &CheckOptions,
) -> Result<Vec<f64>, CheckError> {
    Ok(until_probabilities_diag(model, phi, target, opts, &Budget::unlimited())?.0)
}

/// Budget-aware [`until_probabilities`]: stops at the budget (returning the
/// best iterate found) and reports the [`Diagnostics`] of the solve —
/// including any solver fallbacks taken under [`LinearSolver::Auto`].
///
/// # Errors
///
/// Same conditions as [`until_probabilities`]; budget exhaustion is *not*
/// an error (it is reported via [`Diagnostics::exhausted`]).
pub fn until_probabilities_diag(
    model: &Dtmc,
    phi: &[bool],
    target: &[bool],
    opts: &CheckOptions,
    budget: &Budget,
) -> Result<(Vec<f64>, Diagnostics), CheckError> {
    let run = CheckRun::new(opts, budget);
    let x = until_probabilities_run(model, phi, target, &run)?;
    Ok((x, run.finish()))
}

/// The maybe-state linear system of an unbounded-until query: prob0/prob1
/// resolved values in `x`, plus `x_maybe = A·x_maybe + b` on the rest.
struct UntilSystem {
    /// Per-state values with prob0/prob1 states already final.
    x: Vec<f64>,
    /// The maybe states, in ascending state order.
    maybe: Vec<usize>,
    /// Right-hand side: one-step probability into prob1 states.
    b: Vec<f64>,
    /// Restriction of the transition matrix to the maybe states.
    triplets: Vec<Triplet>,
}

fn build_until_system(model: &Dtmc, phi: &[bool], target: &[bool]) -> UntilSystem {
    let n = model.num_states();
    let (zero, one) = graph::prob01(model, phi, target);
    let maybe: Vec<usize> = (0..n).filter(|&s| !zero[s] && !one[s]).collect();
    let x: Vec<f64> = (0..n).map(|s| if one[s] { 1.0 } else { 0.0 }).collect();

    let index: Vec<Option<usize>> = {
        let mut idx = vec![None; n];
        for (i, &s) in maybe.iter().enumerate() {
            idx[s] = Some(i);
        }
        idx
    };
    let m = maybe.len();
    // b_i = sum of probabilities into prob1 states; A = restriction to maybe.
    let mut b = vec![0.0; m];
    let mut triplets = Vec::with_capacity(model.num_transitions().min(4 * m));
    for (i, &s) in maybe.iter().enumerate() {
        for (t, p) in model.successors(s) {
            if one[t] {
                b[i] += p;
            } else if let Some(j) = index[t] {
                triplets.push(Triplet::new(i, j, p));
            }
        }
    }
    UntilSystem { x, maybe, b, triplets }
}

pub(crate) fn until_probabilities_run(
    model: &Dtmc,
    phi: &[bool],
    target: &[bool],
    run: &CheckRun<'_>,
) -> Result<Vec<f64>, CheckError> {
    let UntilSystem { mut x, maybe, b, triplets } = build_until_system(model, phi, target);
    if maybe.is_empty() {
        return Ok(x);
    }
    let sol = solve_restricted(&triplets, &b, maybe.len(), run, SystemKind::Probability)?;
    for (i, &s) in maybe.iter().enumerate() {
        x[s] = sol[i].clamp(0.0, 1.0);
    }
    Ok(x)
}

/// `P(φ U ψ)` per state with **sound two-sided bounds**: the true
/// probability of every state lies in `[lo[s], hi[s]]` (up to floating-point
/// rounding of individual sweeps), regardless of how tight the iteration
/// managed to get within its budget.
///
/// The maybe-state system is solved by interval iteration from the bracket
/// `[0, 1]`; prob0/prob1 states carry the exact bounds `[0, 0]` / `[1, 1]`.
/// When the budget stops the run early the bracket is simply wider — it
/// never becomes unsound — and the cause lands in
/// [`Diagnostics::exhausted`].
///
/// # Errors
///
/// Returns a [`CheckError`] on dimension errors from the numeric layer;
/// non-convergence is not an error (the bracket reports itself).
pub fn until_probabilities_bounds(
    model: &Dtmc,
    phi: &[bool],
    target: &[bool],
    opts: &CheckOptions,
    budget: &Budget,
) -> Result<(Vec<f64>, Vec<f64>, Diagnostics), CheckError> {
    let run = CheckRun::new(opts, budget);
    let UntilSystem { x, maybe, b, triplets } = build_until_system(model, phi, target);
    let mut lo = x.clone();
    let mut hi = x;
    if maybe.is_empty() {
        return Ok((lo, hi, run.finish()));
    }
    let m = maybe.len();
    let a = CsrMatrix::from_triplets(m, m, &triplets)?;
    let iter_opts = IterOptions { tolerance: opts.tolerance, max_iterations: opts.max_iterations };
    let iv = interval_iteration_budgeted(
        &a,
        &b,
        &vec![0.0; m],
        &vec![1.0; m],
        iter_opts,
        &run.remaining_budget(),
    )?;
    run.spend(iv.iterations as u64);
    if iv.converged {
        run.record_backend("interval", true);
    } else if let Some(cause) = iv.stopped {
        // The caller's budget, not a backend fault; the surviving width is
        // the honest residual of the wider bracket.
        run.mark_exhausted(cause);
        run.record_residual(iv.width);
    } else {
        run.record_backend("interval", false);
        run.record_residual(iv.width);
    }
    for (i, &s) in maybe.iter().enumerate() {
        lo[s] = iv.lo[i].clamp(0.0, 1.0);
        hi[s] = iv.hi[i].clamp(0.0, 1.0);
    }
    Ok((lo, hi, run.finish()))
}

/// Expected reward accumulated until first reaching `target`
/// (`R[F target]`) per state; infinite for states that do not reach the
/// target almost surely.
///
/// # Errors
///
/// Returns a [`CheckError`] if the linear solver fails.
pub fn reach_rewards(
    model: &Dtmc,
    rewards: &RewardStructure,
    target: &[bool],
    opts: &CheckOptions,
) -> Result<Vec<f64>, CheckError> {
    let budget = Budget::unlimited();
    let run = CheckRun::new(opts, &budget);
    reach_rewards_run(model, rewards, target, &run)
}

pub(crate) fn reach_rewards_run(
    model: &Dtmc,
    rewards: &RewardStructure,
    target: &[bool],
    run: &CheckRun<'_>,
) -> Result<Vec<f64>, CheckError> {
    let n = model.num_states();
    let phi = vec![true; n];
    let one = graph::prob1(model, &phi, target);
    let maybe: Vec<usize> = (0..n).filter(|&s| one[s] && !target[s]).collect();

    let mut x: Vec<f64> =
        (0..n).map(|s| if target[s] || one[s] { 0.0 } else { f64::INFINITY }).collect();
    if maybe.is_empty() {
        return Ok(x);
    }
    let index: Vec<Option<usize>> = {
        let mut idx = vec![None; n];
        for (i, &s) in maybe.iter().enumerate() {
            idx[s] = Some(i);
        }
        idx
    };
    let m = maybe.len();
    let mut b = vec![0.0; m];
    let mut triplets = Vec::with_capacity(model.num_transitions().min(4 * m));
    for (i, &s) in maybe.iter().enumerate() {
        b[i] = rewards.state_reward(s);
        for (t, p) in model.successors(s) {
            if let Some(j) = index[t] {
                triplets.push(Triplet::new(i, j, p));
            }
            // Successors in `target` contribute 0; successors outside
            // `one` are unreachable from a prob1 state.
        }
    }
    let sol = solve_restricted(&triplets, &b, m, run, SystemKind::Reward)?;
    for (i, &s) in maybe.iter().enumerate() {
        x[s] = sol[i].max(0.0);
    }
    Ok(x)
}

/// Expected reward accumulated over the first `k` steps (`R[C<=k]`).
pub fn cumulative_rewards(model: &Dtmc, rewards: &RewardStructure, k: u64) -> Vec<f64> {
    let n = model.num_states();
    let mut x = vec![0.0; n];
    for _ in 0..k {
        let mut next = vec![0.0; n];
        for (s, nx) in next.iter_mut().enumerate() {
            *nx = rewards.state_reward(s) + model.successors(s).map(|(t, p)| p * x[t]).sum::<f64>();
        }
        x = next;
    }
    x
}

/// Under [`LinearSolver::Auto`], systems up to this many states may fall
/// back to the dense direct solver as a last resort even when they exceed
/// the configured `direct_solver_limit`.
const LAST_RESORT_DIRECT_LIMIT: usize = 2048;

/// Which kind of fixed-point system is being solved; interval iteration
/// needs to know how to seed a sound upper bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SystemKind {
    /// Reachability probabilities: values live in `[0, 1]`.
    Probability,
    /// Expected rewards: unbounded above, the upper bound must be grown
    /// and certified.
    Reward,
}

/// Solves `x = A·x + b` on the maybe-state fragment, picking the solver per
/// the options.
///
/// Under [`LinearSolver::Auto`] large systems first take the SCC-decomposed
/// path (unless `scc_enabled` is off — the runtime's circuit breaker clears
/// it when that backend misbehaves); a stalled SCC solve degrades to
/// monolithic Gauss–Seidel warm-started from the SCC iterate, then Jacobi
/// (at 100× relaxed tolerance), then — for systems up to
/// [`LAST_RESORT_DIRECT_LIMIT`] states — dense Gaussian elimination, and
/// finally the best iterate seen, with its residual recorded in the run's
/// diagnostics. Explicitly requested solvers ([`LinearSolver::GaussSeidel`],
/// [`LinearSolver::Scc`], [`LinearSolver::Interval`]) keep the strict
/// `NoConvergence` error contract. Budget exhaustion always yields the best
/// iterate (never an error), marked in the diagnostics.
fn solve_restricted(
    triplets: &[Triplet],
    b: &[f64],
    m: usize,
    run: &CheckRun<'_>,
    kind: SystemKind,
) -> Result<Vec<f64>, CheckError> {
    let opts = run.opts;
    let _span = tml_telemetry::span!("checker.linear_solve", states = m);
    if opts.use_direct(m) {
        tml_telemetry::counter!("checker.solve.direct_solves", 1);
        let sol = solve_direct_dense(triplets, b, m);
        run.record_backend("direct", sol.is_ok());
        return sol;
    }
    let a = CsrMatrix::from_triplets(m, m, triplets)?;
    let iter_opts = IterOptions { tolerance: opts.tolerance, max_iterations: opts.max_iterations };
    match opts.solver {
        LinearSolver::Scc => return solve_scc_strict(&a, b, run, iter_opts),
        LinearSolver::Interval => return solve_interval_strict(&a, b, run, iter_opts, kind),
        _ => {}
    }
    // Auto: SCC-decomposed solve first — on layered state spaces it
    // replaces O(depth) monolithic sweeps with one back-substitution pass.
    let mut warm = vec![0.0; m];
    if opts.solver == LinearSolver::Auto && opts.scc_enabled {
        let scc = solve_scc_budgeted(&a, b, iter_opts, &run.remaining_budget())?;
        run.spend(scc.run.iterations as u64);
        if scc.run.converged {
            run.record_backend("scc", true);
            return Ok(scc.run.x);
        }
        if let Some(cause) = scc.run.stopped {
            run.mark_exhausted(cause);
            run.record_residual(scc.run.delta);
            return Ok(scc.run.x);
        }
        run.record_backend("scc", false);
        run.record_fallback(format!(
            "scc solve stalled across {} components (residual {:.3e}); \
             retrying monolithic gauss-seidel",
            scc.stats.components, scc.run.delta
        ));
        warm = scc.run.x;
    }
    let gs = gauss_seidel_budgeted(&a, b, &warm, iter_opts, &run.remaining_budget())?;
    run.spend(gs.iterations as u64);
    if gs.converged {
        run.record_backend("gauss-seidel", true);
        return Ok(gs.x);
    }
    if let Some(cause) = gs.stopped {
        // Budget exhaustion is the caller's cap, not a backend fault — it
        // must not count against the backend's circuit-breaker health.
        run.mark_exhausted(cause);
        run.record_residual(gs.delta);
        return Ok(gs.x);
    }
    run.record_backend("gauss-seidel", false);
    if opts.solver == LinearSolver::GaussSeidel {
        // Explicitly requested solver: keep the strict error contract.
        return Err(
            NumericsError::NoConvergence { iterations: gs.iterations, residual: gs.delta }.into()
        );
    }
    // Auto: retry with Jacobi, warm-started from the Gauss–Seidel iterate
    // at a relaxed tolerance.
    run.record_fallback(format!(
        "gauss-seidel stalled (residual {:.3e}); retrying with jacobi at relaxed tolerance",
        gs.delta
    ));
    let relaxed =
        IterOptions { tolerance: opts.tolerance * 100.0, max_iterations: opts.max_iterations };
    let jac = jacobi_budgeted(&a, b, &gs.x, relaxed, &run.remaining_budget())?;
    run.spend(jac.iterations as u64);
    if jac.converged {
        run.record_backend("jacobi", true);
        run.record_residual(jac.delta);
        return Ok(jac.x);
    }
    if let Some(cause) = jac.stopped {
        run.mark_exhausted(cause);
        let best = best_iterate(gs, jac);
        run.record_residual(best.delta);
        return Ok(best.x);
    }
    run.record_backend("jacobi", false);
    // Jacobi stalled too: last resort is a dense direct solve for systems
    // of manageable size, otherwise the best iterate seen.
    if m <= opts.direct_solver_limit.max(LAST_RESORT_DIRECT_LIMIT) {
        run.record_fallback("jacobi stalled; solving directly (dense gaussian elimination)");
        let sol = solve_direct_dense(triplets, b, m);
        run.record_backend("direct", sol.is_ok());
        return sol;
    }
    let best = best_iterate(gs, jac);
    run.record_fallback(format!(
        "all iterative solvers stalled on {m}-state system; accepting best iterate (residual {:.3e})",
        best.delta
    ));
    run.record_residual(best.delta);
    Ok(best.x)
}

/// Explicit [`LinearSolver::Scc`]: converged or budget-stopped runs return
/// the iterate; a stall is a strict `NoConvergence` error (and a breaker
/// strike against the `scc` backend).
fn solve_scc_strict(
    a: &CsrMatrix,
    b: &[f64],
    run: &CheckRun<'_>,
    iter_opts: IterOptions,
) -> Result<Vec<f64>, CheckError> {
    let scc = solve_scc_budgeted(a, b, iter_opts, &run.remaining_budget())?;
    run.spend(scc.run.iterations as u64);
    if scc.run.converged {
        run.record_backend("scc", true);
        return Ok(scc.run.x);
    }
    if let Some(cause) = scc.run.stopped {
        run.mark_exhausted(cause);
        run.record_residual(scc.run.delta);
        return Ok(scc.run.x);
    }
    run.record_backend("scc", false);
    Err(NumericsError::NoConvergence { iterations: scc.run.iterations, residual: scc.run.delta }
        .into())
}

/// Explicit [`LinearSolver::Interval`]: two-sided iteration whose midpoint
/// is returned once the bracket is narrower than the tolerance.
///
/// Probability systems start from the bracket `[0, 1]`. Reward systems have
/// no a-priori upper bound: a budgeted Gauss–Seidel approximation seeds a
/// guess-and-verify certificate ([`certified_upper_bound`]) — if no
/// certificate exists the backend fails strictly rather than reporting
/// unsound bounds. A budget stop returns the midpoint of the (still sound,
/// just wider) bracket.
fn solve_interval_strict(
    a: &CsrMatrix,
    b: &[f64],
    run: &CheckRun<'_>,
    iter_opts: IterOptions,
    kind: SystemKind,
) -> Result<Vec<f64>, CheckError> {
    let m = a.rows();
    let hi0 = match kind {
        SystemKind::Probability => vec![1.0; m],
        SystemKind::Reward => {
            let approx =
                gauss_seidel_budgeted(a, b, &vec![0.0; m], iter_opts, &run.remaining_budget())?;
            run.spend(approx.iterations as u64);
            match certified_upper_bound(a, b, &approx.x) {
                Some(hi) => hi,
                None => {
                    run.record_backend("interval", false);
                    return Err(NumericsError::NoConvergence {
                        iterations: approx.iterations,
                        residual: approx.delta,
                    }
                    .into());
                }
            }
        }
    };
    let iv =
        interval_iteration_budgeted(a, b, &vec![0.0; m], &hi0, iter_opts, &run.remaining_budget())?;
    run.spend(iv.iterations as u64);
    if iv.converged {
        run.record_backend("interval", true);
        return Ok(iv.midpoint());
    }
    if let Some(cause) = iv.stopped {
        run.mark_exhausted(cause);
        run.record_residual(iv.width);
        return Ok(iv.midpoint());
    }
    run.record_backend("interval", false);
    Err(NumericsError::NoConvergence { iterations: iv.iterations, residual: iv.width }.into())
}

/// The iterate with the smaller residual (NaN counts as worst).
fn best_iterate(a: IterRun, b: IterRun) -> IterRun {
    let ra = if a.delta.is_nan() { f64::INFINITY } else { a.delta };
    let rb = if b.delta.is_nan() { f64::INFINITY } else { b.delta };
    if rb <= ra {
        b
    } else {
        a
    }
}

/// Solves `(I − A) x = b` densely.
fn solve_direct_dense(triplets: &[Triplet], b: &[f64], m: usize) -> Result<Vec<f64>, CheckError> {
    let mut a = DenseMatrix::<f64>::identity(m);
    for t in triplets {
        let cur = *a.get(t.row, t.col);
        a.set(t.row, t.col, cur - t.value);
    }
    Ok(solve_dense(&a, b)?)
}

fn zip_masks(a: Vec<bool>, b: Vec<bool>, f: impl Fn(bool, bool) -> bool) -> Vec<bool> {
    a.into_iter().zip(b).map(|(x, y)| f(x, y)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tml_logic::parse_formula;
    use tml_models::DtmcBuilder;

    /// Symmetric gambler's ruin on {0..4}: absorbing at 0 (broke) and 4
    /// (rich); from 1..3 move ±1 with probability 1/2.
    fn gambler() -> Dtmc {
        let mut b = DtmcBuilder::new(5);
        b.transition(0, 0, 1.0).unwrap();
        b.transition(4, 4, 1.0).unwrap();
        for s in 1..4 {
            b.transition(s, s - 1, 0.5).unwrap();
            b.transition(s, s + 1, 0.5).unwrap();
        }
        b.label(4, "rich").unwrap();
        b.label(0, "broke").unwrap();
        for s in 1..4 {
            b.state_reward("steps", s, 1.0).unwrap();
        }
        b.initial_state(2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn gambler_hit_probabilities_are_linear() {
        let d = gambler();
        let opts = CheckOptions::default();
        let phi = vec![true; 5];
        let target = d.labeling().mask("rich");
        let p = until_probabilities(&d, &phi, &target, &opts).unwrap();
        for (s, expected) in [(0, 0.0), (1, 0.25), (2, 0.5), (3, 0.75), (4, 1.0)] {
            assert!((p[s] - expected).abs() < 1e-9, "state {s}: {} vs {expected}", p[s]);
        }
    }

    #[test]
    fn gambler_gauss_seidel_matches_direct() {
        let d = gambler();
        let phi = vec![true; 5];
        let target = d.labeling().mask("rich");
        let direct = until_probabilities(
            &d,
            &phi,
            &target,
            &CheckOptions { solver: crate::LinearSolver::Direct, ..Default::default() },
        )
        .unwrap();
        let gs = until_probabilities(
            &d,
            &phi,
            &target,
            &CheckOptions { solver: crate::LinearSolver::GaussSeidel, ..Default::default() },
        )
        .unwrap();
        for (a, b) in direct.iter().zip(&gs) {
            assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn gambler_expected_absorption_time() {
        // E[steps to absorption] from state s is s*(4-s): 0, 3, 4, 3, 0.
        let d = gambler();
        let opts = CheckOptions::default();
        let target: Vec<bool> = (0..5).map(|s| s == 0 || s == 4).collect();
        let r = reach_rewards(&d, d.reward_structure("steps").unwrap(), &target, &opts).unwrap();
        for (s, expected) in [(0, 0.0), (1, 3.0), (2, 4.0), (3, 3.0), (4, 0.0)] {
            assert!((r[s] - expected).abs() < 1e-9, "state {s}: {} vs {expected}", r[s]);
        }
    }

    #[test]
    fn infinite_reward_when_target_unreachable() {
        // 0 -> 0 forever, target = state 1 unreachable.
        let mut b = DtmcBuilder::new(2);
        b.transition(0, 0, 1.0).unwrap();
        b.transition(1, 1, 1.0).unwrap();
        b.label(1, "goal").unwrap();
        b.state_reward("r", 0, 1.0).unwrap();
        let d = b.build().unwrap();
        let r = reach_rewards(
            &d,
            d.reward_structure("r").unwrap(),
            &d.labeling().mask("goal"),
            &CheckOptions::default(),
        )
        .unwrap();
        assert!(r[0].is_infinite());
        assert_eq!(r[1], 0.0);
    }

    #[test]
    fn bounded_until_converges_to_unbounded() {
        let d = gambler();
        let opts = CheckOptions::default();
        let phi = vec![true; 5];
        let target = d.labeling().mask("rich");
        let unbounded = until_probabilities(&d, &phi, &target, &opts).unwrap();
        let b100 = bounded_until_probabilities(&d, &phi, &target, 200);
        for (a, b) in unbounded.iter().zip(&b100) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
        // Monotonicity in the bound.
        let b1 = bounded_until_probabilities(&d, &phi, &target, 1);
        let b2 = bounded_until_probabilities(&d, &phi, &target, 2);
        for (x, y) in b1.iter().zip(&b2) {
            assert!(x <= y);
        }
    }

    #[test]
    fn next_probability() {
        let d = gambler();
        let target = d.labeling().mask("rich");
        let p = next_probabilities(&d, &target);
        assert_eq!(p, vec![0.0, 0.0, 0.0, 0.5, 1.0]);
    }

    #[test]
    fn globally_is_complement_of_eventually() {
        let d = gambler();
        let opts = CheckOptions::default();
        // P(G !rich) = 1 - P(F rich)
        let g = path_probabilities(
            &d,
            &tml_logic::PathFormula::Globally {
                sub: Box::new(StateFormula::Not(Box::new(StateFormula::Atom("rich".into())))),
                bound: None,
            },
            &opts,
        )
        .unwrap();
        assert!((g[2] - 0.5).abs() < 1e-9);
        assert!((g[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn full_formula_checking() {
        let d = gambler();
        let c =
            check(&d, &parse_formula("P>=0.5 [ F \"rich\" ]").unwrap(), &CheckOptions::default())
                .unwrap();
        assert!(c.holds()); // initial state 2 has probability exactly 0.5
        assert_eq!(c.sat_states(), vec![2, 3, 4]);
        assert!((c.value_at_initial().unwrap() - 0.5).abs() < 1e-9);

        let c2 = check(
            &d,
            &parse_formula("R{\"steps\"}<=3.5 [ F (\"rich\" | \"broke\") ]").unwrap(),
            &CheckOptions::default(),
        )
        .unwrap();
        assert_eq!(c2.sat_states(), vec![0, 1, 3, 4]);
    }

    #[test]
    fn cumulative_rewards_accumulate() {
        let d = gambler();
        let r = d.reward_structure("steps").unwrap();
        let c1 = cumulative_rewards(&d, r, 1);
        assert_eq!(c1, vec![0.0, 1.0, 1.0, 1.0, 0.0]);
        let c2 = cumulative_rewards(&d, r, 2);
        // from state 2: 1 + 0.5*1 + 0.5*1 = 2
        assert!((c2[2] - 2.0).abs() < 1e-12);
        let c0 = cumulative_rewards(&d, r, 0);
        assert_eq!(c0, vec![0.0; 5]);
    }

    #[test]
    fn boolean_connectives_and_atoms() {
        let d = gambler();
        let opts = CheckOptions::default();
        let f = parse_formula("!\"rich\" & !\"broke\"").unwrap();
        let sat = evaluate(&d, &f, &opts).unwrap();
        assert_eq!(sat, vec![false, true, true, true, false]);
        let imp = parse_formula("\"rich\" => \"rich\"").unwrap();
        assert_eq!(evaluate(&d, &imp, &opts).unwrap(), vec![true; 5]);
        let unknown = parse_formula("\"no_such_label\"").unwrap();
        assert_eq!(evaluate(&d, &unknown, &opts).unwrap(), vec![false; 5]);
    }

    #[test]
    fn query_interface() {
        let d = gambler();
        let q = tml_logic::parse_query("P=? [ F \"rich\" ]").unwrap();
        let v = query(&d, &q, &CheckOptions::default()).unwrap();
        assert!((v[2] - 0.5).abs() < 1e-9);
        let rq = tml_logic::parse_query("R{\"steps\"}=? [ F (\"rich\" | \"broke\") ]").unwrap();
        let rv = query(&d, &rq, &CheckOptions::default()).unwrap();
        assert!((rv[2] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn missing_reward_structure_errors() {
        let d = gambler();
        let f = parse_formula("R{\"nope\"}<=1 [ F \"rich\" ]").unwrap();
        assert!(check(&d, &f, &CheckOptions::default()).is_err());
    }

    #[test]
    fn fallback_chain_recovers_stalled_gauss_seidel() {
        // Starve Gauss–Seidel of iterations so it stalls; under Auto the
        // chain (jacobi -> dense direct) must still produce the exact
        // answer, with the fallbacks recorded.
        let d = gambler();
        let phi = vec![true; 5];
        let target = d.labeling().mask("rich");
        let starved = CheckOptions {
            solver: crate::LinearSolver::Auto,
            direct_solver_limit: 0, // force the iterative path
            scc_enabled: false,     // exercise the legacy monolithic chain
            max_iterations: 2,
            tolerance: 1e-12,
            ..Default::default()
        };
        let (p, diag) =
            until_probabilities_diag(&d, &phi, &target, &starved, &Budget::unlimited()).unwrap();
        let exact = until_probabilities(
            &d,
            &phi,
            &target,
            &CheckOptions { solver: crate::LinearSolver::Direct, ..Default::default() },
        )
        .unwrap();
        for (a, b) in p.iter().zip(&exact) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        assert_eq!(diag.fallbacks.len(), 2, "both fallback stages fire: {:?}", diag.fallbacks);
        assert!(diag.fallbacks[0].contains("jacobi"));
        assert!(diag.fallbacks[1].contains("direct"));
        assert!(diag.degraded());
        assert!(diag.exhausted.is_none(), "no budget was exhausted");
    }

    #[test]
    fn scc_solver_matches_direct() {
        let d = gambler();
        let phi = vec![true; 5];
        let target = d.labeling().mask("rich");
        let scc = CheckOptions { solver: crate::LinearSolver::Scc, ..Default::default() };
        let direct = CheckOptions { solver: crate::LinearSolver::Direct, ..Default::default() };
        let (p, diag) =
            until_probabilities_diag(&d, &phi, &target, &scc, &Budget::unlimited()).unwrap();
        let exact = until_probabilities(&d, &phi, &target, &direct).unwrap();
        for (a, b) in p.iter().zip(&exact) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        assert!(!diag.degraded());
        assert_eq!(
            diag.telemetry.counter("checker.backend.scc.ok"),
            1,
            "scc backend success must be counted"
        );
    }

    #[test]
    fn auto_routes_large_systems_through_scc() {
        let d = gambler();
        let phi = vec![true; 5];
        let target = d.labeling().mask("rich");
        let opts = CheckOptions {
            direct_solver_limit: 0, // everything is "large"
            ..Default::default()
        };
        let (p, diag) =
            until_probabilities_diag(&d, &phi, &target, &opts, &Budget::unlimited()).unwrap();
        assert!((p[2] - 0.5).abs() < 1e-9);
        assert_eq!(diag.telemetry.counter("checker.backend.scc.ok"), 1);
        assert!(diag.fallbacks.is_empty(), "scc handled it: {:?}", diag.fallbacks);
    }

    #[test]
    fn interval_solver_matches_direct_and_counts() {
        let d = gambler();
        let phi = vec![true; 5];
        let target = d.labeling().mask("rich");
        let iv = CheckOptions { solver: crate::LinearSolver::Interval, ..Default::default() };
        let direct = CheckOptions { solver: crate::LinearSolver::Direct, ..Default::default() };
        let (p, diag) =
            until_probabilities_diag(&d, &phi, &target, &iv, &Budget::unlimited()).unwrap();
        let exact = until_probabilities(&d, &phi, &target, &direct).unwrap();
        for (a, b) in p.iter().zip(&exact) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
        assert_eq!(diag.telemetry.counter("checker.backend.interval.ok"), 1);
    }

    #[test]
    fn interval_solver_handles_rewards() {
        let d = gambler();
        let target =
            zip_masks(d.labeling().mask("rich"), d.labeling().mask("broke"), |a, b| a || b);
        let rewards = d.reward_structure("steps").unwrap();
        let iv = CheckOptions { solver: crate::LinearSolver::Interval, ..Default::default() };
        let r = reach_rewards(&d, rewards, &target, &iv).unwrap();
        // Symmetric gambler: expected steps from the middle state is 4.
        assert!((r[2] - 4.0).abs() < 1e-7, "got {}", r[2]);
    }

    #[test]
    fn bounds_bracket_the_direct_solution() {
        let d = gambler();
        let phi = vec![true; 5];
        let target = d.labeling().mask("rich");
        let opts = CheckOptions::default();
        let (lo, hi, diag) =
            until_probabilities_bounds(&d, &phi, &target, &opts, &Budget::unlimited()).unwrap();
        let exact = until_probabilities(
            &d,
            &phi,
            &target,
            &CheckOptions { solver: crate::LinearSolver::Direct, ..Default::default() },
        )
        .unwrap();
        for s in 0..5 {
            assert!(lo[s] <= exact[s] + 1e-9, "state {s}: lo {} vs exact {}", lo[s], exact[s]);
            assert!(exact[s] <= hi[s] + 1e-9, "state {s}: exact {} vs hi {}", exact[s], hi[s]);
            assert!(hi[s] - lo[s] <= opts.tolerance + 1e-12);
        }
        assert!(!diag.degraded());
    }

    #[test]
    fn starved_bounds_stay_sound_just_wider() {
        let d = gambler();
        let phi = vec![true; 5];
        let target = d.labeling().mask("rich");
        let opts = CheckOptions::default();
        let budget = Budget::unlimited().with_max_evaluations(1);
        let (lo, hi, diag) = until_probabilities_bounds(&d, &phi, &target, &opts, &budget).unwrap();
        assert_eq!(diag.exhausted, Some(tml_numerics::Exhaustion::Evaluations));
        let exact = until_probabilities(
            &d,
            &phi,
            &target,
            &CheckOptions { solver: crate::LinearSolver::Direct, ..Default::default() },
        )
        .unwrap();
        for s in 0..5 {
            assert!(lo[s] <= exact[s] + 1e-9 && exact[s] <= hi[s] + 1e-9, "state {s}");
        }
    }

    #[test]
    fn explicit_gauss_seidel_keeps_strict_error() {
        let d = gambler();
        let phi = vec![true; 5];
        let target = d.labeling().mask("rich");
        let starved = CheckOptions {
            solver: crate::LinearSolver::GaussSeidel,
            max_iterations: 2,
            tolerance: 1e-12,
            ..Default::default()
        };
        let err = until_probabilities(&d, &phi, &target, &starved).unwrap_err();
        match err {
            CheckError::Numerics(NumericsError::NoConvergence { residual, .. }) => {
                assert!(!residual.is_nan(), "real residual must be reported");
            }
            other => panic!("expected NoConvergence, got {other:?}"),
        }
    }

    #[test]
    fn budget_exhaustion_returns_best_effort() {
        let d = gambler();
        let phi = vec![true; 5];
        let target = d.labeling().mask("rich");
        let opts = CheckOptions {
            solver: crate::LinearSolver::GaussSeidel,
            tolerance: 1e-12,
            ..Default::default()
        };
        let budget = Budget::unlimited().with_max_evaluations(1);
        let (p, diag) = until_probabilities_diag(&d, &phi, &target, &opts, &budget).unwrap();
        assert_eq!(diag.exhausted, Some(tml_numerics::Exhaustion::Evaluations));
        assert!(diag.evaluations <= 1);
        assert!(diag.degraded());
        // Probabilities remain well-formed even when degraded.
        for v in &p {
            assert!((0.0..=1.0).contains(v));
        }
    }

    #[test]
    fn nested_prob_operator() {
        let d = gambler();
        // States from which we will (p >= 0.75) reach a state that itself
        // reaches "rich" with p >= 0.75: inner sat = {3, 4}.
        let f = parse_formula("P>=0.75 [ F P>=0.75 [ F \"rich\" ] ]").unwrap();
        let sat = evaluate(&d, &f, &CheckOptions::default()).unwrap();
        // P(F {3,4}) from 2 = 0.75? Hitting {3,4} from 2: p = 2/3... compute:
        // from 2: h2 = 0.5 + 0.5*h1; h1 = 0.5*h2 + 0.5*0 => h2 = 2/3.
        assert!(!sat[2]);
        assert!(sat[3] && sat[4]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use tml_models::DtmcBuilder;

    fn random_chain(seed: &[f64], n: usize) -> Dtmc {
        let mut b = DtmcBuilder::new(n);
        let mut k = 0;
        for s in 0..n {
            let t1 = ((seed[k] * n as f64) as usize).min(n - 1);
            let t2 = ((seed[k + 1] * n as f64) as usize).min(n - 1);
            let p = 0.05 + 0.9 * seed[k + 2];
            k += 3;
            if t1 == t2 {
                b.transition(s, t1, 1.0).unwrap();
            } else {
                b.transition(s, t1, p).unwrap();
                b.transition(s, t2, 1.0 - p).unwrap();
            }
        }
        b.label(n - 1, "goal").unwrap();
        b.build().unwrap()
    }

    proptest! {
        /// Until probabilities are in [0,1], 1 on prob1 states, 0 on prob0
        /// states, and bounded-until approaches unbounded from below.
        #[test]
        fn until_probability_invariants(seed in proptest::collection::vec(0.0_f64..1.0, 24)) {
            let n = 8;
            let d = random_chain(&seed, n);
            let opts = CheckOptions::default();
            let phi = vec![true; n];
            let target = d.labeling().mask("goal");
            let p = until_probabilities(&d, &phi, &target, &opts).unwrap();
            let p0 = tml_models::graph::prob0(&d, &phi, &target);
            let p1 = tml_models::graph::prob1(&d, &phi, &target);
            for s in 0..n {
                prop_assert!((0.0..=1.0).contains(&p[s]));
                if p0[s] { prop_assert!(p[s] == 0.0); }
                if p1[s] { prop_assert!((p[s] - 1.0).abs() < 1e-9); }
            }
            let bounded = bounded_until_probabilities(&d, &phi, &target, 64);
            for s in 0..n {
                prop_assert!(bounded[s] <= p[s] + 1e-9);
            }
        }

        /// P(F goal) computed by the direct solver matches Gauss–Seidel,
        /// and both satisfy the fixed-point equation x = P·x on maybe
        /// states (residual check).
        #[test]
        fn solvers_agree_and_satisfy_fixed_point(seed in proptest::collection::vec(0.0_f64..1.0, 24)) {
            let n = 8;
            let d = random_chain(&seed, n);
            let phi = vec![true; n];
            let target = d.labeling().mask("goal");
            let direct = until_probabilities(&d, &phi, &target,
                &CheckOptions { solver: crate::LinearSolver::Direct, ..Default::default() }).unwrap();
            let gs = until_probabilities(&d, &phi, &target,
                &CheckOptions { solver: crate::LinearSolver::GaussSeidel, tolerance: 1e-13, ..Default::default() }).unwrap();
            for s in 0..n {
                prop_assert!((direct[s] - gs[s]).abs() < 1e-6,
                    "state {}: direct {} vs gauss-seidel {}", s, direct[s], gs[s]);
            }
            // Fixed point: for non-target states with 0 < p < 1 the value
            // equals the expected successor value.
            for s in 0..n {
                if !target[s] && direct[s] > 1e-9 && direct[s] < 1.0 - 1e-9 {
                    let expect: f64 = d.successors(s).map(|(t, p)| p * direct[t]).sum();
                    prop_assert!((direct[s] - expect).abs() < 1e-8,
                        "fixed point violated at {}: {} vs {}", s, direct[s], expect);
                }
            }
        }
    }
}

/// The transient state distribution after exactly `k` steps, starting from
/// the chain's initial state.
pub fn transient_distribution(model: &Dtmc, k: u64) -> Vec<f64> {
    let n = model.num_states();
    let mut dist = vec![0.0; n];
    dist[model.initial_state()] = 1.0;
    for _ in 0..k {
        let mut next = vec![0.0; n];
        for (s, &d) in dist.iter().enumerate() {
            if d == 0.0 {
                continue;
            }
            for (t, p) in model.successors(s) {
                next[t] += d * p;
            }
        }
        dist = next;
    }
    dist
}

/// The steady-state distribution of an (assumed ergodic) chain by power
/// iteration from the uniform distribution.
///
/// # Errors
///
/// Returns a wrapped [`NumericsError::NoConvergence`](tml_numerics::NumericsError::NoConvergence)
/// if the iterates do not settle — e.g. for periodic or reducible chains
/// whose limit distribution depends on the start.
pub fn steady_state(model: &Dtmc, opts: &CheckOptions) -> Result<Vec<f64>, CheckError> {
    let n = model.num_states();
    let mut dist = vec![1.0 / n as f64; n];
    let mut last_delta = f64::INFINITY;
    for _ in 0..opts.max_iterations {
        let mut next = vec![0.0; n];
        for (s, &d) in dist.iter().enumerate() {
            for (t, p) in model.successors(s) {
                next[t] += d * p;
            }
        }
        last_delta = dist.iter().zip(&next).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        dist = next;
        if last_delta <= opts.tolerance {
            return Ok(dist);
        }
    }
    Err(NumericsError::NoConvergence { iterations: opts.max_iterations, residual: last_delta }
        .into())
}

#[cfg(test)]
mod distribution_tests {
    use super::*;
    use tml_models::DtmcBuilder;

    #[test]
    fn transient_distribution_steps() {
        let mut b = DtmcBuilder::new(2);
        b.transition(0, 1, 1.0).unwrap();
        b.transition(1, 0, 1.0).unwrap();
        let d = b.build().unwrap();
        assert_eq!(transient_distribution(&d, 0), vec![1.0, 0.0]);
        assert_eq!(transient_distribution(&d, 1), vec![0.0, 1.0]);
        assert_eq!(transient_distribution(&d, 2), vec![1.0, 0.0]);
    }

    #[test]
    fn steady_state_of_two_state_chain() {
        // p(0->1)=0.2, p(1->0)=0.4: stationary = (2/3, 1/3).
        let mut b = DtmcBuilder::new(2);
        b.transition(0, 0, 0.8).unwrap();
        b.transition(0, 1, 0.2).unwrap();
        b.transition(1, 0, 0.4).unwrap();
        b.transition(1, 1, 0.6).unwrap();
        let d = b.build().unwrap();
        let pi = steady_state(&d, &CheckOptions::default()).unwrap();
        assert!((pi[0] - 2.0 / 3.0).abs() < 1e-8, "pi = {pi:?}");
        assert!((pi[1] - 1.0 / 3.0).abs() < 1e-8);
        // It is a fixed point of the transition operator.
        let stepped: f64 =
            d.successors(0).map(|(t, p)| if t == 0 { p * pi[0] } else { 0.0 }).sum::<f64>()
                + d.successors(1).map(|(t, p)| if t == 0 { p * pi[1] } else { 0.0 }).sum::<f64>();
        assert!((stepped - pi[0]).abs() < 1e-8);
    }

    #[test]
    fn steady_state_periodic_chain_fails() {
        let mut b = DtmcBuilder::new(2);
        b.transition(0, 1, 1.0).unwrap();
        b.transition(1, 0, 1.0).unwrap();
        let d = b.build().unwrap();
        // The period-2 chain oscillates from most starts, but power
        // iteration from uniform is exactly at the fixed point (0.5, 0.5).
        let pi = steady_state(&d, &CheckOptions::default()).unwrap();
        assert!((pi[0] - 0.5).abs() < 1e-9);
        // From a non-uniform start the oscillation is visible via
        // transient distributions instead.
        assert_ne!(transient_distribution(&d, 1), transient_distribution(&d, 2));
    }
}

/// Extracts a *witness path*: the most probable path from `from` to a
/// `target` state, by Dijkstra over `−ln p` edge weights. Returns `None`
/// when no target is reachable.
///
/// Useful as a diagnostic when a lower-bounded property fails — the
/// returned path shows one concrete high-probability way the chain behaves.
pub fn most_probable_path(model: &Dtmc, from: usize, target: &[bool]) -> Option<(Vec<usize>, f64)> {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    #[derive(PartialEq)]
    struct Entry {
        cost: f64,
        state: usize,
    }
    impl Eq for Entry {}
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            // Min-heap on cost.
            other.cost.partial_cmp(&self.cost).unwrap_or(Ordering::Equal)
        }
    }
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    let n = model.num_states();
    assert_eq!(target.len(), n, "target mask length");
    let mut dist = vec![f64::INFINITY; n];
    let mut prev = vec![usize::MAX; n];
    let mut heap = BinaryHeap::new();
    dist[from] = 0.0;
    heap.push(Entry { cost: 0.0, state: from });
    while let Some(Entry { cost, state }) = heap.pop() {
        if cost > dist[state] {
            continue;
        }
        if target[state] {
            let mut path = vec![state];
            let mut cur = state;
            while prev[cur] != usize::MAX {
                cur = prev[cur];
                path.push(cur);
            }
            path.reverse();
            return Some((path, (-cost).exp()));
        }
        for (t, p) in model.successors(state) {
            if p <= 0.0 {
                continue;
            }
            let next_cost = cost - p.ln();
            if next_cost < dist[t] {
                dist[t] = next_cost;
                prev[t] = state;
                heap.push(Entry { cost: next_cost, state: t });
            }
        }
    }
    None
}

/// Expected number of visits to each state before absorption in `target`,
/// starting from the initial state (the fundamental-matrix row). States
/// from which `target` is unreachable report infinity.
///
/// Always solved directly (the occupancy system is transposed, which the
/// iterative kernels do not cover); `_opts` is accepted for signature
/// symmetry with the other solvers.
///
/// # Errors
///
/// Returns a [`CheckError`] if the linear solver fails.
pub fn expected_visits(
    model: &Dtmc,
    target: &[bool],
    _opts: &CheckOptions,
) -> Result<Vec<f64>, CheckError> {
    let n = model.num_states();
    assert_eq!(target.len(), n, "target mask length");
    let phi = vec![true; n];
    let one = graph::prob1(model, &phi, target);
    if !one[model.initial_state()] {
        return Ok(vec![f64::INFINITY; n]);
    }
    // Transient states reachable before absorption.
    let transient: Vec<usize> = (0..n).filter(|&s| one[s] && !target[s]).collect();
    let index = {
        let mut idx = vec![None; n];
        for (i, &s) in transient.iter().enumerate() {
            idx[s] = Some(i);
        }
        idx
    };
    let m = transient.len();
    let mut visits = vec![0.0; n];
    if m == 0 {
        return Ok(visits);
    }
    // Solve x = xᵀQ + e_init  ⇔  (I − Qᵀ) x = e_init.
    let mut a = DenseMatrix::<f64>::identity(m);
    for (j, &s) in transient.iter().enumerate() {
        for (t, p) in model.successors(s) {
            if let Some(i) = index[t] {
                let cur = *a.get(i, j);
                a.set(i, j, cur - p);
            }
        }
    }
    let mut b = vec![0.0; m];
    if let Some(i0) = index[model.initial_state()] {
        b[i0] = 1.0;
    }
    let sol = solve_dense(&a, &b)?;
    for (i, &s) in transient.iter().enumerate() {
        visits[s] = sol[i].max(0.0);
    }
    Ok(visits)
}

#[cfg(test)]
mod witness_tests {
    use super::*;
    use tml_models::DtmcBuilder;

    fn fork() -> Dtmc {
        // 0 -> 1 (0.7) -> 3; 0 -> 2 (0.3) -> 3; 3 absorbing target.
        let mut b = DtmcBuilder::new(4);
        b.transition(0, 1, 0.7).unwrap();
        b.transition(0, 2, 0.3).unwrap();
        b.transition(1, 3, 1.0).unwrap();
        b.transition(2, 3, 1.0).unwrap();
        b.transition(3, 3, 1.0).unwrap();
        b.label(3, "goal").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn witness_takes_likelier_branch() {
        let d = fork();
        let (path, prob) = most_probable_path(&d, 0, &d.labeling().mask("goal")).unwrap();
        assert_eq!(path, vec![0, 1, 3]);
        assert!((prob - 0.7).abs() < 1e-12);
    }

    #[test]
    fn witness_none_when_unreachable() {
        let mut b = DtmcBuilder::new(2);
        b.transition(0, 0, 1.0).unwrap();
        b.transition(1, 1, 1.0).unwrap();
        b.label(1, "goal").unwrap();
        let d = b.build().unwrap();
        assert!(most_probable_path(&d, 0, &d.labeling().mask("goal")).is_none());
    }

    #[test]
    fn witness_from_target_state_is_trivial() {
        let d = fork();
        let (path, prob) = most_probable_path(&d, 3, &d.labeling().mask("goal")).unwrap();
        assert_eq!(path, vec![3]);
        assert_eq!(prob, 1.0);
    }

    #[test]
    fn expected_visits_fundamental_matrix() {
        // Retry chain: 0 stays with 0.5, moves to 1 (target) with 0.5.
        // E[visits to 0] = 2 (geometric), E[visits to 1 pre-absorption] = 0.
        let mut b = DtmcBuilder::new(2);
        b.transition(0, 0, 0.5).unwrap();
        b.transition(0, 1, 0.5).unwrap();
        b.transition(1, 1, 1.0).unwrap();
        b.label(1, "goal").unwrap();
        let d = b.build().unwrap();
        let v = expected_visits(&d, &d.labeling().mask("goal"), &CheckOptions::default()).unwrap();
        assert!((v[0] - 2.0).abs() < 1e-9, "v = {v:?}");
        assert_eq!(v[1], 0.0);
    }

    #[test]
    fn expected_visits_match_reward_decomposition() {
        // E[total reward] = Σ_s visits(s) · r(s): cross-check the two
        // independent solvers on the fork chain with unit rewards.
        let mut b = DtmcBuilder::new(4);
        b.transition(0, 1, 0.7).unwrap();
        b.transition(0, 2, 0.3).unwrap();
        b.transition(1, 0, 0.5).unwrap();
        b.transition(1, 3, 0.5).unwrap();
        b.transition(2, 3, 1.0).unwrap();
        b.transition(3, 3, 1.0).unwrap();
        b.label(3, "goal").unwrap();
        for s in 0..3 {
            b.state_reward("steps", s, 1.0).unwrap();
        }
        let d = b.build().unwrap();
        let opts = CheckOptions::default();
        let target = d.labeling().mask("goal");
        let visits = expected_visits(&d, &target, &opts).unwrap();
        let reward =
            reach_rewards(&d, d.reward_structure("steps").unwrap(), &target, &opts).unwrap();
        let via_visits: f64 = visits.iter().take(3).sum();
        assert!(
            (via_visits - reward[0]).abs() < 1e-9,
            "visits {via_visits} vs reward {}",
            reward[0]
        );
    }

    #[test]
    fn expected_visits_infinite_when_absorption_uncertain() {
        let mut b = DtmcBuilder::new(3);
        b.transition(0, 1, 0.5).unwrap();
        b.transition(0, 2, 0.5).unwrap();
        b.transition(1, 1, 1.0).unwrap();
        b.transition(2, 2, 1.0).unwrap();
        b.label(1, "goal").unwrap();
        let d = b.build().unwrap();
        let v = expected_visits(&d, &d.labeling().mask("goal"), &CheckOptions::default()).unwrap();
        assert!(v[0].is_infinite());
    }
}
