use std::error::Error;
use std::fmt;

use tml_models::ModelError;
use tml_numerics::NumericsError;

/// Errors raised by the model checker.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CheckError {
    /// The underlying model rejected an operation (e.g. an unknown reward
    /// structure name).
    Model(ModelError),
    /// A numeric kernel failed (singular system, no convergence).
    Numerics(NumericsError),
    /// An MDP query lacked the required `min`/`max` annotation.
    MissingOpt {
        /// The query, rendered for diagnostics.
        query: String,
    },
    /// A feature combination is not supported.
    Unsupported {
        /// Human-readable description.
        detail: String,
    },
    /// The parametric engine failed while lifting a property over a
    /// parameter region (see [`crate::region`]).
    Parametric(tml_parametric::ParametricError),
    /// An interval model's uncertainty set is malformed: NaN or out-of-range
    /// endpoints, an inverted interval (`lo > hi`), or an empty row polytope
    /// (`Σ lo > 1` or `Σ hi < 1`). Robust value iteration refuses such sets
    /// instead of iterating on garbage.
    InvalidInterval {
        /// The state whose row is malformed.
        state: usize,
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Model(e) => write!(f, "model error: {e}"),
            CheckError::Numerics(e) => write!(f, "numeric error: {e}"),
            CheckError::MissingOpt { query } => {
                write!(f, "MDP query {query:?} needs an explicit min or max")
            }
            CheckError::Unsupported { detail } => write!(f, "unsupported: {detail}"),
            CheckError::Parametric(e) => write!(f, "parametric error: {e}"),
            CheckError::InvalidInterval { state, detail } => {
                write!(f, "invalid interval row at state {state}: {detail}")
            }
        }
    }
}

impl Error for CheckError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckError::Model(e) => Some(e),
            CheckError::Numerics(e) => Some(e),
            CheckError::Parametric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<tml_parametric::ParametricError> for CheckError {
    fn from(e: tml_parametric::ParametricError) -> Self {
        CheckError::Parametric(e)
    }
}

impl From<ModelError> for CheckError {
    fn from(e: ModelError) -> Self {
        CheckError::Model(e)
    }
}

impl From<NumericsError> for CheckError {
    fn from(e: NumericsError) -> Self {
        CheckError::Numerics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CheckError::from(ModelError::MissingDistribution { state: 1 });
        assert!(e.to_string().contains("model error"));
        assert!(e.source().is_some());
        let e2 = CheckError::MissingOpt { query: "P=? [...]".into() };
        assert!(e2.to_string().contains("min or max"));
        assert!(e2.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CheckError>();
    }
}
