/// Which quantitative engine solves the linear systems on DTMC
/// "maybe" states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LinearSolver {
    /// Pick automatically: direct Gaussian elimination for small systems,
    /// Gauss–Seidel for large ones.
    #[default]
    Auto,
    /// Always use dense Gaussian elimination (exact up to rounding).
    Direct,
    /// Always use sparse Gauss–Seidel iteration.
    GaussSeidel,
    /// SCC-decomposed solve: condense the maybe-state graph, solve one
    /// strongly connected block at a time in dependency order; trivial
    /// components resolve by back-substitution without iterating.
    Scc,
    /// Interval (two-sided) iteration: iterate a lower and an upper bound
    /// around the fixed point and report their midpoint, so the result
    /// carries a sound error bracket instead of a heuristic residual.
    Interval,
}

/// Numeric options for the checker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckOptions {
    /// Convergence tolerance for iterative methods (value iteration,
    /// Gauss–Seidel).
    pub tolerance: f64,
    /// Iteration budget for iterative methods.
    pub max_iterations: usize,
    /// Linear solver selection for DTMC unbounded until / rewards.
    pub solver: LinearSolver,
    /// Systems with at most this many maybe-states use the direct solver
    /// under [`LinearSolver::Auto`].
    pub direct_solver_limit: usize,
    /// Absolute tolerance when comparing a computed probability/reward
    /// against a bound: values within this distance of the bound are treated
    /// as equal, so `P>=0.5` holds at a computed `0.4999999999`. Set to zero
    /// for strict comparisons.
    pub bound_tolerance: f64,
    /// Whether [`LinearSolver::Auto`] may route large systems through the
    /// SCC-decomposed solver before falling back to monolithic iteration.
    /// The runtime's circuit breaker clears this when the SCC backend has
    /// been failing.
    pub scc_enabled: bool,
    /// Whether robust (min-max) value iteration on interval models may run.
    /// The runtime's circuit breaker clears this under [`LinearSolver::Auto`]
    /// when the `robust` backend has been failing; the robust checker then
    /// degrades to a scalar solve on the nominal (midpoint) model and reports
    /// the fallback in its diagnostics.
    pub robust_vi_enabled: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            tolerance: 1e-10,
            max_iterations: 1_000_000,
            solver: LinearSolver::Auto,
            direct_solver_limit: 512,
            bound_tolerance: 1e-8,
            scc_enabled: true,
            robust_vi_enabled: true,
        }
    }
}

impl CheckOptions {
    /// Whether a system of `n` maybe-states should use the direct solver.
    pub fn use_direct(&self, n: usize) -> bool {
        match self.solver {
            LinearSolver::Direct => true,
            LinearSolver::GaussSeidel | LinearSolver::Scc | LinearSolver::Interval => false,
            LinearSolver::Auto => n <= self.direct_solver_limit,
        }
    }

    /// Compares `value ⋈ bound` treating values within
    /// [`bound_tolerance`](Self::bound_tolerance) of the bound as equal.
    pub fn test_bound(&self, op: tml_logic::CmpOp, value: f64, bound: f64) -> bool {
        use tml_logic::CmpOp;
        if (value - bound).abs() <= self.bound_tolerance {
            return matches!(op, CmpOp::Le | CmpOp::Ge);
        }
        op.test(value, bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let o = CheckOptions::default();
        assert!(o.tolerance > 0.0 && o.tolerance < 1e-6);
        assert!(o.max_iterations > 1000);
        assert_eq!(o.solver, LinearSolver::Auto);
    }

    #[test]
    fn solver_selection() {
        let mut o = CheckOptions::default();
        assert!(o.use_direct(10));
        assert!(!o.use_direct(100_000));
        o.solver = LinearSolver::Direct;
        assert!(o.use_direct(100_000));
        o.solver = LinearSolver::GaussSeidel;
        assert!(!o.use_direct(1));
        o.solver = LinearSolver::Scc;
        assert!(!o.use_direct(1));
        o.solver = LinearSolver::Interval;
        assert!(!o.use_direct(1));
        assert!(CheckOptions::default().scc_enabled);
    }
}
