/// Which quantitative engine solves the linear systems on DTMC
/// "maybe" states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LinearSolver {
    /// Pick automatically: direct Gaussian elimination for small systems,
    /// Gauss–Seidel for large ones.
    #[default]
    Auto,
    /// Always use dense Gaussian elimination (exact up to rounding).
    Direct,
    /// Always use sparse Gauss–Seidel iteration.
    GaussSeidel,
}

/// Numeric options for the checker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckOptions {
    /// Convergence tolerance for iterative methods (value iteration,
    /// Gauss–Seidel).
    pub tolerance: f64,
    /// Iteration budget for iterative methods.
    pub max_iterations: usize,
    /// Linear solver selection for DTMC unbounded until / rewards.
    pub solver: LinearSolver,
    /// Systems with at most this many maybe-states use the direct solver
    /// under [`LinearSolver::Auto`].
    pub direct_solver_limit: usize,
    /// Absolute tolerance when comparing a computed probability/reward
    /// against a bound: values within this distance of the bound are treated
    /// as equal, so `P>=0.5` holds at a computed `0.4999999999`. Set to zero
    /// for strict comparisons.
    pub bound_tolerance: f64,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            tolerance: 1e-10,
            max_iterations: 1_000_000,
            solver: LinearSolver::Auto,
            direct_solver_limit: 512,
            bound_tolerance: 1e-8,
        }
    }
}

impl CheckOptions {
    /// Whether a system of `n` maybe-states should use the direct solver.
    pub fn use_direct(&self, n: usize) -> bool {
        match self.solver {
            LinearSolver::Direct => true,
            LinearSolver::GaussSeidel => false,
            LinearSolver::Auto => n <= self.direct_solver_limit,
        }
    }

    /// Compares `value ⋈ bound` treating values within
    /// [`bound_tolerance`](Self::bound_tolerance) of the bound as equal.
    pub fn test_bound(&self, op: tml_logic::CmpOp, value: f64, bound: f64) -> bool {
        use tml_logic::CmpOp;
        if (value - bound).abs() <= self.bound_tolerance {
            return matches!(op, CmpOp::Le | CmpOp::Ge);
        }
        op.test(value, bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let o = CheckOptions::default();
        assert!(o.tolerance > 0.0 && o.tolerance < 1e-6);
        assert!(o.max_iterations > 1000);
        assert_eq!(o.solver, LinearSolver::Auto);
    }

    #[test]
    fn solver_selection() {
        let mut o = CheckOptions::default();
        assert!(o.use_direct(10));
        assert!(!o.use_direct(100_000));
        o.solver = LinearSolver::Direct;
        assert!(o.use_direct(100_000));
        o.solver = LinearSolver::GaussSeidel;
        assert!(!o.use_direct(1));
    }
}
