//! PCTL model checking for Markov decision processes.
//!
//! Probabilities and expected rewards are optimized over memoryless
//! deterministic schedulers (sufficient for PCTL) by value iteration, after
//! the qualitative sets have been fixed by the graph precomputations.
//!
//! # Reward caveat
//!
//! Minimum expected reachability rewards (`Rmin[F target]`) are computed by
//! value iteration from below, which is exact whenever every end component
//! that avoids the target accumulates positive reward (true for all models
//! in this workspace, where each step costs at least one "attempt"). Models
//! with zero-reward cycles outside the target can make the least fixpoint
//! undershoot; this matches the standard explicit-engine behaviour.

use tml_logic::{Opt, PathFormula, Query, RewardKind, StateFormula};
use tml_models::{graph, Mdp, RewardStructure};
use tml_numerics::{Budget, Diagnostics, NumericsError};

use crate::run::CheckRun;
use crate::{resolve_opt, CheckError, CheckOptions, CheckResult};

/// Checks a state formula on an MDP.
///
/// # Errors
///
/// Returns a [`CheckError`] for unknown reward structures or numeric
/// failures.
pub fn check(
    model: &Mdp,
    formula: &StateFormula,
    opts: &CheckOptions,
) -> Result<CheckResult, CheckError> {
    let budget = Budget::unlimited();
    let run = CheckRun::new(opts, &budget);
    let result = check_run(model, formula, &run)?;
    Ok(result.with_diagnostics(run.finish()))
}

pub(crate) fn check_run(
    model: &Mdp,
    formula: &StateFormula,
    run: &CheckRun<'_>,
) -> Result<CheckResult, CheckError> {
    let values = match formula {
        StateFormula::Prob { opt, op, path, .. } => {
            Some(path_probabilities_run(model, path, resolve_opt(*opt, *op, false), run)?)
        }
        StateFormula::Reward { structure, opt, op, kind, .. } => Some(reward_values(
            model,
            structure.as_deref(),
            kind,
            resolve_opt(*opt, *op, true),
            run,
        )?),
        _ => None,
    };
    let sat = evaluate_run(model, formula, run)?;
    Ok(CheckResult::new(sat, values, model.initial_state()))
}

/// Evaluates a state formula to a per-state satisfaction mask.
///
/// # Errors
///
/// Returns a [`CheckError`] for unknown reward structures or numeric
/// failures.
pub fn evaluate(
    model: &Mdp,
    formula: &StateFormula,
    opts: &CheckOptions,
) -> Result<Vec<bool>, CheckError> {
    let budget = Budget::unlimited();
    let run = CheckRun::new(opts, &budget);
    evaluate_run(model, formula, &run)
}

pub(crate) fn evaluate_run(
    model: &Mdp,
    formula: &StateFormula,
    run: &CheckRun<'_>,
) -> Result<Vec<bool>, CheckError> {
    let n = model.num_states();
    let opts = run.opts;
    Ok(match formula {
        StateFormula::True => vec![true; n],
        StateFormula::False => vec![false; n],
        StateFormula::Atom(a) => model.labeling().mask(a),
        StateFormula::Not(f) => evaluate_run(model, f, run)?.iter().map(|b| !b).collect(),
        StateFormula::And(a, b) => {
            zip(evaluate_run(model, a, run)?, evaluate_run(model, b, run)?, |x, y| x && y)
        }
        StateFormula::Or(a, b) => {
            zip(evaluate_run(model, a, run)?, evaluate_run(model, b, run)?, |x, y| x || y)
        }
        StateFormula::Implies(a, b) => {
            zip(evaluate_run(model, a, run)?, evaluate_run(model, b, run)?, |x, y| !x || y)
        }
        StateFormula::Prob { opt, op, bound, path } => {
            let probs = path_probabilities_run(model, path, resolve_opt(*opt, *op, false), run)?;
            probs.iter().map(|&p| opts.test_bound(*op, p, *bound)).collect()
        }
        StateFormula::Reward { structure, opt, op, bound, kind } => {
            let values = reward_values(
                model,
                structure.as_deref(),
                kind,
                resolve_opt(*opt, *op, true),
                run,
            )?;
            values.iter().map(|&v| opts.test_bound(*op, v, *bound)).collect()
        }
    })
}

/// Evaluates a numeric query; the query must carry `min`/`max`.
///
/// # Errors
///
/// Returns [`CheckError::MissingOpt`] if the quantification is absent, plus
/// the usual conditions.
pub fn query(model: &Mdp, q: &Query, opts: &CheckOptions) -> Result<Vec<f64>, CheckError> {
    let budget = Budget::unlimited();
    let run = CheckRun::new(opts, &budget);
    query_run(model, q, &run)
}

pub(crate) fn query_run(
    model: &Mdp,
    q: &Query,
    run: &CheckRun<'_>,
) -> Result<Vec<f64>, CheckError> {
    match q {
        Query::Prob { opt, path } => {
            let opt = opt.ok_or_else(|| CheckError::MissingOpt { query: q.to_string() })?;
            path_probabilities_run(model, path, opt, run)
        }
        Query::Reward { structure, opt, kind } => {
            let opt = opt.ok_or_else(|| CheckError::MissingOpt { query: q.to_string() })?;
            reward_values(model, structure.as_deref(), kind, opt, run)
        }
    }
}

fn reward_values(
    model: &Mdp,
    structure: Option<&str>,
    kind: &RewardKind,
    opt: Opt,
    run: &CheckRun<'_>,
) -> Result<Vec<f64>, CheckError> {
    let rewards = match structure {
        Some(name) => model.reward_structure(name)?,
        None => model.default_reward_structure().ok_or_else(|| {
            CheckError::Model(tml_models::ModelError::NotFound {
                kind: "reward structure",
                name: "<default>".into(),
            })
        })?,
    };
    match kind {
        RewardKind::Reach(target) => {
            let target_mask = evaluate_run(model, target, run)?;
            reach_rewards_run(model, rewards, &target_mask, opt, run)
        }
        RewardKind::Cumulative(k) => Ok(cumulative_rewards(model, rewards, *k, opt)),
    }
}

/// Optimal (min or max over schedulers) probability of a path formula.
///
/// # Errors
///
/// Returns a [`CheckError`] on numeric failures.
pub fn path_probabilities(
    model: &Mdp,
    path: &PathFormula,
    opt: Opt,
    opts: &CheckOptions,
) -> Result<Vec<f64>, CheckError> {
    let budget = Budget::unlimited();
    let run = CheckRun::new(opts, &budget);
    path_probabilities_run(model, path, opt, &run)
}

pub(crate) fn path_probabilities_run(
    model: &Mdp,
    path: &PathFormula,
    opt: Opt,
    run: &CheckRun<'_>,
) -> Result<Vec<f64>, CheckError> {
    let n = model.num_states();
    match path {
        PathFormula::Next(f) => {
            let target = evaluate_run(model, f, run)?;
            Ok(next_probabilities(model, &target, opt))
        }
        PathFormula::Until { lhs, rhs, bound } => {
            let phi = evaluate_run(model, lhs, run)?;
            let target = evaluate_run(model, rhs, run)?;
            match bound {
                Some(k) => Ok(bounded_until_probabilities(model, &phi, &target, *k, opt)),
                None => until_probabilities_run(model, &phi, &target, opt, run),
            }
        }
        PathFormula::Eventually { sub, bound } => {
            let target = evaluate_run(model, sub, run)?;
            let phi = vec![true; n];
            match bound {
                Some(k) => Ok(bounded_until_probabilities(model, &phi, &target, *k, opt)),
                None => until_probabilities_run(model, &phi, &target, opt, run),
            }
        }
        PathFormula::Globally { sub, bound } => {
            // Optimal G-probabilities dualize: max P(G φ) = 1 − min P(F ¬φ).
            let inv: Vec<bool> = evaluate_run(model, sub, run)?.iter().map(|b| !b).collect();
            let phi = vec![true; n];
            let dual = match opt {
                Opt::Max => Opt::Min,
                Opt::Min => Opt::Max,
            };
            let f_not = match bound {
                Some(k) => bounded_until_probabilities(model, &phi, &inv, *k, dual),
                None => until_probabilities_run(model, &phi, &inv, dual, run)?,
            };
            Ok(f_not.iter().map(|p| 1.0 - p).collect())
        }
    }
}

/// Optimal `P(X target)` per state.
pub fn next_probabilities(model: &Mdp, target: &[bool], opt: Opt) -> Vec<f64> {
    (0..model.num_states())
        .map(|s| {
            let per_choice = model.choices(s).iter().map(|c| {
                c.transitions.iter().filter(|&&(t, _)| target[t]).map(|&(_, p)| p).sum::<f64>()
            });
            opt_fold(per_choice, opt)
        })
        .collect()
}

/// Optimal `P(φ U≤k ψ)` per state.
pub fn bounded_until_probabilities(
    model: &Mdp,
    phi: &[bool],
    target: &[bool],
    k: u64,
    opt: Opt,
) -> Vec<f64> {
    let n = model.num_states();
    let mut x: Vec<f64> = target.iter().map(|&t| if t { 1.0 } else { 0.0 }).collect();
    for _ in 0..k {
        let mut next = vec![0.0; n];
        for s in 0..n {
            next[s] = if target[s] {
                1.0
            } else if phi[s] {
                let per_choice = model
                    .choices(s)
                    .iter()
                    .map(|c| c.transitions.iter().map(|&(t, p)| p * x[t]).sum::<f64>());
                opt_fold(per_choice, opt)
            } else {
                0.0
            };
        }
        x = next;
    }
    x
}

/// Optimal `P(φ U ψ)` per state: qualitative precomputation plus value
/// iteration on the maybe-states.
///
/// # Errors
///
/// Returns a wrapped [`NumericsError::NoConvergence`] if value iteration
/// exhausts its budget.
pub fn until_probabilities(
    model: &Mdp,
    phi: &[bool],
    target: &[bool],
    opt: Opt,
    opts: &CheckOptions,
) -> Result<Vec<f64>, CheckError> {
    Ok(until_probabilities_diag(model, phi, target, opt, opts, &Budget::unlimited())?.0)
}

/// Budget-aware [`until_probabilities`]: value iteration stops at the
/// budget, returning the best iterate so far with [`Diagnostics`]
/// describing the exhaustion and the residual accepted.
///
/// # Errors
///
/// Same conditions as [`until_probabilities`]; budget exhaustion is *not*
/// an error.
pub fn until_probabilities_diag(
    model: &Mdp,
    phi: &[bool],
    target: &[bool],
    opt: Opt,
    opts: &CheckOptions,
    budget: &Budget,
) -> Result<(Vec<f64>, Diagnostics), CheckError> {
    let run = CheckRun::new(opts, budget);
    let x = until_probabilities_run(model, phi, target, opt, &run)?;
    Ok((x, run.finish()))
}

pub(crate) fn until_probabilities_run(
    model: &Mdp,
    phi: &[bool],
    target: &[bool],
    opt: Opt,
    run: &CheckRun<'_>,
) -> Result<Vec<f64>, CheckError> {
    let opts = run.opts;
    let n = model.num_states();
    let _span = tml_telemetry::span!("checker.value_iteration", states = n);
    let (zero, one) = match opt {
        Opt::Max => (graph::prob0a(model, phi, target), graph::prob1e(model, phi, target)),
        Opt::Min => (graph::prob0e(model, phi, target), graph::prob1a(model, phi, target)),
    };
    let mut x: Vec<f64> = (0..n).map(|s| if one[s] { 1.0 } else { 0.0 }).collect();
    let maybe: Vec<usize> = (0..n).filter(|&s| !zero[s] && !one[s]).collect();
    if maybe.is_empty() {
        return Ok(x);
    }
    let mut last_delta = f64::INFINITY;
    for _ in 0..opts.max_iterations {
        if let Some(cause) = run.exhausted() {
            // Out of budget: the current iterate is a sound lower (Max) /
            // upper-progress approximation — return it, marked degraded.
            run.mark_exhausted(cause);
            run.record_residual(last_delta);
            return Ok(x);
        }
        run.spend(1);
        let mut delta: f64 = 0.0;
        for &s in &maybe {
            let per_choice = model
                .choices(s)
                .iter()
                .map(|c| c.transitions.iter().map(|&(t, p)| p * x[t]).sum::<f64>());
            let v = opt_fold(per_choice, opt);
            delta = delta.max((v - x[s]).abs());
            x[s] = v;
        }
        last_delta = delta;
        if delta <= opts.tolerance {
            return Ok(x);
        }
    }
    Err(NumericsError::NoConvergence { iterations: opts.max_iterations, residual: last_delta }
        .into())
}

/// Optimal expected reward until reaching `target` (`R[F target]`).
///
/// `Rmax` is infinite exactly on states where some scheduler avoids the
/// target with positive probability (`¬Prob1A`); `Rmin` is infinite where
/// no scheduler reaches it almost surely (`¬Prob1E`).
///
/// # Errors
///
/// Returns a wrapped [`NumericsError::NoConvergence`] if value iteration
/// exhausts its budget.
pub fn reach_rewards(
    model: &Mdp,
    rewards: &RewardStructure,
    target: &[bool],
    opt: Opt,
    opts: &CheckOptions,
) -> Result<Vec<f64>, CheckError> {
    let budget = Budget::unlimited();
    let run = CheckRun::new(opts, &budget);
    reach_rewards_run(model, rewards, target, opt, &run)
}

pub(crate) fn reach_rewards_run(
    model: &Mdp,
    rewards: &RewardStructure,
    target: &[bool],
    opt: Opt,
    run: &CheckRun<'_>,
) -> Result<Vec<f64>, CheckError> {
    let opts = run.opts;
    let n = model.num_states();
    let phi = vec![true; n];
    let _span = tml_telemetry::span!("checker.value_iteration", states = n);
    let finite = match opt {
        Opt::Max => graph::prob1a(model, &phi, target),
        Opt::Min => graph::prob1e(model, &phi, target),
    };
    let mut x: Vec<f64> =
        (0..n).map(|s| if target[s] || finite[s] { 0.0 } else { f64::INFINITY }).collect();
    let maybe: Vec<usize> = (0..n).filter(|&s| finite[s] && !target[s]).collect();
    if maybe.is_empty() {
        return Ok(x);
    }
    let mut last_delta = f64::INFINITY;
    for _ in 0..opts.max_iterations {
        if let Some(cause) = run.exhausted() {
            run.mark_exhausted(cause);
            run.record_residual(last_delta);
            return Ok(x);
        }
        run.spend(1);
        let mut delta: f64 = 0.0;
        for &s in &maybe {
            let per_choice = model.choices(s).iter().enumerate().map(|(ci, c)| {
                let cont: f64 = c
                    .transitions
                    .iter()
                    .map(|&(t, p)| if x[t].is_infinite() { f64::INFINITY } else { p * x[t] })
                    .sum();
                rewards.step_reward(s, ci) + cont
            });
            let v = opt_fold(per_choice, opt);
            let d = if v.is_infinite() && x[s].is_infinite() { 0.0 } else { (v - x[s]).abs() };
            delta = delta.max(d);
            x[s] = v;
        }
        last_delta = delta;
        if delta <= opts.tolerance {
            return Ok(x);
        }
    }
    Err(NumericsError::NoConvergence { iterations: opts.max_iterations, residual: last_delta }
        .into())
}

/// Optimal expected reward over the first `k` steps (`R[C<=k]`).
pub fn cumulative_rewards(model: &Mdp, rewards: &RewardStructure, k: u64, opt: Opt) -> Vec<f64> {
    let n = model.num_states();
    let mut x = vec![0.0; n];
    for _ in 0..k {
        let mut next = vec![0.0; n];
        for (s, nx) in next.iter_mut().enumerate() {
            let per_choice = model.choices(s).iter().enumerate().map(|(ci, c)| {
                rewards.step_reward(s, ci)
                    + c.transitions.iter().map(|&(t, p)| p * x[t]).sum::<f64>()
            });
            *nx = opt_fold(per_choice, opt);
        }
        x = next;
    }
    x
}

/// Extracts a greedy deterministic policy (per-state choice indices) that is
/// optimal for `P(φ U ψ)` with respect to the given value vector.
pub fn greedy_until_policy(model: &Mdp, values: &[f64], opt: Opt) -> Vec<usize> {
    (0..model.num_states())
        .map(|s| {
            let mut best = 0;
            let mut best_v = f64::NAN;
            for (ci, c) in model.choices(s).iter().enumerate() {
                let v: f64 = c.transitions.iter().map(|&(t, p)| p * values[t]).sum();
                let better = match opt {
                    Opt::Max => best_v.is_nan() || v > best_v,
                    Opt::Min => best_v.is_nan() || v < best_v,
                };
                if better {
                    best = ci;
                    best_v = v;
                }
            }
            best
        })
        .collect()
}

fn opt_fold(it: impl Iterator<Item = f64>, opt: Opt) -> f64 {
    match opt {
        Opt::Max => it.fold(f64::NEG_INFINITY, f64::max),
        Opt::Min => it.fold(f64::INFINITY, f64::min),
    }
}

fn zip(a: Vec<bool>, b: Vec<bool>, f: impl Fn(bool, bool) -> bool) -> Vec<bool> {
    a.into_iter().zip(b).map(|(x, y)| f(x, y)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tml_logic::{parse_formula, parse_query};
    use tml_models::MdpBuilder;

    /// State 0 offers a safe route (0 → 1 → goal, deterministic) and a
    /// risky shortcut (0 → goal w.p. 0.6, 0 → trap w.p. 0.4).
    fn routes() -> Mdp {
        let mut b = MdpBuilder::new(4);
        b.choice(0, "safe", &[(1, 1.0)]).unwrap();
        b.choice(0, "risky", &[(2, 0.6), (3, 0.4)]).unwrap();
        b.choice(1, "go", &[(2, 1.0)]).unwrap();
        b.choice(2, "stay", &[(2, 1.0)]).unwrap();
        b.choice(3, "stay", &[(3, 1.0)]).unwrap();
        b.label(2, "goal").unwrap();
        b.state_reward("cost", 0, 1.0).unwrap();
        b.state_reward("cost", 1, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn max_and_min_reachability() {
        let m = routes();
        let opts = CheckOptions::default();
        let phi = vec![true; 4];
        let target = m.labeling().mask("goal");
        let pmax = until_probabilities(&m, &phi, &target, Opt::Max, &opts).unwrap();
        let pmin = until_probabilities(&m, &phi, &target, Opt::Min, &opts).unwrap();
        assert!((pmax[0] - 1.0).abs() < 1e-9); // safe route is certain
        assert!((pmin[0] - 0.6).abs() < 1e-9); // worst scheduler gambles
        assert_eq!(pmax[3], 0.0);
        assert_eq!(pmin[2], 1.0);
    }

    #[test]
    fn formula_checking_uses_prism_convention() {
        let m = routes();
        let opts = CheckOptions::default();
        // Lower bound → all schedulers: fails because risky gives 0.6.
        let f = parse_formula("P>=0.9 [ F \"goal\" ]").unwrap();
        assert!(!check(&m, &f, &opts).unwrap().holds());
        // Explicit max: holds.
        let f2 = parse_formula("Pmax>=0.9 [ F \"goal\" ]").unwrap();
        assert!(check(&m, &f2, &opts).unwrap().holds());
        // Upper bound → best scheduler must stay below: fails (max is 1).
        let f3 = parse_formula("P<=0.8 [ F \"goal\" ]").unwrap();
        assert!(!check(&m, &f3, &opts).unwrap().holds());
        // Explicit min below bound: holds (0.6 <= 0.8).
        let f4 = parse_formula("Pmin<=0.8 [ F \"goal\" ]").unwrap();
        assert!(check(&m, &f4, &opts).unwrap().holds());
    }

    #[test]
    fn reward_reachability_min_and_max() {
        let m = routes();
        let opts = CheckOptions::default();
        let target = m.labeling().mask("goal");
        let r = m.reward_structure("cost").unwrap();
        // Rmin: risky reaches goal w.p. 0.6 only — not a.s., so the only
        // a.s.-reaching scheduler is safe: cost 2. But wait: is risky's
        // failure absorbing? yes (trap). prob1e(0) holds via safe.
        let rmin = reach_rewards(&m, r, &target, Opt::Min, &opts).unwrap();
        assert!((rmin[0] - 2.0).abs() < 1e-9, "got {}", rmin[0]);
        // Rmax: the risky scheduler fails to reach a.s. → infinite.
        let rmax = reach_rewards(&m, r, &target, Opt::Max, &opts).unwrap();
        assert!(rmax[0].is_infinite());
        assert_eq!(rmax[2], 0.0);
    }

    #[test]
    fn reward_query_and_formula() {
        let m = routes();
        let opts = CheckOptions::default();
        let q = parse_query("R{\"cost\"}min=? [ F \"goal\" ]").unwrap();
        let v = query(&m, &q, &opts).unwrap();
        assert!((v[0] - 2.0).abs() < 1e-9);
        // R<=2.5 resolves to Rmax<=2.5 which is false (Rmax = ∞ at 0).
        let f = parse_formula("R{\"cost\"}<=2.5 [ F \"goal\" ]").unwrap();
        assert!(!check(&m, &f, &opts).unwrap().holds());
        // Rmin<=2.5 holds.
        let f2 = parse_formula("R{\"cost\"}min<=2.5 [ F \"goal\" ]").unwrap();
        assert!(check(&m, &f2, &opts).unwrap().holds());
    }

    #[test]
    fn query_requires_opt() {
        let m = routes();
        let q = parse_query("P=? [ F \"goal\" ]").unwrap();
        assert!(matches!(
            query(&m, &q, &CheckOptions::default()),
            Err(CheckError::MissingOpt { .. })
        ));
    }

    #[test]
    fn bounded_until_and_next() {
        let m = routes();
        let target = m.labeling().mask("goal");
        let phi = vec![true; 4];
        // One step: risky gives 0.6, safe gives 0 → max 0.6.
        let b1 = bounded_until_probabilities(&m, &phi, &target, 1, Opt::Max);
        assert!((b1[0] - 0.6).abs() < 1e-9);
        // Two steps: safe now reaches via state 1 → max 1.0.
        let b2 = bounded_until_probabilities(&m, &phi, &target, 2, Opt::Max);
        assert!((b2[0] - 1.0).abs() < 1e-9);
        let nx = next_probabilities(&m, &target, Opt::Max);
        assert!((nx[0] - 0.6).abs() < 1e-9);
        let nn = next_probabilities(&m, &target, Opt::Min);
        assert!((nn[0] - 0.0).abs() < 1e-9);
    }

    #[test]
    fn globally_duality() {
        let m = routes();
        let opts = CheckOptions::default();
        // Pmax(G !goal): the risky trap branch avoids the goal forever with
        // probability 0.4; looping at 3 keeps !goal. Best scheduler: risky →
        // 0.4. But a scheduler could also... safe route always hits goal.
        let f = parse_formula("Pmax>=0.4 [ G !\"goal\" ]").unwrap();
        let res = check(&m, &f, &opts).unwrap();
        assert!(res.holds());
        assert!((res.value_at_initial().unwrap() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn cumulative_rewards_opt() {
        let m = routes();
        let r = m.reward_structure("cost").unwrap();
        let cmax = cumulative_rewards(&m, r, 3, Opt::Max);
        // Max over schedulers: safe path pays 1 + 1 then 0 = 2.
        assert!((cmax[0] - 2.0).abs() < 1e-9);
        let cmin = cumulative_rewards(&m, r, 3, Opt::Min);
        // Min: risky pays only the first step's cost 1.
        assert!((cmin[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn greedy_policy_extraction() {
        let m = routes();
        let opts = CheckOptions::default();
        let phi = vec![true; 4];
        let target = m.labeling().mask("goal");
        let pmax = until_probabilities(&m, &phi, &target, Opt::Max, &opts).unwrap();
        let pi = greedy_until_policy(&m, &pmax, Opt::Max);
        assert_eq!(pi[0], 0, "optimal policy takes the safe route");
    }

    /// A genuinely quantitative maybe-state: state 0 spins on itself with
    /// probability 0.9 and splits the rest between goal and trap, so value
    /// iteration contracts slowly (rate 0.9) towards Pmax = 0.5.
    fn slow() -> Mdp {
        let mut b = MdpBuilder::new(3);
        b.choice(0, "spin", &[(0, 0.9), (1, 0.05), (2, 0.05)]).unwrap();
        b.choice(1, "stay", &[(1, 1.0)]).unwrap();
        b.choice(2, "stay", &[(2, 1.0)]).unwrap();
        b.label(1, "goal").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn value_iteration_budget_exhaustion_is_best_effort() {
        let m = slow();
        let phi = vec![true; 3];
        let target = m.labeling().mask("goal");
        let opts = CheckOptions { tolerance: 1e-12, ..Default::default() };
        let budget = Budget::unlimited().with_max_evaluations(1);
        let (p, diag) =
            until_probabilities_diag(&m, &phi, &target, Opt::Max, &opts, &budget).unwrap();
        assert_eq!(diag.exhausted, Some(tml_numerics::Exhaustion::Evaluations));
        assert!(diag.degraded());
        for v in &p {
            assert!((0.0..=1.0).contains(v), "degraded VI stays well-formed: {v}");
        }
        // Unlimited budget on the same options converges fully.
        let (full, diag2) =
            until_probabilities_diag(&m, &phi, &target, Opt::Max, &opts, &Budget::unlimited())
                .unwrap();
        assert!(diag2.exhausted.is_none());
        assert!((full[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn value_iteration_exhaustion_reports_real_residual() {
        let m = slow();
        let phi = vec![true; 3];
        let target = m.labeling().mask("goal");
        // One sweep is not enough at this tolerance: iteration exhaustion
        // must carry the genuine last residual, not NaN.
        let opts = CheckOptions { tolerance: 1e-15, max_iterations: 1, ..Default::default() };
        match until_probabilities(&m, &phi, &target, Opt::Max, &opts) {
            Err(CheckError::Numerics(NumericsError::NoConvergence { residual, .. })) => {
                assert!(!residual.is_nan(), "residual must be the last delta, got NaN");
                assert!(residual.is_finite());
            }
            other => panic!("expected NoConvergence, got {other:?}"),
        }
    }

    #[test]
    fn induced_dtmc_matches_mdp_under_policy() {
        let m = routes();
        let opts = CheckOptions::default();
        let chain = m.induce(&[0, 0, 0, 0]).unwrap();
        let phi = vec![true; 4];
        let target = m.labeling().mask("goal");
        let via_dtmc = crate::dtmc::until_probabilities(&chain, &phi, &target, &opts).unwrap();
        let pmax = until_probabilities(&m, &phi, &target, Opt::Max, &opts).unwrap();
        // The safe policy is optimal, so the induced chain attains Pmax.
        for (a, b) in via_dtmc.iter().zip(&pmax) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
