//! Region verification: checking a PCTL bound over a whole **box** of
//! parameter values at once.
//!
//! A point check answers "does `M(v) ⊨ φ` hold at this `v`?". Region
//! verification answers the lifted question "does it hold for *every*
//! `v` in a box?" (or for none, or neither) by compiling the property to
//! a rational function of the parameters and bounding it with interval
//! arithmetic plus branch-and-refine (see `tml_parametric::lifting`).
//! This is the checker-side entry point the repair strategies build on.

use tml_logic::CmpOp;
use tml_parametric::{
    BoundSense, CompiledConstraintSet, LiftingOptions, LiftingOutcome, ParametricDtmc,
    RegionProblem, RegionRow, RegionSolver, RegionVerdict,
};
use tml_telemetry::span;

use crate::CheckError;

/// Verifies `P ⋈ bound [F target]` over a parameter box.
///
/// Compiles the reachability probability from the initial state to a
/// rational function of the parameters, then classifies the box with the
/// branch-and-refine region solver:
///
/// * [`RegionVerdict::AllSat`] — every parameter point in the box
///   satisfies the bound;
/// * [`RegionVerdict::AllViolating`] — no point does;
/// * [`RegionVerdict::Unknown`] — the interval bounds decide neither way
///   within the configured refinement caps.
///
/// Strict operators (`>`, `<`) are treated as their non-strict
/// counterparts; callers needing a strict margin fold it into `bound`.
///
/// # Errors
///
/// [`CheckError::Parametric`] if symbolic elimination or interval
/// bounding fails (e.g. a mis-sized box).
pub fn reachability_region(
    pdtmc: &ParametricDtmc,
    target: &[bool],
    op: CmpOp,
    bound: f64,
    bbox: &[(f64, f64)],
    opts: &LiftingOptions,
) -> Result<RegionVerdict, CheckError> {
    let _span = span!("checker.region", states = pdtmc.num_states(), params = bbox.len());
    let reach = pdtmc.reachability(target)?;
    let f = reach[pdtmc.initial_state()].clone();
    let outcome = solve_region(&f, op, bound, bbox, opts)?;
    Ok(aggregate(&outcome))
}

/// Classifies one rational constraint `f(v) ⋈ bound` over a box,
/// returning the full refinement outcome (leaf boxes, counts, spend).
///
/// # Errors
///
/// [`CheckError::Parametric`] on arity mismatches.
pub fn solve_region(
    f: &tml_parametric::RationalFunction,
    op: CmpOp,
    bound: f64,
    bbox: &[(f64, f64)],
    opts: &LiftingOptions,
) -> Result<LiftingOutcome, CheckError> {
    let set = CompiledConstraintSet::compile(std::slice::from_ref(f))?;
    let sense = if op.is_lower_bound() { BoundSense::Ge } else { BoundSense::Le };
    let problem = RegionProblem::new(set, vec![RegionRow::new(sense, bound)])?;
    Ok(RegionSolver::with_options(*opts).solve(&problem, bbox)?)
}

/// Folds the per-leaf verdicts into one verdict for the whole box.
fn aggregate(outcome: &LiftingOutcome) -> RegionVerdict {
    if outcome.exhausted.is_none() && outcome.unknown_boxes == 0 {
        if outcome.violating_boxes == 0 {
            return RegionVerdict::AllSat;
        }
        if outcome.sat_boxes == 0 {
            return RegionVerdict::AllViolating;
        }
    }
    RegionVerdict::Unknown
}

#[cfg(test)]
mod tests {
    use super::*;
    use tml_parametric::RationalFunction;

    /// The doc chain: success probability `0.8 + v`, `v ∈ box`.
    fn chain() -> ParametricDtmc {
        let params = vec!["v".to_string()];
        let v = RationalFunction::var(1, 0);
        let c = |x: f64| RationalFunction::constant(1, x);
        let mut b = ParametricDtmc::builder(3, params);
        b.transition(0, 1, c(0.8).add(&v)).unwrap();
        b.transition(0, 2, c(0.2).sub(&v)).unwrap();
        b.transition(1, 1, c(1.0)).unwrap();
        b.transition(2, 2, c(1.0)).unwrap();
        b.label(1, "ok").unwrap();
        b.build().unwrap()
    }

    fn target(p: &ParametricDtmc) -> Vec<bool> {
        p.labeling().mask("ok")
    }

    #[test]
    fn all_sat_region() {
        let p = chain();
        // P ≥ 0.9 holds on v ∈ [0.1, 0.19] (reach prob = 0.8 + v ≥ 0.9).
        let v = reachability_region(
            &p,
            &target(&p),
            CmpOp::Ge,
            0.9,
            &[(0.11, 0.19)],
            &LiftingOptions::default(),
        )
        .unwrap();
        assert_eq!(v, RegionVerdict::AllSat);
    }

    #[test]
    fn all_violating_region() {
        let p = chain();
        let v = reachability_region(
            &p,
            &target(&p),
            CmpOp::Ge,
            0.9,
            &[(-0.19, 0.05)],
            &LiftingOptions::default(),
        )
        .unwrap();
        assert_eq!(v, RegionVerdict::AllViolating);
    }

    #[test]
    fn mixed_region_is_unknown() {
        let p = chain();
        // The box straddles the v = 0.1 threshold, so neither verdict can
        // cover all of it.
        let v = reachability_region(
            &p,
            &target(&p),
            CmpOp::Ge,
            0.9,
            &[(-0.19, 0.19)],
            &LiftingOptions::default(),
        )
        .unwrap();
        assert_eq!(v, RegionVerdict::Unknown);
    }

    #[test]
    fn upper_bound_sense() {
        let p = chain();
        // P ≤ 0.95 holds everywhere on v ∈ [-0.19, 0.1].
        let v = reachability_region(
            &p,
            &target(&p),
            CmpOp::Le,
            0.95,
            &[(-0.19, 0.1)],
            &LiftingOptions::default(),
        )
        .unwrap();
        assert_eq!(v, RegionVerdict::AllSat);
    }

    #[test]
    fn wrong_arity_box_errors() {
        let p = chain();
        let err = reachability_region(
            &p,
            &target(&p),
            CmpOp::Ge,
            0.9,
            &[(0.0, 0.1), (0.0, 0.1)],
            &LiftingOptions::default(),
        );
        assert!(matches!(err, Err(CheckError::Parametric(_))));
    }
}
