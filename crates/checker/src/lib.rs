//! Exact PCTL model checking for discrete-time Markov chains and Markov
//! decision processes.
//!
//! The checking pipeline mirrors PRISM's explicit engine:
//!
//! 1. **Qualitative precomputation** — classify states whose probability is
//!    exactly 0 or 1 using the graph algorithms of `tml_models::graph`.
//! 2. **Quantitative solution** — solve a linear system (DTMC, via direct
//!    Gaussian elimination or Gauss–Seidel) or run value iteration over
//!    schedulers (MDP) on the remaining "maybe" states.
//!
//! Besides boolean *verification* ([`Checker::check_dtmc`] /
//! [`Checker::check_mdp`]) the crate answers numeric *queries*
//! (`P=?`, `Rmax=?`, …) via [`Checker::query_dtmc`] / [`Checker::query_mdp`].
//!
//! # Example
//!
//! ```
//! use tml_models::DtmcBuilder;
//! use tml_logic::parse_formula;
//! use tml_checker::Checker;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A gambler doubles or loses: from `bet`, win 0.3 / lose 0.7.
//! let mut b = DtmcBuilder::new(3);
//! b.transition(0, 1, 0.3)?;
//! b.transition(0, 2, 0.7)?;
//! b.transition(1, 1, 1.0)?;
//! b.transition(2, 2, 1.0)?;
//! b.label(1, "rich")?;
//! let chain = b.build()?;
//!
//! let phi = parse_formula("P>=0.25 [ F \"rich\" ]")?;
//! let result = Checker::new().check_dtmc(&chain, &phi)?;
//! assert!(result.holds_in(0));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dtmc;
mod error;
pub mod mdp;
mod options;
pub mod region;
mod result;
pub mod robust;
mod run;

pub use error::CheckError;
pub use options::{CheckOptions, LinearSolver};
pub use result::CheckResult;
pub use robust::{RobustBracket, RobustCheckResult};
// Budgets and diagnostics are part of the checking API surface.
pub use tml_numerics::{Budget, CancelToken, Diagnostics, Exhaustion};

use run::CheckRun;
use tml_logic::{Opt, Query, StateFormula};
use tml_models::{Dtmc, IntervalDtmc, IntervalMdp, Mdp};
use tml_telemetry::span;

/// The model-checking façade: construct once (optionally with custom
/// [`CheckOptions`] and a [`Budget`]) and call the `check_*` / `query_*`
/// methods.
///
/// The checker is stateless between calls and cheap to clone. When a budget
/// is attached, every call polls it and returns best-effort results with
/// [`CheckResult::diagnostics`] describing what was spent instead of
/// hanging or erroring on exhaustion.
#[derive(Debug, Clone, Default)]
pub struct Checker {
    opts: CheckOptions,
    budget: Budget,
}

impl Checker {
    /// A checker with default numeric options and no budget.
    pub fn new() -> Self {
        Checker::default()
    }

    /// A checker with explicit numeric options.
    pub fn with_options(opts: CheckOptions) -> Self {
        Checker { opts, budget: Budget::unlimited() }
    }

    /// Attaches an effort budget shared by every subsequent call.
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// The numeric options in effect.
    pub fn options(&self) -> &CheckOptions {
        &self.opts
    }

    /// The budget in effect (unlimited by default).
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Checks a PCTL state formula on a DTMC, returning the satisfying
    /// state set (and, for a top-level `P`/`R` operator, the numeric values).
    ///
    /// # Errors
    ///
    /// Returns a [`CheckError`] for unknown reward structures or numeric
    /// failures.
    pub fn check_dtmc(
        &self,
        model: &Dtmc,
        formula: &StateFormula,
    ) -> Result<CheckResult, CheckError> {
        let _span = span!("checker.check", model = "dtmc", states = model.num_states());
        let run = CheckRun::new(&self.opts, &self.budget);
        let result = dtmc::check_run(model, formula, &run)?;
        Ok(result.with_diagnostics(run.finish()))
    }

    /// Checks a PCTL state formula on an MDP.
    ///
    /// For `P⋈b[·]` operators without an explicit `min`/`max`, the scheduler
    /// quantification follows the PRISM convention: lower bounds (`>`, `>=`)
    /// quantify over *all* schedulers (worst case = `Pmin`), upper bounds
    /// over the best case (`Pmax`); symmetrically `R<=c` checks `Rmax <= c`.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckError`] for unknown reward structures or numeric
    /// failures.
    pub fn check_mdp(
        &self,
        model: &Mdp,
        formula: &StateFormula,
    ) -> Result<CheckResult, CheckError> {
        let _span = span!("checker.check", model = "mdp", states = model.num_states());
        let run = CheckRun::new(&self.opts, &self.budget);
        let result = mdp::check_run(model, formula, &run)?;
        Ok(result.with_diagnostics(run.finish()))
    }

    /// Evaluates a numeric query (`P=?`, `R=?`, …) on a DTMC, returning one
    /// value per state. Any `min`/`max` annotation is ignored (a DTMC has a
    /// single resolution).
    ///
    /// # Errors
    ///
    /// Returns a [`CheckError`] for unknown reward structures or numeric
    /// failures.
    pub fn query_dtmc(&self, model: &Dtmc, query: &Query) -> Result<Vec<f64>, CheckError> {
        Ok(self.query_dtmc_diag(model, query)?.0)
    }

    /// Like [`query_dtmc`](Self::query_dtmc), also reporting the
    /// [`Diagnostics`] of the solve (budget spend, fallbacks, residuals).
    ///
    /// # Errors
    ///
    /// Same conditions as [`query_dtmc`](Self::query_dtmc); budget
    /// exhaustion is reported in the diagnostics, never as an error.
    pub fn query_dtmc_diag(
        &self,
        model: &Dtmc,
        query: &Query,
    ) -> Result<(Vec<f64>, Diagnostics), CheckError> {
        let _span = span!("checker.query", model = "dtmc", states = model.num_states());
        let run = CheckRun::new(&self.opts, &self.budget);
        let values = dtmc::query_run(model, query, &run)?;
        Ok((values, run.finish()))
    }

    /// Evaluates a numeric query on an MDP, returning one value per state.
    ///
    /// # Errors
    ///
    /// Returns [`CheckError::MissingOpt`] if the query does not specify
    /// `min` or `max` (an MDP query is ambiguous without it), plus the usual
    /// conditions.
    pub fn query_mdp(&self, model: &Mdp, query: &Query) -> Result<Vec<f64>, CheckError> {
        Ok(self.query_mdp_diag(model, query)?.0)
    }

    /// Like [`query_mdp`](Self::query_mdp), also reporting the
    /// [`Diagnostics`] of the solve.
    ///
    /// # Errors
    ///
    /// Same conditions as [`query_mdp`](Self::query_mdp); budget exhaustion
    /// is reported in the diagnostics, never as an error.
    pub fn query_mdp_diag(
        &self,
        model: &Mdp,
        query: &Query,
    ) -> Result<(Vec<f64>, Diagnostics), CheckError> {
        let _span = span!("checker.query", model = "mdp", states = model.num_states());
        let run = CheckRun::new(&self.opts, &self.budget);
        let values = mdp::query_run(model, query, &run)?;
        Ok((values, run.finish()))
    }

    /// Convenience: the value of `query` in the model's initial state.
    ///
    /// # Errors
    ///
    /// Same conditions as [`query_dtmc`](Self::query_dtmc).
    pub fn value_dtmc(&self, model: &Dtmc, query: &Query) -> Result<f64, CheckError> {
        Ok(self.query_dtmc(model, query)?[model.initial_state()])
    }

    /// Convenience: the value of `query` in the MDP's initial state.
    ///
    /// # Errors
    ///
    /// Same conditions as [`query_mdp`](Self::query_mdp).
    pub fn value_mdp(&self, model: &Mdp, query: &Query) -> Result<f64, CheckError> {
        Ok(self.query_mdp(model, query)?[model.initial_state()])
    }

    /// Robustly checks a formula on an interval DTMC: the result holds only
    /// if it holds for *every* member of the uncertainty set (lower bounds
    /// are tested against the pessimistic value, upper bounds against the
    /// optimistic one). See [`robust`] for the supported fragment.
    ///
    /// # Errors
    ///
    /// [`CheckError::InvalidInterval`] for malformed uncertainty sets and
    /// [`CheckError::Unsupported`] for nested `P`/`R` operators.
    pub fn check_interval_dtmc(
        &self,
        model: &IntervalDtmc,
        formula: &StateFormula,
    ) -> Result<RobustCheckResult, CheckError> {
        let _span = span!("checker.check", model = "idtmc", states = model.num_states());
        let run = CheckRun::new(&self.opts, &self.budget);
        let result = robust::check_dtmc_run(model, formula, &run)?;
        Ok(result.with_diagnostics(run.finish()))
    }

    /// Robustly checks a formula on an interval MDP, bracketing over
    /// schedulers *and* uncertainty-set members.
    ///
    /// # Errors
    ///
    /// Same conditions as [`check_interval_dtmc`](Self::check_interval_dtmc),
    /// plus [`CheckError::Unsupported`] for reach rewards (see [`robust`]).
    pub fn check_interval_mdp(
        &self,
        model: &IntervalMdp,
        formula: &StateFormula,
    ) -> Result<RobustCheckResult, CheckError> {
        let _span = span!("checker.check", model = "imdp", states = model.num_states());
        let run = CheckRun::new(&self.opts, &self.budget);
        let result = robust::check_mdp_run(model, formula, &run)?;
        Ok(result.with_diagnostics(run.finish()))
    }

    /// The robust `[pessimistic, optimistic]` bracket of a numeric query on
    /// an interval DTMC, one pair per state.
    ///
    /// # Errors
    ///
    /// Same conditions as [`check_interval_dtmc`](Self::check_interval_dtmc).
    pub fn query_interval_dtmc(
        &self,
        model: &IntervalDtmc,
        query: &Query,
    ) -> Result<RobustBracket, CheckError> {
        Ok(self.query_interval_dtmc_diag(model, query)?.0)
    }

    /// Like [`query_interval_dtmc`](Self::query_interval_dtmc), also
    /// reporting the [`Diagnostics`] of the robust solve.
    ///
    /// # Errors
    ///
    /// Same conditions as [`query_interval_dtmc`](Self::query_interval_dtmc).
    pub fn query_interval_dtmc_diag(
        &self,
        model: &IntervalDtmc,
        query: &Query,
    ) -> Result<(RobustBracket, Diagnostics), CheckError> {
        let _span = span!("checker.query", model = "idtmc", states = model.num_states());
        let run = CheckRun::new(&self.opts, &self.budget);
        let bracket = robust::query_dtmc_run(model, query, &run)?;
        Ok((bracket, run.finish()))
    }

    /// The robust bracket of a numeric query on an interval MDP.
    ///
    /// # Errors
    ///
    /// Same conditions as [`check_interval_mdp`](Self::check_interval_mdp).
    pub fn query_interval_mdp(
        &self,
        model: &IntervalMdp,
        query: &Query,
    ) -> Result<RobustBracket, CheckError> {
        let _span = span!("checker.query", model = "imdp", states = model.num_states());
        let run = CheckRun::new(&self.opts, &self.budget);
        robust::query_mdp_run(model, query, &run)
    }
}

pub(crate) fn resolve_opt(explicit: Option<Opt>, op: tml_logic::CmpOp, for_reward: bool) -> Opt {
    if let Some(o) = explicit {
        return o;
    }
    // PRISM convention: a lower bound must hold under every scheduler, so we
    // check the minimum; an upper bound must hold even for the maximizing
    // scheduler. The same reading applies to reward bounds.
    let _ = for_reward;
    if op.is_lower_bound() {
        Opt::Min
    } else {
        Opt::Max
    }
}
