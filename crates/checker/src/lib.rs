//! Exact PCTL model checking for discrete-time Markov chains and Markov
//! decision processes.
//!
//! The checking pipeline mirrors PRISM's explicit engine:
//!
//! 1. **Qualitative precomputation** — classify states whose probability is
//!    exactly 0 or 1 using the graph algorithms of `tml_models::graph`.
//! 2. **Quantitative solution** — solve a linear system (DTMC, via direct
//!    Gaussian elimination or Gauss–Seidel) or run value iteration over
//!    schedulers (MDP) on the remaining "maybe" states.
//!
//! Besides boolean *verification* ([`Checker::check_dtmc`] /
//! [`Checker::check_mdp`]) the crate answers numeric *queries*
//! (`P=?`, `Rmax=?`, …) via [`Checker::query_dtmc`] / [`Checker::query_mdp`].
//!
//! # Example
//!
//! ```
//! use tml_models::DtmcBuilder;
//! use tml_logic::parse_formula;
//! use tml_checker::Checker;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A gambler doubles or loses: from `bet`, win 0.3 / lose 0.7.
//! let mut b = DtmcBuilder::new(3);
//! b.transition(0, 1, 0.3)?;
//! b.transition(0, 2, 0.7)?;
//! b.transition(1, 1, 1.0)?;
//! b.transition(2, 2, 1.0)?;
//! b.label(1, "rich")?;
//! let chain = b.build()?;
//!
//! let phi = parse_formula("P>=0.25 [ F \"rich\" ]")?;
//! let result = Checker::new().check_dtmc(&chain, &phi)?;
//! assert!(result.holds_in(0));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dtmc;
mod error;
pub mod mdp;
mod options;
mod result;

pub use error::CheckError;
pub use options::{CheckOptions, LinearSolver};
pub use result::CheckResult;

use tml_logic::{Opt, Query, StateFormula};
use tml_models::{Dtmc, Mdp};

/// The model-checking façade: construct once (optionally with custom
/// [`CheckOptions`]) and call the `check_*` / `query_*` methods.
///
/// The checker is stateless between calls and cheap to clone.
#[derive(Debug, Clone, Default)]
pub struct Checker {
    opts: CheckOptions,
}

impl Checker {
    /// A checker with default numeric options.
    pub fn new() -> Self {
        Checker { opts: CheckOptions::default() }
    }

    /// A checker with explicit numeric options.
    pub fn with_options(opts: CheckOptions) -> Self {
        Checker { opts }
    }

    /// The numeric options in effect.
    pub fn options(&self) -> &CheckOptions {
        &self.opts
    }

    /// Checks a PCTL state formula on a DTMC, returning the satisfying
    /// state set (and, for a top-level `P`/`R` operator, the numeric values).
    ///
    /// # Errors
    ///
    /// Returns a [`CheckError`] for unknown reward structures or numeric
    /// failures.
    pub fn check_dtmc(&self, model: &Dtmc, formula: &StateFormula) -> Result<CheckResult, CheckError> {
        dtmc::check(model, formula, &self.opts)
    }

    /// Checks a PCTL state formula on an MDP.
    ///
    /// For `P⋈b[·]` operators without an explicit `min`/`max`, the scheduler
    /// quantification follows the PRISM convention: lower bounds (`>`, `>=`)
    /// quantify over *all* schedulers (worst case = `Pmin`), upper bounds
    /// over the best case (`Pmax`); symmetrically `R<=c` checks `Rmax <= c`.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckError`] for unknown reward structures or numeric
    /// failures.
    pub fn check_mdp(&self, model: &Mdp, formula: &StateFormula) -> Result<CheckResult, CheckError> {
        mdp::check(model, formula, &self.opts)
    }

    /// Evaluates a numeric query (`P=?`, `R=?`, …) on a DTMC, returning one
    /// value per state. Any `min`/`max` annotation is ignored (a DTMC has a
    /// single resolution).
    ///
    /// # Errors
    ///
    /// Returns a [`CheckError`] for unknown reward structures or numeric
    /// failures.
    pub fn query_dtmc(&self, model: &Dtmc, query: &Query) -> Result<Vec<f64>, CheckError> {
        dtmc::query(model, query, &self.opts)
    }

    /// Evaluates a numeric query on an MDP, returning one value per state.
    ///
    /// # Errors
    ///
    /// Returns [`CheckError::MissingOpt`] if the query does not specify
    /// `min` or `max` (an MDP query is ambiguous without it), plus the usual
    /// conditions.
    pub fn query_mdp(&self, model: &Mdp, query: &Query) -> Result<Vec<f64>, CheckError> {
        mdp::query(model, query, &self.opts)
    }

    /// Convenience: the value of `query` in the model's initial state.
    ///
    /// # Errors
    ///
    /// Same conditions as [`query_dtmc`](Self::query_dtmc).
    pub fn value_dtmc(&self, model: &Dtmc, query: &Query) -> Result<f64, CheckError> {
        Ok(self.query_dtmc(model, query)?[model.initial_state()])
    }

    /// Convenience: the value of `query` in the MDP's initial state.
    ///
    /// # Errors
    ///
    /// Same conditions as [`query_mdp`](Self::query_mdp).
    pub fn value_mdp(&self, model: &Mdp, query: &Query) -> Result<f64, CheckError> {
        Ok(self.query_mdp(model, query)?[model.initial_state()])
    }
}

pub(crate) fn resolve_opt(explicit: Option<Opt>, op: tml_logic::CmpOp, for_reward: bool) -> Opt {
    if let Some(o) = explicit {
        return o;
    }
    // PRISM convention: a lower bound must hold under every scheduler, so we
    // check the minimum; an upper bound must hold even for the maximizing
    // scheduler. The same reading applies to reward bounds.
    let _ = for_reward;
    if op.is_lower_bound() {
        Opt::Min
    } else {
        Opt::Max
    }
}
