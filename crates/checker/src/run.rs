//! Per-invocation checking context: options + budget + diagnostics.
//!
//! A [`CheckRun`] is created at every public entry point and threaded
//! through the recursive evaluation internals so that all numeric work in
//! one check shares a single [`Budget`] and accumulates into a single
//! [`Diagnostics`] record. The evaluation unit is *solver sweeps* (one
//! Gauss–Seidel/Jacobi sweep or one value-iteration sweep each count 1).

use std::cell::RefCell;
use std::time::Instant;

use tml_numerics::{Budget, Diagnostics, Exhaustion};

use crate::CheckOptions;

/// Context for one checking invocation.
pub(crate) struct CheckRun<'a> {
    pub(crate) opts: &'a CheckOptions,
    budget: &'a Budget,
    diag: RefCell<Diagnostics>,
    start: Instant,
}

impl<'a> CheckRun<'a> {
    pub(crate) fn new(opts: &'a CheckOptions, budget: &'a Budget) -> Self {
        CheckRun { opts, budget, diag: RefCell::new(Diagnostics::new()), start: Instant::now() }
    }

    /// Polls the shared budget against the sweeps spent so far.
    pub(crate) fn exhausted(&self) -> Option<Exhaustion> {
        self.budget.check(self.diag.borrow().evaluations)
    }

    /// Charges `sweeps` sweeps to the run (one call per solve, so the live
    /// telemetry counter stays an aggregate-level event, not per-sweep).
    pub(crate) fn spend(&self, sweeps: u64) {
        tml_telemetry::counter!("checker.solve.sweeps", sweeps);
        self.diag.borrow_mut().evaluations += sweeps;
    }

    /// The budget with its evaluation cap reduced by what this run has
    /// already spent — handed to the numerics-layer budgeted solvers, whose
    /// iteration counts start from zero.
    pub(crate) fn remaining_budget(&self) -> Budget {
        let mut b = self.budget.clone();
        if let Some(cap) = self.budget.max_evaluations() {
            b = b.with_max_evaluations(cap.saturating_sub(self.diag.borrow().evaluations));
        }
        b
    }

    pub(crate) fn record_fallback(&self, event: impl Into<String>) {
        tml_telemetry::counter!("checker.solve.fallbacks", 1);
        self.diag.borrow_mut().record_fallback(event);
    }

    /// Records one backend attempt (`checker.backend.<name>.<ok|fail>`), both
    /// to the live subscriber and into this run's diagnostics snapshot —
    /// callers feeding circuit breakers read the latter off `Diagnostics`.
    pub(crate) fn record_backend(&self, backend: &str, ok: bool) {
        let name = format!("checker.backend.{backend}.{}", if ok { "ok" } else { "fail" });
        tml_telemetry::counter!(name.as_str(), 1);
        self.diag.borrow_mut().telemetry.incr(&name, 1);
    }

    pub(crate) fn record_residual(&self, residual: f64) {
        self.diag.borrow_mut().record_residual(residual);
    }

    pub(crate) fn mark_exhausted(&self, cause: Exhaustion) {
        self.diag.borrow_mut().mark_exhausted(cause);
    }

    /// Finalizes the run, stamping the elapsed wall-clock time and filling
    /// the diagnostics' telemetry snapshot with this run's totals (so the
    /// `*_diag` APIs surface the same numbers a live subscriber would see).
    pub(crate) fn finish(self) -> Diagnostics {
        let mut diag = self.diag.into_inner();
        diag.elapsed = self.start.elapsed();
        diag.telemetry.incr("checker.solve.sweeps", diag.evaluations);
        diag.telemetry.incr("checker.solve.fallbacks", diag.fallbacks.len() as u64);
        diag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spend_counts_against_the_cap() {
        let opts = CheckOptions::default();
        let budget = Budget::unlimited().with_max_evaluations(10);
        let run = CheckRun::new(&opts, &budget);
        assert!(run.exhausted().is_none());
        run.spend(4);
        assert_eq!(run.remaining_budget().max_evaluations(), Some(6));
        run.spend(6);
        assert_eq!(run.exhausted(), Some(Exhaustion::Evaluations));
        assert_eq!(run.remaining_budget().max_evaluations(), Some(0));
        let diag = run.finish();
        assert_eq!(diag.evaluations, 10);
    }

    #[test]
    fn finish_stamps_elapsed_and_events() {
        let opts = CheckOptions::default();
        let budget = Budget::unlimited();
        let run = CheckRun::new(&opts, &budget);
        run.record_fallback("gauss-seidel -> jacobi");
        run.record_residual(1e-4);
        run.mark_exhausted(Exhaustion::Deadline);
        let diag = run.finish();
        assert_eq!(diag.fallbacks, vec!["gauss-seidel -> jacobi".to_string()]);
        assert_eq!(diag.worst_residual, 1e-4);
        assert_eq!(diag.exhausted, Some(Exhaustion::Deadline));
        assert!(diag.degraded());
    }
}
