use std::fmt;

use tml_numerics::Field;

use crate::{ParametricError, Polynomial};

/// A rational function `num / den` over the repair parameters.
///
/// Rational functions form the field that symbolic state elimination works
/// over; [`RationalFunction`] therefore implements
/// [`tml_numerics::Field`], which lets the *generic* Gaussian elimination
/// in `tml-numerics` double as a parametric model checker.
///
/// Normalization keeps representations small without requiring full
/// multivariate GCD: denominators are scaled to leading coefficient 1,
/// common monomial factors are cancelled, and constant denominators are
/// folded into the numerator.
///
/// # Example
///
/// ```
/// use tml_parametric::RationalFunction;
///
/// let v = RationalFunction::var(1, 0);
/// let one = RationalFunction::one_rf(1);
/// // f(v) = 1 / (1 - v)
/// let f = one.div(&one.sub(&v)).unwrap();
/// assert!((f.eval(&[0.5]).unwrap() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RationalFunction {
    num: Polynomial,
    den: Polynomial,
}

impl RationalFunction {
    /// The zero function over `nvars` variables.
    pub fn zero_rf(nvars: usize) -> Self {
        RationalFunction { num: Polynomial::zero(nvars), den: Polynomial::constant(nvars, 1.0) }
    }

    /// The constant function `1`.
    pub fn one_rf(nvars: usize) -> Self {
        Self::constant(nvars, 1.0)
    }

    /// The constant function `c`.
    pub fn constant(nvars: usize, c: f64) -> Self {
        RationalFunction {
            num: Polynomial::constant(nvars, c),
            den: Polynomial::constant(nvars, 1.0),
        }
    }

    /// The coordinate function `x_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nvars`.
    pub fn var(nvars: usize, i: usize) -> Self {
        RationalFunction { num: Polynomial::var(nvars, i), den: Polynomial::constant(nvars, 1.0) }
    }

    /// Wraps a polynomial as a rational function.
    pub fn from_poly(p: Polynomial) -> Self {
        let nvars = p.num_vars();
        let mut rf = RationalFunction { num: p, den: Polynomial::constant(nvars, 1.0) };
        rf.normalize();
        rf
    }

    /// Builds `num / den`.
    ///
    /// # Errors
    ///
    /// * [`ParametricError::ArityMismatch`] if the variable counts differ.
    /// * [`ParametricError::DivisionByZero`] if `den` is the zero polynomial.
    pub fn new(num: Polynomial, den: Polynomial) -> Result<Self, ParametricError> {
        if num.num_vars() != den.num_vars() {
            return Err(ParametricError::ArityMismatch {
                left: num.num_vars(),
                right: den.num_vars(),
            });
        }
        if den.is_zero() {
            return Err(ParametricError::DivisionByZero);
        }
        let mut rf = RationalFunction { num, den };
        rf.normalize();
        Ok(rf)
    }

    /// The numerator polynomial.
    pub fn numerator(&self) -> &Polynomial {
        &self.num
    }

    /// The denominator polynomial.
    pub fn denominator(&self) -> &Polynomial {
        &self.den
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num.num_vars()
    }

    /// Whether this is (recognizably) the zero function.
    pub fn is_zero_rf(&self) -> bool {
        self.num.is_zero()
    }

    /// If the function is constant, returns its value.
    pub fn as_constant(&self) -> Option<f64> {
        match (self.num.as_constant(), self.den.as_constant()) {
            (Some(n), Some(d)) if d != 0.0 => Some(n / d),
            _ => None,
        }
    }

    /// `self + rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the variable counts differ.
    pub fn add(&self, rhs: &RationalFunction) -> RationalFunction {
        if self.den == rhs.den {
            let mut rf = RationalFunction { num: self.num.add(&rhs.num), den: self.den.clone() };
            rf.normalize();
            return rf;
        }
        let num = self.num.mul(&rhs.den).add(&rhs.num.mul(&self.den));
        let den = self.den.mul(&rhs.den);
        let mut rf = RationalFunction { num, den };
        rf.normalize();
        rf
    }

    /// `self - rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the variable counts differ.
    pub fn sub(&self, rhs: &RationalFunction) -> RationalFunction {
        self.add(&rhs.neg())
    }

    /// `-self`.
    pub fn neg(&self) -> RationalFunction {
        RationalFunction { num: self.num.neg(), den: self.den.clone() }
    }

    /// `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the variable counts differ.
    pub fn mul(&self, rhs: &RationalFunction) -> RationalFunction {
        // Cross-cancel equal factors before multiplying to slow blow-up.
        if self.num == rhs.den {
            let mut rf = RationalFunction { num: rhs.num.clone(), den: self.den.clone() };
            rf.normalize();
            return rf;
        }
        if rhs.num == self.den {
            let mut rf = RationalFunction { num: self.num.clone(), den: rhs.den.clone() };
            rf.normalize();
            return rf;
        }
        let mut rf = RationalFunction { num: self.num.mul(&rhs.num), den: self.den.mul(&rhs.den) };
        rf.normalize();
        rf
    }

    /// `self / rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`ParametricError::DivisionByZero`] if `rhs` is zero.
    pub fn div(&self, rhs: &RationalFunction) -> Result<RationalFunction, ParametricError> {
        if rhs.is_zero_rf() {
            return Err(ParametricError::DivisionByZero);
        }
        Ok(self.mul(&RationalFunction { num: rhs.den.clone(), den: rhs.num.clone() }))
    }

    /// Evaluates at `point`.
    ///
    /// # Errors
    ///
    /// * [`ParametricError::PointArityMismatch`] for a wrong-sized point.
    /// * [`ParametricError::PoleAtPoint`] if the denominator vanishes there.
    pub fn eval(&self, point: &[f64]) -> Result<f64, ParametricError> {
        let d = self.den.eval(point)?;
        if d.abs() < 1e-300 {
            return Err(ParametricError::PoleAtPoint { point: point.to_vec() });
        }
        Ok(self.num.eval(point)? / d)
    }

    /// The gradient at `point`, computed from the exact partial derivatives
    /// via the quotient rule.
    ///
    /// # Errors
    ///
    /// Same conditions as [`eval`](Self::eval).
    pub fn grad(&self, point: &[f64]) -> Result<Vec<f64>, ParametricError> {
        let d = self.den.eval(point)?;
        if d.abs() < 1e-300 {
            return Err(ParametricError::PoleAtPoint { point: point.to_vec() });
        }
        let n = self.num.eval(point)?;
        let mut g = Vec::with_capacity(self.num_vars());
        for i in 0..self.num_vars() {
            let dn = self.num.partial(i).eval(point)?;
            let dd = self.den.partial(i).eval(point)?;
            g.push((dn * d - n * dd) / (d * d));
        }
        Ok(g)
    }

    /// The combined total degree of numerator and denominator — a measure
    /// of representation size.
    pub fn complexity(&self) -> u32 {
        self.num.total_degree() + self.den.total_degree()
    }

    fn normalize(&mut self) {
        if self.num.is_zero() {
            self.den = Polynomial::constant(self.num.num_vars(), 1.0);
            return;
        }
        // Fold constant denominators into the numerator.
        if let Some(c) = self.den.as_constant() {
            if c != 1.0 {
                self.num = self.num.scale(1.0 / c);
                self.den = Polynomial::constant(self.num.num_vars(), 1.0);
            }
            return;
        }
        // Cancel a common monomial factor x^e dividing every term of both.
        let nvars = self.num.num_vars();
        let mut common = vec![u32::MAX; nvars];
        for (exp, _) in self.num.terms().chain(self.den.terms()) {
            for (c, &e) in common.iter_mut().zip(exp) {
                *c = (*c).min(e);
            }
        }
        if common.iter().any(|&c| c > 0 && c != u32::MAX) {
            self.num = divide_monomial(&self.num, &common);
            self.den = divide_monomial(&self.den, &common);
        }
        // Scale so the denominator's largest coefficient is 1 (canonical-ish
        // and numerically tame).
        let scale = self.den.max_abs_coeff();
        if scale != 0.0 && (scale - 1.0).abs() > 1e-15 {
            self.num = self.num.scale(1.0 / scale);
            self.den = self.den.scale(1.0 / scale);
        }
        // Exact cancellation: identical numerator and denominator.
        if self.num == self.den {
            let nv = self.num.num_vars();
            self.num = Polynomial::constant(nv, 1.0);
            self.den = Polynomial::constant(nv, 1.0);
        }
    }
}

fn divide_monomial(p: &Polynomial, exps: &[u32]) -> Polynomial {
    let terms: Vec<(Vec<u32>, f64)> =
        p.terms().map(|(e, c)| (e.iter().zip(exps).map(|(&a, &b)| a - b).collect(), c)).collect();
    Polynomial::from_terms(p.num_vars(), &terms).expect("same arity by construction")
}

impl Field for RationalFunction {
    fn zero() -> Self {
        // Arity is unknowable here; elimination code never calls
        // `Field::zero()`/`one()` on RationalFunction directly — it clones
        // existing elements. A zero-arity constant is the safe default; the
        // arithmetic methods lift it to the partner's arity on demand.
        RationalFunction::zero_rf(0)
    }

    fn one() -> Self {
        RationalFunction::one_rf(0)
    }

    fn add(&self, rhs: &Self) -> Self {
        self.promote_arity(rhs, |a, b| a.add(b))
    }

    fn sub(&self, rhs: &Self) -> Self {
        self.promote_arity(rhs, |a, b| a.sub(b))
    }

    fn mul(&self, rhs: &Self) -> Self {
        self.promote_arity(rhs, |a, b| a.mul(b))
    }

    fn div(&self, rhs: &Self) -> Self {
        self.promote_arity(rhs, |a, b| a.div(b).expect("division by zero rational function"))
    }

    fn neg(&self) -> Self {
        RationalFunction::neg(self)
    }

    fn is_zero(&self) -> bool {
        self.is_zero_rf()
    }

    fn pivot_weight(&self) -> f64 {
        if self.is_zero_rf() {
            return 0.0;
        }
        // Prefer pivots that are (a) numerically large at the origin of the
        // parameter box — divisions by functions that vanish there create
        // removable 0/0 singularities the representation cannot cancel —
        // and (b) of low symbolic complexity, to slow degree blow-up.
        let origin_mag = {
            let n0 = constant_term(&self.num);
            let d0 = constant_term(&self.den);
            if d0 == 0.0 {
                0.0
            } else {
                (n0 / d0).abs()
            }
        };
        (origin_mag + 1e-9) / (1.0 + self.complexity() as f64)
    }
}

impl RationalFunction {
    /// Lifts zero-arity constants (from `Field::zero`/`one`) to the arity of
    /// the other operand before applying `f`.
    fn promote_arity(
        &self,
        rhs: &RationalFunction,
        f: impl Fn(&RationalFunction, &RationalFunction) -> RationalFunction,
    ) -> RationalFunction {
        if self.num_vars() == rhs.num_vars() {
            return f(self, rhs);
        }
        if self.num_vars() == 0 {
            let lifted = RationalFunction::constant(
                rhs.num_vars(),
                self.as_constant().expect("zero-arity rational function is constant"),
            );
            return f(&lifted, rhs);
        }
        if rhs.num_vars() == 0 {
            let lifted = RationalFunction::constant(
                self.num_vars(),
                rhs.as_constant().expect("zero-arity rational function is constant"),
            );
            return f(self, &lifted);
        }
        panic!("rational function arity mismatch: {} vs {}", self.num_vars(), rhs.num_vars());
    }
}

impl fmt::Display for RationalFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.as_constant() == Some(1.0) {
            write!(f, "{}", self.num)
        } else {
            write!(f, "({}) / ({})", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v() -> RationalFunction {
        RationalFunction::var(1, 0)
    }

    fn c(x: f64) -> RationalFunction {
        RationalFunction::constant(1, x)
    }

    #[test]
    fn arithmetic_and_eval() {
        // f = (1 + v) / (1 - v)
        let f = c(1.0).add(&v()).div(&c(1.0).sub(&v())).unwrap();
        assert!((f.eval(&[0.5]).unwrap() - 3.0).abs() < 1e-12);
        assert!(f.eval(&[1.0]).is_err()); // pole
        let g = f.mul(&f);
        assert!((g.eval(&[0.5]).unwrap() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn self_division_is_one() {
        let f = c(2.0).add(&v());
        let one = f.div(&f).unwrap();
        assert_eq!(one.as_constant(), Some(1.0));
    }

    #[test]
    fn zero_behaviour() {
        assert!(RationalFunction::zero_rf(1).is_zero_rf());
        let z = v().sub(&v());
        assert!(z.is_zero_rf());
        assert!(c(1.0).div(&z).is_err());
        assert_eq!(z.as_constant(), Some(0.0));
    }

    #[test]
    fn constant_denominator_folds() {
        let f = RationalFunction::new(Polynomial::var(1, 0), Polynomial::constant(1, 2.0)).unwrap();
        assert_eq!(f.denominator().as_constant(), Some(1.0));
        assert!((f.eval(&[3.0]).unwrap() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn monomial_cancellation() {
        // (x²) / (x) normalizes to x / 1
        let f = RationalFunction::new(
            Polynomial::var(1, 0).mul(&Polynomial::var(1, 0)),
            Polynomial::var(1, 0),
        )
        .unwrap();
        assert_eq!(f.denominator().as_constant(), Some(1.0));
        assert!((f.eval(&[4.0]).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn gradient_quotient_rule() {
        // f = v / (1 - v); f' = 1/(1-v)²
        let f = v().div(&c(1.0).sub(&v())).unwrap();
        let g = f.grad(&[0.5]).unwrap();
        assert!((g[0] - 4.0).abs() < 1e-10);
    }

    #[test]
    fn field_impl_promotes_arity() {
        let zero = <RationalFunction as Field>::zero();
        let sum = Field::add(&zero, &v());
        assert!((sum.eval(&[0.3]).unwrap() - 0.3).abs() < 1e-12);
        let one = <RationalFunction as Field>::one();
        let prod = Field::mul(&v(), &one);
        assert!((prod.eval(&[0.3]).unwrap() - 0.3).abs() < 1e-12);
        assert!(Field::is_zero(&zero));
        assert!(Field::pivot_weight(&v()) > 0.0);
        assert_eq!(Field::pivot_weight(&RationalFunction::zero_rf(1)), 0.0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(c(2.0).to_string(), "2");
        let f = c(1.0).div(&c(1.0).sub(&v())).unwrap();
        assert!(f.to_string().contains('/'));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_rf() -> impl Strategy<Value = RationalFunction> {
        // Build (a + b·v) / (1 + c·v²) with c ≥ 0 so the denominator never
        // vanishes on [-1, 1].
        (-3.0_f64..3.0, -3.0_f64..3.0, 0.0_f64..0.9).prop_map(|(a, b, cc)| {
            let v = RationalFunction::var(1, 0);
            let num =
                RationalFunction::constant(1, a).add(&v.mul(&RationalFunction::constant(1, b)));
            let den = RationalFunction::constant(1, 1.0)
                .add(&v.mul(&v).mul(&RationalFunction::constant(1, cc)));
            num.div(&den).unwrap()
        })
    }

    proptest! {
        /// Field laws hold pointwise under evaluation.
        #[test]
        fn field_laws_pointwise(f in arb_rf(), g in arb_rf(), x in -0.9_f64..0.9) {
            let pt = [x];
            let fv = f.eval(&pt).unwrap();
            let gv = g.eval(&pt).unwrap();
            let scale = 1.0 + fv.abs().max(gv.abs());
            prop_assert!((f.add(&g).eval(&pt).unwrap() - (fv + gv)).abs() < 1e-7 * scale);
            prop_assert!((f.mul(&g).eval(&pt).unwrap() - fv * gv).abs() < 1e-7 * scale * scale);
            if gv.abs() > 1e-6 && !g.is_zero_rf() {
                prop_assert!((f.div(&g).unwrap().eval(&pt).unwrap() - fv / gv).abs() < 1e-5 * scale / gv.abs());
            }
        }

        /// The symbolic gradient matches central finite differences.
        #[test]
        fn gradient_matches_finite_differences(f in arb_rf(), x in -0.8_f64..0.8) {
            let h = 1e-6;
            let fd = (f.eval(&[x + h]).unwrap() - f.eval(&[x - h]).unwrap()) / (2.0 * h);
            let g = f.grad(&[x]).unwrap()[0];
            prop_assert!((fd - g).abs() < 1e-4 * (1.0 + g.abs()), "fd {fd} vs grad {g}");
        }
    }
}

fn constant_term(p: &Polynomial) -> f64 {
    p.terms().find(|(exp, _)| exp.iter().all(|&e| e == 0)).map(|(_, c)| c).unwrap_or(0.0)
}
