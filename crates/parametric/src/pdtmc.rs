//! Parametric DTMCs and symbolic state elimination.

use std::collections::{BTreeMap, BTreeSet};

use tml_models::{Dtmc, DtmcBuilder, Labeling};

use crate::{ParametricError, RationalFunction};

/// A discrete-time Markov chain whose transition probabilities are
/// [`RationalFunction`]s of a parameter vector.
///
/// The *support* (which transitions are non-zero) must not depend on the
/// parameters — the standard "well-defined region" assumption of parametric
/// model checking, which makes the qualitative `Prob0`/`Prob1` sets
/// parameter-independent. Construct via [`ParametricDtmc::builder`]; the
/// builder checks that every row sums to one identically.
#[derive(Debug, Clone, PartialEq)]
pub struct ParametricDtmc {
    params: Vec<String>,
    transitions: Vec<Vec<(usize, RationalFunction)>>,
    initial: usize,
    labeling: Labeling,
    state_rewards: BTreeMap<String, Vec<RationalFunction>>,
}

impl ParametricDtmc {
    /// Starts building a parametric chain with `num_states` states over the
    /// named parameters.
    pub fn builder(num_states: usize, params: Vec<String>) -> ParametricDtmcBuilder {
        ParametricDtmcBuilder {
            num_states,
            nvars: params.len(),
            params,
            transitions: vec![BTreeMap::new(); num_states],
            initial: 0,
            labeling: Labeling::new(num_states),
            state_rewards: BTreeMap::new(),
        }
    }

    /// Lifts a concrete DTMC into a parametric one (with the given parameter
    /// names and all transitions constant), ready for perturbation.
    pub fn from_dtmc(dtmc: &Dtmc, params: Vec<String>) -> ParametricDtmcBuilder {
        let nvars = params.len();
        let mut b = Self::builder(dtmc.num_states(), params);
        for s in 0..dtmc.num_states() {
            for (t, p) in dtmc.successors(s) {
                b.transitions[s].insert(t, RationalFunction::constant(nvars, p));
            }
            for label in dtmc.labeling().labels_of(s) {
                b.labeling.add(s, label).expect("same state count");
            }
        }
        for rs in dtmc.reward_structures() {
            let row: Vec<RationalFunction> = (0..dtmc.num_states())
                .map(|s| RationalFunction::constant(nvars, rs.state_reward(s)))
                .collect();
            b.state_rewards.insert(rs.name().to_owned(), row);
        }
        b.initial = dtmc.initial_state();
        b
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// The parameter names, in variable order.
    pub fn params(&self) -> &[String] {
        &self.params
    }

    /// The initial state.
    pub fn initial_state(&self) -> usize {
        self.initial
    }

    /// The state labeling.
    pub fn labeling(&self) -> &Labeling {
        &self.labeling
    }

    /// The symbolic transition probability `from → to` (zero if absent).
    pub fn probability(&self, from: usize, to: usize) -> RationalFunction {
        self.transitions
            .get(from)
            .and_then(|row| row.iter().find(|(t, _)| *t == to))
            .map(|(_, rf)| rf.clone())
            .unwrap_or_else(|| RationalFunction::zero_rf(self.params.len()))
    }

    /// Instantiates the chain at a concrete parameter point.
    ///
    /// # Errors
    ///
    /// * Evaluation errors ([`ParametricError::PoleAtPoint`] etc.).
    /// * [`ParametricError::Model`] if the instantiated probabilities are
    ///   not a valid distribution (the point is outside the well-defined
    ///   region).
    pub fn instantiate(&self, point: &[f64]) -> Result<Dtmc, ParametricError> {
        let mut b = DtmcBuilder::new(self.num_states());
        b.initial_state(self.initial)?;
        for (s, row) in self.transitions.iter().enumerate() {
            for (t, rf) in row {
                let p = rf.eval(point)?;
                b.transition(s, *t, p)?;
            }
        }
        for s in 0..self.num_states() {
            for label in self.labeling.labels_of(s) {
                b.label(s, label)?;
            }
        }
        for (name, rewards) in &self.state_rewards {
            for (s, rf) in rewards.iter().enumerate() {
                b.state_reward(name, s, rf.eval(point)?)?;
            }
        }
        Ok(b.build()?)
    }

    /// The symbolic probability `P(F target)` for **every** state, as
    /// rational functions of the parameters.
    ///
    /// States in `Prob0` map to the constant `0`, states in `Prob1` to `1`,
    /// and the rest are solved by Gaussian elimination over the rational
    /// function field.
    ///
    /// # Errors
    ///
    /// Returns [`ParametricError::SingularSystem`] if elimination fails
    /// (which cannot happen for a well-formed sub-stochastic system).
    pub fn reachability(&self, target: &[bool]) -> Result<Vec<RationalFunction>, ParametricError> {
        self.until(&vec![true; self.num_states()], target)
    }

    /// The symbolic probability `P(φ U target)` for every state.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ParametricDtmc::reachability`].
    pub fn until(
        &self,
        phi: &[bool],
        target: &[bool],
    ) -> Result<Vec<RationalFunction>, ParametricError> {
        let n = self.num_states();
        assert_eq!(target.len(), n, "target mask length");
        assert_eq!(phi.len(), n, "phi mask length");
        let _span = tml_telemetry::span!("parametric.eliminate", states = n);
        let nv = self.params.len();
        let (zero, one) = self.qualitative(phi, target);
        let maybe: Vec<usize> = (0..n).filter(|&s| !zero[s] && !one[s]).collect();

        let mut result: Vec<RationalFunction> =
            (0..n)
                .map(|s| {
                    if one[s] {
                        RationalFunction::one_rf(nv)
                    } else {
                        RationalFunction::zero_rf(nv)
                    }
                })
                .collect();
        if maybe.is_empty() {
            return Ok(result);
        }

        let index = index_of(&maybe, n);
        let m = maybe.len();
        let mut rows: Vec<BTreeMap<usize, RationalFunction>> = vec![BTreeMap::new(); m];
        let mut consts = vec![RationalFunction::zero_rf(nv); m];
        for (i, &s) in maybe.iter().enumerate() {
            for (t, rf) in &self.transitions[s] {
                if one[*t] {
                    consts[i] = consts[i].add(rf);
                } else if let Some(j) = index[*t] {
                    rows[i].insert(j, rf.clone());
                }
            }
        }
        let sol = eliminate_min_degree(rows, consts, nv)?;
        for (i, &s) in maybe.iter().enumerate() {
            result[s] = sol[i].clone();
        }
        Ok(result)
    }

    /// The symbolic expected reward accumulated until reaching `target`
    /// (`R[F target]`) for every state, using the named reward structure.
    ///
    /// # Errors
    ///
    /// * [`ParametricError::Model`] for an unknown reward structure.
    /// * [`ParametricError::InfiniteReward`] if the *initial* state does not
    ///   reach the target almost surely (structurally), making its expected
    ///   reward infinite. States other than the initial one may silently
    ///   carry the placeholder value `0` in that case; callers interested in
    ///   all states should consult [`ParametricDtmc::reachability`] first.
    pub fn expected_reward(
        &self,
        structure: &str,
        target: &[bool],
    ) -> Result<Vec<RationalFunction>, ParametricError> {
        let n = self.num_states();
        assert_eq!(target.len(), n, "target mask length");
        let nv = self.params.len();
        let rewards = self.state_rewards.get(structure).ok_or_else(|| {
            ParametricError::Model(tml_models::ModelError::NotFound {
                kind: "reward structure",
                name: structure.to_owned(),
            })
        })?;
        let (_, one) = self.qualitative(&vec![true; n], target);
        if !one[self.initial] {
            return Err(ParametricError::InfiniteReward { state: self.initial });
        }
        let maybe: Vec<usize> = (0..n).filter(|&s| one[s] && !target[s]).collect();
        let mut result = vec![RationalFunction::zero_rf(nv); n];
        if maybe.is_empty() {
            return Ok(result);
        }
        let index = index_of(&maybe, n);
        let m = maybe.len();
        let mut rows: Vec<BTreeMap<usize, RationalFunction>> = vec![BTreeMap::new(); m];
        let mut consts = vec![RationalFunction::zero_rf(nv); m];
        for (i, &s) in maybe.iter().enumerate() {
            consts[i] = rewards[s].clone();
            for (t, rf) in &self.transitions[s] {
                if let Some(j) = index[*t] {
                    rows[i].insert(j, rf.clone());
                }
            }
        }
        let sol = eliminate_min_degree(rows, consts, nv)?;
        for (i, &s) in maybe.iter().enumerate() {
            result[s] = sol[i].clone();
        }
        Ok(result)
    }

    /// Qualitative `Prob0` / `Prob1` masks for `φ U target`, computed on
    /// the (parameter-independent) support graph.
    fn qualitative(&self, phi: &[bool], target: &[bool]) -> (Vec<bool>, Vec<bool>) {
        let n = self.num_states();
        // Backward reachability of target through φ on the support graph.
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (s, row) in self.transitions.iter().enumerate() {
            for (t, rf) in row {
                if !rf.is_zero_rf() {
                    preds[*t].push(s);
                }
            }
        }
        let mut can_reach = target.to_vec();
        let mut stack: Vec<usize> = (0..n).filter(|&s| target[s]).collect();
        while let Some(s) = stack.pop() {
            for &p in &preds[s] {
                if !can_reach[p] && phi[p] {
                    can_reach[p] = true;
                    stack.push(p);
                }
            }
        }
        let zero: Vec<bool> = can_reach.iter().map(|&r| !r).collect();
        // Prob1: cannot reach a Prob0 state through (φ ∧ ¬target) states.
        let mut bad_reach = zero.clone();
        let mut stack: Vec<usize> = (0..n).filter(|&s| zero[s]).collect();
        while let Some(s) = stack.pop() {
            for &p in &preds[s] {
                if !bad_reach[p] && phi[p] && !target[p] {
                    bad_reach[p] = true;
                    stack.push(p);
                }
            }
        }
        let one: Vec<bool> = bad_reach.iter().map(|&b| !b).collect();
        (zero, one)
    }
}

/// Incremental builder for [`ParametricDtmc`].
#[derive(Debug, Clone)]
pub struct ParametricDtmcBuilder {
    num_states: usize,
    nvars: usize,
    params: Vec<String>,
    transitions: Vec<BTreeMap<usize, RationalFunction>>,
    initial: usize,
    labeling: Labeling,
    state_rewards: BTreeMap<String, Vec<RationalFunction>>,
}

impl ParametricDtmcBuilder {
    /// Sets (replacing, not accumulating) the symbolic transition `from → to`.
    ///
    /// # Errors
    ///
    /// * [`ParametricError::Model`] for out-of-range states.
    /// * [`ParametricError::ArityMismatch`] if the rational function is over
    ///   the wrong number of parameters.
    pub fn transition(
        &mut self,
        from: usize,
        to: usize,
        p: RationalFunction,
    ) -> Result<&mut Self, ParametricError> {
        self.check_state(from)?;
        self.check_state(to)?;
        if p.num_vars() != self.nvars {
            return Err(ParametricError::ArityMismatch { left: self.nvars, right: p.num_vars() });
        }
        if p.is_zero_rf() {
            self.transitions[from].remove(&to);
        } else {
            self.transitions[from].insert(to, p);
        }
        Ok(self)
    }

    /// Sets the initial state.
    ///
    /// # Errors
    ///
    /// Returns [`ParametricError::Model`] if out of range.
    pub fn initial_state(&mut self, state: usize) -> Result<&mut Self, ParametricError> {
        self.check_state(state)?;
        self.initial = state;
        Ok(self)
    }

    /// Attaches a label to a state.
    ///
    /// # Errors
    ///
    /// Returns [`ParametricError::Model`] if out of range.
    pub fn label(&mut self, state: usize, label: &str) -> Result<&mut Self, ParametricError> {
        self.labeling.add(state, label)?;
        Ok(self)
    }

    /// Sets the (symbolic) per-step reward of a state in the named
    /// structure.
    ///
    /// # Errors
    ///
    /// * [`ParametricError::Model`] for out-of-range states.
    /// * [`ParametricError::ArityMismatch`] for wrong-arity functions.
    pub fn state_reward(
        &mut self,
        structure: &str,
        state: usize,
        value: RationalFunction,
    ) -> Result<&mut Self, ParametricError> {
        self.check_state(state)?;
        if value.num_vars() != self.nvars {
            return Err(ParametricError::ArityMismatch {
                left: self.nvars,
                right: value.num_vars(),
            });
        }
        let row = self
            .state_rewards
            .entry(structure.to_owned())
            .or_insert_with(|| vec![RationalFunction::zero_rf(self.nvars); self.num_states]);
        row[state] = value;
        Ok(self)
    }

    /// Validates (rows sum to one identically) and freezes the chain.
    ///
    /// # Errors
    ///
    /// * [`ParametricError::Model`] wrapping `MissingDistribution` for
    ///   states with no outgoing transition.
    /// * [`ParametricError::NotIdenticallyStochastic`] if a row's symbolic
    ///   sum differs from the constant `1`.
    pub fn build(&self) -> Result<ParametricDtmc, ParametricError> {
        for (s, row) in self.transitions.iter().enumerate() {
            if row.is_empty() {
                return Err(ParametricError::Model(tml_models::ModelError::MissingDistribution {
                    state: s,
                }));
            }
            let mut sum = RationalFunction::zero_rf(self.nvars);
            for rf in row.values() {
                sum = sum.add(rf);
            }
            let diff = sum.sub(&RationalFunction::one_rf(self.nvars));
            if !diff.is_zero_rf() {
                return Err(ParametricError::NotIdenticallyStochastic { state: s });
            }
        }
        Ok(ParametricDtmc {
            params: self.params.clone(),
            transitions: self
                .transitions
                .iter()
                .map(|row| row.iter().map(|(&t, rf)| (t, rf.clone())).collect())
                .collect(),
            initial: self.initial,
            labeling: self.labeling.clone(),
            state_rewards: self.state_rewards.clone(),
        })
    }

    fn check_state(&self, state: usize) -> Result<(), ParametricError> {
        if state >= self.num_states {
            return Err(ParametricError::Model(tml_models::ModelError::StateOutOfBounds {
                state,
                num_states: self.num_states,
            }));
        }
        Ok(())
    }
}

/// Solves the fixed-point system `x = A·x + b` over the rational-function
/// field by state elimination with a min-degree pivot order.
///
/// `rows[i]` holds the non-zero coefficients `a_{ij}` of equation `i`
/// (self-loops allowed), `consts[i]` the affine term. Each elimination step
/// picks the active equation minimizing the Markowitz fill score
/// `in-degree × out-degree`, normalizes away its self-loop by dividing
/// through `1 − a_{ss}`, and substitutes it into every remaining equation
/// that references it. On sparse chains this touches only the pivot's
/// neighborhood instead of the dense `O(m³)` symbolic elimination it
/// replaces — and, crucially for rational functions, keeps intermediate
/// numerator/denominator degrees proportional to the fill actually
/// incurred rather than to the whole matrix.
///
/// Back-substitution runs in reverse elimination order: a pivot's
/// residual row only references states eliminated after it.
fn eliminate_min_degree(
    mut rows: Vec<BTreeMap<usize, RationalFunction>>,
    mut consts: Vec<RationalFunction>,
    nvars: usize,
) -> Result<Vec<RationalFunction>, ParametricError> {
    let m = rows.len();
    let mut preds: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); m];
    for (i, row) in rows.iter().enumerate() {
        for &j in row.keys() {
            if j != i {
                preds[j].insert(i);
            }
        }
    }
    let mut active = vec![true; m];
    let mut order = Vec::with_capacity(m);
    for _ in 0..m {
        // Min-degree pivot: the invariants below keep `rows` and `preds`
        // restricted to active states, so the degrees need no filtering.
        let mut pivot = usize::MAX;
        let mut best = u64::MAX;
        for i in 0..m {
            if !active[i] {
                continue;
            }
            let out = rows[i].keys().filter(|&&j| j != i).count() as u64;
            let score = preds[i].len() as u64 * out;
            if score < best {
                best = score;
                pivot = i;
            }
        }
        let s = pivot;
        // Normalize: fold the self-loop into the row, x_s = (A_s·x + b_s)/(1−a_ss).
        if let Some(self_p) = rows[s].remove(&s) {
            let denom = RationalFunction::one_rf(nvars).sub(&self_p);
            if denom.is_zero_rf() {
                return Err(ParametricError::SingularSystem);
            }
            let row = std::mem::take(&mut rows[s]);
            let mut scaled = BTreeMap::new();
            for (j, rf) in row {
                scaled.insert(j, rf.div(&denom)?);
            }
            rows[s] = scaled;
            consts[s] = consts[s].div(&denom)?;
        }
        // s stops being a predecessor of its successors...
        let succs: Vec<usize> = rows[s].keys().copied().collect();
        for &j in &succs {
            preds[j].remove(&s);
        }
        // ...and is substituted into every equation that references it.
        let incoming = std::mem::take(&mut preds[s]);
        let pivot_row: Vec<(usize, RationalFunction)> =
            rows[s].iter().map(|(&j, rf)| (j, rf.clone())).collect();
        let pivot_const = consts[s].clone();
        for &p in &incoming {
            let w = rows[p].remove(&s).expect("preds invariant: a_ps present");
            for (j, coef) in &pivot_row {
                let j = *j;
                let add = w.mul(coef);
                let entry = rows[p].entry(j).or_insert_with(|| RationalFunction::zero_rf(nvars));
                *entry = entry.add(&add);
                if j != p {
                    preds[j].insert(p);
                }
            }
            let wc = w.mul(&pivot_const);
            consts[p] = consts[p].add(&wc);
        }
        active[s] = false;
        order.push(s);
    }
    // Reverse elimination order: every reference is already resolved.
    let mut x = vec![RationalFunction::zero_rf(nvars); m];
    for &s in order.iter().rev() {
        let mut acc = consts[s].clone();
        for (&j, coef) in &rows[s] {
            acc = acc.add(&coef.mul(&x[j]));
        }
        x[s] = acc;
    }
    Ok(x)
}

fn index_of(maybe: &[usize], n: usize) -> Vec<Option<usize>> {
    let mut idx = vec![None; n];
    for (i, &s) in maybe.iter().enumerate() {
        idx[s] = Some(i);
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(x: f64) -> RationalFunction {
        RationalFunction::constant(1, x)
    }

    fn v() -> RationalFunction {
        RationalFunction::var(1, 0)
    }

    /// try/succeed/fail chain: from 0, succeed (state 1) w.p. 0.5+v, fail
    /// (state 2, absorbing) w.p. 0.3-v, retry w.p. 0.2.
    fn chain() -> ParametricDtmc {
        let mut b = ParametricDtmc::builder(3, vec!["v".into()]);
        b.transition(0, 0, c(0.2)).unwrap();
        b.transition(0, 1, c(0.5).add(&v())).unwrap();
        b.transition(0, 2, c(0.3).sub(&v())).unwrap();
        b.transition(1, 1, c(1.0)).unwrap();
        b.transition(2, 2, c(1.0)).unwrap();
        b.label(1, "ok").unwrap();
        b.state_reward("tries", 0, c(1.0)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn reachability_closed_form() {
        let p = chain();
        let target = p.labeling().mask("ok");
        let reach = p.reachability(&target).unwrap();
        // P(F ok) from 0 = (0.5+v) / 0.8
        for val in [-0.1, 0.0, 0.1, 0.25] {
            let expect = (0.5 + val) / 0.8;
            let got = reach[0].eval(&[val]).unwrap();
            assert!((got - expect).abs() < 1e-10, "v={val}: {got} vs {expect}");
        }
        assert_eq!(reach[1].as_constant(), Some(1.0));
        assert_eq!(reach[2].as_constant(), Some(0.0));
    }

    #[test]
    fn reachability_matches_concrete_checker() {
        let p = chain();
        let target = p.labeling().mask("ok");
        let reach = p.reachability(&target).unwrap();
        for val in [-0.2, 0.0, 0.15] {
            let concrete = p.instantiate(&[val]).unwrap();
            let opts = tml_checker::CheckOptions::default();
            let phi = vec![true; 3];
            let exact =
                tml_checker::dtmc::until_probabilities(&concrete, &phi, &target, &opts).unwrap();
            for s in 0..3 {
                let sym = reach[s].eval(&[val]).unwrap();
                assert!((sym - exact[s]).abs() < 1e-9, "state {s} v={val}: {sym} vs {}", exact[s]);
            }
        }
    }

    #[test]
    fn expected_reward_closed_form() {
        // Make reaching "done" almost sure: from 0, succeed w.p. 0.5+v,
        // retry otherwise. E[tries] = 1 / (0.5+v).
        let mut b = ParametricDtmc::builder(2, vec!["v".into()]);
        b.transition(0, 1, c(0.5).add(&v())).unwrap();
        b.transition(0, 0, c(0.5).sub(&v())).unwrap();
        b.transition(1, 1, c(1.0)).unwrap();
        b.label(1, "done").unwrap();
        b.state_reward("tries", 0, c(1.0)).unwrap();
        let p = b.build().unwrap();
        let target = p.labeling().mask("done");
        let er = p.expected_reward("tries", &target).unwrap();
        for val in [0.0, 0.2, 0.4] {
            let got = er[0].eval(&[val]).unwrap();
            let expect = 1.0 / (0.5 + val);
            assert!((got - expect).abs() < 1e-10, "v={val}: {got} vs {expect}");
        }
        assert_eq!(er[1].as_constant(), Some(0.0));
    }

    #[test]
    fn expected_reward_infinite_detected() {
        let p = chain(); // fail-state reachable → P(F ok) < 1 from 0
        let target = p.labeling().mask("ok");
        assert!(matches!(
            p.expected_reward("tries", &target),
            Err(ParametricError::InfiniteReward { state: 0 })
        ));
    }

    #[test]
    fn builder_validation() {
        let mut b = ParametricDtmc::builder(1, vec!["v".into()]);
        b.transition(0, 0, c(0.9)).unwrap();
        assert!(matches!(b.build(), Err(ParametricError::NotIdenticallyStochastic { state: 0 })));

        let mut b2 = ParametricDtmc::builder(2, vec!["v".into()]);
        b2.transition(0, 0, c(1.0)).unwrap();
        assert!(matches!(b2.build(), Err(ParametricError::Model(_)))); // state 1 deadlocked

        let mut b3 = ParametricDtmc::builder(1, vec!["v".into()]);
        assert!(b3.transition(0, 0, RationalFunction::constant(2, 1.0)).is_err());
        assert!(b3.transition(5, 0, c(1.0)).is_err());
    }

    #[test]
    fn instantiate_checks_region() {
        let p = chain();
        // v = 0.6 makes 0.3 - v negative → invalid probability.
        assert!(p.instantiate(&[0.6]).is_err());
        let ok = p.instantiate(&[0.1]).unwrap();
        assert!((ok.probability(0, 1) - 0.6).abs() < 1e-12);
        assert_eq!(ok.reward_structure("tries").unwrap().state_reward(0), 1.0);
    }

    #[test]
    fn from_dtmc_roundtrip() {
        let mut db = tml_models::DtmcBuilder::new(2);
        db.transition(0, 1, 0.7).unwrap();
        db.transition(0, 0, 0.3).unwrap();
        db.transition(1, 1, 1.0).unwrap();
        db.label(1, "goal").unwrap();
        db.state_reward("r", 0, 2.0).unwrap();
        let d = db.build().unwrap();
        let p = ParametricDtmc::from_dtmc(&d, vec!["v".into()]).build().unwrap();
        let back = p.instantiate(&[0.0]).unwrap();
        assert_eq!(back.probability(0, 1), 0.7);
        assert!(back.labeling().has(1, "goal"));
        assert_eq!(back.reward_structure("r").unwrap().state_reward(0), 2.0);
    }

    #[test]
    fn elimination_handles_long_sparse_chain() {
        // A 12-state birth–death chain: forward w.p. 0.6+v, back w.p.
        // 0.4-v. Min-degree elimination keeps every pivot's fill at the
        // chain bandwidth; the result must still match the concrete
        // checker at several instantiation points.
        let n = 12;
        let mut b = ParametricDtmc::builder(n, vec!["v".into()]);
        for s in 0..n - 1 {
            b.transition(s, s + 1, c(0.6).add(&v())).unwrap();
            let back = if s == 0 { 0 } else { s - 1 };
            b.transition(s, back, c(0.4).sub(&v())).unwrap();
        }
        b.transition(n - 1, n - 1, c(1.0)).unwrap();
        b.label(n - 1, "goal").unwrap();
        let p = b.build().unwrap();
        let target = p.labeling().mask("goal");
        let reach = p.reachability(&target).unwrap();
        // Every non-target state reaches the goal almost surely here.
        for val in [-0.05, 0.0, 0.1] {
            for (s, rf) in reach.iter().enumerate() {
                let got = rf.eval(&[val]).unwrap();
                assert!((got - 1.0).abs() < 1e-9, "state {s} v={val}: {got}");
            }
        }
    }

    #[test]
    fn elimination_matches_dense_on_branching_model() {
        // Diamond with a parametric split and a retry loop — enough fill
        // structure that a bad pivot order would differ from the direct
        // answer if the substitution algebra were wrong.
        let mut b = ParametricDtmc::builder(6, vec!["v".into()]);
        b.transition(0, 1, c(0.4).add(&v())).unwrap();
        b.transition(0, 2, c(0.6).sub(&v())).unwrap();
        b.transition(1, 3, c(0.5)).unwrap();
        b.transition(1, 0, c(0.5)).unwrap();
        b.transition(2, 3, c(0.3)).unwrap();
        b.transition(2, 4, c(0.7)).unwrap();
        b.transition(3, 5, c(0.9)).unwrap();
        b.transition(3, 2, c(0.1)).unwrap();
        b.transition(4, 4, c(1.0)).unwrap();
        b.transition(5, 5, c(1.0)).unwrap();
        b.label(5, "goal").unwrap();
        let p = b.build().unwrap();
        let target = p.labeling().mask("goal");
        let sym = p.reachability(&target).unwrap();
        for val in [-0.1, 0.0, 0.12] {
            let concrete = p.instantiate(&[val]).unwrap();
            let opts = tml_checker::CheckOptions::default();
            let exact =
                tml_checker::dtmc::until_probabilities(&concrete, &[true; 6], &target, &opts)
                    .unwrap();
            for s in 0..6 {
                let got = sym[s].eval(&[val]).unwrap();
                assert!((got - exact[s]).abs() < 1e-9, "state {s} v={val}: {got} vs {}", exact[s]);
            }
        }
    }

    #[test]
    fn probability_accessor() {
        let p = chain();
        assert!(p.probability(0, 1).eval(&[0.1]).unwrap() - 0.6 < 1e-12);
        assert!(p.probability(1, 0).is_zero_rf());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Parametric reachability agrees with the concrete checker at many
        /// random chains and instantiation points (the core cross-validation
        /// of the symbolic engine).
        #[test]
        fn symbolic_matches_concrete(
            seed in proptest::collection::vec(0.05_f64..0.95, 8),
            vval in -0.04_f64..0.04,
        ) {
            // 4-state chain, state 3 absorbing target, state 0 perturbed by v.
            let nv = 1;
            let c = |x: f64| RationalFunction::constant(nv, x);
            let v = RationalFunction::var(nv, 0);
            let mut b = ParametricDtmc::builder(4, vec!["v".into()]);
            // state 0: three-way split with v shifting mass from self-loop
            // to the target direction
            let p01 = 0.3 * seed[0] + 0.1;
            let p02 = 0.3 * seed[1] + 0.1;
            let p00 = 1.0 - p01 - p02;
            b.transition(0, 0, c(p00).sub(&v)).unwrap();
            b.transition(0, 1, c(p01).add(&v)).unwrap();
            b.transition(0, 2, c(p02)).unwrap();
            // state 1: to 3 or back to 0
            let p13 = 0.8 * seed[2] + 0.1;
            b.transition(1, 3, c(p13)).unwrap();
            b.transition(1, 0, c(1.0 - p13)).unwrap();
            // state 2: absorbing failure
            b.transition(2, 2, c(1.0)).unwrap();
            b.transition(3, 3, c(1.0)).unwrap();
            b.label(3, "goal").unwrap();
            let p = b.build().unwrap();
            let target = p.labeling().mask("goal");
            let sym = p.reachability(&target).unwrap();
            let concrete = p.instantiate(&[vval]).unwrap();
            let exact = tml_checker::dtmc::until_probabilities(
                &concrete, &[true; 4], &target, &tml_checker::CheckOptions::default()).unwrap();
            for s in 0..4 {
                let got = sym[s].eval(&[vval]).unwrap();
                prop_assert!((got - exact[s]).abs() < 1e-8,
                    "state {}: symbolic {} vs concrete {}", s, got, exact[s]);
            }
        }
    }
}
