use std::collections::BTreeMap;
use std::fmt;

use crate::ParametricError;

/// Relative magnitude below which a coefficient is considered an artifact of
/// floating-point cancellation and stripped.
const COEFF_EPS: f64 = 1e-12;

/// A sparse multivariate polynomial with `f64` coefficients.
///
/// Terms map exponent vectors (one exponent per variable) to coefficients.
/// All arithmetic strips coefficients that are negligibly small relative to
/// the largest coefficient, which keeps cancellation artifacts from
/// poisoning zero-tests during symbolic elimination.
///
/// # Example
///
/// ```
/// use tml_parametric::Polynomial;
///
/// // p(x, y) = 2 + 3·x·y²
/// let p = Polynomial::constant(2, 2.0)
///     .add(&Polynomial::var(2, 0).mul(&Polynomial::var(2, 1).mul(&Polynomial::var(2, 1))).scale(3.0));
/// assert_eq!(p.eval(&[2.0, 3.0]).unwrap(), 2.0 + 3.0 * 2.0 * 9.0);
/// assert_eq!(p.total_degree(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    nvars: usize,
    terms: BTreeMap<Vec<u32>, f64>,
}

impl Polynomial {
    /// The zero polynomial over `nvars` variables.
    pub fn zero(nvars: usize) -> Self {
        Polynomial { nvars, terms: BTreeMap::new() }
    }

    /// The constant polynomial `c`.
    pub fn constant(nvars: usize, c: f64) -> Self {
        let mut terms = BTreeMap::new();
        if c != 0.0 {
            terms.insert(vec![0; nvars], c);
        }
        Polynomial { nvars, terms }
    }

    /// The monomial `x_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nvars`.
    pub fn var(nvars: usize, i: usize) -> Self {
        assert!(i < nvars, "variable index {i} out of range for {nvars} variables");
        let mut exp = vec![0; nvars];
        exp[i] = 1;
        let mut terms = BTreeMap::new();
        terms.insert(exp, 1.0);
        Polynomial { nvars, terms }
    }

    /// Builds a polynomial from explicit `(exponents, coefficient)` terms.
    ///
    /// # Errors
    ///
    /// Returns [`ParametricError::ArityMismatch`] if any exponent vector has
    /// the wrong length.
    pub fn from_terms(nvars: usize, terms: &[(Vec<u32>, f64)]) -> Result<Self, ParametricError> {
        let mut map: BTreeMap<Vec<u32>, f64> = BTreeMap::new();
        for (exp, c) in terms {
            if exp.len() != nvars {
                return Err(ParametricError::ArityMismatch { left: nvars, right: exp.len() });
            }
            *map.entry(exp.clone()).or_insert(0.0) += c;
        }
        let mut p = Polynomial { nvars, terms: map };
        p.cleanup();
        Ok(p)
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.nvars
    }

    /// Number of (non-zero) terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Whether this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// If the polynomial is constant, returns its value.
    pub fn as_constant(&self) -> Option<f64> {
        if self.terms.is_empty() {
            return Some(0.0);
        }
        if self.terms.len() == 1 {
            if let Some((exp, &c)) = self.terms.iter().next() {
                if exp.iter().all(|&e| e == 0) {
                    return Some(c);
                }
            }
        }
        None
    }

    /// The total degree (max over terms of the exponent sum); zero for the
    /// zero polynomial.
    pub fn total_degree(&self) -> u32 {
        self.terms.keys().map(|e| e.iter().sum()).max().unwrap_or(0)
    }

    /// The largest coefficient magnitude (zero for the zero polynomial).
    pub fn max_abs_coeff(&self) -> f64 {
        self.terms.values().map(|c| c.abs()).fold(0.0, f64::max)
    }

    /// `self + rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the variable counts differ.
    pub fn add(&self, rhs: &Polynomial) -> Polynomial {
        self.check_arity(rhs);
        let mut terms = self.terms.clone();
        for (exp, c) in &rhs.terms {
            *terms.entry(exp.clone()).or_insert(0.0) += c;
        }
        let mut p = Polynomial { nvars: self.nvars, terms };
        p.cleanup();
        p
    }

    /// `self - rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the variable counts differ.
    pub fn sub(&self, rhs: &Polynomial) -> Polynomial {
        self.add(&rhs.neg())
    }

    /// `-self`.
    pub fn neg(&self) -> Polynomial {
        Polynomial {
            nvars: self.nvars,
            terms: self.terms.iter().map(|(e, c)| (e.clone(), -c)).collect(),
        }
    }

    /// `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the variable counts differ.
    pub fn mul(&self, rhs: &Polynomial) -> Polynomial {
        self.check_arity(rhs);
        let mut terms: BTreeMap<Vec<u32>, f64> = BTreeMap::new();
        for (ea, ca) in &self.terms {
            for (eb, cb) in &rhs.terms {
                let exp: Vec<u32> = ea.iter().zip(eb).map(|(x, y)| x + y).collect();
                *terms.entry(exp).or_insert(0.0) += ca * cb;
            }
        }
        let mut p = Polynomial { nvars: self.nvars, terms };
        p.cleanup();
        p
    }

    /// `self * c` for a scalar `c`.
    pub fn scale(&self, c: f64) -> Polynomial {
        let mut p = Polynomial {
            nvars: self.nvars,
            terms: self.terms.iter().map(|(e, v)| (e.clone(), v * c)).collect(),
        };
        p.cleanup();
        p
    }

    /// Evaluates at `point`.
    ///
    /// # Errors
    ///
    /// Returns [`ParametricError::PointArityMismatch`] for a wrong-sized
    /// point.
    pub fn eval(&self, point: &[f64]) -> Result<f64, ParametricError> {
        if point.len() != self.nvars {
            return Err(ParametricError::PointArityMismatch {
                expected: self.nvars,
                got: point.len(),
            });
        }
        let mut acc = 0.0;
        for (exp, c) in &self.terms {
            let mut term = *c;
            for (x, &e) in point.iter().zip(exp) {
                term *= x.powi(e as i32);
            }
            acc += term;
        }
        Ok(acc)
    }

    /// The partial derivative `∂self/∂x_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_vars()`.
    pub fn partial(&self, i: usize) -> Polynomial {
        assert!(i < self.nvars, "variable index {i} out of range");
        let mut terms: BTreeMap<Vec<u32>, f64> = BTreeMap::new();
        for (exp, c) in &self.terms {
            if exp[i] == 0 {
                continue;
            }
            let mut e = exp.clone();
            let k = e[i];
            e[i] -= 1;
            *terms.entry(e).or_insert(0.0) += c * k as f64;
        }
        let mut p = Polynomial { nvars: self.nvars, terms };
        p.cleanup();
        p
    }

    /// Iterates over `(exponents, coefficient)` terms in lexicographic
    /// exponent order.
    pub fn terms(&self) -> impl Iterator<Item = (&[u32], f64)> {
        self.terms.iter().map(|(e, &c)| (e.as_slice(), c))
    }

    fn check_arity(&self, rhs: &Polynomial) {
        assert_eq!(
            self.nvars, rhs.nvars,
            "polynomial arity mismatch: {} vs {}",
            self.nvars, rhs.nvars
        );
    }

    fn cleanup(&mut self) {
        let max = self.max_abs_coeff();
        let threshold = COEFF_EPS * max.max(1.0);
        self.terms.retain(|_, c| c.abs() > threshold);
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return f.write_str("0");
        }
        let mut first = true;
        for (exp, c) in &self.terms {
            if !first {
                f.write_str(if *c >= 0.0 { " + " } else { " - " })?;
            } else if *c < 0.0 {
                f.write_str("-")?;
            }
            first = false;
            let mag = c.abs();
            let has_vars = exp.iter().any(|&e| e > 0);
            if !has_vars || (mag - 1.0).abs() > 1e-15 {
                write!(f, "{mag}")?;
                if has_vars {
                    f.write_str("*")?;
                }
            }
            let mut first_var = true;
            for (i, &e) in exp.iter().enumerate() {
                if e == 0 {
                    continue;
                }
                if !first_var {
                    f.write_str("*")?;
                }
                first_var = false;
                if e == 1 {
                    write!(f, "x{i}")?;
                } else {
                    write!(f, "x{i}^{e}")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Polynomial {
        Polynomial::var(2, 0)
    }

    fn y() -> Polynomial {
        Polynomial::var(2, 1)
    }

    #[test]
    fn construction_and_eval() {
        let p = x().mul(&x()).add(&y().scale(2.0)).add(&Polynomial::constant(2, 1.0));
        // p = x² + 2y + 1
        assert_eq!(p.eval(&[3.0, 0.5]).unwrap(), 9.0 + 1.0 + 1.0);
        assert_eq!(p.num_terms(), 3);
        assert_eq!(p.total_degree(), 2);
        assert!(p.eval(&[1.0]).is_err());
    }

    #[test]
    fn zero_and_constant_detection() {
        assert!(Polynomial::zero(3).is_zero());
        assert_eq!(Polynomial::zero(3).as_constant(), Some(0.0));
        assert_eq!(Polynomial::constant(2, 4.5).as_constant(), Some(4.5));
        assert_eq!(x().as_constant(), None);
        assert!(Polynomial::constant(2, 0.0).is_zero());
    }

    #[test]
    fn cancellation_produces_exact_zero() {
        let p = x().add(&Polynomial::constant(2, 1.0));
        let q = p.sub(&p);
        assert!(q.is_zero());
        // near-cancellation is also cleaned up
        let r = p.scale(1.0 + 1e-16).sub(&p);
        assert!(r.is_zero(), "residual terms: {r}");
    }

    #[test]
    fn arithmetic_identities() {
        let p = x().mul(&y()).add(&Polynomial::constant(2, 3.0));
        assert_eq!(p.add(&Polynomial::zero(2)), p);
        assert_eq!(p.mul(&Polynomial::constant(2, 1.0)), p);
        assert!(p.mul(&Polynomial::zero(2)).is_zero());
        assert!(p.sub(&p).is_zero());
        assert_eq!(p.neg().neg(), p);
    }

    #[test]
    fn partial_derivatives() {
        // p = x²y + 3x
        let p = x().mul(&x()).mul(&y()).add(&x().scale(3.0));
        let dx = p.partial(0); // 2xy + 3
        assert_eq!(dx.eval(&[2.0, 5.0]).unwrap(), 23.0);
        let dy = p.partial(1); // x²
        assert_eq!(dy.eval(&[2.0, 5.0]).unwrap(), 4.0);
        assert!(Polynomial::constant(2, 7.0).partial(0).is_zero());
    }

    #[test]
    fn products_and_sums_prune_zero_terms() {
        // (x + 1)(x − 1) = x² − 1: the cross terms ±x cancel and must not
        // linger as explicit zero-coefficient entries (they would bloat the
        // compiled tapes and defeat `is_zero` during elimination).
        let p = x().add(&Polynomial::constant(2, 1.0));
        let q = x().sub(&Polynomial::constant(2, 1.0));
        let prod = p.mul(&q);
        assert_eq!(prod.num_terms(), 2, "surviving terms: {prod}");
        assert_eq!(y().add(&y().neg()).num_terms(), 0);
        assert!(p.scale(0.0).is_zero());
    }

    #[test]
    fn from_terms_merges_and_validates() {
        let p =
            Polynomial::from_terms(1, &[(vec![1], 2.0), (vec![1], 3.0), (vec![0], 0.0)]).unwrap();
        assert_eq!(p.num_terms(), 1);
        assert_eq!(p.eval(&[2.0]).unwrap(), 10.0);
        assert!(Polynomial::from_terms(1, &[(vec![1, 2], 1.0)]).is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Polynomial::zero(1).to_string(), "0");
        assert_eq!(Polynomial::constant(1, 2.5).to_string(), "2.5");
        let p = Polynomial::var(2, 0).scale(-1.0);
        assert_eq!(p.to_string(), "-x0");
        let q = Polynomial::var(1, 0).mul(&Polynomial::var(1, 0)).scale(2.0);
        assert_eq!(q.to_string(), "2*x0^2");
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let _ = Polynomial::var(1, 0).add(&Polynomial::var(2, 0));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_poly() -> impl Strategy<Value = Polynomial> {
        proptest::collection::vec((proptest::collection::vec(0u32..4, 2), -10.0_f64..10.0), 0..6)
            .prop_map(|terms| Polynomial::from_terms(2, &terms).unwrap())
    }

    proptest! {
        /// Ring laws hold under evaluation at random points.
        #[test]
        fn eval_is_ring_homomorphism(
            p in arb_poly(),
            q in arb_poly(),
            x in -2.0_f64..2.0,
            y in -2.0_f64..2.0,
        ) {
            let pt = [x, y];
            let pv = p.eval(&pt).unwrap();
            let qv = q.eval(&pt).unwrap();
            let scale = 1.0 + pv.abs().max(qv.abs());
            prop_assert!((p.add(&q).eval(&pt).unwrap() - (pv + qv)).abs() < 1e-6 * scale);
            prop_assert!((p.mul(&q).eval(&pt).unwrap() - pv * qv).abs() < 1e-6 * scale * scale);
            prop_assert!((p.sub(&q).eval(&pt).unwrap() - (pv - qv)).abs() < 1e-6 * scale);
        }

        /// Arithmetic never leaves explicit (near-)zero terms behind: every
        /// surviving coefficient clears the relative cleanup threshold.
        #[test]
        fn no_zero_terms_survive_arithmetic(p in arb_poly(), q in arb_poly()) {
            for r in [p.add(&q), p.sub(&q), p.mul(&q)] {
                let threshold = 1e-12 * r.max_abs_coeff().max(1.0);
                for (_, c) in r.terms() {
                    prop_assert!(c.abs() > threshold, "zero-ish term {c} in {r}");
                }
            }
            prop_assert!(p.sub(&p).is_zero());
        }

        /// Differentiation is linear and kills constants.
        #[test]
        fn derivative_linearity(p in arb_poly(), q in arb_poly()) {
            let sum_d = p.add(&q).partial(0);
            let d_sum = p.partial(0).add(&q.partial(0));
            let pt = [0.7, -0.3];
            prop_assert!((sum_d.eval(&pt).unwrap() - d_sum.eval(&pt).unwrap()).abs() < 1e-8);
        }
    }
}
