use std::error::Error;
use std::fmt;

use tml_models::ModelError;

/// Errors raised by the parametric engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParametricError {
    /// Two polynomials/rational functions over different variable counts
    /// were combined.
    ArityMismatch {
        /// Variable count of the left operand.
        left: usize,
        /// Variable count of the right operand.
        right: usize,
    },
    /// Division by the zero polynomial / rational function.
    DivisionByZero,
    /// A rational function was evaluated at a point where its denominator
    /// vanishes.
    PoleAtPoint {
        /// The evaluation point.
        point: Vec<f64>,
    },
    /// An evaluation point had the wrong number of coordinates.
    PointArityMismatch {
        /// Expected number of variables.
        expected: usize,
        /// Provided number of coordinates.
        got: usize,
    },
    /// A transition row does not sum to one identically in the parameters.
    NotIdenticallyStochastic {
        /// The offending state.
        state: usize,
    },
    /// The model layer rejected an operation.
    Model(ModelError),
    /// Expected reward is infinite (the target is not reached almost surely
    /// from this state for parameters in the well-defined region).
    InfiniteReward {
        /// The state whose reward is infinite.
        state: usize,
    },
    /// The symbolic linear system was singular.
    SingularSystem,
}

impl fmt::Display for ParametricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParametricError::ArityMismatch { left, right } => {
                write!(f, "cannot combine polynomials over {left} and {right} variables")
            }
            ParametricError::DivisionByZero => write!(f, "division by the zero rational function"),
            ParametricError::PoleAtPoint { point } => {
                write!(f, "denominator vanishes at evaluation point {point:?}")
            }
            ParametricError::PointArityMismatch { expected, got } => {
                write!(f, "evaluation point has {got} coordinates, expected {expected}")
            }
            ParametricError::NotIdenticallyStochastic { state } => {
                write!(f, "outgoing probabilities of state {state} do not sum to 1 identically")
            }
            ParametricError::Model(e) => write!(f, "model error: {e}"),
            ParametricError::InfiniteReward { state } => {
                write!(
                    f,
                    "expected reward from state {state} is infinite (target not reached a.s.)"
                )
            }
            ParametricError::SingularSystem => write!(f, "symbolic linear system is singular"),
        }
    }
}

impl Error for ParametricError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParametricError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for ParametricError {
    fn from(e: ModelError) -> Self {
        ParametricError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants_nonempty() {
        let errs = [
            ParametricError::ArityMismatch { left: 1, right: 2 },
            ParametricError::DivisionByZero,
            ParametricError::PoleAtPoint { point: vec![0.5] },
            ParametricError::PointArityMismatch { expected: 2, got: 1 },
            ParametricError::NotIdenticallyStochastic { state: 3 },
            ParametricError::InfiniteReward { state: 0 },
            ParametricError::SingularSystem,
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ParametricError>();
    }
}
