//! Parametric probabilistic model checking.
//!
//! This crate implements the machinery behind Propositions 2 and 3 of the
//! paper: reducing a PCTL constraint on a *parametric* Markov chain to a
//! closed-form **rational function** `f(v)` of the parameters, which Model
//! Repair and Data Repair then feed into a non-linear optimizer.
//!
//! The pipeline:
//!
//! 1. Represent perturbed transition probabilities as [`RationalFunction`]s
//!    over the repair parameters (built from sparse multivariate
//!    [`Polynomial`]s).
//! 2. Build a [`ParametricDtmc`] whose rows sum to one *identically* in the
//!    parameters.
//! 3. Run [`ParametricDtmc::reachability`] or
//!    [`ParametricDtmc::expected_reward`]: symbolic Gaussian elimination
//!    over the field of rational functions — the matrix formulation of the
//!    classic state-elimination algorithm (Daws; PARAM; PRISM's parametric
//!    engine).
//!
//! The qualitative (`Prob0`/`Prob1`) classification depends only on the
//! support graph, so it is computed once and is valid for every parameter
//! instantiation that preserves the support — the same *well-defined
//! region* assumption PARAM makes.
//!
//! # Example
//!
//! A two-state chain that succeeds with probability `0.9 + v`:
//!
//! ```
//! use tml_parametric::{ParametricDtmc, Polynomial, RationalFunction};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let params = vec!["v".to_string()];
//! let v = RationalFunction::var(1, 0);
//! let c = |x: f64| RationalFunction::constant(1, x);
//!
//! let mut b = ParametricDtmc::builder(2, params);
//! b.transition(0, 1, c(0.9).add(&v))?;          // succeed
//! b.transition(0, 0, c(0.1).sub(&v))?;          // retry
//! b.transition(1, 1, c(1.0))?;
//! b.label(1, "done")?;
//! let pdtmc = b.build()?;
//!
//! let target = pdtmc.labeling().mask("done");
//! let reach = pdtmc.reachability(&target)?;
//! // From state 0 the chain reaches "done" with probability 1 for every
//! // parameter value in the well-defined region.
//! let f = &reach[0];
//! assert!((f.eval(&[0.05])? - 1.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compiled;
mod error;
pub mod lifting;
mod pdtmc;
mod poly;
mod ratfn;

pub use compiled::{CompiledConstraintSet, CompiledPoly, CompiledRatFn};
pub use error::ParametricError;
pub use lifting::{
    BoundSense, ClassifiedBox, Interval, LiftingOptions, LiftingOutcome, OptimalityCertificate,
    RegionProblem, RegionRow, RegionSolver, RegionVerdict,
};
pub use pdtmc::{ParametricDtmc, ParametricDtmcBuilder};
pub use poly::Polynomial;
pub use ratfn::RationalFunction;
