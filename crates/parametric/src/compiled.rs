//! Compiled evaluation tapes for polynomials and rational functions.
//!
//! The symbolic representations ([`Polynomial`], [`RationalFunction`]) are
//! optimized for *algebra* — state elimination, derivatives, normalization —
//! but their `BTreeMap<Vec<u32>, f64>` term storage makes **evaluation**
//! slow: every call walks the tree, chases per-term heap allocations and
//! recomputes `x.powi(e)` from scratch. Evaluation, however, is exactly
//! what the repair hot path does: the penalty solver calls each constraint
//! thousands of times per solve (restarts × rounds × line-search steps).
//!
//! This module flattens the symbolic trees once, ahead of the solve, into
//! contiguous coefficient/exponent **tapes**:
//!
//! * [`CompiledPoly`] — a flat `(coeffs, exponents)` pair evaluated with a
//!   per-variable power table (each `x_i^e` computed once per point, by
//!   repeated multiplication, and shared across terms);
//! * [`CompiledRatFn`] — numerator and denominator tapes sharing one power
//!   table, with value-plus-gradient in a single pass via the quotient
//!   rule;
//! * [`CompiledConstraintSet`] — every constraint function of an NLP in one
//!   object, sharing a single power table per evaluation point and filling
//!   caller-provided value/Jacobian buffers without allocating.
//!
//! Power tables and gradient scratch live in fixed-size stack buffers for
//! all realistic sizes (≤ [`STACK_F64`] table entries, ≤ [`MAX_STACK_VARS`]
//! variables), so the hot path performs **no heap allocation**; larger
//! instances transparently fall back to a heap scratch.

use crate::lifting::Interval;
use crate::{ParametricError, Polynomial, RationalFunction};

/// Stack budget (in `f64`s) for the shared power table.
const STACK_F64: usize = 256;

/// Stack budget for per-term prefix/suffix products (bounds the variable
/// count served without heap fallback).
const MAX_STACK_VARS: usize = 32;

/// A polynomial flattened to a contiguous evaluation tape.
///
/// Terms are stored as a flat coefficient vector plus a CSR-style list of
/// the **nonzero-exponent** `(variable, exponent)` pairs of each monomial
/// (`offsets[t]..offsets[t+1]` addresses term `t`'s pairs). Evaluation
/// against a precomputed power table costs one load and one multiply per
/// *active* pair — no `powi`, no tree walk, no allocation, and no wasted
/// `x^0` multiplies for the variables a monomial does not mention.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPoly {
    nvars: usize,
    coeffs: Vec<f64>,
    /// `offsets[t]..offsets[t+1]` is term `t`'s pair range (len `nterms+1`).
    offsets: Vec<u32>,
    /// Variable index per active pair.
    vars: Vec<u32>,
    /// Exponent per active pair (always ≥ 1).
    exps: Vec<u32>,
    /// Precomputed power-table index `v * stride + e` per active pair, so
    /// the hot loop is one load + one multiply per pair.
    idx: Vec<u32>,
    /// The stride the `idx` tape is bound to (the height of the power
    /// table this tape evaluates against).
    stride: usize,
    max_deg: u32,
}

impl CompiledPoly {
    /// Flattens a symbolic polynomial into a tape.
    pub fn compile(p: &Polynomial) -> Self {
        let nvars = p.num_vars();
        let mut coeffs = Vec::with_capacity(p.num_terms());
        let mut offsets = Vec::with_capacity(p.num_terms() + 1);
        let mut vars = Vec::new();
        let mut exps = Vec::new();
        let mut max_deg = 0;
        offsets.push(0);
        for (exp, c) in p.terms() {
            if c == 0.0 {
                continue;
            }
            coeffs.push(c);
            for (v, &e) in exp.iter().enumerate() {
                if e > 0 {
                    vars.push(v as u32);
                    exps.push(e);
                    max_deg = max_deg.max(e);
                }
            }
            offsets.push(vars.len() as u32);
        }
        let mut tape = CompiledPoly {
            nvars,
            coeffs,
            offsets,
            vars,
            exps,
            idx: Vec::new(),
            max_deg,
            stride: 0,
        };
        tape.bind_stride(max_deg as usize + 1);
        tape
    }

    /// Rebinds the index tape to a (possibly larger, shared) power-table
    /// stride.
    ///
    /// Establishes the invariant the unchecked evaluation loops rely on:
    /// every `idx` entry is `v * stride + e` with `v < nvars` and
    /// `1 <= e <= max_deg < stride`, hence `1 <= idx[k] < nvars * stride`.
    fn bind_stride(&mut self, stride: usize) {
        debug_assert!(stride > self.max_deg as usize);
        self.stride = stride;
        self.idx.clear();
        self.idx.reserve(self.vars.len());
        for (&v, &e) in self.vars.iter().zip(&self.exps) {
            debug_assert!((v as usize) < self.nvars && e >= 1 && (e as usize) < stride);
            self.idx.push((v as usize * stride + e as usize) as u32);
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.nvars
    }

    /// Number of terms on the tape.
    pub fn num_terms(&self) -> usize {
        self.coeffs.len()
    }

    /// The largest exponent of any single variable (determines the power
    /// table height).
    pub fn max_degree(&self) -> u32 {
        self.max_deg
    }

    /// Evaluates the tape against a power table built with the tape's bound
    /// stride: `powers[v * stride + e]` holds `x_v^e`.
    #[inline]
    fn eval_with_table(&self, powers: &[f64]) -> f64 {
        let mut acc = 0.0;
        let mut lo = 0usize;
        for (&hi, &c) in self.offsets[1..].iter().zip(&self.coeffs) {
            let hi = hi as usize;
            let mut term = c;
            for &i in &self.idx[lo..hi] {
                term *= powers[i as usize];
            }
            acc += term;
            lo = hi;
        }
        acc
    }

    /// Evaluates value and gradient against a power table; the gradient is
    /// **accumulated** into `grad` (callers zero it first). Uses per-term
    /// prefix/suffix products over the active pairs, so the cost is
    /// `O(active pairs)`.
    #[inline]
    fn eval_grad_with_table(&self, powers: &[f64], grad: &mut [f64]) -> f64 {
        let mut prefix_buf = [0.0; MAX_STACK_VARS + 1];
        let mut suffix_buf = [0.0; MAX_STACK_VARS + 1];
        let mut heap: Vec<f64>;
        let (prefix, suffix): (&mut [f64], &mut [f64]) = if self.nvars <= MAX_STACK_VARS {
            (&mut prefix_buf[..self.nvars + 1], &mut suffix_buf[..self.nvars + 1])
        } else {
            heap = vec![0.0; 2 * (self.nvars + 1)];
            let (a, b) = heap.split_at_mut(self.nvars + 1);
            (a, b)
        };
        let mut acc = 0.0;
        let mut lo = 0usize;
        for (&hi, &c) in self.offsets[1..].iter().zip(&self.coeffs) {
            let hi = hi as usize;
            let row_idx = &self.idx[lo..hi];
            let k = row_idx.len();
            // prefix[j] = Π_{l<j} of the row's monomial factors; suffix[j]
            // the product from j on. Inactive variables contribute 1.
            prefix[0] = 1.0;
            for (j, &i) in row_idx.iter().enumerate() {
                prefix[j + 1] = prefix[j] * powers[i as usize];
            }
            suffix[k] = 1.0;
            for j in (0..k).rev() {
                suffix[j] = suffix[j + 1] * powers[row_idx[j] as usize];
            }
            acc += c * prefix[k];
            for (j, &i) in row_idx.iter().enumerate() {
                let e = self.exps[lo + j];
                // x_v^{e-1} sits one slot below x_v^e in the table (stored
                // exponents are always ≥ 1).
                let dmono = e as f64 * powers[i as usize - 1];
                grad[self.vars[lo + j] as usize] += c * prefix[j] * dmono * suffix[j + 1];
            }
            lo = hi;
        }
        acc
    }

    /// Evaluates at `point` (self-contained: builds its own power table).
    ///
    /// # Errors
    ///
    /// Returns [`ParametricError::PointArityMismatch`] for a wrong-sized
    /// point.
    pub fn eval(&self, point: &[f64]) -> Result<f64, ParametricError> {
        if point.len() != self.nvars {
            return Err(ParametricError::PointArityMismatch {
                expected: self.nvars,
                got: point.len(),
            });
        }
        Ok(with_power_table(self.stride, point, |powers| self.eval_with_table(powers)))
    }

    /// Bounds the tape over an interval power table (same `v * stride + e`
    /// layout as the point table, with [`Interval`] entries). The enclosure
    /// is outward-widened, so it contains every point evaluation of
    /// [`eval_with_table`](Self::eval_with_table) over the box the table
    /// was built from — including that evaluation's own rounding error.
    #[inline]
    fn bound_with_table(&self, powers: &[Interval]) -> Interval {
        let mut acc = Interval::point(0.0);
        let mut lo = 0usize;
        for (&hi, &c) in self.offsets[1..].iter().zip(&self.coeffs) {
            let hi = hi as usize;
            let mut term = Interval::point(c);
            for &i in &self.idx[lo..hi] {
                term = term.mul(powers[i as usize]);
            }
            acc = acc.add(term);
            lo = hi;
        }
        acc
    }

    /// Bounds the polynomial over a parameter box (self-contained: builds
    /// its own interval power table).
    ///
    /// # Errors
    ///
    /// Returns [`ParametricError::PointArityMismatch`] for a wrong-sized
    /// box.
    pub fn bound(&self, bbox: &[(f64, f64)]) -> Result<Interval, ParametricError> {
        if bbox.len() != self.nvars {
            return Err(ParametricError::PointArityMismatch {
                expected: self.nvars,
                got: bbox.len(),
            });
        }
        let powers = interval_power_table(self.stride, bbox);
        Ok(self.bound_with_table(&powers))
    }
}

/// Builds an interval power table: `powers[v * stride + e]` encloses
/// `x_v^e` for every `x_v` in the `v`-th box range (sign-aware, see
/// [`Interval::pow`]).
fn interval_power_table(stride: usize, bbox: &[(f64, f64)]) -> Vec<Interval> {
    let mut powers = vec![Interval::point(1.0); bbox.len() * stride];
    for (row, &(lo, hi)) in powers.chunks_exact_mut(stride).zip(bbox) {
        let x = Interval::new(lo, hi);
        for (e, slot) in row.iter_mut().enumerate() {
            *slot = x.pow(e as u32);
        }
    }
    powers
}

/// Small-tier stack budget: most repair problems have a handful of
/// parameters and modest degrees, and zero-initializing the full
/// [`STACK_F64`] buffer on every evaluation would dominate the cost of
/// small tapes.
const STACK_F64_SMALL: usize = 64;

/// Builds a power table for `point` with the given stride — in a
/// tier-sized stack buffer when it fits, on the heap otherwise — and runs
/// `body` against it.
#[inline]
fn with_power_table<R>(stride: usize, point: &[f64], body: impl FnOnce(&[f64]) -> R) -> R {
    let n = point.len() * stride;
    if n <= STACK_F64_SMALL {
        let mut buf = [0.0; STACK_F64_SMALL];
        fill_power_table(&mut buf[..n], stride, point);
        body(&buf[..n])
    } else if n <= STACK_F64 {
        let mut buf = [0.0; STACK_F64];
        fill_power_table(&mut buf[..n], stride, point);
        body(&buf[..n])
    } else {
        let mut buf = vec![0.0; n];
        fill_power_table(&mut buf, stride, point);
        body(&buf)
    }
}

/// Fills `powers[v * stride + e] = point[v]^e` by repeated multiplication.
/// `powers.len()` must equal `point.len() * stride`.
#[inline]
fn fill_power_table(powers: &mut [f64], stride: usize, point: &[f64]) {
    debug_assert_eq!(powers.len(), point.len() * stride);
    for (row, &x) in powers.chunks_exact_mut(stride).zip(point) {
        let mut p = 1.0;
        for slot in row.iter_mut() {
            *slot = p;
            p *= x;
        }
    }
}

/// A rational function compiled to numerator/denominator tapes sharing one
/// power table.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledRatFn {
    num: CompiledPoly,
    den: CompiledPoly,
    nvars: usize,
    stride: usize,
}

impl CompiledRatFn {
    /// Compiles a symbolic rational function.
    pub fn compile(f: &RationalFunction) -> Self {
        let num = CompiledPoly::compile(f.numerator());
        let den = CompiledPoly::compile(f.denominator());
        let stride = num.max_degree().max(den.max_degree()) as usize + 1;
        let mut c = CompiledRatFn { nvars: f.num_vars(), num, den, stride };
        c.bind_stride(stride);
        c
    }

    /// Rebinds both member tapes to a (possibly larger, shared) stride.
    fn bind_stride(&mut self, stride: usize) {
        self.stride = stride;
        self.num.bind_stride(stride);
        self.den.bind_stride(stride);
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.nvars
    }

    /// Evaluates at `point`. Returns `NaN` at poles of the denominator (the
    /// optimizer treats non-finite constraint values as infinitely
    /// violated, which matches the repair semantics of leaving the
    /// well-defined parameter region).
    ///
    /// # Errors
    ///
    /// Returns [`ParametricError::PointArityMismatch`] for a wrong-sized
    /// point.
    pub fn eval(&self, point: &[f64]) -> Result<f64, ParametricError> {
        self.with_table(point, |this, powers| {
            let d = this.den.eval_with_table(powers);
            if d.abs() < 1e-300 {
                return f64::NAN;
            }
            this.num.eval_with_table(powers) / d
        })
    }

    /// Evaluates value and gradient in one pass (quotient rule), writing
    /// the gradient into `grad`. Returns `NaN`s at denominator poles.
    ///
    /// # Errors
    ///
    /// [`ParametricError::PointArityMismatch`] if `point` or `grad` has the
    /// wrong length.
    pub fn eval_grad(&self, point: &[f64], grad: &mut [f64]) -> Result<f64, ParametricError> {
        if grad.len() != self.nvars {
            return Err(ParametricError::PointArityMismatch {
                expected: self.nvars,
                got: grad.len(),
            });
        }
        self.with_table(point, |this, powers| this.value_and_grad_with_table(powers, grad))
    }

    /// Quotient-rule value+gradient against a caller-provided power table.
    #[inline]
    fn value_and_grad_with_table(&self, powers: &[f64], grad: &mut [f64]) -> f64 {
        let mut gn_buf = [0.0; MAX_STACK_VARS];
        let mut gd_buf = [0.0; MAX_STACK_VARS];
        let mut heap: Vec<f64>;
        let (gn, gd): (&mut [f64], &mut [f64]) = if self.nvars <= MAX_STACK_VARS {
            (&mut gn_buf[..self.nvars], &mut gd_buf[..self.nvars])
        } else {
            heap = vec![0.0; 2 * self.nvars];
            let (a, b) = heap.split_at_mut(self.nvars);
            (a, b)
        };
        gn.fill(0.0);
        gd.fill(0.0);
        let n = self.num.eval_grad_with_table(powers, gn);
        let d = self.den.eval_grad_with_table(powers, gd);
        if d.abs() < 1e-300 {
            grad.fill(f64::NAN);
            return f64::NAN;
        }
        let inv_d2 = 1.0 / (d * d);
        for ((g, &dn), &dd) in grad.iter_mut().zip(gn.iter()).zip(gd.iter()) {
            *g = (dn * d - n * dd) * inv_d2;
        }
        n / d
    }

    /// Builds the shared power table (stack-allocated when small) and runs
    /// `body` against it.
    #[inline]
    fn with_table<R>(
        &self,
        point: &[f64],
        body: impl FnOnce(&Self, &[f64]) -> R,
    ) -> Result<R, ParametricError> {
        if point.len() != self.nvars {
            return Err(ParametricError::PointArityMismatch {
                expected: self.nvars,
                got: point.len(),
            });
        }
        Ok(with_power_table(self.stride, point, |powers| body(self, powers)))
    }

    /// Bounds the rational function over a parameter box. A denominator
    /// enclosure touching zero yields [`Interval::whole`] — the sound
    /// counterpart of the point evaluator's `NaN` at poles.
    ///
    /// # Errors
    ///
    /// Returns [`ParametricError::PointArityMismatch`] for a wrong-sized
    /// box.
    pub fn bound(&self, bbox: &[(f64, f64)]) -> Result<Interval, ParametricError> {
        if bbox.len() != self.nvars {
            return Err(ParametricError::PointArityMismatch {
                expected: self.nvars,
                got: bbox.len(),
            });
        }
        let powers = interval_power_table(self.stride, bbox);
        Ok(self.bound_with_table(&powers))
    }

    /// Quotient bound against a caller-provided interval power table.
    #[inline]
    fn bound_with_table(&self, powers: &[Interval]) -> Interval {
        self.num.bound_with_table(powers).div(self.den.bound_with_table(powers))
    }
}

/// Every constraint function of an NLP compiled into one object.
///
/// All member functions share a single power table per evaluation point:
/// `x_i^e` is computed once and reused by every numerator and denominator
/// of every constraint — the dominant saving when, as in Model Repair, all
/// constraints are rational functions of the same few repair parameters.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompiledConstraintSet {
    nvars: usize,
    stride: usize,
    fns: Vec<CompiledRatFn>,
}

impl CompiledConstraintSet {
    /// Compiles a set of rational constraint functions.
    ///
    /// # Errors
    ///
    /// Returns [`ParametricError::ArityMismatch`] if the functions disagree
    /// on the number of variables.
    pub fn compile(fns: &[RationalFunction]) -> Result<Self, ParametricError> {
        let _span = tml_telemetry::span!("parametric.compile_tapes", functions = fns.len());
        tml_telemetry::counter!("parametric.tape.compiles", fns.len());
        let nvars = fns.first().map(RationalFunction::num_vars).unwrap_or(0);
        let mut compiled = Vec::with_capacity(fns.len());
        let mut stride = 1;
        for f in fns {
            if f.num_vars() != nvars {
                return Err(ParametricError::ArityMismatch { left: nvars, right: f.num_vars() });
            }
            let c = CompiledRatFn::compile(f);
            stride = stride.max(c.stride);
            compiled.push(c);
        }
        // Every member uses the set-wide stride so one table serves all.
        for c in &mut compiled {
            c.bind_stride(stride);
        }
        Ok(CompiledConstraintSet { nvars, stride, fns: compiled })
    }

    /// Number of constraint functions.
    pub fn len(&self) -> usize {
        self.fns.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.fns.is_empty()
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.nvars
    }

    /// Evaluates every constraint at `point` in one pass, filling `values`
    /// (length [`len`](Self::len)). Pole rows are filled with `NaN`.
    ///
    /// # Errors
    ///
    /// [`ParametricError::PointArityMismatch`] on wrong-sized `point` or
    /// `values`.
    pub fn eval_all(&self, point: &[f64], values: &mut [f64]) -> Result<(), ParametricError> {
        if values.len() != self.fns.len() {
            return Err(ParametricError::PointArityMismatch {
                expected: self.fns.len(),
                got: values.len(),
            });
        }
        self.with_table(point, |this, powers| {
            for (f, out) in this.fns.iter().zip(values.iter_mut()) {
                let d = f.den.eval_with_table(powers);
                *out = if d.abs() < 1e-300 { f64::NAN } else { f.num.eval_with_table(powers) / d };
            }
        })
    }

    /// Evaluates every constraint's value **and** gradient at `point` in
    /// one pass. `jacobian` is row-major `len() × num_vars()`.
    ///
    /// # Errors
    ///
    /// [`ParametricError::PointArityMismatch`] on wrong-sized buffers.
    pub fn eval_all_grad(
        &self,
        point: &[f64],
        values: &mut [f64],
        jacobian: &mut [f64],
    ) -> Result<(), ParametricError> {
        if values.len() != self.fns.len() || jacobian.len() != self.fns.len() * self.nvars {
            return Err(ParametricError::PointArityMismatch {
                expected: self.fns.len() * self.nvars,
                got: jacobian.len(),
            });
        }
        self.with_table(point, |this, powers| {
            for (i, (f, out)) in this.fns.iter().zip(values.iter_mut()).enumerate() {
                let row = &mut jacobian[i * this.nvars..(i + 1) * this.nvars];
                *out = f.value_and_grad_with_table(powers, row);
            }
        })
    }

    /// Bounds every constraint over a parameter box in one pass, sharing a
    /// single interval power table, filling `bounds` (length
    /// [`len`](Self::len)). Rows whose denominator enclosure touches zero
    /// are filled with [`Interval::whole`].
    ///
    /// # Errors
    ///
    /// [`ParametricError::PointArityMismatch`] on wrong-sized `bbox` or
    /// `bounds`.
    pub fn bound_all(
        &self,
        bbox: &[(f64, f64)],
        bounds: &mut [Interval],
    ) -> Result<(), ParametricError> {
        if bounds.len() != self.fns.len() {
            return Err(ParametricError::PointArityMismatch {
                expected: self.fns.len(),
                got: bounds.len(),
            });
        }
        if bbox.len() != self.nvars {
            return Err(ParametricError::PointArityMismatch {
                expected: self.nvars,
                got: bbox.len(),
            });
        }
        let powers = interval_power_table(self.stride, bbox);
        for (f, out) in self.fns.iter().zip(bounds.iter_mut()) {
            *out = f.bound_with_table(&powers);
        }
        Ok(())
    }

    #[inline]
    fn with_table<R>(
        &self,
        point: &[f64],
        body: impl FnOnce(&Self, &[f64]) -> R,
    ) -> Result<R, ParametricError> {
        if point.len() != self.nvars {
            return Err(ParametricError::PointArityMismatch {
                expected: self.nvars,
                got: point.len(),
            });
        }
        Ok(with_power_table(self.stride, point, |powers| body(self, powers)))
    }
}

impl Polynomial {
    /// Flattens this polynomial into an evaluation tape (see
    /// [`CompiledPoly`]).
    pub fn compile(&self) -> CompiledPoly {
        CompiledPoly::compile(self)
    }
}

impl RationalFunction {
    /// Flattens this rational function into an evaluation tape (see
    /// [`CompiledRatFn`]).
    pub fn compile(&self) -> CompiledRatFn {
        CompiledRatFn::compile(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_poly() -> Polynomial {
        // p(x, y) = 3 x²y + 2 y³ − 1.5 x + 4
        Polynomial::from_terms(
            2,
            &[(vec![2, 1], 3.0), (vec![0, 3], 2.0), (vec![1, 0], -1.5), (vec![0, 0], 4.0)],
        )
        .unwrap()
    }

    #[test]
    fn compiled_poly_matches_interpreted() {
        let p = sample_poly();
        let c = p.compile();
        assert_eq!(c.num_terms(), 4);
        assert_eq!(c.max_degree(), 3);
        for pt in [[0.0, 0.0], [1.0, 1.0], [-2.5, 0.75], [3.0, -1.0]] {
            let a = p.eval(&pt).unwrap();
            let b = c.eval(&pt).unwrap();
            assert!((a - b).abs() <= 1e-12 * (1.0 + a.abs()), "{a} vs {b} at {pt:?}");
        }
        assert!(c.eval(&[1.0]).is_err());
    }

    #[test]
    fn zero_polynomial_compiles_to_empty_tape() {
        let z = Polynomial::zero(3).compile();
        assert_eq!(z.num_terms(), 0);
        assert_eq!(z.eval(&[1.0, 2.0, 3.0]).unwrap(), 0.0);
    }

    #[test]
    fn compiled_ratfn_matches_interpreted_value_and_grad() {
        // f = (1 + v₀ v₁) / (1 + v₀² + 0.5 v₁²): denominator never vanishes.
        let v0 = RationalFunction::var(2, 0);
        let v1 = RationalFunction::var(2, 1);
        let one = RationalFunction::one_rf(2);
        let num = one.add(&v0.mul(&v1));
        let den = one.add(&v0.mul(&v0)).add(&v1.mul(&v1).mul(&RationalFunction::constant(2, 0.5)));
        let f = num.div(&den).unwrap();
        let c = f.compile();
        assert_eq!(c.num_vars(), 2);
        for pt in [[0.0, 0.0], [0.3, -0.4], [-1.0, 2.0]] {
            let a = f.eval(&pt).unwrap();
            let b = c.eval(&pt).unwrap();
            assert!((a - b).abs() < 1e-12 * (1.0 + a.abs()));
            let ga = f.grad(&pt).unwrap();
            let mut gb = [0.0; 2];
            let val = c.eval_grad(&pt, &mut gb).unwrap();
            assert!((val - a).abs() < 1e-12 * (1.0 + a.abs()));
            for (x, y) in ga.iter().zip(&gb) {
                assert!((x - y).abs() < 1e-10 * (1.0 + x.abs()), "{x} vs {y} at {pt:?}");
            }
        }
    }

    #[test]
    fn pole_yields_nan_not_error() {
        // f = 1 / v
        let f = RationalFunction::one_rf(1).div(&RationalFunction::var(1, 0)).unwrap();
        let c = f.compile();
        assert!(c.eval(&[0.0]).unwrap().is_nan());
        let mut g = [0.0];
        assert!(c.eval_grad(&[0.0], &mut g).unwrap().is_nan());
        assert!(g[0].is_nan());
    }

    #[test]
    fn constraint_set_one_pass_matches_per_function_eval() {
        let v = RationalFunction::var(2, 0);
        let w = RationalFunction::var(2, 1);
        let one = RationalFunction::one_rf(2);
        let fns = vec![one.add(&v), v.mul(&w).sub(&one), one.div(&one.add(&v.mul(&v))).unwrap()];
        let set = CompiledConstraintSet::compile(&fns).unwrap();
        assert_eq!(set.len(), 3);
        assert!(!set.is_empty());
        let pt = [0.4, -0.7];
        let mut vals = [0.0; 3];
        set.eval_all(&pt, &mut vals).unwrap();
        for (f, &got) in fns.iter().zip(&vals) {
            let want = f.eval(&pt).unwrap();
            assert!((want - got).abs() < 1e-12 * (1.0 + want.abs()));
        }
        let mut jac = [0.0; 6];
        set.eval_all_grad(&pt, &mut vals, &mut jac).unwrap();
        for (i, f) in fns.iter().enumerate() {
            let g = f.grad(&pt).unwrap();
            for (v, (want, got)) in g.iter().zip(&jac[i * 2..(i + 1) * 2]).enumerate() {
                assert!((want - got).abs() < 1e-10, "fn {i} var {v}: {want} vs {got}");
            }
        }
        // Buffer shape errors.
        assert!(set.eval_all(&pt, &mut [0.0; 2]).is_err());
        assert!(set.eval_all(&[0.1], &mut vals).is_err());
        assert!(set.eval_all_grad(&pt, &mut vals, &mut [0.0; 5]).is_err());
    }

    #[test]
    fn constraint_set_rejects_mixed_arity() {
        let fns = vec![RationalFunction::var(1, 0), RationalFunction::var(2, 0)];
        assert!(CompiledConstraintSet::compile(&fns).is_err());
    }

    #[test]
    fn empty_constraint_set() {
        let set = CompiledConstraintSet::compile(&[]).unwrap();
        assert!(set.is_empty());
        set.eval_all(&[], &mut []).unwrap();
    }

    #[test]
    fn heap_fallback_for_large_instances() {
        // 40 variables exceeds MAX_STACK_VARS; high degree exceeds the
        // stack power-table budget. Exercise both fallbacks.
        let nv = 40;
        let mut terms = Vec::new();
        for i in 0..nv {
            let mut e = vec![0u32; nv];
            e[i] = 9;
            terms.push((e, (i + 1) as f64));
        }
        let p = Polynomial::from_terms(nv, &terms).unwrap();
        let c = p.compile();
        let pt: Vec<f64> = (0..nv).map(|i| 1.0 + 0.01 * i as f64).collect();
        let a = p.eval(&pt).unwrap();
        let b = c.eval(&pt).unwrap();
        assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()));
        let f = RationalFunction::from_poly(p.clone());
        let cf = f.compile();
        let mut g = vec![0.0; nv];
        let val = cf.eval_grad(&pt, &mut g).unwrap();
        assert!((val - a).abs() < 1e-9 * (1.0 + a.abs()));
        let sym = f.grad(&pt).unwrap();
        for (x, y) in sym.iter().zip(&g) {
            assert!((x - y).abs() < 1e-7 * (1.0 + x.abs()));
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Random polynomials over 4 variables with exponents up to 4.
    fn arb_poly4() -> impl Strategy<Value = Polynomial> {
        proptest::collection::vec((proptest::collection::vec(0u32..5, 4), -10.0_f64..10.0), 0..8)
            .prop_map(|terms| Polynomial::from_terms(4, &terms).unwrap())
    }

    proptest! {
        /// Tape evaluation matches the interpreted walk to 1e-12 (relative).
        #[test]
        fn compiled_poly_eval_matches(
            p in arb_poly4(),
            pt in proptest::collection::vec(-2.0_f64..2.0, 4),
        ) {
            let a = p.eval(&pt).unwrap();
            let b = p.compile().eval(&pt).unwrap();
            prop_assert!((a - b).abs() <= 1e-12 * (1.0 + a.abs()), "{a} vs {b}");
        }

        /// Tape value+gradient matches the interpreted rational function to
        /// 1e-12 (relative) away from poles.
        #[test]
        fn compiled_ratfn_eval_and_grad_match(
            num in arb_poly4(),
            den_sq in arb_poly4(),
            pt in proptest::collection::vec(-1.5_f64..1.5, 4),
        ) {
            // den = 1 + den_sq² is bounded away from zero everywhere.
            let den = Polynomial::constant(4, 1.0).add(&den_sq.mul(&den_sq));
            let f = RationalFunction::new(num, den).unwrap();
            let c = f.compile();
            let a = f.eval(&pt).unwrap();
            let b = c.eval(&pt).unwrap();
            prop_assert!((a - b).abs() <= 1e-12 * (1.0 + a.abs()), "{a} vs {b}");
            let ga = f.grad(&pt).unwrap();
            let mut gb = [0.0; 4];
            let val = c.eval_grad(&pt, &mut gb).unwrap();
            prop_assert!((val - a).abs() <= 1e-12 * (1.0 + a.abs()));
            for (x, y) in ga.iter().zip(&gb) {
                prop_assert!((x - y).abs() <= 1e-9 * (1.0 + x.abs()), "{x} vs {y}");
            }
        }
    }
}
