//! Parameter lifting: sound interval bounds and branch-and-refine region
//! verification over parameter boxes.
//!
//! The repair pipelines search a box `B ⊂ ℝⁿ` of perturbation parameters
//! for the cheapest point satisfying rational constraints produced by
//! parametric model checking. The penalty solver explores `B` point by
//! point; *parameter lifting* (Češka et al., "Model Repair Revamped";
//! Quatmann et al., "Parameter Synthesis for Markov Models") instead
//! bounds each constraint over whole sub-boxes at once:
//!
//! 1. evaluate the compiled constraint tapes in **interval arithmetic**
//!    over a box (see [`CompiledRatFn::bound`]), yielding an enclosure of
//!    every value the constraint takes on the box;
//! 2. classify the box: **all-sat** (every point satisfies every
//!    constraint), **all-violating** (some constraint is violated
//!    everywhere) or **unknown**;
//! 3. branch-and-refine: split unknown boxes along their widest dimension
//!    and repeat, pruning all-violating regions without ever sampling
//!    them.
//!
//! Every enclosure is *outward-widened*, so the verdicts are sound with
//! respect to the exact `f64` tape evaluation: an `all-sat` box contains
//! no violating point and an `all-violating` box contains no satisfying
//! point (both up to the widening, which strictly contains the tape's own
//! rounding error). The surviving near-optimal boxes seed the penalty
//! solver as warm starts, and the objective's interval lower bound over
//! the surviving region yields an [`OptimalityCertificate`].
//!
//! Determinism: the per-round fan-out runs on the vendored rayon layer,
//! whose `map`/`collect` reassemble results in input order. All merging
//! happens serially in that order, so the classified region list is
//! **bitwise identical** across thread counts.

use rayon::prelude::*;
use tml_numerics::{Budget, Exhaustion};
use tml_telemetry::{counter, span};

use crate::{CompiledConstraintSet, CompiledRatFn, ParametricError};

/// Relative outward widening applied after every interval operation
/// (a few ulps — strictly wider than one rounding error of the point
/// evaluation the enclosure must contain).
const OUT: f64 = 4.0 * f64::EPSILON;

/// Absolute outward widening so enclosures of values near zero still have
/// positive slack.
const TINY: f64 = 1e-300;

/// Denominator enclosures closer to zero than this are treated as
/// containing a pole (matches the point evaluator's `|den| < 1e-300`
/// guard).
const POLE_GUARD: f64 = 1e-300;

#[inline]
fn widen_down(x: f64, steps: f64) -> f64 {
    if !x.is_finite() {
        return x;
    }
    x - x.abs() * (OUT * steps) - TINY
}

#[inline]
fn widen_up(x: f64, steps: f64) -> f64 {
    if !x.is_finite() {
        return x;
    }
    x + x.abs() * (OUT * steps) + TINY
}

/// A closed interval `[lo, hi]`, the value enclosure used by parameter
/// lifting.
///
/// Invariant: `lo <= hi` or the interval is [`Interval::whole`] (the
/// `[-∞, ∞]` enclosure used whenever soundness cannot be guaranteed, e.g.
/// at denominator poles or after a NaN product).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
}

// Plain methods rather than the std `Add`/`Mul`/`Div` traits: interval
// arithmetic here is deliberately explicit at every call site (each
// operation widens outward), and operator sugar would hide that.
#[allow(clippy::should_implement_trait)]
impl Interval {
    /// The interval `[lo, hi]`. Returns [`Interval::whole`] on NaN or
    /// inverted endpoints, so a malformed input degrades to a sound (if
    /// useless) enclosure rather than an unsound one.
    pub fn new(lo: f64, hi: f64) -> Self {
        if lo.is_nan() || hi.is_nan() || lo > hi {
            return Self::whole();
        }
        Interval { lo, hi }
    }

    /// The degenerate interval `[x, x]`.
    pub fn point(x: f64) -> Self {
        Self::new(x, x)
    }

    /// The `[-∞, ∞]` enclosure.
    pub fn whole() -> Self {
        Interval { lo: f64::NEG_INFINITY, hi: f64::INFINITY }
    }

    /// Whether this is the `[-∞, ∞]` enclosure.
    pub fn is_whole(&self) -> bool {
        self.lo == f64::NEG_INFINITY && self.hi == f64::INFINITY
    }

    /// Whether `x` lies in the interval (every NaN is "contained" by the
    /// whole interval only).
    pub fn contains(&self, x: f64) -> bool {
        if x.is_nan() {
            return self.is_whole();
        }
        self.lo <= x && x <= self.hi
    }

    /// The width `hi − lo` (infinite for the whole interval).
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Outward-widened interval sum.
    pub fn add(self, rhs: Self) -> Self {
        Self::new(widen_down(self.lo + rhs.lo, 1.0), widen_up(self.hi + rhs.hi, 1.0))
    }

    /// Outward-widened interval product. Any NaN endpoint product (e.g.
    /// `0 · ∞`) degrades to the whole interval.
    pub fn mul(self, rhs: Self) -> Self {
        let p = [self.lo * rhs.lo, self.lo * rhs.hi, self.hi * rhs.lo, self.hi * rhs.hi];
        if p.iter().any(|x| x.is_nan()) {
            return Self::whole();
        }
        let lo = p.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = p.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self::new(widen_down(lo, 1.0), widen_up(hi, 1.0))
    }

    /// Outward-widened product with a scalar.
    pub fn scale(self, c: f64) -> Self {
        self.mul(Self::point(c))
    }

    /// Outward-widened interval reciprocal; the whole interval when the
    /// operand comes within [`POLE_GUARD`] of zero (matching the point
    /// evaluator's pole semantics).
    pub fn recip(self) -> Self {
        if self.lo <= POLE_GUARD && self.hi >= -POLE_GUARD {
            return Self::whole();
        }
        Self::new(widen_down(1.0 / self.hi, 1.0), widen_up(1.0 / self.lo, 1.0))
    }

    /// Outward-widened interval quotient (`self · rhs⁻¹`).
    pub fn div(self, rhs: Self) -> Self {
        self.mul(rhs.recip())
    }

    /// Sound enclosure of `xᵉ` for `x ∈ [lo, hi]` (sign-aware: tight for
    /// monotone ranges, `[0, max|x|ᵉ]` for even powers straddling zero).
    pub fn pow(self, e: u32) -> Self {
        if e == 0 {
            return Self::point(1.0);
        }
        let steps = e as f64;
        let (lo, hi) = (self.lo, self.hi);
        if lo.is_nan() || hi.is_nan() {
            return Self::whole();
        }
        let (plo, phi) = if lo >= 0.0 {
            (lo.powi(e as i32), hi.powi(e as i32))
        } else if hi <= 0.0 {
            if e % 2 == 1 {
                (lo.powi(e as i32), hi.powi(e as i32))
            } else {
                (hi.powi(e as i32), lo.powi(e as i32))
            }
        } else if e % 2 == 1 {
            (lo.powi(e as i32), hi.powi(e as i32))
        } else {
            (0.0, lo.abs().max(hi.abs()).powi(e as i32))
        };
        Self::new(widen_down(plo, steps), widen_up(phi, steps))
    }
}

/// The sense of one lifted constraint row `f(v) ⋈ rhs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundSense {
    /// `f(v) ≤ rhs`.
    Le,
    /// `f(v) ≥ rhs`.
    Ge,
}

/// One constraint row of a [`RegionProblem`]: the `i`-th compiled function
/// compared against `rhs` in the given sense. Callers fold any
/// satisfaction margin into `rhs` before lifting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionRow {
    /// Comparison sense.
    pub sense: BoundSense,
    /// Right-hand side (margins already applied).
    pub rhs: f64,
}

impl RegionRow {
    /// A row with the given sense and (margin-adjusted) right-hand side.
    pub fn new(sense: BoundSense, rhs: f64) -> Self {
        RegionRow { sense, rhs }
    }
}

/// Verdict of region verification on one box.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionVerdict {
    /// Every point of the box satisfies every constraint.
    AllSat,
    /// Some constraint is violated at every point of the box.
    AllViolating,
    /// The interval bounds decide neither way at this refinement depth.
    Unknown,
}

/// A region-verification problem: compiled constraint tapes, one
/// [`RegionRow`] per tape, and an optional objective whose interval lower
/// bound over surviving boxes feeds the optimality certificate.
#[derive(Debug, Clone)]
pub struct RegionProblem {
    set: CompiledConstraintSet,
    rows: Vec<RegionRow>,
    objective: Option<CompiledRatFn>,
}

impl RegionProblem {
    /// A problem over `set` with one row per constraint function.
    ///
    /// # Errors
    ///
    /// [`ParametricError::PointArityMismatch`] if `rows` and `set`
    /// disagree on the row count.
    pub fn new(set: CompiledConstraintSet, rows: Vec<RegionRow>) -> Result<Self, ParametricError> {
        if rows.len() != set.len() {
            return Err(ParametricError::PointArityMismatch {
                expected: set.len(),
                got: rows.len(),
            });
        }
        Ok(RegionProblem { set, rows, objective: None })
    }

    /// Attaches an objective tape; its interval lower bound over every
    /// non-violating leaf becomes [`LiftingOutcome::feasible_lower_bound`].
    #[must_use]
    pub fn with_objective(mut self, objective: CompiledRatFn) -> Self {
        self.objective = Some(objective);
        self
    }

    /// Number of parameters.
    pub fn num_vars(&self) -> usize {
        self.set.num_vars()
    }

    /// Number of constraint rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Classifies one box and (for non-violating boxes with an objective)
    /// bounds the objective over it. Violating boxes report the objective
    /// as `[+∞, +∞]` — they cannot contain the constrained optimum.
    ///
    /// # Errors
    ///
    /// [`ParametricError::PointArityMismatch`] on a wrong-sized box.
    pub fn classify(
        &self,
        bbox: &[(f64, f64)],
    ) -> Result<(RegionVerdict, Interval), ParametricError> {
        let mut bounds = vec![Interval::whole(); self.set.len()];
        self.set.bound_all(bbox, &mut bounds)?;
        let mut all_sat = true;
        for (b, row) in bounds.iter().zip(&self.rows) {
            let (sat, violating) = match row.sense {
                BoundSense::Le => (b.hi <= row.rhs, b.lo > row.rhs),
                BoundSense::Ge => (b.lo >= row.rhs, b.hi < row.rhs),
            };
            if violating {
                return Ok((
                    RegionVerdict::AllViolating,
                    Interval::new(f64::INFINITY, f64::INFINITY),
                ));
            }
            all_sat &= sat;
        }
        let verdict = if all_sat { RegionVerdict::AllSat } else { RegionVerdict::Unknown };
        let obj = match &self.objective {
            Some(obj) => obj.bound(bbox)?,
            None => Interval::whole(),
        };
        Ok((verdict, obj))
    }
}

/// Options for the branch-and-refine [`RegionSolver`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiftingOptions {
    /// Cap on the total number of boxes classified; refinement beyond the
    /// cap leaves boxes `Unknown`.
    pub max_boxes: usize,
    /// Cap on the refinement depth of any single box.
    pub max_depth: usize,
    /// Optimality-gap tolerance of the certificate built on top of the
    /// lifted bounds.
    pub epsilon: f64,
    /// Classify the boxes of each refinement round on parallel threads.
    /// Merging is serial and in input order either way, so the result is
    /// bitwise identical for both settings.
    pub parallel: bool,
}

impl Default for LiftingOptions {
    fn default() -> Self {
        LiftingOptions { max_boxes: 512, max_depth: 12, epsilon: 1e-3, parallel: true }
    }
}

/// One classified leaf box of a branch-and-refine run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifiedBox {
    /// The box, as per-parameter `(lo, hi)` bounds.
    pub bounds: Vec<(f64, f64)>,
    /// The verdict on the box.
    pub verdict: RegionVerdict,
    /// Interval lower bound of the objective over the box
    /// (`-∞` without an objective, `+∞` for all-violating boxes).
    pub objective_lo: f64,
    /// Refinement depth at which the box became a leaf (0 = the root box).
    pub depth: usize,
}

impl ClassifiedBox {
    /// The box center — the warm-start point handed to the penalty solver.
    pub fn center(&self) -> Vec<f64> {
        self.bounds.iter().map(|&(lo, hi)| 0.5 * (lo + hi)).collect()
    }
}

/// Result of a branch-and-refine region verification.
#[derive(Debug, Clone, PartialEq)]
pub struct LiftingOutcome {
    /// Every leaf box in deterministic (best-first discovery) order.
    pub boxes: Vec<ClassifiedBox>,
    /// Number of all-sat leaves.
    pub sat_boxes: usize,
    /// Number of all-violating (pruned) leaves.
    pub violating_boxes: usize,
    /// Number of unknown leaves.
    pub unknown_boxes: usize,
    /// Why refinement stopped early, if the [`Budget`] ran out. Unclassified
    /// boxes are reported as `Unknown` leaves — the partial answer stays
    /// sound.
    pub exhausted: Option<Exhaustion>,
    /// Budget units charged: one per box plus one per constraint row (plus
    /// one for the objective bound), the same unit the penalty solver
    /// charges per merit evaluation, so lifting and penalty spend are
    /// directly comparable.
    pub evaluations: usize,
    /// Pointwise-screened warm-start candidates, cheapest objective first:
    /// corners and centers of the cheapest non-violating leaves that pass
    /// an exact pointwise evaluation of every constraint row, ranked by the
    /// exact objective tape. Heuristically (not soundly) feasible — the
    /// screen uses point values, not interval enclosures. Empty without an
    /// objective or when no scanned point passes the screen.
    pub candidates: Vec<Vec<f64>>,
}

impl LiftingOutcome {
    /// Whether the whole initial box was proven violating: every leaf is
    /// all-violating and refinement ran to completion. A sound
    /// infeasibility proof (for the lifted rows).
    pub fn all_violating(&self) -> bool {
        self.exhausted.is_none()
            && self.sat_boxes == 0
            && self.unknown_boxes == 0
            && self.violating_boxes > 0
    }

    /// Interval lower bound of the objective over every non-violating leaf
    /// — a sound lower bound on the objective over the feasible set
    /// (`+∞` when every leaf is violating, `-∞` without an objective).
    pub fn feasible_lower_bound(&self) -> f64 {
        self.boxes
            .iter()
            .filter(|b| b.verdict != RegionVerdict::AllViolating)
            .map(|b| b.objective_lo)
            .fold(f64::INFINITY, f64::min)
    }

    /// Up to `k` warm-start points. With an objective, the pointwise-ranked
    /// [`LiftingOutcome::candidates`] (screened leaf corners, cheapest
    /// first) win — they sit on the constraint boundary where the
    /// constrained optimum lives. Otherwise: the cheapest all-sat box first
    /// (a guaranteed-feasible start), then the remaining non-violating
    /// boxes by ascending objective lower bound. The order is deterministic
    /// (stable sort over the deterministic leaf list).
    pub fn warm_starts(&self, k: usize) -> Vec<Vec<f64>> {
        if !self.candidates.is_empty() {
            return self.candidates.iter().take(k).cloned().collect();
        }
        let mut sat: Vec<&ClassifiedBox> =
            self.boxes.iter().filter(|b| b.verdict == RegionVerdict::AllSat).collect();
        sat.sort_by(|a, b| a.objective_lo.total_cmp(&b.objective_lo));
        let mut rest: Vec<&ClassifiedBox> =
            self.boxes.iter().filter(|b| b.verdict == RegionVerdict::Unknown).collect();
        rest.extend(sat.iter().skip(1).copied());
        rest.sort_by(|a, b| a.objective_lo.total_cmp(&b.objective_lo));
        let best_sat = sat.first().copied();
        best_sat.into_iter().chain(rest).take(k).map(ClassifiedBox::center).collect()
    }
}

/// A soundness certificate for a repair: the verified repair cost
/// (`upper_bound`) sits within `epsilon` of the interval lower bound on
/// the cost over the entire surviving feasible region (`lower_bound`), so
/// no admissible repair can be more than `epsilon` cheaper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimalityCertificate {
    /// Sound lower bound on the optimal cost over the feasible region.
    pub lower_bound: f64,
    /// Cost of the returned (verified) repair.
    pub upper_bound: f64,
    /// The gap tolerance the certificate was checked against.
    pub epsilon: f64,
    /// Whether `upper_bound − lower_bound ≤ epsilon` **and** refinement ran
    /// to completion (no budget exhaustion). When `false` the bounds are
    /// still valid, just not conclusive.
    pub certified: bool,
}

impl OptimalityCertificate {
    /// The optimality gap `upper_bound − lower_bound`.
    pub fn gap(&self) -> f64 {
        self.upper_bound - self.lower_bound
    }
}

/// Branch-and-refine region solver.
///
/// Classifies the initial box, splits `Unknown` boxes along their widest
/// dimension (lowest index wins ties) and repeats breadth-first until
/// every box is decided or the depth/box/budget caps are reached.
#[derive(Debug, Clone, Default)]
pub struct RegionSolver {
    opts: LiftingOptions,
    budget: Budget,
}

impl RegionSolver {
    /// A solver with default options and an unlimited budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// A solver with explicit options.
    pub fn with_options(opts: LiftingOptions) -> Self {
        RegionSolver { opts, budget: Budget::unlimited() }
    }

    /// Attaches an effort budget. Each classified box charges
    /// `1 + rows (+ 1 with an objective)` evaluation units. On exhaustion
    /// the solver returns the leaves decided so far, with the rest of the
    /// frontier reported `Unknown` and [`LiftingOutcome::exhausted`] set.
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// The options in effect.
    pub fn options(&self) -> &LiftingOptions {
        &self.opts
    }

    /// Runs branch-and-refine over `bbox`.
    ///
    /// # Errors
    ///
    /// [`ParametricError::PointArityMismatch`] if `bbox` does not match the
    /// problem arity.
    pub fn solve(
        &self,
        problem: &RegionProblem,
        bbox: &[(f64, f64)],
    ) -> Result<LiftingOutcome, ParametricError> {
        if bbox.len() != problem.num_vars() {
            return Err(ParametricError::PointArityMismatch {
                expected: problem.num_vars(),
                got: bbox.len(),
            });
        }
        let _span = span!(
            "parametric.lifting.solve",
            vars = problem.num_vars(),
            rows = problem.num_rows(),
            parallel = self.opts.parallel
        );
        // Fork like the penalty solver: this solve gets the full evaluation
        // cap while sharing the caller's deadline/cancellation.
        let budget = self.budget.fork();
        let cost_per_box = 1 + problem.num_rows() + usize::from(problem.objective.is_some());

        // Best-first branch and bound. The frontier is kept sorted by the
        // parent's objective lower bound (ties broken by discovery order),
        // so the box budget concentrates on the cheapest — potentially
        // optimal — regions instead of refining uniformly. Certified
        // all-sat boxes yield an incumbent upper bound on the constrained
        // optimum (any point of a sat box is feasible, so the objective's
        // interval hi over it is attainable-or-better); unknown boxes whose
        // objective lower bound exceeds the incumbent are frozen as leaves
        // — they may contain feasible points, just none that beat the
        // incumbent, so refining them cannot improve the repair.
        const BATCH: usize = 16;
        let mut frontier: Vec<FrontierEntry> = vec![(f64::NEG_INFINITY, 0, bbox.to_vec(), 0)];
        let mut seq = 1u64;
        let mut scheduled = 1usize; // boxes ever enqueued, capped by max_boxes
        let mut incumbent = f64::INFINITY;
        let mut leaves: Vec<ClassifiedBox> = Vec::new();
        let mut evaluations = 0usize;
        let mut exhausted: Option<Exhaustion> = None;

        while !frontier.is_empty() {
            frontier.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let take = frontier.len().min(BATCH);
            let batch: Vec<FrontierEntry> = frontier.drain(..take).collect();
            // Charge the whole batch up front on the coordinating thread so
            // budget accounting stays deterministic under parallel
            // classification.
            if let Some(cause) = budget.charge((batch.len() * cost_per_box) as u64) {
                exhausted = Some(cause);
                for (_, _, bounds, depth) in batch.into_iter().chain(frontier.drain(..)) {
                    leaves.push(ClassifiedBox {
                        bounds,
                        verdict: RegionVerdict::Unknown,
                        objective_lo: f64::NEG_INFINITY,
                        depth,
                    });
                }
                break;
            }
            evaluations += batch.len() * cost_per_box;
            counter!("parametric.lifting.boxes", batch.len());
            let _round = span!("parametric.lifting.round", boxes = batch.len());

            let results: Vec<Result<(RegionVerdict, Interval), ParametricError>> =
                if self.opts.parallel && batch.len() > 1 {
                    batch.par_iter().map(|(_, _, b, _)| problem.classify(b)).collect()
                } else {
                    batch.iter().map(|(_, _, b, _)| problem.classify(b)).collect()
                };

            // Merge serially in batch order: deterministic across thread
            // counts because the parallel map above is order-preserving.
            for ((_, _, bounds, depth), res) in batch.into_iter().zip(results) {
                let (verdict, obj) = res?;
                if verdict == RegionVerdict::AllSat {
                    incumbent = incumbent.min(obj.hi);
                }
                if verdict == RegionVerdict::Unknown
                    && depth < self.opts.max_depth
                    && scheduled + 2 <= self.opts.max_boxes
                    && obj.lo <= incumbent
                {
                    if let Some((left, right)) = split_box(&bounds) {
                        frontier.push((obj.lo, seq, left, depth + 1));
                        frontier.push((obj.lo, seq + 1, right, depth + 1));
                        seq += 2;
                        scheduled += 2;
                        continue;
                    }
                }
                leaves.push(ClassifiedBox { bounds, verdict, objective_lo: obj.lo, depth });
            }
        }

        let sat_boxes = leaves.iter().filter(|b| b.verdict == RegionVerdict::AllSat).count();
        let violating_boxes =
            leaves.iter().filter(|b| b.verdict == RegionVerdict::AllViolating).count();
        let unknown_boxes = leaves.len() - sat_boxes - violating_boxes;
        counter!("parametric.lifting.sat_boxes", sat_boxes);
        counter!("parametric.lifting.violating_boxes", violating_boxes);
        counter!("parametric.lifting.unknown_boxes", unknown_boxes);
        let candidates = if exhausted.is_none() {
            self.scan_candidates(problem, &leaves, &budget, &mut evaluations, &mut exhausted)
        } else {
            Vec::new()
        };
        Ok(LiftingOutcome {
            boxes: leaves,
            sat_boxes,
            violating_boxes,
            unknown_boxes,
            exhausted,
            evaluations,
            candidates,
        })
    }

    /// Scans corners and centers of the cheapest non-violating leaves for
    /// warm-start candidates: each point is screened against every
    /// constraint row by the exact pointwise tape and survivors are ranked
    /// by the exact objective. The constrained optimum sits on the
    /// constraint boundary — exactly where interval bounds stay `Unknown` —
    /// so the scan covers `Unknown` leaves alongside certified all-sat
    /// ones. The screen is a heuristic (pointwise tape values carry no
    /// interval guarantee): a false positive only hands the solver a
    /// slightly-infeasible warm start, which the polish and the final
    /// checker verification absorb. Serial and in objective order —
    /// bitwise deterministic regardless of how the boxes were classified.
    fn scan_candidates(
        &self,
        problem: &RegionProblem,
        leaves: &[ClassifiedBox],
        budget: &Budget,
        evaluations: &mut usize,
        exhausted: &mut Option<Exhaustion>,
    ) -> Vec<Vec<f64>> {
        // Corner scans are exponential in the arity; past this many
        // parameters only box centers are scanned.
        const MAX_CORNER_DIM: usize = 6;
        const MAX_CANDIDATES: usize = 8;
        const SCAN_LEAVES: usize = 24;
        let Some(obj) = &problem.objective else { return Vec::new() };
        let mut scan: Vec<&ClassifiedBox> =
            leaves.iter().filter(|b| b.verdict != RegionVerdict::AllViolating).collect();
        scan.sort_by(|a, b| a.objective_lo.total_cmp(&b.objective_lo));
        scan.truncate(SCAN_LEAVES);
        let rows = problem.rows.len();
        // One screened point evaluates the objective plus every row — the
        // same unit the penalty solver charges per merit evaluation.
        let cost_per_point = 1 + rows;
        let mut vals = vec![0.0; rows];
        let mut ranked: Vec<(f64, Vec<f64>)> = Vec::new();
        'leaves: for leaf in scan {
            let d = leaf.bounds.len();
            let corners = if d <= MAX_CORNER_DIM { 1usize << d } else { 0 };
            for i in 0..=corners {
                let point: Vec<f64> = if i == corners {
                    leaf.center()
                } else {
                    leaf.bounds
                        .iter()
                        .enumerate()
                        .map(|(j, &(lo, hi))| if i >> j & 1 == 0 { lo } else { hi })
                        .collect()
                };
                if let Some(cause) = budget.charge(cost_per_point as u64) {
                    *exhausted = Some(cause);
                    break 'leaves;
                }
                *evaluations += cost_per_point;
                if problem.set.eval_all(&point, &mut vals).is_err() {
                    continue;
                }
                // NaN row values fail both senses and reject the point.
                let feasible = vals.iter().zip(&problem.rows).all(|(&v, row)| match row.sense {
                    BoundSense::Le => v <= row.rhs,
                    BoundSense::Ge => v >= row.rhs,
                });
                if !feasible {
                    continue;
                }
                if let Ok(v) = obj.eval(&point) {
                    ranked.push((v, point));
                }
            }
        }
        ranked.sort_by(|a, b| a.0.total_cmp(&b.0));
        ranked.dedup_by(|a, b| a.1 == b.1);
        ranked.into_iter().take(MAX_CANDIDATES).map(|(_, p)| p).collect()
    }
}

/// A refinement-frontier entry: parent objective lower bound, discovery
/// sequence number (deterministic tie-break), box bounds, split depth.
type FrontierEntry = (f64, u64, Vec<(f64, f64)>, usize);

/// The two halves of a split box.
type BoxHalves = (Vec<(f64, f64)>, Vec<(f64, f64)>);

/// Splits a box in half along its widest dimension (lowest index wins
/// ties). Returns `None` for degenerate boxes that cannot be split in
/// `f64` (zero width, or a midpoint equal to an endpoint).
fn split_box(bounds: &[(f64, f64)]) -> Option<BoxHalves> {
    let mut dim = 0usize;
    let mut width = f64::NEG_INFINITY;
    for (i, &(lo, hi)) in bounds.iter().enumerate() {
        let w = hi - lo;
        if w > width {
            width = w;
            dim = i;
        }
    }
    let (lo, hi) = bounds[dim];
    let mid = 0.5 * (lo + hi);
    // `width.is_nan() || width <= 0.0` (rather than `!(width > 0.0)`):
    // a NaN width (infinite endpoints) is degenerate too.
    if width.is_nan() || width <= 0.0 || mid <= lo || mid >= hi {
        return None;
    }
    let mut left = bounds.to_vec();
    let mut right = bounds.to_vec();
    left[dim].1 = mid;
    right[dim].0 = mid;
    Some((left, right))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RationalFunction;

    fn c(x: f64) -> RationalFunction {
        RationalFunction::constant(1, x)
    }

    /// f(v) = 0.8 + v: the 2-state chain's reachability under a mass shift.
    fn affine_fn() -> RationalFunction {
        c(0.8).add(&RationalFunction::var(1, 0))
    }

    #[test]
    fn interval_arithmetic_basics() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(-1.0, 3.0);
        let s = a.add(b);
        assert!(s.lo <= 0.0 && s.hi >= 5.0);
        let p = a.mul(b);
        assert!(p.lo <= -2.0 && p.hi >= 6.0);
        assert!(Interval::new(2.0, 1.0).is_whole(), "inverted endpoints degrade to whole");
        assert!(Interval::point(f64::NAN).is_whole());
        assert!(Interval::new(-1.0, 1.0).recip().is_whole(), "pole in the divisor");
        let r = Interval::new(2.0, 4.0).recip();
        assert!(r.contains(0.25) && r.contains(0.5) && !r.contains(0.6));
    }

    #[test]
    fn interval_pow_sign_cases() {
        let pos = Interval::new(0.5, 2.0).pow(2);
        assert!(pos.contains(0.25) && pos.contains(4.0) && !pos.contains(0.2));
        let neg_even = Interval::new(-2.0, -0.5).pow(2);
        assert!(neg_even.contains(0.25) && neg_even.contains(4.0));
        let neg_odd = Interval::new(-2.0, -0.5).pow(3);
        assert!(neg_odd.contains(-8.0) && neg_odd.contains(-0.125));
        let straddle_even = Interval::new(-1.0, 2.0).pow(2);
        assert!(straddle_even.contains(0.0) && straddle_even.contains(4.0));
        assert!(straddle_even.lo <= 0.0);
        let straddle_odd = Interval::new(-1.0, 2.0).pow(3);
        assert!(straddle_odd.contains(-1.0) && straddle_odd.contains(8.0));
        assert_eq!(Interval::new(-5.0, 5.0).pow(0), Interval::point(1.0));
    }

    #[test]
    fn bound_contains_point_evaluations() {
        // f = (1 + v₀v₁) / (1 + v₀² + 0.5 v₁²) over a box.
        let v0 = RationalFunction::var(2, 0);
        let v1 = RationalFunction::var(2, 1);
        let one = RationalFunction::one_rf(2);
        let num = one.add(&v0.mul(&v1));
        let den = one.add(&v0.mul(&v0)).add(&v1.mul(&v1).mul(&RationalFunction::constant(2, 0.5)));
        let f = num.div(&den).unwrap();
        let tape = f.compile();
        let bbox = [(-0.5, 0.75), (-1.0, 0.25)];
        let bound = tape.bound(&bbox).unwrap();
        for i in 0..=4 {
            for j in 0..=4 {
                let pt = [
                    bbox[0].0 + (bbox[0].1 - bbox[0].0) * i as f64 / 4.0,
                    bbox[1].0 + (bbox[1].1 - bbox[1].0) * j as f64 / 4.0,
                ];
                let v = tape.eval(&pt).unwrap();
                assert!(bound.contains(v), "bound {bound:?} misses f({pt:?}) = {v}");
            }
        }
    }

    #[test]
    fn bound_is_whole_at_denominator_pole() {
        // f = 1 / v over a box containing 0.
        let f = RationalFunction::one_rf(1).div(&RationalFunction::var(1, 0)).unwrap();
        let b = f.compile().bound(&[(-1.0, 1.0)]).unwrap();
        assert!(b.is_whole());
        // Away from the pole the bound is finite.
        let b2 = f.compile().bound(&[(0.5, 2.0)]).unwrap();
        assert!(!b2.is_whole());
        assert!(b2.contains(2.0) && b2.contains(0.5));
    }

    #[test]
    fn bound_monotone_under_box_shrinking() {
        let f = affine_fn().mul(&affine_fn()).sub(&c(0.3));
        let tape = f.compile();
        let outer = tape.bound(&[(-0.2, 0.2)]).unwrap();
        let inner = tape.bound(&[(-0.1, 0.05)]).unwrap();
        assert!(outer.lo <= inner.lo && inner.hi <= outer.hi, "{outer:?} vs {inner:?}");
    }

    fn problem_ge(bound: f64) -> RegionProblem {
        let set = CompiledConstraintSet::compile(&[affine_fn()]).unwrap();
        RegionProblem::new(set, vec![RegionRow::new(BoundSense::Ge, bound)]).unwrap()
    }

    #[test]
    fn region_solver_classifies_affine_constraint() {
        // 0.8 + v ≥ 0.9 over v ∈ [-0.19, 0.19]: sat for v ≥ 0.1.
        let problem = problem_ge(0.9);
        let out = RegionSolver::new().solve(&problem, &[(-0.19, 0.19)]).unwrap();
        assert!(out.sat_boxes > 0, "some all-sat region must be found");
        assert!(out.violating_boxes > 0, "v < 0.1 must be pruned");
        assert!(out.exhausted.is_none());
        assert!(out.evaluations > 0);
        // Every sat leaf lies in v ≥ 0.1; every violating leaf in v < 0.1.
        for b in &out.boxes {
            match b.verdict {
                RegionVerdict::AllSat => assert!(b.bounds[0].0 >= 0.1 - 1e-9),
                RegionVerdict::AllViolating => assert!(b.bounds[0].1 <= 0.1 + 1e-9),
                RegionVerdict::Unknown => {}
            }
        }
        let starts = out.warm_starts(3);
        assert!(!starts.is_empty());
        assert!(0.8 + starts[0][0] >= 0.9 - 1e-6, "best warm start must be in the sat region");
    }

    #[test]
    fn infeasible_region_is_proven_violating() {
        // 0.8 + v ≥ 1.5 is impossible on [-0.19, 0.19].
        let problem = problem_ge(1.5);
        let out = RegionSolver::new().solve(&problem, &[(-0.19, 0.19)]).unwrap();
        assert!(out.all_violating());
        assert_eq!(out.feasible_lower_bound(), f64::INFINITY);
        assert!(out.warm_starts(3).is_empty());
    }

    #[test]
    fn trivially_sat_region_needs_one_box() {
        let problem = problem_ge(0.0);
        let out = RegionSolver::new().solve(&problem, &[(-0.1, 0.1)]).unwrap();
        assert_eq!(out.boxes.len(), 1);
        assert_eq!(out.sat_boxes, 1);
        assert_eq!(out.boxes[0].verdict, RegionVerdict::AllSat);
        assert_eq!(out.boxes[0].depth, 0);
    }

    #[test]
    fn parallel_and_serial_runs_are_bitwise_identical() {
        let problem = problem_ge(0.9).with_objective(
            RationalFunction::var(1, 0).mul(&RationalFunction::var(1, 0)).compile(),
        );
        let serial = RegionSolver::with_options(LiftingOptions {
            parallel: false,
            ..LiftingOptions::default()
        })
        .solve(&problem, &[(-0.19, 0.19)])
        .unwrap();
        let parallel = RegionSolver::with_options(LiftingOptions {
            parallel: true,
            ..LiftingOptions::default()
        })
        .solve(&problem, &[(-0.19, 0.19)])
        .unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn objective_lower_bound_is_sound() {
        // Minimize v² subject to 0.8 + v ≥ 0.9: optimum is 0.1² = 0.01.
        let problem = problem_ge(0.9).with_objective(
            RationalFunction::var(1, 0).mul(&RationalFunction::var(1, 0)).compile(),
        );
        let out = RegionSolver::new().solve(&problem, &[(-0.19, 0.19)]).unwrap();
        let lb = out.feasible_lower_bound();
        assert!(lb <= 0.01 + 1e-9, "lower bound {lb} must not exceed the optimum");
        assert!(lb > 0.0, "refinement should lift the bound above zero");
    }

    #[test]
    fn budget_exhaustion_yields_partial_unknown_outcome() {
        let problem = problem_ge(0.9);
        let solver = RegionSolver::new().with_budget(Budget::unlimited().with_max_evaluations(3));
        let out = solver.solve(&problem, &[(-0.19, 0.19)]).unwrap();
        assert_eq!(out.exhausted, Some(Exhaustion::Evaluations));
        assert!(out.unknown_boxes > 0, "frontier must be reported unknown");
        assert!(!out.all_violating());
    }

    #[test]
    fn box_caps_bound_the_work() {
        let problem = problem_ge(0.9);
        let out = RegionSolver::with_options(LiftingOptions {
            max_boxes: 7,
            ..LiftingOptions::default()
        })
        .solve(&problem, &[(-0.19, 0.19)])
        .unwrap();
        assert!(out.boxes.len() <= 7);
        let deep = RegionSolver::with_options(LiftingOptions {
            max_depth: 2,
            ..LiftingOptions::default()
        })
        .solve(&problem, &[(-0.19, 0.19)])
        .unwrap();
        assert!(deep.boxes.iter().all(|b| b.depth <= 2));
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let problem = problem_ge(0.9);
        assert!(RegionSolver::new().solve(&problem, &[(0.0, 1.0), (0.0, 1.0)]).is_err());
        let set = CompiledConstraintSet::compile(&[affine_fn()]).unwrap();
        assert!(RegionProblem::new(set, vec![]).is_err());
    }

    #[test]
    fn certificate_gap_and_flag() {
        let cert = OptimalityCertificate {
            lower_bound: 0.009,
            upper_bound: 0.01,
            epsilon: 1e-2,
            certified: true,
        };
        assert!((cert.gap() - 0.001).abs() < 1e-12);
    }
}
