//! Wireless-sensor-network query-routing case study (paper §V-A).
//!
//! An `n × n` grid of sensor nodes routes queries from the field corner
//! `n_nn` (bottom-right) to the station node `n_11` (top-left), which
//! forwards them to the base-station hub. Each routing *attempt* targets
//! one productive neighbour (up or left); the target ignores the attempt
//! with a node-dependent probability, in which case the holder retries.
//! The cumulative `attempts` reward counts attempts until delivery, and the
//! property of interest is
//!
//! ```text
//! R{"attempts"} <= X [ F "delivered" ]
//! ```
//!
//! The module provides:
//!
//! * [`WsnConfig`] + [`build_dtmc`] / [`build_mdp`] — the routing models
//!   (DTMC with uniform neighbour choice; MDP with the neighbour choice
//!   left nondeterministic);
//! * [`repair_template`] — the paper's Model Repair parameterization: a
//!   correction `p` lowering the ignore probability of field/station
//!   (edge-row) nodes and a correction `q` for interior nodes;
//! * [`generate_traces`] — synthetic routing traces grouped into the
//!   paper's Data Repair classes (forward-success / forward-fail /
//!   per-node ignore events);
//! * [`attempts_property`] and [`model_spec`] helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

use tml_core::{ModelSpec, PerturbationTemplate, RepairError};
use tml_logic::{CmpOp, StateFormula};
use tml_models::{Dtmc, DtmcBuilder, Mdp, MdpBuilder, Path, TraceDataset};

/// Configuration of the WSN grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WsnConfig {
    /// Grid side length (the paper uses `n = 3`).
    pub n: usize,
    /// Ignore probability of edge-row nodes (field row and station row).
    pub ignore_edge: f64,
    /// Ignore probability of interior nodes.
    pub ignore_interior: f64,
}

impl Default for WsnConfig {
    fn default() -> Self {
        // Chosen so that the 3×3 paper properties reproduce their shape:
        // X = 100 satisfied, X = 40 repairable, X = 19 infeasible.
        WsnConfig { n: 3, ignore_edge: 0.87, ignore_interior: 0.9 }
    }
}

impl WsnConfig {
    /// Number of model states: one per node plus the `delivered` terminal.
    pub fn num_states(&self) -> usize {
        self.n * self.n + 1
    }

    /// The state index of node `(row, col)` (row 0 = station row).
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the grid.
    pub fn node(&self, row: usize, col: usize) -> usize {
        assert!(row < self.n && col < self.n, "node ({row},{col}) outside {0}x{0} grid", self.n);
        row * self.n + col
    }

    /// The terminal "delivered" state.
    pub fn delivered(&self) -> usize {
        self.n * self.n
    }

    /// The source node `n_nn` (field corner, bottom-right).
    pub fn source(&self) -> usize {
        self.node(self.n - 1, self.n - 1)
    }

    /// The station node `n_11` (top-left).
    pub fn station(&self) -> usize {
        self.node(0, 0)
    }

    /// Whether a node index lies on the field or station row (the paper's
    /// "field/station nodes" repair group).
    pub fn is_edge_row(&self, state: usize) -> bool {
        let row = state / self.n;
        state < self.n * self.n && (row == 0 || row == self.n - 1)
    }

    /// The ignore probability of a node.
    pub fn ignore_of(&self, state: usize) -> f64 {
        if self.is_edge_row(state) {
            self.ignore_edge
        } else {
            self.ignore_interior
        }
    }

    /// Productive neighbours of a node: up and left (towards the station).
    /// The station node's "neighbour" is the base-station hub, modelled as
    /// the `delivered` state.
    pub fn targets(&self, state: usize) -> Vec<usize> {
        if state >= self.n * self.n {
            return Vec::new();
        }
        let (row, col) = (state / self.n, state % self.n);
        if (row, col) == (0, 0) {
            return vec![self.delivered()];
        }
        let mut ts = Vec::new();
        if row > 0 {
            ts.push(self.node(row - 1, col));
        }
        if col > 0 {
            ts.push(self.node(row, col - 1));
        }
        ts
    }

    /// The success probability of an attempt towards `target` (the hub
    /// never ignores beyond the station's own radio loss, which we fold
    /// into the station's edge-row ignore probability).
    fn success_prob(&self, target: usize) -> f64 {
        if target == self.delivered() {
            1.0 - self.ignore_edge
        } else {
            1.0 - self.ignore_of(target)
        }
    }

    fn validate(&self) -> Result<(), RepairError> {
        if self.n < 2 {
            return Err(RepairError::InvalidInput {
                detail: "grid side must be at least 2".into(),
            });
        }
        for p in [self.ignore_edge, self.ignore_interior] {
            if !(0.0..1.0).contains(&p) {
                return Err(RepairError::InvalidInput {
                    detail: format!("ignore probability {p} outside [0, 1)"),
                });
            }
        }
        Ok(())
    }
}

/// Builds the routing DTMC: at each node the holder picks a productive
/// neighbour uniformly at random, the attempt succeeding with the
/// neighbour's accept probability (ignore → retry via self-loop).
///
/// # Errors
///
/// Returns [`RepairError::InvalidInput`] for a malformed configuration.
pub fn build_dtmc(config: &WsnConfig) -> Result<Dtmc, RepairError> {
    config.validate()?;
    let mut b = DtmcBuilder::new(config.num_states());
    b.initial_state(config.source())?;
    for s in 0..config.n * config.n {
        let targets = config.targets(s);
        let k = targets.len() as f64;
        let mut stay = 0.0;
        for &t in &targets {
            let succ = config.success_prob(t);
            b.transition(s, t, succ / k)?;
            stay += (1.0 - succ) / k;
        }
        if stay > 0.0 {
            b.transition(s, s, stay)?;
        }
        b.state_reward("attempts", s, 1.0)?;
    }
    let d = config.delivered();
    b.transition(d, d, 1.0)?;
    b.label(d, "delivered")?;
    b.label(config.station(), "station")?;
    b.label(config.source(), "source")?;
    Ok(b.build()?)
}

/// Builds the routing MDP: the neighbour to attempt is a nondeterministic
/// action (`Rmax` then asks for the worst routing strategy).
///
/// # Errors
///
/// Returns [`RepairError::InvalidInput`] for a malformed configuration.
pub fn build_mdp(config: &WsnConfig) -> Result<Mdp, RepairError> {
    config.validate()?;
    let mut b = MdpBuilder::new(config.num_states());
    b.initial_state(config.source())?;
    for s in 0..config.n * config.n {
        for &t in &config.targets(s) {
            let succ = config.success_prob(t);
            let action = format!("fwd_{t}");
            if succ >= 1.0 {
                b.choice(s, &action, &[(t, 1.0)])?;
            } else {
                b.choice(s, &action, &[(t, succ), (s, 1.0 - succ)])?;
            }
        }
        b.state_reward("attempts", s, 1.0)?;
    }
    let d = config.delivered();
    b.choice(d, "done", &[(d, 1.0)])?;
    b.label(d, "delivered")?;
    b.label(config.station(), "station")?;
    b.label(config.source(), "source")?;
    Ok(b.build()?)
}

/// The property `R{"attempts"} <= X [ F "delivered" ]`.
pub fn attempts_property(x: f64) -> StateFormula {
    StateFormula::reach_reward("attempts", CmpOp::Le, x, "delivered")
}

/// The probabilistic delivery-deadline property
/// `P >= p [ F<=k "delivered" ]`: the query is routed within `k` attempts
/// with probability at least `p`. Step-bounded, so repairs against it
/// exercise the instantiate-and-check oracle back-end.
pub fn deadline_property(k: u64, p: f64) -> StateFormula {
    StateFormula::Prob {
        opt: None,
        op: CmpOp::Ge,
        bound: p,
        path: tml_logic::PathFormula::Eventually {
            sub: Box::new(StateFormula::Atom("delivered".to_owned())),
            bound: Some(k),
        },
    }
}

/// The paper's Model Repair parameterization: correction `p` lowers the
/// ignore probability of field/station (edge-row) nodes and `q` lowers
/// interior nodes' (both bounded so probabilities stay valid).
///
/// # Errors
///
/// Returns a [`RepairError`] if the template cannot be built (never for
/// valid configurations).
pub fn repair_template(config: &WsnConfig) -> Result<PerturbationTemplate, RepairError> {
    config.validate()?;
    let mut template = PerturbationTemplate::new();
    // The paper only considers *small* perturbations of the ignore
    // probabilities; a correction of up to 0.1 keeps the repair in that
    // regime (and makes very tight bounds like X = 19 infeasible).
    let max_correction = 0.1_f64.min(config.ignore_edge).min(config.ignore_interior);
    let p = template.parameter("p", 0.0, max_correction);
    let q = template.parameter("q", 0.0, max_correction);
    for s in 0..config.n * config.n {
        let targets = config.targets(s);
        let k = targets.len() as f64;
        for &t in &targets {
            let group_edge = t == config.delivered() || config.is_edge_row(t);
            let param = if group_edge { p } else { q };
            // success prob rises by param/k, the retry self-loop falls.
            template.nudge(s, t, param, 1.0 / k)?;
            template.nudge(s, s, param, -1.0 / k)?;
        }
    }
    Ok(template)
}

/// The [`ModelSpec`] matching [`build_dtmc`]'s decoration, for Data Repair
/// and the TML pipeline.
pub fn model_spec(config: &WsnConfig) -> ModelSpec {
    let mut spec = ModelSpec::new(config.num_states())
        .initial(config.source())
        .label(config.delivered(), "delivered")
        .label(config.station(), "station")
        .label(config.source(), "source");
    for s in 0..config.n * config.n {
        spec = spec.reward("attempts", s, 1.0);
    }
    spec
}

/// Names of the trace classes produced by [`generate_traces`].
pub mod classes {
    /// Successful forwarding attempts anywhere in the network.
    pub const FORWARD_SUCCESS: &str = "forward-success";
    /// Failed (ignored) forwarding attempts at nodes other than the two
    /// monitored ones.
    pub const FORWARD_FAIL: &str = "forward-fail";
    /// Ignore events observed at the station node `n_11`.
    pub const IGNORE_STATION: &str = "ignore-n11";
    /// Ignore events observed at the node next to the source (`n_32` in the
    /// 3×3 grid: one step up from the field corner).
    pub const IGNORE_NEAR_SOURCE: &str = "ignore-n32";
}

/// The "node near the message source" the paper monitors (`n_32` for
/// `n = 3`): one row up from the field corner.
pub fn near_source_node(config: &WsnConfig) -> usize {
    config.node(config.n - 2, config.n - 1)
}

/// Simulates `episodes` routing episodes on the ground-truth chain and
/// splits every observed transition into the paper's Data Repair classes
/// (one-step weighted traces).
///
/// `noise_extra_ignores` adds that many *corrupt* ignore observations to
/// each monitored node — the "noisy data" that Data Repair is meant to
/// drop.
///
/// # Errors
///
/// Returns a [`RepairError`] on malformed configurations.
pub fn generate_traces(
    config: &WsnConfig,
    episodes: usize,
    noise_extra_ignores: f64,
    seed: u64,
) -> Result<TraceDataset, RepairError> {
    let chain = build_dtmc(config)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = TraceDataset::new();
    let success = ds.add_class(classes::FORWARD_SUCCESS);
    let fail = ds.add_class(classes::FORWARD_FAIL);
    let ign_station = ds.add_class(classes::IGNORE_STATION);
    let ign_near = ds.add_class(classes::IGNORE_NEAR_SOURCE);
    let station = config.station();
    let near = near_source_node(config);
    let delivered = config.delivered();

    let push = |class: usize, from: usize, to: usize, w: f64, ds: &mut TraceDataset| {
        ds.push(class, Path::from_states(vec![from, to]), w).map_err(RepairError::from)
    };

    for _ in 0..episodes {
        let path = chain.sample_path(&mut rng, 10_000, |s| s == delivered);
        for win in path.windows(2) {
            let (s, t) = (win[0], win[1]);
            let class = if s == t {
                if s == station {
                    ign_station
                } else if s == near {
                    ign_near
                } else {
                    fail
                }
            } else {
                success
            };
            push(class, s, t, 1.0, &mut ds)?;
        }
    }
    if noise_extra_ignores > 0.0 {
        push(ign_station, station, station, noise_extra_ignores, &mut ds)?;
        push(ign_near, near, near, noise_extra_ignores, &mut ds)?;
        push(fail, config.source(), config.source(), noise_extra_ignores, &mut ds)?;
    }
    Ok(ds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tml_checker::Checker;
    use tml_logic::parse_query;

    #[test]
    fn topology_helpers() {
        let c = WsnConfig::default();
        assert_eq!(c.num_states(), 10);
        assert_eq!(c.node(0, 0), 0);
        assert_eq!(c.source(), 8);
        assert_eq!(c.delivered(), 9);
        assert!(c.is_edge_row(0));
        assert!(c.is_edge_row(8));
        assert!(!c.is_edge_row(4));
        assert_eq!(c.targets(8), vec![5, 7]);
        assert_eq!(c.targets(0), vec![9]);
        assert_eq!(c.targets(9), Vec::<usize>::new());
        assert_eq!(near_source_node(&c), 5);
    }

    #[test]
    fn dtmc_is_well_formed_and_delivers() {
        let c = WsnConfig::default();
        let d = build_dtmc(&c).unwrap();
        assert_eq!(d.num_states(), 10);
        assert_eq!(d.initial_state(), 8);
        // Delivery is almost sure.
        let checker = Checker::new();
        let q = parse_query("P=? [ F \"delivered\" ]").unwrap();
        let v = checker.query_dtmc(&d, &q).unwrap();
        assert!((v[8] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn expected_attempts_are_plausible() {
        let c = WsnConfig::default();
        let d = build_dtmc(&c).unwrap();
        let q = parse_query("R{\"attempts\"}=? [ F \"delivered\" ]").unwrap();
        let v = Checker::new().query_dtmc(&d, &q).unwrap();
        let attempts = v[c.source()];
        // 5 hops each taking ~1/(1-ignore) attempts: between 5 and 100.
        assert!(attempts > 5.0 && attempts < 100.0, "attempts = {attempts}");
    }

    #[test]
    fn mdp_worst_case_exceeds_dtmc_average() {
        let c = WsnConfig::default();
        let d = build_dtmc(&c).unwrap();
        let m = build_mdp(&c).unwrap();
        let qd = parse_query("R{\"attempts\"}=? [ F \"delivered\" ]").unwrap();
        let qmax = parse_query("R{\"attempts\"}max=? [ F \"delivered\" ]").unwrap();
        let qmin = parse_query("R{\"attempts\"}min=? [ F \"delivered\" ]").unwrap();
        let avg = Checker::new().query_dtmc(&d, &qd).unwrap()[c.source()];
        let worst = Checker::new().query_mdp(&m, &qmax).unwrap()[c.source()];
        let best = Checker::new().query_mdp(&m, &qmin).unwrap()[c.source()];
        assert!(best <= avg + 1e-9 && avg <= worst + 1e-9, "{best} <= {avg} <= {worst}");
    }

    #[test]
    fn template_preserves_stochasticity() {
        let c = WsnConfig::default();
        let d = build_dtmc(&c).unwrap();
        let t = repair_template(&c).unwrap();
        let p = t.apply(&d).unwrap();
        let inst = p.instantiate(&[0.05, 0.04]).unwrap();
        // Probabilities moved in the right direction.
        assert!(inst.probability(8, 5) > d.probability(8, 5));
        assert!(inst.probability(8, 8) < d.probability(8, 8));
    }

    #[test]
    fn traces_cover_all_classes() {
        let c = WsnConfig::default();
        let ds = generate_traces(&c, 50, 5.0, 7).unwrap();
        assert_eq!(ds.num_classes(), 4);
        assert!(ds.num_traces() > 100);
        // ML from the traces approximates the ground truth somewhat.
        let learned =
            tml_models::learn::ml_dtmc(c.num_states(), &ds, None, tml_models::MlOptions::default())
                .unwrap();
        let mut b = learned;
        b.initial_state(c.source()).unwrap();
        b.label(c.delivered(), "delivered").unwrap();
        let learned = b.build().unwrap();
        let truth = build_dtmc(&c).unwrap();
        let diff = (learned.probability(8, 5) - truth.probability(8, 5)).abs();
        assert!(diff < 0.35, "diff {diff}");
    }

    #[test]
    fn config_validation() {
        assert!(build_dtmc(&WsnConfig { n: 1, ..Default::default() }).is_err());
        assert!(build_dtmc(&WsnConfig { ignore_edge: 1.2, ..Default::default() }).is_err());
        assert!(build_mdp(&WsnConfig { ignore_interior: -0.1, ..Default::default() }).is_err());
    }

    #[test]
    fn property_helper_parses_consistently() {
        let p = attempts_property(40.0);
        let parsed = tml_logic::parse_formula("R{\"attempts\"}<=40 [ F \"delivered\" ]").unwrap();
        assert_eq!(p, parsed);
    }

    #[test]
    fn deadline_property_repair_via_oracle() {
        // Step-bounded properties are outside the symbolic fragment; the
        // oracle back-end still repairs them.
        use tml_core::{ModelRepair, RepairStatus};
        let c = WsnConfig { n: 2, ..Default::default() };
        let d = build_dtmc(&c).unwrap();
        let checker = Checker::new();
        // Pick a deadline where the base model is close but short of 0.5.
        let base = checker
            .check_dtmc(&d, &deadline_property(20, 0.5))
            .unwrap()
            .value_at_initial()
            .unwrap();
        assert!(base < 0.5, "base deadline probability {base}");
        let out = ModelRepair::new()
            .repair_dtmc(&d, &deadline_property(20, 0.5), &repair_template(&c).unwrap())
            .unwrap();
        assert_eq!(out.status, RepairStatus::Repaired, "base was {base}");
        assert!(out.verified);
    }

    #[test]
    fn bigger_grids_build() {
        for n in [4, 5] {
            let c = WsnConfig { n, ..Default::default() };
            let d = build_dtmc(&c).unwrap();
            assert_eq!(d.num_states(), n * n + 1);
            let m = build_mdp(&c).unwrap();
            assert_eq!(m.num_states(), n * n + 1);
        }
    }
}
