//! Data Repair (Definition 3): re-weight the training data so that the
//! model *re-learned* from it satisfies the property.
//!
//! Following the paper's machine-teaching formulation (Eqs. 11–14), each
//! trace class `g` gets a keep-weight `w_g ∈ [w_min, 1]` (the continuous
//! relaxation of the drop vector `p`). Maximum-likelihood transition
//! probabilities then become **rational functions of `w`**:
//!
//! ```text
//! P_w(s → t) = Σ_g w_g·c_g(s,t) / Σ_g w_g·c_g(s,·)
//! ```
//!
//! — e.g. the paper's `0.4 / (0.4 + 0.6·p)` forwarding probability — so the
//! same parametric-checking + NLP pipeline as Model Repair applies. The
//! effort function is the weighted dropped mass `Σ_g m_g·(1 − w_g)²`,
//! matching `E_T = ‖D − D'‖²`.

use tml_checker::Checker;
use tml_logic::StateFormula;
use tml_models::{
    learn, Dtmc, DtmcBuilder, IntervalDtmc, IntervalDtmcBuilder, MlOptions, TraceDataset,
};
use tml_numerics::{Budget, Diagnostics};
use tml_optimizer::{Nlp, PenaltySolver};
use tml_parametric::{
    BoundSense, CompiledConstraintSet, LiftingOutcome, OptimalityCertificate, ParametricDtmc,
    Polynomial, RationalFunction, RegionProblem, RegionRow, RegionSolver,
};
use tml_telemetry::span;

use crate::constraint::compile_constraint;
use crate::model_repair::{absorb_solution, infeasible_status, repaired_status, RepairStatus};
use crate::{RepairError, RepairOptions, RepairStrategy};

/// Static decoration applied to learned models: labels, rewards and the
/// initial state (these are not derivable from traces alone).
#[derive(Debug, Clone, Default)]
pub struct ModelSpec {
    /// Number of states of the learned model.
    pub num_states: usize,
    /// The initial state.
    pub initial: usize,
    /// `(state, label)` pairs.
    pub labels: Vec<(usize, String)>,
    /// `(structure, state, reward)` triples.
    pub state_rewards: Vec<(String, usize, f64)>,
}

impl ModelSpec {
    /// A spec over `num_states` states with initial state 0.
    pub fn new(num_states: usize) -> Self {
        ModelSpec { num_states, ..Default::default() }
    }

    /// Sets the initial state.
    pub fn initial(mut self, state: usize) -> Self {
        self.initial = state;
        self
    }

    /// Attaches a label.
    pub fn label(mut self, state: usize, label: &str) -> Self {
        self.labels.push((state, label.to_owned()));
        self
    }

    /// Sets a state reward.
    pub fn reward(mut self, structure: &str, state: usize, value: f64) -> Self {
        self.state_rewards.push((structure.to_owned(), state, value));
        self
    }

    fn decorate(&self, b: &mut DtmcBuilder) -> Result<(), RepairError> {
        b.initial_state(self.initial)?;
        for (s, l) in &self.labels {
            b.label(*s, l)?;
        }
        for (structure, s, r) in &self.state_rewards {
            b.state_reward(structure, *s, *r)?;
        }
        Ok(())
    }

    fn decorate_interval(&self, b: &mut IntervalDtmcBuilder) -> Result<(), RepairError> {
        b.initial_state(self.initial)?;
        for (s, l) in &self.labels {
            b.label(*s, l)?;
        }
        for (structure, s, r) in &self.state_rewards {
            b.state_reward(structure, *s, *r)?;
        }
        Ok(())
    }
}

/// Outcome of a data repair.
#[derive(Debug, Clone)]
pub struct DataRepairOutcome {
    /// How the attempt concluded.
    pub status: RepairStatus,
    /// Keep-weight per trace class (1 = keep everything).
    pub keep_weights: Vec<(String, f64)>,
    /// The teaching-effort objective `Σ_g m_g (1 − w_g)²` at the solution.
    pub effort: f64,
    /// Total trace mass dropped, `Σ_g m_g (1 − w_g)`.
    pub dropped_mass: f64,
    /// The model re-learned from the repaired data; `None` when infeasible.
    pub model: Option<Dtmc>,
    /// Whether the re-learned model was re-verified by the checker.
    pub verified: bool,
    /// Whether a Monte Carlo simulation cross-check (when attached to the
    /// pipeline; see `TmlPipeline::with_simulation_cross_check`) could not
    /// refute the property on the returned model. `None` when no
    /// cross-check ran or the property is outside the simulable fragment.
    pub verified_by_simulation: Option<bool>,
    /// Optimizer evaluations spent.
    pub evaluations: usize,
    /// The best keep-weight point the penalty solver reached, regardless of
    /// feasibility — a warm start for a retry of the same job (see
    /// [`DataRepair::start_from`]). `None` when no solver ran.
    pub solver_point: Option<Vec<f64>>,
    /// Soundness certificate produced by the parameter-lifting strategy:
    /// the returned effort against a sound interval lower bound on the
    /// effort over the entire feasible region. `None` on the pure penalty
    /// path and when lifting fell back mid-refinement.
    pub certificate: Option<OptimalityCertificate>,
    /// What the repair spent and which degradation paths (solver
    /// fallbacks, accepted residuals, budget exhaustion) were taken.
    pub diagnostics: Diagnostics,
}

/// The Data Repair algorithm.
#[derive(Debug, Clone)]
pub struct DataRepair {
    opts: RepairOptions,
    /// Lower bound on keep-weights, kept strictly positive so the support of
    /// the learned chain never changes (the parametric well-definedness
    /// assumption).
    min_keep: f64,
    /// Per-class keep-weight bounds overriding the global `[min_keep, 1]`
    /// box — e.g. pinning a class to `[1, 1]` marks it as known-reliable
    /// data that must be kept (the paper's "certain pᵢ values must be 1").
    class_bounds: Vec<(String, f64, f64)>,
    budget: Budget,
    warm_starts: Vec<Vec<f64>>,
}

impl Default for DataRepair {
    fn default() -> Self {
        DataRepair {
            opts: RepairOptions::default(),
            min_keep: 1e-3,
            class_bounds: Vec::new(),
            budget: Budget::unlimited(),
            warm_starts: Vec::new(),
        }
    }
}

impl DataRepair {
    /// A repairer with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// A repairer with explicit options.
    pub fn with_options(opts: RepairOptions) -> Self {
        DataRepair { opts, ..Default::default() }
    }

    /// Bounds the whole repair — checker runs and optimizer included — by
    /// an execution budget. When it runs out, the repair returns the best
    /// point found so far with [`RepairStatus::BudgetExhausted`] instead of
    /// erroring or hanging.
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// The configured budget.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Sets the minimum keep-weight (default `1e-3`).
    pub fn min_keep(mut self, w: f64) -> Self {
        self.min_keep = w;
        self
    }

    /// Overrides the keep-weight box of one class.
    pub fn class_bound(mut self, class: &str, lo: f64, hi: f64) -> Self {
        self.class_bounds.push((class.to_owned(), lo, hi));
        self
    }

    /// Pins a class's keep-weight to 1 (known-reliable data).
    pub fn keep_class(self, class: &str) -> Self {
        self.class_bound(class, 1.0, 1.0)
    }

    /// Adds a warm-start point for the penalty solver, tried after the
    /// built-in "keep everything" start but before random restarts.
    /// Retrying runtimes feed the previous attempt's
    /// [`DataRepairOutcome::solver_point`] back through this so a retry
    /// resumes the search instead of repeating it.
    #[must_use]
    pub fn start_from(mut self, w: Vec<f64>) -> Self {
        self.warm_starts.push(w);
        self
    }

    /// Runs data repair: find class keep-weights such that the model
    /// re-learned from the re-weighted dataset satisfies `formula`.
    ///
    /// # Errors
    ///
    /// * [`RepairError::InvalidInput`] for an empty dataset.
    /// * Learning, checking, parametric and optimizer errors.
    pub fn repair(
        &self,
        dataset: &TraceDataset,
        spec: &ModelSpec,
        formula: &StateFormula,
    ) -> Result<DataRepairOutcome, RepairError> {
        if dataset.num_traces() == 0 || dataset.num_classes() == 0 {
            return Err(RepairError::InvalidInput { detail: "empty dataset".into() });
        }
        let _span =
            span!("data_repair", traces = dataset.num_traces(), classes = dataset.num_classes());
        let robust = self.opts.robust;
        if let Some(rs) = &robust {
            rs.validate()?;
        }
        let checker = Checker::with_options(self.opts.check).with_budget(self.budget.clone());
        let mut diag = Diagnostics::new();
        let base = self.learn(dataset, spec, None)?;
        let initial_holds = if let Some(rs) = robust {
            // The uncertainty ball comes straight from the trace counts:
            // per-row Wilson intervals at the requested confidence.
            let ball = self.interval_learn(dataset, spec, None, rs.confidence)?;
            let r = checker.check_interval_dtmc(&ball, formula)?;
            diag.absorb(r.diagnostics());
            r.holds()
        } else {
            let r = checker.check_dtmc(&base, formula)?;
            diag.absorb(r.diagnostics());
            r.holds()
        };
        if initial_holds {
            return Ok(DataRepairOutcome {
                status: RepairStatus::AlreadySatisfied,
                keep_weights: dataset.class_names().iter().map(|n| (n.clone(), 1.0)).collect(),
                effort: 0.0,
                dropped_mass: 0.0,
                model: Some(base),
                verified: true,
                verified_by_simulation: None,
                evaluations: 0,
                solver_point: None,
                certificate: None,
                diagnostics: diag,
            });
        }

        let g = dataset.num_classes();
        let masses = class_masses(dataset);
        let pdtmc = self.parametric_model(dataset, spec)?;

        let mut boxes = vec![(self.min_keep, 1.0); g];
        for (class, lo, hi) in &self.class_bounds {
            match dataset.class_names().iter().position(|c| c == class) {
                Some(i) => boxes[i] = (*lo, *hi),
                None => {
                    return Err(RepairError::InvalidInput {
                        detail: format!("class bound for unknown class {class:?}"),
                    })
                }
            }
        }
        let mut nlp = Nlp::new(g, boxes.clone())?;
        {
            let m = masses.clone();
            let m_grad = masses.clone();
            // ∂/∂w_g Σ m·(1−w)² = −2·m_g·(1−w_g).
            nlp.objective_with_grad(
                move |w| w.iter().zip(&m).map(|(&wg, &mg)| mg * (1.0 - wg).powi(2)).sum(),
                move |w, grad| {
                    for ((gi, &wg), &mg) in grad.iter_mut().zip(w).zip(&m_grad) {
                        *gi = -2.0 * mg * (1.0 - wg);
                    }
                },
            );
        }
        // Same symbolic-degree guard as Model Repair: high-degree rational
        // functions are numerically fragile in f64, so fall back to
        // re-learn-and-check beyond the threshold.
        const MAX_SYMBOLIC_DEGREE: u32 = 16;
        let mut lifted: Option<LiftingOutcome> = None;
        // Robust repair constrains the worst-case value over the Wilson
        // ball of the re-learned chain; the symbolic rational function is a
        // nominal value, so the re-learn-and-robust-check oracle is forced.
        let compiled = if robust.is_some() {
            if self.opts.strategy == RepairStrategy::Lifting {
                diag.record_fallback("lifting: robust repair uses the oracle, penalty search used");
            }
            None
        } else {
            match compile_constraint(&pdtmc, formula) {
                Ok(sc) => Some(sc),
                Err(RepairError::UnsupportedProperty { .. }) => None,
                Err(other) => return Err(other),
            }
        };
        match &compiled {
            Some(sc) if sc.function.complexity() <= MAX_SYMBOLIC_DEGREE => {
                // Flatten the symbolic rational function to an evaluation
                // tape and register its quotient-rule gradient, so the
                // solver's analytic merit path applies (no differencing).
                let f = sc.function.compile();
                let f_grad = f.clone();
                let margin = self.margin(sc.op);
                if self.opts.strategy != RepairStrategy::Penalty {
                    lifted = Some(self.lift_regions(sc, margin, &masses, &boxes)?);
                }
                nlp.constraint_with_grad(
                    "property",
                    sense_of(sc.op),
                    sc.bound,
                    margin,
                    move |w| f.eval(w).unwrap_or(f64::NAN),
                    move |w, grad| {
                        if f_grad.eval_grad(w, grad).is_err() {
                            grad.fill(0.0);
                        }
                    },
                );
            }
            _ => {
                if let Some(sc) = &compiled {
                    // Interval enclosures stay sound at any degree, so
                    // region pruning and warm starts still apply even
                    // though pointwise NLP evaluation does not.
                    if self.opts.strategy != RepairStrategy::Penalty {
                        let margin = self.margin(sc.op);
                        lifted = Some(self.lift_regions(sc, margin, &masses, &boxes)?);
                    }
                } else if robust.is_none() && self.opts.strategy == RepairStrategy::Lifting {
                    // Lifting was requested but needs the symbolic path.
                    diag.record_fallback("lifting: property not symbolic, penalty search used");
                }
                let (op, bound) = top_level_bound(formula)?;
                let margin = self.margin(op);
                let ds = dataset.clone();
                let sp = spec.clone();
                let phi = formula.clone();
                let check_opts = self.opts.check;
                let inner = self.budget.without_evaluation_cap();
                let this = self.clone();
                if let Some(rs) = robust {
                    // Worst-case oracle: re-learn the Wilson ball from the
                    // re-weighted counts and test its conservative end.
                    nlp.constraint_with_margin("property", sense_of(op), bound, margin, move |w| {
                        match this.interval_learn(&ds, &sp, Some(w), rs.confidence) {
                            Ok(ball) => Checker::with_options(check_opts)
                                .with_budget(inner.clone())
                                .check_interval_dtmc(&ball, &phi)
                                .ok()
                                .and_then(|r| r.bracket_at_initial())
                                .map(|(lo, hi)| if op.is_lower_bound() { lo } else { hi })
                                .unwrap_or(f64::NAN),
                            Err(_) => f64::NAN,
                        }
                    });
                } else {
                    nlp.constraint_with_margin("property", sense_of(op), bound, margin, move |w| {
                        match this.learn(&ds, &sp, Some(w)) {
                            Ok(m) => Checker::with_options(check_opts)
                                .with_budget(inner.clone())
                                .check_dtmc(&m, &phi)
                                .ok()
                                .and_then(|r| r.value_at_initial())
                                .unwrap_or(f64::NAN),
                            Err(_) => f64::NAN,
                        }
                    });
                }
            }
        }

        // Digest the region verdicts exactly as Model Repair does: a
        // fully-violating box proves infeasibility, an exhausted refinement
        // degrades to the full penalty search, surviving boxes warm-start a
        // restart-free solve.
        let mut lifting_evals = 0usize;
        let mut solver_opts = self.opts.solver;
        let mut region_starts: Vec<Vec<f64>> = Vec::new();
        if let Some(lift) = &lifted {
            lifting_evals = lift.evaluations;
            diag.evaluations += lift.evaluations as u64;
            diag.telemetry.incr("parametric.lifting.evaluations", lift.evaluations as u64);
            if lift.exhausted.is_some() {
                diag.record_fallback(
                    "lifting: budget exhausted mid-refinement, penalty search used",
                );
                lifted = None;
            } else if lift.all_violating() {
                return Ok(DataRepairOutcome {
                    status: RepairStatus::Infeasible,
                    keep_weights: dataset.class_names().iter().map(|n| (n.clone(), 1.0)).collect(),
                    effort: 0.0,
                    dropped_mass: 0.0,
                    model: None,
                    verified: false,
                    verified_by_simulation: None,
                    evaluations: lifting_evals,
                    solver_point: None,
                    certificate: None,
                    diagnostics: diag,
                });
            } else {
                region_starts = lift.warm_starts(3);
                solver_opts.restarts = 0;
                if !lift.candidates.is_empty() && solver_opts.penalty_rounds > 3 {
                    // The warm starts already passed a pointwise
                    // feasibility screen, so the slow μ ramp-in rounds are
                    // redundant: start the schedule at the μ it would have
                    // reached, keeping the final μ identical.
                    solver_opts.penalty_init *=
                        solver_opts.penalty_growth.powi(solver_opts.penalty_rounds as i32 - 3);
                    solver_opts.penalty_rounds = 3;
                }
            }
        }

        // Start from "keep everything", then region survivors, then any
        // caller-provided points.
        let mut solver = PenaltySolver::with_options(solver_opts).with_budget(self.budget.clone());
        solver.start_from(vec![1.0; g]);
        for w in region_starts {
            solver.start_from(w);
        }
        for w in &self.warm_starts {
            solver.start_from(w.clone());
        }
        let sol = solver.solve(&nlp)?;
        absorb_solution(&mut diag, &sol);
        let keep_weights: Vec<(String, f64)> =
            dataset.class_names().iter().cloned().zip(sol.x.iter().copied()).collect();
        let effort: f64 = sol.x.iter().zip(&masses).map(|(&w, &m)| m * (1.0 - w).powi(2)).sum();
        let dropped: f64 = sol.x.iter().zip(&masses).map(|(&w, &m)| m * (1.0 - w)).sum();
        if !sol.feasible {
            return Ok(DataRepairOutcome {
                status: infeasible_status(&sol),
                keep_weights,
                effort,
                dropped_mass: dropped,
                model: None,
                verified: false,
                verified_by_simulation: None,
                evaluations: sol.evaluations + lifting_evals,
                solver_point: Some(sol.x.clone()),
                certificate: None,
                diagnostics: diag,
            });
        }
        let model = self.learn(dataset, spec, Some(&sol.x))?;
        let verified = if let Some(rs) = robust {
            let ball = self.interval_learn(dataset, spec, Some(&sol.x), rs.confidence)?;
            let verdict = checker.check_interval_dtmc(&ball, formula)?;
            diag.absorb(verdict.diagnostics());
            verdict.holds()
        } else {
            let verdict = checker.check_dtmc(&model, formula)?;
            diag.absorb(verdict.diagnostics());
            verdict.holds()
        };
        let certificate = lifted.as_ref().map(|lift| {
            let lower_bound = lift.feasible_lower_bound();
            let epsilon = self.opts.lifting.epsilon;
            OptimalityCertificate {
                lower_bound,
                upper_bound: effort,
                epsilon,
                certified: verified && effort - lower_bound <= epsilon,
            }
        });
        Ok(DataRepairOutcome {
            status: repaired_status(verified, &diag),
            keep_weights,
            effort,
            dropped_mass: dropped,
            model: Some(model),
            verified,
            verified_by_simulation: None,
            evaluations: sol.evaluations + lifting_evals,
            solver_point: Some(sol.x.clone()),
            certificate,
            diagnostics: diag,
        })
    }

    /// Learns the decorated ML model (optionally with class weights).
    fn learn(
        &self,
        dataset: &TraceDataset,
        spec: &ModelSpec,
        weights: Option<&[f64]>,
    ) -> Result<Dtmc, RepairError> {
        let mut b = learn::ml_dtmc(spec.num_states, dataset, weights, MlOptions::default())?;
        spec.decorate(&mut b)?;
        Ok(b.build()?)
    }

    /// Learns the decorated interval model whose per-row Wilson intervals
    /// at `confidence` bracket the (optionally re-weighted) ML estimates.
    fn interval_learn(
        &self,
        dataset: &TraceDataset,
        spec: &ModelSpec,
        weights: Option<&[f64]>,
        confidence: f64,
    ) -> Result<IntervalDtmc, RepairError> {
        let mut b = learn::interval_dtmc_from_traces(
            spec.num_states,
            dataset,
            weights,
            confidence,
            MlOptions::default(),
        )?;
        spec.decorate_interval(&mut b)?;
        Ok(b.build()?)
    }

    /// Builds the parametric chain whose transition probabilities are the
    /// ML estimates as rational functions of the keep-weights.
    fn parametric_model(
        &self,
        dataset: &TraceDataset,
        spec: &ModelSpec,
    ) -> Result<ParametricDtmc, RepairError> {
        let g = dataset.num_classes();
        let n = spec.num_states;
        // Per-class transition counts.
        let mut per_class: Vec<Vec<Vec<f64>>> = Vec::with_capacity(g);
        for class in 0..g {
            let indicator: Vec<f64> = (0..g).map(|i| if i == class { 1.0 } else { 0.0 }).collect();
            per_class.push(dataset.transition_counts(n, Some(&indicator))?);
        }
        let param_names: Vec<String> =
            dataset.class_names().iter().map(|c| format!("w_{c}")).collect();
        let mut b = ParametricDtmc::builder(n, param_names);
        b.initial_state(spec.initial)?;
        for s in 0..n {
            // den(s) = Σ_g w_g · c_g(s,·)
            let mut den = Polynomial::zero(g);
            for (class, counts) in per_class.iter().enumerate() {
                let tot: f64 = counts[s].iter().sum();
                if tot > 0.0 {
                    den = den.add(&Polynomial::var(g, class).scale(tot));
                }
            }
            if den.is_zero() {
                // State never left in any trace: constant self-loop.
                b.transition(s, s, RationalFunction::one_rf(g))?;
                continue;
            }
            for t in 0..n {
                let mut num = Polynomial::zero(g);
                for (class, counts) in per_class.iter().enumerate() {
                    let c = counts[s][t];
                    if c > 0.0 {
                        num = num.add(&Polynomial::var(g, class).scale(c));
                    }
                }
                if num.is_zero() {
                    continue;
                }
                b.transition(s, t, RationalFunction::new(num, den.clone())?)?;
            }
        }
        for (s, l) in &spec.labels {
            b.label(*s, l)?;
        }
        for (structure, s, r) in &spec.state_rewards {
            b.state_reward(structure, *s, RationalFunction::constant(g, *r))?;
        }
        Ok(b.build()?)
    }

    /// Runs branch-and-refine region verification over the keep-weight box:
    /// the property's rational function becomes the single [`RegionRow`]
    /// (threshold shifted by the margin so "all-sat" means margin-feasible,
    /// matching what the penalty solver accepts), and the teaching-effort
    /// objective `Σ m_g (1 − w_g)²` is interval-bounded alongside to order
    /// surviving boxes and derive the certificate's lower bound.
    fn lift_regions(
        &self,
        sc: &crate::constraint::SymbolicConstraint,
        margin: f64,
        masses: &[f64],
        boxes: &[(f64, f64)],
    ) -> Result<LiftingOutcome, RepairError> {
        let g = masses.len();
        let set = CompiledConstraintSet::compile(std::slice::from_ref(&sc.function))?;
        let row = if sc.op.is_lower_bound() {
            RegionRow::new(BoundSense::Ge, sc.bound + margin)
        } else {
            RegionRow::new(BoundSense::Le, sc.bound - margin)
        };
        // effort = Σ_g m_g·(1 − w_g)² as a polynomial in w.
        let mut effort = Polynomial::zero(g);
        for (i, &m) in masses.iter().enumerate() {
            if m != 0.0 {
                let lin = Polynomial::constant(g, 1.0).add(&Polynomial::var(g, i).scale(-1.0));
                effort = effort.add(&lin.mul(&lin).scale(m));
            }
        }
        let objective = RationalFunction::from_poly(effort).compile();
        let problem = RegionProblem::new(set, vec![row])?.with_objective(objective);
        let solver = RegionSolver::with_options(self.opts.lifting).with_budget(self.budget.clone());
        Ok(solver.solve(&problem, boxes)?)
    }

    fn margin(&self, op: tml_logic::CmpOp) -> f64 {
        // The optimizer accepts points violating constraints by up to its
        // feasibility tolerance; fold that slack into the margin so an
        // "optimizer-feasible" point always verifies under the checker.
        let slack = self.opts.solver.feasibility_tolerance + self.opts.check.bound_tolerance;
        match op {
            tml_logic::CmpOp::Gt | tml_logic::CmpOp::Lt => self.opts.strict_margin + slack,
            _ => slack,
        }
    }
}

fn class_masses(dataset: &TraceDataset) -> Vec<f64> {
    let mut m = vec![0.0; dataset.num_classes()];
    for tr in dataset.iter() {
        m[tr.class] += tr.weight;
    }
    m
}

fn sense_of(op: tml_logic::CmpOp) -> tml_optimizer::ConstraintSense {
    if op.is_lower_bound() {
        tml_optimizer::ConstraintSense::Ge
    } else {
        tml_optimizer::ConstraintSense::Le
    }
}

fn top_level_bound(formula: &StateFormula) -> Result<(tml_logic::CmpOp, f64), RepairError> {
    match formula {
        StateFormula::Prob { op, bound, .. } | StateFormula::Reward { op, bound, .. } => {
            Ok((*op, *bound))
        }
        other => Err(RepairError::UnsupportedProperty {
            property: other.to_string(),
            reason: "repair needs a top-level P or R operator with a bound".into(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RobustSpec;
    use tml_logic::parse_formula;
    use tml_models::Path;

    /// Dataset over a 2-state world: "good" traces go 0→1, "noisy" traces
    /// loop 0→0.
    fn dataset(good: f64, noisy: f64) -> TraceDataset {
        let mut ds = TraceDataset::new();
        let g = ds.add_class("good");
        let n = ds.add_class("noisy");
        ds.push(g, Path::from_states(vec![0, 1]), good).unwrap();
        ds.push(n, Path::from_states(vec![0, 0]), noisy).unwrap();
        ds
    }

    fn spec() -> ModelSpec {
        ModelSpec::new(2).label(1, "ok")
    }

    #[test]
    fn already_satisfied() {
        // P(0→1) = 0.8 ≥ 0.7 via F within one step (absorbing at 1).
        let ds = dataset(8.0, 2.0);
        let phi = parse_formula("P>=0.7 [ X \"ok\" ]").unwrap();
        // X is outside the symbolic fragment but base model already passes.
        let out = DataRepair::new().repair(&ds, &spec(), &phi).unwrap();
        assert_eq!(out.status, RepairStatus::AlreadySatisfied);
        assert!(out.verified);
    }

    #[test]
    fn drops_noisy_class_to_meet_bound() {
        // Base: P(0→1) = 0.5. Require P(X ok) ≥ 0.8: must down-weight noise.
        // Symbolic path: use F with a "stuck" observation so F ≠ 1:
        // model: 0→1 w.p. w_good/(w_good+w_noisy) but 0→0 self-loop retries
        // forever, so P(F ok) = 1 regardless. Use a 3-state world instead:
        // noisy traces go 0→2 (absorbing bad).
        let mut ds = TraceDataset::new();
        let g = ds.add_class("good");
        let n = ds.add_class("noisy");
        ds.push(g, Path::from_states(vec![0, 1]), 5.0).unwrap();
        ds.push(n, Path::from_states(vec![0, 2]), 5.0).unwrap();
        ds.push(g, Path::from_states(vec![1, 1]), 1.0).unwrap();
        ds.push(n, Path::from_states(vec![2, 2]), 1.0).unwrap();
        let sp = ModelSpec::new(3).label(1, "ok");
        let phi = parse_formula("P>=0.8 [ F \"ok\" ]").unwrap();
        let out = DataRepair::new().repair(&ds, &sp, &phi).unwrap();
        assert_eq!(out.status, RepairStatus::Repaired);
        assert!(out.verified);
        let w_noisy = out.keep_weights.iter().find(|(n, _)| n == "noisy").unwrap().1;
        let w_good = out.keep_weights.iter().find(|(n, _)| n == "good").unwrap().1;
        // P(F ok) = 5 w_g / (5 w_g + 5 w_n) ≥ 0.8 ⇒ w_n ≤ w_g / 4.
        assert!(w_noisy <= w_good / 4.0 + 1e-3, "w_noisy {w_noisy} w_good {w_good}");
        assert!(out.dropped_mass > 0.0);
        assert!(out.effort > 0.0);
        let m = out.model.unwrap();
        assert!(m.probability(0, 1) >= 0.8 - 1e-6);
    }

    #[test]
    fn infeasible_when_min_keep_blocks() {
        // Even dropping noise to the minimum cannot reach an absurd bound
        // because min_keep keeps some noise mass.
        let mut ds = TraceDataset::new();
        let g = ds.add_class("good");
        let n = ds.add_class("noisy");
        ds.push(g, Path::from_states(vec![0, 1]), 1.0).unwrap();
        ds.push(n, Path::from_states(vec![0, 2]), 100.0).unwrap();
        ds.push(g, Path::from_states(vec![1, 1]), 1.0).unwrap();
        ds.push(n, Path::from_states(vec![2, 2]), 1.0).unwrap();
        let sp = ModelSpec::new(3).label(1, "ok");
        let phi = parse_formula("P>=0.999 [ F \"ok\" ]").unwrap();
        let out = DataRepair::new().min_keep(0.5).repair(&ds, &sp, &phi).unwrap();
        assert_eq!(out.status, RepairStatus::Infeasible);
        assert!(out.model.is_none());
    }

    #[test]
    fn reward_property_repair() {
        // Retry chain: success counts from two classes; require expected
        // attempts ≤ 2 ⇒ success prob ≥ 0.5.
        let mut ds = TraceDataset::new();
        let succ = ds.add_class("success");
        let fail = ds.add_class("failure");
        ds.push(succ, Path::from_states(vec![0, 1]), 3.0).unwrap();
        ds.push(fail, Path::from_states(vec![0, 0]), 7.0).unwrap();
        ds.push(succ, Path::from_states(vec![1, 1]), 1.0).unwrap();
        let sp = ModelSpec::new(2).label(1, "done").reward("attempts", 0, 1.0);
        let phi = parse_formula("R{\"attempts\"}<=2 [ F \"done\" ]").unwrap();
        let out = DataRepair::new().repair(&ds, &sp, &phi).unwrap();
        assert_eq!(out.status, RepairStatus::Repaired);
        assert!(out.verified);
        // E[attempts] = (3w_s + 7w_f)/(3w_s) ≤ 2 ⇒ 7 w_f ≤ 3 w_s.
        let ws = out.keep_weights[0].1;
        let wf = out.keep_weights[1].1;
        assert!(7.0 * wf <= 3.0 * ws + 1e-2, "ws {ws} wf {wf}");
    }

    #[test]
    fn lifting_strategy_certifies_data_repair() {
        let mut ds = TraceDataset::new();
        let g = ds.add_class("good");
        let n = ds.add_class("noisy");
        ds.push(g, Path::from_states(vec![0, 1]), 5.0).unwrap();
        ds.push(n, Path::from_states(vec![0, 2]), 5.0).unwrap();
        ds.push(g, Path::from_states(vec![1, 1]), 1.0).unwrap();
        ds.push(n, Path::from_states(vec![2, 2]), 1.0).unwrap();
        let sp = ModelSpec::new(3).label(1, "ok");
        let phi = parse_formula("P>=0.8 [ F \"ok\" ]").unwrap();
        let opts = RepairOptions { strategy: RepairStrategy::Lifting, ..RepairOptions::default() };
        let out = DataRepair::with_options(opts).repair(&ds, &sp, &phi).unwrap();
        assert_eq!(out.status, RepairStatus::Repaired);
        assert!(out.verified);
        let cert = out.certificate.expect("lifting emits a certificate");
        assert!(cert.lower_bound <= out.effort + 1e-12, "{cert:?} vs {}", out.effort);
        // Penalty path never certifies.
        let plain = DataRepair::new().repair(&ds, &sp, &phi).unwrap();
        assert!(plain.certificate.is_none());
    }

    #[test]
    fn exhausted_budget_reports_status_instead_of_erroring() {
        let mut ds = TraceDataset::new();
        let g = ds.add_class("good");
        let n = ds.add_class("noisy");
        ds.push(g, Path::from_states(vec![0, 1]), 5.0).unwrap();
        ds.push(n, Path::from_states(vec![0, 2]), 5.0).unwrap();
        ds.push(g, Path::from_states(vec![1, 1]), 1.0).unwrap();
        ds.push(n, Path::from_states(vec![2, 2]), 1.0).unwrap();
        let sp = ModelSpec::new(3).label(1, "ok");
        let phi = parse_formula("P>=0.8 [ F \"ok\" ]").unwrap();
        let out = DataRepair::new()
            .with_budget(Budget::unlimited().with_max_evaluations(0))
            .repair(&ds, &sp, &phi)
            .unwrap();
        assert_eq!(out.status, RepairStatus::BudgetExhausted);
        assert!(out.diagnostics.exhausted.is_some());
        // Best-effort keep-weights are still reported, one per class.
        assert_eq!(out.keep_weights.len(), 2);
    }

    #[test]
    fn empty_dataset_rejected() {
        let ds = TraceDataset::new();
        let phi = parse_formula("P>=0.5 [ F \"ok\" ]").unwrap();
        assert!(matches!(
            DataRepair::new().repair(&ds, &spec(), &phi),
            Err(RepairError::InvalidInput { .. })
        ));
    }

    /// 3-state world with absorbing good/bad states and generous trace
    /// counts so the Wilson ball is informative but not degenerate.
    fn robust_world(good: f64, noisy: f64) -> (TraceDataset, ModelSpec) {
        let mut ds = TraceDataset::new();
        let g = ds.add_class("good");
        let n = ds.add_class("noisy");
        ds.push(g, Path::from_states(vec![0, 1]), good).unwrap();
        ds.push(n, Path::from_states(vec![0, 2]), noisy).unwrap();
        ds.push(g, Path::from_states(vec![1, 1]), good).unwrap();
        ds.push(n, Path::from_states(vec![2, 2]), noisy).unwrap();
        (ds, ModelSpec::new(3).label(1, "ok"))
    }

    #[test]
    fn robust_data_repair_drops_more_than_nominal() {
        // Base: P(0→1) = 0.5 from 60/60 counts. Nominal repair stops as soon
        // as the point estimate hits 0.8; the robust repair must push the
        // Wilson lower bound over 0.8, which costs strictly more noise mass.
        let (ds, sp) = robust_world(60.0, 60.0);
        let phi = parse_formula("P>=0.8 [ F \"ok\" ]").unwrap();
        let nominal = DataRepair::new().repair(&ds, &sp, &phi).unwrap();
        let opts =
            RepairOptions { robust: Some(RobustSpec::new(0.95)), ..RepairOptions::default() };
        let robust = DataRepair::with_options(opts).repair(&ds, &sp, &phi).unwrap();
        assert_eq!(robust.status, RepairStatus::Repaired);
        assert!(robust.verified, "robust data repair must robust-verify");
        let wn_nominal = nominal.keep_weights.iter().find(|(n, _)| n == "noisy").unwrap().1;
        let wn_robust = robust.keep_weights.iter().find(|(n, _)| n == "noisy").unwrap().1;
        assert!(
            wn_robust < wn_nominal - 1e-3,
            "robust keeps {wn_robust}, nominal keeps {wn_nominal}"
        );
        assert!(robust.dropped_mass > nominal.dropped_mass);
        // The returned nominal model overshoots the bound: calibration slack.
        let m = robust.model.unwrap();
        assert!(m.probability(0, 1) > 0.8 + 1e-3);
    }

    #[test]
    fn robust_data_repair_already_satisfied_when_ball_passes() {
        // 95/5 split over large counts: even the pessimistic member clears
        // P >= 0.8, so no weights move.
        let (ds, sp) = robust_world(950.0, 50.0);
        let phi = parse_formula("P>=0.8 [ F \"ok\" ]").unwrap();
        let opts =
            RepairOptions { robust: Some(RobustSpec::new(0.95)), ..RepairOptions::default() };
        let out = DataRepair::with_options(opts).repair(&ds, &sp, &phi).unwrap();
        assert_eq!(out.status, RepairStatus::AlreadySatisfied);
        assert!(out.verified);
        assert_eq!(out.dropped_mass, 0.0);
    }

    #[test]
    fn robust_data_repair_rejects_invalid_confidence() {
        let (ds, sp) = robust_world(60.0, 60.0);
        let phi = parse_formula("P>=0.8 [ F \"ok\" ]").unwrap();
        let opts = RepairOptions {
            robust: Some(RobustSpec { confidence: 2.0, sample_size: 100.0 }),
            ..RepairOptions::default()
        };
        assert!(matches!(
            DataRepair::with_options(opts).repair(&ds, &sp, &phi),
            Err(RepairError::InvalidInput { .. })
        ));
    }
}
