//! ε-bisimilarity diagnostics (Proposition 1).
//!
//! Proposition 1 of the paper (after Bartocci et al.) states that when a
//! model `M'` is obtained from `M` by a row-cancelling perturbation `Z`
//! (`Σ_t Z(s,t) = 0` per state), the two models are **ε-bisimilar** with
//! `ε` bounded by the largest entry of `Z`: every path probability of `M'`
//! is within `ε` of the corresponding path probability of `M` (per step).
//! These helpers quantify that bound for a concrete pair of models and
//! empirically validate its consequence on reachability probabilities.

use tml_checker::{dtmc as cdtmc, CheckOptions};
use tml_models::Dtmc;

use crate::RepairError;

/// The perturbation radius `ε = max_{s,t} |P'(s,t) − P(s,t)|` between two
/// models over the *same* transition support — the ε of Proposition 1.
///
/// # Errors
///
/// Returns [`RepairError::InvalidInput`] if the models have different state
/// counts or different supports (Model Repair never changes the support,
/// so a mismatch means the models are not a repair pair).
pub fn perturbation_epsilon(base: &Dtmc, repaired: &Dtmc) -> Result<f64, RepairError> {
    if base.num_states() != repaired.num_states() {
        return Err(RepairError::InvalidInput {
            detail: format!(
                "models have {} vs {} states",
                base.num_states(),
                repaired.num_states()
            ),
        });
    }
    let mut eps: f64 = 0.0;
    for s in 0..base.num_states() {
        for (t, p) in base.successors(s) {
            let q = repaired.probability(s, t);
            if q == 0.0 && p > 0.0 {
                return Err(RepairError::InvalidInput {
                    detail: format!("transition {s}->{t} present in base but not in repaired"),
                });
            }
            eps = eps.max((p - q).abs());
        }
        for (t, q) in repaired.successors(s) {
            if base.probability(s, t) == 0.0 && q > 0.0 {
                return Err(RepairError::InvalidInput {
                    detail: format!("transition {s}->{t} present in repaired but not in base"),
                });
            }
        }
    }
    Ok(eps)
}

/// The largest per-state deviation of unbounded reachability probabilities
/// `|P_M(s ⊨ F target) − P_M'(s ⊨ F target)|` — an observable consequence
/// of ε-bisimilarity used to sanity-check repairs.
///
/// # Errors
///
/// Propagates checker errors and the same support checks as
/// [`perturbation_epsilon`].
pub fn reachability_deviation(
    base: &Dtmc,
    repaired: &Dtmc,
    target_label: &str,
    opts: &CheckOptions,
) -> Result<f64, RepairError> {
    perturbation_epsilon(base, repaired)?; // validates shape/support
    let n = base.num_states();
    let phi = vec![true; n];
    let t1 = base.labeling().mask(target_label);
    let t2 = repaired.labeling().mask(target_label);
    if t1 != t2 {
        return Err(RepairError::InvalidInput {
            detail: format!("label {target_label:?} marks different states in the two models"),
        });
    }
    let p1 = cdtmc::until_probabilities(base, &phi, &t1, opts)?;
    let p2 = cdtmc::until_probabilities(repaired, &phi, &t1, opts)?;
    Ok(p1.iter().zip(&p2).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModelRepair, PerturbationTemplate, RepairStatus};
    use tml_logic::parse_formula;
    use tml_models::DtmcBuilder;

    fn chain(p: f64) -> Dtmc {
        let mut b = DtmcBuilder::new(3);
        b.transition(0, 1, p).unwrap();
        b.transition(0, 2, 1.0 - p).unwrap();
        b.transition(1, 1, 1.0).unwrap();
        b.transition(2, 2, 1.0).unwrap();
        b.label(1, "ok").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn epsilon_is_max_entry_delta() {
        let eps = perturbation_epsilon(&chain(0.8), &chain(0.87)).unwrap();
        assert!((eps - 0.07).abs() < 1e-12);
        assert_eq!(perturbation_epsilon(&chain(0.8), &chain(0.8)).unwrap(), 0.0);
    }

    #[test]
    fn support_mismatch_rejected() {
        let base = chain(0.8);
        let mut b = DtmcBuilder::new(3);
        b.transition(0, 1, 1.0).unwrap(); // transition 0->2 dropped
        b.transition(1, 1, 1.0).unwrap();
        b.transition(2, 2, 1.0).unwrap();
        b.label(1, "ok").unwrap();
        let other = b.build().unwrap();
        assert!(perturbation_epsilon(&base, &other).is_err());
        assert!(perturbation_epsilon(&other, &base).is_err());

        let mut b2 = DtmcBuilder::new(2);
        b2.transition(0, 0, 1.0).unwrap();
        b2.transition(1, 1, 1.0).unwrap();
        assert!(perturbation_epsilon(&base, &b2.build().unwrap()).is_err());
    }

    /// Proposition 1 on an actual repair: the repaired model's ε equals
    /// the template's optimal parameter, and reachability probabilities
    /// deviate by no more than what the chain's structure amplifies.
    #[test]
    fn proposition_1_on_a_real_repair() {
        let base = chain(0.8);
        let phi = parse_formula("P>=0.9 [ F \"ok\" ]").unwrap();
        let mut template = PerturbationTemplate::new();
        let v = template.parameter("v", -0.15, 0.15);
        template.nudge(0, 1, v, 1.0).unwrap();
        template.nudge(0, 2, v, -1.0).unwrap();
        let out = ModelRepair::new().repair_dtmc(&base, &phi, &template).unwrap();
        assert_eq!(out.status, RepairStatus::Repaired);
        let repaired = out.model.unwrap();

        let eps = perturbation_epsilon(&base, &repaired).unwrap();
        let v_star = out.parameters[0].1.abs();
        assert!((eps - v_star).abs() < 1e-9, "eps {eps} vs |v| {v_star}");

        let dev = reachability_deviation(&base, &repaired, "ok", &CheckOptions::default()).unwrap();
        // This chain decides in one step, so the deviation equals ε exactly.
        assert!((dev - eps).abs() < 1e-9, "deviation {dev} vs eps {eps}");
    }

    #[test]
    fn label_mismatch_rejected() {
        let base = chain(0.8);
        let mut b = DtmcBuilder::new(3);
        b.transition(0, 1, 0.8).unwrap();
        b.transition(0, 2, 0.2).unwrap();
        b.transition(1, 1, 1.0).unwrap();
        b.transition(2, 2, 1.0).unwrap();
        b.label(2, "ok").unwrap(); // different target states
        let other = b.build().unwrap();
        assert!(reachability_deviation(&base, &other, "ok", &CheckOptions::default()).is_err());
    }
}
