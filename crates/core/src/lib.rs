//! Trusted Machine Learning for Markov decision processes: **Model
//! Repair**, **Data Repair** and **Reward Repair** under logical
//! constraints.
//!
//! This crate is the primary contribution of the reproduced paper
//! (*"Model, Data and Reward Repair: Trusted Machine Learning for Markov
//! Decision Processes"*, DSN 2018). Given a model `M = ML(D)` learned from
//! data and a property `φ` (PCTL over states, or LTL rules over finite
//! trajectories), it makes the model satisfy `φ` by the cheapest admissible
//! change:
//!
//! | repair | what changes | feasible set | machinery |
//! |---|---|---|---|
//! | [`ModelRepair`] | transition probabilities `P` | same-support perturbations `P + Z` (Def. 1) | parametric model checking → rational constraint → NLP |
//! | [`DataRepair`] | the dataset `D` | per-class keep-weights (Def. 3, machine teaching) | ML estimate as rational function of weights → NLP |
//! | [`RewardRepair`] | the reward `R` | trajectory-distribution projection / Q-constraints (Def. 2) | posterior regularization (Prop. 4) or direct NLP over `θ` |
//!
//! The [`pipeline::TmlPipeline`] chains them in the order the paper
//! prescribes (§II): *learn → verify → Model Repair → Data Repair →
//! report*.
//!
//! # Example: repairing a faulty chain
//!
//! ```
//! use tml_models::DtmcBuilder;
//! use tml_logic::parse_formula;
//! use tml_core::{ModelRepair, PerturbationTemplate, RepairStatus};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A channel that succeeds with probability 0.8 — but the spec wants
//! // eventual success with probability ≥ 0.9 before the deadline state.
//! let mut b = DtmcBuilder::new(3);
//! b.transition(0, 1, 0.8)?; // success
//! b.transition(0, 2, 0.2)?; // deadline missed
//! b.transition(1, 1, 1.0)?;
//! b.transition(2, 2, 1.0)?;
//! b.label(1, "ok")?;
//! let chain = b.build()?;
//! let phi = parse_formula("P>=0.9 [ F \"ok\" ]")?;
//!
//! // Allow shifting mass between the two outgoing edges of state 0.
//! let mut template = PerturbationTemplate::new();
//! let v = template.parameter("v", -0.15, 0.15);
//! template.nudge(0, 1, v, 1.0)?;  // p(0→1) += v
//! template.nudge(0, 2, v, -1.0)?; // p(0→2) -= v
//!
//! let outcome = ModelRepair::new().repair_dtmc(&chain, &phi, &template)?;
//! assert_eq!(outcome.status, RepairStatus::Repaired);
//! let repaired = outcome.model.unwrap();
//! assert!(repaired.probability(0, 1) >= 0.9 - 1e-6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bisimulation;
mod constraint;
mod data_repair;
mod error;
mod model_repair;
pub mod pipeline;
mod reward_repair;
mod template;

pub use bisimulation::{perturbation_epsilon, reachability_deviation};
pub use constraint::propositional_mask;
pub use data_repair::{DataRepair, DataRepairOutcome, ModelSpec};
pub use error::RepairError;
pub use model_repair::{MdpPerturbationTemplate, ModelRepair, ModelRepairOutcome, RepairStatus};
pub use reward_repair::{
    enumerate_trajectories, project_distribution, sample_trajectories, trajectory_log_weight,
    MdpTraceView, QConstraint, QConstraintOutcome, RewardRepair, RewardRepairOutcome, WeightedRule,
};
pub use template::{LinearExpr, PerturbationTemplate};
// Budgets bound every repair; re-exported so callers need not depend on
// tml-numerics directly.
pub use tml_numerics::{Budget, CancelToken, Diagnostics, Exhaustion};
// Parameter-lifting vocabulary used by `RepairOptions` and the outcome
// certificates; re-exported so callers need not depend on tml-parametric.
pub use tml_parametric::{LiftingOptions, OptimalityCertificate};

/// Which search drives the repair optimization over the perturbation box.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RepairStrategy {
    /// The paper's local search: deterministic multi-start quadratic
    /// penalty over the whole box.
    #[default]
    Penalty,
    /// Parameter lifting (Model Repair Revamped): branch-and-refine region
    /// verification soundly prunes all-violating parameter regions, then
    /// warm-starts the penalty solver on the surviving near-optimal boxes
    /// and emits an [`OptimalityCertificate`]. Requires the symbolic
    /// constraint path; degrades to pure penalty otherwise (recorded as a
    /// diagnostics fallback) or on budget exhaustion mid-refinement.
    Lifting,
    /// [`RepairStrategy::Lifting`] when the property compiles symbolically,
    /// [`RepairStrategy::Penalty`] otherwise — without recording the
    /// degradation as a fallback.
    Auto,
}

/// Confidence-calibrated robustness for Model and Data Repair: instead of
/// making the point-estimate model satisfy `φ`, the repair must make **every
/// model in the Wilson uncertainty ball** around the candidate satisfy it
/// (the pessimistic robust value passes the bound).
///
/// `confidence` is the per-transition coverage level of the Wilson score
/// intervals (e.g. `0.95`); `sample_size` is the effective number of
/// observations behind each transition estimate — Model Repair has no
/// dataset to read it from, so the caller states how much evidence the
/// learned probabilities carry (Data Repair derives counts from the actual
/// re-weighted dataset and ignores this field).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustSpec {
    /// Wilson interval confidence level, in `(0, 1)`.
    pub confidence: f64,
    /// Effective sample size behind each transition estimate (> 0).
    pub sample_size: f64,
}

impl RobustSpec {
    /// A spec at `confidence` with the default effective sample size (100).
    pub fn new(confidence: f64) -> Self {
        RobustSpec { confidence, sample_size: 100.0 }
    }

    pub(crate) fn validate(&self) -> Result<(), RepairError> {
        if !(self.confidence > 0.0 && self.confidence < 1.0) {
            return Err(RepairError::InvalidInput {
                detail: format!("robust confidence {} outside (0, 1)", self.confidence),
            });
        }
        if !(self.sample_size > 0.0 && self.sample_size.is_finite()) {
            return Err(RepairError::InvalidInput {
                detail: format!("robust sample size {} must be positive", self.sample_size),
            });
        }
        Ok(())
    }
}

impl Default for RobustSpec {
    fn default() -> Self {
        RobustSpec::new(0.95)
    }
}

/// Options shared by the repair algorithms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairOptions {
    /// Margin used to approximate strict inequalities (`P > b` is enforced
    /// as `P ≥ b + margin`).
    pub strict_margin: f64,
    /// Margin kept between perturbed probabilities and the ends of `[0,1]`
    /// so the transition support never changes (Def. 1's feasibility class).
    pub support_margin: f64,
    /// Checker options used for verification of repaired models.
    pub check: tml_checker::CheckOptions,
    /// Optimizer options.
    pub solver: tml_optimizer::PenaltyOptions,
    /// Which search strategy to run (default: pure penalty).
    pub strategy: RepairStrategy,
    /// Region-solver options used by [`RepairStrategy::Lifting`] /
    /// [`RepairStrategy::Auto`].
    pub lifting: LiftingOptions,
    /// When set, repairs are *robust*: the property must hold for every
    /// member of the confidence-calibrated uncertainty ball around the
    /// candidate model, verified by robust value iteration. Forces the
    /// instantiate-and-check oracle (the symbolic path computes nominal,
    /// not worst-case, values); [`RepairStrategy::Lifting`] degrades to
    /// penalty search with a recorded fallback.
    pub robust: Option<RobustSpec>,
}

impl Default for RepairOptions {
    fn default() -> Self {
        RepairOptions {
            strict_margin: 1e-6,
            support_margin: 1e-6,
            check: tml_checker::CheckOptions::default(),
            solver: tml_optimizer::PenaltyOptions::default(),
            strategy: RepairStrategy::default(),
            lifting: LiftingOptions::default(),
            robust: None,
        }
    }
}
