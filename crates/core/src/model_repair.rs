//! Model Repair (Definition 1): perturb transition probabilities so the
//! model satisfies `φ`, minimizing the Frobenius cost `‖Z‖²_F`.

use tml_checker::Checker;
use tml_logic::StateFormula;
use tml_models::{Dtmc, IntervalDtmc, Mdp};
use tml_numerics::{Budget, Diagnostics};
use tml_optimizer::{BlockRow, ConstraintSense, Nlp, PenaltySolver, Solution};
use tml_parametric::{
    BoundSense, CompiledConstraintSet, LiftingOutcome, OptimalityCertificate, Polynomial,
    RationalFunction, RegionProblem, RegionRow, RegionSolver,
};
use tml_telemetry::span;

use crate::constraint::compile_constraint;
use crate::{
    LinearExpr, PerturbationTemplate, RepairError, RepairOptions, RepairStrategy, RobustSpec,
};

/// How a repair attempt concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairStatus {
    /// The original model already satisfies the property; nothing changed.
    AlreadySatisfied,
    /// A feasible perturbation was found and the repaired model verified.
    Repaired,
    /// No admissible perturbation satisfies the property (the paper's
    /// "Model Repair gives infeasible solution" outcome).
    Infeasible,
    /// The execution budget (deadline, evaluation cap or cancellation) ran
    /// out before a verified repair was found. The outcome still carries
    /// the best point reached and [`Diagnostics`] describing what was
    /// spent; it is a *best-effort* answer, not a proof of infeasibility.
    BudgetExhausted,
}

/// Outcome of a model repair.
#[derive(Debug, Clone)]
pub struct ModelRepairOutcome<M = Dtmc> {
    /// How the attempt concluded.
    pub status: RepairStatus,
    /// The repair parameter values found (empty for
    /// [`RepairStatus::AlreadySatisfied`]).
    pub parameters: Vec<(String, f64)>,
    /// The Frobenius cost `‖Z‖²_F` of the perturbation.
    pub cost: f64,
    /// The repaired (or original, if already satisfied) model; `None` when
    /// infeasible.
    pub model: Option<M>,
    /// Whether the returned model was independently re-verified against the
    /// property by the concrete checker.
    pub verified: bool,
    /// Whether a Monte Carlo simulation cross-check (when one is attached
    /// to the pipeline; see `TmlPipeline::with_simulation_cross_check`)
    /// could not refute the property on the returned model. `None` when no
    /// cross-check ran or the property is outside the simulable fragment.
    pub verified_by_simulation: Option<bool>,
    /// Objective/constraint evaluations spent by the optimizer.
    pub evaluations: usize,
    /// The best parameter point the penalty solver reached, regardless of
    /// feasibility — a warm start for a retry of the same job (see
    /// [`ModelRepair::start_from`]). `None` when no solver ran.
    pub solver_point: Option<Vec<f64>>,
    /// Soundness certificate produced by the parameter-lifting strategy:
    /// the returned repair's cost against a sound interval lower bound on
    /// the cost over the entire feasible region. `None` on the pure
    /// penalty path (which proves nothing about global optimality) and
    /// when lifting fell back mid-refinement.
    pub certificate: Option<OptimalityCertificate>,
    /// What the repair spent and which degradation paths (solver
    /// fallbacks, accepted residuals, budget exhaustion) were taken.
    pub diagnostics: Diagnostics,
}

/// The Model Repair algorithm.
///
/// Two constraint back-ends are used automatically:
///
/// * **symbolic** — the property is compiled to a closed-form rational
///   function by parametric model checking (Proposition 2) and evaluated
///   in microseconds per optimizer step;
/// * **oracle** — when the property shape is outside the symbolic fragment
///   (bounded operators, nested `P`), each optimizer step instantiates the
///   candidate model and runs the full checker. Slower but fully general;
///   this is also the only back-end for MDP repair, where symbolic min/max
///   elimination is not implemented.
#[derive(Debug, Clone, Default)]
pub struct ModelRepair {
    opts: RepairOptions,
    budget: Budget,
    warm_starts: Vec<Vec<f64>>,
}

impl ModelRepair {
    /// A repairer with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// A repairer with explicit options.
    pub fn with_options(opts: RepairOptions) -> Self {
        ModelRepair { opts, budget: Budget::unlimited(), warm_starts: Vec::new() }
    }

    /// Bounds the whole repair — checker runs and optimizer included — by
    /// an execution budget. When it runs out, the repair returns the best
    /// point found so far with [`RepairStatus::BudgetExhausted`] instead of
    /// erroring or hanging.
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// The configured budget.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Adds a warm-start point for the penalty solver, tried before its
    /// deterministic random restarts. Retrying runtimes feed the previous
    /// attempt's [`ModelRepairOutcome::solver_point`] back through this so
    /// a retry resumes the search instead of repeating it.
    #[must_use]
    pub fn start_from(mut self, x: Vec<f64>) -> Self {
        self.warm_starts.push(x);
        self
    }

    /// Repairs a DTMC (Definition 1 / Proposition 2).
    ///
    /// # Errors
    ///
    /// * [`RepairError::InvalidTemplate`] for inconsistent templates.
    /// * [`RepairError::UnsupportedProperty`] if the property's truth value
    ///   has no numeric witness (i.e. it is not a top-level `P`/`R`
    ///   operator).
    /// * Checker/optimizer errors.
    pub fn repair_dtmc(
        &self,
        base: &Dtmc,
        formula: &StateFormula,
        template: &PerturbationTemplate,
    ) -> Result<ModelRepairOutcome<Dtmc>, RepairError> {
        let _span = span!("model_repair", model = "dtmc", params = template.num_params());
        let robust = self.opts.robust;
        if let Some(rs) = &robust {
            rs.validate()?;
        }
        let checker = Checker::with_options(self.opts.check).with_budget(self.budget.clone());
        let mut diag = Diagnostics::new();
        let initial_holds = {
            let _s = span!("model_repair.verify_initial");
            if let Some(rs) = robust {
                let ball = IntervalDtmc::wilson_around(base, rs.confidence, rs.sample_size)?;
                let r = checker.check_interval_dtmc(&ball, formula)?;
                diag.absorb(r.diagnostics());
                r.holds()
            } else {
                let r = checker.check_dtmc(base, formula)?;
                diag.absorb(r.diagnostics());
                r.holds()
            }
        };
        if initial_holds {
            return Ok(ModelRepairOutcome {
                status: RepairStatus::AlreadySatisfied,
                parameters: Vec::new(),
                cost: 0.0,
                model: Some(base.clone()),
                verified: true,
                verified_by_simulation: None,
                evaluations: 0,
                solver_point: None,
                certificate: None,
                diagnostics: diag,
            });
        }

        let compile_span = span!("model_repair.compile");
        let pdtmc = template.apply(base)?;
        let mut nlp = Nlp::new(template.num_params(), template.bounds())?;
        self.frobenius_objective(&mut nlp, template);

        // Property constraint: symbolic when possible, oracle otherwise.
        // Rational functions of non-trivial degree lose f64 precision when
        // evaluated (state elimination without exact arithmetic leaves
        // uncancelled common factors that cause catastrophic cancellation
        // — PARAM avoids this with exact rationals), so beyond a small
        // complexity threshold the exact instantiate-and-check oracle is
        // used instead. The symbolic path is cross-validated to machine
        // precision below the threshold.
        const MAX_SYMBOLIC_DEGREE: u32 = 16;
        let mut lifted: Option<LiftingOutcome> = None;
        // Robust repair constrains the *worst-case* value over the
        // uncertainty ball, which the symbolic rational function (a nominal
        // value) cannot express — the oracle path is mandatory.
        let compiled = if robust.is_some() {
            if self.opts.strategy == RepairStrategy::Lifting {
                diag.record_fallback("lifting: robust repair uses the oracle, penalty search used");
            }
            None
        } else {
            match compile_constraint(&pdtmc, formula) {
                Ok(sc) => Some(sc),
                Err(RepairError::UnsupportedProperty { .. }) => None,
                Err(other) => return Err(other),
            }
        };
        match &compiled {
            Some(sc) if sc.function.complexity() <= MAX_SYMBOLIC_DEGREE => {
                let (fns, rows) = self.symbolic_system(template, base, sc);
                register_block(&mut nlp, &fns, &rows)?;
                if self.opts.strategy != RepairStrategy::Penalty {
                    lifted = Some(self.lift_regions(template, &fns, &rows)?);
                }
            }
            _ => {
                self.validity_constraints(&mut nlp, template, base);
                let (op, bound) = top_level_bound(formula)?;
                let margin = self.margin(op);
                let pd = pdtmc.clone();
                let phi = formula.clone();
                let check_opts = self.opts.check;
                let inner = self.budget.without_evaluation_cap();
                if let Some(rs) = robust {
                    // Worst-case oracle: the candidate's Wilson ball must
                    // satisfy the bound at its conservative end.
                    nlp.constraint_with_margin("property", sense_of(op), bound, margin, move |v| {
                        match pd.instantiate(v) {
                            Ok(m) => robust_value_dtmc(&m, &phi, op, rs, &check_opts, &inner),
                            Err(_) => f64::NAN,
                        }
                    });
                } else {
                    nlp.constraint_with_margin("property", sense_of(op), bound, margin, move |v| {
                        oracle_value_dtmc(&pd, &phi, v, &check_opts, &inner)
                    });
                }
                if let Some(sc) = &compiled {
                    // Interval enclosures stay sound at any degree (the
                    // uncancelled factors only widen them into Unknown
                    // verdicts), so region pruning and warm starts still
                    // apply even though pointwise NLP evaluation does not.
                    if self.opts.strategy != RepairStrategy::Penalty {
                        let (fns, rows) = self.symbolic_system(template, base, sc);
                        lifted = Some(self.lift_regions(template, &fns, &rows)?);
                    }
                } else if robust.is_none() && self.opts.strategy == RepairStrategy::Lifting {
                    // Lifting was requested but needs the symbolic path.
                    diag.record_fallback("lifting: property not symbolic, penalty search used");
                }
            }
        }
        drop(compile_span);

        // Digest the region verdicts: a fully-violating box is a sound
        // infeasibility proof; an exhausted refinement degrades to the
        // full penalty search; surviving boxes warm-start a restart-free
        // penalty solve.
        let mut lifting_evals = 0usize;
        let mut solver_opts = self.opts.solver;
        let mut region_starts: Vec<Vec<f64>> = Vec::new();
        if let Some(lift) = &lifted {
            lifting_evals = lift.evaluations;
            diag.evaluations += lift.evaluations as u64;
            diag.telemetry.incr("parametric.lifting.evaluations", lift.evaluations as u64);
            if lift.exhausted.is_some() {
                diag.record_fallback(
                    "lifting: budget exhausted mid-refinement, penalty search used",
                );
                lifted = None;
            } else if lift.all_violating() {
                return Ok(ModelRepairOutcome {
                    status: RepairStatus::Infeasible,
                    parameters: Vec::new(),
                    cost: 0.0,
                    model: None,
                    verified: false,
                    verified_by_simulation: None,
                    evaluations: lifting_evals,
                    solver_point: None,
                    certificate: None,
                    diagnostics: diag,
                });
            } else {
                region_starts = lift.warm_starts(3);
                solver_opts.restarts = 0;
                if !lift.candidates.is_empty() && solver_opts.penalty_rounds > 3 {
                    // The warm starts already passed a pointwise
                    // feasibility screen, so the slow μ ramp-in rounds are
                    // redundant: start the schedule at the μ it would have
                    // reached, keeping the final μ identical.
                    solver_opts.penalty_init *=
                        solver_opts.penalty_growth.powi(solver_opts.penalty_rounds as i32 - 3);
                    solver_opts.penalty_rounds = 3;
                }
            }
        }

        let mut solver = PenaltySolver::with_options(solver_opts).with_budget(self.budget.clone());
        for w in region_starts {
            solver.start_from(w);
        }
        for w in &self.warm_starts {
            solver.start_from(w.clone());
        }
        let sol = {
            let _s = span!("model_repair.solve");
            solver.solve(&nlp)?
        };
        absorb_solution(&mut diag, &sol);
        if !sol.feasible {
            return Ok(ModelRepairOutcome {
                status: infeasible_status(&sol),
                parameters: name_params(template, &sol.x),
                cost: frobenius_cost(template, &sol.x),
                model: None,
                verified: false,
                verified_by_simulation: None,
                evaluations: sol.evaluations + lifting_evals,
                solver_point: Some(sol.x.clone()),
                certificate: None,
                diagnostics: diag,
            });
        }
        let _recheck = span!("model_repair.recheck");
        let repaired = pdtmc.instantiate(&sol.x)?;
        let verified = if let Some(rs) = robust {
            let ball = IntervalDtmc::wilson_around(&repaired, rs.confidence, rs.sample_size)?;
            let verdict = checker.check_interval_dtmc(&ball, formula)?;
            diag.absorb(verdict.diagnostics());
            verdict.holds()
        } else {
            let verdict = checker.check_dtmc(&repaired, formula)?;
            diag.absorb(verdict.diagnostics());
            verdict.holds()
        };
        let cost = frobenius_cost(template, &sol.x);
        let certificate = lifted.as_ref().map(|lift| {
            let lower_bound = lift.feasible_lower_bound();
            let epsilon = self.opts.lifting.epsilon;
            OptimalityCertificate {
                lower_bound,
                upper_bound: cost,
                epsilon,
                certified: verified && cost - lower_bound <= epsilon,
            }
        });
        Ok(ModelRepairOutcome {
            status: repaired_status(verified, &diag),
            parameters: name_params(template, &sol.x),
            cost,
            model: Some(repaired),
            verified,
            verified_by_simulation: None,
            evaluations: sol.evaluations + lifting_evals,
            solver_point: Some(sol.x.clone()),
            certificate,
            diagnostics: diag,
        })
    }

    /// Repairs an MDP through the instantiate-and-check oracle.
    ///
    /// The property is checked under the PRISM scheduler convention (see
    /// `tml_checker::Checker::check_mdp`), so e.g.
    /// `R{"attempts"}<=40 [F done]` requires even the worst scheduler to
    /// stay under 40 expected attempts.
    ///
    /// # Errors
    ///
    /// Same conditions as [`repair_dtmc`](Self::repair_dtmc).
    pub fn repair_mdp(
        &self,
        base: &Mdp,
        formula: &StateFormula,
        template: &MdpPerturbationTemplate,
    ) -> Result<ModelRepairOutcome<Mdp>, RepairError> {
        let _span = span!("model_repair", model = "mdp", params = template.num_params());
        if self.opts.robust.is_some() {
            // A confidence ball around an MDP candidate would need per-choice
            // sample sizes and robust reach rewards on interval MDPs, neither
            // of which is available — see tml_checker::robust.
            return Err(RepairError::UnsupportedProperty {
                property: formula.to_string(),
                reason: "robust repair is only implemented for DTMC models".into(),
            });
        }
        let checker = Checker::with_options(self.opts.check).with_budget(self.budget.clone());
        let mut diag = Diagnostics::new();
        let initial = {
            let _s = span!("model_repair.verify_initial");
            checker.check_mdp(base, formula)?
        };
        diag.absorb(initial.diagnostics());
        if initial.holds() {
            return Ok(ModelRepairOutcome {
                status: RepairStatus::AlreadySatisfied,
                parameters: Vec::new(),
                cost: 0.0,
                model: Some(base.clone()),
                verified: true,
                verified_by_simulation: None,
                evaluations: 0,
                solver_point: None,
                certificate: None,
                diagnostics: diag,
            });
        }
        template.validate(base)?;
        let compile_span = span!("model_repair.compile");
        let (op, bound) = top_level_bound(formula)?;
        let mut nlp = Nlp::new(template.num_params(), template.bounds())?;
        {
            let entries = template.entries.clone();
            nlp.objective(move |v| entries.values().map(|e| e.eval(v).powi(2)).sum());
        }
        // Validity: perturbed probabilities stay inside (0, 1).
        for (&(s, c, t), expr) in &template.entries {
            let base_p = choice_prob(base, s, c, t);
            let e1 = expr.clone();
            let e2 = expr.clone();
            let m = self.opts.support_margin;
            nlp.constraint(&format!("p({s},{c}->{t})>=m"), ConstraintSense::Ge, m, move |v| {
                base_p + e1.eval(v)
            });
            nlp.constraint(
                &format!("p({s},{c}->{t})<=1-m"),
                ConstraintSense::Le,
                1.0 - m,
                move |v| base_p + e2.eval(v),
            );
        }
        {
            let t = template.clone();
            let b = base.clone();
            let phi = formula.clone();
            let check_opts = self.opts.check;
            let margin = self.margin(op);
            let inner = self.budget.without_evaluation_cap();
            nlp.constraint_with_margin("property", sense_of(op), bound, margin, move |v| {
                match t.instantiate(&b, v) {
                    Ok(m) => Checker::with_options(check_opts)
                        .with_budget(inner.clone())
                        .check_mdp(&m, &phi)
                        .ok()
                        .and_then(|r| r.value_at_initial())
                        .unwrap_or(f64::NAN),
                    Err(_) => f64::NAN,
                }
            });
        }
        drop(compile_span);
        let mut solver =
            PenaltySolver::with_options(self.opts.solver).with_budget(self.budget.clone());
        for w in &self.warm_starts {
            solver.start_from(w.clone());
        }
        let sol = {
            let _s = span!("model_repair.solve");
            solver.solve(&nlp)?
        };
        absorb_solution(&mut diag, &sol);
        if !sol.feasible {
            return Ok(ModelRepairOutcome {
                status: infeasible_status(&sol),
                parameters: template.name_params(&sol.x),
                cost: template.cost(&sol.x),
                model: None,
                verified: false,
                verified_by_simulation: None,
                evaluations: sol.evaluations,
                solver_point: Some(sol.x.clone()),
                certificate: None,
                diagnostics: diag,
            });
        }
        let _recheck = span!("model_repair.recheck");
        let repaired = template.instantiate(base, &sol.x)?;
        let verdict = checker.check_mdp(&repaired, formula)?;
        diag.absorb(verdict.diagnostics());
        let verified = verdict.holds();
        Ok(ModelRepairOutcome {
            status: repaired_status(verified, &diag),
            parameters: template.name_params(&sol.x),
            cost: template.cost(&sol.x),
            model: Some(repaired),
            verified,
            verified_by_simulation: None,
            evaluations: sol.evaluations,
            solver_point: Some(sol.x.clone()),
            certificate: None,
            diagnostics: diag,
        })
    }

    fn frobenius_objective(&self, nlp: &mut Nlp, template: &PerturbationTemplate) {
        let exprs: Vec<LinearExpr> = template.entries().map(|(_, e)| e.clone()).collect();
        // ∇‖Z‖²_F = Σ 2·e(v)·∇e, with ∇e the (constant) coefficient vector.
        let coeffs: Vec<Vec<f64>> =
            exprs.iter().map(|e| e.coefficients(template.num_params())).collect();
        let exprs_g = exprs.clone();
        nlp.objective_with_grad(
            move |v| exprs.iter().map(|e| e.eval(v).powi(2)).sum(),
            move |v, g| {
                for (e, cs) in exprs_g.iter().zip(&coeffs) {
                    let scale = 2.0 * e.eval(v);
                    for (gi, c) in g.iter_mut().zip(cs) {
                        *gi += scale * c;
                    }
                }
            },
        );
    }

    /// Builds the symbolic constraint system: the property's rational
    /// function plus every `[m, 1−m]` validity function, paired with the
    /// [`BlockRow`] describing its sense, bound and margin. The same system
    /// feeds both the penalty NLP ([`register_block`]) and the region
    /// solver ([`Self::lift_regions`]), so the two strategies provably
    /// optimize over the same feasible set.
    fn symbolic_system(
        &self,
        template: &PerturbationTemplate,
        base: &Dtmc,
        sc: &crate::constraint::SymbolicConstraint,
    ) -> (Vec<RationalFunction>, Vec<BlockRow>) {
        let np = template.num_params();
        let m = self.opts.support_margin;
        let mut fns = vec![sc.function.clone()];
        let mut rows =
            vec![BlockRow::new("property", sense_of(sc.op), sc.bound, self.margin(sc.op))];
        for (name, base_p, expr) in template.probability_exprs(base) {
            let rf = affine_probability(np, base_p, &expr);
            fns.push(rf.clone());
            rows.push(BlockRow::new(&format!("{name}>=m"), ConstraintSense::Ge, m, 0.0));
            fns.push(rf);
            rows.push(BlockRow::new(&format!("{name}<=1-m"), ConstraintSense::Le, 1.0 - m, 0.0));
        }
        (fns, rows)
    }

    /// Runs branch-and-refine region verification over the template's
    /// parameter box: every NLP constraint row becomes a [`RegionRow`]
    /// whose threshold *includes the margin* (so "all-sat" means
    /// margin-feasible, matching what the penalty solver accepts), and the
    /// Frobenius cost is interval-bounded alongside to order surviving
    /// boxes and derive the certificate's lower bound.
    fn lift_regions(
        &self,
        template: &PerturbationTemplate,
        fns: &[RationalFunction],
        rows: &[BlockRow],
    ) -> Result<LiftingOutcome, RepairError> {
        let set = CompiledConstraintSet::compile(fns)?;
        let region_rows: Vec<RegionRow> = rows
            .iter()
            .map(|r| match r.sense() {
                ConstraintSense::Ge => RegionRow::new(BoundSense::Ge, r.rhs() + r.margin()),
                ConstraintSense::Le => RegionRow::new(BoundSense::Le, r.rhs() - r.margin()),
            })
            .collect();
        let objective = RationalFunction::from_poly(frobenius_polynomial(template)).compile();
        let problem = RegionProblem::new(set, region_rows)?.with_objective(objective);
        let solver = RegionSolver::with_options(self.opts.lifting).with_budget(self.budget.clone());
        Ok(solver.solve(&problem, &template.bounds())?)
    }

    fn validity_constraints(&self, nlp: &mut Nlp, template: &PerturbationTemplate, base: &Dtmc) {
        let m = self.opts.support_margin;
        for (name, base_p, expr) in template.probability_exprs(base) {
            let e1 = expr.clone();
            nlp.constraint(&format!("{name}>=m"), ConstraintSense::Ge, m, move |v| {
                base_p + e1.eval(v)
            });
            let e2 = expr;
            nlp.constraint(&format!("{name}<=1-m"), ConstraintSense::Le, 1.0 - m, move |v| {
                base_p + e2.eval(v)
            });
        }
    }

    fn margin(&self, op: tml_logic::CmpOp) -> f64 {
        // The optimizer accepts points violating constraints by up to its
        // feasibility tolerance; fold that slack into the margin so an
        // "optimizer-feasible" point always verifies under the checker.
        let slack = self.opts.solver.feasibility_tolerance + self.opts.check.bound_tolerance;
        match op {
            tml_logic::CmpOp::Gt | tml_logic::CmpOp::Lt => self.opts.strict_margin + slack,
            _ => slack,
        }
    }
}

/// A perturbation template for MDPs: affine nudges on the transitions of
/// specific state–choice pairs, validated to cancel per distribution.
#[derive(Debug, Clone, Default)]
pub struct MdpPerturbationTemplate {
    params: Vec<(String, f64, f64)>,
    entries: std::collections::BTreeMap<(usize, usize, usize), LinearExpr>,
}

impl MdpPerturbationTemplate {
    /// An empty template.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a repair parameter with box bounds, returning its index.
    pub fn parameter(&mut self, name: &str, lo: f64, hi: f64) -> usize {
        self.params.push((name.to_owned(), lo, hi));
        self.params.len() - 1
    }

    /// Adds `coeff·v_param` to the probability of `state --choice--> succ`.
    ///
    /// # Errors
    ///
    /// Returns [`RepairError::InvalidTemplate`] for unknown parameters.
    pub fn nudge(
        &mut self,
        state: usize,
        choice: usize,
        succ: usize,
        param: usize,
        coeff: f64,
    ) -> Result<&mut Self, RepairError> {
        if param >= self.params.len() {
            return Err(RepairError::InvalidTemplate {
                detail: format!("unknown parameter {param}"),
            });
        }
        let e = self.entries.entry((state, choice, succ)).or_default();
        *e = std::mem::take(e).plus(param, coeff);
        Ok(self)
    }

    /// Number of parameters.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Parameter box bounds.
    pub fn bounds(&self) -> Vec<(f64, f64)> {
        self.params.iter().map(|&(_, lo, hi)| (lo, hi)).collect()
    }

    fn name_params(&self, v: &[f64]) -> Vec<(String, f64)> {
        self.params.iter().zip(v).map(|((n, _, _), &x)| (n.clone(), x)).collect()
    }

    fn cost(&self, v: &[f64]) -> f64 {
        self.entries.values().map(|e| e.eval(v).powi(2)).sum()
    }

    /// Checks support preservation and per-distribution cancellation.
    ///
    /// # Errors
    ///
    /// Returns [`RepairError::InvalidTemplate`] on violations.
    pub fn validate(&self, base: &Mdp) -> Result<(), RepairError> {
        let np = self.params.len();
        let mut rows: std::collections::BTreeMap<(usize, usize), Vec<f64>> = Default::default();
        for (&(s, c, t), expr) in &self.entries {
            if s >= base.num_states() || t >= base.num_states() || c >= base.num_choices(s) {
                return Err(RepairError::InvalidTemplate {
                    detail: format!("entry ({s},{c},{t}) out of range"),
                });
            }
            if choice_prob(base, s, c, t) == 0.0 {
                return Err(RepairError::InvalidTemplate {
                    detail: format!("entry ({s},{c},{t}) would add a transition to the support"),
                });
            }
            let acc = rows.entry((s, c)).or_insert_with(|| vec![0.0; np]);
            for (a, x) in acc.iter_mut().zip(expr.coefficients(np)) {
                *a += x;
            }
        }
        for ((s, c), coeffs) in rows {
            if coeffs.iter().any(|x| x.abs() > 1e-12) {
                return Err(RepairError::InvalidTemplate {
                    detail: format!("perturbations of state {s} choice {c} do not cancel"),
                });
            }
        }
        Ok(())
    }

    /// Instantiates the perturbed MDP at a parameter point.
    ///
    /// # Errors
    ///
    /// Returns [`RepairError::Model`] if a perturbed probability leaves
    /// `[0, 1]`.
    pub fn instantiate(&self, base: &Mdp, v: &[f64]) -> Result<Mdp, RepairError> {
        let mut b = tml_models::MdpBuilder::new(base.num_states());
        b.initial_state(base.initial_state())?;
        for s in 0..base.num_states() {
            for (c, choice) in base.choices(s).iter().enumerate() {
                let dist: Vec<(usize, f64)> = choice
                    .transitions
                    .iter()
                    .map(|&(t, p)| {
                        let delta = self.entries.get(&(s, c, t)).map(|e| e.eval(v)).unwrap_or(0.0);
                        (t, p + delta)
                    })
                    .collect();
                b.choice(s, base.action_name(choice.action), &dist)?;
            }
            for label in base.labeling().labels_of(s) {
                b.label(s, label)?;
            }
        }
        for rs in base.reward_structures() {
            for s in 0..base.num_states() {
                b.state_reward(rs.name(), s, rs.state_reward(s))?;
                for c in 0..base.num_choices(s) {
                    let cr = rs.choice_reward(s, c);
                    if cr != 0.0 {
                        b.choice_reward(rs.name(), s, c, cr)?;
                    }
                }
            }
        }
        Ok(b.build()?)
    }
}

/// Registers a symbolic constraint system as a single compiled block: all
/// rational functions are flattened to evaluation tapes
/// ([`CompiledConstraintSet`]) that share one power table per point, and
/// the block carries an analytic Jacobian so the penalty solver never
/// needs finite differences on the symbolic path.
fn register_block(
    nlp: &mut Nlp,
    fns: &[RationalFunction],
    rows: &[BlockRow],
) -> Result<(), RepairError> {
    let set = CompiledConstraintSet::compile(fns)?;
    let set_jac = set.clone();
    nlp.constraint_block_with_jacobian(
        rows.to_vec(),
        move |v, out| {
            if set.eval_all(v, out).is_err() {
                out.fill(f64::NAN);
            }
        },
        move |v, out, jac| {
            if set_jac.eval_all_grad(v, out, jac).is_err() {
                out.fill(f64::NAN);
                jac.fill(0.0);
            }
        },
    );
    Ok(())
}

/// The Frobenius cost `‖Z‖²_F = Σ (Σᵢ cᵢ·vᵢ)²` as a polynomial in the
/// repair parameters, so the region solver can interval-bound the
/// objective it shares with the penalty NLP.
fn frobenius_polynomial(template: &PerturbationTemplate) -> Polynomial {
    let np = template.num_params();
    let mut total = Polynomial::constant(np, 0.0);
    for (_, expr) in template.entries() {
        let mut lin = Polynomial::constant(np, 0.0);
        for (i, c) in expr.coefficients(np).into_iter().enumerate() {
            if c != 0.0 {
                lin = lin.add(&Polynomial::var(np, i).scale(c));
            }
        }
        total = total.add(&lin.mul(&lin));
    }
    total
}

/// The perturbed probability `base_p + Σᵢ cᵢ·vᵢ` as a (polynomial) rational
/// function, so validity constraints compile into the same tape set as the
/// symbolic property function.
fn affine_probability(np: usize, base_p: f64, expr: &LinearExpr) -> RationalFunction {
    let mut p = Polynomial::constant(np, base_p);
    for (i, c) in expr.coefficients(np).into_iter().enumerate() {
        if c != 0.0 {
            p = p.add(&Polynomial::var(np, i).scale(c));
        }
    }
    RationalFunction::from_poly(p)
}

fn choice_prob(mdp: &Mdp, s: usize, c: usize, t: usize) -> f64 {
    mdp.choices(s)
        .get(c)
        .and_then(|ch| ch.transitions.iter().find(|&&(x, _)| x == t))
        .map(|&(_, p)| p)
        .unwrap_or(0.0)
}

fn sense_of(op: tml_logic::CmpOp) -> ConstraintSense {
    if op.is_lower_bound() {
        ConstraintSense::Ge
    } else {
        ConstraintSense::Le
    }
}

fn top_level_bound(formula: &StateFormula) -> Result<(tml_logic::CmpOp, f64), RepairError> {
    match formula {
        StateFormula::Prob { op, bound, .. } | StateFormula::Reward { op, bound, .. } => {
            Ok((*op, *bound))
        }
        other => Err(RepairError::UnsupportedProperty {
            property: other.to_string(),
            reason: "repair needs a top-level P or R operator with a bound".into(),
        }),
    }
}

/// The conservative end of the robust bracket for the candidate's Wilson
/// uncertainty ball: pessimistic for lower-bound properties, optimistic for
/// upper bounds — the value the robust repair constraint must push past the
/// bound. `NaN` (treated as infeasible by the optimizer) when the ball is
/// malformed or the robust solve fails.
pub(crate) fn robust_value_dtmc(
    model: &Dtmc,
    formula: &StateFormula,
    op: tml_logic::CmpOp,
    rs: RobustSpec,
    check_opts: &tml_checker::CheckOptions,
    budget: &Budget,
) -> f64 {
    let Ok(ball) = IntervalDtmc::wilson_around(model, rs.confidence, rs.sample_size) else {
        return f64::NAN;
    };
    Checker::with_options(*check_opts)
        .with_budget(budget.clone())
        .check_interval_dtmc(&ball, formula)
        .ok()
        .and_then(|r| r.bracket_at_initial())
        .map(|(lo, hi)| if op.is_lower_bound() { lo } else { hi })
        .unwrap_or(f64::NAN)
}

fn oracle_value_dtmc(
    pdtmc: &tml_parametric::ParametricDtmc,
    formula: &StateFormula,
    v: &[f64],
    check_opts: &tml_checker::CheckOptions,
    budget: &Budget,
) -> f64 {
    match pdtmc.instantiate(v) {
        Ok(m) => Checker::with_options(*check_opts)
            .with_budget(budget.clone())
            .check_dtmc(&m, formula)
            .ok()
            .and_then(|r| r.value_at_initial())
            .unwrap_or(f64::NAN),
        Err(_) => f64::NAN,
    }
}

/// Folds an optimizer solution's spend and stop cause into the diagnostics.
pub(crate) fn absorb_solution(diag: &mut Diagnostics, sol: &Solution) {
    diag.evaluations += sol.evaluations as u64;
    diag.telemetry.incr("solver.penalty.evaluations", sol.evaluations as u64);
    if let Some(cause) = sol.stopped {
        diag.mark_exhausted(cause);
    }
}

/// Status of an optimizer-infeasible attempt: a full search proves
/// infeasibility, a truncated one only reports budget exhaustion.
pub(crate) fn infeasible_status(sol: &Solution) -> RepairStatus {
    if sol.stopped.is_some() {
        RepairStatus::BudgetExhausted
    } else {
        RepairStatus::Infeasible
    }
}

/// Status of a feasible attempt: verified repairs are `Repaired` even if
/// the budget ran out afterwards; an unverified repair under an exhausted
/// budget is only `BudgetExhausted` (the verification itself may have been
/// truncated).
pub(crate) fn repaired_status(verified: bool, diag: &Diagnostics) -> RepairStatus {
    if !verified && diag.exhausted.is_some() {
        RepairStatus::BudgetExhausted
    } else {
        RepairStatus::Repaired
    }
}

fn name_params(template: &PerturbationTemplate, v: &[f64]) -> Vec<(String, f64)> {
    template.param_names().into_iter().zip(v.iter().copied()).collect()
}

fn frobenius_cost(template: &PerturbationTemplate, v: &[f64]) -> f64 {
    template.entries().map(|(_, e)| e.eval(v).powi(2)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tml_logic::parse_formula;
    use tml_models::{DtmcBuilder, MdpBuilder};

    /// success/failure split at state 0 with p(success) = 0.8.
    fn chain() -> Dtmc {
        let mut b = DtmcBuilder::new(3);
        b.transition(0, 1, 0.8).unwrap();
        b.transition(0, 2, 0.2).unwrap();
        b.transition(1, 1, 1.0).unwrap();
        b.transition(2, 2, 1.0).unwrap();
        b.label(1, "ok").unwrap();
        b.build().unwrap()
    }

    fn shift_template() -> PerturbationTemplate {
        let mut t = PerturbationTemplate::new();
        let v = t.parameter("v", -0.19, 0.19);
        t.nudge(0, 1, v, 1.0).unwrap();
        t.nudge(0, 2, v, -1.0).unwrap();
        t
    }

    #[test]
    fn already_satisfied_short_circuits() {
        let d = chain();
        let phi = parse_formula("P>=0.7 [ F \"ok\" ]").unwrap();
        let out = ModelRepair::new().repair_dtmc(&d, &phi, &shift_template()).unwrap();
        assert_eq!(out.status, RepairStatus::AlreadySatisfied);
        assert_eq!(out.cost, 0.0);
        assert!(out.verified);
    }

    #[test]
    fn symbolic_repair_finds_minimal_shift() {
        let d = chain();
        let phi = parse_formula("P>=0.9 [ F \"ok\" ]").unwrap();
        let out = ModelRepair::new().repair_dtmc(&d, &phi, &shift_template()).unwrap();
        assert_eq!(out.status, RepairStatus::Repaired);
        assert!(out.verified);
        let v = out.parameters[0].1;
        // Minimal shift is +0.1 (within numerical slack).
        assert!((v - 0.1).abs() < 1e-3, "v = {v}");
        // Frobenius cost counts both perturbed entries: 2 v².
        assert!((out.cost - 2.0 * v * v).abs() < 1e-9);
        let m = out.model.unwrap();
        assert!(m.probability(0, 1) >= 0.9 - 1e-6);
    }

    #[test]
    fn infeasible_when_bound_unreachable() {
        let d = chain();
        // 0.99 needs v = 0.19 exactly at the box edge minus margin... make
        // it clearly impossible:
        let phi = parse_formula("P>=0.999 [ F \"ok\" ]").unwrap();
        let out = ModelRepair::new().repair_dtmc(&d, &phi, &shift_template()).unwrap();
        assert_eq!(out.status, RepairStatus::Infeasible);
        assert!(out.model.is_none());
    }

    #[test]
    fn oracle_path_handles_bounded_property() {
        // Bounded eventually is outside the symbolic fragment → oracle.
        let d = chain();
        let phi = parse_formula("P>=0.9 [ F<=1 \"ok\" ]").unwrap();
        let out = ModelRepair::new().repair_dtmc(&d, &phi, &shift_template()).unwrap();
        assert_eq!(out.status, RepairStatus::Repaired);
        assert!(out.verified);
    }

    #[test]
    fn mdp_repair_through_oracle() {
        // MDP where the risky action's success probability is repairable.
        let mut b = MdpBuilder::new(3);
        b.choice(0, "risky", &[(1, 0.8), (2, 0.2)]).unwrap();
        b.choice(1, "stay", &[(1, 1.0)]).unwrap();
        b.choice(2, "stay", &[(2, 1.0)]).unwrap();
        b.label(1, "ok").unwrap();
        let m = b.build().unwrap();
        let phi = parse_formula("P>=0.9 [ F \"ok\" ]").unwrap();
        let mut t = MdpPerturbationTemplate::new();
        let v = t.parameter("v", -0.15, 0.15);
        t.nudge(0, 0, 1, v, 1.0).unwrap();
        t.nudge(0, 0, 2, v, -1.0).unwrap();
        let out = ModelRepair::new().repair_mdp(&m, &phi, &t).unwrap();
        assert_eq!(out.status, RepairStatus::Repaired);
        assert!(out.verified);
        let v = out.parameters[0].1;
        assert!((v - 0.1).abs() < 5e-3, "v = {v}");
    }

    #[test]
    fn mdp_template_validation() {
        let mut b = MdpBuilder::new(2);
        b.choice(0, "a", &[(1, 1.0)]).unwrap();
        b.choice(1, "a", &[(1, 1.0)]).unwrap();
        let m = b.build().unwrap();
        let mut t = MdpPerturbationTemplate::new();
        let v = t.parameter("v", -0.1, 0.1);
        t.nudge(0, 0, 1, v, 1.0).unwrap(); // does not cancel
        assert!(t.validate(&m).is_err());

        let mut t2 = MdpPerturbationTemplate::new();
        let v2 = t2.parameter("v", -0.1, 0.1);
        t2.nudge(0, 0, 0, v2, 1.0).unwrap(); // support change: p(0,a,0)=0
        t2.nudge(0, 0, 1, v2, -1.0).unwrap();
        assert!(t2.validate(&m).is_err());
    }

    #[test]
    fn exhausted_budget_reports_status_instead_of_erroring() {
        let d = chain();
        let phi = parse_formula("P>=0.9 [ F \"ok\" ]").unwrap();
        let out = ModelRepair::new()
            .with_budget(Budget::unlimited().with_max_evaluations(0))
            .repair_dtmc(&d, &phi, &shift_template())
            .unwrap();
        assert_eq!(out.status, RepairStatus::BudgetExhausted);
        assert!(out.diagnostics.exhausted.is_some());
        assert!(out.diagnostics.degraded());
        assert!(!out.verified);
    }

    #[test]
    fn unlimited_budget_keeps_exact_semantics() {
        let d = chain();
        let phi = parse_formula("P>=0.9 [ F \"ok\" ]").unwrap();
        let out = ModelRepair::new()
            .with_budget(Budget::unlimited())
            .repair_dtmc(&d, &phi, &shift_template())
            .unwrap();
        assert_eq!(out.status, RepairStatus::Repaired);
        assert!(out.diagnostics.exhausted.is_none());
    }

    fn lifting_opts() -> crate::RepairOptions {
        crate::RepairOptions { strategy: RepairStrategy::Lifting, ..Default::default() }
    }

    #[test]
    fn lifting_strategy_agrees_with_penalty_and_certifies() {
        let d = chain();
        let phi = parse_formula("P>=0.9 [ F \"ok\" ]").unwrap();
        let penalty = ModelRepair::new().repair_dtmc(&d, &phi, &shift_template()).unwrap();
        let lifted = ModelRepair::with_options(lifting_opts())
            .repair_dtmc(&d, &phi, &shift_template())
            .unwrap();
        assert_eq!(lifted.status, RepairStatus::Repaired);
        assert!(lifted.verified);
        // Same repair (minimal shift +0.1) from both strategies.
        assert!((lifted.parameters[0].1 - penalty.parameters[0].1).abs() < 1e-3);
        // Lifting prunes restarts, so it must be cheaper than the full
        // multi-start penalty search.
        assert!(lifted.evaluations < penalty.evaluations);
        let cert = lifted.certificate.expect("lifting emits a certificate");
        assert!(cert.lower_bound <= lifted.cost + 1e-12, "{cert:?}");
        assert!(cert.certified, "{cert:?} vs cost {}", lifted.cost);
        // The penalty path proves nothing about global optimality.
        assert!(penalty.certificate.is_none());
    }

    #[test]
    fn lifting_proves_infeasibility_without_solving() {
        let d = chain();
        let phi = parse_formula("P>=0.999 [ F \"ok\" ]").unwrap();
        let out = ModelRepair::with_options(lifting_opts())
            .repair_dtmc(&d, &phi, &shift_template())
            .unwrap();
        assert_eq!(out.status, RepairStatus::Infeasible);
        assert!(out.model.is_none());
        // The region proof never ran the penalty solver.
        assert!(out.solver_point.is_none());
        assert!(out.evaluations > 0);
    }

    #[test]
    fn lifting_falls_back_on_oracle_properties() {
        // Bounded eventually is outside the symbolic fragment: Lifting must
        // degrade to penalty and say so; Auto degrades silently.
        let d = chain();
        let phi = parse_formula("P>=0.9 [ F<=1 \"ok\" ]").unwrap();
        let out = ModelRepair::with_options(lifting_opts())
            .repair_dtmc(&d, &phi, &shift_template())
            .unwrap();
        assert_eq!(out.status, RepairStatus::Repaired);
        assert!(out.certificate.is_none());
        assert!(
            out.diagnostics.fallbacks.iter().any(|f| f.contains("lifting")),
            "{:?}",
            out.diagnostics.fallbacks
        );
        let auto = ModelRepair::with_options(crate::RepairOptions {
            strategy: RepairStrategy::Auto,
            ..Default::default()
        })
        .repair_dtmc(&d, &phi, &shift_template())
        .unwrap();
        assert_eq!(auto.status, RepairStatus::Repaired);
        assert!(!auto.diagnostics.fallbacks.iter().any(|f| f.contains("lifting")));
    }

    #[test]
    fn lifting_exhaustion_degrades_to_penalty() {
        let d = chain();
        let phi = parse_formula("P>=0.9 [ F \"ok\" ]").unwrap();
        // Enough budget for the first lifting round to be cut short but for
        // the diagnostics to record the degradation.
        let out = ModelRepair::with_options(lifting_opts())
            .with_budget(Budget::unlimited().with_max_evaluations(2))
            .repair_dtmc(&d, &phi, &shift_template())
            .unwrap();
        assert_eq!(out.status, RepairStatus::BudgetExhausted);
        assert!(out.certificate.is_none());
        assert!(
            out.diagnostics.fallbacks.iter().any(|f| f.contains("exhausted")),
            "{:?}",
            out.diagnostics.fallbacks
        );
    }

    #[test]
    fn non_bounded_formula_rejected() {
        let d = chain();
        let phi = parse_formula("\"ok\"").unwrap();
        // Not already satisfied at state 0 and no numeric witness → error
        // surfaces from the template path as UnsupportedProperty.
        let err = ModelRepair::new().repair_dtmc(&d, &phi, &shift_template());
        assert!(matches!(err, Err(RepairError::UnsupportedProperty { .. })));
    }

    fn robust_opts(confidence: f64) -> crate::RepairOptions {
        crate::RepairOptions { robust: Some(RobustSpec::new(confidence)), ..Default::default() }
    }

    #[test]
    fn robust_repair_shifts_further_than_nominal() {
        let d = chain();
        let phi = parse_formula("P>=0.9 [ F \"ok\" ]").unwrap();
        let nominal = ModelRepair::new().repair_dtmc(&d, &phi, &shift_template()).unwrap();
        let robust = ModelRepair::with_options(robust_opts(0.95))
            .repair_dtmc(&d, &phi, &shift_template())
            .unwrap();
        assert_eq!(robust.status, RepairStatus::Repaired);
        assert!(robust.verified, "robust repair must robust-verify");
        // Nominal stops at v ≈ 0.1 (p = 0.9 exactly); robust must push the
        // point estimate high enough that the Wilson lower bound clears 0.9,
        // so it shifts strictly further and pays a strictly higher cost.
        let vn = nominal.parameters[0].1;
        let vr = robust.parameters[0].1;
        assert!(vr > vn + 0.02, "robust v = {vr}, nominal v = {vn}");
        assert!(robust.cost > nominal.cost, "{} vs {}", robust.cost, nominal.cost);
        // The robust repair's point estimate itself clears the bound with
        // room to spare — the calibration margin.
        let m = robust.model.unwrap();
        assert!(m.probability(0, 1) > 0.9 + 0.02);
    }

    #[test]
    fn robust_repair_tightens_with_confidence() {
        // Higher confidence ⇒ wider Wilson ball ⇒ larger shift.
        let d = chain();
        let phi = parse_formula("P>=0.9 [ F \"ok\" ]").unwrap();
        let lo = ModelRepair::with_options(robust_opts(0.80))
            .repair_dtmc(&d, &phi, &shift_template())
            .unwrap();
        let hi = ModelRepair::with_options(robust_opts(0.99))
            .repair_dtmc(&d, &phi, &shift_template())
            .unwrap();
        assert_eq!(lo.status, RepairStatus::Repaired);
        assert_eq!(hi.status, RepairStatus::Repaired);
        assert!(
            hi.parameters[0].1 > lo.parameters[0].1,
            "99% shift {} should exceed 80% shift {}",
            hi.parameters[0].1,
            lo.parameters[0].1
        );
    }

    #[test]
    fn robust_already_satisfied_needs_the_ball_to_pass() {
        // Point estimate 0.8 passes P>=0.7 nominally, but the 95% ball's
        // pessimistic value dips below 0.7 at sample size 25 — robust repair
        // must actually move the chain rather than short-circuit.
        let d = chain();
        let phi = parse_formula("P>=0.7 [ F \"ok\" ]").unwrap();
        let opts = crate::RepairOptions {
            robust: Some(RobustSpec { confidence: 0.95, sample_size: 25.0 }),
            ..Default::default()
        };
        let out = ModelRepair::with_options(opts).repair_dtmc(&d, &phi, &shift_template()).unwrap();
        assert_eq!(out.status, RepairStatus::Repaired);
        assert!(out.verified);
        assert!(out.cost > 0.0);
    }

    #[test]
    fn robust_rejects_invalid_spec() {
        let d = chain();
        let phi = parse_formula("P>=0.9 [ F \"ok\" ]").unwrap();
        for spec in [
            RobustSpec { confidence: 1.0, sample_size: 100.0 },
            RobustSpec { confidence: 0.0, sample_size: 100.0 },
            RobustSpec { confidence: 0.95, sample_size: 0.0 },
            RobustSpec { confidence: 0.95, sample_size: f64::NAN },
        ] {
            let opts = crate::RepairOptions { robust: Some(spec), ..Default::default() };
            let err = ModelRepair::with_options(opts).repair_dtmc(&d, &phi, &shift_template());
            assert!(matches!(err, Err(RepairError::InvalidInput { .. })), "{spec:?}");
        }
    }

    #[test]
    fn robust_mdp_repair_rejected() {
        let mut b = MdpBuilder::new(2);
        b.choice(0, "a", &[(0, 0.5), (1, 0.5)]).unwrap();
        b.choice(1, "a", &[(1, 1.0)]).unwrap();
        b.label(1, "ok").unwrap();
        let m = b.build().unwrap();
        let phi = parse_formula("P>=0.9 [ F \"ok\" ]").unwrap();
        let mut t = MdpPerturbationTemplate::new();
        let v = t.parameter("v", -0.1, 0.1);
        t.nudge(0, 0, 1, v, 1.0).unwrap();
        t.nudge(0, 0, 0, v, -1.0).unwrap();
        let err = ModelRepair::with_options(robust_opts(0.95)).repair_mdp(&m, &phi, &t);
        assert!(matches!(err, Err(RepairError::UnsupportedProperty { .. })));
    }

    #[test]
    fn robust_lifting_degrades_with_recorded_fallback() {
        let d = chain();
        let phi = parse_formula("P>=0.9 [ F \"ok\" ]").unwrap();
        let opts = crate::RepairOptions {
            strategy: RepairStrategy::Lifting,
            robust: Some(RobustSpec::new(0.95)),
            ..Default::default()
        };
        let out = ModelRepair::with_options(opts).repair_dtmc(&d, &phi, &shift_template()).unwrap();
        assert_eq!(out.status, RepairStatus::Repaired);
        assert!(out.certificate.is_none());
        assert!(
            out.diagnostics.fallbacks.iter().any(|f| f.contains("robust")),
            "{:?}",
            out.diagnostics.fallbacks
        );
    }
}
