//! Turning PCTL properties into optimizer constraints.
//!
//! Model and Data Repair need the satisfaction of `φ` as a *numeric*
//! constraint `f(v) ⋈ b`. For the property shapes the paper uses —
//! probability bounds on (unbounded) until/eventually and bounds on
//! expected reachability rewards, with propositional operands — the
//! parametric engine yields `f` in closed form.

use tml_logic::{CmpOp, PathFormula, RewardKind, StateFormula};
use tml_models::Labeling;
use tml_parametric::{ParametricDtmc, RationalFunction};

use crate::RepairError;

/// Evaluates a *propositional* state formula (no `P`/`R` operators) to a
/// per-state mask over a labeling. Returns `None` if the formula contains a
/// probabilistic or reward operator.
///
/// # Example
///
/// ```
/// use tml_core::propositional_mask;
/// use tml_logic::parse_formula;
/// use tml_models::Labeling;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut l = Labeling::new(2);
/// l.add(1, "goal")?;
/// let f = parse_formula("!\"goal\"")?;
/// assert_eq!(propositional_mask(&l, &f), Some(vec![true, false]));
/// let p = parse_formula("P>=0.5 [ F \"goal\" ]")?;
/// assert_eq!(propositional_mask(&l, &p), None);
/// # Ok(())
/// # }
/// ```
pub fn propositional_mask(labeling: &Labeling, formula: &StateFormula) -> Option<Vec<bool>> {
    let n = labeling.num_states();
    Some(match formula {
        StateFormula::True => vec![true; n],
        StateFormula::False => vec![false; n],
        StateFormula::Atom(a) => labeling.mask(a),
        StateFormula::Not(f) => propositional_mask(labeling, f)?.iter().map(|b| !b).collect(),
        StateFormula::And(a, b) => {
            let (x, y) = (propositional_mask(labeling, a)?, propositional_mask(labeling, b)?);
            x.into_iter().zip(y).map(|(p, q)| p && q).collect()
        }
        StateFormula::Or(a, b) => {
            let (x, y) = (propositional_mask(labeling, a)?, propositional_mask(labeling, b)?);
            x.into_iter().zip(y).map(|(p, q)| p || q).collect()
        }
        StateFormula::Implies(a, b) => {
            let (x, y) = (propositional_mask(labeling, a)?, propositional_mask(labeling, b)?);
            x.into_iter().zip(y).map(|(p, q)| !p || q).collect()
        }
        StateFormula::Prob { .. } | StateFormula::Reward { .. } => return None,
    })
}

/// A property compiled to a symbolic constraint `f(v) ⋈ bound` on the
/// initial state of a parametric chain.
#[derive(Debug, Clone)]
pub struct SymbolicConstraint {
    /// The left-hand side as a rational function of the repair parameters.
    pub function: RationalFunction,
    /// The comparison operator.
    pub op: CmpOp,
    /// The right-hand side.
    pub bound: f64,
}

/// Compiles a top-level property into a [`SymbolicConstraint`] against the
/// parametric chain's initial state.
///
/// Supported shapes (the ones the paper's repairs exercise):
///
/// * `P ⋈ b [ F ψ ]`, `P ⋈ b [ φ U ψ ]` (unbounded) with propositional
///   `φ`, `ψ`;
/// * `P ⋈ b [ G ψ ]` via the `1 − P(F ¬ψ)` duality;
/// * `R{"s"} ⋈ c [ F ψ ]` with propositional `ψ`.
///
/// # Errors
///
/// [`RepairError::UnsupportedProperty`] for other shapes (bounded
/// operators, nested `P`/`R`, `X`, cumulative rewards) — repairs of those
/// can still run through the instantiate-and-check oracle path.
pub fn compile_constraint(
    pdtmc: &ParametricDtmc,
    formula: &StateFormula,
) -> Result<SymbolicConstraint, RepairError> {
    let unsupported = |reason: &str| RepairError::UnsupportedProperty {
        property: formula.to_string(),
        reason: reason.to_owned(),
    };
    let labeling = pdtmc.labeling();
    let init = pdtmc.initial_state();
    match formula {
        StateFormula::Prob { op, bound, path, .. } => {
            let (f_all, negated) = match path {
                PathFormula::Eventually { sub, bound: None } => {
                    let target = propositional_mask(labeling, sub)
                        .ok_or_else(|| unsupported("nested P/R operator in path operand"))?;
                    (pdtmc.reachability(&target)?, false)
                }
                PathFormula::Until { lhs, rhs, bound: None } => {
                    let phi = propositional_mask(labeling, lhs)
                        .ok_or_else(|| unsupported("nested P/R operator in path operand"))?;
                    let target = propositional_mask(labeling, rhs)
                        .ok_or_else(|| unsupported("nested P/R operator in path operand"))?;
                    (pdtmc.until(&phi, &target)?, false)
                }
                PathFormula::Globally { sub, bound: None } => {
                    let inv: Vec<bool> = propositional_mask(labeling, sub)
                        .ok_or_else(|| unsupported("nested P/R operator in path operand"))?
                        .iter()
                        .map(|b| !b)
                        .collect();
                    (pdtmc.reachability(&inv)?, true)
                }
                _ => return Err(unsupported("only unbounded F/U/G path formulas are supported")),
            };
            let function = f_all[init].clone();
            let mut op = *op;
            let mut bound_v = *bound;
            if negated {
                // P(G ψ) ⋈ b  ⇔  1 − P(F ¬ψ) ⋈ b  ⇔  P(F ¬ψ) ⋈ᵈᵘᵃˡ 1 − b.
                bound_v = 1.0 - bound_v;
                op = flip(op);
            }
            Ok(SymbolicConstraint { function, op, bound: bound_v })
        }
        StateFormula::Reward { structure, op, bound, kind, .. } => match kind {
            RewardKind::Reach(target) => {
                let mask = propositional_mask(labeling, target)
                    .ok_or_else(|| unsupported("nested P/R operator in reward target"))?;
                let name = structure.as_deref().ok_or_else(|| {
                    unsupported("reward operator must name a reward structure for symbolic repair")
                })?;
                let values = pdtmc.expected_reward(name, &mask)?;
                Ok(SymbolicConstraint { function: values[init].clone(), op: *op, bound: *bound })
            }
            RewardKind::Cumulative(_) => Err(unsupported("cumulative rewards are not symbolic")),
        },
        _ => Err(unsupported("top-level property must be a P or R operator")),
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tml_logic::parse_formula;
    use tml_parametric::RationalFunction as RF;

    fn pdtmc() -> ParametricDtmc {
        let c = |x: f64| RF::constant(1, x);
        let v = RF::var(1, 0);
        let mut b = ParametricDtmc::builder(3, vec!["v".into()]);
        b.transition(0, 1, c(0.5).add(&v)).unwrap();
        b.transition(0, 2, c(0.5).sub(&v)).unwrap();
        b.transition(1, 1, c(1.0)).unwrap();
        b.transition(2, 2, c(1.0)).unwrap();
        b.label(1, "ok").unwrap();
        b.label(2, "fail").unwrap();
        b.state_reward("cost", 0, c(1.0)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn compiles_eventually() {
        let p = pdtmc();
        let f = parse_formula("P>=0.8 [ F \"ok\" ]").unwrap();
        let c = compile_constraint(&p, &f).unwrap();
        assert_eq!(c.op, CmpOp::Ge);
        assert_eq!(c.bound, 0.8);
        assert!((c.function.eval(&[0.2]).unwrap() - 0.7).abs() < 1e-10);
    }

    #[test]
    fn compiles_globally_via_duality() {
        let p = pdtmc();
        // P(G !fail) >= 0.8  ⇔  P(F fail) <= 0.2.
        let f = parse_formula("P>=0.8 [ G !\"fail\" ]").unwrap();
        let c = compile_constraint(&p, &f).unwrap();
        assert_eq!(c.op, CmpOp::Le);
        assert!((c.bound - 0.2).abs() < 1e-12);
        assert!((c.function.eval(&[0.1]).unwrap() - 0.4).abs() < 1e-10);
    }

    #[test]
    fn compiles_until_with_restriction() {
        let p = pdtmc();
        let f = parse_formula("P>=0.5 [ !\"fail\" U \"ok\" ]").unwrap();
        let c = compile_constraint(&p, &f).unwrap();
        assert!((c.function.eval(&[0.0]).unwrap() - 0.5).abs() < 1e-10);
    }

    #[test]
    fn compiles_reward_reach() {
        // Reward property needs a.s. reachability: use a retry chain.
        let cst = |x: f64| RF::constant(1, x);
        let v = RF::var(1, 0);
        let mut b = ParametricDtmc::builder(2, vec!["v".into()]);
        b.transition(0, 1, cst(0.5).add(&v)).unwrap();
        b.transition(0, 0, cst(0.5).sub(&v)).unwrap();
        b.transition(1, 1, cst(1.0)).unwrap();
        b.label(1, "done").unwrap();
        b.state_reward("tries", 0, cst(1.0)).unwrap();
        let p = b.build().unwrap();
        let f = parse_formula("R{\"tries\"}<=3 [ F \"done\" ]").unwrap();
        let c = compile_constraint(&p, &f).unwrap();
        assert_eq!(c.op, CmpOp::Le);
        assert!((c.function.eval(&[0.0]).unwrap() - 2.0).abs() < 1e-10);
    }

    #[test]
    fn unsupported_shapes_are_reported() {
        let p = pdtmc();
        for src in [
            "P>=0.5 [ X \"ok\" ]",
            "P>=0.5 [ F<=3 \"ok\" ]",
            "P>=0.5 [ F P>=0.5 [ F \"ok\" ] ]",
            "R{\"cost\"}<=3 [ C<=5 ]",
            "\"ok\"",
            "R<=3 [ F \"ok\" ]", // unnamed structure
        ] {
            let f = parse_formula(src).unwrap();
            assert!(
                matches!(compile_constraint(&p, &f), Err(RepairError::UnsupportedProperty { .. })),
                "expected unsupported: {src}"
            );
        }
    }

    #[test]
    fn propositional_mask_handles_connectives() {
        let p = pdtmc();
        let f = parse_formula("\"ok\" | \"fail\"").unwrap();
        assert_eq!(propositional_mask(p.labeling(), &f), Some(vec![false, true, true]));
        let g = parse_formula("true => !\"ok\"").unwrap();
        assert_eq!(propositional_mask(p.labeling(), &g), Some(vec![true, false, true]));
    }
}
