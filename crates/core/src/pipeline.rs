//! The end-to-end TML pipeline of Section II: *learn → verify → Model
//! Repair → Data Repair → report*.
//!
//! Given a trace dataset `D`, a model spec, and a property `φ`:
//!
//! 1. learn `M = ML(D)` by maximum likelihood;
//! 2. if `M ⊨ φ`, output `M`;
//! 3. otherwise run Model Repair (if a perturbation template was
//!    configured); if it finds `M' ⊨ φ`, output `M'`;
//! 4. otherwise run Data Repair; if re-learning from repaired data gives
//!    `M'' ⊨ φ`, output `M''`;
//! 5. otherwise report that `φ` cannot be satisfied under the configured
//!    feasibility classes.

use std::fmt;
use std::sync::Arc;

use tml_checker::Checker;
use tml_logic::StateFormula;
use tml_models::{learn, Dtmc, MlOptions, TraceDataset};
use tml_numerics::{Budget, Diagnostics};
use tml_telemetry::span;

use crate::{
    DataRepair, DataRepairOutcome, ModelRepair, ModelRepairOutcome, ModelSpec,
    PerturbationTemplate, RepairError, RepairOptions, RepairStatus,
};

/// How the pipeline concluded.
#[derive(Debug, Clone)]
pub enum TmlOutcome {
    /// The learned model already satisfies the property.
    Satisfied {
        /// The learned model.
        model: Dtmc,
        /// What the verification spent.
        diagnostics: Diagnostics,
        /// Result of the independent simulation cross-check, when one was
        /// configured via [`TmlPipeline::with_simulation_cross_check`]:
        /// `Some(true)` if simulation could not refute the property,
        /// `Some(false)` if it refuted it, `None` if no hook was configured
        /// or the property is outside the simulable fragment.
        verified_by_simulation: Option<bool>,
    },
    /// Model Repair succeeded.
    ModelRepaired {
        /// The repair details (model inside).
        outcome: ModelRepairOutcome<Dtmc>,
    },
    /// Model Repair failed but Data Repair succeeded.
    DataRepaired {
        /// The repair details (re-learned model inside).
        outcome: DataRepairOutcome,
        /// Why model repair did not conclude (status of its attempt), if it
        /// was configured.
        model_repair_status: Option<RepairStatus>,
    },
    /// No configured repair can satisfy the property — or, when
    /// `diagnostics.exhausted` is set, the budget ran out before any stage
    /// could produce a verified model.
    Unrepairable {
        /// Status of the model-repair attempt, if configured.
        model_repair_status: Option<RepairStatus>,
        /// Status of the data-repair attempt, if configured.
        data_repair_status: Option<RepairStatus>,
        /// Aggregated spend across every stage that ran.
        diagnostics: Diagnostics,
    },
}

impl TmlOutcome {
    /// The final trusted model, when one exists.
    pub fn model(&self) -> Option<&Dtmc> {
        match self {
            TmlOutcome::Satisfied { model, .. } => Some(model),
            TmlOutcome::ModelRepaired { outcome } => outcome.model.as_ref(),
            TmlOutcome::DataRepaired { outcome, .. } => outcome.model.as_ref(),
            TmlOutcome::Unrepairable { .. } => None,
        }
    }

    /// Whether the pipeline produced a property-satisfying model.
    pub fn is_trusted(&self) -> bool {
        self.model().is_some()
    }

    /// What the concluding stage spent and which degradation paths it took.
    pub fn diagnostics(&self) -> &Diagnostics {
        match self {
            TmlOutcome::Satisfied { diagnostics, .. } => diagnostics,
            TmlOutcome::ModelRepaired { outcome } => &outcome.diagnostics,
            TmlOutcome::DataRepaired { outcome, .. } => &outcome.diagnostics,
            TmlOutcome::Unrepairable { diagnostics, .. } => diagnostics,
        }
    }

    /// Whether any stage degraded (fallbacks, accepted residuals or an
    /// exhausted budget).
    pub fn degraded(&self) -> bool {
        self.diagnostics().degraded()
    }

    /// Result of the independent simulation cross-check on the concluding
    /// model, when a hook was configured (see
    /// [`TmlPipeline::with_simulation_cross_check`]).
    pub fn verified_by_simulation(&self) -> Option<bool> {
        match self {
            TmlOutcome::Satisfied { verified_by_simulation, .. } => *verified_by_simulation,
            TmlOutcome::ModelRepaired { outcome } => outcome.verified_by_simulation,
            TmlOutcome::DataRepaired { outcome, .. } => outcome.verified_by_simulation,
            TmlOutcome::Unrepairable { .. } => None,
        }
    }
}

/// Independent re-verification hook: given a candidate trusted model and
/// the property, report `Some(acceptable)` or `None` when the check does
/// not apply (e.g. the property is outside the hook's fragment).
pub type SimulationCrossCheck = Arc<dyn Fn(&Dtmc, &StateFormula) -> Option<bool> + Send + Sync>;

/// The pipeline's stages, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelineStage {
    /// Maximum-likelihood learning from the trace dataset.
    Learn,
    /// Initial verification of the learned model.
    Verify,
    /// The Model Repair stage.
    ModelRepair,
    /// The Data Repair stage.
    DataRepair,
}

impl PipelineStage {
    /// Stable lowercase name (journal/report wire form).
    pub fn name(self) -> &'static str {
        match self {
            PipelineStage::Learn => "learn",
            PipelineStage::Verify => "verify",
            PipelineStage::ModelRepair => "model_repair",
            PipelineStage::DataRepair => "data_repair",
        }
    }

    /// Parses a name produced by [`name`](Self::name).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "learn" => Some(PipelineStage::Learn),
            "verify" => Some(PipelineStage::Verify),
            "model_repair" => Some(PipelineStage::ModelRepair),
            "data_repair" => Some(PipelineStage::DataRepair),
            _ => None,
        }
    }
}

/// Progress report fired by [`TmlPipeline::run`] after each stage
/// completes, carrying whatever restart state the stage produced.
#[derive(Debug, Clone)]
pub struct PipelineCheckpoint {
    /// The stage that just completed.
    pub stage: PipelineStage,
    /// The best solver point the stage's optimizer reached (`None` for
    /// stages that run no optimizer). Feeding it back through
    /// [`TmlPipeline::with_warm_start`] lets a retry resume the search.
    pub solver_point: Option<Vec<f64>>,
}

/// Observer invoked synchronously on the pipeline thread after each stage.
/// A panic inside the hook propagates out of `run` — batch executors rely
/// on this to inject stage-targeted faults.
pub type CheckpointHook = Arc<dyn Fn(&PipelineCheckpoint) + Send + Sync>;

/// Configurable TML pipeline.
///
/// # Example
///
/// ```
/// use tml_core::pipeline::TmlPipeline;
/// use tml_core::ModelSpec;
/// use tml_logic::parse_formula;
/// use tml_models::{TraceDataset, Path};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut ds = TraceDataset::new();
/// let ok = ds.add_class("ok");
/// let bad = ds.add_class("bad");
/// ds.push(ok, Path::from_states(vec![0, 1, 1]), 6.0)?;
/// ds.push(bad, Path::from_states(vec![0, 2, 2]), 4.0)?;
/// let spec = ModelSpec::new(3).label(1, "goal");
/// let phi = parse_formula("P>=0.7 [ F \"goal\" ]")?;
///
/// // No model-repair template configured: the pipeline learns, finds the
/// // property violated (P = 0.6), and falls through to data repair.
/// let outcome = TmlPipeline::new(spec, phi).with_data_repair().run(&ds)?;
/// assert!(outcome.is_trusted());
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct TmlPipeline {
    spec: ModelSpec,
    formula: StateFormula,
    opts: RepairOptions,
    template: Option<PerturbationTemplate>,
    data_repair: bool,
    budget: Budget,
    cross_check: Option<SimulationCrossCheck>,
    checkpoint_hook: Option<CheckpointHook>,
    warm_starts: Vec<(PipelineStage, Vec<f64>)>,
}

impl fmt::Debug for TmlPipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TmlPipeline")
            .field("spec", &self.spec)
            .field("formula", &self.formula)
            .field("opts", &self.opts)
            .field("template", &self.template)
            .field("data_repair", &self.data_repair)
            .field("budget", &self.budget)
            .field("cross_check", &self.cross_check.as_ref().map(|_| "<fn>"))
            .field("checkpoint_hook", &self.checkpoint_hook.as_ref().map(|_| "<fn>"))
            .field("warm_starts", &self.warm_starts)
            .finish()
    }
}

impl TmlPipeline {
    /// A pipeline for the given model spec and property, with no repairs
    /// configured yet.
    pub fn new(spec: ModelSpec, formula: StateFormula) -> Self {
        TmlPipeline {
            spec,
            formula,
            opts: RepairOptions::default(),
            template: None,
            data_repair: false,
            budget: Budget::unlimited(),
            cross_check: None,
            checkpoint_hook: None,
            warm_starts: Vec::new(),
        }
    }

    /// Sets repair options.
    pub fn with_options(mut self, opts: RepairOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Bounds the whole pipeline — verification and every configured repair
    /// stage — by one execution budget. The deadline and the cancellation
    /// token are shared by all stages; when the budget runs out, the
    /// pipeline concludes with its best-effort outcome instead of erroring
    /// or hanging.
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// The configured budget.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Enables Model Repair with the given perturbation template.
    pub fn with_model_repair(mut self, template: PerturbationTemplate) -> Self {
        self.template = Some(template);
        self
    }

    /// Enables Data Repair as the fallback stage.
    pub fn with_data_repair(mut self) -> Self {
        self.data_repair = true;
        self
    }

    /// Installs an independent re-verification hook that is run on every
    /// concluding model (learned-and-satisfied, model-repaired or
    /// data-repaired). Its answer is recorded as `verified_by_simulation`
    /// on the outcome; it never changes the pipeline's control flow — a
    /// refuting cross-check is a red flag for the *engines*, not for the
    /// repair, and is surfaced to the caller to act on.
    ///
    /// The conformance layer provides a ready-made hook:
    /// `tml_conformance::simulation_cross_check(trajectories, seed)`.
    #[must_use]
    pub fn with_simulation_cross_check(mut self, hook: SimulationCrossCheck) -> Self {
        self.cross_check = Some(hook);
        self
    }

    /// Installs a checkpoint observer, called after each stage completes
    /// with the stage name and any solver restart state it produced. Batch
    /// executors journal these so a retry (or a resumed run) can warm-start
    /// the surviving stages instead of repeating them.
    #[must_use]
    pub fn with_checkpoint_hook(mut self, hook: CheckpointHook) -> Self {
        self.checkpoint_hook = Some(hook);
        self
    }

    /// Seeds a stage's optimizer with a previously checkpointed solver
    /// point (see [`PipelineCheckpoint::solver_point`]). Points for stages
    /// without an optimizer ([`PipelineStage::Learn`],
    /// [`PipelineStage::Verify`]) are ignored.
    #[must_use]
    pub fn with_warm_start(mut self, stage: PipelineStage, x: Vec<f64>) -> Self {
        self.warm_starts.push((stage, x));
        self
    }

    /// Runs the pipeline on a dataset.
    ///
    /// # Errors
    ///
    /// Propagates learning, checking and repair errors; an *infeasible*
    /// repair is not an error (it yields [`TmlOutcome::Unrepairable`]).
    pub fn run(&self, dataset: &TraceDataset) -> Result<TmlOutcome, RepairError> {
        let _span = span!("pipeline.run", states = self.spec.num_states);
        // 1. Learn.
        let learn_span = span!("pipeline.learn");
        let mut b = learn::ml_dtmc(self.spec.num_states, dataset, None, MlOptions::default())?;
        b.initial_state(self.spec.initial)?;
        for (s, l) in &self.spec.labels {
            b.label(*s, l)?;
        }
        for (structure, s, r) in &self.spec.state_rewards {
            b.state_reward(structure, *s, *r)?;
        }
        let model = b.build()?;
        drop(learn_span);
        let checkpoint = |stage: PipelineStage, solver_point: Option<Vec<f64>>| {
            if let Some(hook) = &self.checkpoint_hook {
                hook(&PipelineCheckpoint { stage, solver_point });
            }
        };
        checkpoint(PipelineStage::Learn, None);

        // 2. Verify.
        let checker = Checker::with_options(self.opts.check).with_budget(self.budget.clone());
        let mut diag = Diagnostics::new();
        let initial = {
            let _s = span!("pipeline.verify");
            checker.check_dtmc(&model, &self.formula)?
        };
        diag.absorb(initial.diagnostics());
        checkpoint(PipelineStage::Verify, None);
        // Independent re-verification of whichever model concludes the
        // pipeline (simulation-based when wired to the conformance layer).
        let cross_check = |m: &Dtmc| {
            self.cross_check.as_ref().and_then(|hook| {
                let _s = span!("pipeline.cross_check");
                hook(m, &self.formula)
            })
        };
        if initial.holds() {
            let verified_by_simulation = cross_check(&model);
            return Ok(TmlOutcome::Satisfied { model, diagnostics: diag, verified_by_simulation });
        }

        // A repair stage concludes the pipeline when it produced a model;
        // `Infeasible` falls through to the next stage, `BudgetExhausted`
        // falls through too because its model (if any) is unverified.
        let concludes = |status: RepairStatus| {
            !matches!(status, RepairStatus::Infeasible | RepairStatus::BudgetExhausted)
        };

        // 3. Model Repair.
        let mut model_repair_status = None;
        if let Some(template) = &self.template {
            let _s = span!("pipeline.model_repair");
            let mut repair = ModelRepair::with_options(self.opts).with_budget(self.budget.clone());
            for (stage, x) in &self.warm_starts {
                if *stage == PipelineStage::ModelRepair {
                    repair = repair.start_from(x.clone());
                }
            }
            let mut out = repair.repair_dtmc(&model, &self.formula, template)?;
            model_repair_status = Some(out.status);
            checkpoint(PipelineStage::ModelRepair, out.solver_point.clone());
            if concludes(out.status) {
                out.verified_by_simulation = out.model.as_ref().and_then(&cross_check);
                return Ok(TmlOutcome::ModelRepaired { outcome: out });
            }
            diag.absorb(&out.diagnostics);
        }

        // 4. Data Repair.
        let mut data_repair_status = None;
        if self.data_repair {
            let _s = span!("pipeline.data_repair");
            let mut repair = DataRepair::with_options(self.opts).with_budget(self.budget.clone());
            for (stage, x) in &self.warm_starts {
                if *stage == PipelineStage::DataRepair {
                    repair = repair.start_from(x.clone());
                }
            }
            let mut out = repair.repair(dataset, &self.spec, &self.formula)?;
            data_repair_status = Some(out.status);
            checkpoint(PipelineStage::DataRepair, out.solver_point.clone());
            if concludes(out.status) {
                out.verified_by_simulation = out.model.as_ref().and_then(&cross_check);
                return Ok(TmlOutcome::DataRepaired { outcome: out, model_repair_status });
            }
            diag.absorb(&out.diagnostics);
        }

        Ok(TmlOutcome::Unrepairable { model_repair_status, data_repair_status, diagnostics: diag })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tml_logic::parse_formula;
    use tml_models::Path;

    /// good traces: 0→1 (goal); bad traces: 0→2 (sink).
    fn dataset(good: f64, bad: f64) -> TraceDataset {
        let mut ds = TraceDataset::new();
        let g = ds.add_class("good");
        let b = ds.add_class("bad");
        ds.push(g, Path::from_states(vec![0, 1, 1]), good).unwrap();
        ds.push(b, Path::from_states(vec![0, 2, 2]), bad).unwrap();
        ds
    }

    fn spec() -> ModelSpec {
        ModelSpec::new(3).label(1, "goal")
    }

    fn shift_template() -> PerturbationTemplate {
        let mut t = PerturbationTemplate::new();
        let v = t.parameter("v", -0.3, 0.3);
        t.nudge(0, 1, v, 1.0).unwrap();
        t.nudge(0, 2, v, -1.0).unwrap();
        t
    }

    #[test]
    fn satisfied_immediately() {
        let phi = parse_formula("P>=0.7 [ F \"goal\" ]").unwrap();
        let out = TmlPipeline::new(spec(), phi).run(&dataset(8.0, 2.0)).unwrap();
        assert!(matches!(out, TmlOutcome::Satisfied { .. }));
        assert!(out.is_trusted());
    }

    #[test]
    fn model_repair_stage_fires() {
        let phi = parse_formula("P>=0.7 [ F \"goal\" ]").unwrap();
        let out = TmlPipeline::new(spec(), phi)
            .with_model_repair(shift_template())
            .run(&dataset(5.0, 5.0))
            .unwrap();
        match &out {
            TmlOutcome::ModelRepaired { outcome } => {
                assert_eq!(outcome.status, RepairStatus::Repaired);
                assert!(outcome.verified);
            }
            other => panic!("expected model repair, got {other:?}"),
        }
    }

    #[test]
    fn falls_through_to_data_repair() {
        // Template too weak (tiny box) → infeasible → data repair succeeds.
        let mut t = PerturbationTemplate::new();
        let v = t.parameter("v", -0.01, 0.01);
        t.nudge(0, 1, v, 1.0).unwrap();
        t.nudge(0, 2, v, -1.0).unwrap();
        let phi = parse_formula("P>=0.7 [ F \"goal\" ]").unwrap();
        let out = TmlPipeline::new(spec(), phi)
            .with_model_repair(t)
            .with_data_repair()
            .run(&dataset(5.0, 5.0))
            .unwrap();
        match &out {
            TmlOutcome::DataRepaired { outcome, model_repair_status } => {
                assert_eq!(*model_repair_status, Some(RepairStatus::Infeasible));
                assert_eq!(outcome.status, RepairStatus::Repaired);
            }
            other => panic!("expected data repair, got {other:?}"),
        }
    }

    #[test]
    fn unrepairable_when_everything_fails() {
        let mut t = PerturbationTemplate::new();
        let v = t.parameter("v", -0.01, 0.01);
        t.nudge(0, 1, v, 1.0).unwrap();
        t.nudge(0, 2, v, -1.0).unwrap();
        // An impossible bound: even pure "good" data gives P = 1, but we
        // ask for F within ZERO mass on bad... use min_keep default with
        // overwhelming bad data and a harsh bound.
        let phi = parse_formula("P>=0.9999 [ F \"goal\" ]").unwrap();
        let out =
            TmlPipeline::new(spec(), phi).with_model_repair(t).run(&dataset(1.0, 99.0)).unwrap();
        match out {
            TmlOutcome::Unrepairable { model_repair_status, data_repair_status, .. } => {
                assert_eq!(model_repair_status, Some(RepairStatus::Infeasible));
                assert_eq!(data_repair_status, None); // not configured
            }
            other => panic!("expected unrepairable, got {other:?}"),
        }
        assert!(!TmlOutcome::Unrepairable {
            model_repair_status: None,
            data_repair_status: None,
            diagnostics: Diagnostics::new(),
        }
        .is_trusted());
    }

    #[test]
    fn exhausted_budget_concludes_best_effort() {
        // A zero evaluation budget: every stage stops immediately, the
        // pipeline still returns an outcome (no error, no hang) with the
        // exhaustion recorded in the aggregated diagnostics.
        let phi = parse_formula("P>=0.7 [ F \"goal\" ]").unwrap();
        let out = TmlPipeline::new(spec(), phi)
            .with_model_repair(shift_template())
            .with_data_repair()
            .with_budget(Budget::unlimited().with_max_evaluations(0))
            .run(&dataset(5.0, 5.0))
            .unwrap();
        match &out {
            TmlOutcome::Unrepairable { model_repair_status, data_repair_status, .. } => {
                assert_eq!(*model_repair_status, Some(RepairStatus::BudgetExhausted));
                assert_eq!(*data_repair_status, Some(RepairStatus::BudgetExhausted));
            }
            other => panic!("expected best-effort unrepairable, got {other:?}"),
        }
        assert!(out.degraded());
        assert!(out.diagnostics().exhausted.is_some());
    }

    #[test]
    fn simulation_cross_check_is_recorded_on_every_concluding_stage() {
        // A deterministic stand-in hook: "re-verify" by checking the
        // property holds in the model with a fresh checker.
        let hook: SimulationCrossCheck = Arc::new(|model: &Dtmc, phi: &StateFormula| {
            Checker::new().check_dtmc(model, phi).ok().map(|r| r.holds())
        });

        // Satisfied immediately.
        let phi = parse_formula("P>=0.7 [ F \"goal\" ]").unwrap();
        let out = TmlPipeline::new(spec(), phi.clone())
            .with_simulation_cross_check(hook.clone())
            .run(&dataset(8.0, 2.0))
            .unwrap();
        assert!(matches!(out, TmlOutcome::Satisfied { .. }));
        assert_eq!(out.verified_by_simulation(), Some(true));

        // Model repair concludes.
        let out = TmlPipeline::new(spec(), phi.clone())
            .with_model_repair(shift_template())
            .with_simulation_cross_check(hook.clone())
            .run(&dataset(5.0, 5.0))
            .unwrap();
        assert!(matches!(out, TmlOutcome::ModelRepaired { .. }));
        assert_eq!(out.verified_by_simulation(), Some(true));

        // Data repair concludes.
        let out = TmlPipeline::new(spec(), phi.clone())
            .with_data_repair()
            .with_simulation_cross_check(hook)
            .run(&dataset(5.0, 5.0))
            .unwrap();
        assert!(matches!(out, TmlOutcome::DataRepaired { .. }));
        assert_eq!(out.verified_by_simulation(), Some(true));

        // Without a hook, the field stays unset.
        let out = TmlPipeline::new(spec(), phi).run(&dataset(8.0, 2.0)).unwrap();
        assert_eq!(out.verified_by_simulation(), None);
    }

    #[test]
    fn checkpoints_fire_in_stage_order_with_solver_state() {
        use std::sync::Mutex;
        type Seen = Vec<(PipelineStage, Option<Vec<f64>>)>;
        let seen: Arc<Mutex<Seen>> = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        let hook: CheckpointHook = Arc::new(move |cp: &PipelineCheckpoint| {
            sink.lock().unwrap().push((cp.stage, cp.solver_point.clone()));
        });
        let phi = parse_formula("P>=0.7 [ F \"goal\" ]").unwrap();
        let out = TmlPipeline::new(spec(), phi)
            .with_model_repair(shift_template())
            .with_checkpoint_hook(hook)
            .run(&dataset(5.0, 5.0))
            .unwrap();
        assert!(matches!(out, TmlOutcome::ModelRepaired { .. }));
        let seen = seen.lock().unwrap();
        let stages: Vec<PipelineStage> = seen.iter().map(|(s, _)| *s).collect();
        assert_eq!(
            stages,
            vec![PipelineStage::Learn, PipelineStage::Verify, PipelineStage::ModelRepair]
        );
        let point = seen[2].1.as_ref().expect("model repair checkpoints its solver point");
        assert_eq!(point.len(), 1, "one template parameter");
    }

    #[test]
    fn warm_start_reproduces_the_checkpointed_answer() {
        // Run once, harvest the checkpointed solver point, then re-run with
        // it as a warm start: same verified conclusion.
        let phi = parse_formula("P>=0.7 [ F \"goal\" ]").unwrap();
        let first = TmlPipeline::new(spec(), phi.clone())
            .with_model_repair(shift_template())
            .run(&dataset(5.0, 5.0))
            .unwrap();
        let point = match &first {
            TmlOutcome::ModelRepaired { outcome } => outcome.solver_point.clone().unwrap(),
            other => panic!("expected model repair, got {other:?}"),
        };
        let second = TmlPipeline::new(spec(), phi)
            .with_model_repair(shift_template())
            .with_warm_start(PipelineStage::ModelRepair, point)
            .run(&dataset(5.0, 5.0))
            .unwrap();
        match &second {
            TmlOutcome::ModelRepaired { outcome } => assert!(outcome.verified),
            other => panic!("expected model repair, got {other:?}"),
        }
    }

    #[test]
    fn stage_names_round_trip() {
        for stage in [
            PipelineStage::Learn,
            PipelineStage::Verify,
            PipelineStage::ModelRepair,
            PipelineStage::DataRepair,
        ] {
            assert_eq!(PipelineStage::parse(stage.name()), Some(stage));
        }
        assert_eq!(PipelineStage::parse("nope"), None);
    }

    #[test]
    fn generous_budget_does_not_change_the_answer() {
        let phi = parse_formula("P>=0.7 [ F \"goal\" ]").unwrap();
        let out = TmlPipeline::new(spec(), phi)
            .with_model_repair(shift_template())
            .with_budget(Budget::unlimited().with_max_evaluations(1_000_000))
            .run(&dataset(5.0, 5.0))
            .unwrap();
        match &out {
            TmlOutcome::ModelRepaired { outcome } => {
                assert_eq!(outcome.status, RepairStatus::Repaired);
                assert!(outcome.verified);
            }
            other => panic!("expected model repair, got {other:?}"),
        }
        assert!(out.diagnostics().exhausted.is_none());
    }
}
