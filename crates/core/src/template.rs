//! Perturbation templates: the feasibility class `Feas_MP` of Model Repair.
//!
//! Definition 1 of the paper repairs a model by adding a constrained matrix
//! `Z` to the transition matrix `P`, keeping the support fixed and every
//! row stochastic. A [`PerturbationTemplate`] describes `Z` as a sparse
//! collection of *affine* entries `Z(s,t) = Σᵢ cᵢ·vᵢ` over named repair
//! parameters `v` with box bounds — and validates at build time that each
//! row of `Z` sums to zero *identically*, so stochasticity can never be
//! violated by the optimizer, only the `[0,1]` range (which becomes
//! explicit constraints).

use std::collections::BTreeMap;

use tml_models::Dtmc;
use tml_parametric::{ParametricDtmc, Polynomial, RationalFunction};

use crate::RepairError;

/// A linear expression `Σᵢ cᵢ·vᵢ` over the template's parameters.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinearExpr {
    /// `(parameter index, coefficient)` pairs.
    terms: Vec<(usize, f64)>,
}

impl LinearExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        LinearExpr::default()
    }

    /// A single term `c·v`.
    pub fn term(param: usize, coeff: f64) -> Self {
        LinearExpr { terms: vec![(param, coeff)] }
    }

    /// Adds `c·v` to the expression.
    pub fn plus(mut self, param: usize, coeff: f64) -> Self {
        self.terms.push((param, coeff));
        self
    }

    /// Evaluates at a parameter point.
    pub fn eval(&self, v: &[f64]) -> f64 {
        self.terms.iter().map(|&(i, c)| c * v.get(i).copied().unwrap_or(0.0)).sum()
    }

    /// The coefficient of each parameter, accumulated.
    pub fn coefficients(&self, num_params: usize) -> Vec<f64> {
        let mut out = vec![0.0; num_params];
        for &(i, c) in &self.terms {
            if i < out.len() {
                out[i] += c;
            }
        }
        out
    }

    fn to_polynomial(&self, num_params: usize) -> Polynomial {
        let mut p = Polynomial::zero(num_params);
        for (i, c) in self.coefficients(num_params).into_iter().enumerate() {
            if c != 0.0 {
                p = p.add(&Polynomial::var(num_params, i).scale(c));
            }
        }
        p
    }
}

/// A declarative description of the admissible perturbations `Z` of a DTMC.
///
/// See the crate-level example for typical usage: declare parameters with
/// [`parameter`](Self::parameter), then attach [`nudge`](Self::nudge)
/// entries; every touched row must have perturbations that cancel (sum of
/// coefficients per parameter is zero per row).
#[derive(Debug, Clone, Default)]
pub struct PerturbationTemplate {
    params: Vec<(String, f64, f64)>,
    entries: BTreeMap<(usize, usize), LinearExpr>,
}

impl PerturbationTemplate {
    /// An empty template (no admissible perturbation).
    pub fn new() -> Self {
        PerturbationTemplate::default()
    }

    /// Declares a repair parameter with box bounds, returning its index.
    pub fn parameter(&mut self, name: &str, lo: f64, hi: f64) -> usize {
        self.params.push((name.to_owned(), lo, hi));
        self.params.len() - 1
    }

    /// Adds `coeff·v_param` to the perturbation of the transition
    /// `from → to` (accumulating with previous nudges of the same entry).
    ///
    /// # Errors
    ///
    /// Returns [`RepairError::InvalidTemplate`] if the parameter index is
    /// unknown.
    pub fn nudge(
        &mut self,
        from: usize,
        to: usize,
        param: usize,
        coeff: f64,
    ) -> Result<&mut Self, RepairError> {
        if param >= self.params.len() {
            return Err(RepairError::InvalidTemplate {
                detail: format!("unknown parameter index {param}"),
            });
        }
        let e = self.entries.entry((from, to)).or_default();
        *e = std::mem::take(e).plus(param, coeff);
        Ok(self)
    }

    /// Number of parameters.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Parameter names in declaration order.
    pub fn param_names(&self) -> Vec<String> {
        self.params.iter().map(|(n, _, _)| n.clone()).collect()
    }

    /// Parameter box bounds in declaration order.
    pub fn bounds(&self) -> Vec<(f64, f64)> {
        self.params.iter().map(|&(_, lo, hi)| (lo, hi)).collect()
    }

    /// The perturbed entries as `((from, to), expression)` pairs.
    pub fn entries(&self) -> impl Iterator<Item = (&(usize, usize), &LinearExpr)> {
        self.entries.iter()
    }

    /// Validates the template against a base chain and applies it, yielding
    /// a [`ParametricDtmc`] whose transition `(s,t)` is `P(s,t) + Z(s,t)`.
    ///
    /// # Errors
    ///
    /// [`RepairError::InvalidTemplate`] when:
    ///
    /// * an entry addresses a transition with `P(s,t) = 0` (the support
    ///   must not change — Eq. 3 of the paper);
    /// * a touched row's perturbations do not cancel identically;
    /// * an entry addresses an out-of-range state.
    pub fn apply(&self, base: &Dtmc) -> Result<ParametricDtmc, RepairError> {
        let n = base.num_states();
        let np = self.params.len();
        // Row-cancellation check.
        let mut row_coeffs: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
        for (&(s, t), expr) in &self.entries {
            if s >= n || t >= n {
                return Err(RepairError::InvalidTemplate {
                    detail: format!("entry ({s},{t}) out of range for {n} states"),
                });
            }
            if base.probability(s, t) == 0.0 {
                return Err(RepairError::InvalidTemplate {
                    detail: format!(
                        "entry ({s},{t}) would add a transition absent from the base model"
                    ),
                });
            }
            let acc = row_coeffs.entry(s).or_insert_with(|| vec![0.0; np]);
            for (a, c) in acc.iter_mut().zip(expr.coefficients(np)) {
                *a += c;
            }
        }
        for (s, coeffs) in &row_coeffs {
            if coeffs.iter().any(|c| c.abs() > 1e-12) {
                return Err(RepairError::InvalidTemplate {
                    detail: format!(
                        "perturbations of row {s} do not cancel: net coefficients {coeffs:?}"
                    ),
                });
            }
        }

        let mut b = ParametricDtmc::from_dtmc(base, self.param_names());
        for (&(s, t), expr) in &self.entries {
            let delta = RationalFunction::from_poly(expr.to_polynomial(np));
            let base_p = RationalFunction::constant(np, base.probability(s, t));
            b.transition(s, t, base_p.add(&delta))?;
        }
        Ok(b.build()?)
    }

    /// The `[support_margin, 1 − support_margin]` validity constraints the
    /// optimizer must enforce for each perturbed entry, as closures over the
    /// parameter vector. Returns `(description, lower_is_violated_fn)`
    /// pairs of the perturbed probability value.
    pub fn probability_exprs(&self, base: &Dtmc) -> Vec<(String, f64, LinearExpr)> {
        self.entries
            .iter()
            .map(|(&(s, t), expr)| (format!("p({s}->{t})"), base.probability(s, t), expr.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tml_models::DtmcBuilder;

    fn chain() -> Dtmc {
        let mut b = DtmcBuilder::new(2);
        b.transition(0, 0, 0.3).unwrap();
        b.transition(0, 1, 0.7).unwrap();
        b.transition(1, 1, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn linear_expr_eval() {
        let e = LinearExpr::term(0, 2.0).plus(1, -1.0).plus(0, 1.0);
        assert_eq!(e.eval(&[1.0, 4.0]), -1.0);
        assert_eq!(e.coefficients(2), vec![3.0, -1.0]);
        assert_eq!(LinearExpr::zero().eval(&[1.0]), 0.0);
    }

    #[test]
    fn apply_produces_parametric_chain() {
        let d = chain();
        let mut t = PerturbationTemplate::new();
        let v = t.parameter("v", -0.2, 0.2);
        t.nudge(0, 1, v, 1.0).unwrap();
        t.nudge(0, 0, v, -1.0).unwrap();
        let p = t.apply(&d).unwrap();
        let inst = p.instantiate(&[0.1]).unwrap();
        assert!((inst.probability(0, 1) - 0.8).abs() < 1e-12);
        assert!((inst.probability(0, 0) - 0.2).abs() < 1e-12);
        assert_eq!(t.num_params(), 1);
        assert_eq!(t.param_names(), vec!["v".to_string()]);
        assert_eq!(t.bounds(), vec![(-0.2, 0.2)]);
    }

    #[test]
    fn rejects_non_cancelling_row() {
        let d = chain();
        let mut t = PerturbationTemplate::new();
        let v = t.parameter("v", -0.1, 0.1);
        t.nudge(0, 1, v, 1.0).unwrap();
        assert!(matches!(t.apply(&d), Err(RepairError::InvalidTemplate { .. })));
    }

    #[test]
    fn rejects_support_change_and_bad_indices() {
        let d = chain();
        let mut t = PerturbationTemplate::new();
        let v = t.parameter("v", -0.1, 0.1);
        t.nudge(1, 0, v, 1.0).unwrap(); // P(1,0) = 0: support change
        t.nudge(1, 1, v, -1.0).unwrap();
        assert!(matches!(t.apply(&d), Err(RepairError::InvalidTemplate { .. })));

        let mut t2 = PerturbationTemplate::new();
        let v2 = t2.parameter("v", -0.1, 0.1);
        t2.nudge(9, 0, v2, 1.0).unwrap();
        assert!(t2.apply(&d).is_err());

        let mut t3 = PerturbationTemplate::new();
        assert!(t3.nudge(0, 0, 7, 1.0).is_err());
    }

    #[test]
    fn probability_exprs_reflect_entries() {
        let d = chain();
        let mut t = PerturbationTemplate::new();
        let v = t.parameter("v", -0.2, 0.2);
        t.nudge(0, 1, v, 1.0).unwrap();
        t.nudge(0, 0, v, -1.0).unwrap();
        let exprs = t.probability_exprs(&d);
        assert_eq!(exprs.len(), 2);
        let (name, base, expr) = &exprs[1];
        assert_eq!(name, "p(0->1)");
        assert_eq!(*base, 0.7);
        assert_eq!(expr.eval(&[0.1]), 0.1);
    }

    #[test]
    fn shared_parameter_across_rows() {
        // One parameter controlling two rows (the WSN pattern: all interior
        // nodes share the correction q).
        let mut b = DtmcBuilder::new(3);
        b.transition(0, 1, 0.5).unwrap();
        b.transition(0, 0, 0.5).unwrap();
        b.transition(1, 2, 0.5).unwrap();
        b.transition(1, 1, 0.5).unwrap();
        b.transition(2, 2, 1.0).unwrap();
        let d = b.build().unwrap();
        let mut t = PerturbationTemplate::new();
        let q = t.parameter("q", 0.0, 0.3);
        for s in 0..2 {
            t.nudge(s, s + 1, q, 1.0).unwrap();
            t.nudge(s, s, q, -1.0).unwrap();
        }
        let p = t.apply(&d).unwrap();
        let inst = p.instantiate(&[0.2]).unwrap();
        assert!((inst.probability(0, 1) - 0.7).abs() < 1e-12);
        assert!((inst.probability(1, 2) - 0.7).abs() < 1e-12);
    }
}
