use std::error::Error;
use std::fmt;

use tml_checker::CheckError;
use tml_irl::IrlError;
use tml_models::ModelError;
use tml_optimizer::OptimizerError;
use tml_parametric::ParametricError;

/// Errors raised by the repair algorithms.
#[derive(Debug)]
#[non_exhaustive]
pub enum RepairError {
    /// The model layer rejected an operation.
    Model(ModelError),
    /// The model checker failed.
    Check(CheckError),
    /// The parametric engine failed.
    Parametric(ParametricError),
    /// The optimizer rejected the generated program.
    Optimizer(OptimizerError),
    /// An IRL computation failed.
    Irl(IrlError),
    /// The property's shape is outside what the chosen repair supports.
    UnsupportedProperty {
        /// The property, rendered.
        property: String,
        /// Why it is unsupported.
        reason: String,
    },
    /// A repair template is inconsistent (e.g. breaks row stochasticity).
    InvalidTemplate {
        /// Human-readable description.
        detail: String,
    },
    /// Input validation failed.
    InvalidInput {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for RepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairError::Model(e) => write!(f, "model error: {e}"),
            RepairError::Check(e) => write!(f, "checker error: {e}"),
            RepairError::Parametric(e) => write!(f, "parametric error: {e}"),
            RepairError::Optimizer(e) => write!(f, "optimizer error: {e}"),
            RepairError::Irl(e) => write!(f, "irl error: {e}"),
            RepairError::UnsupportedProperty { property, reason } => {
                write!(f, "unsupported property {property:?}: {reason}")
            }
            RepairError::InvalidTemplate { detail } => write!(f, "invalid template: {detail}"),
            RepairError::InvalidInput { detail } => write!(f, "invalid input: {detail}"),
        }
    }
}

impl Error for RepairError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RepairError::Model(e) => Some(e),
            RepairError::Check(e) => Some(e),
            RepairError::Parametric(e) => Some(e),
            RepairError::Optimizer(e) => Some(e),
            RepairError::Irl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for RepairError {
    fn from(e: ModelError) -> Self {
        RepairError::Model(e)
    }
}

impl From<CheckError> for RepairError {
    fn from(e: CheckError) -> Self {
        RepairError::Check(e)
    }
}

impl From<ParametricError> for RepairError {
    fn from(e: ParametricError) -> Self {
        RepairError::Parametric(e)
    }
}

impl From<OptimizerError> for RepairError {
    fn from(e: OptimizerError) -> Self {
        RepairError::Optimizer(e)
    }
}

impl From<IrlError> for RepairError {
    fn from(e: IrlError) -> Self {
        RepairError::Irl(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e: RepairError = ModelError::MissingDistribution { state: 0 }.into();
        assert!(e.to_string().contains("model error"));
        assert!(e.source().is_some());
        let u =
            RepairError::UnsupportedProperty { property: "P=?".into(), reason: "nested".into() };
        assert!(u.to_string().contains("unsupported"));
        assert!(u.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RepairError>();
    }
}
