//! Reward Repair (Definition 2): fix a learned reward whose optimal policy
//! violates the safety rules.
//!
//! Two mechanisms from the paper:
//!
//! 1. **Posterior-regularization projection** (Proposition 4): the max-ent
//!    trajectory distribution `P(U|θ)` is projected onto the rule-consistent
//!    subspace as `Q(U) ∝ P(U)·exp(−Σ_l λ_l·[1 − φ_l(U)])`, and a repaired
//!    `θ'` is re-estimated from `Q` by feature matching
//!    ([`RewardRepair::project_and_fit`]).
//! 2. **Q-constraint repair** (the car case study, §V-B): solve
//!    `min ‖θ − θ₀‖² s.t. Q_θ(s, a⁺) > Q_θ(s, a⁻)` directly
//!    ([`RewardRepair::q_constraint_repair`]).

use tml_irl::{q_values, value_iteration, FeatureMap, ViOptions};
use tml_logic::{TraceContext, TraceFormula};
use tml_models::{Mdp, Path};
use tml_numerics::{Budget, Diagnostics};
use tml_optimizer::{ConstraintSense, Nlp, PenaltySolver};
use tml_telemetry::span;

use crate::model_repair::{absorb_solution, infeasible_status, RepairStatus};
use crate::{RepairError, RepairOptions};

/// A rule with its importance weight `λ` (paper Eq. 17–18; `λ → ∞` drives
/// violating trajectories to probability zero).
#[derive(Debug, Clone)]
pub struct WeightedRule {
    /// The finite-trace rule.
    pub rule: TraceFormula,
    /// The importance weight `λ ≥ 0`.
    pub lambda: f64,
}

impl WeightedRule {
    /// A rule with a large default weight (`λ = 50`), effectively hard.
    pub fn hard(rule: TraceFormula) -> Self {
        WeightedRule { rule, lambda: 50.0 }
    }

    /// A rule with an explicit weight.
    pub fn soft(rule: TraceFormula, lambda: f64) -> Self {
        WeightedRule { rule, lambda }
    }
}

/// Adapter exposing an MDP [`Path`] as a [`TraceContext`] so trace rules
/// can be evaluated on it (labels come from the MDP's labeling).
#[derive(Debug, Clone, Copy)]
pub struct MdpTraceView<'a> {
    mdp: &'a Mdp,
    path: &'a Path,
}

impl<'a> MdpTraceView<'a> {
    /// Wraps a path for rule evaluation against `mdp`'s labeling.
    pub fn new(mdp: &'a Mdp, path: &'a Path) -> Self {
        MdpTraceView { mdp, path }
    }
}

impl TraceContext for MdpTraceView<'_> {
    fn len(&self) -> usize {
        self.path.num_positions()
    }

    fn holds(&self, position: usize, atom: &str) -> bool {
        self.path.state(position).is_some_and(|s| self.mdp.labeling().has(s, atom))
    }

    fn action(&self, position: usize) -> Option<usize> {
        self.path.action(position)
    }
}

/// Enumerates every trajectory of exactly `horizon` transitions from
/// `from`, resolving both the action choice and the probabilistic branch at
/// every step.
///
/// The number of trajectories is exponential in `horizon`; intended for the
/// small controller MDPs the paper studies (the car model has ≤ 3 actions
/// and deterministic transitions, giving `3^h` trajectories).
pub fn enumerate_trajectories(mdp: &Mdp, from: usize, horizon: usize) -> Vec<Path> {
    let mut out = Vec::new();
    let mut states = vec![from];
    let mut actions = Vec::new();
    fn rec(
        mdp: &Mdp,
        horizon: usize,
        states: &mut Vec<usize>,
        actions: &mut Vec<usize>,
        out: &mut Vec<Path>,
    ) {
        if actions.len() == horizon {
            out.push(Path { states: states.clone(), actions: actions.clone() });
            return;
        }
        let s = *states.last().expect("non-empty");
        for choice in mdp.choices(s) {
            for &(t, p) in &choice.transitions {
                if p == 0.0 {
                    continue;
                }
                actions.push(choice.action);
                states.push(t);
                rec(mdp, horizon, states, actions, out);
                states.pop();
                actions.pop();
            }
        }
    }
    rec(mdp, horizon, &mut states, &mut actions, &mut out);
    out
}

/// The unnormalized max-ent log-weight of a trajectory (paper Eq. 16):
/// `Σ_i θᵀ f(s_i) + Σ_i ln P(s_{i+1} | s_i, a_i)`.
///
/// # Panics
///
/// Panics if the path's actions are unavailable in the MDP.
pub fn trajectory_log_weight(mdp: &Mdp, features: &FeatureMap, theta: &[f64], path: &Path) -> f64 {
    let mut lw = 0.0;
    for &s in &path.states {
        lw += features.reward(s, theta);
    }
    for i in 0..path.len() {
        let (s, a, t) = (path.states[i], path.actions[i], path.states[i + 1]);
        let c = mdp.choice_for_action(s, a).expect("action available in state");
        let p = mdp.choices(s)[c]
            .transitions
            .iter()
            .find(|&&(x, _)| x == t)
            .map(|&(_, p)| p)
            .unwrap_or(0.0);
        lw += p.ln();
    }
    lw
}

/// Proposition 4: projects trajectory probabilities onto the rule-consistent
/// subspace, `Q(U) ∝ P(U)·exp(−Σ_l λ_l [1 − φ_l(U)])`, and normalizes.
///
/// `base_probs` need not be normalized; the result always is (when the
/// total mass is positive).
pub fn project_distribution(
    mdp: &Mdp,
    paths: &[Path],
    base_probs: &[f64],
    rules: &[WeightedRule],
) -> Vec<f64> {
    assert_eq!(paths.len(), base_probs.len(), "one probability per path");
    let mut q: Vec<f64> = paths
        .iter()
        .zip(base_probs)
        .map(|(path, &p)| {
            let view = MdpTraceView::new(mdp, path);
            let penalty: f64 =
                rules.iter().map(|r| if r.rule.eval(&view, 0) { 0.0 } else { r.lambda }).sum();
            p * (-penalty).exp()
        })
        .collect();
    let total: f64 = q.iter().sum();
    if total > 0.0 {
        for v in q.iter_mut() {
            *v /= total;
        }
    }
    q
}

/// Outcome of the projection-based reward repair.
#[derive(Debug, Clone)]
pub struct RewardRepairOutcome {
    /// The repaired weight vector `θ'`.
    pub theta: Vec<f64>,
    /// The original weights `θ₀`.
    pub base_theta: Vec<f64>,
    /// Probability mass on rule-violating trajectories under `P(·|θ₀)`.
    pub violation_mass_before: f64,
    /// The same mass under the repaired distribution `P(·|θ')`.
    pub violation_mass_after: f64,
    /// `KL(Q ‖ P)` of the projection step (how far the rules pushed the
    /// distribution).
    pub kl_divergence: f64,
    /// Number of trajectories the distributions were computed over.
    pub num_trajectories: usize,
    /// What the repair spent and whether the feature-matching fit was
    /// truncated by the budget.
    pub diagnostics: Diagnostics,
}

/// Outcome of the Q-constraint reward repair.
#[derive(Debug, Clone)]
pub struct QConstraintOutcome {
    /// How the attempt concluded.
    pub status: RepairStatus,
    /// The repaired weights.
    pub theta: Vec<f64>,
    /// `‖θ − θ₀‖²`.
    pub cost: f64,
    /// Whether all constraints hold at the returned `θ` (re-checked by
    /// value iteration).
    pub verified: bool,
    /// Optimizer evaluations spent.
    pub evaluations: usize,
    /// What the repair spent and which degradation paths were taken.
    pub diagnostics: Diagnostics,
}

/// One Q-value ordering constraint: in `state`, the Q-value of choice
/// `better` must exceed that of `worse` by at least `margin`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QConstraint {
    /// The state the constraint speaks about.
    pub state: usize,
    /// Choice index that must win.
    pub better: usize,
    /// Choice index that must lose.
    pub worse: usize,
    /// Required Q-value gap (≥ 0).
    pub margin: f64,
}

/// The Reward Repair algorithm.
#[derive(Debug, Clone, Default)]
pub struct RewardRepair {
    opts: RepairOptions,
    budget: Budget,
}

impl RewardRepair {
    /// A repairer with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// A repairer with explicit options.
    pub fn with_options(opts: RepairOptions) -> Self {
        RewardRepair { opts, budget: Budget::unlimited() }
    }

    /// Bounds the repair by an execution budget. When it runs out, the
    /// repair returns the best `θ` found so far (with
    /// [`RepairStatus::BudgetExhausted`] on the Q-constraint path) instead
    /// of erroring or hanging.
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// The configured budget.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Projection-based repair (Proposition 4): enumerate trajectories,
    /// project their distribution onto the rules, and re-fit `θ` by
    /// feature matching against the projected distribution.
    ///
    /// # Errors
    ///
    /// Returns [`RepairError::InvalidInput`] for an empty rule set, a
    /// zero horizon, or mismatched feature dimensions.
    pub fn project_and_fit(
        &self,
        mdp: &Mdp,
        features: &FeatureMap,
        theta0: &[f64],
        rules: &[WeightedRule],
        horizon: usize,
    ) -> Result<RewardRepairOutcome, RepairError> {
        if rules.is_empty() {
            return Err(RepairError::InvalidInput { detail: "no rules given".into() });
        }
        if horizon == 0 {
            return Err(RepairError::InvalidInput { detail: "horizon must be positive".into() });
        }
        let _span = span!("reward_repair.project_and_fit", rules = rules.len(), horizon = horizon);
        if features.dim() != theta0.len() {
            return Err(RepairError::InvalidInput {
                detail: format!(
                    "theta has {} entries, features have dim {}",
                    theta0.len(),
                    features.dim()
                ),
            });
        }
        let paths = enumerate_trajectories(mdp, mdp.initial_state(), horizon);
        let p = normalized_weights(mdp, features, theta0, &paths);
        let q = project_distribution(mdp, &paths, &p, rules);

        // KL(Q ‖ P).
        let kl: f64 = q
            .iter()
            .zip(&p)
            .filter(|(&qi, &pi)| qi > 0.0 && pi > 0.0)
            .map(|(&qi, &pi)| qi * (qi / pi).ln())
            .sum();

        // Re-fit θ to Q by feature matching: maximize Σ_U Q(U) log P_θ(U).
        let mut diag = Diagnostics::new();
        let theta = fit_theta(mdp, features, theta0, &paths, &q, &self.budget, &mut diag);

        let p_after = normalized_weights(mdp, features, &theta, &paths);
        let violation = |dist: &[f64]| -> f64 {
            paths
                .iter()
                .zip(dist)
                .filter(|(path, _)| {
                    let view = MdpTraceView::new(mdp, path);
                    rules.iter().any(|r| !r.rule.eval(&view, 0))
                })
                .map(|(_, &pr)| pr)
                .sum()
        };
        Ok(RewardRepairOutcome {
            theta,
            base_theta: theta0.to_vec(),
            violation_mass_before: violation(&p),
            violation_mass_after: violation(&p_after),
            kl_divergence: kl,
            num_trajectories: paths.len(),
            diagnostics: diag,
        })
    }

    /// Direct Q-constraint repair: `min ‖θ − θ₀‖²` subject to
    /// `Q_θ(s, better) ≥ Q_θ(s, worse) + margin` for every constraint,
    /// where `Q_θ` comes from value iteration under the linear reward
    /// `θᵀ f(s)` with discount `gamma`.
    ///
    /// # Errors
    ///
    /// Returns [`RepairError::InvalidInput`] for bad shapes/indices, plus
    /// optimizer errors.
    pub fn q_constraint_repair(
        &self,
        mdp: &Mdp,
        features: &FeatureMap,
        theta0: &[f64],
        constraints: &[QConstraint],
        gamma: f64,
        radius: f64,
    ) -> Result<QConstraintOutcome, RepairError> {
        if features.dim() != theta0.len() {
            return Err(RepairError::InvalidInput {
                detail: format!(
                    "theta has {} entries, features have dim {}",
                    theta0.len(),
                    features.dim()
                ),
            });
        }
        for c in constraints {
            if c.state >= mdp.num_states()
                || c.better >= mdp.num_choices(c.state)
                || c.worse >= mdp.num_choices(c.state)
            {
                return Err(RepairError::InvalidInput {
                    detail: format!("constraint addresses invalid state/choice: {c:?}"),
                });
            }
        }
        let _span = span!(
            "reward_repair.q_constraint",
            constraints = constraints.len(),
            dim = theta0.len()
        );
        // Short-circuit when θ₀ already satisfies everything.
        if q_constraints_hold(mdp, features, theta0, constraints, gamma) {
            return Ok(QConstraintOutcome {
                status: RepairStatus::AlreadySatisfied,
                theta: theta0.to_vec(),
                cost: 0.0,
                verified: true,
                evaluations: 0,
                diagnostics: Diagnostics::new(),
            });
        }

        let d = theta0.len();
        let bounds: Vec<(f64, f64)> = theta0.iter().map(|&t| (t - radius, t + radius)).collect();
        let mut nlp = Nlp::new(d, bounds)?;
        {
            let t0 = theta0.to_vec();
            let t0_grad = t0.clone();
            nlp.objective_with_grad(
                move |t| t.iter().zip(&t0).map(|(a, b)| (a - b).powi(2)).sum(),
                move |t, grad| {
                    for ((g, &ti), &bi) in grad.iter_mut().zip(t).zip(&t0_grad) {
                        *g = 2.0 * (ti - bi);
                    }
                },
            );
        }
        for (i, c) in constraints.iter().enumerate() {
            let m = mdp.clone();
            let fm = features.clone();
            let qc = *c;
            nlp.constraint(&format!("q{i}"), ConstraintSense::Ge, qc.margin, move |theta| {
                q_gap(&m, &fm, theta, &qc, gamma)
            });
        }
        let mut solver =
            PenaltySolver::with_options(self.opts.solver).with_budget(self.budget.clone());
        solver.start_from(theta0.to_vec());
        let sol = solver.solve(&nlp)?;
        let mut diag = Diagnostics::new();
        absorb_solution(&mut diag, &sol);
        let cost: f64 = sol.x.iter().zip(theta0).map(|(a, b)| (a - b).powi(2)).sum();
        if !sol.feasible {
            return Ok(QConstraintOutcome {
                status: infeasible_status(&sol),
                theta: sol.x,
                cost,
                verified: false,
                evaluations: sol.evaluations,
                diagnostics: diag,
            });
        }
        let verified = q_constraints_hold(mdp, features, &sol.x, constraints, gamma);
        Ok(QConstraintOutcome {
            status: RepairStatus::Repaired,
            theta: sol.x,
            cost,
            verified,
            evaluations: sol.evaluations,
            diagnostics: diag,
        })
    }
}

/// Samples `count` trajectories of `horizon` transitions from the max-ent
/// soft policy under `theta` — the sampling approximation the paper
/// prescribes when the trajectory space is too large to enumerate ("this
/// can be approximated by samples of trajectories drawn from the MDP").
///
/// # Errors
///
/// Propagates soft-policy failures (mismatched feature dimensions).
pub fn sample_trajectories<R: rand::Rng + ?Sized>(
    mdp: &Mdp,
    features: &FeatureMap,
    theta: &[f64],
    count: usize,
    horizon: usize,
    rng: &mut R,
) -> Result<Vec<Path>, RepairError> {
    let rewards = features.rewards(theta);
    let policy = tml_irl::soft_policy(mdp, &rewards, horizon).map_err(RepairError::Irl)?;
    Ok((0..count)
        .map(|_| mdp.sample_path(rng, horizon, |r, s| policy.sample(r, s), |_| false))
        .collect())
}

impl RewardRepair {
    /// Sampling variant of [`RewardRepair::project_and_fit`]: instead of
    /// enumerating every trajectory, draw `num_samples` trajectories from
    /// the max-ent policy under `theta0` (so the empirical distribution
    /// approximates `P(·|θ₀)`), project the *empirical* distribution onto
    /// the rules, and re-fit `θ`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RewardRepair::project_and_fit`].
    #[allow(clippy::too_many_arguments)]
    pub fn project_and_fit_sampled<R: rand::Rng + ?Sized>(
        &self,
        mdp: &Mdp,
        features: &FeatureMap,
        theta0: &[f64],
        rules: &[WeightedRule],
        horizon: usize,
        num_samples: usize,
        rng: &mut R,
    ) -> Result<RewardRepairOutcome, RepairError> {
        if rules.is_empty() {
            return Err(RepairError::InvalidInput { detail: "no rules given".into() });
        }
        if horizon == 0 || num_samples == 0 {
            return Err(RepairError::InvalidInput {
                detail: "horizon and sample count must be positive".into(),
            });
        }
        if features.dim() != theta0.len() {
            return Err(RepairError::InvalidInput {
                detail: format!(
                    "theta has {} entries, features have dim {}",
                    theta0.len(),
                    features.dim()
                ),
            });
        }
        let _span = span!(
            "reward_repair.project_and_fit_sampled",
            rules = rules.len(),
            samples = num_samples
        );
        let paths = sample_trajectories(mdp, features, theta0, num_samples, horizon, rng)?;
        // Empirical draws from (approximately) P(·|θ₀): uniform weights.
        let p = vec![1.0 / paths.len() as f64; paths.len()];
        let q = project_distribution(mdp, &paths, &p, rules);
        let kl: f64 = q
            .iter()
            .zip(&p)
            .filter(|(&qi, &pi)| qi > 0.0 && pi > 0.0)
            .map(|(&qi, &pi)| qi * (qi / pi).ln())
            .sum();
        let mut diag = Diagnostics::new();
        let theta = fit_theta(mdp, features, theta0, &paths, &q, &self.budget, &mut diag);
        let p_after = normalized_weights(mdp, features, &theta, &paths);
        let violation = |dist: &[f64]| -> f64 {
            paths
                .iter()
                .zip(dist)
                .filter(|(path, _)| {
                    let view = MdpTraceView::new(mdp, path);
                    rules.iter().any(|r| !r.rule.eval(&view, 0))
                })
                .map(|(_, &pr)| pr)
                .sum()
        };
        Ok(RewardRepairOutcome {
            theta,
            base_theta: theta0.to_vec(),
            violation_mass_before: violation(&p),
            violation_mass_after: violation(&p_after),
            kl_divergence: kl,
            num_trajectories: paths.len(),
            diagnostics: diag,
        })
    }
}

fn q_gap(mdp: &Mdp, features: &FeatureMap, theta: &[f64], c: &QConstraint, gamma: f64) -> f64 {
    let rewards = features.rewards(theta);
    match value_iteration(mdp, &rewards, ViOptions { gamma, ..Default::default() }) {
        Ok(vi) => {
            let q = q_values(mdp, &rewards, &vi.values, gamma);
            q[c.state][c.better] - q[c.state][c.worse]
        }
        Err(_) => f64::NAN,
    }
}

fn q_constraints_hold(
    mdp: &Mdp,
    features: &FeatureMap,
    theta: &[f64],
    constraints: &[QConstraint],
    gamma: f64,
) -> bool {
    constraints.iter().all(|c| {
        let gap = q_gap(mdp, features, theta, c, gamma);
        gap.is_finite() && gap >= c.margin
    })
}

fn normalized_weights(mdp: &Mdp, features: &FeatureMap, theta: &[f64], paths: &[Path]) -> Vec<f64> {
    let logw: Vec<f64> =
        paths.iter().map(|u| trajectory_log_weight(mdp, features, theta, u)).collect();
    let z = tml_numerics::vector::log_sum_exp(&logw);
    logw.iter().map(|lw| (lw - z).exp()).collect()
}

/// Feature matching: gradient ascent on `Σ_U Q(U) log P_θ(U)` over the
/// enumerated trajectory set. Budget-aware: stops at the current iterate
/// when the budget runs out, recording the cause and the last gradient
/// norm in `diag`.
fn fit_theta(
    mdp: &Mdp,
    features: &FeatureMap,
    theta0: &[f64],
    paths: &[Path],
    q: &[f64],
    budget: &Budget,
    diag: &mut Diagnostics,
) -> Vec<f64> {
    let d = features.dim();
    // Per-path summed features F(U).
    let path_features: Vec<Vec<f64>> = paths
        .iter()
        .map(|u| {
            let mut f = vec![0.0; d];
            for &s in &u.states {
                for (acc, &x) in f.iter_mut().zip(features.state_features(s)) {
                    *acc += x;
                }
            }
            f
        })
        .collect();
    // Target: E_Q[F].
    let mut target = vec![0.0; d];
    for (f, &qi) in path_features.iter().zip(q) {
        for (t, &x) in target.iter_mut().zip(f) {
            *t += qi * x;
        }
    }
    let mut theta = theta0.to_vec();
    let lr = 0.05;
    let mut last_norm = f64::INFINITY;
    for it in 0..600u64 {
        if let Some(cause) = budget.check(it) {
            diag.mark_exhausted(cause);
            diag.record_residual(last_norm);
            break;
        }
        diag.evaluations += 1;
        let p = normalized_weights(mdp, features, &theta, paths);
        let mut expect = vec![0.0; d];
        for (f, &pi) in path_features.iter().zip(&p) {
            for (e, &x) in expect.iter_mut().zip(f) {
                *e += pi * x;
            }
        }
        let mut norm = 0.0;
        for i in 0..d {
            let g = target[i] - expect[i];
            theta[i] += lr * g;
            norm += g * g;
        }
        last_norm = norm.sqrt();
        if last_norm < 1e-8 {
            break;
        }
    }
    theta
}

#[cfg(test)]
mod tests {
    use super::*;
    use tml_models::MdpBuilder;

    /// Tiny hazard world: 0 can go "safe" (to 1) or "risky" (to 2, the
    /// unsafe state). Both 1 and 2 are absorbing; 1 is the goal.
    fn hazard() -> Mdp {
        let mut b = MdpBuilder::new(3);
        b.choice(0, "safe", &[(1, 1.0)]).unwrap();
        b.choice(0, "risky", &[(2, 1.0)]).unwrap();
        b.choice(1, "stay", &[(1, 1.0)]).unwrap();
        b.choice(2, "stay", &[(2, 1.0)]).unwrap();
        b.label(1, "goal").unwrap();
        b.label(2, "unsafe").unwrap();
        b.build().unwrap()
    }

    fn hazard_features() -> FeatureMap {
        // f1 = 1 at the unsafe state, f2 = 1 at the goal state.
        FeatureMap::new(vec![vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap()
    }

    #[test]
    fn enumerate_counts_branching() {
        let m = hazard();
        let paths = enumerate_trajectories(&m, 0, 1);
        assert_eq!(paths.len(), 2);
        let paths2 = enumerate_trajectories(&m, 0, 2);
        assert_eq!(paths2.len(), 2); // absorbing states have one choice
        for p in &paths2 {
            assert_eq!(p.len(), 2);
        }
    }

    #[test]
    fn projection_zeroes_violating_mass() {
        let m = hazard();
        let paths = enumerate_trajectories(&m, 0, 2);
        let base = vec![0.5, 0.5];
        let rules = vec![WeightedRule::hard(TraceFormula::never("unsafe"))];
        let q = project_distribution(&m, &paths, &base, &rules);
        // The risky path's mass collapses to ~0; the safe one to ~1.
        let safe_idx = paths.iter().position(|p| p.states.contains(&1)).expect("safe path present");
        assert!(q[safe_idx] > 0.999, "q = {q:?}");
        let total: f64 = q.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn soft_lambda_interpolates() {
        let m = hazard();
        let paths = enumerate_trajectories(&m, 0, 1);
        let base = vec![0.5, 0.5];
        let rules = vec![WeightedRule::soft(TraceFormula::never("unsafe"), 1.0)];
        let q = project_distribution(&m, &paths, &base, &rules);
        let unsafe_idx = paths.iter().position(|p| p.states.contains(&2)).unwrap();
        // exp(-1)/(1 + exp(-1)) ≈ 0.2689
        assert!((q[unsafe_idx] - (-1.0_f64).exp() / (1.0 + (-1.0_f64).exp())).abs() < 1e-9);
    }

    #[test]
    fn project_and_fit_moves_mass_off_unsafe() {
        let m = hazard();
        let fm = hazard_features();
        // θ₀ rewards the unsafe feature: the learned reward is "bad".
        let theta0 = vec![1.0, 0.0];
        let rules = vec![WeightedRule::hard(TraceFormula::never("unsafe"))];
        let out = RewardRepair::new().project_and_fit(&m, &fm, &theta0, &rules, 3).unwrap();
        assert!(out.violation_mass_before > 0.5, "before {}", out.violation_mass_before);
        assert!(
            out.violation_mass_after < 0.2,
            "after {} (theta {:?})",
            out.violation_mass_after,
            out.theta
        );
        assert!(out.kl_divergence > 0.0);
        assert_eq!(out.num_trajectories, 2);
        // The repaired reward must rank the goal feature above the unsafe one.
        assert!(out.theta[1] > out.theta[0], "theta = {:?}", out.theta);
    }

    #[test]
    fn q_constraint_repair_flips_preference() {
        let m = hazard();
        let fm = hazard_features();
        let theta0 = vec![1.0, 0.0]; // prefers risky
        let constraints = vec![QConstraint { state: 0, better: 0, worse: 1, margin: 0.05 }];
        let out = RewardRepair::new()
            .q_constraint_repair(&m, &fm, &theta0, &constraints, 0.9, 3.0)
            .unwrap();
        assert_eq!(out.status, RepairStatus::Repaired);
        assert!(out.verified);
        assert!(out.cost > 0.0);
        // Check the greedy policy now takes "safe".
        let rewards = fm.rewards(&out.theta);
        let vi =
            value_iteration(&m, &rewards, ViOptions { gamma: 0.9, ..Default::default() }).unwrap();
        assert_eq!(vi.policy[0], 0);
    }

    #[test]
    fn q_constraint_already_satisfied() {
        let m = hazard();
        let fm = hazard_features();
        let theta0 = vec![0.0, 1.0]; // already prefers safe
        let constraints = vec![QConstraint { state: 0, better: 0, worse: 1, margin: 0.01 }];
        let out = RewardRepair::new()
            .q_constraint_repair(&m, &fm, &theta0, &constraints, 0.9, 2.0)
            .unwrap();
        assert_eq!(out.status, RepairStatus::AlreadySatisfied);
        assert_eq!(out.cost, 0.0);
    }

    #[test]
    fn q_constraint_infeasible_within_radius() {
        let m = hazard();
        let fm = hazard_features();
        let theta0 = vec![5.0, 0.0];
        // Tiny radius cannot flip a 5-point preference.
        let constraints = vec![QConstraint { state: 0, better: 0, worse: 1, margin: 0.1 }];
        let out = RewardRepair::new()
            .q_constraint_repair(&m, &fm, &theta0, &constraints, 0.9, 0.5)
            .unwrap();
        assert_eq!(out.status, RepairStatus::Infeasible);
    }

    #[test]
    fn exhausted_budget_truncates_the_fit_to_theta0() {
        let m = hazard();
        let fm = hazard_features();
        let theta0 = vec![1.0, 0.0];
        let rules = vec![WeightedRule::hard(TraceFormula::never("unsafe"))];
        let out = RewardRepair::new()
            .with_budget(Budget::unlimited().with_max_evaluations(0))
            .project_and_fit(&m, &fm, &theta0, &rules, 3)
            .unwrap();
        // No fit iterations ran: best effort is the original θ.
        assert_eq!(out.theta, theta0);
        assert!(out.diagnostics.exhausted.is_some());
        assert!(out.diagnostics.degraded());
    }

    #[test]
    fn q_constraint_budget_exhaustion_is_reported() {
        let m = hazard();
        let fm = hazard_features();
        let theta0 = vec![1.0, 0.0];
        let constraints = vec![QConstraint { state: 0, better: 0, worse: 1, margin: 0.05 }];
        let out = RewardRepair::new()
            .with_budget(Budget::unlimited().with_max_evaluations(0))
            .q_constraint_repair(&m, &fm, &theta0, &constraints, 0.9, 3.0)
            .unwrap();
        assert_eq!(out.status, RepairStatus::BudgetExhausted);
        assert!(out.diagnostics.exhausted.is_some());
    }

    #[test]
    fn input_validation() {
        let m = hazard();
        let fm = hazard_features();
        let rr = RewardRepair::new();
        assert!(rr.project_and_fit(&m, &fm, &[0.0, 0.0], &[], 3).is_err());
        assert!(rr
            .project_and_fit(&m, &fm, &[0.0], &[WeightedRule::hard(TraceFormula::True)], 3)
            .is_err());
        assert!(rr
            .project_and_fit(&m, &fm, &[0.0, 0.0], &[WeightedRule::hard(TraceFormula::True)], 0)
            .is_err());
        let bad = vec![QConstraint { state: 9, better: 0, worse: 0, margin: 0.0 }];
        assert!(rr.q_constraint_repair(&m, &fm, &[0.0, 0.0], &bad, 0.9, 1.0).is_err());
    }

    #[test]
    fn trace_view_exposes_labels_and_actions() {
        let m = hazard();
        let p = Path::with_actions(vec![0, 2, 2], vec![1, 0]).unwrap();
        let view = MdpTraceView::new(&m, &p);
        assert_eq!(view.len(), 3);
        assert!(view.holds(1, "unsafe"));
        assert!(!view.holds(0, "unsafe"));
        assert_eq!(view.action(0), Some(1));
        assert_eq!(view.action(2), None);
    }

    #[test]
    fn log_weight_combines_rewards_and_transitions() {
        let m = hazard();
        let fm = hazard_features();
        let p = Path::with_actions(vec![0, 1], vec![0]).unwrap();
        // reward: f(0)=(0,0), f(1)=(0,1); θ=(0,2) → Σ θf = 2; ln P = ln 1 = 0.
        let lw = trajectory_log_weight(&m, &fm, &[0.0, 2.0], &p);
        assert!((lw - 2.0).abs() < 1e-12);
    }
}

#[cfg(test)]
mod sampling_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tml_models::MdpBuilder;

    fn hazard() -> Mdp {
        let mut b = MdpBuilder::new(3);
        b.choice(0, "safe", &[(1, 1.0)]).unwrap();
        b.choice(0, "risky", &[(2, 1.0)]).unwrap();
        b.choice(1, "stay", &[(1, 1.0)]).unwrap();
        b.choice(2, "stay", &[(2, 1.0)]).unwrap();
        b.label(1, "goal").unwrap();
        b.label(2, "unsafe").unwrap();
        b.build().unwrap()
    }

    fn fm() -> FeatureMap {
        FeatureMap::new(vec![vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap()
    }

    #[test]
    fn sampled_trajectories_are_well_formed() {
        let m = hazard();
        let mut rng = StdRng::seed_from_u64(5);
        let paths = sample_trajectories(&m, &fm(), &[0.0, 0.0], 50, 4, &mut rng).unwrap();
        assert_eq!(paths.len(), 50);
        for p in &paths {
            assert_eq!(p.len(), 4);
            assert_eq!(p.states[0], m.initial_state());
        }
        // Under zero rewards both first actions appear in the sample.
        let safe = paths.iter().filter(|p| p.states[1] == 1).count();
        assert!(safe > 10 && safe < 40, "safe count {safe}");
    }

    #[test]
    fn sampled_projection_mirrors_exact_one() {
        let m = hazard();
        let features = fm();
        let theta0 = vec![1.0, 0.0]; // prefers the unsafe state
        let rules = vec![WeightedRule::hard(tml_logic::TraceFormula::never("unsafe"))];
        let mut rng = StdRng::seed_from_u64(9);
        let sampled = RewardRepair::new()
            .project_and_fit_sampled(&m, &features, &theta0, &rules, 3, 400, &mut rng)
            .unwrap();
        let exact = RewardRepair::new().project_and_fit(&m, &features, &theta0, &rules, 3).unwrap();
        assert!(sampled.violation_mass_after < sampled.violation_mass_before);
        // Both repairs point the reward the same way: goal beats unsafe.
        assert!(sampled.theta[1] > sampled.theta[0], "sampled theta {:?}", sampled.theta);
        assert!(exact.theta[1] > exact.theta[0]);
    }

    #[test]
    fn sampled_validation() {
        let m = hazard();
        let features = fm();
        let mut rng = StdRng::seed_from_u64(1);
        let rules = vec![WeightedRule::hard(tml_logic::TraceFormula::True)];
        let rr = RewardRepair::new();
        assert!(rr
            .project_and_fit_sampled(&m, &features, &[0.0, 0.0], &[], 3, 10, &mut rng)
            .is_err());
        assert!(rr
            .project_and_fit_sampled(&m, &features, &[0.0, 0.0], &rules, 0, 10, &mut rng)
            .is_err());
        assert!(rr
            .project_and_fit_sampled(&m, &features, &[0.0, 0.0], &rules, 3, 0, &mut rng)
            .is_err());
        assert!(rr
            .project_and_fit_sampled(&m, &features, &[0.0], &rules, 3, 10, &mut rng)
            .is_err());
    }
}
