//! SIGTERM/SIGINT → drain flag.
//!
//! The only unsafe code in the workspace: two `libc`-free `signal(2)`
//! registrations whose handler does nothing but store into a static
//! `AtomicBool` (async-signal-safe by construction). The accept loop
//! polls [`drain_requested`] alongside the server-local drain flag (the
//! `POST /admin/drain` path), and both converge on the same drain
//! routine. The flag is process-global because signals are; in-process
//! tests drain through the admin endpoint, which is per-server. Non-unix
//! builds compile to the flag alone.

use std::sync::atomic::{AtomicBool, Ordering};

static DRAIN: AtomicBool = AtomicBool::new(false);

/// Whether a shutdown signal (or an admin drain) has been received.
pub fn drain_requested() -> bool {
    DRAIN.load(Ordering::SeqCst)
}

/// Requests a drain (the `POST /admin/drain` path, and tests).
pub fn request_drain() {
    DRAIN.store(true, Ordering::SeqCst);
}

/// Clears the flag (tests that start several servers in one process).
pub fn reset_drain() {
    DRAIN.store(false, Ordering::SeqCst);
}

#[cfg(unix)]
mod unix {
    use super::DRAIN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    #[allow(unsafe_code)]
    mod ffi {
        extern "C" {
            pub fn signal(signum: i32, handler: usize) -> usize;
        }
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work here: one atomic store.
        DRAIN.store(true, Ordering::SeqCst);
    }

    /// Registers the handlers (idempotent; later registrations no-op).
    #[allow(unsafe_code)]
    pub fn install() {
        use std::sync::Once;
        static INSTALL: Once = Once::new();
        INSTALL.call_once(|| {
            // SAFETY: `signal` is the POSIX registration call; the handler
            // is an `extern "C" fn` performing a single atomic store,
            // which is async-signal-safe.
            unsafe {
                ffi::signal(SIGTERM, on_signal as *const () as usize);
                ffi::signal(SIGINT, on_signal as *const () as usize);
            }
        });
    }
}

/// Installs the SIGTERM/SIGINT handlers (no-op off unix).
pub fn install_handlers() {
    #[cfg(unix)]
    unix::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_flag_round_trips() {
        install_handlers();
        reset_drain();
        assert!(!drain_requested());
        request_drain();
        assert!(drain_requested());
        reset_drain();
        assert!(!drain_requested());
    }
}
