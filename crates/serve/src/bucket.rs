//! Per-client token buckets: the tenant-level scheduler in front of the
//! job queue.
//!
//! Each client (the `X-TML-Client` header, or `"anonymous"`) owns a
//! bucket of `capacity` tokens refilling at `refill_per_sec`; every
//! accepted job costs one token. An empty bucket answers
//! [`Admit::Wait`] with the time until the next token, which the handler
//! maps to `429 Retry-After` — per-tenant backpressure that an abusive
//! client cannot convert into whole-service starvation.
//!
//! Time comes from an injected [`Clock`], so tests use a
//! [`ManualClock`](tml_runtime::ManualClock) and never sleep. The client
//! map is capped: once `MAX_CLIENTS` distinct names exist, new names
//! share one overflow bucket (bounded memory under client-name spray).

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use tml_runtime::SharedClock;

/// Cap on distinct per-client buckets; excess clients share one bucket.
pub const MAX_CLIENTS: usize = 1024;

/// Admission verdict for one job submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// A token was spent; the job may proceed to the queue.
    Granted,
    /// The bucket is empty; retry after the given wait.
    Wait(Duration),
}

struct BucketState {
    tokens: f64,
    last: Instant,
}

/// The per-client bucket set.
pub struct TokenBuckets {
    capacity: f64,
    refill_per_sec: f64,
    clock: SharedClock,
    buckets: Mutex<HashMap<String, BucketState>>,
}

impl TokenBuckets {
    /// Buckets holding `capacity` tokens (min 1), refilling at
    /// `refill_per_sec` (0 = no refill: a hard per-client quota).
    pub fn new(capacity: u32, refill_per_sec: f64, clock: SharedClock) -> Self {
        TokenBuckets {
            capacity: f64::from(capacity.max(1)),
            refill_per_sec: refill_per_sec.max(0.0),
            clock,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Charges one token from `client`'s bucket.
    pub fn admit(&self, client: &str) -> Admit {
        let now = self.clock.now();
        let mut buckets = self.buckets.lock().unwrap_or_else(|e| e.into_inner());
        let key = if buckets.len() >= MAX_CLIENTS && !buckets.contains_key(client) {
            "~overflow"
        } else {
            client
        };
        let state = buckets
            .entry(key.to_string())
            .or_insert_with(|| BucketState { tokens: self.capacity, last: now });
        let elapsed = now.saturating_duration_since(state.last).as_secs_f64();
        state.tokens = (state.tokens + elapsed * self.refill_per_sec).min(self.capacity);
        state.last = now;
        if state.tokens >= 1.0 {
            state.tokens -= 1.0;
            Admit::Granted
        } else if self.refill_per_sec > 0.0 {
            let deficit = 1.0 - state.tokens;
            Admit::Wait(Duration::from_secs_f64(deficit / self.refill_per_sec))
        } else {
            // No refill: the quota is spent for good; report a long wait.
            Admit::Wait(Duration::from_secs(3600))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tml_runtime::ManualClock;

    fn buckets(capacity: u32, refill: f64) -> (TokenBuckets, ManualClock) {
        let clock = ManualClock::new();
        (TokenBuckets::new(capacity, refill, Arc::new(clock.clone())), clock)
    }

    #[test]
    fn buckets_are_per_client() {
        let (b, _) = buckets(2, 0.0);
        assert_eq!(b.admit("alice"), Admit::Granted);
        assert_eq!(b.admit("alice"), Admit::Granted);
        assert!(matches!(b.admit("alice"), Admit::Wait(_)), "alice's quota spent");
        assert_eq!(b.admit("bob"), Admit::Granted, "bob is unaffected");
    }

    #[test]
    fn refill_restores_tokens_on_the_manual_clock() {
        let (b, clock) = buckets(1, 2.0); // 2 tokens/sec
        assert_eq!(b.admit("c"), Admit::Granted);
        match b.admit("c") {
            Admit::Wait(d) => assert!(d <= Duration::from_millis(500), "deficit of 1 at 2/s"),
            Admit::Granted => panic!("bucket should be empty"),
        }
        clock.advance(Duration::from_millis(600));
        assert_eq!(b.admit("c"), Admit::Granted, "refilled past one token");
        assert!(matches!(b.admit("c"), Admit::Wait(_)), "capacity caps the refill at 1");
    }

    #[test]
    fn client_map_is_bounded() {
        let (b, _) = buckets(2, 0.0);
        for i in 0..MAX_CLIENTS {
            assert_eq!(b.admit(&format!("client-{i}")), Admit::Granted);
        }
        // The map is full: new names share one overflow bucket.
        assert_eq!(b.admit("fresh-1"), Admit::Granted);
        assert_eq!(b.admit("fresh-2"), Admit::Granted);
        assert!(matches!(b.admit("fresh-3"), Admit::Wait(_)), "overflow bucket is shared");
        assert_eq!(b.admit("client-0"), Admit::Granted, "existing clients keep their bucket");
    }
}
