//! A minimal, fail-closed HTTP/1.1 layer over any `Read + Write` stream.
//!
//! This is not a general-purpose HTTP implementation — it is the smallest
//! surface the repair service needs, hardened in the directions that
//! matter for robustness: hard limits on head and body size, explicit
//! rejection of chunked transfer encoding, and a parse layer that turns
//! every malformed input into a structured [`HttpError`] (which the
//! router maps to a `400`) instead of a panic or a hang. Every response
//! carries `Connection: close`; the service is short-request-only by
//! design.
//!
//! Generic over the stream so unit tests drive the parser with in-memory
//! buffers instead of sockets.

use std::io::{self, BufRead, Write};

/// Hard cap on the request head (request line + headers), bytes.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Hard cap on a request body, bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The stream failed mid-read.
    Io(io::Error),
    /// The request was malformed; the string names the violation.
    Malformed(String),
    /// The peer closed the connection before a full request arrived.
    Closed,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o: {e}"),
            HttpError::Malformed(m) => write!(f, "{m}"),
            HttpError::Closed => write!(f, "connection closed mid-request"),
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

fn malformed(msg: impl Into<String>) -> HttpError {
    HttpError::Malformed(msg.into())
}

/// One parsed request: method, path, selected headers, raw body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path (query string stripped).
    pub path: String,
    /// `x-tml-client` header, when the client identified itself (the
    /// token-bucket tenant key).
    pub client: Option<String>,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// Reads one request from the stream, enforcing the head/body limits.
///
/// # Errors
///
/// [`HttpError::Closed`] on EOF before a request line,
/// [`HttpError::Malformed`] on any protocol violation (bad request line,
/// oversized head or body, chunked encoding, non-numeric length), and
/// [`HttpError::Io`] on stream failures.
pub fn read_request<R: BufRead>(stream: &mut R) -> Result<Request, HttpError> {
    let mut head_bytes = 0usize;
    let mut line = String::new();
    if stream.read_line(&mut line)? == 0 {
        return Err(HttpError::Closed);
    }
    head_bytes += line.len();
    let request_line = line.trim_end_matches(['\r', '\n']).to_string();
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && t.starts_with('/') => (m, t, v),
        _ => return Err(malformed(format!("bad request line: {request_line:?}"))),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(malformed(format!("unsupported version {version:?}")));
    }
    let method = method.to_ascii_uppercase();
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    let mut client = None;
    loop {
        let mut header = String::new();
        if stream.read_line(&mut header)? == 0 {
            return Err(HttpError::Closed);
        }
        head_bytes += header.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(malformed("request head exceeds 8KiB"));
        }
        let header = header.trim_end_matches(['\r', '\n']);
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(malformed(format!("bad header line: {header:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| malformed(format!("bad content-length: {value:?}")))?;
            }
            "transfer-encoding" => {
                // Fail closed: we never read chunked bodies, and silently
                // ignoring the header would desynchronize the stream.
                return Err(malformed("transfer-encoding is not supported"));
            }
            "x-tml-client" => client = Some(value.to_string()),
            _ => {}
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(malformed("request body exceeds 1MiB"));
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            HttpError::Closed
        } else {
            HttpError::Io(e)
        }
    })?;
    Ok(Request { method, path, client, body })
}

/// One response: status, body, content type and optional `Retry-After`
/// and `X-Trace-Id` headers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
    /// `Retry-After` seconds, when shedding load.
    pub retry_after: Option<u64>,
    /// `X-Trace-Id` value (16 hex digits), when the handler bound the
    /// request to a trace.
    pub trace: Option<String>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response::with_content_type(status, "application/json", body)
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Self {
        Response::with_content_type(status, "text/plain; charset=utf-8", body)
    }

    /// A response with an explicit content type (the `/metrics` handler
    /// passes the Prometheus exposition type).
    pub fn with_content_type(status: u16, content_type: &'static str, body: String) -> Self {
        Response { status, content_type, body: body.into_bytes(), retry_after: None, trace: None }
    }

    /// Attaches a `Retry-After` header (shed responses).
    #[must_use]
    pub fn with_retry_after(mut self, secs: u64) -> Self {
        self.retry_after = Some(secs);
        self
    }

    /// Attaches an `X-Trace-Id` header (admission responses).
    #[must_use]
    pub fn with_trace(mut self, trace_hex: String) -> Self {
        self.trace = Some(trace_hex);
        self
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes `response` and flushes. Always closes the connection afterwards
/// (the `Connection: close` contract).
///
/// # Errors
///
/// Propagates stream I/O errors.
pub fn write_response<W: Write>(stream: &mut W, response: &Response) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
    )?;
    if let Some(secs) = response.retry_after {
        write!(stream, "Retry-After: {secs}\r\n")?;
    }
    if let Some(trace) = &response.trace {
        write!(stream, "X-Trace-Id: {trace}\r\n")?;
    }
    stream.write_all(b"\r\n")?;
    stream.write_all(&response.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw))
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /v1/jobs?x=1 HTTP/1.1\r\nHost: h\r\nX-TML-Client: alice\r\nContent-Length: 4\r\n\r\nbody";
        let req = parse(raw).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs", "query string stripped");
        assert_eq!(req.client.as_deref(), Some("alice"));
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn parses_a_bare_get() {
        let req = parse(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn malformed_inputs_fail_closed() {
        for (raw, why) in [
            (&b"GARBAGE\r\n\r\n"[..], "no method/target split"),
            (b"GET /x HTTP/2\r\n\r\n", "unsupported version"),
            (b"GET x HTTP/1.1\r\n\r\n", "target must start with /"),
            (b"GET /x HTTP/1.1\r\nbad header\r\n\r\n", "header without colon"),
            (b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n", "bad length"),
            (b"POST /x HTTP/1.1\r\nContent-Length: 9999999999\r\n\r\n", "oversized body"),
            (b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", "chunked rejected"),
        ] {
            match parse(raw) {
                Err(HttpError::Malformed(_)) => {}
                other => panic!("{why}: expected Malformed, got {other:?}"),
            }
        }
    }

    #[test]
    fn eof_cases_are_closed_not_malformed() {
        assert!(matches!(parse(b""), Err(HttpError::Closed)), "EOF before request line");
        assert!(matches!(parse(b"GET /x HTTP/1.1\r\n"), Err(HttpError::Closed)), "EOF mid-headers");
        assert!(
            matches!(
                parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
                Err(HttpError::Closed)
            ),
            "EOF mid-body"
        );
    }

    #[test]
    fn oversized_head_is_rejected() {
        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        for i in 0..2000 {
            raw.extend_from_slice(format!("X-Pad-{i}: aaaaaaaa\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        assert!(matches!(parse(&raw), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn responses_carry_status_length_and_retry_after() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(429, "{}".into()).with_retry_after(3)).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 3\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
        assert!(!text.contains("X-Trace-Id"), "no trace header unless bound");
    }

    #[test]
    fn trace_and_content_type_headers_are_emitted() {
        let mut out = Vec::new();
        let resp = Response::with_content_type(200, "text/plain; version=0.0.4", "x 1\n".into())
            .with_trace("00000000000000ff".into());
        write_response(&mut out, &resp).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Content-Type: text/plain; version=0.0.4\r\n"));
        assert!(text.contains("X-Trace-Id: 00000000000000ff\r\n"));
    }
}
