//! `tml-serve`: a fault-tolerant, crash-consistent repair service
//! (DESIGN.md §12).
//!
//! The batch runtime answers "run these N jobs and survive a `kill -9`";
//! this crate turns that into a long-running service: an HTTP/1.1 JSON
//! API over `std::net` that accepts learn/verify/repair submissions,
//! runs them on a bounded worker pool, and journals every accepted job
//! to the same `tml-journal/v1` write-ahead log — so a crashed server
//! restarted on its journal converges to the same final report,
//! byte-for-byte, as one that never crashed.
//!
//! The robustness surface, by module:
//!
//! * [`http`] — minimal fail-closed HTTP layer: hard head/body caps,
//!   chunked encoding rejected, every malformed input a structured error.
//! * [`queue`] — bounded admission queue: job `N+1` is an explicit shed
//!   (`429 Retry-After`), never an unbounded buffer or a hang.
//! * [`bucket`] — per-client token buckets on an injected clock:
//!   tenant-level backpressure with bounded memory.
//! * [`signal`] — SIGTERM/SIGINT to a drain flag (the workspace's only
//!   unsafe code, one atomic store).
//! * [`server`] — admission ordering, the worker pool, journal resume,
//!   graceful drain and the health/metrics endpoints.
//!
//! No external dependencies: sockets are `std::net`, JSON is the shared
//! `tml_telemetry::json` parser, durability is the runtime's journal.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bucket;
pub mod http;
pub mod queue;
pub mod server;
pub mod signal;

pub use bucket::{Admit, TokenBuckets, MAX_CLIENTS};
pub use http::{Request, Response};
pub use queue::{BudgetSpec, JobQueue, QueuedJob, Shed};
pub use server::{RunOutcome, ServeOptions, Server};
