//! The repair service: admission, worker pool, journaled execution,
//! graceful drain.
//!
//! One [`Server`] owns a `tml-journal/v1` write-ahead journal, a bounded
//! [`JobQueue`](crate::queue::JobQueue) and a pool of job workers. The
//! admission path is fail-closed and fully ordered:
//!
//! 1. refuse while draining (`503`);
//! 2. validate the request body — malformed JSON, unknown kinds,
//!    unparseable models/properties and oversized models never reach a
//!    worker (`400`/`422`);
//! 3. consult the breaker set — with the direct (last-resort) backend
//!    open there is nothing healthy to run on, so new work is refused
//!    (`503`) rather than queued;
//! 4. charge the client's token bucket (`429 Retry-After` on empty);
//! 5. shed if the queue is full (`429 Retry-After` derived from depth);
//! 6. journal the `submit` record — only after the flush does the client
//!    see `202`, so every accepted job survives a `kill -9`.
//!
//! Workers run corpus jobs through the batch executor's
//! [`run_corpus_job`] (same journaling, same fold-after-failure resume
//! rule), so a served corpus interrupted by `kill -9` and restarted from
//! its journal renders a final report byte-identical to an uninterrupted
//! control run — the same contract `tml batch --resume` holds, asserted
//! end-to-end in the `serve-smoke` CI job.

use std::collections::BTreeMap;
use std::fs::OpenOptions;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use tml_checker::Checker;
use tml_logic::parse_formula;
use tml_models::dsl::{parse_model, ModelFile};
use tml_runtime::executor::{isolate, run_corpus_job, JobContext};
use tml_runtime::job::fingerprint_dtmc;
use tml_runtime::journal::render_report;
use tml_runtime::{
    parse_journal_bytes, AttemptFailure, BatchConfig, ChaosSpec, FailureKind, JobOutcome,
    JobStatus, Journal, RetryPolicy, SharedClock, SolverBreakers, Submission, SubmitKind,
};
use tml_telemetry::json::{self, Value};
use tml_telemetry::jsonl::{schema, JsonlWriter, LineBuilder};
use tml_telemetry::prometheus::{render_prometheus, CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE};
use tml_telemetry::{Subscriber, TraceContext};

use crate::bucket::{Admit, TokenBuckets};
use crate::http::{read_request, write_response, HttpError, Request, Response};
use crate::queue::{BudgetSpec, JobQueue, QueuedJob};
use crate::signal;

/// Largest model a verify submission may carry, in states. Fail-closed:
/// anything bigger is refused at admission, before a worker is tied up.
pub const MAX_VERIFY_STATES: usize = 4096;

/// Largest corpus index a submission may name (the corpus is unbounded by
/// construction; the cap keeps job derivation away from pathological
/// seeds a client could fish for).
pub const MAX_CORPUS_INDEX: u64 = 1_000_000;

/// Server configuration (the CLI's `tml serve` flags).
#[derive(Clone)]
pub struct ServeOptions {
    /// Bind address (`127.0.0.1:0` lets the OS pick a port).
    pub addr: String,
    /// Job worker threads. `0` is permitted — jobs queue and never run,
    /// which is how the overload and drain-recovery tests get
    /// deterministic queue states.
    pub workers: u32,
    /// Bounded queue capacity: submission `N+1` sheds with `429`.
    pub queue_depth: usize,
    /// Graceful-drain deadline, milliseconds: in-flight jobs get this
    /// long to conclude once a drain starts.
    pub drain_ms: u64,
    /// Minimum time to keep answering requests after a drain begins,
    /// milliseconds. A load balancer polling `/readyz` needs a window in
    /// which the server answers `503` before the socket goes away; `0`
    /// (the default) exits as soon as the workers are idle.
    pub drain_linger_ms: u64,
    /// Write-ahead journal path (created, or resumed when non-empty).
    pub journal: PathBuf,
    /// `tml-serve/v1` request-log path, when request logging is on.
    pub request_log: Option<PathBuf>,
    /// Corpus seed for `kind: "corpus"` submissions.
    pub corpus_seed: u64,
    /// Retry policy for corpus jobs.
    pub retry: RetryPolicy,
    /// Fault-injection plan (corpus jobs only; verify jobs are never
    /// chaos-injected — they are the service's reference workload).
    pub chaos: Option<ChaosSpec>,
    /// Simulate a crash after this many journaled outcomes.
    pub kill_after: Option<u64>,
    /// Whether `kill_after` exits the process with status 137 (the CLI's
    /// `kill -9` stand-in) instead of stopping in-process.
    pub hard_kill: bool,
    /// Token-bucket scheduler: `(capacity, refill per second)`. `None`
    /// disables per-client throttling.
    pub bucket: Option<(u32, f64)>,
    /// Circuit-breaker time-based recovery window, milliseconds.
    pub breaker_recovery_ms: u64,
    /// Clock for buckets and breaker recovery (tests inject a
    /// [`ManualClock`](tml_runtime::ManualClock)).
    pub clock: SharedClock,
}

impl ServeOptions {
    /// Defaults for a journal at `journal` (loopback bind, 2 workers,
    /// queue depth 64, 5s drain, no chaos, no throttling).
    pub fn new(journal: impl Into<PathBuf>) -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_depth: 64,
            drain_ms: 5000,
            drain_linger_ms: 0,
            journal: journal.into(),
            request_log: None,
            corpus_seed: 7,
            retry: RetryPolicy::default(),
            chaos: None,
            kill_after: None,
            hard_kill: false,
            bucket: None,
            breaker_recovery_ms: 30_000,
            clock: tml_runtime::system_clock(),
        }
    }

    fn config(&self, jobs: u64) -> BatchConfig {
        BatchConfig {
            corpus_seed: self.corpus_seed,
            jobs,
            max_attempts: self.retry.max_attempts,
            workers: self.workers,
            chaos: self.chaos.as_ref().map(ChaosSpec::canonical),
        }
    }
}

/// How a [`Server::run`] call ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// Graceful drain completed (signal or `POST /admin/drain`).
    Drained,
    /// A simulated crash (`kill_after`, soft mode) stopped the server
    /// with no drain — the journal ends wherever the last flush put it.
    Crashed,
}

/// Where a job stands in the table.
#[derive(Debug, Clone)]
enum JobPhase {
    Queued,
    Running,
    Done(JobOutcome),
}

impl JobPhase {
    fn name(&self) -> &str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Done(o) => o.status.name(),
        }
    }
}

struct JobRecord {
    kind: SubmitKind,
    phase: JobPhase,
}

#[derive(Default)]
struct JobTable {
    next_id: u64,
    by_index: BTreeMap<u64, u64>,
    records: BTreeMap<u64, JobRecord>,
}

impl JobTable {
    fn count(&self, pred: impl Fn(&JobPhase) -> bool) -> u64 {
        self.records.values().filter(|r| pred(&r.phase)).count() as u64
    }
}

struct ReqLog {
    writer: JsonlWriter<std::fs::File>,
    seq: AtomicU64,
}

/// Drain rendezvous: counts live workers so drain can wait (bounded) for
/// in-flight jobs to conclude.
struct WorkerGate {
    active: Mutex<u32>,
    idle: Condvar,
}

impl WorkerGate {
    fn enter(&self) {
        *self.active.lock().unwrap_or_else(|e| e.into_inner()) += 1;
    }

    fn exit(&self) {
        let mut n = self.active.lock().unwrap_or_else(|e| e.into_inner());
        *n -= 1;
        if *n == 0 {
            self.idle.notify_all();
        }
    }

    /// Whether every worker has exited (non-blocking).
    fn idle_now(&self) -> bool {
        *self.active.lock().unwrap_or_else(|e| e.into_inner()) == 0
    }
}

struct ServeState {
    opts: ServeOptions,
    journal: Journal<std::fs::File>,
    jobs: Mutex<JobTable>,
    queue: JobQueue,
    breakers: Mutex<SolverBreakers>,
    buckets: Option<TokenBuckets>,
    sub: Arc<Subscriber>,
    reqlog: Option<ReqLog>,
    draining: AtomicBool,
    crashed: AtomicBool,
    completed: AtomicU64,
    gate: WorkerGate,
}

/// The service. [`bind`](Server::bind) prepares everything (listener,
/// journal create-or-resume, recovered queue); [`run`](Server::run)
/// blocks until drain or simulated crash.
pub struct Server {
    state: Arc<ServeState>,
    listener: TcpListener,
}

// ---------------------------------------------------------------------
// JSON response helpers (hand-built on the shared json escaping).

fn obj_start(out: &mut String) {
    out.push('{');
}

fn obj_field_str(out: &mut String, key: &str, value: &str) {
    obj_key(out, key);
    json::write_string(out, value);
}

fn obj_field_u64(out: &mut String, key: &str, value: u64) {
    obj_key(out, key);
    out.push_str(&value.to_string());
}

fn obj_field_bool(out: &mut String, key: &str, value: bool) {
    obj_key(out, key);
    out.push_str(if value { "true" } else { "false" });
}

fn obj_key(out: &mut String, key: &str) {
    if !out.ends_with('{') {
        out.push(',');
    }
    json::write_string(out, key);
    out.push(':');
}

fn obj_end(mut out: String) -> String {
    out.push('}');
    out
}

fn error_body(message: &str) -> String {
    let mut out = String::new();
    obj_start(&mut out);
    obj_field_str(&mut out, "error", message);
    obj_end(out)
}

impl Server {
    /// Binds the listener and opens (or resumes) the journal.
    ///
    /// A non-empty journal is parsed; submissions with outcomes replay
    /// into the job table, pending ones are re-queued with their
    /// journaled next attempt and fold-after-failure warm starts, and the
    /// journal reopens in append mode with a `resume` boundary record.
    ///
    /// # Errors
    ///
    /// I/O errors from the bind or journal, and `InvalidData` when an
    /// existing journal is unreadable (beyond a torn tail).
    pub fn bind(opts: ServeOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        listener.set_nonblocking(true)?;

        let existing = match std::fs::read(&opts.journal) {
            Ok(mut bytes) => {
                // A `kill -9` can tear the final line mid-write. Those
                // bytes never became a durable record; drop them before
                // appending, or the next record would merge into the
                // garbage and corrupt the journal for the *next* restart.
                let durable = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
                if durable < bytes.len() {
                    let file = OpenOptions::new().write(true).open(&opts.journal)?;
                    file.set_len(durable as u64)?;
                    bytes.truncate(durable);
                }
                if bytes.is_empty() {
                    None
                } else {
                    Some(bytes)
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
        };

        let mut table = JobTable::default();
        let queue = JobQueue::new(opts.queue_depth);
        let journal = match existing {
            None => {
                let file = OpenOptions::new()
                    .create(true)
                    .write(true)
                    .truncate(true)
                    .open(&opts.journal)?;
                Journal::create(file, &opts.config(0))?
            }
            Some(bytes) => {
                let state = parse_journal_bytes(&bytes)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                for sub in &state.submissions {
                    if let SubmitKind::Corpus { index } = sub.kind {
                        table.by_index.insert(index, sub.job);
                    }
                    let phase = match state.outcome(sub.job) {
                        Some(o) => JobPhase::Done(o.clone()),
                        None => JobPhase::Queued,
                    };
                    table.records.insert(sub.job, JobRecord { kind: sub.kind.clone(), phase });
                    table.next_id = table.next_id.max(sub.job + 1);
                }
                for sub in state.pending_submissions() {
                    let queued = QueuedJob {
                        job: sub.job,
                        trace: sub.trace,
                        kind: sub.kind.clone(),
                        first_attempt: state.next_attempt(sub.job),
                        warm: state.warm_starts(sub.job),
                        budget: None,
                        prior_failure: state.last_failure(sub.job),
                    };
                    queue.push(queued).map_err(|_| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            "journal holds more pending jobs than --queue-depth",
                        )
                    })?;
                }
                let file = OpenOptions::new().append(true).open(&opts.journal)?;
                Journal::reopen(file, state.outcomes.len() as u64)?
            }
        };

        let reqlog = match &opts.request_log {
            None => None,
            Some(path) => {
                let file = OpenOptions::new().create(true).write(true).truncate(true).open(path)?;
                let writer = JsonlWriter::durable(file);
                writer.line(&LineBuilder::meta(schema::SERVE).str("tool", "tml-serve").finish())?;
                Some(ReqLog { writer, seq: AtomicU64::new(0) })
            }
        };

        let buckets =
            opts.bucket.map(|(cap, refill)| TokenBuckets::new(cap, refill, opts.clock.clone()));
        let breakers = Mutex::new(SolverBreakers::with_recovery(
            Duration::from_millis(opts.breaker_recovery_ms),
            opts.clock.clone(),
        ));
        // Reuse the process-global subscriber when one is installed (the
        // CLI's --trace-json path), so server metrics and worker spans land
        // in one registry and one trace stream; otherwise run a private one.
        let sub = tml_telemetry::global_subscriber()
            .unwrap_or_else(|| Arc::new(Subscriber::builder().build()));
        let state = Arc::new(ServeState {
            opts,
            journal,
            jobs: Mutex::new(table),
            queue,
            breakers,
            buckets,
            sub,
            reqlog,
            draining: AtomicBool::new(false),
            crashed: AtomicBool::new(false),
            completed: AtomicU64::new(0),
            gate: WorkerGate { active: Mutex::new(0), idle: Condvar::new() },
        });
        Ok(Server { state, listener })
    }

    /// The bound address (port resolved when `addr` ended in `:0`).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the accept loop until a drain (signal or admin endpoint)
    /// completes or a soft `kill_after` crash fires.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O errors other than `WouldBlock`.
    pub fn run(&self) -> io::Result<RunOutcome> {
        signal::install_handlers();
        let state = &self.state;
        std::thread::scope(|scope| {
            for _ in 0..state.opts.workers {
                let st = Arc::clone(state);
                st.gate.enter();
                scope.spawn(move || {
                    worker_loop(&st);
                    st.gate.exit();
                });
            }

            let mut drain_started: Option<Instant> = None;
            let outcome = loop {
                if state.crashed.load(Ordering::SeqCst) {
                    // Simulated crash: no drain, no summary; workers were
                    // already cut off by the queue close in the killer.
                    break RunOutcome::Crashed;
                }
                if state.draining.load(Ordering::SeqCst) || signal::drain_requested() {
                    let started = *drain_started.get_or_insert_with(|| {
                        // Drain edge: stop handing out work. In-flight jobs
                        // get up to `drain_ms` to conclude; whatever stays
                        // queued is already journaled as a submission
                        // without an outcome — exactly what a restart
                        // recovers. The server keeps answering requests
                        // (503 for new work) while the drain runs.
                        state.draining.store(true, Ordering::SeqCst);
                        state.queue.close();
                        Instant::now()
                    });
                    let elapsed = started.elapsed();
                    let lingered = elapsed >= Duration::from_millis(state.opts.drain_linger_ms);
                    if lingered && state.gate.idle_now() {
                        state.sub.record_counter("serve.drain.clean", 1);
                        break RunOutcome::Drained;
                    }
                    if lingered && elapsed >= Duration::from_millis(state.opts.drain_ms) {
                        state.sub.record_counter("serve.drain.timeout", 1);
                        break RunOutcome::Drained;
                    }
                }
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        let st = Arc::clone(state);
                        scope.spawn(move || handle_connection(&st, stream));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        state.queue.close();
                        return Err(e);
                    }
                }
            };
            Ok(outcome)
        })
    }
}

// ---------------------------------------------------------------------
// Workers.

fn worker_loop(state: &ServeState) {
    while let Some(qjob) = state.queue.take() {
        if state.crashed.load(Ordering::SeqCst) {
            return;
        }
        set_phase(state, qjob.job, JobPhase::Running);
        let outcome = {
            // Bind the worker to the submission's trace id before any span
            // opens. After a crash the recovered job re-installs the same
            // id (it is journaled in the submit record), so spans from the
            // original and the resumed process group under one trace.
            let _trace = tml_telemetry::with_trace(TraceContext::new(qjob.trace));
            let _span = tml_telemetry::span!("serve.job", job = qjob.job);
            run_job(state, &qjob)
        };
        let journaled = state.journal.outcome(&outcome);
        set_phase(state, qjob.job, JobPhase::Done(outcome));
        state.sub.record_counter("serve.jobs.completed", 1);
        if journaled.is_err() {
            // The journal is gone; completed state is in memory only.
            // Stop admitting and drain — continuing would hand out
            // acceptances that cannot survive a crash.
            state.sub.record_counter("serve.journal.errors", 1);
            state.draining.store(true, Ordering::SeqCst);
            return;
        }
        let done = state.completed.fetch_add(1, Ordering::SeqCst) + 1;
        if state.opts.kill_after == Some(done) {
            if state.opts.hard_kill {
                // Simulated `kill -9`: no unwinding, no drain; the journal
                // ends wherever the last flush put it.
                std::process::exit(137);
            }
            state.crashed.store(true, Ordering::SeqCst);
            state.queue.close();
            return;
        }
    }
}

fn set_phase(state: &ServeState, job: u64, phase: JobPhase) {
    let mut table = state.jobs.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(rec) = table.records.get_mut(&job) {
        rec.phase = phase;
    }
}

fn run_job(state: &ServeState, qjob: &QueuedJob) -> JobOutcome {
    match &qjob.kind {
        SubmitKind::Corpus { index } => {
            let ctx = JobContext {
                corpus_seed: state.opts.corpus_seed,
                retry: state.opts.retry,
                chaos: state.opts.chaos.as_ref(),
                budget: qjob.budget.map(BudgetSpec::to_budget),
                started: Instant::now(),
                deadline: None,
                breakers: &state.breakers,
            };
            run_corpus_job(
                &state.journal,
                &ctx,
                qjob.job,
                *index,
                qjob.first_attempt,
                qjob.warm.clone(),
                qjob.prior_failure.clone(),
            )
            .unwrap_or_else(|e| journal_failure_outcome(qjob.job, &e))
        }
        SubmitKind::Verify { model, property } => {
            run_verify(state, qjob.job, model, property, qjob.budget)
        }
    }
}

fn journal_failure_outcome(job: u64, e: &io::Error) -> JobOutcome {
    JobOutcome {
        job,
        attempts: 1,
        status: JobStatus::Failed,
        detail: format!("journal write failed: {e}"),
        fingerprint: None,
        evaluations: 0,
    }
}

/// Runs one verify-only job: parse, check, classify. Single attempt (the
/// check is deterministic; retrying cannot change it), isolated exactly
/// like a batch attempt, never chaos-injected.
fn run_verify(
    state: &ServeState,
    job: u64,
    model: &str,
    property: &str,
    budget: Option<BudgetSpec>,
) -> JobOutcome {
    if let Err(e) = state.journal.attempt(job, 1) {
        return journal_failure_outcome(job, &e);
    }
    let verdict = isolate(|| -> Result<(bool, Option<u64>), String> {
        let parsed = parse_model(model).map_err(|e| e.to_string())?;
        let formula = parse_formula(property).map_err(|e| e.to_string())?;
        let mut checker = Checker::new();
        if let Some(spec) = budget {
            checker = checker.with_budget(spec.to_budget());
        }
        match parsed {
            ModelFile::Dtmc(m) => {
                let result = checker.check_dtmc(&m, &formula).map_err(|e| e.to_string())?;
                Ok((result.holds(), Some(fingerprint_dtmc(&m))))
            }
            ModelFile::Mdp(m) => {
                let result = checker.check_mdp(&m, &formula).map_err(|e| e.to_string())?;
                Ok((result.holds(), None))
            }
            ModelFile::IntervalDtmc(m) => {
                let result =
                    checker.check_interval_dtmc(&m, &formula).map_err(|e| e.to_string())?;
                Ok((result.holds(), None))
            }
            ModelFile::IntervalMdp(m) => {
                let result = checker.check_interval_mdp(&m, &formula).map_err(|e| e.to_string())?;
                Ok((result.holds(), None))
            }
        }
    });
    let failure = |kind: FailureKind, detail: String| {
        let f = AttemptFailure { job, attempt: 1, kind, detail };
        if let Err(e) = state.journal.failure(&f) {
            return journal_failure_outcome(job, &e);
        }
        JobOutcome {
            job,
            attempts: 1,
            status: JobStatus::Failed,
            detail: format!("{}: {}", f.kind.name(), f.detail),
            fingerprint: None,
            evaluations: 0,
        }
    };
    match verdict {
        Err(panic_detail) => failure(FailureKind::Panic, panic_detail),
        Ok(Err(detail)) => failure(FailureKind::Error, detail),
        Ok(Ok((holds, fingerprint))) => JobOutcome {
            job,
            attempts: 1,
            status: if holds { JobStatus::Satisfied } else { JobStatus::Violated },
            detail: if holds {
                "property holds in the initial state".into()
            } else {
                "property violated in the initial state".into()
            },
            fingerprint,
            evaluations: 0,
        },
    }
}

// ---------------------------------------------------------------------
// Connections and routing.

fn handle_connection(state: &ServeState, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let (response, method, path) = match read_request(&mut reader) {
        Ok(req) => {
            let response = route(state, &req);
            (response, req.method, req.path)
        }
        Err(HttpError::Malformed(m)) => {
            (Response::json(400, error_body(&m)), String::from("-"), String::from("-"))
        }
        Err(_) => return, // closed / stream error: nothing to answer
    };
    state.sub.record_counter_labeled(
        "serve.http.requests",
        &[("method", &method), ("status", &response.status.to_string())],
        1,
    );
    log_request(state, &method, &path, &response);
    let _ = write_response(&mut writer, &response);
}

fn log_request(state: &ServeState, method: &str, path: &str, response: &Response) {
    if let Some(log) = &state.reqlog {
        let seq = log.seq.fetch_add(1, Ordering::SeqCst);
        let mut line = LineBuilder::record("request")
            .u64("seq", seq)
            .str("method", method)
            .str("path", path)
            .u64("status", u64::from(response.status));
        if let Some(trace) = &response.trace {
            line = line.str("trace", trace);
        }
        let _ = log.writer.line(&line.finish());
    }
}

fn route(state: &ServeState, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/jobs") => submit(state, req),
        ("GET", "/v1/report") => report(state),
        ("GET", "/healthz") => healthz(state),
        ("GET", "/readyz") => readyz(state),
        ("GET", "/metrics") => metrics(state),
        ("POST", "/admin/drain") => {
            state.draining.store(true, Ordering::SeqCst);
            let mut out = String::new();
            obj_start(&mut out);
            obj_field_str(&mut out, "status", "draining");
            Response::json(200, obj_end(out))
        }
        ("GET", p) if p.starts_with("/v1/jobs/") => poll(state, &p["/v1/jobs/".len()..]),
        (_, "/v1/jobs" | "/v1/report" | "/healthz" | "/readyz" | "/metrics" | "/admin/drain") => {
            Response::json(405, error_body("method not allowed"))
        }
        _ => Response::json(404, error_body("not found")),
    }
}

// ---------------------------------------------------------------------
// Admission.

/// A validated submission, pre-admission.
enum Validated {
    Corpus { index: u64 },
    Verify { model: String, property: String },
}

fn validate(body: &[u8]) -> Result<(Validated, Option<BudgetSpec>, Option<String>), String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let value = json::parse(text).map_err(|e| format!("body is not JSON: {e}"))?;
    let obj = value.as_object().ok_or("body is not a JSON object")?;
    for key in obj.keys() {
        match key.as_str() {
            "kind" | "index" | "model" | "property" | "client" | "deadline_ms" | "max_evals" => {}
            other => return Err(format!("unknown field `{other}`")),
        }
    }
    let kind = value.get("kind").and_then(Value::as_str).ok_or("missing `kind`")?;
    let budget = {
        let deadline_ms = match value.get("deadline_ms") {
            None => None,
            Some(v) => Some(v.as_u64().ok_or("`deadline_ms` is not an integer")?),
        };
        let max_evals = match value.get("max_evals") {
            None => None,
            Some(v) => Some(v.as_u64().ok_or("`max_evals` is not an integer")?),
        };
        let spec = BudgetSpec { deadline_ms, max_evals };
        spec.is_some().then_some(spec)
    };
    let client = value.get("client").and_then(Value::as_str).map(str::to_string);
    let validated = match kind {
        "corpus" => {
            let index = value.get("index").and_then(Value::as_u64).ok_or("missing `index`")?;
            if index >= MAX_CORPUS_INDEX {
                return Err(format!("`index` exceeds {MAX_CORPUS_INDEX}"));
            }
            Validated::Corpus { index }
        }
        "verify" => {
            let model_src = value.get("model").and_then(Value::as_str).ok_or("missing `model`")?;
            let property =
                value.get("property").and_then(Value::as_str).ok_or("missing `property`")?;
            let parsed = parse_model(model_src).map_err(|e| format!("model: {e}"))?;
            if parsed.num_states() > MAX_VERIFY_STATES {
                return Err(format!(
                    "model has {} states; the service caps verify jobs at {MAX_VERIFY_STATES}",
                    parsed.num_states()
                ));
            }
            parse_formula(property).map_err(|e| format!("property: {e}"))?;
            Validated::Verify { model: model_src.to_string(), property: property.to_string() }
        }
        other => return Err(format!("unknown kind `{other}`")),
    };
    Ok((validated, budget, client))
}

fn submit(state: &ServeState, req: &Request) -> Response {
    if state.draining.load(Ordering::SeqCst) || signal::drain_requested() {
        return Response::json(503, error_body("draining"));
    }

    // 1. Fail-closed validation: nothing malformed reaches a worker.
    let (validated, budget, body_client) = match validate(&req.body) {
        Ok(v) => v,
        Err(detail) => {
            state.sub.record_counter("serve.jobs.rejected", 1);
            return Response::json(400, error_body(&detail));
        }
    };

    // 2. Graceful degradation: with the last-resort backend open there is
    // nothing healthy to run on — refuse instead of queueing work that
    // can only fail.
    {
        let breakers = state.breakers.lock().unwrap_or_else(|e| e.into_inner());
        if breakers.direct_open() {
            state.sub.record_counter("serve.jobs.degraded_refusals", 1);
            return Response::json(503, error_body("no healthy solver backend of last resort"))
                .with_retry_after(state.opts.breaker_recovery_ms.div_ceil(1000).max(1));
        }
    }

    // 3. Per-client token bucket.
    let client =
        body_client.or_else(|| req.client.clone()).unwrap_or_else(|| "anonymous".to_string());
    if let Some(buckets) = &state.buckets {
        if let Admit::Wait(wait) = buckets.admit(&client) {
            state.sub.record_counter("serve.jobs.throttled", 1);
            return Response::json(429, error_body("client quota exhausted"))
                .with_retry_after(wait.as_secs().max(1));
        }
    }

    // 4-6. Shed check, dedup, journal and enqueue — serialized on the
    // table lock so the depth check cannot race another submitter.
    let mut table = state.jobs.lock().unwrap_or_else(|e| e.into_inner());

    if let Validated::Corpus { index } = &validated {
        if let Some(&job) = table.by_index.get(index) {
            state.sub.record_counter("serve.jobs.deduped", 1);
            let phase = table.records[&job].phase.name().to_string();
            let trace = TraceContext::derive(state.opts.corpus_seed, job);
            let mut out = String::new();
            obj_start(&mut out);
            obj_field_u64(&mut out, "job", job);
            obj_field_str(&mut out, "status", &phase);
            obj_field_bool(&mut out, "deduplicated", true);
            obj_field_str(&mut out, "trace", &trace.hex());
            return Response::json(200, obj_end(out)).with_trace(trace.hex());
        }
    }

    let depth = state.queue.depth();
    if depth >= state.queue.capacity() || state.queue.closed() {
        state.sub.record_counter("serve.jobs.shed", 1);
        let workers = u64::from(state.opts.workers.max(1));
        let retry_after = (depth as u64).div_ceil(workers).max(1);
        return Response::json(429, error_body("queue full")).with_retry_after(retry_after);
    }

    let job = table.next_id;
    let kind = match validated {
        Validated::Corpus { index } => SubmitKind::Corpus { index },
        Validated::Verify { model, property } => SubmitKind::Verify { model, property },
    };
    // Seed-deterministic trace id, journaled with the submission: the
    // id the client reads from X-Trace-Id is the one a post-crash
    // restart recovers, so both processes' spans re-link to one trace.
    let trace = TraceContext::derive(state.opts.corpus_seed, job);

    // Write-ahead: the acceptance is durable before the client sees it.
    let submission = Submission { job, kind: kind.clone(), trace: trace.trace_id };
    if let Err(e) = state.journal.submit(&submission) {
        state.sub.record_counter("serve.journal.errors", 1);
        state.draining.store(true, Ordering::SeqCst);
        return Response::json(500, error_body(&format!("journal write failed: {e}")));
    }

    table.next_id += 1;
    if let SubmitKind::Corpus { index } = kind {
        table.by_index.insert(index, job);
    }
    table.records.insert(job, JobRecord { kind: kind.clone(), phase: JobPhase::Queued });
    let queued = QueuedJob {
        job,
        trace: trace.trace_id,
        kind,
        first_attempt: 1,
        warm: Vec::new(),
        budget,
        prior_failure: None,
    };
    let depth = match state.queue.push(queued) {
        Ok(depth) => depth as u64,
        // Closed in the instant between the check and the push (a drain
        // raced us): the job is journaled, so it is accepted — it will
        // run on the next start.
        Err(shed) => shed.depth as u64,
    };
    drop(table);

    state.sub.record_counter("serve.jobs.accepted", 1);
    let mut out = String::new();
    obj_start(&mut out);
    obj_field_u64(&mut out, "job", job);
    obj_field_str(&mut out, "status", "queued");
    obj_field_u64(&mut out, "queue_depth", depth);
    obj_field_str(&mut out, "trace", &trace.hex());
    Response::json(202, obj_end(out)).with_trace(trace.hex())
}

// ---------------------------------------------------------------------
// Read-side handlers.

fn poll(state: &ServeState, id: &str) -> Response {
    let Ok(job) = id.parse::<u64>() else {
        return Response::json(400, error_body("job id is not an integer"));
    };
    let table = state.jobs.lock().unwrap_or_else(|e| e.into_inner());
    let Some(record) = table.records.get(&job) else {
        return Response::json(404, error_body("no such job"));
    };
    let mut out = String::new();
    obj_start(&mut out);
    obj_field_u64(&mut out, "job", job);
    obj_field_str(&mut out, "kind", record.kind.name());
    obj_field_str(&mut out, "status", record.phase.name());
    if let JobPhase::Done(o) = &record.phase {
        obj_field_u64(&mut out, "attempts", u64::from(o.attempts));
        obj_field_str(&mut out, "detail", &o.detail);
        match o.fingerprint {
            Some(fp) => obj_field_str(&mut out, "fingerprint", &format!("{fp:016x}")),
            None => {
                obj_key(&mut out, "fingerprint");
                out.push_str("null");
            }
        }
        obj_field_u64(&mut out, "evaluations", o.evaluations);
    }
    Response::json(200, obj_end(out))
}

fn report(state: &ServeState) -> Response {
    let table = state.jobs.lock().unwrap_or_else(|e| e.into_inner());
    let pending = table.count(|p| !matches!(p, JobPhase::Done(_)));
    if pending > 0 {
        return Response::json(
            409,
            error_body(&format!("{pending} jobs still pending; poll until all conclude")),
        );
    }
    let outcomes: Vec<JobOutcome> = table
        .records
        .values()
        .filter_map(|r| match &r.phase {
            JobPhase::Done(o) => Some(o.clone()),
            _ => None,
        })
        .collect();
    let config = state.opts.config(outcomes.len() as u64);
    Response::text(200, render_report(&config, &outcomes))
}

fn healthz(state: &ServeState) -> Response {
    let mut out = String::new();
    obj_start(&mut out);
    obj_field_str(&mut out, "status", "ok");
    obj_field_bool(&mut out, "draining", state.draining.load(Ordering::SeqCst));
    Response::json(200, obj_end(out))
}

fn readyz(state: &ServeState) -> Response {
    let snapshot = state.breakers.lock().unwrap_or_else(|e| e.into_inner()).snapshot();
    let draining = state.draining.load(Ordering::SeqCst) || signal::drain_requested();
    let depth = state.queue.depth();
    let full = depth >= state.queue.capacity();
    let ready = !draining && !full && !snapshot.any_open();
    let mut out = String::new();
    obj_start(&mut out);
    obj_field_bool(&mut out, "ready", ready);
    obj_field_bool(&mut out, "draining", draining);
    obj_field_u64(&mut out, "queue_depth", depth as u64);
    obj_field_u64(&mut out, "queue_capacity", state.queue.capacity() as u64);
    obj_key(&mut out, "breakers");
    out.push('{');
    for (i, (name, b)) in snapshot.named().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::write_string(&mut out, name);
        out.push(':');
        json::write_string(&mut out, b.state.name());
    }
    out.push('}');
    Response::json(if ready { 200 } else { 503 }, obj_end(out))
}

fn metrics(state: &ServeState) -> Response {
    // Scrapes must never take the server down: a panic anywhere in the
    // snapshot/render path answers 500, not a dead connection thread.
    let rendered = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        {
            let table = state.jobs.lock().unwrap_or_else(|e| e.into_inner());
            // Point-in-time gauges from the job table, so the
            // accepted == queued + running + done identity is scrapeable.
            state
                .sub
                .set_gauge("serve.jobs.queued", table.count(|p| matches!(p, JobPhase::Queued)));
            state
                .sub
                .set_gauge("serve.jobs.running", table.count(|p| matches!(p, JobPhase::Running)));
            state.sub.set_gauge("serve.jobs.done", table.count(|p| matches!(p, JobPhase::Done(_))));
        }
        render_prometheus(&state.sub.metrics_snapshot())
    }));
    match rendered {
        Ok(body) => Response::with_content_type(200, PROMETHEUS_CONTENT_TYPE, body),
        Err(_) => Response::text(500, "metrics rendering failed\n".into()),
    }
}
