//! The bounded job queue between admission and the worker pool.
//!
//! Admission pushes without blocking — a full queue is an explicit
//! [`Shed`], which the handler turns into `429 Retry-After`, never a
//! hang. Workers block on [`take`](JobQueue::take) until a job or a
//! close arrives. [`close`](JobQueue::close) is the drain edge: takers
//! wake and get `None` even if jobs remain queued (those jobs are
//! journaled as submissions without outcomes, which is exactly the state
//! a restart recovers).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use tml_core::pipeline::PipelineStage;
use tml_core::Budget;
use tml_runtime::SubmitKind;

/// A per-request budget, stored as the client specified it and anchored
/// to a wall-clock deadline only when the job actually starts (a job that
/// waited in the queue still gets its full deadline).
///
/// Budgets are admission-time conveniences: they are **not** journaled,
/// so a job recovered after a crash re-runs unlimited. The byte-identity
/// contract therefore applies to budget-free submissions — a budget that
/// fires makes the outcome depend on wall-clock scheduling, which no
/// journal can replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BudgetSpec {
    /// Wall-clock deadline, milliseconds from job start.
    pub deadline_ms: Option<u64>,
    /// Cap on optimizer/checker evaluations.
    pub max_evals: Option<u64>,
}

impl BudgetSpec {
    /// Whether any limit is set.
    pub fn is_some(&self) -> bool {
        self.deadline_ms.is_some() || self.max_evals.is_some()
    }

    /// Builds the [`Budget`], anchoring the deadline at the current
    /// instant (call when the job starts, not at admission).
    pub fn to_budget(self) -> Budget {
        let mut b = Budget::unlimited();
        if let Some(ms) = self.deadline_ms {
            b = b.with_deadline(std::time::Duration::from_millis(ms));
        }
        if let Some(n) = self.max_evals {
            b = b.with_max_evaluations(n);
        }
        b
    }
}

/// One admitted job, carrying everything a worker needs to run it.
#[derive(Debug, Clone)]
pub struct QueuedJob {
    /// Server-assigned job id (the journal id).
    pub job: u64,
    /// Trace id from the submission's journal record. Workers install it
    /// before running, so a recovered job's spans group under the same
    /// trace as the original admission across the crash boundary.
    pub trace: u64,
    /// What to run.
    pub kind: SubmitKind,
    /// First attempt number (>1 only for journal-recovered jobs).
    pub first_attempt: u32,
    /// Warm starts recovered from the journal (fold-after-failure rule).
    pub warm: Vec<(PipelineStage, Vec<f64>)>,
    /// Per-request budget, when the submission carried one.
    pub budget: Option<BudgetSpec>,
    /// Last journaled failure (`kind: detail`) for a recovered job whose
    /// permitted attempts are already exhausted — the executor rebuilds
    /// the `Failed` outcome from it instead of running an extra attempt.
    pub prior_failure: Option<String>,
}

/// The queue was full; the job was **not** admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shed {
    /// Queue depth at the time of the shed (== capacity).
    pub depth: usize,
}

struct Inner {
    queue: VecDeque<QueuedJob>,
    closed: bool,
}

/// Bounded MPMC job queue (mutex + condvar; the contention unit is a job
/// submission, not a solve).
pub struct JobQueue {
    capacity: usize,
    inner: Mutex<Inner>,
    takeable: Condvar,
}

impl JobQueue {
    /// A queue admitting at most `capacity` waiting jobs (min 1).
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner { queue: VecDeque::new(), closed: false }),
            takeable: Condvar::new(),
        }
    }

    /// Admission capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently waiting (not running).
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).queue.len()
    }

    /// Whether the queue has been closed for draining.
    pub fn closed(&self) -> bool {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).closed
    }

    /// Enqueues without blocking. Returns the new depth, or [`Shed`] when
    /// the queue is at capacity (or closed — a draining queue admits
    /// nothing).
    ///
    /// # Errors
    ///
    /// [`Shed`] when the job was not admitted.
    pub fn push(&self, job: QueuedJob) -> Result<usize, Shed> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.closed || inner.queue.len() >= self.capacity {
            return Err(Shed { depth: inner.queue.len() });
        }
        inner.queue.push_back(job);
        let depth = inner.queue.len();
        drop(inner);
        self.takeable.notify_one();
        Ok(depth)
    }

    /// Blocks until a job is available (returns it) or the queue closes
    /// (returns `None`, even if jobs remain — they stay journaled).
    pub fn take(&self) -> Option<QueuedJob> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if inner.closed {
                return None;
            }
            if let Some(job) = inner.queue.pop_front() {
                return Some(job);
            }
            inner = self.takeable.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: all current and future [`take`](Self::take)
    /// calls return `None`, all future pushes shed.
    pub fn close(&self) {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.takeable.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn job(id: u64) -> QueuedJob {
        QueuedJob {
            job: id,
            trace: id + 1,
            kind: SubmitKind::Corpus { index: id },
            first_attempt: 1,
            warm: Vec::new(),
            budget: None,
            prior_failure: None,
        }
    }

    #[test]
    fn push_over_capacity_sheds_explicitly() {
        let q = JobQueue::new(2);
        assert_eq!(q.push(job(0)), Ok(1));
        assert_eq!(q.push(job(1)), Ok(2));
        assert_eq!(q.push(job(2)), Err(Shed { depth: 2 }), "N+1 sheds, never hangs");
        assert_eq!(q.depth(), 2, "shed job was not admitted");
        assert_eq!(q.take().unwrap().job, 0, "FIFO");
        assert_eq!(q.push(job(2)), Ok(2), "capacity freed by the take");
    }

    #[test]
    fn close_wakes_blocked_takers_and_preserves_queued_jobs() {
        let q = Arc::new(JobQueue::new(4));
        let taker = {
            let q = q.clone();
            std::thread::spawn(move || q.take())
        };
        // The taker blocks on an empty queue until close() wakes it.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(job(7)).unwrap();
        assert_eq!(taker.join().unwrap().unwrap().job, 7);

        q.push(job(8)).unwrap();
        q.close();
        assert!(q.take().is_none(), "closed queue never hands out jobs");
        assert_eq!(q.depth(), 1, "un-started jobs stay queued (journaled) at drain");
        assert!(q.push(job(9)).is_err(), "draining queue admits nothing");
    }
}
