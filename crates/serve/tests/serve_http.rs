//! End-to-end tests for the repair service over real sockets.
//!
//! Every test binds a server on a loopback ephemeral port, talks to it
//! with a plain `TcpStream` HTTP client, and drains it through
//! `POST /admin/drain` (the per-server drain path, so parallel tests
//! never interfere). The crash/resume test asserts the crate's central
//! contract: a server soft-killed mid-corpus and restarted on its
//! journal renders a final report byte-identical to a control server
//! that never crashed.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tml_runtime::{ChaosSpec, ManualClock};
use tml_serve::server::{RunOutcome, ServeOptions, Server};
use tml_telemetry::json::{self, Value};

// ---------------------------------------------------------------------
// Harness.

fn temp_journal(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("tml-serve-{}-{name}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

struct Running {
    server: Arc<Server>,
    addr: SocketAddr,
    handle: JoinHandle<std::io::Result<RunOutcome>>,
}

fn start(opts: ServeOptions) -> Running {
    let server = Arc::new(Server::bind(opts).expect("bind"));
    let addr = server.addr().expect("addr");
    let handle = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.run())
    };
    Running { server, addr, handle }
}

impl Running {
    /// Drains through the admin endpoint and joins the accept loop.
    fn drain(self) -> RunOutcome {
        let (status, _, _) = http(&self.addr, "POST", "/admin/drain", &[], "");
        assert_eq!(status, 200, "drain endpoint");
        let outcome = self.handle.join().expect("join").expect("run");
        drop(self.server);
        outcome
    }

    /// Joins a server expected to stop on its own (simulated crash).
    fn join(self) -> RunOutcome {
        self.handle.join().expect("join").expect("run")
    }
}

/// One HTTP exchange: returns `(status, headers, body)`.
fn http(
    addr: &SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut req = format!("{method} {path} HTTP/1.1\r\nHost: t\r\n");
    for (name, value) in headers {
        req.push_str(&format!("{name}: {value}\r\n"));
    }
    req.push_str(&format!("Content-Length: {}\r\n\r\n{body}", body.len()));
    stream.write_all(req.as_bytes()).expect("write");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read");
    let text = String::from_utf8(raw).expect("utf8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("head/body split");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {head:?}"));
    (status, head.to_string(), body.to_string())
}

fn submit(addr: &SocketAddr, payload: &str) -> (u16, Value) {
    let (status, _, body) = http(addr, "POST", "/v1/jobs", &[], payload);
    let value = json::parse(&body).unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"));
    (status, value)
}

fn corpus_payload(index: u64) -> String {
    format!("{{\"kind\":\"corpus\",\"index\":{index}}}")
}

fn verify_payload(model: &str, property: &str) -> String {
    let mut out = String::from("{\"kind\":\"verify\",\"model\":");
    json::write_string(&mut out, model);
    out.push_str(",\"property\":");
    json::write_string(&mut out, property);
    out.push('}');
    out
}

/// Polls `/v1/report` until every job concluded; returns the report text.
fn await_report(addr: &SocketAddr) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, _, body) = http(addr, "GET", "/v1/report", &[], "");
        if status == 200 {
            return body;
        }
        assert_eq!(status, 409, "report while pending");
        assert!(Instant::now() < deadline, "jobs did not conclude in 30s");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Reads one sample out of the Prometheus `/metrics` exposition by its
/// exact sample name, e.g. `tml_serve_jobs_accepted_total` (0 when
/// absent). Labeled samples never match a bare name.
fn metric(addr: &SocketAddr, name: &str) -> u64 {
    let (status, head, body) = http(addr, "GET", "/metrics", &[], "");
    assert_eq!(status, 200, "metrics endpoint");
    assert!(
        head.contains("Content-Type: text/plain; version=0.0.4"),
        "exposition content type:\n{head}"
    );
    for line in body.lines() {
        let mut cols = line.split_whitespace();
        if cols.next() == Some(name) {
            return cols.next().and_then(|v| v.parse().ok()).unwrap_or(0);
        }
    }
    0
}

const MODEL_REACHES_GOAL: &str = "dtmc
states 3
initial 0
label \"goal\" = 2
0 -> 1: 0.5, 0: 0.5
1 -> 2: 1.0
2 -> 2: 1.0
";

const MODEL_STUCK: &str = "dtmc
states 2
initial 0
label \"goal\" = 1
0 -> 0: 1.0
1 -> 1: 1.0
";

// ---------------------------------------------------------------------
// Tests.

#[test]
fn submit_poll_report_happy_path() {
    let mut opts = ServeOptions::new(temp_journal("happy"));
    opts.workers = 2;
    let running = start(opts);
    let addr = running.addr;

    for index in 0..3u64 {
        let (status, head, body) = http(&addr, "POST", "/v1/jobs", &[], &corpus_payload(index));
        assert_eq!(status, 202, "corpus submission accepted");
        let value = json::parse(&body).unwrap();
        assert_eq!(value.get("job").and_then(Value::as_u64), Some(index));
        assert_eq!(value.get("status").and_then(Value::as_str), Some("queued"));
        let trace = value.get("trace").and_then(Value::as_str).expect("trace in body");
        assert_eq!(trace.len(), 16, "trace is 16 hex digits: {trace}");
        assert!(
            head.contains(&format!("\r\nX-Trace-Id: {trace}")),
            "X-Trace-Id header matches the body:\n{head}"
        );
    }
    let (status, sat) = submit(&addr, &verify_payload(MODEL_REACHES_GOAL, "P>=0.5 [ F \"goal\" ]"));
    assert_eq!(status, 202);
    let sat_id = sat.get("job").and_then(Value::as_u64).unwrap();
    let (status, vio) = submit(&addr, &verify_payload(MODEL_STUCK, "P>=0.5 [ F \"goal\" ]"));
    assert_eq!(status, 202);
    let vio_id = vio.get("job").and_then(Value::as_u64).unwrap();

    let report = await_report(&addr);
    assert!(report.contains("satisfied"), "report lists verify verdicts:\n{report}");

    let (status, _, body) = http(&addr, "GET", &format!("/v1/jobs/{sat_id}"), &[], "");
    assert_eq!(status, 200);
    let poll = json::parse(&body).unwrap();
    assert_eq!(poll.get("status").and_then(Value::as_str), Some("satisfied"));
    assert_eq!(poll.get("kind").and_then(Value::as_str), Some("verify"));
    assert!(
        poll.get("fingerprint").and_then(Value::as_str).is_some(),
        "dtmc verify jobs report a model fingerprint: {body}"
    );

    let (_, _, body) = http(&addr, "GET", &format!("/v1/jobs/{vio_id}"), &[], "");
    let poll = json::parse(&body).unwrap();
    assert_eq!(poll.get("status").and_then(Value::as_str), Some("violated"));

    // Idempotent corpus resubmission: same index, same job id, no new work.
    let (status, dup) = submit(&addr, &corpus_payload(1));
    assert_eq!(status, 200, "duplicate is acknowledged, not re-queued");
    assert_eq!(dup.get("job").and_then(Value::as_u64), Some(1));
    assert_eq!(dup.get("deduplicated"), Some(&Value::Bool(true)));
    assert!(
        dup.get("trace").and_then(Value::as_str).is_some(),
        "dedup answers with the existing job's trace"
    );

    assert_eq!(metric(&addr, "tml_serve_jobs_accepted_total"), 5);
    assert_eq!(metric(&addr, "tml_serve_jobs_completed_total"), 5);
    assert_eq!(metric(&addr, "tml_serve_jobs_deduped_total"), 1);
    assert_eq!(running.drain(), RunOutcome::Drained);
}

#[test]
fn malformed_submissions_fail_closed() {
    let mut opts = ServeOptions::new(temp_journal("failclosed"));
    opts.workers = 0;
    let running = start(opts);
    let addr = running.addr;

    for (payload, why) in [
        ("not json", "non-JSON body"),
        ("[1,2]", "non-object body"),
        ("{\"kind\":\"corpus\"}", "missing index"),
        ("{\"kind\":\"nonsense\",\"index\":1}", "unknown kind"),
        ("{\"kind\":\"corpus\",\"index\":1,\"extra\":true}", "unknown field"),
        ("{\"kind\":\"corpus\",\"index\":99999999999}", "index past the cap"),
        ("{\"kind\":\"verify\",\"model\":\"dtmc\\nstates nope\",\"property\":\"x\"}", "bad model"),
        ("{\"kind\":\"corpus\",\"index\":1,\"deadline_ms\":\"soon\"}", "non-integer budget"),
    ] {
        let (status, value) = submit(&addr, payload);
        assert_eq!(status, 400, "{why} must be rejected at admission");
        assert!(value.get("error").is_some(), "{why} carries an error body");
    }
    // A parseable model with an unparseable property is rejected too.
    let (status, _) = submit(&addr, &verify_payload(MODEL_STUCK, "eventually goal, please"));
    assert_eq!(status, 400, "bad property");

    // Routing fails closed as well.
    let (status, _, _) = http(&addr, "GET", "/v1/nope", &[], "");
    assert_eq!(status, 404);
    let (status, _, _) = http(&addr, "DELETE", "/v1/jobs", &[], "");
    assert_eq!(status, 405);
    let (status, _, _) = http(&addr, "GET", "/v1/jobs/abc", &[], "");
    assert_eq!(status, 400);
    let (status, _, _) = http(&addr, "GET", "/v1/jobs/7", &[], "");
    assert_eq!(status, 404);

    assert_eq!(metric(&addr, "tml_serve_jobs_rejected_total"), 9, "every rejection counted");
    assert_eq!(metric(&addr, "tml_serve_jobs_accepted_total"), 0, "nothing malformed was admitted");
    assert_eq!(running.drain(), RunOutcome::Drained);
}

#[test]
fn overload_sheds_explicitly_with_retry_after() {
    let mut opts = ServeOptions::new(temp_journal("overload"));
    opts.workers = 0; // nothing drains the queue: deterministic overload
    opts.queue_depth = 2;
    let running = start(opts);
    let addr = running.addr;

    assert_eq!(submit(&addr, &corpus_payload(0)).0, 202);
    assert_eq!(submit(&addr, &corpus_payload(1)).0, 202);
    let (status, head, body) = http(&addr, "POST", "/v1/jobs", &[], &corpus_payload(2));
    assert_eq!(status, 429, "job N+1 sheds: {body}");
    assert!(head.contains("\r\nRetry-After: "), "shed carries Retry-After:\n{head}");

    // A full queue is not ready, but it is healthy.
    let (status, _, body) = http(&addr, "GET", "/readyz", &[], "");
    assert_eq!(status, 503, "full queue is not ready: {body}");
    assert!(body.contains("\"queue_depth\":2"));
    let (status, _, _) = http(&addr, "GET", "/healthz", &[], "");
    assert_eq!(status, 200);

    // Counter identity: accepted == completed + queued + running.
    assert_eq!(metric(&addr, "tml_serve_jobs_accepted_total"), 2);
    assert_eq!(metric(&addr, "tml_serve_jobs_shed_total"), 1);
    assert_eq!(metric(&addr, "tml_serve_jobs_completed_total"), 0);
    assert_eq!(metric(&addr, "tml_serve_jobs_queued"), 2, "queued is a gauge");
    assert_eq!(metric(&addr, "tml_serve_jobs_running"), 0, "running is a gauge");

    assert_eq!(running.drain(), RunOutcome::Drained);
}

#[test]
fn drain_preserves_queued_jobs_for_restart() {
    let journal = temp_journal("drainrecover");

    // Accept two jobs on a server that can never run them, then drain:
    // the jobs must survive as journaled submissions.
    let mut opts = ServeOptions::new(&journal);
    opts.workers = 0;
    let running = start(opts);
    let addr = running.addr;
    assert_eq!(submit(&addr, &corpus_payload(0)).0, 202);
    assert_eq!(submit(&addr, &corpus_payload(1)).0, 202);
    assert_eq!(running.drain(), RunOutcome::Drained);

    // Restart on the same journal with real workers: the jobs run to
    // completion without being resubmitted.
    let mut opts = ServeOptions::new(&journal);
    opts.workers = 2;
    let running = start(opts);
    let resumed = await_report(&running.addr);
    assert_eq!(running.drain(), RunOutcome::Drained);

    // Control: a fresh server that was never drained, same submissions.
    let mut opts = ServeOptions::new(temp_journal("draincontrol"));
    opts.workers = 2;
    let control = start(opts);
    assert_eq!(submit(&control.addr, &corpus_payload(0)).0, 202);
    assert_eq!(submit(&control.addr, &corpus_payload(1)).0, 202);
    let uninterrupted = await_report(&control.addr);
    assert_eq!(control.drain(), RunOutcome::Drained);

    assert_eq!(resumed, uninterrupted, "drained-and-resumed report is byte-identical");
}

#[test]
fn crash_resume_report_is_byte_identical_to_control() {
    let chaos = Some(ChaosSpec::parse("panic=0.25,nan=0.25,seed=5").unwrap());
    let jobs = 5u64;

    // Run the 5-job corpus on a server that crashes (soft kill) after its
    // second journaled outcome, then finish it on a restarted server.
    let journal = temp_journal("crash");
    let mut opts = ServeOptions::new(&journal);
    opts.workers = 0;
    opts.chaos = chaos;
    let running = start(opts);
    for index in 0..jobs {
        assert_eq!(submit(&running.addr, &corpus_payload(index)).0, 202);
    }
    assert_eq!(running.drain(), RunOutcome::Drained);

    let mut opts = ServeOptions::new(&journal);
    opts.workers = 1;
    opts.chaos = chaos;
    opts.kill_after = Some(2);
    let crashing = start(opts);
    assert_eq!(crashing.join(), RunOutcome::Crashed, "kill_after stops the server");

    let mut opts = ServeOptions::new(&journal);
    opts.workers = 1;
    opts.chaos = chaos;
    let resumed_server = start(opts);
    let resumed = await_report(&resumed_server.addr);
    assert_eq!(resumed_server.drain(), RunOutcome::Drained);

    // Control: same corpus, same chaos plan, no crash.
    let control_journal = temp_journal("crashcontrol");
    let mut opts = ServeOptions::new(&control_journal);
    opts.workers = 0;
    opts.chaos = chaos;
    let staging = start(opts);
    for index in 0..jobs {
        assert_eq!(submit(&staging.addr, &corpus_payload(index)).0, 202);
    }
    assert_eq!(staging.drain(), RunOutcome::Drained);
    let mut opts = ServeOptions::new(&control_journal);
    opts.workers = 1;
    opts.chaos = chaos;
    let control = start(opts);
    let uninterrupted = await_report(&control.addr);
    assert_eq!(control.drain(), RunOutcome::Drained);

    assert_eq!(resumed, uninterrupted, "crash + resume converges byte-identically");
    assert!(resumed.contains("jobs"), "report is the standard rendering:\n{resumed}");
}

#[test]
fn token_bucket_throttles_per_client() {
    let clock = ManualClock::new();
    let mut opts = ServeOptions::new(temp_journal("bucket"));
    opts.workers = 0;
    opts.bucket = Some((1, 0.0)); // one job per client, no refill
    opts.clock = Arc::new(clock);
    let running = start(opts);
    let addr = running.addr;

    let alice = [("X-TML-Client", "alice")];
    let (status, _, _) = http(&addr, "POST", "/v1/jobs", &alice, &corpus_payload(0));
    assert_eq!(status, 202, "alice's first job is admitted");
    let (status, head, _) = http(&addr, "POST", "/v1/jobs", &alice, &corpus_payload(1));
    assert_eq!(status, 429, "alice's quota is spent");
    assert!(head.contains("\r\nRetry-After: "), "throttle names a wait:\n{head}");
    let bob = [("X-TML-Client", "bob")];
    let (status, _, _) = http(&addr, "POST", "/v1/jobs", &bob, &corpus_payload(1));
    assert_eq!(status, 202, "bob's bucket is independent");

    assert_eq!(metric(&addr, "tml_serve_jobs_throttled_total"), 1);
    assert_eq!(metric(&addr, "tml_serve_jobs_accepted_total"), 2);
    assert_eq!(running.drain(), RunOutcome::Drained);
}

#[test]
fn health_surfaces_track_drain_state() {
    let mut opts = ServeOptions::new(temp_journal("health"));
    opts.workers = 0;
    // Keep the socket answering for a while after the drain begins, so
    // the post-drain probes below are deterministic.
    opts.drain_linger_ms = 3000;
    let running = start(opts);
    let addr = running.addr;

    let (status, _, body) = http(&addr, "GET", "/healthz", &[], "");
    assert_eq!(status, 200);
    assert!(body.contains("\"draining\":false"));
    let (status, _, body) = http(&addr, "GET", "/readyz", &[], "");
    assert_eq!(status, 200, "idle server is ready: {body}");
    assert!(body.contains("\"gauss_seidel\":\"closed\""), "breaker states surface: {body}");

    // Draining flips readiness off while health stays up, and new
    // submissions are refused outright.
    let (status, _, _) = http(&addr, "POST", "/admin/drain", &[], "");
    assert_eq!(status, 200);
    let (status, _, body) = http(&addr, "GET", "/readyz", &[], "");
    assert_eq!(status, 503, "draining server is not ready: {body}");
    let (status, _, _) = http(&addr, "POST", "/v1/jobs", &[], &corpus_payload(0));
    assert_eq!(status, 503, "draining server refuses new work");

    assert_eq!(running.handle.join().expect("join").expect("run"), RunOutcome::Drained);
}
