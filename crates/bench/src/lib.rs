//! Shared helpers for the experiment binaries and benchmarks that
//! regenerate the paper's evaluation (see `EXPERIMENTS.md` at the workspace
//! root for the experiment index).

/// Prints a fixed-width table: a header row followed by data rows.
///
/// Column widths are derived from the widest cell per column.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::from("|");
        for (i, c) in cells.iter().enumerate().take(cols) {
            out.push_str(&format!(" {:<w$} |", c, w = widths[i]));
        }
        println!("{out}");
    };
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&sep);
    for row in rows {
        line(row);
    }
}

/// Formats a float with 4 decimals, or `inf`.
pub fn fmt(v: f64) -> String {
    if v.is_infinite() {
        "inf".to_string()
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_handles_infinity() {
        assert_eq!(fmt(f64::INFINITY), "inf");
        assert_eq!(fmt(1.25), "1.2500");
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table(&["a", "b"], &[vec!["1".into(), "22".into()]]);
    }
}
