//! E8: scaling study — checking / parametric elimination / repair cost as
//! the WSN grid grows (the paper's future-work concern about "more scalable
//! repair algorithms").
//!
//! Run with `cargo run --release -p tml-bench --bin exp_scaling`.

use std::time::Instant;

use tml_bench::{fmt, print_table};
use tml_checker::Checker;
use tml_core::ModelRepair;
use tml_logic::parse_query;
use tml_wsn::{attempts_property, build_dtmc, repair_template, WsnConfig};

fn main() {
    let checker = Checker::new();
    let attempts_query = parse_query("R{\"attempts\"}=? [ F \"delivered\" ]").expect("query");

    let mut rows = Vec::new();
    for n in [3, 4, 5, 6] {
        let config = WsnConfig { n, ..Default::default() };
        let chain = build_dtmc(&config).expect("valid config");
        let template = repair_template(&config).expect("valid template");

        let t0 = Instant::now();
        let attempts = checker.query_dtmc(&chain, &attempts_query).expect("query")[config.source()];
        let check_time = t0.elapsed();

        let t1 = Instant::now();
        let pdtmc = template.apply(&chain).expect("apply");
        let target = pdtmc.labeling().mask("delivered");
        let symbolic = pdtmc.expected_reward("attempts", &target).expect("symbolic");
        let elim_time = t1.elapsed();
        let complexity = symbolic[config.source()].complexity();

        // Repair against a bound at 85% of the base attempts (always
        // feasible with the small-perturbation template).
        let bound = attempts * 0.85;
        let t2 = Instant::now();
        let outcome = ModelRepair::new()
            .repair_dtmc(&chain, &attempts_property(bound), &template)
            .expect("repair");
        let repair_time = t2.elapsed();

        rows.push(vec![
            format!("{n}x{n}"),
            format!("{}", chain.num_states()),
            fmt(attempts),
            format!("{:.2?}", check_time),
            format!("{:.2?}", elim_time),
            format!("{complexity}"),
            format!("{:?}", outcome.status),
            format!("{:.2?}", repair_time),
        ]);
    }
    print_table(
        &[
            "grid",
            "states",
            "E[attempts]",
            "check time",
            "symbolic elimination",
            "rational fn degree",
            "repair status",
            "repair time",
        ],
        &rows,
    );
}
