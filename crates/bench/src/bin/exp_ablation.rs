//! Ablations over the workspace's design choices:
//!
//! 1. **Constraint back-end** — symbolic rational function vs.
//!    instantiate-and-check oracle for Model Repair (same outcome, very
//!    different evaluation cost profile).
//! 2. **Linear solver** — direct Gaussian elimination vs. Gauss–Seidel for
//!    DTMC reachability rewards as the model grows.
//! 3. **MDP solver** — value iteration vs. Howard's policy iteration for
//!    the car case study's planning subproblem.
//!
//! Run with `cargo run --release -p tml-bench --bin exp_ablation`.

use std::time::Instant;

use tml_bench::{fmt, print_table};
use tml_checker::{CheckOptions, Checker, LinearSolver};
use tml_irl::{policy_iteration, value_iteration, ViOptions};
use tml_logic::parse_query;
use tml_wsn::{build_dtmc, repair_template, WsnConfig};

fn main() {
    backend_ablation();
    solver_ablation();
    planner_ablation();
}

/// Symbolic vs. oracle constraint evaluation cost: what the optimizer pays
/// per step on each back-end, on grids below and above the symbolic degree
/// threshold.
fn backend_ablation() {
    println!("— constraint back-end ablation (cost per optimizer evaluation) —");
    let q = parse_query("R{\"attempts\"}=? [ F \"delivered\" ]").expect("query");
    let mut rows = Vec::new();
    for n in [2, 3] {
        let config = WsnConfig { n, ..Default::default() };
        let chain = build_dtmc(&config).expect("valid config");
        let template = repair_template(&config).expect("valid template");
        let pdtmc = template.apply(&chain).expect("apply");
        let target = pdtmc.labeling().mask("delivered");
        let symbolic = pdtmc.expected_reward("attempts", &target).expect("symbolic");
        let f = &symbolic[config.source()];
        let point = [0.05, 0.04];

        let reps = 2000;
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(f.eval(&point).expect("eval"));
        }
        let t_symbolic = t0.elapsed() / reps;

        let checker = Checker::new();
        let t1 = Instant::now();
        for _ in 0..200 {
            let inst = pdtmc.instantiate(&point).expect("instantiate");
            std::hint::black_box(checker.query_dtmc(&inst, &q).expect("query")[config.source()]);
        }
        let t_oracle = t1.elapsed() / 200;

        rows.push(vec![
            format!("{n}x{n}"),
            format!("{}", f.complexity()),
            format!("{t_symbolic:.2?}"),
            format!("{t_oracle:.2?}"),
            if f.complexity() <= 16 {
                "symbolic (exact)".into()
            } else {
                "oracle (f64-fragile symbolic)".into()
            },
        ]);
    }
    print_table(
        &["grid", "rational degree", "symbolic eval", "oracle eval", "repair default"],
        &rows,
    );
    println!();
}

/// Direct vs. Gauss–Seidel reward solving as the chain grows.
fn solver_ablation() {
    println!("— linear solver ablation (reachability reward) —");
    let q = parse_query("R{\"attempts\"}=? [ F \"delivered\" ]").expect("query");
    let mut rows = Vec::new();
    for n in [5, 10, 20, 40] {
        let config = WsnConfig { n, ..Default::default() };
        let chain = build_dtmc(&config).expect("valid config");
        let mut times = Vec::new();
        let mut values = Vec::new();
        for solver in [LinearSolver::Direct, LinearSolver::GaussSeidel] {
            let checker = Checker::with_options(CheckOptions { solver, ..Default::default() });
            let t = Instant::now();
            let v = checker.query_dtmc(&chain, &q).expect("query")[config.source()];
            times.push(t.elapsed());
            values.push(v);
        }
        assert!((values[0] - values[1]).abs() < 1e-5 * values[0], "solvers disagree");
        rows.push(vec![
            format!("{n}x{n} ({} states)", chain.num_states()),
            format!("{:.2?}", times[0]),
            format!("{:.2?}", times[1]),
            fmt(values[0]),
        ]);
    }
    print_table(&["model", "direct", "gauss-seidel", "E[attempts]"], &rows);
    println!();
}

/// Value iteration vs. policy iteration on the car planning problem.
fn planner_ablation() {
    println!("— planner ablation (car MDP, learned reward) —");
    let mdp = tml_car::build_mdp().expect("fixed topology");
    let features = tml_car::features().expect("fixed topology");
    let theta = vec![-0.775, -0.530, 2.015];
    let rewards = features.rewards(&theta);
    let opts = ViOptions { gamma: tml_car::GAMMA, ..Default::default() };

    let t0 = Instant::now();
    let vi = value_iteration(&mdp, &rewards, opts).expect("vi");
    let t_vi = t0.elapsed();
    let t1 = Instant::now();
    let pi = policy_iteration(&mdp, &rewards, opts).expect("pi");
    let t_pi = t1.elapsed();
    assert_eq!(vi.policy, pi.policy, "planners disagree");

    print_table(
        &["planner", "iterations", "wall time", "V(S0)"],
        &[
            vec![
                "value iteration".into(),
                format!("{}", vi.iterations),
                format!("{t_vi:.2?}"),
                fmt(vi.values[0]),
            ],
            vec![
                "policy iteration".into(),
                format!("{}", pi.iterations),
                format!("{t_pi:.2?}"),
                fmt(pi.values[0]),
            ],
        ],
    );
}
