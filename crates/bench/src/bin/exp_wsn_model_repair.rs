//! E1–E3 (paper §V-A.1): Model Repair on the WSN query-routing model.
//!
//! Reproduces the three regimes of `R{"attempts"} <= X [ F "delivered" ]`:
//!
//! * `X = 100` — the learned model satisfies the property outright;
//! * `X = 40`  — repair finds small corrections `(p, q)` to the ignore
//!   probabilities of field/station vs. interior nodes;
//! * `X = 19`  — no admissible small perturbation suffices (infeasible).
//!
//! Run with `cargo run --release -p tml-bench --bin exp_wsn_model_repair`.

use tml_bench::{fmt, print_table};
use tml_checker::Checker;
use tml_core::{ModelRepair, RepairStatus};
use tml_logic::parse_query;
use tml_wsn::{attempts_property, build_dtmc, build_mdp, repair_template, WsnConfig};

fn main() {
    let config = WsnConfig::default();
    let chain = build_dtmc(&config).expect("valid config");
    let template = repair_template(&config).expect("valid template");
    let checker = Checker::new();

    let attempts_query = parse_query("R{\"attempts\"}=? [ F \"delivered\" ]").expect("query");
    let base_attempts =
        checker.query_dtmc(&chain, &attempts_query).expect("query")[config.source()];
    println!("WSN query routing, {0}x{0} grid (paper §V-A.1)", config.n);
    println!(
        "ignore probabilities: edge rows {:.2}, interior {:.2}",
        config.ignore_edge, config.ignore_interior
    );
    println!("expected attempts of the unrepaired model: {base_attempts:.2}\n");

    let mut rows = Vec::new();
    for x in [100.0, 40.0, 19.0] {
        let property = attempts_property(x);
        let outcome =
            ModelRepair::new().repair_dtmc(&chain, &property, &template).expect("repair run");
        let (p, q) = match outcome.parameters.as_slice() {
            [(_, p), (_, q)] => (*p, *q),
            _ => (f64::NAN, f64::NAN),
        };
        let repaired_attempts = outcome
            .model
            .as_ref()
            .map(|m| checker.query_dtmc(m, &attempts_query).expect("query")[config.source()]);
        rows.push(vec![
            format!("R{{attempts}}<={x} [F delivered]"),
            format!("{:?}", outcome.status),
            if outcome.status == RepairStatus::Repaired { fmt(p) } else { "-".into() },
            if outcome.status == RepairStatus::Repaired { fmt(q) } else { "-".into() },
            if outcome.status == RepairStatus::Repaired { fmt(outcome.cost) } else { "-".into() },
            repaired_attempts.map(fmt).unwrap_or_else(|| "-".into()),
            format!("{}", outcome.verified),
        ]);
    }
    print_table(
        &[
            "property (E1/E2/E3)",
            "status",
            "p",
            "q",
            "cost ||Z||_F^2",
            "attempts after",
            "verified",
        ],
        &rows,
    );

    // Worst-scheduler view on the MDP variant for context.
    let mdp = build_mdp(&config).expect("valid config");
    let rmax = parse_query("R{\"attempts\"}max=? [ F \"delivered\" ]").expect("query");
    let rmin = parse_query("R{\"attempts\"}min=? [ F \"delivered\" ]").expect("query");
    let worst = checker.query_mdp(&mdp, &rmax).expect("query")[config.source()];
    let best = checker.query_mdp(&mdp, &rmin).expect("query")[config.source()];
    println!(
        "\nMDP variant (routing choice nondeterministic): Rmin = {best:.2}, Rmax = {worst:.2} attempts"
    );
}
