//! E1–E3 (paper §V-A.1): Model Repair on the WSN query-routing model.
//!
//! Reproduces the three regimes of `R{"attempts"} <= X [ F "delivered" ]`:
//!
//! * `X = 100` — the learned model satisfies the property outright;
//! * `X = 40`  — repair finds small corrections `(p, q)` to the ignore
//!   probabilities of field/station vs. interior nodes;
//! * `X = 19`  — no admissible small perturbation suffices (infeasible).
//!
//! Run with `cargo run --release -p tml-bench --bin exp_wsn_model_repair`.
//! Pass `--trace-json PATH` to stream a `tml-trace/v1` JSONL trace of the
//! repair spans and counters to PATH (validated in CI by the
//! `telemetry_schema_check` binary).

use std::sync::Arc;

use tml_bench::{fmt, print_table};
use tml_checker::Checker;
use tml_core::{ModelRepair, RepairStatus};
use tml_logic::parse_query;
use tml_telemetry::sink::JsonlSink;
use tml_telemetry::Subscriber;
use tml_wsn::{attempts_property, build_dtmc, build_mdp, repair_template, WsnConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut trace_json = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace-json" => trace_json = Some(args.next().expect("--trace-json needs a path")),
            other => {
                eprintln!(
                    "unknown argument {other}; usage: exp_wsn_model_repair [--trace-json PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    let subscriber = trace_json.map(|path| {
        let file = std::fs::File::create(&path).expect("create trace file");
        let sink = JsonlSink::new(std::io::BufWriter::new(file), "exp_wsn_model_repair")
            .expect("write trace meta line");
        let sub = Arc::new(Subscriber::builder().sink(Arc::new(sink)).build());
        assert!(tml_telemetry::install_global(sub.clone()), "telemetry slot free");
        sub
    });

    let config = WsnConfig::default();
    let chain = build_dtmc(&config).expect("valid config");
    let template = repair_template(&config).expect("valid template");
    let checker = Checker::new();

    let attempts_query = parse_query("R{\"attempts\"}=? [ F \"delivered\" ]").expect("query");
    let base_attempts =
        checker.query_dtmc(&chain, &attempts_query).expect("query")[config.source()];
    println!("WSN query routing, {0}x{0} grid (paper §V-A.1)", config.n);
    println!(
        "ignore probabilities: edge rows {:.2}, interior {:.2}",
        config.ignore_edge, config.ignore_interior
    );
    println!("expected attempts of the unrepaired model: {base_attempts:.2}\n");

    let mut rows = Vec::new();
    for x in [100.0, 40.0, 19.0] {
        let property = attempts_property(x);
        let outcome =
            ModelRepair::new().repair_dtmc(&chain, &property, &template).expect("repair run");
        let (p, q) = match outcome.parameters.as_slice() {
            [(_, p), (_, q)] => (*p, *q),
            _ => (f64::NAN, f64::NAN),
        };
        let repaired_attempts = outcome
            .model
            .as_ref()
            .map(|m| checker.query_dtmc(m, &attempts_query).expect("query")[config.source()]);
        rows.push(vec![
            format!("R{{attempts}}<={x} [F delivered]"),
            format!("{:?}", outcome.status),
            if outcome.status == RepairStatus::Repaired { fmt(p) } else { "-".into() },
            if outcome.status == RepairStatus::Repaired { fmt(q) } else { "-".into() },
            if outcome.status == RepairStatus::Repaired { fmt(outcome.cost) } else { "-".into() },
            repaired_attempts.map(fmt).unwrap_or_else(|| "-".into()),
            format!("{}", outcome.verified),
        ]);
    }
    print_table(
        &[
            "property (E1/E2/E3)",
            "status",
            "p",
            "q",
            "cost ||Z||_F^2",
            "attempts after",
            "verified",
        ],
        &rows,
    );

    // Worst-scheduler view on the MDP variant for context.
    let mdp = build_mdp(&config).expect("valid config");
    let rmax = parse_query("R{\"attempts\"}max=? [ F \"delivered\" ]").expect("query");
    let rmin = parse_query("R{\"attempts\"}min=? [ F \"delivered\" ]").expect("query");
    let worst = checker.query_mdp(&mdp, &rmax).expect("query")[config.source()];
    let best = checker.query_mdp(&mdp, &rmin).expect("query")[config.source()];
    println!(
        "\nMDP variant (routing choice nondeterministic): Rmin = {best:.2}, Rmax = {worst:.2} attempts"
    );

    if let Some(sub) = subscriber {
        tml_telemetry::uninstall_global();
        let table = tml_telemetry::summary::render_metrics(&sub.metrics_snapshot());
        if !table.is_empty() {
            println!("\ntelemetry metrics:\n{table}");
        }
    }
}
