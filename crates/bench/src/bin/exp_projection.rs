//! E7 (paper §IV-C, Proposition 4): the posterior-regularization
//! projection of the trajectory distribution.
//!
//! Enumerates all trajectories of the car MDP up to a horizon, computes the
//! max-ent distribution `P(U|θ)` under the IRL-learned reward, projects it
//! onto the rule `G !unsafe` for increasing rule weights `λ`, and reports
//! how the probability mass on rule-violating trajectories collapses —
//! `λ → ∞` drives it to zero while satisfying trajectories keep their
//! (renormalized) probability, exactly as Proposition 4 states. Finally the
//! repaired reward re-estimated from the projected distribution is shown.
//!
//! Run with `cargo run --release -p tml-bench --bin exp_projection`.

use tml_bench::{fmt, print_table};
use tml_car as car;
use tml_core::{
    enumerate_trajectories, project_distribution, trajectory_log_weight, MdpTraceView,
    RewardRepair, WeightedRule,
};
use tml_logic::TraceFormula;

fn main() {
    let mdp = car::build_mdp().expect("fixed topology");
    let features = car::features().expect("fixed topology");
    let irl = car::learn_reward(&mdp).expect("irl");
    let horizon = 6;

    let paths = enumerate_trajectories(&mdp, mdp.initial_state(), horizon);
    println!("car MDP: {} trajectories of horizon {horizon}", paths.len());

    // Max-ent distribution under the learned reward.
    let logw: Vec<f64> =
        paths.iter().map(|u| trajectory_log_weight(&mdp, &features, &irl.theta, u)).collect();
    let z = tml_numerics::vector::log_sum_exp(&logw);
    let p: Vec<f64> = logw.iter().map(|lw| (lw - z).exp()).collect();

    let rule = TraceFormula::never("unsafe");
    let violating_mass = |dist: &[f64]| -> f64 {
        paths
            .iter()
            .zip(dist)
            .filter(|(u, _)| !rule.eval(&MdpTraceView::new(&mdp, u), 0))
            .map(|(_, &pr)| pr)
            .sum()
    };
    println!("violating mass under P(·|θ_IRL): {}\n", fmt(violating_mass(&p)));

    let mut rows = Vec::new();
    for lambda in [0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 50.0] {
        let q = project_distribution(&mdp, &paths, &p, &[WeightedRule::soft(rule.clone(), lambda)]);
        let kl: f64 = q
            .iter()
            .zip(&p)
            .filter(|(&qi, &pi)| qi > 0.0 && pi > 0.0)
            .map(|(&qi, &pi)| qi * (qi / pi).ln())
            .sum();
        rows.push(vec![fmt(lambda), fmt(violating_mass(&q)), fmt(kl)]);
    }
    print_table(&["λ", "violating mass under Q", "KL(Q ‖ P)"], &rows);

    // Full projection-based repair: project with a hard rule and refit θ.
    let out = RewardRepair::new()
        .project_and_fit(&mdp, &features, &irl.theta, &car::safety_rules(), horizon)
        .expect("projection repair");
    println!("\nprojection-based reward repair over {} trajectories:", out.num_trajectories);
    println!("  θ before: {:?}", out.base_theta.iter().map(|v| fmt(*v)).collect::<Vec<_>>());
    println!("  θ after:  {:?}", out.theta.iter().map(|v| fmt(*v)).collect::<Vec<_>>());
    println!(
        "  violating mass: {} → {}",
        fmt(out.violation_mass_before),
        fmt(out.violation_mass_after)
    );
    println!("  KL(Q ‖ P) = {}", fmt(out.kl_divergence));
    assert!(out.violation_mass_after < out.violation_mass_before);
}
