//! E9 — robust confidence sweep (uncertainty-set repair, PR 10).
//!
//! The paper's pipeline treats the learned transition matrix as ground
//! truth; this experiment re-runs both case studies against a Wilson
//! uncertainty ball around the point estimate at 90/95/99% confidence:
//!
//! 1. **WSN Model Repair** (`R{"attempts"} <= 40 [F "delivered"]`): the
//!    robust repair must make the property hold for *every* member of the
//!    ball around the repaired chain. Higher confidence → wider ball →
//!    larger correction and cost than the nominal (point-estimate) repair.
//! 2. **Car safety** (`P [ !"unsafe" U "goal" ]`): the E6-repaired policy
//!    is deployed on the noisy (slip 0.1) variant of the Fig. 1 MDP and
//!    its induced chain is verified robustly — the pessimistic end of the
//!    value bracket is the guaranteed safety level at each confidence.
//!
//! Run with `cargo run --release -p tml-bench --bin exp_robust_sweep`.

use tml_bench::{fmt, print_table};
use tml_car as car;
use tml_checker::Checker;
use tml_core::{ModelRepair, RepairOptions, RepairStatus, RewardRepair, RobustSpec};
use tml_logic::{parse_formula, parse_query};
use tml_models::{DeterministicPolicy, IntervalDtmc};
use tml_wsn::{attempts_property, build_dtmc, repair_template, WsnConfig};

const CONFIDENCES: [f64; 3] = [0.90, 0.95, 0.99];

fn main() {
    wsn_sweep();
    car_sweep();
}

fn wsn_sweep() {
    let config = WsnConfig::default();
    let chain = build_dtmc(&config).expect("wsn chain");
    let template = repair_template(&config).expect("wsn template");
    let phi = attempts_property(40.0);

    println!("WSN Model Repair, nominal vs. robust (X = 40, sample size 100)\n");
    let nominal = ModelRepair::new().repair_dtmc(&chain, &phi, &template).expect("nominal repair");

    let mut rows = vec![vec![
        "nominal (point estimate)".into(),
        format!("{:?}", nominal.status),
        fmt(nominal.cost),
        "1.00".into(),
        nominal.verified.to_string(),
    ]];
    for conf in CONFIDENCES {
        let opts = RepairOptions { robust: Some(RobustSpec::new(conf)), ..Default::default() };
        let robust = ModelRepair::with_options(opts)
            .repair_dtmc(&chain, &phi, &template)
            .expect("robust repair");
        assert_eq!(robust.status, RepairStatus::Repaired, "robust repair at {conf} not feasible");
        assert!(robust.verified, "robust repair at {conf} failed robust re-verification");
        rows.push(vec![
            format!("robust @ {:.0}%", conf * 100.0),
            format!("{:?}", robust.status),
            fmt(robust.cost),
            format!("{:.2}", robust.cost / nominal.cost),
            robust.verified.to_string(),
        ]);
    }
    print_table(&["repair", "status", "cost ||Z||^2_F", "cost / nominal", "verified"], &rows);
    println!();
}

fn car_sweep() {
    // E6's reward repair on the ideal Fig. 1 MDP, as in exp_car_reward_repair.
    let mdp = car::build_mdp().expect("fixed topology");
    let features = car::features().expect("fixed topology");
    let irl = car::learn_reward(&mdp).expect("irl");
    let outcome = RewardRepair::new()
        .q_constraint_repair(
            &mdp,
            &features,
            &irl.theta,
            &[car::q_repair_constraint()],
            car::GAMMA,
            3.0,
        )
        .expect("repair run");
    let policy = car::greedy_policy(&mdp, &outcome.theta).expect("vi");

    // Deploy the repaired policy on the noisy variant: each manoeuvre slips
    // forward with probability 0.1, so the induced chain is genuinely
    // stochastic and the Wilson ball around it is non-degenerate.
    let noisy = car::build_mdp_noisy(0.1).expect("noisy topology");
    let induced = DeterministicPolicy::new(policy).induce(&noisy).expect("induced chain");
    let safety = parse_query("P=? [ !\"unsafe\" U \"goal\" ]").expect("query");
    let checker = Checker::new();
    let nominal_value =
        checker.query_dtmc(&induced, &safety).expect("nominal query")[induced.initial_state()];

    println!(
        "Car safety under the repaired policy, slip 0.1 (P [ !\"unsafe\" U \"goal\" ], sample size 200)\n"
    );
    println!("nominal P(safe overtake) = {}\n", fmt(nominal_value));

    let bound = parse_formula("P>=0.8 [ !\"unsafe\" U \"goal\" ]").expect("formula");
    let mut rows = Vec::new();
    for conf in CONFIDENCES {
        let ball = IntervalDtmc::wilson_around(&induced, conf, 200.0).expect("wilson ball");
        let bracket = checker.query_interval_dtmc(&ball, &safety).expect("robust query");
        let (lo, hi) = bracket.at(induced.initial_state());
        assert!(
            lo - 1e-9 <= nominal_value && nominal_value <= hi + 1e-9,
            "nominal value escaped the robust bracket at {conf}"
        );
        let verdict = checker.check_interval_dtmc(&ball, &bound).expect("robust check");
        rows.push(vec![
            format!("{:.0}%", conf * 100.0),
            fmt(lo),
            fmt(hi),
            format!("{}", verdict.holds()),
        ]);
    }
    print_table(
        &["confidence", "pessimistic P(safe)", "optimistic P(safe)", "P>=0.8 robustly"],
        &rows,
    );
}
