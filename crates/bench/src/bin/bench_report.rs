//! Machine-readable performance baseline for the repair hot path.
//!
//! Times the scenarios the compiled-tape + parallel-restart work targets
//! and writes them as JSON (`BENCH_PR10.json` by default) so perf changes
//! are reviewable in diffs rather than anecdotes:
//!
//! * compiled-tape vs. interpreted rational-function evaluation (value and
//!   value+gradient) on a synthetic degree-5, 4-variable function and on
//!   the WSN symbolic attempts function;
//! * symbolic state elimination on the WSN grid;
//! * end-to-end WSN Model Repair (symbolic path);
//! * penalty-solver restarts, parallel vs. serial, with an exact-match
//!   determinism check;
//! * sparse mat-vec at a size above the parallel threshold;
//! * max-ent IRL training on the car model;
//! * WSN Model Repair with the telemetry subscriber installed: per-phase
//!   wall-time breakdown from span histograms, plus the overhead of the
//!   enabled vs. disabled (no-subscriber) telemetry path;
//! * a 100k-state layered-SCC checker solve with trace correlation fully
//!   enabled (subscriber + installed `TraceContext`, so every per-block
//!   span carries the trace id) vs. fully disabled — the end-to-end cost
//!   of PR 8's tracing on the hot solver;
//! * WSN x40 Model Repair, lifting vs. penalty strategy: function-evaluation
//!   counts and wall time for both, the eval-reduction factor the
//!   branch-and-refine pruning buys, and the optimality-certificate gap;
//! * robust (min-max) value iteration vs. the nominal scalar check: the WSN
//!   reward-bound property on its 95% Wilson ball, and a layered-SCC
//!   reachability bracket vs. the plain sparse solve on the same graph —
//!   the price of the O(n log n) inner adversary per sweep.
//!
//! Run with `cargo run --release -p tml-bench --bin bench_report -- --quick`.
//! `--quick` keeps every scenario deterministic and under a second; `--full`
//! multiplies the iteration counts by 10. `--out PATH` overrides the output
//! file.

use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Instant;

use serde::Serialize;
use tml_car as car;
use tml_checker::dtmc::until_probabilities;
use tml_checker::{CheckOptions, Checker, LinearSolver};
use tml_conformance::gen::{self, GOAL_LABEL};
use tml_core::{ModelRepair, RepairOptions, RepairStrategy};
use tml_irl::maxent_irl;
use tml_logic::{PathFormula, Query, StateFormula};
use tml_models::IntervalDtmc;
use tml_numerics::{CsrMatrix, Triplet, PAR_NNZ_THRESHOLD};
use tml_optimizer::{ConstraintSense, Nlp, PenaltyOptions, PenaltySolver};
use tml_parametric::{Polynomial, RationalFunction};
use tml_telemetry::{Subscriber, TraceContext};
use tml_wsn::{attempts_property, build_dtmc, repair_template, WsnConfig};

#[derive(Serialize)]
struct Report {
    schema: String,
    mode: String,
    threads: usize,
    /// The headline number: interpreted / compiled ns-per-eval on the
    /// synthetic degree-5, 4-variable rational function.
    compiled_eval_speedup: f64,
    scenarios: Vec<Scenario>,
}

#[derive(Serialize, Default)]
struct Scenario {
    name: String,
    wall_ms: f64,
    ops_per_sec: Option<f64>,
    metrics: BTreeMap<String, f64>,
    notes: BTreeMap<String, String>,
}

fn main() {
    let mut out_path = String::from("BENCH_PR10.json");
    let mut quick = true;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--full" => quick = false,
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => {
                eprintln!(
                    "unknown argument {other}; usage: bench_report [--quick|--full] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    let scale: usize = if quick { 1 } else { 10 };

    let mut scenarios = Vec::new();

    // --- compiled vs. interpreted evaluation -----------------------------
    let headline =
        eval_scenario("compiled_vs_interpreted_synthetic_4var_deg5", &synthetic_ratfn(4, 5), scale);
    let headline_speedup = headline.metrics.get("eval_speedup").copied().unwrap_or(f64::NAN);
    scenarios.push(headline);
    {
        let config = WsnConfig::default();
        let chain = build_dtmc(&config).expect("wsn chain");
        let template = repair_template(&config).expect("wsn template");
        let pdtmc = template.apply(&chain).expect("parametric chain");
        let target = pdtmc.labeling().mask("delivered");
        let f =
            pdtmc.expected_reward("attempts", &target).expect("symbolic")[config.source()].clone();
        scenarios.push(eval_scenario("compiled_vs_interpreted_wsn_attempts", &f, scale));
    }

    // --- symbolic elimination --------------------------------------------
    {
        let config = WsnConfig { n: 3, ..Default::default() };
        let chain = build_dtmc(&config).expect("wsn chain");
        let template = repair_template(&config).expect("wsn template");
        let pdtmc = template.apply(&chain).expect("parametric chain");
        let target = pdtmc.labeling().mask("delivered");
        let (ms, _) =
            time(|| black_box(pdtmc.expected_reward("attempts", &target).expect("symbolic")));
        scenarios.push(Scenario {
            name: "symbolic_elimination_wsn_3x3".into(),
            wall_ms: ms,
            ..Default::default()
        });
    }

    // --- end-to-end model repair (symbolic path) -------------------------
    {
        let config = WsnConfig::default();
        let chain = build_dtmc(&config).expect("wsn chain");
        let template = repair_template(&config).expect("wsn template");
        let (ms, outcome) = time(|| {
            ModelRepair::new()
                .repair_dtmc(&chain, &attempts_property(40.0), &template)
                .expect("repair run")
        });
        let mut s =
            Scenario { name: "model_repair_wsn_x40".into(), wall_ms: ms, ..Default::default() };
        s.metrics.insert("evaluations".into(), outcome.evaluations as f64);
        s.notes.insert("status".into(), format!("{:?}", outcome.status));
        s.notes.insert("verified".into(), outcome.verified.to_string());
        scenarios.push(s);
    }

    // --- model repair: lifting vs. penalty strategy ----------------------
    {
        let config = WsnConfig::default();
        let chain = build_dtmc(&config).expect("wsn chain");
        let template = repair_template(&config).expect("wsn template");
        let phi = attempts_property(40.0);
        let run = |strategy| {
            ModelRepair::with_options(RepairOptions { strategy, ..RepairOptions::default() })
                .repair_dtmc(&chain, &phi, &template)
                .expect("repair run")
        };
        let (penalty_ms, penalty) = time(|| run(RepairStrategy::Penalty));
        let (lifting_ms, lifting) = time(|| run(RepairStrategy::Lifting));
        assert_eq!(penalty.status, lifting.status, "strategies disagree on feasibility");
        let mut s = Scenario {
            name: "wsn_x40_lifting_vs_penalty".into(),
            wall_ms: penalty_ms + lifting_ms,
            ..Default::default()
        };
        s.metrics.insert("penalty_ms".into(), penalty_ms);
        s.metrics.insert("lifting_ms".into(), lifting_ms);
        s.metrics.insert("penalty_evaluations".into(), penalty.evaluations as f64);
        s.metrics.insert("lifting_evaluations".into(), lifting.evaluations as f64);
        s.metrics.insert(
            "eval_reduction".into(),
            penalty.evaluations as f64 / lifting.evaluations as f64,
        );
        s.metrics.insert("penalty_cost".into(), penalty.cost);
        s.metrics.insert("lifting_cost".into(), lifting.cost);
        if let Some(cert) = &lifting.certificate {
            s.metrics.insert("certificate_lower_bound".into(), cert.lower_bound);
            s.metrics.insert("certificate_gap".into(), cert.upper_bound - cert.lower_bound);
            s.notes.insert("certified".into(), cert.certified.to_string());
        }
        s.notes.insert("status".into(), format!("{:?}", lifting.status));
        s.notes.insert("verified".into(), lifting.verified.to_string());
        scenarios.push(s);
    }

    // --- robust VI vs. nominal check -------------------------------------
    {
        // The price of robustness, on two shapes: (a) the WSN reward-bound
        // property checked on the chain's 95% Wilson ball vs. the nominal
        // scalar check, and (b) a layered-SCC reachability bracket vs. the
        // plain sparse solve on the same graph. Robust VI pays an
        // O(k log k) inner adversary per row per sweep; the slowdown
        // metrics pin what that costs end-to-end.
        let config = WsnConfig::default();
        let chain = build_dtmc(&config).expect("wsn chain");
        let phi = attempts_property(40.0);
        let checker = Checker::new();
        let (_, _) = time(|| checker.check_dtmc(&chain, &phi).expect("nominal check")); // warmup
        let (wsn_nominal_ms, nominal) =
            time(|| checker.check_dtmc(&chain, &phi).expect("nominal check"));
        let ball = IntervalDtmc::wilson_around(&chain, 0.95, 100.0).expect("wilson ball");
        let (wsn_robust_ms, robust) =
            time(|| checker.check_interval_dtmc(&ball, &phi).expect("robust check"));

        let model = gen::layered_scc_dtmc(4, 16, 25, 3);
        let reach = Query::Prob {
            opt: None,
            path: PathFormula::Eventually {
                sub: Box::new(StateFormula::Atom(GOAL_LABEL.to_owned())),
                bound: None,
            },
        };
        let reach_ball = IntervalDtmc::wilson_around(&model, 0.95, 500.0).expect("wilson ball");
        let (_, _) = time(|| checker.query_dtmc(&model, &reach).expect("nominal query"));
        let (reach_nominal_ms, values) =
            time(|| checker.query_dtmc(&model, &reach).expect("nominal query"));
        let (reach_robust_ms, bracket) =
            time(|| checker.query_interval_dtmc(&reach_ball, &reach).expect("robust query"));
        let init = model.initial_state();
        let (lo, hi) = bracket.at(init);
        assert!(
            lo - 1e-9 <= values[init] && values[init] <= hi + 1e-9,
            "nominal value escaped its own ball's bracket"
        );
        let mut s = Scenario {
            name: "robust_vi_vs_nominal".into(),
            wall_ms: wsn_nominal_ms + wsn_robust_ms + reach_nominal_ms + reach_robust_ms,
            ..Default::default()
        };
        s.metrics.insert("wsn_nominal_check_ms".into(), wsn_nominal_ms);
        s.metrics.insert("wsn_robust_check_ms".into(), wsn_robust_ms);
        s.metrics.insert("wsn_robust_slowdown".into(), wsn_robust_ms / wsn_nominal_ms);
        s.metrics.insert("reach_states".into(), model.num_states() as f64);
        s.metrics.insert("reach_nominal_ms".into(), reach_nominal_ms);
        s.metrics.insert("reach_robust_ms".into(), reach_robust_ms);
        s.metrics.insert("reach_robust_slowdown".into(), reach_robust_ms / reach_nominal_ms);
        s.metrics.insert("reach_nominal_value".into(), values[init]);
        s.metrics.insert("reach_bracket_lo".into(), lo);
        s.metrics.insert("reach_bracket_hi".into(), hi);
        s.metrics.insert("reach_bracket_width".into(), hi - lo);
        s.notes.insert("wsn_nominal_holds".into(), nominal.holds().to_string());
        s.notes.insert("wsn_robust_holds".into(), robust.holds().to_string());
        scenarios.push(s);
    }

    // --- model repair: telemetry per-phase breakdown + overhead ----------
    {
        let config = WsnConfig::default();
        let chain = build_dtmc(&config).expect("wsn chain");
        let template = repair_template(&config).expect("wsn template");
        let run = || {
            ModelRepair::new()
                .repair_dtmc(&chain, &attempts_property(40.0), &template)
                .expect("repair run")
        };
        // Telemetry fully disabled: the no-subscriber path every library
        // call takes when no one asked for a trace (one atomic load per
        // would-be span).
        let (disabled_ms, _) = time(run);
        // The same repair with a metrics-only subscriber installed.
        let sub = std::sync::Arc::new(Subscriber::builder().build());
        assert!(tml_telemetry::install_global(sub.clone()), "telemetry slot free");
        let (enabled_ms, _) = time(run);
        tml_telemetry::uninstall_global();
        let snapshot = sub.metrics_snapshot();
        let mut s = Scenario {
            name: "model_repair_wsn_x40_telemetry".into(),
            wall_ms: enabled_ms,
            ..Default::default()
        };
        s.metrics.insert("disabled_ms".into(), disabled_ms);
        s.metrics.insert("enabled_ms".into(), enabled_ms);
        s.metrics.insert("overhead_pct".into(), (enabled_ms - disabled_ms) / disabled_ms * 100.0);
        for (name, hist) in &snapshot.histograms {
            if let Some(phase) = name.strip_prefix("span.") {
                s.metrics.insert(format!("phase_ms.{phase}"), hist.sum_ns as f64 / 1e6);
            }
        }
        for (name, value) in &snapshot.counters {
            s.metrics.insert(format!("count.{name}"), *value as f64);
        }
        scenarios.push(s);
    }

    // --- SCC 100k solve: enabled-tracing overhead ------------------------
    {
        // The 100k-state layered-DAG-of-SCCs solve from BENCH_PR7, run
        // once with telemetry fully disabled and once with a subscriber
        // installed AND a trace context on the stack, so every
        // `numerics.scc.block` span pays the full correlated-tracing
        // price. The disabled run is the one-atomic-load path the
        // counting-allocator test pins; this scenario prices the enabled
        // side end-to-end.
        let model = gen::layered_scc_dtmc(7, 64, 100_000 / (64 * 4), 4);
        let target = model.labeling().mask(GOAL_LABEL);
        // Same sparse φ-blocking as bench_scaling: keep the maybe-system
        // large so the solvers do real work.
        let phi: Vec<bool> = (0..model.num_states()).map(|s| target[s] || s % 97 != 13).collect();
        let opts = CheckOptions {
            solver: LinearSolver::Scc,
            tolerance: 1e-10,
            max_iterations: 5_000_000,
            ..CheckOptions::default()
        };
        let run = || until_probabilities(&model, &phi, &target, &opts).expect("scc solve");
        let init = model.initial_state();
        let (_, _) = time(run); // warmup (page in the matrix, JIT the caches)
        let (disabled_ms, base) = time(run);
        let sub = std::sync::Arc::new(Subscriber::builder().build());
        assert!(tml_telemetry::install_global(sub.clone()), "telemetry slot free");
        let (enabled_ms, traced) = {
            let _trace = tml_telemetry::with_trace(TraceContext::derive(7, 0));
            time(run)
        };
        tml_telemetry::uninstall_global();
        assert_eq!(
            base[init].to_bits(),
            traced[init].to_bits(),
            "tracing changed the solve result"
        );
        let snapshot = sub.metrics_snapshot();
        let mut s = Scenario {
            name: "scc_solve_100k_tracing".into(),
            wall_ms: enabled_ms,
            ..Default::default()
        };
        s.metrics.insert("states".into(), model.num_states() as f64);
        s.metrics.insert("disabled_ms".into(), disabled_ms);
        s.metrics.insert("enabled_ms".into(), enabled_ms);
        s.metrics.insert("overhead_pct".into(), (enabled_ms - disabled_ms) / disabled_ms * 100.0);
        if let Some(h) = snapshot.histogram("span.numerics.scc.block") {
            s.metrics.insert("block_spans".into(), h.count as f64);
            s.metrics.insert("block_span_ms_sum".into(), h.sum_ns as f64 / 1e6);
        }
        for (name, value) in &snapshot.counters {
            s.metrics.insert(format!("count.{name}"), *value as f64);
        }
        s.notes.insert("value_at_initial".into(), format!("{}", base[init]));
        scenarios.push(s);
    }

    // --- solver restarts: parallel vs. serial ----------------------------
    {
        let nlp = restart_nlp();
        let solver = |parallel| {
            PenaltySolver::with_options(PenaltyOptions {
                restarts: 8 * scale,
                parallel,
                ..Default::default()
            })
        };
        let (serial_ms, serial) = time(|| solver(false).solve(&nlp).expect("serial solve"));
        let (parallel_ms, parallel) = time(|| solver(true).solve(&nlp).expect("parallel solve"));
        let identical = serial.x == parallel.x
            && serial.objective == parallel.objective
            && serial.evaluations == parallel.evaluations;
        assert!(identical, "parallel solve diverged from serial solve");
        let mut s = Scenario {
            name: "solver_parallel_vs_serial".into(),
            wall_ms: serial_ms + parallel_ms,
            ..Default::default()
        };
        s.metrics.insert("serial_ms".into(), serial_ms);
        s.metrics.insert("parallel_ms".into(), parallel_ms);
        s.metrics.insert("evaluations".into(), serial.evaluations as f64);
        s.notes.insert("identical_solution".into(), identical.to_string());
        scenarios.push(s);
    }

    // --- sparse mat-vec above the parallel threshold ---------------------
    {
        let n = 20_000;
        let mut triplets = Vec::with_capacity(3 * n);
        for i in 0..n {
            triplets.push(Triplet { row: i, col: i, value: 2.0 });
            if i + 1 < n {
                triplets.push(Triplet { row: i, col: i + 1, value: -0.5 });
                triplets.push(Triplet { row: i + 1, col: i, value: -0.25 });
            }
        }
        let a = CsrMatrix::from_triplets(n, n, &triplets).expect("csr");
        let x: Vec<f64> = (0..n).map(|i| (i % 7) as f64 * 0.1).collect();
        let reps = 50 * scale;
        let (ms, _) = time(|| {
            let mut acc = 0.0;
            for _ in 0..reps {
                acc += a.mat_vec(black_box(&x)).expect("shape")[n / 2];
            }
            acc
        });
        let mut s = Scenario {
            name: "sparse_mat_vec_20k_tridiagonal".into(),
            wall_ms: ms,
            ops_per_sec: Some(reps as f64 / (ms / 1e3)),
            ..Default::default()
        };
        s.metrics.insert("rows".into(), n as f64);
        s.metrics.insert("nnz".into(), a.nnz() as f64);
        s.metrics.insert("par_nnz_threshold".into(), PAR_NNZ_THRESHOLD as f64);
        scenarios.push(s);
    }

    // --- max-ent IRL -----------------------------------------------------
    {
        let mdp = car::build_mdp().expect("car mdp");
        let features = car::features().expect("car features");
        let demo = car::expert_path();
        let opts = tml_irl::IrlOptions { iterations: 50 * scale, ..car::irl_options() };
        let (ms, _) = time(|| {
            maxent_irl(black_box(&mdp), &features, std::slice::from_ref(&demo), opts)
                .expect("irl run")
        });
        scenarios.push(Scenario {
            name: "maxent_irl_car_50_iters".into(),
            wall_ms: ms,
            ..Default::default()
        });
    }

    let report = Report {
        schema: "tml-bench-report/v1".into(),
        mode: if quick { "quick" } else { "full" }.into(),
        threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        compiled_eval_speedup: headline_speedup,
        scenarios,
    };
    let body = serde_json::to_string(&report).expect("serialize report");
    std::fs::write(&out_path, format!("{body}\n")).expect("write report");
    println!("{body}");
    println!("\nwrote {out_path}");
}

/// Times `f`, returning (wall milliseconds, result).
fn time<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let t = Instant::now();
    let r = f();
    (t.elapsed().as_secs_f64() * 1e3, r)
}

/// Best-of-`reps` per-op cost in nanoseconds: each rep runs `iters` calls
/// of `op` and the minimum per-op time across reps is reported. The min is
/// robust against scheduler noise, and the first rep doubles as warmup.
fn bench_ns(reps: usize, iters: usize, mut op: impl FnMut(usize) -> f64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let mut acc = 0.0;
        for i in 0..iters {
            acc += op(i);
        }
        black_box(acc);
        best = best.min(t.elapsed().as_secs_f64() * 1e9 / iters as f64);
    }
    best
}

/// Times interpreted vs. compiled evaluation (and value+gradient) of `f`
/// over a deterministic point set, reporting best-of-`reps` per-op costs
/// and speedups.
fn eval_scenario(name: &str, f: &RationalFunction, scale: usize) -> Scenario {
    let start = Instant::now();
    let nvars = f.num_vars();
    let points = lcg_points(64, nvars);
    let compiled = f.compile();
    let reps = 7;
    let pt = |i: usize| &points[i % points.len()];

    let interp_ns =
        bench_ns(reps, 10_000 * scale, |i| f.eval(black_box(pt(i))).unwrap_or(f64::NAN));
    let compiled_ns =
        bench_ns(reps, 100_000 * scale, |i| compiled.eval(black_box(pt(i))).unwrap_or(f64::NAN));

    // Gradient: the interpreted quotient rule (`RationalFunction::grad`,
    // allocating a Vec per call) vs. the one-pass compiled tape. The
    // interpreted side also pays one `eval` since the solver needs value
    // and gradient together.
    let interp_grad_ns = bench_ns(reps, 2_000 * scale, |i| {
        let p = black_box(pt(i));
        f.eval(p).unwrap_or(f64::NAN) + f.grad(p).map(|g| g[0]).unwrap_or(f64::NAN)
    });
    let mut g = vec![0.0; nvars];
    let compiled_grad_ns = bench_ns(reps, 50_000 * scale, |i| {
        compiled.eval_grad(black_box(pt(i)), &mut g).unwrap_or(f64::NAN) + g[0]
    });

    let mut s = Scenario {
        name: name.into(),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        ops_per_sec: Some(1e9 / compiled_ns),
        ..Default::default()
    };
    s.metrics.insert("nvars".into(), nvars as f64);
    s.metrics.insert("degree".into(), f.complexity() as f64);
    s.metrics.insert("interpreted_ns_per_eval".into(), interp_ns);
    s.metrics.insert("compiled_ns_per_eval".into(), compiled_ns);
    s.metrics.insert("eval_speedup".into(), interp_ns / compiled_ns);
    s.metrics.insert("interpreted_ns_per_value_grad".into(), interp_grad_ns);
    s.metrics.insert("compiled_ns_per_value_grad".into(), compiled_grad_ns);
    s.metrics.insert("value_grad_speedup".into(), interp_grad_ns / compiled_grad_ns);
    s
}

/// A degree-`degree` rational function in `nvars` variables with a dense
/// numerator ((1 + Σ cᵢxᵢ)^degree) and a quadratic denominator.
fn synthetic_ratfn(nvars: usize, degree: u32) -> RationalFunction {
    let mut affine = Polynomial::constant(nvars, 1.0);
    for i in 0..nvars {
        affine = affine.add(&Polynomial::var(nvars, i).scale(0.5 + 0.25 * i as f64));
    }
    let mut num = Polynomial::constant(nvars, 1.0);
    for _ in 0..degree {
        num = num.mul(&affine);
    }
    let mut den = Polynomial::constant(nvars, 1.0);
    for i in 0..nvars {
        let v = Polynomial::var(nvars, i);
        den = den.add(&v.mul(&v).scale(0.5));
    }
    RationalFunction::new(num, den).expect("nonzero denominator")
}

/// A small constrained NLP with enough structure that every restart does
/// real work: minimize ‖x‖² subject to x0 + x1 + x2 ≥ 1 on [−1, 1]³.
fn restart_nlp() -> Nlp {
    let mut nlp = Nlp::new(3, vec![(-1.0, 1.0); 3]).expect("valid box");
    nlp.minimize_norm2();
    nlp.constraint("sum>=1", ConstraintSense::Ge, 1.0, |x| x.iter().sum());
    nlp
}

/// Deterministic quasi-random points in `[0.1, 0.9]^dim` (fixed LCG seed).
fn lcg_points(n: usize, dim: usize) -> Vec<Vec<f64>> {
    let mut state = 0x243F_6A88_85A3_08D3_u64;
    (0..n)
        .map(|_| {
            (0..dim)
                .map(|_| {
                    state = state
                        .wrapping_mul(6_364_136_223_846_793_005)
                        .wrapping_add(1_442_695_040_888_963_407);
                    ((state >> 11) as f64) / ((1u64 << 53) as f64) * 0.8 + 0.1
                })
                .collect()
        })
        .collect()
}
