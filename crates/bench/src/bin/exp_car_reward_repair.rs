//! E5–E6 (paper §V-B, Fig. 1): Reward Repair on the obstacle-avoidance
//! controller.
//!
//! 1. Max-entropy IRL on the expert overtake demonstration learns reward
//!    weights `θ` over (lane, distance-to-unsafe, goal) features.
//! 2. The greedy policy under `θ` drives **forward at S1**, colliding with
//!    the van — the paper's unsafe outcome.
//! 3. Reward Repair solves `min ‖θ' − θ‖² s.t. Q(S1, left) > Q(S1, fwd)`;
//!    the repaired policy changes lanes and completes the overtake safely.
//!
//! Run with `cargo run --release -p tml-bench --bin exp_car_reward_repair`.

use tml_bench::{fmt, print_table};
use tml_car as car;
use tml_core::RewardRepair;

fn main() {
    let mdp = car::build_mdp().expect("fixed topology");
    let features = car::features().expect("fixed topology");

    println!("Car obstacle avoidance (paper §V-B, Fig. 1)");
    println!("expert demonstration: {:?}\n", car::expert_path().states);

    // E5: learn the reward by max-ent IRL.
    let irl = car::learn_reward(&mdp).expect("irl");
    let learned_policy = car::greedy_policy(&mdp, &irl.theta).expect("vi");
    let learned_rollout = car::rollout(&mdp, &learned_policy, 25);
    let learned_safe = car::policy_is_safe(&mdp, &learned_policy);

    // E6: repair the reward.
    let outcome = RewardRepair::new()
        .q_constraint_repair(
            &mdp,
            &features,
            &irl.theta,
            &[car::q_repair_constraint()],
            car::GAMMA,
            3.0,
        )
        .expect("repair run");
    let repaired_policy = car::greedy_policy(&mdp, &outcome.theta).expect("vi");
    let repaired_rollout = car::rollout(&mdp, &repaired_policy, 25);
    let repaired_safe = car::policy_is_safe(&mdp, &repaired_policy);

    print_table(
        &[
            "reward",
            "θ1 (lane)",
            "θ2 (dist-unsafe)",
            "θ3 (goal)",
            "action at S1",
            "rollout from S0",
            "safe",
        ],
        &[
            vec![
                "learned (IRL)".into(),
                fmt(irl.theta[0]),
                fmt(irl.theta[1]),
                fmt(irl.theta[2]),
                action_at(&mdp, &learned_policy, 1),
                format!("{learned_rollout:?}"),
                format!("{learned_safe}"),
            ],
            vec![
                "repaired".into(),
                fmt(outcome.theta[0]),
                fmt(outcome.theta[1]),
                fmt(outcome.theta[2]),
                action_at(&mdp, &repaired_policy, 1),
                format!("{repaired_rollout:?}"),
                format!("{repaired_safe}"),
            ],
        ],
    );

    println!("\nrepair status: {:?} (verified: {})", outcome.status, outcome.verified);
    println!("repair cost ||θ' - θ||^2 = {}", fmt(outcome.cost));
    println!("\nfull policies (paper lists these per state):");
    let mut rows = Vec::new();
    for s in 0..mdp.num_states() {
        rows.push(vec![
            format!("S{s}"),
            action_at(&mdp, &learned_policy, s),
            action_at(&mdp, &repaired_policy, s),
        ]);
    }
    print_table(&["state", "learned policy", "repaired policy"], &rows);

    assert!(!learned_safe, "E5 expects the learned policy to be unsafe");
    assert!(repaired_safe, "E6 expects the repaired policy to be safe");
}

fn action_at(mdp: &tml_models::Mdp, policy: &[usize], s: usize) -> String {
    mdp.action_name(mdp.choices(s)[policy[s]].action).to_owned()
}
