//! E4 (paper §V-A.2): Data Repair on the WSN routing traces.
//!
//! Synthetic routing traces (plus injected corrupt ignore observations) are
//! grouped into the paper's classes — forwarding success/failure and
//! per-node ignore events at `n_11` and `n_32`. Data Repair finds
//! keep-weights `(p, q, r)` for the droppable classes such that the model
//! *re-learned* from the re-weighted data satisfies
//! `R{"attempts"} <= 19 [ F "delivered" ]`, while the forwarding-success
//! class is pinned as reliable.
//!
//! Run with `cargo run --release -p tml-bench --bin exp_wsn_data_repair`.

use tml_bench::{fmt, print_table};
use tml_checker::Checker;
use tml_core::{DataRepair, RepairStatus};
use tml_logic::parse_query;
use tml_models::{learn, MlOptions};
use tml_wsn::{attempts_property, classes, generate_traces, model_spec, WsnConfig};

fn main() {
    let config = WsnConfig::default();
    let dataset = generate_traces(&config, 120, 40.0, 42).expect("trace generation");
    let spec = model_spec(&config);
    let checker = Checker::new();
    let attempts_query = parse_query("R{\"attempts\"}=? [ F \"delivered\" ]").expect("query");

    println!(
        "WSN data repair (paper §V-A.2): {} traces in {} classes",
        dataset.num_traces(),
        dataset.num_classes()
    );

    // The model learned from ALL data (including corrupt observations).
    let mut base =
        learn::ml_dtmc(spec.num_states, &dataset, None, MlOptions::default()).expect("learnable");
    base.initial_state(spec.initial).expect("state");
    for (s, l) in &spec.labels {
        base.label(*s, l).expect("label");
    }
    for (structure, s, r) in &spec.state_rewards {
        base.state_reward(structure, *s, *r).expect("reward");
    }
    let base = base.build().expect("stochastic");
    let before = checker.query_dtmc(&base, &attempts_query).expect("query")[config.source()];
    println!("expected attempts learned from the raw data: {before:.2}");
    println!("target property: R{{attempts}}<=19 [ F delivered ]\n");

    let outcome = DataRepair::new()
        .keep_class(classes::FORWARD_SUCCESS)
        .repair(&dataset, &spec, &attempts_property(19.0))
        .expect("repair run");

    let mut rows = Vec::new();
    for (name, w) in &outcome.keep_weights {
        rows.push(vec![
            name.clone(),
            fmt(*w),
            fmt(1.0 - *w),
            if name == classes::FORWARD_SUCCESS {
                "pinned (reliable)".into()
            } else {
                "droppable".into()
            },
        ]);
    }
    print_table(&["trace class", "keep weight w", "drop fraction 1-w", "role"], &rows);

    let after = outcome
        .model
        .as_ref()
        .map(|m| checker.query_dtmc(m, &attempts_query).expect("query")[config.source()]);
    println!("\nstatus: {:?} (verified: {})", outcome.status, outcome.verified);
    println!("teaching effort Σ m_g (1-w_g)^2 = {}", fmt(outcome.effort));
    println!("dropped trace mass = {}", fmt(outcome.dropped_mass));
    if let Some(a) = after {
        println!("expected attempts after re-learning: {a:.2} (<= 19 required)");
    }
    assert_ne!(outcome.status, RepairStatus::AlreadySatisfied, "experiment expects a repair");
}
