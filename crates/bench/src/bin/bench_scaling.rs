//! State-space scaling curve for the checker's linear-solver backends.
//!
//! Sweeps the million-state generator families (`long-chain`,
//! `layered-scc`, `grid`) across a size ladder and times the constrained
//! reachability `P(φ U goal)` — with a sparse set of states blocked from
//! φ so the qualitative precomputation cannot collapse the system (with
//! every state allowed, these families reach the goal almost surely and
//! `Prob1` swallows everything) — under three solver configurations:
//!
//! * `monolithic` — Gauss–Seidel on the whole maybe-state system (the
//!   pre-decomposition baseline);
//! * `scc` — the SCC-decomposed block solve (trivial components by
//!   back-substitution, small blocks dense, large blocks range-GS);
//! * `interval` — two-sided iteration with sound bounds (run at the
//!   smaller sizes; it does roughly twice the monolithic work by design).
//!
//! Writes the curve as JSON (`BENCH_PR7.json` by default) so scaling
//! regressions show up in diffs. The headline check — and the CI gate via
//! `--assert-speedup` — is that the SCC path beats the monolithic solve on
//! the layered-DAG-of-SCCs family, where the condensation has thousands of
//! small components in a deep dependency order.
//!
//! Run with `cargo run --release -p tml-bench --bin bench_scaling -- --quick`
//! (sizes 10k/100k) or `--full` (10k → 1M). `--out PATH` overrides the
//! output file; `--assert-speedup` exits non-zero if the SCC solve is
//! slower than the monolithic solve on any layered-scc size.

use std::collections::BTreeMap;
use std::time::Instant;

use serde::Serialize;
use tml_checker::dtmc::until_probabilities;
use tml_checker::{CheckOptions, LinearSolver};
use tml_conformance::gen::{self, GOAL_LABEL};
use tml_models::Dtmc;

#[derive(Serialize)]
struct Report {
    schema: String,
    mode: String,
    rows: Vec<Row>,
    /// Per (family, size): monolithic wall time over SCC wall time.
    speedups: Vec<Speedup>,
}

#[derive(Serialize)]
struct Row {
    family: String,
    states: usize,
    transitions: usize,
    solver: String,
    wall_ms: f64,
    value_at_initial: f64,
    metrics: BTreeMap<String, f64>,
}

#[derive(Serialize)]
struct Speedup {
    family: String,
    states: usize,
    scc_over_monolithic: f64,
}

/// Sizes are approximate: each family rounds to its own lattice.
const QUICK_SIZES: &[usize] = &[10_000, 100_000];
const FULL_SIZES: &[usize] = &[10_000, 30_000, 100_000, 300_000, 1_000_000];

/// Interval iteration does two monolithic-shaped sweeps per round, so the
/// curve only carries it up to this size.
const INTERVAL_CAP: usize = 100_000;

/// The grid family is one giant SCC (the honest no-win case for the
/// decomposition); cap it below the million-state tier to keep the sweep's
/// wall clock dominated by the families the decomposition targets.
const GRID_CAP: usize = 100_000;

fn main() {
    let mut out_path = String::from("BENCH_PR7.json");
    let mut quick = true;
    let mut assert_speedup = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--full" => quick = false,
            "--assert-speedup" => assert_speedup = true,
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => {
                eprintln!(
                    "unknown argument {other}; usage: \
                     bench_scaling [--quick|--full] [--assert-speedup] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    let sizes = if quick { QUICK_SIZES } else { FULL_SIZES };

    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    let mut gate_ok = true;

    for &family in &["long-chain", "layered-scc", "grid"] {
        for &size in sizes {
            if family == "grid" && size > GRID_CAP {
                continue;
            }
            let model = build(family, size);
            let n = model.num_states();
            eprintln!("{family} {n} states: generating done, solving...");
            let mono = solve(&model, LinearSolver::GaussSeidel);
            let scc = solve(&model, LinearSolver::Scc);
            assert!(
                (mono.1 - scc.1).abs() < 1e-6,
                "{family} {n}: monolithic {} vs scc {} disagree",
                mono.1,
                scc.1
            );
            let ratio = mono.0 / scc.0.max(1e-9);
            eprintln!(
                "{family} {n} states: monolithic {:.1}ms, scc {:.1}ms ({ratio:.1}x)",
                mono.0, scc.0
            );
            rows.push(row(family, &model, "monolithic-gs", mono));
            rows.push(row(family, &model, "scc", scc));
            speedups.push(Speedup { family: family.into(), states: n, scc_over_monolithic: ratio });
            if family == "layered-scc" && ratio < 1.0 {
                gate_ok = false;
            }
            if size <= INTERVAL_CAP {
                let iv = solve(&model, LinearSolver::Interval);
                assert!(
                    (iv.1 - mono.1).abs() < 1e-6,
                    "{family} {n}: interval midpoint {} vs monolithic {} disagree",
                    iv.1,
                    mono.1
                );
                rows.push(row(family, &model, "interval", iv));
            }
        }
    }

    let report = Report {
        schema: "tml-bench-scaling/v1".into(),
        mode: if quick { "quick" } else { "full" }.into(),
        rows,
        speedups,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out_path, format!("{json}\n")).expect("write report");
    eprintln!("wrote {out_path}");

    if assert_speedup && !gate_ok {
        eprintln!("FAIL: scc path slower than monolithic on the layered-scc family");
        std::process::exit(1);
    }
}

/// Builds a family instance with roughly `size` states. The layered-scc
/// family keeps the layer count fixed at 64 and scales the layer width, so
/// the dependency depth (what monolithic sweeps pay for) stays constant
/// while the state count grows.
fn build(family: &str, size: usize) -> Dtmc {
    match family {
        "long-chain" => gen::long_chain_dtmc(7, size),
        "layered-scc" => {
            let comps = (size / (64 * 4)).max(1);
            gen::layered_scc_dtmc(7, 64, comps, 4)
        }
        "grid" => gen::grid_dtmc(7, (size as f64).sqrt().ceil() as usize),
        other => unreachable!("unknown family {other}"),
    }
}

/// Times one `P(φ U goal)` solve; returns (wall ms, value at initial
/// state). Every 97th state (offset 13) is blocked from φ, which keeps
/// almost the whole state space in the "maybe" system the solvers have to
/// work for.
fn solve(model: &Dtmc, solver: LinearSolver) -> (f64, f64) {
    let opts = CheckOptions {
        solver,
        tolerance: 1e-10,
        max_iterations: 5_000_000,
        ..CheckOptions::default()
    };
    let target = model.labeling().mask(GOAL_LABEL);
    let phi = blocked_phi(model.num_states(), &target);
    let t0 = Instant::now();
    let x = until_probabilities(model, &phi, &target, &opts).expect("solve");
    (t0.elapsed().as_secs_f64() * 1e3, x[model.initial_state()])
}

/// All states allowed except every 97th (offset 13, so the initial state
/// stays allowed); goal states are never blocked.
fn blocked_phi(n: usize, target: &[bool]) -> Vec<bool> {
    (0..n).map(|s| target[s] || s % 97 != 13).collect()
}

fn row(family: &str, model: &Dtmc, solver: &str, (wall_ms, value): (f64, f64)) -> Row {
    Row {
        family: family.into(),
        states: model.num_states(),
        transitions: model.num_transitions(),
        solver: solver.into(),
        wall_ms,
        value_at_initial: value,
        metrics: BTreeMap::new(),
    }
}
