//! Benchmarks for the conformance Monte Carlo simulator: trajectory
//! throughput on the generator families (scaling with state count and
//! trajectory budget) and the differential-oracle hot path of simulating
//! the WSN case-study chain.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tml_conformance::gen::ModelFamily;
use tml_conformance::sim::{SimOptions, Simulator};
use tml_logic::parse_formula;
use tml_wsn::{build_dtmc, WsnConfig};

fn bench_reachability_families(c: &mut Criterion) {
    let phi = parse_formula("P>=0.05 [ F \"goal\" ]").unwrap();
    let mut group = c.benchmark_group("sim_reachability");
    group.sample_size(10);
    for family in [ModelFamily::Layered, ModelFamily::Grid, ModelFamily::Dense] {
        let model = family.generate_sized(7, 64);
        let sim = Simulator::new(SimOptions { trajectories: 5_000, ..SimOptions::default() });
        group.bench_with_input(BenchmarkId::from_parameter(family.name()), &model, |b, m| {
            b.iter(|| sim.check_formula(black_box(m), &phi).unwrap());
        });
    }
    group.finish();
}

fn bench_trajectory_scaling(c: &mut Criterion) {
    let phi = parse_formula("P>=0.05 [ F \"goal\" ]").unwrap();
    let model = ModelFamily::Layered.generate_sized(11, 48);
    let mut group = c.benchmark_group("sim_trajectories");
    group.sample_size(10);
    for n in [1_000u64, 10_000, 50_000] {
        let sim = Simulator::new(SimOptions { trajectories: n, ..SimOptions::default() });
        group.bench_with_input(BenchmarkId::from_parameter(n), &sim, |b, sim| {
            b.iter(|| sim.check_formula(black_box(&model), &phi).unwrap());
        });
    }
    group.finish();
}

fn bench_wsn_cross_check(c: &mut Criterion) {
    // The shape used by pipeline cross-checks: simulate the delivered
    // property of the learned WSN chain.
    let config = WsnConfig { n: 5, ..Default::default() };
    let chain = build_dtmc(&config).unwrap();
    let phi = parse_formula("P>=0.5 [ F \"delivered\" ]").unwrap();
    let sim = Simulator::new(SimOptions { trajectories: 2_000, ..SimOptions::default() });
    c.bench_function("sim_wsn_cross_check", |b| {
        b.iter(|| sim.check_formula(black_box(&chain), &phi).unwrap());
    });
}

criterion_group!(
    benches,
    bench_reachability_families,
    bench_trajectory_scaling,
    bench_wsn_cross_check
);
criterion_main!(benches);
