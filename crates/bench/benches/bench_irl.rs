//! Benchmarks for the IRL and Reward Repair stack (E5/E6): max-ent IRL
//! training, value iteration, trajectory enumeration + projection, and the
//! Q-constraint repair.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tml_car as car;
use tml_core::{enumerate_trajectories, project_distribution, RewardRepair};
use tml_irl::{maxent_irl, value_iteration, IrlOptions, ViOptions};

fn bench_irl(c: &mut Criterion) {
    let mdp = car::build_mdp().unwrap();
    let features = car::features().unwrap();
    let demo = car::expert_path();

    let mut group = c.benchmark_group("irl_car");
    group.sample_size(10);
    group.bench_function("maxent_100_iters", |b| {
        let opts = IrlOptions { iterations: 100, ..car::irl_options() };
        b.iter(|| {
            maxent_irl(black_box(&mdp), &features, std::slice::from_ref(&demo), opts).unwrap()
        });
    });
    group.bench_function("value_iteration", |b| {
        let rewards = features.rewards(&[0.5, -0.3, 1.0]);
        b.iter(|| {
            value_iteration(
                black_box(&mdp),
                &rewards,
                ViOptions { gamma: car::GAMMA, ..Default::default() },
            )
            .unwrap()
        });
    });
    group.finish();
}

fn bench_projection(c: &mut Criterion) {
    let mdp = car::build_mdp().unwrap();
    let rules = car::safety_rules();

    let mut group = c.benchmark_group("projection_car");
    group.bench_function("enumerate_h6", |b| {
        b.iter(|| enumerate_trajectories(black_box(&mdp), 0, 6));
    });
    let paths = enumerate_trajectories(&mdp, 0, 6);
    let uniform = vec![1.0 / paths.len() as f64; paths.len()];
    group.bench_function("project_h6", |b| {
        b.iter(|| project_distribution(black_box(&mdp), &paths, &uniform, &rules));
    });
    group.finish();
}

fn bench_q_repair(c: &mut Criterion) {
    let mdp = car::build_mdp().unwrap();
    let features = car::features().unwrap();
    let theta0 = vec![-0.7, -0.5, 2.0];

    let mut group = c.benchmark_group("reward_repair_car");
    group.sample_size(10);
    group.bench_function("q_constraint", |b| {
        b.iter(|| {
            RewardRepair::new()
                .q_constraint_repair(
                    black_box(&mdp),
                    &features,
                    &theta0,
                    &[car::q_repair_constraint()],
                    car::GAMMA,
                    3.0,
                )
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_irl, bench_projection, bench_q_repair);
criterion_main!(benches);
