//! End-to-end repair benchmarks (E2/E3/E4): full Model Repair and Data
//! Repair runs on the WSN case study.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tml_core::{DataRepair, ModelRepair};
use tml_wsn::{
    attempts_property, build_dtmc, classes, generate_traces, model_spec, repair_template, WsnConfig,
};

fn bench_model_repair(c: &mut Criterion) {
    let config = WsnConfig::default();
    let chain = build_dtmc(&config).unwrap();
    let template = repair_template(&config).unwrap();

    let mut group = c.benchmark_group("model_repair_wsn");
    group.sample_size(10);
    group.bench_function("feasible_x40", |b| {
        b.iter(|| {
            ModelRepair::new()
                .repair_dtmc(black_box(&chain), &attempts_property(40.0), &template)
                .unwrap()
        });
    });
    group.bench_function("infeasible_x19", |b| {
        b.iter(|| {
            ModelRepair::new()
                .repair_dtmc(black_box(&chain), &attempts_property(19.0), &template)
                .unwrap()
        });
    });
    group.finish();
}

fn bench_data_repair(c: &mut Criterion) {
    let config = WsnConfig::default();
    let dataset = generate_traces(&config, 60, 20.0, 42).unwrap();
    let spec = model_spec(&config);

    let mut group = c.benchmark_group("data_repair_wsn");
    group.sample_size(10);
    group.bench_function("x19", |b| {
        b.iter(|| {
            DataRepair::new()
                .keep_class(classes::FORWARD_SUCCESS)
                .repair(black_box(&dataset), &spec, &attempts_property(19.0))
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_model_repair, bench_data_repair);
criterion_main!(benches);
