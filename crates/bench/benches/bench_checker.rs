//! Benchmarks for the PCTL checking engine (supports experiment E8):
//! DTMC reachability/reward solving and MDP value iteration as the WSN
//! grid grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tml_checker::Checker;
use tml_logic::parse_query;
use tml_wsn::{build_dtmc, build_mdp, WsnConfig};

fn bench_dtmc_reward(c: &mut Criterion) {
    let checker = Checker::new();
    let q = parse_query("R{\"attempts\"}=? [ F \"delivered\" ]").unwrap();
    let mut group = c.benchmark_group("dtmc_reach_reward");
    for n in [3, 5, 8, 12] {
        let config = WsnConfig { n, ..Default::default() };
        let chain = build_dtmc(&config).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{n}")),
            &chain,
            |b, chain| {
                b.iter(|| checker.query_dtmc(black_box(chain), &q).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_dtmc_reachability(c: &mut Criterion) {
    let checker = Checker::new();
    let q = parse_query("P=? [ F \"delivered\" ]").unwrap();
    let mut group = c.benchmark_group("dtmc_reachability");
    for n in [3, 8, 12] {
        let config = WsnConfig { n, ..Default::default() };
        let chain = build_dtmc(&config).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{n}")),
            &chain,
            |b, chain| {
                b.iter(|| checker.query_dtmc(black_box(chain), &q).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_mdp_value_iteration(c: &mut Criterion) {
    let checker = Checker::new();
    let q = parse_query("R{\"attempts\"}max=? [ F \"delivered\" ]").unwrap();
    let mut group = c.benchmark_group("mdp_rmax");
    for n in [3, 5, 8] {
        let config = WsnConfig { n, ..Default::default() };
        let mdp = build_mdp(&config).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(format!("{n}x{n}")), &mdp, |b, mdp| {
            b.iter(|| checker.query_mdp(black_box(mdp), &q).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dtmc_reward, bench_dtmc_reachability, bench_mdp_value_iteration);
criterion_main!(benches);
