//! Benchmarks for the parametric engine (E2/E4 machinery): symbolic state
//! elimination vs. grid size, and rational-function evaluation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tml_wsn::{build_dtmc, repair_template, WsnConfig};

fn bench_symbolic_elimination(c: &mut Criterion) {
    let mut group = c.benchmark_group("symbolic_expected_reward");
    group.sample_size(10);
    for n in [2, 3, 4] {
        let config = WsnConfig { n, ..Default::default() };
        let chain = build_dtmc(&config).unwrap();
        let template = repair_template(&config).unwrap();
        let pdtmc = template.apply(&chain).unwrap();
        let target = pdtmc.labeling().mask("delivered");
        group.bench_with_input(BenchmarkId::from_parameter(format!("{n}x{n}")), &pdtmc, |b, p| {
            b.iter(|| p.expected_reward("attempts", black_box(&target)).unwrap());
        });
    }
    group.finish();
}

fn bench_symbolic_reachability(c: &mut Criterion) {
    let mut group = c.benchmark_group("symbolic_reachability");
    group.sample_size(10);
    for n in [2, 3, 4] {
        let config = WsnConfig { n, ..Default::default() };
        let chain = build_dtmc(&config).unwrap();
        let template = repair_template(&config).unwrap();
        let pdtmc = template.apply(&chain).unwrap();
        let target = pdtmc.labeling().mask("delivered");
        group.bench_with_input(BenchmarkId::from_parameter(format!("{n}x{n}")), &pdtmc, |b, p| {
            b.iter(|| p.reachability(black_box(&target)).unwrap());
        });
    }
    group.finish();
}

fn bench_evaluation(c: &mut Criterion) {
    // Evaluation cost of the closed-form constraint function — this is
    // what the optimizer pays per step on the symbolic path, vs. a full
    // model-check per step on the oracle path.
    let config = WsnConfig::default();
    let chain = build_dtmc(&config).unwrap();
    let template = repair_template(&config).unwrap();
    let pdtmc = template.apply(&chain).unwrap();
    let target = pdtmc.labeling().mask("delivered");
    let symbolic = pdtmc.expected_reward("attempts", &target).unwrap();
    let f = symbolic[config.source()].clone();

    let mut group = c.benchmark_group("constraint_evaluation");
    group.bench_function("symbolic_eval", |b| {
        b.iter(|| f.eval(black_box(&[0.05, 0.05])).unwrap());
    });
    group.bench_function("oracle_instantiate_and_check", |b| {
        let q = tml_logic::parse_query("R{\"attempts\"}=? [ F \"delivered\" ]").unwrap();
        let checker = tml_checker::Checker::new();
        b.iter(|| {
            let inst = pdtmc.instantiate(black_box(&[0.05, 0.05])).unwrap();
            checker.query_dtmc(&inst, &q).unwrap()[config.source()]
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_symbolic_elimination,
    bench_symbolic_reachability,
    bench_evaluation
);
criterion_main!(benches);
