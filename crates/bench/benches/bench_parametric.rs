//! Benchmarks for the parametric engine (E2/E4 machinery): symbolic state
//! elimination vs. grid size, and rational-function evaluation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tml_parametric::{Polynomial, RationalFunction};
use tml_wsn::{build_dtmc, repair_template, WsnConfig};

fn bench_symbolic_elimination(c: &mut Criterion) {
    let mut group = c.benchmark_group("symbolic_expected_reward");
    group.sample_size(10);
    for n in [2, 3, 4] {
        let config = WsnConfig { n, ..Default::default() };
        let chain = build_dtmc(&config).unwrap();
        let template = repair_template(&config).unwrap();
        let pdtmc = template.apply(&chain).unwrap();
        let target = pdtmc.labeling().mask("delivered");
        group.bench_with_input(BenchmarkId::from_parameter(format!("{n}x{n}")), &pdtmc, |b, p| {
            b.iter(|| p.expected_reward("attempts", black_box(&target)).unwrap());
        });
    }
    group.finish();
}

fn bench_symbolic_reachability(c: &mut Criterion) {
    let mut group = c.benchmark_group("symbolic_reachability");
    group.sample_size(10);
    for n in [2, 3, 4] {
        let config = WsnConfig { n, ..Default::default() };
        let chain = build_dtmc(&config).unwrap();
        let template = repair_template(&config).unwrap();
        let pdtmc = template.apply(&chain).unwrap();
        let target = pdtmc.labeling().mask("delivered");
        group.bench_with_input(BenchmarkId::from_parameter(format!("{n}x{n}")), &pdtmc, |b, p| {
            b.iter(|| p.reachability(black_box(&target)).unwrap());
        });
    }
    group.finish();
}

fn bench_evaluation(c: &mut Criterion) {
    // Evaluation cost of the closed-form constraint function — this is
    // what the optimizer pays per step on the symbolic path, vs. a full
    // model-check per step on the oracle path.
    let config = WsnConfig::default();
    let chain = build_dtmc(&config).unwrap();
    let template = repair_template(&config).unwrap();
    let pdtmc = template.apply(&chain).unwrap();
    let target = pdtmc.labeling().mask("delivered");
    let symbolic = pdtmc.expected_reward("attempts", &target).unwrap();
    let f = symbolic[config.source()].clone();

    let mut group = c.benchmark_group("constraint_evaluation");
    group.bench_function("symbolic_eval", |b| {
        b.iter(|| f.eval(black_box(&[0.05, 0.05])).unwrap());
    });
    group.bench_function("oracle_instantiate_and_check", |b| {
        let q = tml_logic::parse_query("R{\"attempts\"}=? [ F \"delivered\" ]").unwrap();
        let checker = tml_checker::Checker::new();
        b.iter(|| {
            let inst = pdtmc.instantiate(black_box(&[0.05, 0.05])).unwrap();
            checker.query_dtmc(&inst, &q).unwrap()[config.source()]
        });
    });
    group.finish();
}

fn bench_compiled_evaluation(c: &mut Criterion) {
    // Interpreted (BTreeMap walk + powi) vs. compiled-tape evaluation of
    // the same rational function — the repair hot path before and after
    // tape compilation. See also `bin/bench_report.rs`, which records the
    // same comparison as a machine-readable baseline.
    let mut affine = Polynomial::constant(4, 1.0);
    for i in 0..4 {
        affine = affine.add(&Polynomial::var(4, i).scale(0.5 + 0.25 * i as f64));
    }
    let mut num = Polynomial::constant(4, 1.0);
    for _ in 0..5 {
        num = num.mul(&affine);
    }
    let mut den = Polynomial::constant(4, 1.0);
    for i in 0..4 {
        let v = Polynomial::var(4, i);
        den = den.add(&v.mul(&v).scale(0.5));
    }
    let f = RationalFunction::new(num, den).unwrap();
    let compiled = f.compile();
    let pt = [0.3, 0.7, 0.2, 0.5];

    let mut group = c.benchmark_group("compiled_vs_interpreted");
    group.bench_function("interpreted_eval", |b| {
        b.iter(|| f.eval(black_box(&pt)).unwrap());
    });
    group.bench_function("compiled_eval", |b| {
        b.iter(|| compiled.eval(black_box(&pt)).unwrap());
    });
    group.bench_function("interpreted_value_and_grad", |b| {
        b.iter(|| {
            let v = f.eval(black_box(&pt)).unwrap();
            (v, f.grad(black_box(&pt)).unwrap())
        });
    });
    group.bench_function("compiled_value_and_grad", |b| {
        let mut g = [0.0; 4];
        b.iter(|| compiled.eval_grad(black_box(&pt), &mut g).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_symbolic_elimination,
    bench_symbolic_reachability,
    bench_evaluation,
    bench_compiled_evaluation
);
criterion_main!(benches);
