//! `tml` — a small command-line front end for the trusted-ml workspace:
//! check PCTL properties, evaluate numeric queries and simulate models
//! written in the textual model format of `tml_models::dsl`.
//!
//! ```text
//! tml info     MODEL.tml
//! tml check    MODEL.tml 'P>=0.9 [ F "goal" ]'
//! tml query    MODEL.tml 'Rmax=? [ F "done" ]'
//! tml repair   MODEL.tml 'P>=0.95 [ F "goal" ]' --param v:-0.1:0.1 \
//!              --nudge 0:1:v:1 --nudge 0:2:v:-1 --strategy lifting
//! tml simulate MODEL.tml [STEPS] [SEED]
//! tml witness  MODEL.tml goal
//! tml batch    32 --journal batch.jsonl --report report.jsonl
//! tml batch    --resume batch.jsonl --report report.jsonl
//! tml serve    --journal serve.jsonl --addr 127.0.0.1:0 --workers 2
//! tml trace    run.jsonl [resumed.jsonl ...] [--folded]
//! ```
//!
//! Every command accepts `--trace-json PATH` (stream a `tml-trace/v1`
//! JSONL trace of spans and counters) and `--metrics` (print a metrics
//! summary table when the command finishes).

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use tml_checker::{Budget, Checker};
use tml_conformance::sim::{SimOptions, Simulator};
use tml_logic::{parse_formula, parse_query};
use tml_models::dsl::{parse_model, ModelFile};
use tml_models::StochasticPolicy;
use tml_telemetry::sink::JsonlSink;
use tml_telemetry::{summary, Subscriber};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => ExitCode::from(code),
        Err(UsageError(msg)) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  tml info     MODEL            show model statistics
  tml check    MODEL PROPERTY   check a PCTL property (exit code 1 if violated)
  tml query    MODEL QUERY      evaluate a numeric query (P=?, Rmax=?, ...)
  tml repair   MODEL PROPERTY   perturb transition probabilities (within the
                                --param/--nudge template) until PROPERTY holds,
                                minimizing the Frobenius cost (exit code 1 if
                                infeasible or the budget ran out)
  tml simulate MODEL [STEPS] [SEED]
                                sample one trajectory (MDPs use the uniform policy)
  tml witness  MODEL LABEL      most probable path to a LABEL state (DTMCs)
  tml batch    COUNT            run COUNT seeded learn/verify/repair jobs with
                                per-job isolation, retries and a write-ahead
                                journal (schema tml-journal/v1)
  tml batch    --resume JOURNAL continue an interrupted batch from its journal;
                                the final report is byte-identical to an
                                uninterrupted run
  tml serve    --journal PATH   run the repair service: HTTP/1.1 JSON admission
                                (POST /v1/jobs) over the same write-ahead
                                journal; kill -9 + restart on the journal
                                resumes byte-identically
  tml trace    FILE...          analyze tml-trace/v1 JSONL files: span trees
                                grouped by trace id, self vs child time and a
                                critical-path summary; several files (e.g. a
                                crashed run plus its resume) re-link through
                                their shared trace ids
  tml help                      print this help

global options:
  -h, --help         print this help and exit
  --trace-json PATH  stream a structured trace (schema tml-trace/v1, one
                     JSON object per line: spans with timing and parent
                     linkage, counters) to PATH
  --metrics          print a metrics summary table (counters, per-span
                     durations) after the command finishes

options (check/query):
  --deadline-ms MS   wall-clock budget; past it, a best-effort result is
                     returned and marked degraded instead of running on
  --max-evals N      cap on solver sweeps/iterations, same best-effort rule
  --serial           run single-threaded (disables the parallel numerics
                     sweeps; results are identical either way)

options (check):
  --simulate N       cross-check the verdict with N seeded Monte Carlo
                     trajectories (DTMC models; prints the confidence
                     interval and whether it corroborates the checker)

options (check/repair; robust semantics):
  --robust           interpret a point dtmc as the Wilson confidence ball
                     around it and require the property for EVERY member:
                     check prints the [pessimistic, optimistic] bracket,
                     repair searches for the cheapest perturbation whose
                     whole ball satisfies the property (and prints the
                     non-robust cost next to it). Interval models (written
                     with lo..hi probabilities) take the robust path
                     without the flag.
  --confidence C     per-transition Wilson coverage level in (0,1)
                     (default 0.95)
  --samples N        effective observations behind each transition
                     estimate (default 100)

options (repair; dtmc models):
  --param NAME:LO:HI           declare a repair parameter and its admissible
                               range (repeatable; at least one required)
  --nudge FROM:TO:PARAM:COEFF  perturb p(FROM->TO) by COEFF * PARAM
                               (repeatable; at least one required)
  --strategy S                 penalty (default; the paper's multi-start
                               local search), lifting (branch-and-refine
                               region verification with a sound optimality
                               certificate) or auto (lifting when the
                               property compiles symbolically)

options (batch):
  --corpus-seed S    seed deriving every job (default 0)
  --journal PATH     write-ahead journal file (flushed per record; required
                     for --resume and --kill-after)
  --report PATH      write the deterministic final report here (default:
                     printed to stdout)
  --retries N        attempts per job before it is reported failed (default 3)
  --workers N        worker threads (default 2; the report does not depend
                     on this)
  --chaos SPEC       deterministic fault plan, e.g. 'panic=0.2,nan=0.1,seed=7'
  --kill-after N     simulate a crash: exit(137) after N jobs conclude
  --resume JOURNAL   replay a journal and finish the interrupted batch

options (serve; also honours --corpus-seed, --retries, --workers, --chaos,
--kill-after and the required --journal):
  --addr ADDR        bind address (default 127.0.0.1:0; the bound address is
                     printed to stdout on startup)
  --queue-depth N    bounded admission queue: job N+1 is shed with
                     429 Retry-After instead of buffering (default 64)
  --drain-ms MS      graceful-shutdown budget: SIGTERM/SIGINT (or
                     POST /admin/drain) stops admission, gives in-flight jobs
                     this long, journals the rest and exits 0 (default 5000)
  --request-log PATH write a tml-serve/v1 request log (one JSON object per
                     line, contiguous seq)

options (trace):
  --folded           print folded stacks (name;path count) aggregated by
                     span self-time, ready for flamegraph tooling, instead
                     of the per-trace summary";

#[derive(Debug)]
struct UsageError(String);

impl From<String> for UsageError {
    fn from(s: String) -> Self {
        UsageError(s)
    }
}

/// Flags shared by every command, parsed off the raw argument list.
struct CliOptions {
    budget: Budget,
    trace_json: Option<String>,
    metrics: bool,
    folded: bool,
    help: bool,
    simulate: Option<u64>,
    batch: BatchFlags,
    serve: ServeFlags,
    repair: RepairFlags,
    robust: RobustFlags,
}

/// Flags selecting robust (uncertainty-set) semantics for `check` and
/// `repair` on point DTMC models: the model is wrapped in the Wilson
/// confidence ball before checking, and repairs must hold for every member.
#[derive(Default)]
struct RobustFlags {
    enabled: bool,
    confidence: Option<f64>,
    samples: Option<f64>,
}

impl RobustFlags {
    /// The validated `(confidence, sample_size)` pair, defaulting to
    /// `(0.95, 100)` when the flags were not given.
    fn spec(&self) -> Result<(f64, f64), UsageError> {
        let confidence = self.confidence.unwrap_or(0.95);
        if !(confidence > 0.0 && confidence < 1.0) {
            return Err(UsageError(format!("--confidence {confidence} must be in (0, 1)")));
        }
        let samples = self.samples.unwrap_or(100.0);
        if !(samples > 0.0 && samples.is_finite()) {
            return Err(UsageError(format!("--samples {samples} must be positive")));
        }
        Ok((confidence, samples))
    }
}

/// Flags specific to `tml repair`; the raw `--param`/`--nudge` specs are
/// validated by the command (so errors name the offending spec).
#[derive(Default)]
struct RepairFlags {
    params: Vec<String>,
    nudges: Vec<String>,
    strategy: Option<String>,
}

/// Flags specific to `tml serve` (the service also reuses most of the
/// batch flags: seed, retries, workers, chaos, kill-after, journal).
struct ServeFlags {
    addr: String,
    queue_depth: usize,
    drain_ms: u64,
    request_log: Option<String>,
}

impl Default for ServeFlags {
    fn default() -> Self {
        ServeFlags {
            addr: "127.0.0.1:0".into(),
            queue_depth: 64,
            drain_ms: 5000,
            request_log: None,
        }
    }
}

/// Flags specific to `tml batch`.
struct BatchFlags {
    corpus_seed: u64,
    journal: Option<String>,
    report: Option<String>,
    retries: u32,
    workers: u32,
    chaos: Option<String>,
    kill_after: Option<u64>,
    resume: Option<String>,
}

impl Default for BatchFlags {
    fn default() -> Self {
        BatchFlags {
            corpus_seed: 0,
            journal: None,
            report: None,
            retries: 3,
            workers: 2,
            chaos: None,
            kill_after: None,
            resume: None,
        }
    }
}

/// Runs the CLI; the `Ok` value is the process exit code (0 success,
/// 1 property violated).
fn run(raw: &[String]) -> Result<u8, UsageError> {
    let (args, opts) = parse_flags(raw)?;
    if opts.help || args.first().map(String::as_str) == Some("help") {
        println!("{USAGE}");
        return Ok(0);
    }
    let subscriber = install_telemetry(&opts)?;
    let result = dispatch(&args, &opts);
    if let Some(sub) = subscriber {
        // Flushes the JSONL sink; spans recorded after this are dropped.
        tml_telemetry::uninstall_global();
        if opts.metrics {
            let table = summary::render_metrics(&sub.metrics_snapshot());
            if table.is_empty() {
                println!("no metrics recorded");
            } else {
                print!("{table}");
            }
        }
    }
    result
}

fn dispatch(args: &[String], opts: &CliOptions) -> Result<u8, UsageError> {
    let cmd = args.first().ok_or_else(|| UsageError("missing command".into()))?;
    match cmd.as_str() {
        "info" => info(arg(args, 1, "MODEL")?).map(|()| 0),
        "check" => check(arg(args, 1, "MODEL")?, arg(args, 2, "PROPERTY")?, opts),
        "query" => query(arg(args, 1, "MODEL")?, arg(args, 2, "QUERY")?, &opts.budget).map(|()| 0),
        "repair" => repair(arg(args, 1, "MODEL")?, arg(args, 2, "PROPERTY")?, opts),
        "simulate" => simulate(
            arg(args, 1, "MODEL")?,
            args.get(2).map(String::as_str),
            args.get(3).map(String::as_str),
        )
        .map(|()| 0),
        "witness" => witness(arg(args, 1, "MODEL")?, arg(args, 2, "LABEL")?).map(|()| 0),
        "batch" => batch(args.get(1).map(String::as_str), &opts.batch),
        "serve" => serve(&opts.batch, &opts.serve),
        "trace" => trace_analyze(&args[1..], opts.folded).map(|()| 0),
        other => Err(UsageError(format!("unknown command {other:?}"))),
    }
}

/// Strips the global flags (accepted anywhere on the command line); budget
/// flags fold into a [`Budget`], `--serial` caps the rayon stand-in's
/// thread count at one for the rest of the process.
fn parse_flags(raw: &[String]) -> Result<(Vec<String>, CliOptions), UsageError> {
    let mut args = Vec::with_capacity(raw.len());
    let mut opts = CliOptions {
        budget: Budget::unlimited(),
        trace_json: None,
        metrics: false,
        folded: false,
        help: false,
        simulate: None,
        batch: BatchFlags::default(),
        serve: ServeFlags::default(),
        repair: RepairFlags::default(),
        robust: RobustFlags::default(),
    };
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-h" | "--help" => opts.help = true,
            "--metrics" => opts.metrics = true,
            "--folded" => opts.folded = true,
            "--serial" => std::env::set_var("RAYON_NUM_THREADS", "1"),
            "--trace-json" => {
                let path =
                    it.next().ok_or_else(|| UsageError("--trace-json needs a path".into()))?;
                opts.trace_json = Some(path.clone());
            }
            "--deadline-ms" => {
                let ms: u64 = it
                    .next()
                    .ok_or_else(|| UsageError("--deadline-ms needs a value".into()))?
                    .parse()
                    .map_err(|_| UsageError("--deadline-ms must be an integer".into()))?;
                opts.budget = opts.budget.with_deadline(Duration::from_millis(ms));
            }
            "--max-evals" => {
                let n: u64 = it
                    .next()
                    .ok_or_else(|| UsageError("--max-evals needs a value".into()))?
                    .parse()
                    .map_err(|_| UsageError("--max-evals must be an integer".into()))?;
                opts.budget = opts.budget.with_max_evaluations(n);
            }
            "--corpus-seed" => {
                opts.batch.corpus_seed = parse_num(it.next(), "--corpus-seed")?;
            }
            "--retries" => {
                let n: u32 = parse_num(it.next(), "--retries")?;
                if n == 0 {
                    return Err(UsageError("--retries needs at least one attempt".into()));
                }
                opts.batch.retries = n;
            }
            "--workers" => {
                let n: u32 = parse_num(it.next(), "--workers")?;
                if n == 0 {
                    return Err(UsageError("--workers needs at least one thread".into()));
                }
                opts.batch.workers = n;
            }
            "--kill-after" => {
                let n: u64 = parse_num(it.next(), "--kill-after")?;
                if n == 0 {
                    return Err(UsageError("--kill-after needs at least one job".into()));
                }
                opts.batch.kill_after = Some(n);
            }
            "--journal" => {
                let path = it.next().ok_or_else(|| UsageError("--journal needs a path".into()))?;
                opts.batch.journal = Some(path.clone());
            }
            "--report" => {
                let path = it.next().ok_or_else(|| UsageError("--report needs a path".into()))?;
                opts.batch.report = Some(path.clone());
            }
            "--chaos" => {
                let spec = it.next().ok_or_else(|| UsageError("--chaos needs a spec".into()))?;
                opts.batch.chaos = Some(spec.clone());
            }
            "--resume" => {
                let path = it.next().ok_or_else(|| UsageError("--resume needs a path".into()))?;
                opts.batch.resume = Some(path.clone());
            }
            "--addr" => {
                let addr = it.next().ok_or_else(|| UsageError("--addr needs an address".into()))?;
                opts.serve.addr = addr.clone();
            }
            "--queue-depth" => {
                let n: usize = parse_num(it.next(), "--queue-depth")?;
                if n == 0 {
                    return Err(UsageError("--queue-depth needs at least one slot".into()));
                }
                opts.serve.queue_depth = n;
            }
            "--drain-ms" => {
                opts.serve.drain_ms = parse_num(it.next(), "--drain-ms")?;
            }
            "--request-log" => {
                let path =
                    it.next().ok_or_else(|| UsageError("--request-log needs a path".into()))?;
                opts.serve.request_log = Some(path.clone());
            }
            "--param" => {
                let spec =
                    it.next().ok_or_else(|| UsageError("--param needs NAME:LO:HI".into()))?;
                opts.repair.params.push(spec.clone());
            }
            "--nudge" => {
                let spec = it
                    .next()
                    .ok_or_else(|| UsageError("--nudge needs FROM:TO:PARAM:COEFF".into()))?;
                opts.repair.nudges.push(spec.clone());
            }
            "--strategy" => {
                let name = it.next().ok_or_else(|| UsageError("--strategy needs a name".into()))?;
                opts.repair.strategy = Some(name.clone());
            }
            "--robust" => opts.robust.enabled = true,
            "--confidence" => {
                let v: f64 = it
                    .next()
                    .ok_or_else(|| UsageError("--confidence needs a level in (0, 1)".into()))?
                    .parse()
                    .map_err(|_| UsageError("--confidence must be a number".into()))?;
                opts.robust.confidence = Some(v);
            }
            "--samples" => {
                let v: f64 = it
                    .next()
                    .ok_or_else(|| UsageError("--samples needs a sample size".into()))?
                    .parse()
                    .map_err(|_| UsageError("--samples must be a number".into()))?;
                opts.robust.samples = Some(v);
            }
            "--simulate" => {
                let n: u64 = it
                    .next()
                    .ok_or_else(|| UsageError("--simulate needs a trajectory count".into()))?
                    .parse()
                    .map_err(|_| UsageError("--simulate must be an integer".into()))?;
                if n == 0 {
                    return Err(UsageError("--simulate needs at least one trajectory".into()));
                }
                opts.simulate = Some(n);
            }
            other if other.starts_with("--") => {
                return Err(UsageError(format!("unknown option {other:?}")));
            }
            _ => args.push(a.clone()),
        }
    }
    Ok((args, opts))
}

/// Installs the global telemetry subscriber when `--trace-json` or
/// `--metrics` asks for one. Returns `None` (telemetry stays disabled, one
/// atomic load per would-be span) when neither flag is given.
fn install_telemetry(opts: &CliOptions) -> Result<Option<Arc<Subscriber>>, UsageError> {
    if opts.trace_json.is_none() && !opts.metrics {
        return Ok(None);
    }
    let mut builder = Subscriber::builder();
    if let Some(path) = &opts.trace_json {
        let file = std::fs::File::create(path)
            .map_err(|e| UsageError(format!("cannot create trace file {path:?}: {e}")))?;
        let sink = JsonlSink::new(std::io::BufWriter::new(file), "tml")
            .map_err(|e| UsageError(format!("cannot write trace file {path:?}: {e}")))?;
        builder = builder.sink(Arc::new(sink));
    }
    let sub = Arc::new(builder.build());
    if !tml_telemetry::install_global(sub.clone()) {
        return Err(UsageError("a telemetry subscriber is already installed".into()));
    }
    Ok(Some(sub))
}

fn parse_num<T: std::str::FromStr>(value: Option<&String>, flag: &str) -> Result<T, UsageError> {
    value
        .ok_or_else(|| UsageError(format!("{flag} needs a value")))?
        .parse()
        .map_err(|_| UsageError(format!("{flag} must be a non-negative integer")))
}

fn arg<'a>(args: &'a [String], i: usize, name: &str) -> Result<&'a str, UsageError> {
    args.get(i).map(String::as_str).ok_or_else(|| UsageError(format!("missing {name} argument")))
}

fn load(path: &str) -> Result<ModelFile, UsageError> {
    let source = std::fs::read_to_string(path)
        .map_err(|e| UsageError(format!("cannot read {path:?}: {e}")))?;
    parse_model(&source).map_err(|e| UsageError(format!("{path}: {e}")))
}

fn info(path: &str) -> Result<(), UsageError> {
    let model = load(path)?;
    println!("kind:    {}", model.kind());
    println!("states:  {}", model.num_states());
    match &model {
        ModelFile::Dtmc(m) => {
            println!("transitions: {}", m.num_transitions());
            println!("initial: {}", m.initial_state());
            let labels: Vec<&str> = m.labeling().labels().collect();
            println!("labels:  {}", labels.join(", "));
            let rewards: Vec<&str> = m.reward_structures().map(|r| r.name()).collect();
            println!("rewards: {}", rewards.join(", "));
        }
        ModelFile::Mdp(m) => {
            println!("choices: {}", m.total_choices());
            println!("actions: {}", m.action_names().join(", "));
            println!("initial: {}", m.initial_state());
            let labels: Vec<&str> = m.labeling().labels().collect();
            println!("labels:  {}", labels.join(", "));
            let rewards: Vec<&str> = m.reward_structures().map(|r| r.name()).collect();
            println!("rewards: {}", rewards.join(", "));
        }
        ModelFile::IntervalDtmc(m) => {
            println!("transitions: {}", m.num_transitions());
            println!("initial: {}", m.initial_state());
            let labels: Vec<&str> = m.labeling().labels().collect();
            println!("labels:  {}", labels.join(", "));
            let rewards: Vec<&str> = m.reward_structures().map(|r| r.name()).collect();
            println!("rewards: {}", rewards.join(", "));
        }
        ModelFile::IntervalMdp(m) => {
            println!("actions: {}", m.action_names().join(", "));
            println!("initial: {}", m.initial_state());
            let labels: Vec<&str> = m.labeling().labels().collect();
            println!("labels:  {}", labels.join(", "));
            let rewards: Vec<&str> = m.reward_structures().map(|r| r.name()).collect();
            println!("rewards: {}", rewards.join(", "));
        }
    }
    Ok(())
}

fn check(path: &str, property: &str, opts: &CliOptions) -> Result<u8, UsageError> {
    let model = load(path)?;
    let phi = parse_formula(property).map_err(|e| UsageError(e.to_string()))?;
    let checker = Checker::new().with_budget(opts.budget.clone());
    // Interval models (and --robust point chains, wrapped in their Wilson
    // confidence ball) take the robust path: a [pessimistic, optimistic]
    // bracket over every member of the uncertainty set.
    let robust = match &model {
        ModelFile::IntervalDtmc(m) => Some(checker.check_interval_dtmc(m, &phi)),
        ModelFile::IntervalMdp(m) => Some(checker.check_interval_mdp(m, &phi)),
        ModelFile::Dtmc(m) if opts.robust.enabled => {
            let (confidence, samples) = opts.robust.spec()?;
            let ball = tml_models::IntervalDtmc::wilson_around(m, confidence, samples)
                .map_err(|e| UsageError(e.to_string()))?;
            println!("robust: Wilson ball at {confidence} confidence, sample size {samples}");
            Some(checker.check_interval_dtmc(&ball, &phi))
        }
        ModelFile::Mdp(_) if opts.robust.enabled => {
            return Err(UsageError(
                "--robust needs per-transition confidence intervals; point MDPs have none \
                 (write an interval mdp model with lo..hi probabilities instead)"
                    .into(),
            ));
        }
        _ => None,
    };
    if let Some(result) = robust {
        let result = result.map_err(|e| UsageError(e.to_string()))?;
        println!("property:   {phi}");
        println!("robustly holds at initial state: {}", result.holds());
        let count = result.sat_mask().iter().filter(|&&b| b).count();
        println!("robustly satisfying states ({count})");
        if let Some((lo, hi)) = result.bracket_at_initial() {
            println!("value bracket at initial state: [{lo}, {hi}]");
        }
        print!("{}", result.diagnostics().render_degradation());
        if let Some(trajectories) = opts.simulate {
            simulate_cross_check(&model, &phi, trajectories)?;
        }
        return Ok(if result.holds() { 0 } else { 1 });
    }
    let result = match &model {
        ModelFile::Dtmc(m) => checker.check_dtmc(m, &phi),
        ModelFile::Mdp(m) => checker.check_mdp(m, &phi),
        // Interval models returned above.
        ModelFile::IntervalDtmc(_) | ModelFile::IntervalMdp(_) => unreachable!(),
    }
    .map_err(|e| UsageError(e.to_string()))?;
    println!("property:   {phi}");
    println!("holds at initial state: {}", result.holds());
    println!("satisfying states ({}): {:?}", result.count(), result.sat_states());
    if let Some(v) = result.value_at_initial() {
        println!("value at initial state: {v}");
    }
    print!("{}", result.diagnostics().render_degradation());
    if let Some(trajectories) = opts.simulate {
        simulate_cross_check(&model, &phi, trajectories)?;
    }
    // Distinguish "property violated" (exit 1) from usage errors (2).
    Ok(if result.holds() { 0 } else { 1 })
}

/// Monte Carlo cross-check for `check --simulate N`: re-estimates the
/// property on the same model with the conformance simulator and prints
/// the confidence interval next to the exact verdict.
fn simulate_cross_check(
    model: &ModelFile,
    phi: &tml_logic::StateFormula,
    trajectories: u64,
) -> Result<(), UsageError> {
    let ModelFile::Dtmc(m) = model else {
        println!("simulation cross-check: skipped (simulation is defined for point dtmc models)");
        return Ok(());
    };
    let sim = Simulator::new(SimOptions { trajectories, ..SimOptions::default() });
    match sim.check_formula(m, phi) {
        Ok(check) => {
            let iv = check.interval();
            println!(
                "simulation cross-check ({trajectories} trajectories): estimate {} in [{}, {}]",
                iv.estimate, iv.low, iv.high
            );
            println!("simulation verdict: {:?}", check.verdict());
        }
        Err(e) => {
            println!("simulation cross-check: unavailable ({e})");
        }
    }
    Ok(())
}

fn query(path: &str, q: &str, budget: &Budget) -> Result<(), UsageError> {
    let model = load(path)?;
    let parsed = parse_query(q).map_err(|e| UsageError(e.to_string()))?;
    let checker = Checker::new().with_budget(budget.clone());
    // Interval models answer with a robust bracket per state, not a value.
    let robust = match &model {
        ModelFile::IntervalDtmc(m) => Some((
            checker.query_interval_dtmc_diag(m, &parsed).map_err(|e| UsageError(e.to_string()))?,
            m.initial_state(),
        )),
        ModelFile::IntervalMdp(m) => Some((
            checker
                .query_interval_mdp(m, &parsed)
                .map(|b| (b, tml_checker::Diagnostics::default()))
                .map_err(|e| UsageError(e.to_string()))?,
            m.initial_state(),
        )),
        _ => None,
    };
    if let Some(((bracket, diag), initial)) = robust {
        println!("query: {parsed}");
        for s in 0..model.num_states() {
            let (lo, hi) = bracket.at(s);
            println!("  state {s}: [{lo}, {hi}]");
        }
        let (lo, hi) = bracket.at(initial);
        println!("bracket at initial state {initial}: [{lo}, {hi}]");
        print!("{}", diag.render_degradation());
        return Ok(());
    }
    let (values, diag) = match &model {
        ModelFile::Dtmc(m) => checker.query_dtmc_diag(m, &parsed),
        ModelFile::Mdp(m) => checker.query_mdp_diag(m, &parsed),
        ModelFile::IntervalDtmc(_) | ModelFile::IntervalMdp(_) => unreachable!(),
    }
    .map_err(|e| UsageError(e.to_string()))?;
    println!("query: {parsed}");
    for (s, v) in values.iter().enumerate() {
        println!("  state {s}: {v}");
    }
    let initial = match &model {
        ModelFile::Dtmc(m) => m.initial_state(),
        ModelFile::Mdp(m) => m.initial_state(),
        ModelFile::IntervalDtmc(_) | ModelFile::IntervalMdp(_) => unreachable!(),
    };
    println!("value at initial state {initial}: {}", values[initial]);
    print!("{}", diag.render_degradation());
    Ok(())
}

/// `tml repair`: Model Repair over the perturbation template declared with
/// `--param`/`--nudge`. See `tml_core::ModelRepair` for the algorithm and
/// DESIGN.md §15 for the lifting strategy and its certificate.
fn repair(path: &str, property: &str, opts: &CliOptions) -> Result<u8, UsageError> {
    use tml_core::{
        ModelRepair, PerturbationTemplate, RepairOptions, RepairStatus, RepairStrategy,
    };

    let model = load(path)?;
    let ModelFile::Dtmc(m) = &model else {
        return Err(UsageError(
            "repair is defined for point dtmc models (--nudge addresses FROM:TO transitions; \
             use --robust to repair against an uncertainty ball around a point chain)"
                .into(),
        ));
    };
    let phi = parse_formula(property).map_err(|e| UsageError(e.to_string()))?;
    let flags = &opts.repair;
    if flags.params.is_empty() {
        return Err(UsageError("repair needs at least one --param NAME:LO:HI".into()));
    }
    if flags.nudges.is_empty() {
        return Err(UsageError("repair needs at least one --nudge FROM:TO:PARAM:COEFF".into()));
    }
    let strategy = match flags.strategy.as_deref() {
        None | Some("penalty") => RepairStrategy::Penalty,
        Some("lifting") => RepairStrategy::Lifting,
        Some("auto") => RepairStrategy::Auto,
        Some(other) => {
            return Err(UsageError(format!(
                "unknown strategy {other:?} (expected penalty, lifting or auto)"
            )));
        }
    };

    let mut template = PerturbationTemplate::new();
    let mut index = std::collections::HashMap::new();
    for spec in &flags.params {
        let parts: Vec<&str> = spec.split(':').collect();
        let [name, lo, hi] = parts[..] else {
            return Err(UsageError(format!("--param {spec:?}: expected NAME:LO:HI")));
        };
        let lo: f64 =
            lo.parse().map_err(|_| UsageError(format!("--param {spec:?}: LO must be a number")))?;
        let hi: f64 =
            hi.parse().map_err(|_| UsageError(format!("--param {spec:?}: HI must be a number")))?;
        if index.contains_key(name) {
            return Err(UsageError(format!("--param {spec:?}: duplicate parameter {name:?}")));
        }
        index.insert(name.to_owned(), template.parameter(name, lo, hi));
    }
    for spec in &flags.nudges {
        let parts: Vec<&str> = spec.split(':').collect();
        let [from, to, param, coeff] = parts[..] else {
            return Err(UsageError(format!("--nudge {spec:?}: expected FROM:TO:PARAM:COEFF")));
        };
        let from: usize = from
            .parse()
            .map_err(|_| UsageError(format!("--nudge {spec:?}: FROM must be a state index")))?;
        let to: usize = to
            .parse()
            .map_err(|_| UsageError(format!("--nudge {spec:?}: TO must be a state index")))?;
        let coeff: f64 = coeff
            .parse()
            .map_err(|_| UsageError(format!("--nudge {spec:?}: COEFF must be a number")))?;
        let &p = index
            .get(param)
            .ok_or_else(|| UsageError(format!("--nudge {spec:?}: unknown parameter {param:?}")))?;
        template
            .nudge(from, to, p, coeff)
            .map_err(|e| UsageError(format!("--nudge {spec}: {e}")))?;
    }

    let robust = if opts.robust.enabled {
        let (confidence, samples) = opts.robust.spec()?;
        Some(tml_core::RobustSpec { confidence, sample_size: samples })
    } else {
        None
    };
    let ropts = RepairOptions { strategy, robust, ..RepairOptions::default() };
    let outcome = ModelRepair::with_options(ropts)
        .with_budget(opts.budget.clone())
        .repair_dtmc(m, &phi, &template)
        .map_err(|e| UsageError(e.to_string()))?;

    println!("property: {phi}");
    if let Some(rs) = &robust {
        println!(
            "robust:   every member of the Wilson ball at {} confidence (sample size {}) \
             must satisfy the property",
            rs.confidence, rs.sample_size
        );
    }
    println!("status:   {:?}", outcome.status);
    for (name, value) in &outcome.parameters {
        println!("  {name} = {value}");
    }
    println!("cost (Frobenius): {}", outcome.cost);
    println!("verified: {}", outcome.verified);
    println!("solver evaluations: {}", outcome.evaluations);
    if let Some(cert) = &outcome.certificate {
        println!(
            "certificate: cost in [{}, {}] (epsilon {}, certified: {})",
            cert.lower_bound, cert.upper_bound, cert.epsilon, cert.certified
        );
    }
    for fallback in &outcome.diagnostics.fallbacks {
        println!("fallback: {fallback}");
    }
    print!("{}", outcome.diagnostics.render_degradation());
    // Calibration price: report the non-robust repair's cost next to the
    // robust one, so the user sees what the confidence margin costs.
    if robust.is_some() {
        let nominal =
            ModelRepair::with_options(RepairOptions { strategy, ..RepairOptions::default() })
                .with_budget(opts.budget.clone())
                .repair_dtmc(m, &phi, &template);
        match nominal {
            Ok(n)
                if matches!(n.status, RepairStatus::Repaired | RepairStatus::AlreadySatisfied) =>
            {
                println!("non-robust cost (for comparison): {}", n.cost);
            }
            Ok(n) => println!("non-robust repair: {:?}", n.status),
            Err(e) => println!("non-robust repair: error ({e})"),
        }
    }
    // Mirror `check`: feasibility failures exit 1, usage errors exit 2.
    Ok(match outcome.status {
        RepairStatus::Repaired | RepairStatus::AlreadySatisfied => 0,
        RepairStatus::Infeasible | RepairStatus::BudgetExhausted => 1,
    })
}

fn simulate(path: &str, steps: Option<&str>, seed: Option<&str>) -> Result<(), UsageError> {
    let model = load(path)?;
    let steps: usize = steps
        .unwrap_or("25")
        .parse()
        .map_err(|_| UsageError("STEPS must be a non-negative integer".into()))?;
    let seed: u64 = seed
        .unwrap_or("0")
        .parse()
        .map_err(|_| UsageError("SEED must be a non-negative integer".into()))?;
    let mut rng = StdRng::seed_from_u64(seed);
    match &model {
        ModelFile::Dtmc(m) => {
            let path = m.sample_path(&mut rng, steps, |_| false);
            println!("trajectory: {path:?}");
        }
        ModelFile::Mdp(m) => {
            let uniform = StochasticPolicy::uniform(m);
            let path = m.sample_path(&mut rng, steps, |r, s| uniform.sample(r, s), |_| false);
            println!("states:  {:?}", path.states);
            let actions: Vec<&str> = path.actions.iter().map(|&a| m.action_name(a)).collect();
            println!("actions: {actions:?}");
        }
        ModelFile::IntervalDtmc(m) => {
            // An interval chain is a *set* of chains; sample its nominal
            // (midpoint, renormalized) member and say so.
            let nominal = m.nominal_dtmc().map_err(|e| UsageError(e.to_string()))?;
            println!("interval model: simulating the nominal (midpoint) member");
            let path = nominal.sample_path(&mut rng, steps, |_| false);
            println!("trajectory: {path:?}");
        }
        ModelFile::IntervalMdp(_) => {
            return Err(UsageError(
                "simulate is not defined for interval mdp models (no single member to sample)"
                    .into(),
            ));
        }
    }
    Ok(())
}

fn witness(path: &str, label: &str) -> Result<(), UsageError> {
    let model = load(path)?;
    let ModelFile::Dtmc(m) = &model else {
        return Err(UsageError("witness extraction is defined for dtmc models".into()));
    };
    let target = m.labeling().mask(label);
    if !target.iter().any(|&t| t) {
        return Err(UsageError(format!("no state carries label {label:?}")));
    }
    match tml_checker::dtmc::most_probable_path(m, m.initial_state(), &target) {
        Some((states, prob)) => {
            println!("most probable path to {label:?}: {states:?}");
            println!("path probability: {prob}");
            Ok(())
        }
        None => {
            println!("no {label:?} state is reachable from the initial state");
            Ok(())
        }
    }
}

/// `tml batch`: run (or resume) a crash-consistent batch of seeded
/// learn/verify/repair jobs. See `tml_runtime` for the executor and
/// DESIGN.md §11 for the journal format and the resume contract.
fn batch(count: Option<&str>, flags: &BatchFlags) -> Result<u8, UsageError> {
    use tml_runtime::journal::{parse_journal_bytes, render_report, Journal};
    use tml_runtime::{run_batch, BatchOptions, ChaosSpec};

    if flags.kill_after.is_some() && flags.journal.is_none() {
        return Err(UsageError(
            "--kill-after needs --journal (there is nothing to resume from otherwise)".into(),
        ));
    }

    // Resolve the options either from flags (fresh run) or from the
    // journal's meta record (resume — no flags need repeating).
    let (mut opts, resume_state) = match &flags.resume {
        Some(path) => {
            if count.is_some() {
                return Err(UsageError(
                    "--resume takes the job count from the journal; drop COUNT".into(),
                ));
            }
            // Bytes, not a string: a `kill -9` can tear the final line
            // mid-UTF-8, which must not make the journal unresumable.
            let bytes = std::fs::read(path)
                .map_err(|e| UsageError(format!("cannot read journal {path:?}: {e}")))?;
            let state = parse_journal_bytes(&bytes).map_err(UsageError)?;
            let cfg = &state.config;
            let mut opts = BatchOptions::new(cfg.corpus_seed, cfg.jobs);
            opts.retry.max_attempts = cfg.max_attempts;
            opts.workers = cfg.workers;
            opts.chaos = match &cfg.chaos {
                Some(spec) => Some(ChaosSpec::parse(spec).map_err(UsageError)?),
                None => None,
            };
            (opts, Some(state))
        }
        None => {
            let count: u64 = count
                .ok_or_else(|| UsageError("missing COUNT argument".into()))?
                .parse()
                .map_err(|_| UsageError("COUNT must be a positive integer".into()))?;
            if count == 0 {
                return Err(UsageError("COUNT must be a positive integer".into()));
            }
            let mut opts = BatchOptions::new(flags.corpus_seed, count);
            opts.retry.max_attempts = flags.retries;
            opts.workers = flags.workers;
            opts.chaos = match &flags.chaos {
                Some(spec) => Some(ChaosSpec::parse(spec).map_err(UsageError)?),
                None => None,
            };
            (opts, None)
        }
    };
    opts.kill_after = flags.kill_after;
    opts.hard_kill = flags.kill_after.is_some();
    let config = opts.config();

    let outcomes = if resume_state.as_ref().is_some_and(|s| s.complete) {
        // Nothing to re-run: the journal already holds the whole batch.
        resume_state.as_ref().map(|s| s.outcomes.clone()).unwrap_or_default()
    } else {
        // A fresh run creates its journal; a resume appends to it. With no
        // --journal the WAL lives (uselessly but harmlessly) in memory.
        let result = match (&flags.resume, &flags.journal) {
            (Some(path), _) | (None, Some(path)) => {
                let file = if resume_state.is_some() {
                    std::fs::OpenOptions::new().append(true).open(path)
                } else {
                    std::fs::File::create(path)
                }
                .map_err(|e| UsageError(format!("cannot open journal {path:?}: {e}")))?;
                let journal = match &resume_state {
                    Some(state) => Journal::reopen(file, state.outcomes.len() as u64),
                    None => Journal::create(file, &config),
                }
                .map_err(|e| UsageError(format!("cannot write journal {path:?}: {e}")))?;
                run_batch(&opts, &journal, resume_state.as_ref())
            }
            (None, None) => {
                let journal = Journal::create(Vec::new(), &config)
                    .map_err(|e| UsageError(format!("journal: {e}")))?;
                run_batch(&opts, &journal, None)
            }
        }
        .map_err(|e| UsageError(format!("journal write failed: {e}")))?;
        result.outcomes
    };

    let report = render_report(&config, &outcomes);
    match &flags.report {
        Some(path) => std::fs::write(path, &report)
            .map_err(|e| UsageError(format!("cannot write report {path:?}: {e}")))?,
        None => print!("{report}"),
    }

    let failed = outcomes.iter().filter(|o| o.status == tml_runtime::JobStatus::Failed).count();
    let retries: u64 = outcomes.iter().map(|o| u64::from(o.attempts.saturating_sub(1))).sum();
    eprintln!(
        "batch: {} jobs concluded ({failed} failed, {retries} retries){}",
        outcomes.len(),
        if resume_state.is_some() { " [resumed]" } else { "" },
    );
    Ok(0)
}

/// `tml trace`: offline analysis of one or more `tml-trace/v1` files.
/// Multiple files (a killed run and its resume) re-link through shared
/// trace ids; a torn final line — the `kill -9` signature — is tolerated
/// and counted, any other unparseable line is an error.
fn trace_analyze(files: &[String], folded: bool) -> Result<(), UsageError> {
    if files.is_empty() {
        return Err(UsageError("missing TRACE file argument".into()));
    }
    let mut contents = Vec::with_capacity(files.len());
    for path in files {
        let bytes = std::fs::read(path)
            .map_err(|e| UsageError(format!("cannot read trace {path:?}: {e}")))?;
        contents.push(bytes);
    }
    let inputs: Vec<(&str, &[u8])> =
        files.iter().map(String::as_str).zip(contents.iter().map(Vec::as_slice)).collect();
    let analysis = tml_telemetry::analysis::parse_trace_bytes(&inputs).map_err(UsageError)?;
    if folded {
        print!("{}", analysis.folded());
    } else {
        print!("{}", analysis.render_summary());
    }
    Ok(())
}

/// `tml serve`: run the repair service until a drain (SIGTERM, SIGINT or
/// `POST /admin/drain`) completes. See `tml_serve` for the admission
/// pipeline and DESIGN.md §12 for the failure matrix.
fn serve(batch: &BatchFlags, flags: &ServeFlags) -> Result<u8, UsageError> {
    use tml_runtime::ChaosSpec;
    use tml_serve::server::{RunOutcome, ServeOptions, Server};

    let Some(journal) = &batch.journal else {
        return Err(UsageError(
            "serve needs --journal (every accepted job is journaled before the \
             client sees the acceptance)"
                .into(),
        ));
    };
    let mut opts = ServeOptions::new(journal);
    opts.addr = flags.addr.clone();
    opts.workers = batch.workers;
    opts.queue_depth = flags.queue_depth;
    opts.drain_ms = flags.drain_ms;
    opts.request_log = flags.request_log.clone().map(Into::into);
    opts.corpus_seed = batch.corpus_seed;
    opts.retry.max_attempts = batch.retries;
    opts.chaos = match &batch.chaos {
        Some(spec) => Some(ChaosSpec::parse(spec).map_err(UsageError)?),
        None => None,
    };
    // From the CLI a kill is the real thing: exit(137), like `kill -9`.
    opts.kill_after = batch.kill_after;
    opts.hard_kill = true;

    let server =
        Server::bind(opts).map_err(|e| UsageError(format!("cannot start service: {e}")))?;
    let addr = server.addr().map_err(|e| UsageError(format!("cannot resolve address: {e}")))?;
    // Scripts (and the CI smoke) scrape the port from this line.
    println!("serve: listening on {addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    match server.run().map_err(|e| UsageError(format!("service failed: {e}")))? {
        RunOutcome::Drained => {
            eprintln!("serve: drained; un-started jobs remain journaled for the next start");
            Ok(0)
        }
        // Unreachable with hard_kill (the process exits 137 instead), but
        // keep the soft-crash path honest.
        RunOutcome::Crashed => Ok(137),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("tml-cli-test-{name}-{}", std::process::id()));
        std::fs::write(&path, contents).expect("write temp model");
        path
    }

    const CHAIN: &str = "dtmc\nstates 2\nlabel \"done\" = 1\n0 -> 1: 0.9, 0: 0.1\n1 -> 1: 1.0\n";
    const MDP: &str = "mdp\nstates 2\nlabel \"done\" = 1\n0 [go] -> 1: 1.0\n0 [stay] -> 0: 1.0\n1 [stay] -> 1: 1.0\n";

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn info_check_query_simulate_roundtrip() {
        let chain = write_temp("chain", CHAIN);
        let p = chain.to_str().unwrap();
        assert!(run(&s(&["info", p])).is_ok());
        assert!(run(&s(&["check", p, "P>=0.5 [ F \"done\" ]"])).is_ok());
        assert!(run(&s(&["query", p, "P=? [ F \"done\" ]"])).is_ok());
        assert!(run(&s(&["simulate", p, "5", "1"])).is_ok());
        let _ = std::fs::remove_file(chain);
    }

    #[test]
    fn mdp_commands_work() {
        let mdp = write_temp("mdp", MDP);
        let p = mdp.to_str().unwrap();
        assert!(run(&s(&["info", p])).is_ok());
        assert!(run(&s(&["check", p, "Pmax>=1 [ F \"done\" ]"])).is_ok());
        assert!(run(&s(&["query", p, "Pmin=? [ F \"done\" ]"])).is_ok());
        assert!(run(&s(&["simulate", p])).is_ok());
        let _ = std::fs::remove_file(mdp);
    }

    #[test]
    fn witness_command() {
        let chain = write_temp("chain-witness", CHAIN);
        let p = chain.to_str().unwrap();
        assert!(run(&s(&["witness", p, "done"])).is_ok());
        assert!(run(&s(&["witness", p, "no_such_label"])).is_err());
        let _ = std::fs::remove_file(chain);
        let mdp = write_temp("mdp-witness", MDP);
        let pm = mdp.to_str().unwrap();
        assert!(run(&s(&["witness", pm, "done"])).is_err());
        let _ = std::fs::remove_file(mdp);
    }

    // Reaches "done" with probability in [0.7, 0.95] (adversary's choice);
    // state 2 is an absorbing failure.
    const INTERVAL_CHAIN: &str = "idtmc\nstates 3\nlabel \"done\" = 1\n0 -> 1: 0.7..0.95, 2: 0.05..0.3\n1 -> 1: 1.0\n2 -> 2: 1.0\n";
    // Bracket over schedulers AND members: [min(0.6, 0.5), max(0.9, 0.5)].
    const INTERVAL_MDP: &str = "imdp\nstates 3\nlabel \"done\" = 1\n0 [go] -> 1: 0.6..0.9, 2: 0.1..0.4\n0 [safe] -> 1: 0.5, 2: 0.5\n1 [stay] -> 1: 1.0\n2 [stay] -> 2: 1.0\n";

    #[test]
    fn interval_models_check_and_query_robustly() {
        let chain = write_temp("ichain", INTERVAL_CHAIN);
        let p = chain.to_str().unwrap();
        assert!(run(&s(&["info", p])).is_ok());
        // Pessimistic member reaches with 0.7: the 0.6 bound robustly holds,
        // the 0.8 bound does not (exit 1).
        assert_eq!(run(&s(&["check", p, "P>=0.6 [ F \"done\" ]"])).unwrap(), 0);
        assert_eq!(run(&s(&["check", p, "P>=0.8 [ F \"done\" ]"])).unwrap(), 1);
        assert!(run(&s(&["query", p, "P=? [ F \"done\" ]"])).is_ok());
        // Simulation falls back to the nominal member.
        assert!(run(&s(&["simulate", p, "5", "1"])).is_ok());
        let _ = std::fs::remove_file(chain);
        let mdp = write_temp("imdp", INTERVAL_MDP);
        let pm = mdp.to_str().unwrap();
        assert!(run(&s(&["info", pm])).is_ok());
        assert_eq!(run(&s(&["check", pm, "Pmax>=0.5 [ F \"done\" ]"])).unwrap(), 0);
        assert!(run(&s(&["query", pm, "Pmax=? [ F \"done\" ]"])).is_ok());
        assert!(run(&s(&["simulate", pm])).is_err());
        let _ = std::fs::remove_file(mdp);
    }

    #[test]
    fn robust_check_wraps_point_chains_in_the_wilson_ball() {
        let chain = write_temp("chain-robust", CHAIN);
        let p = chain.to_str().unwrap();
        // Nominal: P(F done) = 1 (the 0→0 edge retries forever), so even the
        // pessimistic member keeps reaching "done": robustly holds.
        assert_eq!(run(&s(&["check", p, "P>=0.9 [ F \"done\" ]", "--robust"])).unwrap(), 0);
        // One-step reachability is 0.9 on the nose; the 95% ball dips below.
        assert_eq!(run(&s(&["check", p, "P>=0.9 [ X \"done\" ]"])).unwrap(), 0);
        assert_eq!(run(&s(&["check", p, "P>=0.9 [ X \"done\" ]", "--robust"])).unwrap(), 1);
        // Flag validation.
        assert!(run(&s(&["check", p, "P>=0.9 [ X \"done\" ]", "--robust", "--confidence", "2"]))
            .is_err());
        assert!(
            run(&s(&["check", p, "P>=0.9 [ X \"done\" ]", "--robust", "--samples", "-1"])).is_err()
        );
        let _ = std::fs::remove_file(chain);
        // Point MDPs carry no confidence information: usage error.
        let mdp = write_temp("mdp-robust", MDP);
        let pm = mdp.to_str().unwrap();
        assert!(run(&s(&["check", pm, "Pmax>=1 [ F \"done\" ]", "--robust"])).is_err());
        let _ = std::fs::remove_file(mdp);
    }

    #[test]
    fn robust_repair_reports_both_costs() {
        let chain = write_temp("chain-robust-repair", REPAIR_CHAIN);
        let p = chain.to_str().unwrap();
        let mut argv = vec!["repair", p, "P>=0.9 [ F \"ok\" ]"];
        argv.extend_from_slice(&[
            "--param",
            "v:-0.19:0.19",
            "--nudge",
            "0:1:v:1",
            "--nudge",
            "0:2:v:-1",
            "--robust",
            "--confidence",
            "0.95",
        ]);
        assert_eq!(run(&s(&argv)).unwrap(), 0);
        let _ = std::fs::remove_file(chain);
    }

    #[test]
    fn exit_codes_distinguish_holds_from_violated() {
        let chain = write_temp("chain-exit", CHAIN);
        let p = chain.to_str().unwrap();
        assert_eq!(run(&s(&["check", p, "P>=0.5 [ F \"done\" ]"])).unwrap(), 0);
        // F "done" holds with probability 1, so the <= 0.5 bound is violated.
        assert_eq!(run(&s(&["check", p, "P<=0.5 [ F \"done\" ]"])).unwrap(), 1);
        let _ = std::fs::remove_file(chain);
    }

    // Reaches "ok" with probability 0.8; repairable up to 0.95 by shifting
    // mass from the failure edge.
    const REPAIR_CHAIN: &str =
        "dtmc\nstates 3\nlabel \"ok\" = 1\n0 -> 1: 0.8, 2: 0.2\n1 -> 1: 1.0\n2 -> 2: 1.0\n";

    #[test]
    fn repair_command_all_strategies() {
        let chain = write_temp("chain-repair", REPAIR_CHAIN);
        let p = chain.to_str().unwrap();
        let template = ["--param", "v:-0.15:0.15", "--nudge", "0:1:v:1", "--nudge", "0:2:v:-1"];
        for strategy in ["penalty", "lifting", "auto"] {
            let mut argv = vec!["repair", p, "P>=0.9 [ F \"ok\" ]"];
            argv.extend_from_slice(&template);
            argv.extend_from_slice(&["--strategy", strategy]);
            assert_eq!(run(&s(&argv)).unwrap(), 0, "strategy {strategy}");
        }
        // The default strategy is penalty; no --strategy needed.
        let mut argv = vec!["repair", p, "P>=0.9 [ F \"ok\" ]"];
        argv.extend_from_slice(&template);
        assert_eq!(run(&s(&argv)).unwrap(), 0);
        // A bound past the template's reach is infeasible: exit code 1.
        let mut argv = vec!["repair", p, "P>=0.999 [ F \"ok\" ]"];
        argv.extend_from_slice(&template);
        assert_eq!(run(&s(&argv)).unwrap(), 1);
        let _ = std::fs::remove_file(chain);
    }

    #[test]
    fn repair_flag_validation() {
        let chain = write_temp("chain-repair-err", REPAIR_CHAIN);
        let p = chain.to_str().unwrap();
        let phi = "P>=0.9 [ F \"ok\" ]";
        // Missing template pieces.
        assert!(run(&s(&["repair", p, phi])).is_err());
        assert!(run(&s(&["repair", p, phi, "--param", "v:-0.1:0.1"])).is_err());
        // Malformed specs.
        let ok_nudge = ["--nudge", "0:1:v:1"];
        let with = |param: &str, rest: &[&str]| {
            let mut argv = vec!["repair", p, phi, "--param", param];
            argv.extend_from_slice(rest);
            run(&s(&argv))
        };
        assert!(with("v:low:high", &ok_nudge).is_err());
        assert!(with("v", &ok_nudge).is_err());
        assert!(with("v:-0.1:0.1", &["--nudge", "0:1:w:1"]).is_err());
        assert!(with("v:-0.1:0.1", &["--nudge", "0:1:v"]).is_err());
        assert!(with("v:-0.1:0.1", &["--param", "v:0:1", "--nudge", "0:1:v:1"]).is_err());
        assert!(with("v:-0.1:0.1", &["--nudge", "0:1:v:1", "--strategy", "magic"]).is_err());
        let _ = std::fs::remove_file(chain);
        // MDPs are rejected (nudges address FROM:TO transitions).
        let mdp = write_temp("mdp-repair", MDP);
        let pm = mdp.to_str().unwrap();
        assert!(
            run(&s(&["repair", pm, phi, "--param", "v:-0.1:0.1", "--nudge", "0:1:v:1"])).is_err()
        );
        let _ = std::fs::remove_file(mdp);
    }

    #[test]
    fn help_flag_and_command() {
        assert_eq!(run(&s(&["--help"])).unwrap(), 0);
        assert_eq!(run(&s(&["-h"])).unwrap(), 0);
        assert_eq!(run(&s(&["help"])).unwrap(), 0);
        // --help anywhere wins over the command, even an incomplete one.
        assert_eq!(run(&s(&["check", "--help"])).unwrap(), 0);
    }

    #[test]
    fn budget_flags_are_accepted_and_stripped() {
        let chain = write_temp("chain-budget", CHAIN);
        let p = chain.to_str().unwrap();
        // Generous budgets change nothing about the verdict.
        assert!(run(&s(&["check", p, "P>=0.5 [ F \"done\" ]", "--deadline-ms", "10000"])).is_ok());
        assert!(run(&s(&["--max-evals", "100000", "query", p, "P=? [ F \"done\" ]"])).is_ok());
        // A zero evaluation budget still returns (best-effort), no hang.
        assert!(run(&s(&["query", p, "P=? [ F \"done\" ]", "--max-evals", "0"])).is_ok());
        // --serial is accepted anywhere and changes no verdict.
        assert!(run(&s(&["--serial", "check", p, "P>=0.5 [ F \"done\" ]"])).is_ok());
        let _ = std::fs::remove_file(chain);
    }

    #[test]
    fn trace_json_writes_a_valid_trace_and_metrics_summarize() {
        // The global subscriber is process-wide state; serialize with every
        // other test that installs one.
        let _lock = tml_telemetry::TEST_MUTEX.lock().unwrap_or_else(|e| e.into_inner());
        let chain = write_temp("chain-trace", CHAIN);
        let p = chain.to_str().unwrap();
        let trace =
            std::env::temp_dir().join(format!("tml-cli-trace-{}.jsonl", std::process::id()));
        let t = trace.to_str().unwrap();
        let code = run(&s(&["check", p, "P>=0.5 [ F \"done\" ]", "--trace-json", t, "--metrics"]))
            .unwrap();
        assert_eq!(code, 0);
        let text = std::fs::read_to_string(&trace).expect("trace file written");
        let mut lines = text.lines();
        let meta = lines.next().expect("meta line");
        assert!(meta.contains("tml-trace/v1"), "first line is the schema meta: {meta}");
        assert!(text.contains("checker.check"), "checker span recorded");
        for line in text.lines() {
            tml_telemetry::json::parse(line).expect("every trace line is valid JSON");
        }

        // The recorded trace feeds straight into `tml trace`, both modes.
        assert_eq!(run(&s(&["trace", t])).unwrap(), 0);
        assert_eq!(run(&s(&["trace", t, "--folded"])).unwrap(), 0);

        let _ = std::fs::remove_file(&trace);
        let _ = std::fs::remove_file(chain);
    }

    #[test]
    fn trace_command_fails_closed() {
        assert!(run(&s(&["trace"])).is_err(), "needs at least one file");
        assert!(run(&s(&["trace", "/no/such/trace.jsonl"])).is_err());
        // Mid-file garbage is corruption, not a torn tail.
        let bad = write_temp(
            "bad-trace",
            "{\"type\":\"meta\",\"schema\":\"tml-trace/v1\"}\nnot json\n{\"type\":\"meta\",\"schema\":\"tml-trace/v1\"}\n",
        );
        assert!(run(&s(&["trace", bad.to_str().unwrap()])).is_err());
        let _ = std::fs::remove_file(bad);
    }

    #[test]
    fn metrics_without_trace_runs_standalone() {
        let _lock = tml_telemetry::TEST_MUTEX.lock().unwrap_or_else(|e| e.into_inner());
        let chain = write_temp("chain-metrics", CHAIN);
        let p = chain.to_str().unwrap();
        assert_eq!(run(&s(&["--metrics", "query", p, "P=? [ F \"done\" ]"])).unwrap(), 0);
        let _ = std::fs::remove_file(chain);
    }

    #[test]
    fn simulate_flag_cross_checks_dtmcs_and_skips_mdps() {
        let chain = write_temp("chain-simulate", CHAIN);
        let p = chain.to_str().unwrap();
        // F "done" has probability 1; simulation cannot refute it and the
        // exact verdict is unchanged.
        assert_eq!(
            run(&s(&["check", p, "P>=0.5 [ F \"done\" ]", "--simulate", "500"])).unwrap(),
            0
        );
        assert_eq!(
            run(&s(&["check", p, "P<=0.5 [ F \"done\" ]", "--simulate", "500"])).unwrap(),
            1
        );
        let _ = std::fs::remove_file(chain);
        // MDPs print a note instead of simulating; the command still works.
        let mdp = write_temp("mdp-simulate", MDP);
        let pm = mdp.to_str().unwrap();
        assert_eq!(
            run(&s(&["check", pm, "Pmax>=1 [ F \"done\" ]", "--simulate", "100"])).unwrap(),
            0
        );
        let _ = std::fs::remove_file(mdp);
        // Flag validation.
        assert!(run(&s(&["check", "--simulate"])).is_err());
        assert!(run(&s(&["check", "--simulate", "0"])).is_err());
        assert!(run(&s(&["check", "--simulate", "many"])).is_err());
    }

    #[test]
    fn budget_flag_errors() {
        assert!(run(&s(&["check", "--deadline-ms"])).is_err());
        assert!(run(&s(&["check", "--deadline-ms", "soon"])).is_err());
        assert!(run(&s(&["check", "--max-evals", "-3"])).is_err());
        assert!(run(&s(&["check", "--trace-json"])).is_err());
        assert!(run(&s(&["check", "--no-such-flag"])).is_err());
    }

    #[test]
    fn trace_json_rejects_unwritable_path() {
        let _lock = tml_telemetry::TEST_MUTEX.lock().unwrap_or_else(|e| e.into_inner());
        let chain = write_temp("chain-badtrace", CHAIN);
        let p = chain.to_str().unwrap();
        let bad = "/no/such/dir/trace.jsonl";
        assert!(run(&s(&["check", p, "P>=0.5 [ F \"done\" ]", "--trace-json", bad])).is_err());
        let _ = std::fs::remove_file(chain);
    }

    #[test]
    fn usage_errors() {
        assert!(run(&[]).is_err());
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&s(&["check"])).is_err());
        assert!(run(&s(&["check", "/no/such/file", "true"])).is_err());
        let chain = write_temp("chain-err", CHAIN);
        let p = chain.to_str().unwrap();
        assert!(run(&s(&["check", p, "P>=!bad"])).is_err());
        assert!(run(&s(&["simulate", p, "notanumber"])).is_err());
        let _ = std::fs::remove_file(chain);
    }
}
