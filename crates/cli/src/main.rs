//! `tml` — a small command-line front end for the trusted-ml workspace:
//! check PCTL properties, evaluate numeric queries and simulate models
//! written in the textual model format of `tml_models::dsl`.
//!
//! ```text
//! tml info     MODEL.tml
//! tml check    MODEL.tml 'P>=0.9 [ F "goal" ]'
//! tml query    MODEL.tml 'Rmax=? [ F "done" ]'
//! tml simulate MODEL.tml [STEPS] [SEED]
//! tml witness  MODEL.tml goal
//! ```

use std::process::ExitCode;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use tml_checker::{Budget, Checker, Diagnostics};
use tml_logic::{parse_formula, parse_query};
use tml_models::dsl::{parse_model, ModelFile};
use tml_models::StochasticPolicy;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(UsageError(msg)) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  tml info     MODEL            show model statistics
  tml check    MODEL PROPERTY   check a PCTL property (exit code 1 if violated)
  tml query    MODEL QUERY      evaluate a numeric query (P=?, Rmax=?, ...)
  tml simulate MODEL [STEPS] [SEED]
                                sample one trajectory (MDPs use the uniform policy)
  tml witness  MODEL LABEL      most probable path to a LABEL state (DTMCs)

options (check/query):
  --deadline-ms MS   wall-clock budget; past it, a best-effort result is
                     returned and marked degraded instead of running on
  --max-evals N      cap on solver sweeps/iterations, same best-effort rule
  --serial           run single-threaded (disables the parallel numerics
                     sweeps; results are identical either way)";

struct UsageError(String);

impl From<String> for UsageError {
    fn from(s: String) -> Self {
        UsageError(s)
    }
}

fn run(raw: &[String]) -> Result<(), UsageError> {
    let (args, budget) = parse_budget_flags(raw)?;
    let cmd = args.first().ok_or_else(|| UsageError("missing command".into()))?;
    match cmd.as_str() {
        "info" => info(arg(&args, 1, "MODEL")?),
        "check" => check(arg(&args, 1, "MODEL")?, arg(&args, 2, "PROPERTY")?, budget),
        "query" => query(arg(&args, 1, "MODEL")?, arg(&args, 2, "QUERY")?, budget),
        "simulate" => simulate(
            arg(&args, 1, "MODEL")?,
            args.get(2).map(String::as_str),
            args.get(3).map(String::as_str),
        ),
        "witness" => witness(arg(&args, 1, "MODEL")?, arg(&args, 2, "LABEL")?),
        other => Err(UsageError(format!("unknown command {other:?}"))),
    }
}

/// Strips `--deadline-ms MS`, `--max-evals N` and `--serial` (accepted
/// anywhere on the command line); budget flags fold into a [`Budget`],
/// `--serial` caps the rayon stand-in's thread count at one for the rest
/// of the process.
fn parse_budget_flags(raw: &[String]) -> Result<(Vec<String>, Budget), UsageError> {
    let mut args = Vec::with_capacity(raw.len());
    let mut budget = Budget::unlimited();
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--serial" => std::env::set_var("RAYON_NUM_THREADS", "1"),
            "--deadline-ms" => {
                let ms: u64 = it
                    .next()
                    .ok_or_else(|| UsageError("--deadline-ms needs a value".into()))?
                    .parse()
                    .map_err(|_| UsageError("--deadline-ms must be an integer".into()))?;
                budget = budget.with_deadline(Duration::from_millis(ms));
            }
            "--max-evals" => {
                let n: u64 = it
                    .next()
                    .ok_or_else(|| UsageError("--max-evals needs a value".into()))?
                    .parse()
                    .map_err(|_| UsageError("--max-evals must be an integer".into()))?;
                budget = budget.with_max_evaluations(n);
            }
            other if other.starts_with("--") => {
                return Err(UsageError(format!("unknown option {other:?}")));
            }
            _ => args.push(a.clone()),
        }
    }
    Ok((args, budget))
}

/// Prints how a budgeted run degraded, if it did.
fn report_degradation(diag: &Diagnostics) {
    if !diag.degraded() {
        return;
    }
    println!("degraded: result is best-effort, not exact");
    for event in &diag.fallbacks {
        println!("  fallback: {event}");
    }
    if diag.worst_residual > 0.0 {
        println!("  worst accepted residual: {:.3e}", diag.worst_residual);
    }
    if let Some(cause) = diag.exhausted {
        println!("  stopped early: {cause}");
    }
}

fn arg<'a>(args: &'a [String], i: usize, name: &str) -> Result<&'a str, UsageError> {
    args.get(i).map(String::as_str).ok_or_else(|| UsageError(format!("missing {name} argument")))
}

fn load(path: &str) -> Result<ModelFile, UsageError> {
    let source = std::fs::read_to_string(path)
        .map_err(|e| UsageError(format!("cannot read {path:?}: {e}")))?;
    parse_model(&source).map_err(|e| UsageError(format!("{path}: {e}")))
}

fn info(path: &str) -> Result<(), UsageError> {
    let model = load(path)?;
    println!("kind:    {}", model.kind());
    println!("states:  {}", model.num_states());
    match &model {
        ModelFile::Dtmc(m) => {
            println!("transitions: {}", m.num_transitions());
            println!("initial: {}", m.initial_state());
            let labels: Vec<&str> = m.labeling().labels().collect();
            println!("labels:  {}", labels.join(", "));
            let rewards: Vec<&str> = m.reward_structures().map(|r| r.name()).collect();
            println!("rewards: {}", rewards.join(", "));
        }
        ModelFile::Mdp(m) => {
            println!("choices: {}", m.total_choices());
            println!("actions: {}", m.action_names().join(", "));
            println!("initial: {}", m.initial_state());
            let labels: Vec<&str> = m.labeling().labels().collect();
            println!("labels:  {}", labels.join(", "));
            let rewards: Vec<&str> = m.reward_structures().map(|r| r.name()).collect();
            println!("rewards: {}", rewards.join(", "));
        }
    }
    Ok(())
}

fn check(path: &str, property: &str, budget: Budget) -> Result<(), UsageError> {
    let model = load(path)?;
    let phi = parse_formula(property).map_err(|e| UsageError(e.to_string()))?;
    let checker = Checker::new().with_budget(budget);
    let result = match &model {
        ModelFile::Dtmc(m) => checker.check_dtmc(m, &phi),
        ModelFile::Mdp(m) => checker.check_mdp(m, &phi),
    }
    .map_err(|e| UsageError(e.to_string()))?;
    println!("property:   {phi}");
    println!("holds at initial state: {}", result.holds());
    println!("satisfying states ({}): {:?}", result.count(), result.sat_states());
    if let Some(v) = result.value_at_initial() {
        println!("value at initial state: {v}");
    }
    report_degradation(result.diagnostics());
    if result.holds() {
        Ok(())
    } else {
        // Distinguish "property violated" (exit 1) from usage errors (2).
        std::process::exit(1);
    }
}

fn query(path: &str, q: &str, budget: Budget) -> Result<(), UsageError> {
    let model = load(path)?;
    let parsed = parse_query(q).map_err(|e| UsageError(e.to_string()))?;
    let checker = Checker::new().with_budget(budget);
    let (values, diag) = match &model {
        ModelFile::Dtmc(m) => checker.query_dtmc_diag(m, &parsed),
        ModelFile::Mdp(m) => checker.query_mdp_diag(m, &parsed),
    }
    .map_err(|e| UsageError(e.to_string()))?;
    println!("query: {parsed}");
    for (s, v) in values.iter().enumerate() {
        println!("  state {s}: {v}");
    }
    let initial = match &model {
        ModelFile::Dtmc(m) => m.initial_state(),
        ModelFile::Mdp(m) => m.initial_state(),
    };
    println!("value at initial state {initial}: {}", values[initial]);
    report_degradation(&diag);
    Ok(())
}

fn simulate(path: &str, steps: Option<&str>, seed: Option<&str>) -> Result<(), UsageError> {
    let model = load(path)?;
    let steps: usize = steps
        .unwrap_or("25")
        .parse()
        .map_err(|_| UsageError("STEPS must be a non-negative integer".into()))?;
    let seed: u64 = seed
        .unwrap_or("0")
        .parse()
        .map_err(|_| UsageError("SEED must be a non-negative integer".into()))?;
    let mut rng = StdRng::seed_from_u64(seed);
    match &model {
        ModelFile::Dtmc(m) => {
            let path = m.sample_path(&mut rng, steps, |_| false);
            println!("trajectory: {path:?}");
        }
        ModelFile::Mdp(m) => {
            let uniform = StochasticPolicy::uniform(m);
            let path = m.sample_path(&mut rng, steps, |r, s| uniform.sample(r, s), |_| false);
            println!("states:  {:?}", path.states);
            let actions: Vec<&str> = path.actions.iter().map(|&a| m.action_name(a)).collect();
            println!("actions: {actions:?}");
        }
    }
    Ok(())
}

fn witness(path: &str, label: &str) -> Result<(), UsageError> {
    let model = load(path)?;
    let ModelFile::Dtmc(m) = &model else {
        return Err(UsageError("witness extraction is defined for dtmc models".into()));
    };
    let target = m.labeling().mask(label);
    if !target.iter().any(|&t| t) {
        return Err(UsageError(format!("no state carries label {label:?}")));
    }
    match tml_checker::dtmc::most_probable_path(m, m.initial_state(), &target) {
        Some((states, prob)) => {
            println!("most probable path to {label:?}: {states:?}");
            println!("path probability: {prob}");
            Ok(())
        }
        None => {
            println!("no {label:?} state is reachable from the initial state");
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("tml-cli-test-{name}-{}", std::process::id()));
        std::fs::write(&path, contents).expect("write temp model");
        path
    }

    const CHAIN: &str = "dtmc\nstates 2\nlabel \"done\" = 1\n0 -> 1: 0.9, 0: 0.1\n1 -> 1: 1.0\n";
    const MDP: &str = "mdp\nstates 2\nlabel \"done\" = 1\n0 [go] -> 1: 1.0\n0 [stay] -> 0: 1.0\n1 [stay] -> 1: 1.0\n";

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn info_check_query_simulate_roundtrip() {
        let chain = write_temp("chain", CHAIN);
        let p = chain.to_str().unwrap();
        assert!(run(&s(&["info", p])).is_ok());
        assert!(run(&s(&["check", p, "P>=0.5 [ F \"done\" ]"])).is_ok());
        assert!(run(&s(&["query", p, "P=? [ F \"done\" ]"])).is_ok());
        assert!(run(&s(&["simulate", p, "5", "1"])).is_ok());
        let _ = std::fs::remove_file(chain);
    }

    #[test]
    fn mdp_commands_work() {
        let mdp = write_temp("mdp", MDP);
        let p = mdp.to_str().unwrap();
        assert!(run(&s(&["info", p])).is_ok());
        assert!(run(&s(&["check", p, "Pmax>=1 [ F \"done\" ]"])).is_ok());
        assert!(run(&s(&["query", p, "Pmin=? [ F \"done\" ]"])).is_ok());
        assert!(run(&s(&["simulate", p])).is_ok());
        let _ = std::fs::remove_file(mdp);
    }

    #[test]
    fn witness_command() {
        let chain = write_temp("chain-witness", CHAIN);
        let p = chain.to_str().unwrap();
        assert!(run(&s(&["witness", p, "done"])).is_ok());
        assert!(run(&s(&["witness", p, "no_such_label"])).is_err());
        let _ = std::fs::remove_file(chain);
        let mdp = write_temp("mdp-witness", MDP);
        let pm = mdp.to_str().unwrap();
        assert!(run(&s(&["witness", pm, "done"])).is_err());
        let _ = std::fs::remove_file(mdp);
    }

    #[test]
    fn budget_flags_are_accepted_and_stripped() {
        let chain = write_temp("chain-budget", CHAIN);
        let p = chain.to_str().unwrap();
        // Generous budgets change nothing about the verdict.
        assert!(run(&s(&["check", p, "P>=0.5 [ F \"done\" ]", "--deadline-ms", "10000"])).is_ok());
        assert!(run(&s(&["--max-evals", "100000", "query", p, "P=? [ F \"done\" ]"])).is_ok());
        // A zero evaluation budget still returns (best-effort), no hang.
        assert!(run(&s(&["query", p, "P=? [ F \"done\" ]", "--max-evals", "0"])).is_ok());
        // --serial is accepted anywhere and changes no verdict.
        assert!(run(&s(&["--serial", "check", p, "P>=0.5 [ F \"done\" ]"])).is_ok());
        let _ = std::fs::remove_file(chain);
    }

    #[test]
    fn budget_flag_errors() {
        assert!(run(&s(&["check", "--deadline-ms"])).is_err());
        assert!(run(&s(&["check", "--deadline-ms", "soon"])).is_err());
        assert!(run(&s(&["check", "--max-evals", "-3"])).is_err());
    }

    #[test]
    fn usage_errors() {
        assert!(run(&[]).is_err());
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&s(&["check"])).is_err());
        assert!(run(&s(&["check", "/no/such/file", "true"])).is_err());
        let chain = write_temp("chain-err", CHAIN);
        let p = chain.to_str().unwrap();
        assert!(run(&s(&["check", p, "P>=!bad"])).is_err());
        assert!(run(&s(&["simulate", p, "notanumber"])).is_err());
        let _ = std::fs::remove_file(chain);
    }
}
