//! Process-level tests for `tml serve`: a real `SIGKILL` mid-corpus, a
//! restart on the surviving journal, and a byte-compare of the final
//! report against an uninterrupted control server — the crate's central
//! crash-consistency contract, exercised through the shipped binary.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn temp_path(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("tml-serve-cli-{}-{name}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

struct Served {
    child: Child,
    addr: String,
}

/// Spawns `tml serve` and scrapes the bound address from its first
/// stdout line.
fn spawn_serve(journal: &Path, extra: &[&str]) -> Served {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_tml"));
    cmd.args(["serve", "--journal", journal.to_str().unwrap(), "--addr", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    let mut child = cmd.spawn().expect("spawn tml serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("read announce line");
    let addr = line
        .trim()
        .strip_prefix("serve: listening on ")
        .unwrap_or_else(|| panic!("unexpected announce line {line:?}"))
        .to_string();
    Served { child, addr }
}

/// One HTTP exchange against the served address.
fn http(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("write");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read");
    let text = String::from_utf8(raw).expect("utf8");
    let (head, body) = text.split_once("\r\n\r\n").expect("head/body");
    let status: u16 = head.split(' ').nth(1).and_then(|s| s.parse().ok()).expect("status");
    (status, body.to_string())
}

fn submit_corpus(addr: &str, index: u64) -> u16 {
    http(addr, "POST", "/v1/jobs", &format!("{{\"kind\":\"corpus\",\"index\":{index}}}")).0
}

fn await_report(addr: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, body) = http(addr, "GET", "/v1/report", "");
        if status == 200 {
            return body;
        }
        assert_eq!(status, 409, "report while pending: {body}");
        assert!(Instant::now() < deadline, "jobs did not conclude in 60s");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Drains via the admin endpoint and asserts a clean exit 0.
fn drain(mut served: Served) {
    let (status, _) = http(&served.addr, "POST", "/admin/drain", "");
    assert_eq!(status, 200);
    let exit = served.child.wait().expect("wait");
    assert_eq!(exit.code(), Some(0), "drained server exits 0");
}

const JOBS: u64 = 6;
// Every attempt sleeps 5-25ms: the SIGKILL below reliably lands mid-run,
// and the fault plan is identical (seeded) across victim and control.
const CHAOS: &[&str] = &["--chaos", "slow=1.0,seed=3", "--workers", "1", "--retries", "2"];

#[test]
fn sigkill_then_restart_converges_to_the_control_report() {
    // Victim: accept the whole corpus, then SIGKILL mid-run.
    let journal = temp_path("victim.jsonl");
    let reqlog = temp_path("victim-requests.jsonl");
    let mut extra: Vec<&str> = CHAOS.to_vec();
    let reqlog_s = reqlog.to_str().unwrap().to_string();
    extra.extend_from_slice(&["--request-log", &reqlog_s]);
    let mut victim = spawn_serve(&journal, &extra);
    for index in 0..JOBS {
        assert_eq!(submit_corpus(&victim.addr, index), 202, "every submission journaled");
    }
    victim.child.kill().expect("SIGKILL"); // kill(2) with SIGKILL: no drain, no flush
    victim.child.wait().expect("reap");

    // Restart on the surviving journal. Resubmitting the same corpus is
    // idempotent: completed jobs answer from the journal, in-flight ones
    // re-run under the warm-start rule.
    let revived = spawn_serve(&journal, CHAOS);
    for index in 0..JOBS {
        let status = submit_corpus(&revived.addr, index);
        assert!(
            status == 200 || status == 202,
            "resubmission dedups (200) or re-queues (202), got {status}"
        );
    }
    let resumed = await_report(&revived.addr);
    drain(revived);

    // Control: same corpus, same chaos plan, never killed.
    let control_journal = temp_path("control.jsonl");
    let control = spawn_serve(&control_journal, CHAOS);
    for index in 0..JOBS {
        assert_eq!(submit_corpus(&control.addr, index), 202);
    }
    let uninterrupted = await_report(&control.addr);
    drain(control);

    assert_eq!(
        resumed, uninterrupted,
        "SIGKILL + restart must converge byte-identically to the control report"
    );

    // The request log survived the kill as far as its last flushed line.
    let log = std::fs::read_to_string(&reqlog).expect("request log written");
    assert!(log.starts_with("{\"type\":\"meta\",\"schema\":\"tml-serve/v1\""), "log meta: {log}");

    for p in [journal, control_journal, reqlog] {
        let _ = std::fs::remove_file(p);
    }
}

#[cfg(unix)]
#[test]
fn sigterm_drains_and_exits_zero() {
    let journal = temp_path("sigterm.jsonl");
    let served = spawn_serve(&journal, &["--workers", "1", "--drain-ms", "5000"]);
    assert_eq!(submit_corpus(&served.addr, 0), 202);

    let ok = Command::new("kill")
        .args(["-TERM", &served.child.id().to_string()])
        .status()
        .expect("send SIGTERM")
        .success();
    assert!(ok, "kill -TERM delivered");

    let mut child = served.child;
    let exit = child.wait().expect("wait");
    assert_eq!(exit.code(), Some(0), "SIGTERM drain exits 0 (job journaled or finished)");

    // Whatever did not finish inside the drain window is recoverable: the
    // journal still holds the submission.
    let text = std::fs::read_to_string(&journal).expect("journal durable");
    assert!(text.contains("\"type\":\"submit\""), "submission survived: {text}");
    let _ = std::fs::remove_file(journal);
}
