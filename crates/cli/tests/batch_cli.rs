//! End-to-end `tml batch` tests against the real binary: a hard
//! `--kill-after` crash (exit 137), journal recovery with `--resume`, and
//! the byte-identity contract between a resumed report and an
//! uninterrupted control. Also pins the exit-code contract of usage
//! errors (exit 2) — including `check --simulate 0`.

use std::path::PathBuf;
use std::process::{Command, Output};

const TML: &str = env!("CARGO_BIN_EXE_tml");
const CHAOS: &str = "panic=0.3,nan=0.15,slow=0.05,seed=5";

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tml-batch-cli-{name}-{}", std::process::id()))
}

fn tml(args: &[&str]) -> Output {
    Command::new(TML).args(args).output().expect("spawn tml")
}

fn assert_code(out: &Output, code: i32, what: &str) {
    assert_eq!(
        out.status.code(),
        Some(code),
        "{what}: expected exit {code}, got {:?}\nstdout: {}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
}

#[test]
fn killed_batch_resumes_to_a_byte_identical_report() {
    let control_journal = tmp("control.journal");
    let control_report = tmp("control.report");
    let crashed_journal = tmp("crashed.journal");
    let crashed_report = tmp("crashed.report");

    // Uninterrupted control run.
    let out = tml(&[
        "batch",
        "12",
        "--corpus-seed",
        "41",
        "--chaos",
        CHAOS,
        "--journal",
        control_journal.to_str().unwrap(),
        "--report",
        control_report.to_str().unwrap(),
    ]);
    assert_code(&out, 0, "control batch");

    // Same batch, crashed mid-run: exit(137), no summary, torn-or-clean
    // journal on disk.
    let out = tml(&[
        "batch",
        "12",
        "--corpus-seed",
        "41",
        "--chaos",
        CHAOS,
        "--kill-after",
        "5",
        "--journal",
        crashed_journal.to_str().unwrap(),
        "--report",
        crashed_report.to_str().unwrap(),
    ]);
    assert_code(&out, 137, "killed batch");
    assert!(!crashed_report.exists(), "a killed run writes no report");
    let journal_text = std::fs::read_to_string(&crashed_journal).expect("journal survives");
    assert!(journal_text.lines().next().unwrap().contains("tml-journal/v1"));
    assert!(!journal_text.contains("\"type\":\"summary\""), "killed journal has no summary");

    // Resume from the journal alone — no flags repeated.
    let out = tml(&[
        "batch",
        "--resume",
        crashed_journal.to_str().unwrap(),
        "--report",
        crashed_report.to_str().unwrap(),
    ]);
    assert_code(&out, 0, "resumed batch");

    let control = std::fs::read(&control_report).expect("control report");
    let resumed = std::fs::read(&crashed_report).expect("resumed report");
    assert_eq!(control, resumed, "resumed report is byte-identical to the control");

    // The appended journal now parses as one resumed, in-progress stream.
    let resumed_journal = std::fs::read_to_string(&crashed_journal).unwrap();
    assert!(resumed_journal.contains("\"type\":\"resume\""));

    for p in [&control_journal, &control_report, &crashed_journal, &crashed_report] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn batch_without_journal_prints_report_to_stdout() {
    let out = tml(&["batch", "4", "--corpus-seed", "3", "--workers", "1"]);
    assert_code(&out, 0, "journal-less batch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 6, "meta + 4 outcomes + summary: {stdout}");
    assert!(lines[0].contains("tml-journal/v1"));
    assert!(lines[5].contains("\"type\":\"summary\""));
}

#[test]
fn batch_usage_errors_exit_2() {
    assert_code(&tml(&["batch"]), 2, "missing COUNT");
    assert_code(&tml(&["batch", "0"]), 2, "zero COUNT");
    assert_code(&tml(&["batch", "4", "--chaos", "panic=2"]), 2, "bad chaos spec");
    assert_code(&tml(&["batch", "4", "--kill-after", "2"]), 2, "--kill-after without --journal");
    assert_code(&tml(&["batch", "4", "--resume", "/no/such.jsonl"]), 2, "COUNT with --resume");
}

#[test]
fn check_simulate_zero_exits_2() {
    // `--simulate 0` asks for a cross-check with no trajectories; it must
    // be rejected as a usage error (exit 2), never run as a no-op check.
    let model = tmp("chain.tml");
    std::fs::write(&model, "dtmc\nstates 2\nlabel \"done\" = 1\n0 -> 1: 1.0\n1 -> 1: 1.0\n")
        .unwrap();
    let out = tml(&["check", model.to_str().unwrap(), "P>=0.5 [ F \"done\" ]", "--simulate", "0"]);
    assert_code(&out, 2, "check --simulate 0");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("at least one trajectory"), "explains the rejection: {stderr}");
    // Sanity: the same invocation with a real count succeeds.
    let out = tml(&["check", model.to_str().unwrap(), "P>=0.5 [ F \"done\" ]", "--simulate", "50"]);
    assert_code(&out, 0, "check --simulate 50");
    let _ = std::fs::remove_file(model);
}
