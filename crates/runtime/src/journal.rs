//! The `tml-journal/v1` write-ahead journal and the batch report.
//!
//! Every batch state transition is appended — and flushed — *before* the
//! work it describes proceeds, so after a `kill -9` the journal holds
//! every completed record plus at most one torn trailing line:
//!
//! ```text
//! {"type":"meta","schema":"tml-journal/v1","corpus_seed":"7","jobs":4,...}
//! {"type":"attempt","job":0,"attempt":1}
//! {"type":"checkpoint","job":0,"attempt":1,"stage":"model_repair","x":["3fe0000000000000"]}
//! {"type":"failure","job":0,"attempt":1,"kind":"panic","detail":"injected panic at verify"}
//! {"type":"attempt","job":0,"attempt":2}
//! {"type":"outcome","job":0,"attempts":2,"status":"model_repaired",...}
//! {"type":"summary","jobs":4,...}
//! ```
//!
//! [`parse_journal`] reconstructs a [`JournalState`] from such a file
//! (tolerating the torn tail), and the executor resumes from it: jobs with
//! an `outcome` record replay verbatim, in-flight jobs re-run from their
//! next attempt with warm starts taken from the checkpoints of *failed*
//! attempts only — the same fold-after-failure rule the in-memory path
//! applies, which is what makes the resumed report byte-identical to an
//! uninterrupted control run.
//!
//! Two encoding rules keep replay exact: 64-bit values that must
//! round-trip (the corpus seed, model fingerprints) travel as strings
//! because the JSON number lane is an `f64`, and solver points travel as
//! arrays of 16-hex-digit `f64::to_bits` words (see
//! `tml_optimizer::restart`).

use std::io::{self, Write};

use tml_core::pipeline::PipelineStage;
use tml_optimizer::restart;
use tml_telemetry::json;
use tml_telemetry::jsonl::{schema, JsonlWriter, LineBuilder};

use crate::job::{AttemptFailure, FailureKind, JobOutcome, JobStatus};

/// The batch configuration, persisted in the journal's `meta` record so
/// `--resume` needs no repeated command-line flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchConfig {
    /// Corpus seed: derives every job spec.
    pub corpus_seed: u64,
    /// Number of jobs in the batch.
    pub jobs: u64,
    /// Retry cap per job.
    pub max_attempts: u32,
    /// Worker threads.
    pub workers: u32,
    /// Canonical chaos spec, when fault injection is on.
    pub chaos: Option<String>,
}

fn meta_line(config: &BatchConfig) -> String {
    LineBuilder::meta(schema::JOURNAL)
        .str("corpus_seed", &config.corpus_seed.to_string())
        .u64("jobs", config.jobs)
        .u64("max_attempts", u64::from(config.max_attempts))
        .u64("workers", u64::from(config.workers))
        .opt_str("chaos", config.chaos.as_deref())
        .finish()
}

fn outcome_line(o: &JobOutcome) -> String {
    let fp = o.fingerprint.map(|f| format!("{f:016x}"));
    LineBuilder::record("outcome")
        .u64("job", o.job)
        .u64("attempts", u64::from(o.attempts))
        .str("status", o.status.name())
        .str("detail", &o.detail)
        .opt_str("fingerprint", fp.as_deref())
        .u64("evaluations", o.evaluations)
        .finish()
}

fn summary_line(config: &BatchConfig, outcomes: &[JobOutcome]) -> String {
    let count = |s: JobStatus| outcomes.iter().filter(|o| o.status == s).count() as u64;
    let retries: u64 = outcomes.iter().map(|o| u64::from(o.attempts.saturating_sub(1))).sum();
    LineBuilder::record("summary")
        .u64("jobs", config.jobs)
        .u64("satisfied", count(JobStatus::Satisfied))
        .u64("model_repaired", count(JobStatus::ModelRepaired))
        .u64("data_repaired", count(JobStatus::DataRepaired))
        .u64("unrepairable", count(JobStatus::Unrepairable))
        .u64("violated", count(JobStatus::Violated))
        .u64("failed", count(JobStatus::Failed))
        .u64("retries", retries)
        .finish()
}

/// Renders the deterministic final report: `meta`, one `outcome` line per
/// job in id order, and a `summary`. A resumed run and its uninterrupted
/// control produce byte-identical output — the report carries no
/// timestamps, durations or resume markers.
pub fn render_report(config: &BatchConfig, outcomes: &[JobOutcome]) -> String {
    let mut sorted: Vec<&JobOutcome> = outcomes.iter().collect();
    sorted.sort_by_key(|o| o.job);
    let mut out = meta_line(config);
    out.push('\n');
    for o in sorted {
        out.push_str(&outcome_line(o));
        out.push('\n');
    }
    out.push_str(&summary_line(config, outcomes));
    out.push('\n');
    out
}

/// What a journaled submission asks for (the serve layer's admission
/// record — batch journals carry no submissions).
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitKind {
    /// A corpus-derived repair job: index `index` under the journal's
    /// corpus seed, exactly the job `tml batch` would derive.
    Corpus {
        /// Position in the derived corpus.
        index: u64,
    },
    /// An inline verify-only job: parse the model and property, check,
    /// report [`JobStatus::Satisfied`] or [`JobStatus::Violated`].
    Verify {
        /// Model source text (already validated at admission).
        model: String,
        /// PCTL property source text (already validated at admission).
        property: String,
    },
}

impl SubmitKind {
    /// Stable wire name of the kind discriminator.
    pub fn name(&self) -> &'static str {
        match self {
            SubmitKind::Corpus { .. } => "corpus",
            SubmitKind::Verify { .. } => "verify",
        }
    }
}

/// One accepted job, journaled write-ahead at admission: the crash
/// contract for the serve layer is that every job a client saw accepted
/// has a `submit` record, so a restart re-runs exactly the accepted set.
#[derive(Debug, Clone, PartialEq)]
pub struct Submission {
    /// Server-assigned job id (also the `job` field of its outcome).
    pub job: u64,
    /// What the job asks for.
    pub kind: SubmitKind,
    /// The trace id correlating this submission's telemetry across the
    /// admission span, the worker's span tree and any post-crash re-run.
    /// Seed-deterministic (`TraceContext::derive(corpus_seed, job)`), so
    /// journals written before this field existed parse to the identical
    /// value and a resumed run re-links to the original trace.
    pub trace: u64,
}

fn submit_line(s: &Submission) -> String {
    let b = LineBuilder::record("submit")
        .u64("job", s.job)
        .str("kind", s.kind.name())
        .str("trace", &format!("{:016x}", s.trace));
    match &s.kind {
        SubmitKind::Corpus { index } => b.u64("index", *index).finish(),
        SubmitKind::Verify { model, property } => {
            b.str("model", model).str("property", property).finish()
        }
    }
}

/// The write side: a durable (flush-per-line) JSONL appender.
pub struct Journal<W: Write + Send> {
    writer: JsonlWriter<W>,
}

impl<W: Write + Send> Journal<W> {
    /// Starts a fresh journal: writes and flushes the `meta` record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn create(inner: W, config: &BatchConfig) -> io::Result<Self> {
        let j = Journal { writer: JsonlWriter::durable(inner) };
        j.writer.line(&meta_line(config))?;
        Ok(j)
    }

    /// Reopens an interrupted journal for appending (the caller opens the
    /// file in append mode): writes a `resume` boundary record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn reopen(inner: W, completed: u64) -> io::Result<Self> {
        let j = Journal { writer: JsonlWriter::durable(inner) };
        j.writer.line(&LineBuilder::record("resume").u64("completed", completed).finish())?;
        Ok(j)
    }

    /// Journals an accepted submission (write-ahead: before the client
    /// sees the acceptance response).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn submit(&self, s: &Submission) -> io::Result<()> {
        self.writer.line(&submit_line(s))
    }

    /// Journals the start of an attempt (write-ahead: before it runs).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn attempt(&self, job: u64, attempt: u32) -> io::Result<()> {
        self.writer.line(
            &LineBuilder::record("attempt")
                .u64("job", job)
                .u64("attempt", u64::from(attempt))
                .finish(),
        )
    }

    /// Journals a pipeline checkpoint with its solver state (when any).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn checkpoint(
        &self,
        job: u64,
        attempt: u32,
        stage: PipelineStage,
        point: Option<&[f64]>,
    ) -> io::Result<()> {
        let b = LineBuilder::record("checkpoint")
            .u64("job", job)
            .u64("attempt", u64::from(attempt))
            .str("stage", stage.name());
        let b = match point {
            Some(x) => b.raw("x", &restart::encode_point(x)),
            None => b.raw("x", "null"),
        };
        self.writer.line(&b.finish())
    }

    /// Journals a failed attempt.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn failure(&self, f: &AttemptFailure) -> io::Result<()> {
        self.writer.line(
            &LineBuilder::record("failure")
                .u64("job", f.job)
                .u64("attempt", u64::from(f.attempt))
                .str("kind", f.kind.name())
                .str("detail", &f.detail)
                .finish(),
        )
    }

    /// Journals a job's terminal outcome.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn outcome(&self, o: &JobOutcome) -> io::Result<()> {
        self.writer.line(&outcome_line(o))
    }

    /// Journals the batch summary (marks the journal complete).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn summary(&self, config: &BatchConfig, outcomes: &[JobOutcome]) -> io::Result<()> {
        self.writer.line(&summary_line(config, outcomes))
    }

    /// Unwraps the underlying writer (tests: inspect the buffer).
    pub fn into_inner(self) -> W {
        self.writer.into_inner()
    }
}

/// A checkpoint as recovered from the journal.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredCheckpoint {
    /// The job the checkpoint belongs to.
    pub job: u64,
    /// The attempt that reached it.
    pub attempt: u32,
    /// The stage that fired it.
    pub stage: PipelineStage,
    /// Solver state at the checkpoint, when the stage produced one.
    pub point: Option<Vec<f64>>,
}

/// Everything [`parse_journal`] recovers from an interrupted (or
/// completed) journal.
#[derive(Debug, Clone)]
pub struct JournalState {
    /// The batch configuration from the `meta` record.
    pub config: BatchConfig,
    /// Whether the journal already contains a `resume` boundary (the run
    /// was interrupted and resumed at least once before).
    pub resumed: bool,
    /// Whether a `summary` record closed the journal (nothing to resume).
    pub complete: bool,
    /// Terminal outcomes, in journal order.
    pub outcomes: Vec<JobOutcome>,
    /// Failed attempts, in journal order.
    pub failures: Vec<AttemptFailure>,
    /// Checkpoints, in journal order.
    pub checkpoints: Vec<RecoveredCheckpoint>,
    /// Accepted submissions, in journal order (serve journals only —
    /// batch journals derive their job set from `config` instead).
    pub submissions: Vec<Submission>,
}

impl JournalState {
    /// The terminal outcome of `job`, when it concluded before the kill.
    pub fn outcome(&self, job: u64) -> Option<&JobOutcome> {
        self.outcomes.iter().find(|o| o.job == job)
    }

    /// The attempt number a re-run of `job` should start from: one past
    /// the last *journaled failure* (an in-flight attempt with no failure
    /// record is re-run under its own number, exactly as the control run
    /// executed it).
    pub fn next_attempt(&self, job: u64) -> u32 {
        self.failures.iter().filter(|f| f.job == job).map(|f| f.attempt).max().unwrap_or(0) + 1
    }

    /// Warm starts for a re-run of `job`: solver points from checkpoints
    /// of attempts with a journaled `failure` record, in journal order.
    /// Checkpoints of the in-flight attempt are excluded — the control run
    /// never folded them in, and byte-identity requires the resume not to
    /// either.
    pub fn warm_starts(&self, job: u64) -> Vec<(PipelineStage, Vec<f64>)> {
        self.checkpoints
            .iter()
            .filter(|c| {
                c.job == job && self.failures.iter().any(|f| f.job == job && f.attempt == c.attempt)
            })
            .filter_map(|c| c.point.clone().map(|x| (c.stage, x)))
            .collect()
    }

    /// The last journaled failure of `job`, rendered exactly as the
    /// executor's outcome detail (`kind: detail`). A resume needs it when
    /// the crash tore off the `outcome` record of a job whose final
    /// permitted attempt had already failed: no attempt is left to run,
    /// so the outcome is reconstructed from this string instead.
    pub fn last_failure(&self, job: u64) -> Option<String> {
        self.failures
            .iter()
            .filter(|f| f.job == job)
            .max_by_key(|f| f.attempt)
            .map(|f| format!("{}: {}", f.kind.name(), f.detail))
    }

    /// Submissions that were accepted but have no terminal outcome — the
    /// set a restarted server must re-run (crash-before-outcome jobs).
    pub fn pending_submissions(&self) -> Vec<&Submission> {
        self.submissions.iter().filter(|s| self.outcome(s.job).is_none()).collect()
    }

    /// The submission with the given job id, when one was journaled.
    pub fn submission(&self, job: u64) -> Option<&Submission> {
        self.submissions.iter().find(|s| s.job == job)
    }
}

fn field<'v>(v: &'v json::Value, key: &str, line: usize) -> Result<&'v json::Value, String> {
    v.get(key).ok_or_else(|| format!("journal line {line}: missing `{key}`"))
}

fn u64_field(v: &json::Value, key: &str, line: usize) -> Result<u64, String> {
    field(v, key, line)?
        .as_u64()
        .ok_or_else(|| format!("journal line {line}: `{key}` is not an integer"))
}

fn str_field<'v>(v: &'v json::Value, key: &str, line: usize) -> Result<&'v str, String> {
    field(v, key, line)?
        .as_str()
        .ok_or_else(|| format!("journal line {line}: `{key}` is not a string"))
}

/// Parses a journal file back into a [`JournalState`].
///
/// The final line is allowed to be torn (a `kill -9` can land mid-write);
/// any earlier malformed line is an error. The first line must be a
/// `meta` record declaring [`schema::JOURNAL`].
///
/// # Errors
///
/// Returns a description of the first malformed non-trailing line.
pub fn parse_journal(text: &str) -> Result<JournalState, String> {
    let lines: Vec<&str> = text.lines().collect();
    let mut state: Option<JournalState> = None;
    let last = lines.len().saturating_sub(1);
    for (i, line) in lines.iter().enumerate() {
        let torn_ok = i == last;
        let parsed = match json::parse(line) {
            Ok(v) => v,
            Err(e) if torn_ok => {
                tml_telemetry::counter!("runtime.journal.torn_tail", 1);
                let _ = e;
                break;
            }
            Err(e) => return Err(format!("journal line {}: {e}", i + 1)),
        };
        match parse_record(&parsed, i + 1, &mut state) {
            Ok(()) => {}
            Err(_) if torn_ok && i > 0 => {
                // A structurally-valid JSON prefix of a torn record (e.g.
                // the line was cut exactly at a `}`): still the tail.
                tml_telemetry::counter!("runtime.journal.torn_tail", 1);
                break;
            }
            Err(e) => return Err(e),
        }
    }
    state.ok_or_else(|| "journal has no meta record".into())
}

/// Parses a journal read as raw bytes, tolerating a torn tail that was
/// cut mid-UTF-8-sequence.
///
/// `read_to_string` rejects such files outright even though every
/// complete line is intact — a `kill -9` can land between any two bytes,
/// including inside a multi-byte character of a detail string. Lossy
/// conversion maps the torn bytes to U+FFFD, which at worst makes the
/// final line unparseable — exactly the torn-tail case [`parse_journal`]
/// already tolerates. Mid-file corruption still fails, because the
/// replacement character lands in a non-trailing line.
///
/// # Errors
///
/// Returns a description of the first malformed non-trailing line.
pub fn parse_journal_bytes(bytes: &[u8]) -> Result<JournalState, String> {
    parse_journal(&String::from_utf8_lossy(bytes))
}

fn parse_record(
    v: &json::Value,
    line: usize,
    state: &mut Option<JournalState>,
) -> Result<(), String> {
    let ty = str_field(v, "type", line)?;
    if state.is_none() {
        if ty != "meta" {
            return Err(format!("journal line {line}: expected meta record, got `{ty}`"));
        }
        let schema_id = str_field(v, "schema", line)?;
        if schema_id != schema::JOURNAL {
            return Err(format!(
                "journal line {line}: schema `{schema_id}` is not `{}`",
                schema::JOURNAL
            ));
        }
        let corpus_seed: u64 = str_field(v, "corpus_seed", line)?
            .parse()
            .map_err(|_| format!("journal line {line}: corpus_seed is not a u64"))?;
        let chaos = match field(v, "chaos", line)? {
            json::Value::Null => None,
            other => Some(
                other
                    .as_str()
                    .ok_or_else(|| format!("journal line {line}: chaos is not a string"))?
                    .to_string(),
            ),
        };
        *state = Some(JournalState {
            config: BatchConfig {
                corpus_seed,
                jobs: u64_field(v, "jobs", line)?,
                max_attempts: u64_field(v, "max_attempts", line)? as u32,
                workers: u64_field(v, "workers", line)? as u32,
                chaos,
            },
            resumed: false,
            complete: false,
            outcomes: Vec::new(),
            failures: Vec::new(),
            checkpoints: Vec::new(),
            submissions: Vec::new(),
        });
        return Ok(());
    }
    let state = state.as_mut().expect("meta parsed first");
    match ty {
        "meta" => Err(format!("journal line {line}: duplicate meta record")),
        "attempt" => {
            // Write-ahead marker only; recovery derives in-flight attempts
            // from the absence of failure/outcome records instead.
            u64_field(v, "job", line)?;
            u64_field(v, "attempt", line)?;
            Ok(())
        }
        "checkpoint" => {
            let stage_name = str_field(v, "stage", line)?;
            let stage = PipelineStage::parse(stage_name)
                .ok_or_else(|| format!("journal line {line}: unknown stage `{stage_name}`"))?;
            let point = match field(v, "x", line)? {
                json::Value::Null => None,
                other => {
                    let items = other
                        .as_array()
                        .ok_or_else(|| format!("journal line {line}: `x` is not an array"))?;
                    let words: Vec<&str> =
                        items.iter().map(|w| w.as_str()).collect::<Option<_>>().ok_or_else(
                            || format!("journal line {line}: `x` holds a non-string"),
                        )?;
                    Some(
                        restart::decode_point(&words)
                            .map_err(|e| format!("journal line {line}: {e}"))?,
                    )
                }
            };
            state.checkpoints.push(RecoveredCheckpoint {
                job: u64_field(v, "job", line)?,
                attempt: u64_field(v, "attempt", line)? as u32,
                stage,
                point,
            });
            Ok(())
        }
        "failure" => {
            let kind_name = str_field(v, "kind", line)?;
            let kind = FailureKind::parse(kind_name)
                .ok_or_else(|| format!("journal line {line}: unknown kind `{kind_name}`"))?;
            state.failures.push(AttemptFailure {
                job: u64_field(v, "job", line)?,
                attempt: u64_field(v, "attempt", line)? as u32,
                kind,
                detail: str_field(v, "detail", line)?.to_string(),
            });
            Ok(())
        }
        "outcome" => {
            let status_name = str_field(v, "status", line)?;
            let status = JobStatus::parse(status_name)
                .ok_or_else(|| format!("journal line {line}: unknown status `{status_name}`"))?;
            let fingerprint = match field(v, "fingerprint", line)? {
                json::Value::Null => None,
                other => {
                    let hex = other.as_str().ok_or_else(|| {
                        format!("journal line {line}: fingerprint is not a string")
                    })?;
                    Some(u64::from_str_radix(hex, 16).map_err(|_| {
                        format!("journal line {line}: fingerprint `{hex}` is not hex")
                    })?)
                }
            };
            state.outcomes.push(JobOutcome {
                job: u64_field(v, "job", line)?,
                attempts: u64_field(v, "attempts", line)? as u32,
                status,
                detail: str_field(v, "detail", line)?.to_string(),
                fingerprint,
                evaluations: u64_field(v, "evaluations", line)?,
            });
            Ok(())
        }
        "submit" => {
            let job = u64_field(v, "job", line)?;
            let kind = match str_field(v, "kind", line)? {
                "corpus" => SubmitKind::Corpus { index: u64_field(v, "index", line)? },
                "verify" => SubmitKind::Verify {
                    model: str_field(v, "model", line)?.to_string(),
                    property: str_field(v, "property", line)?.to_string(),
                },
                other => return Err(format!("journal line {line}: unknown submit kind `{other}`")),
            };
            // Journals written before trace correlation carry no trace
            // field; re-deriving from (corpus_seed, job) reconstructs the
            // exact id the original process would have used.
            let trace = match v.get("trace").and_then(|t| t.as_str()) {
                Some(hex) => tml_telemetry::TraceContext::parse_hex(hex).ok_or_else(|| {
                    format!("journal line {line}: trace `{hex}` is not 16 hex digits")
                })?,
                None => tml_telemetry::TraceContext::derive(state.config.corpus_seed, job).trace_id,
            };
            state.submissions.push(Submission { job, kind, trace });
            Ok(())
        }
        "resume" => {
            state.resumed = true;
            Ok(())
        }
        "summary" => {
            state.complete = true;
            Ok(())
        }
        other => Err(format!("journal line {line}: unknown record type `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> BatchConfig {
        BatchConfig {
            corpus_seed: 7,
            jobs: 2,
            max_attempts: 3,
            workers: 1,
            chaos: Some("panic=0.2,nan=0,slow=0,seed=9".into()),
        }
    }

    fn outcome(job: u64, attempts: u32, status: JobStatus) -> JobOutcome {
        JobOutcome {
            job,
            attempts,
            status,
            detail: format!("job {job}"),
            fingerprint: Some(0xdead_beef_0000_0000 | job),
            evaluations: 10 * job,
        }
    }

    #[test]
    fn journal_round_trips_through_parse() {
        let cfg = config();
        let j = Journal::create(Vec::new(), &cfg).unwrap();
        j.attempt(0, 1).unwrap();
        j.checkpoint(0, 1, PipelineStage::Learn, None).unwrap();
        j.checkpoint(0, 1, PipelineStage::ModelRepair, Some(&[0.5, -0.0, f64::NAN])).unwrap();
        j.failure(&AttemptFailure {
            job: 0,
            attempt: 1,
            kind: FailureKind::Panic,
            detail: "injected panic at verify".into(),
        })
        .unwrap();
        j.attempt(0, 2).unwrap();
        let o = outcome(0, 2, JobStatus::ModelRepaired);
        j.outcome(&o).unwrap();
        let text = String::from_utf8(j.into_inner()).unwrap();

        let state = parse_journal(&text).unwrap();
        assert_eq!(state.config, cfg);
        assert!(!state.resumed);
        assert!(!state.complete);
        assert_eq!(state.outcomes, vec![o]);
        assert_eq!(state.failures.len(), 1);
        assert_eq!(state.next_attempt(1), 1, "untouched job starts at attempt 1");
        assert_eq!(state.next_attempt(0), 2);
        let warm = state.warm_starts(0);
        assert_eq!(warm.len(), 1, "only checkpoints with solver state survive");
        assert_eq!(warm[0].0, PipelineStage::ModelRepair);
        assert_eq!(warm[0].1[0], 0.5);
        assert_eq!(warm[0].1[1].to_bits(), (-0.0f64).to_bits(), "bit-exact recovery");
        assert!(warm[0].1[2].is_nan());
    }

    #[test]
    fn torn_trailing_line_is_tolerated_elsewhere_fatal() {
        let cfg = config();
        let j = Journal::create(Vec::new(), &cfg).unwrap();
        j.attempt(0, 1).unwrap();
        let mut text = String::from_utf8(j.into_inner()).unwrap();
        text.push_str("{\"type\":\"outcome\",\"job\":1,\"att");
        let state = parse_journal(&text).unwrap();
        assert!(state.outcomes.is_empty(), "torn outcome not recovered");

        let mut broken = String::new();
        broken.push_str("{\"type\":\"att\n");
        broken.push_str("{\"type\":\"attempt\",\"job\":0,\"attempt\":1}\n");
        assert!(parse_journal(&broken).is_err(), "non-trailing garbage is fatal");
    }

    #[test]
    fn in_flight_checkpoints_are_not_warm_starts() {
        let cfg = config();
        let j = Journal::create(Vec::new(), &cfg).unwrap();
        j.attempt(0, 1).unwrap();
        j.checkpoint(0, 1, PipelineStage::ModelRepair, Some(&[1.0])).unwrap();
        // No failure record: the kill landed mid-attempt.
        let text = String::from_utf8(j.into_inner()).unwrap();
        let state = parse_journal(&text).unwrap();
        assert_eq!(state.next_attempt(0), 1, "in-flight attempt re-runs under its own number");
        assert!(state.warm_starts(0).is_empty(), "control never folded these in");
    }

    #[test]
    fn report_is_sorted_and_deterministic() {
        let cfg = config();
        let a = render_report(
            &cfg,
            &[outcome(1, 1, JobStatus::Satisfied), outcome(0, 3, JobStatus::Failed)],
        );
        let b = render_report(
            &cfg,
            &[outcome(0, 3, JobStatus::Failed), outcome(1, 1, JobStatus::Satisfied)],
        );
        assert_eq!(a, b, "report independent of completion order");
        let lines: Vec<&str> = a.lines().collect();
        assert_eq!(lines.len(), 4, "meta + 2 outcomes + summary");
        assert!(lines[0].contains(schema::JOURNAL));
        assert!(lines[1].contains("\"job\":0"));
        assert!(lines[2].contains("\"job\":1"));
        assert!(lines[3].contains("\"retries\":2"));
        let state = parse_journal(&a).unwrap();
        assert!(state.complete, "summary closes the stream");
    }

    #[test]
    fn submissions_round_trip_and_pending_excludes_concluded() {
        let cfg = config();
        let j = Journal::create(Vec::new(), &cfg).unwrap();
        let corpus = Submission {
            job: 0,
            kind: SubmitKind::Corpus { index: 5 },
            trace: tml_telemetry::TraceContext::derive(cfg.corpus_seed, 0).trace_id,
        };
        let verify = Submission {
            job: 1,
            kind: SubmitKind::Verify {
                model: "dtmc\nstates 2\ninit 0\n0 1 1.0\n1 1 1.0".into(),
                property: "P>=0.5 [ F \"goal\" ]".into(),
            },
            trace: tml_telemetry::TraceContext::derive(cfg.corpus_seed, 1).trace_id,
        };
        j.submit(&corpus).unwrap();
        j.submit(&verify).unwrap();
        j.outcome(&outcome(0, 1, JobStatus::Satisfied)).unwrap();
        let text = String::from_utf8(j.into_inner()).unwrap();
        assert!(text.contains("\"trace\":\""), "submit records persist the trace id");
        let state = parse_journal(&text).unwrap();
        assert_eq!(state.submissions, vec![corpus, verify.clone()]);
        assert_eq!(state.submission(1), Some(&verify));
        let pending = state.pending_submissions();
        assert_eq!(pending.len(), 1, "concluded job 0 is not pending");
        assert_eq!(pending[0].job, 1);
    }

    #[test]
    fn traceless_submit_records_rederive_the_seed_deterministic_id() {
        // A journal written before trace correlation existed: the parser
        // must fall back to derive(corpus_seed, job) so a resumed run
        // re-links to the id the original submission *would* have used.
        let cfg = config();
        let mut text = meta_line(&cfg);
        text.push('\n');
        text.push_str("{\"type\":\"submit\",\"job\":3,\"kind\":\"corpus\",\"index\":3}\n");
        let state = parse_journal(&text).unwrap();
        assert_eq!(
            state.submissions[0].trace,
            tml_telemetry::TraceContext::derive(cfg.corpus_seed, 3).trace_id
        );
        // A present-but-malformed trace field is corruption, not a fallback.
        let mut bad = meta_line(&cfg);
        bad.push('\n');
        bad.push_str(
            "{\"type\":\"submit\",\"job\":3,\"kind\":\"corpus\",\"index\":3,\"trace\":\"xy\"}\n",
        );
        bad.push_str("{\"type\":\"resume\",\"completed\":0}\n");
        assert!(parse_journal(&bad).is_err());
    }

    #[test]
    fn bytes_parser_tolerates_mid_utf8_torn_tail() {
        let cfg = config();
        let j = Journal::create(Vec::new(), &cfg).unwrap();
        j.failure(&AttemptFailure {
            job: 0,
            attempt: 1,
            kind: FailureKind::Panic,
            detail: "überfluß — panic".into(),
        })
        .unwrap();
        let full = j.into_inner();
        // Find a cut point inside the ü (2-byte sequence) of the *last*
        // line: read_to_string would reject this, the bytes parser must
        // treat it as a torn tail.
        let last_line_start = full[..full.len() - 1].iter().rposition(|&b| b == b'\n').unwrap() + 1;
        let umlaut = full[last_line_start..].iter().position(|&b| b >= 0x80).unwrap();
        let cut = &full[..last_line_start + umlaut + 1];
        assert!(std::str::from_utf8(cut).is_err(), "cut really is mid-sequence");
        let state = parse_journal_bytes(cut).unwrap();
        assert!(state.failures.is_empty(), "torn failure line not recovered");
        // The same torn bytes mid-file stay fatal.
        let mut corrupt = cut.to_vec();
        corrupt.extend_from_slice(b"\n{\"type\":\"attempt\",\"job\":0,\"attempt\":1}\n");
        assert!(parse_journal_bytes(&corrupt).is_err(), "mid-file mojibake is fatal");
    }

    #[test]
    fn reopen_marks_resume() {
        let cfg = config();
        let j = Journal::create(Vec::new(), &cfg).unwrap();
        let mut text = String::from_utf8(j.into_inner()).unwrap();
        let j2 = Journal::reopen(Vec::new(), 0).unwrap();
        text.push_str(&String::from_utf8(j2.into_inner()).unwrap());
        let state = parse_journal(&text).unwrap();
        assert!(state.resumed);
    }
}
