//! Injectable monotonic clocks.
//!
//! Time-based recovery (circuit-breaker half-open probes, token-bucket
//! refill) must be testable without sleeping. Everything in the runtime
//! and serve layers that consults wall-clock time does so through a
//! [`Clock`], so tests swap in a [`ManualClock`] and advance it
//! explicitly while production uses [`SystemClock`].

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A monotonic time source.
pub trait Clock: Send + Sync {
    /// The current instant.
    fn now(&self) -> Instant;
}

/// The real monotonic clock ([`Instant::now`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> Instant {
        Instant::now()
    }
}

/// A hand-cranked clock for deterministic tests: time only moves when
/// [`advance`](ManualClock::advance) is called.
#[derive(Debug, Clone)]
pub struct ManualClock {
    now: Arc<Mutex<Instant>>,
}

impl ManualClock {
    /// A manual clock anchored at the real current instant.
    pub fn new() -> Self {
        ManualClock { now: Arc::new(Mutex::new(Instant::now())) }
    }

    /// Moves the clock forward by `d`.
    pub fn advance(&self, d: Duration) {
        let mut now = self.now.lock().unwrap_or_else(|e| e.into_inner());
        *now += d;
    }
}

impl Default for ManualClock {
    fn default() -> Self {
        ManualClock::new()
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Instant {
        *self.now.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The clock handle the runtime passes around: cheap to clone, dynamic so
/// tests can substitute a [`ManualClock`].
pub type SharedClock = Arc<dyn Clock>;

/// The default production clock.
pub fn system_clock() -> SharedClock {
    Arc::new(SystemClock)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_only_moves_on_advance() {
        let clock = ManualClock::new();
        let t0 = clock.now();
        assert_eq!(clock.now(), t0);
        clock.advance(Duration::from_millis(250));
        assert_eq!(clock.now() - t0, Duration::from_millis(250));
        // Clones share the same timeline.
        let clone = clock.clone();
        clone.advance(Duration::from_secs(1));
        assert_eq!(clock.now() - t0, Duration::from_millis(1250));
    }

    #[test]
    fn system_clock_is_monotonic() {
        let clock = system_clock();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }
}
