//! The batch executor: worker pool, isolation boundary, retry loop,
//! breaker adaptation, journaling and the kill/resume machinery.
//!
//! One call to [`run_batch`] drives `jobs` independent pipeline problems
//! (derived from the corpus seed) to terminal [`JobOutcome`]s. Each
//! attempt runs under `catch_unwind` with a quiet panic hook, so injected
//! or genuine panics become structured [`AttemptFailure`]s; failed
//! attempts retry with seeded backoff and warm-start from the checkpoints
//! their failed predecessors journaled. The write-ahead rule is: the
//! `attempt` record is journaled (and flushed) before the attempt runs,
//! and its `checkpoint`/`failure`/`outcome` records before the next
//! attempt or job proceeds — which is exactly the state [`run_batch`]
//! rebuilds when handed a parsed [`JournalState`] to resume from.

use std::cell::Cell;
use std::io::{self, Write};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once};
use std::time::{Duration, Instant};

use tml_core::pipeline::{
    CheckpointHook, PipelineCheckpoint, PipelineStage, TmlOutcome, TmlPipeline,
};
use tml_core::{Budget, RepairOptions};
use tml_models::Path;

use crate::breaker::SolverBreakers;
use crate::chaos::{ChaosSpec, Fault};
use crate::corpus::{build_job, job_spec, JobInput};
use crate::job::{fingerprint_dtmc, AttemptFailure, FailureKind, JobOutcome, JobStatus};
use crate::journal::{BatchConfig, Journal, JournalState};
use crate::retry::RetryPolicy;

/// Cooperative cancellation: tests (and signal handlers) arm it; workers
/// stop picking up jobs at the next boundary.
#[derive(Debug, Clone, Default)]
pub struct KillSwitch(Arc<AtomicBool>);

impl KillSwitch {
    /// A disarmed switch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms the switch; in-flight attempts finish, no new work starts.
    pub fn arm(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether the switch has been armed.
    pub fn armed(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Configuration for one [`run_batch`] call.
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Corpus seed: every job spec derives from it.
    pub corpus_seed: u64,
    /// Number of jobs.
    pub jobs: u64,
    /// Retry policy (attempt cap + backoff shape).
    pub retry: RetryPolicy,
    /// Worker threads (clamped to at least 1).
    pub workers: u32,
    /// Fault-injection plan, when chaos is on.
    pub chaos: Option<ChaosSpec>,
    /// Wall-clock deadline for the whole batch. Backoffs are clamped to
    /// it and retries abandoned past it. **Deadline batches are not
    /// byte-deterministic** — the cut point depends on scheduling — so
    /// the chaos-smoke byte-identity check never sets one.
    pub deadline: Option<Duration>,
    /// Cooperative kill switch (shared with the caller).
    pub kill: KillSwitch,
    /// Simulate a crash after this many journaled outcomes: arm the kill
    /// switch (soft) or `exit(137)` (hard, CLI `--kill-after`).
    pub kill_after: Option<u64>,
    /// Whether `kill_after` exits the process instead of arming the
    /// switch.
    pub hard_kill: bool,
}

impl BatchOptions {
    /// Options for a `jobs`-job batch under `corpus_seed`, defaults
    /// elsewhere.
    pub fn new(corpus_seed: u64, jobs: u64) -> Self {
        BatchOptions {
            corpus_seed,
            jobs,
            retry: RetryPolicy::default(),
            workers: 1,
            chaos: None,
            deadline: None,
            kill: KillSwitch::new(),
            kill_after: None,
            hard_kill: false,
        }
    }

    /// The journal/report `meta` configuration these options describe.
    pub fn config(&self) -> BatchConfig {
        BatchConfig {
            corpus_seed: self.corpus_seed,
            jobs: self.jobs,
            max_attempts: self.retry.max_attempts,
            workers: self.workers,
            chaos: self.chaos.as_ref().map(ChaosSpec::canonical),
        }
    }
}

/// What a [`run_batch`] call produced.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Terminal outcomes, sorted by job id. A killed run holds only the
    /// jobs that concluded before the switch armed.
    pub outcomes: Vec<JobOutcome>,
    /// Whether the kill switch cut the batch short.
    pub killed: bool,
}

thread_local! {
    static QUIET: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once per process) a panic hook that stays silent while a
/// worker holds an isolation boundary — injected panics would otherwise
/// spray backtraces over every chaos run — and defers to the previous
/// hook everywhere else.
fn install_quiet_panic_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Runs `f` under the batch isolation boundary: the quiet panic hook is
/// armed for the duration, a panic is caught and rendered to its payload
/// string instead of unwinding into the caller. This is the same boundary
/// every batch attempt runs under, exported so other executors (the serve
/// layer's verify jobs) isolate identically.
///
/// # Errors
///
/// Returns the panic payload, rendered, when `f` panicked.
pub fn isolate<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    install_quiet_panic_hook();
    QUIET.with(|q| q.set(true));
    let out = panic::catch_unwind(AssertUnwindSafe(f));
    QUIET.with(|q| q.set(false));
    out.map_err(|payload| panic_detail(payload.as_ref()))
}

struct AttemptSuccess {
    status: JobStatus,
    detail: String,
    fingerprint: Option<u64>,
    evaluations: u64,
    diagnostics: tml_numerics::Diagnostics,
}

/// Runs one isolated attempt: inject the fault (if any), run the
/// pipeline under `catch_unwind`, classify the conclusion. Returns the
/// checkpoints the attempt reached alongside its verdict.
fn run_attempt(
    input: &JobInput,
    warm: &[(PipelineStage, Vec<f64>)],
    fault: Option<Fault>,
    opts: RepairOptions,
    budget: Option<&Budget>,
) -> (Vec<PipelineCheckpoint>, Result<AttemptSuccess, (FailureKind, String)>) {
    let reached: Arc<Mutex<Vec<PipelineCheckpoint>>> = Arc::new(Mutex::new(Vec::new()));

    match fault {
        Some(Fault::Slow(d)) => std::thread::sleep(d),
        Some(Fault::PoisonNan) => {
            // Drive the real validation path: a NaN weight must be
            // rejected by the dataset, exactly as a poisoned ingest would.
            let mut ds = input.dataset.clone();
            let err = ds
                .push(0, Path::from_states(vec![0]), f64::NAN)
                .expect_err("NaN weights are always rejected");
            return (Vec::new(), Err((FailureKind::Error, format!("poisoned dataset: {err}"))));
        }
        _ => {}
    }

    let sink = reached.clone();
    let hook: CheckpointHook = Arc::new(move |cp: &PipelineCheckpoint| {
        sink.lock().unwrap_or_else(|e| e.into_inner()).push(cp.clone());
        if let Some(Fault::Panic(stage)) = fault {
            if cp.stage == stage {
                panic!("injected panic at {}", stage.name());
            }
        }
    });

    let mut pipeline = TmlPipeline::new(input.spec.clone(), input.formula.clone())
        .with_options(opts)
        .with_data_repair()
        .with_checkpoint_hook(hook);
    if let Some(b) = budget {
        pipeline = pipeline.with_budget(b.clone());
    }
    for (stage, x) in warm {
        pipeline = pipeline.with_warm_start(*stage, x.clone());
    }

    let outcome = isolate(move || pipeline.run(&input.dataset));

    let checkpoints = std::mem::take(&mut *reached.lock().unwrap_or_else(|e| e.into_inner()));
    let verdict = match outcome {
        Err(detail) => Err((FailureKind::Panic, detail)),
        Ok(Err(e)) => Err((FailureKind::Error, e.to_string())),
        Ok(Ok(out)) => {
            let fingerprint = out.model().map(fingerprint_dtmc);
            let diagnostics = out.diagnostics().clone();
            let (status, detail, evaluations) = match &out {
                TmlOutcome::Satisfied { .. } => {
                    (JobStatus::Satisfied, "learned model satisfies the property".into(), 0)
                }
                TmlOutcome::ModelRepaired { outcome } => (
                    JobStatus::ModelRepaired,
                    "model repair produced a trusted model".into(),
                    outcome.evaluations as u64,
                ),
                TmlOutcome::DataRepaired { outcome, .. } => (
                    JobStatus::DataRepaired,
                    "data repair produced a trusted model".into(),
                    outcome.evaluations as u64,
                ),
                TmlOutcome::Unrepairable { .. } => (
                    JobStatus::Unrepairable,
                    "no configured repair satisfies the property".into(),
                    0,
                ),
            };
            Ok(AttemptSuccess { status, detail, fingerprint, evaluations, diagnostics })
        }
    };
    (checkpoints, verdict)
}

/// Shared mutable batch state (behind one mutex: contention is per job
/// conclusion, not per solve).
struct Shared {
    outcomes: Vec<JobOutcome>,
    io_error: Option<io::Error>,
}

/// Everything one job's attempt loop needs besides the job itself — the
/// executor's library surface. [`run_batch`] builds one per batch; the
/// serve layer builds one per submission (with a per-request [`Budget`]
/// and a shared long-lived breaker set).
pub struct JobContext<'a> {
    /// Corpus seed: derives job specs and seeds chaos/backoff draws.
    pub corpus_seed: u64,
    /// Retry policy (attempt cap + backoff shape).
    pub retry: RetryPolicy,
    /// Fault-injection plan, when chaos is on.
    pub chaos: Option<&'a ChaosSpec>,
    /// Per-job budget (deadline + eval cap) threaded into the pipeline.
    /// `None` runs unlimited — the batch path, whose byte-identity
    /// contract cannot tolerate wall-clock-dependent results.
    pub budget: Option<Budget>,
    /// When the enclosing run started (anchors `deadline`).
    pub started: Instant,
    /// Wall-clock deadline for the enclosing run, when one is set.
    pub deadline: Option<Duration>,
    /// Shared per-backend breaker set, adapted as jobs conclude.
    pub breakers: &'a Mutex<SolverBreakers>,
}

impl JobContext<'_> {
    /// Time left before the run deadline (`None` when no deadline).
    fn remaining(&self) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_sub(self.started.elapsed()))
    }
}

/// Runs one corpus-derived job's attempt loop to a terminal outcome,
/// journaling every transition write-ahead. `job` is the journal id the
/// records carry; `index` derives the job's inputs from the corpus seed
/// (the batch path passes `job == index`; the serve path assigns ids at
/// admission). `first_attempt`/`warm`/`prior_failure` come from a parsed
/// journal on resume (1, empty, and `None` on a fresh run).
///
/// When `first_attempt` is past `max_attempts`, every permitted attempt
/// already failed before the crash and the torn record was the outcome
/// itself: the job runs **nothing** and the `Failed` outcome is
/// reconstructed from `prior_failure`
/// ([`JournalState::last_failure`](crate::journal::JournalState::last_failure)),
/// keeping the resumed report byte-identical to the control instead of
/// burning a forbidden extra attempt.
///
/// An already-expired deadline yields **zero attempts**: the outcome is
/// `Failed` with `attempts: 0` and no `attempt` record is journaled —
/// the fix for the clamped-to-zero-backoff edge case where attempt 1
/// used to run against a budget that was already spent.
///
/// # Errors
///
/// Returns the first journal I/O error. The outcome itself is **not**
/// journaled here — callers write it (or surface the error) so they can
/// order it against their own bookkeeping.
pub fn run_corpus_job<W: Write + Send>(
    journal: &Journal<W>,
    ctx: &JobContext<'_>,
    job: u64,
    index: u64,
    first_attempt: u32,
    mut warm: Vec<(PipelineStage, Vec<f64>)>,
    prior_failure: Option<String>,
) -> io::Result<JobOutcome> {
    let failed = |attempts: u32, detail: String| JobOutcome {
        job,
        attempts,
        status: JobStatus::Failed,
        detail,
        fingerprint: None,
        evaluations: 0,
    };

    if first_attempt > ctx.retry.max_attempts {
        // Attempts exhausted before the crash; only the outcome record was
        // torn off. Reconstruct it — running attempt `first_attempt` here
        // would exceed the budget the control run obeyed.
        return Ok(failed(ctx.retry.max_attempts, prior_failure.unwrap_or_default()));
    }

    // Reconstructed outcomes above run nothing, so they emit no span; every
    // executed job gets exactly one `runtime.job` span that carries the
    // installed trace context (batch derives it per job; serve installs the
    // submission's context before calling in here).
    let _span = tml_telemetry::span!("runtime.job", job = job, index = index);

    let spec = job_spec(ctx.corpus_seed, index);
    let input = match build_job(&spec) {
        Ok(input) => input,
        Err(detail) => return Ok(failed(1, format!("corpus construction: {detail}"))),
    };

    if !ctx.retry.permits_attempt(ctx.remaining()) {
        tml_telemetry::counter!("runtime.attempt.deadline_skips", 1);
        return Ok(failed(0, "run deadline exhausted before first attempt".into()));
    }

    let last_attempt = ctx.retry.max_attempts;
    let mut last_failure = String::new();
    for attempt in first_attempt..=last_attempt {
        journal.attempt(job, attempt)?;

        let fault = ctx.chaos.and_then(|c| c.fault(job, attempt));
        let repair_opts = {
            let mut b = ctx.breakers.lock().unwrap_or_else(|e| e.into_inner());
            let mut r = RepairOptions::default();
            b.adjust(&mut r.check);
            r
        };

        let (checkpoints, verdict) =
            run_attempt(&input, &warm, fault, repair_opts, ctx.budget.as_ref());
        for cp in &checkpoints {
            journal.checkpoint(job, attempt, cp.stage, cp.solver_point.as_deref())?;
        }

        match verdict {
            Ok(success) => {
                let mut b = ctx.breakers.lock().unwrap_or_else(|e| e.into_inner());
                b.observe(&success.diagnostics);
                return Ok(JobOutcome {
                    job,
                    attempts: attempt,
                    status: success.status,
                    detail: success.detail,
                    fingerprint: success.fingerprint,
                    evaluations: success.evaluations,
                });
            }
            Err((kind, detail)) => {
                tml_telemetry::counter!("runtime.attempt.failures", 1);
                let failure = AttemptFailure { job, attempt, kind, detail };
                journal.failure(&failure)?;
                // Fold-after-failure: only now do this attempt's
                // checkpoints become warm starts. The resume path applies
                // the same rule when it reads the journal back.
                warm.extend(
                    checkpoints.into_iter().filter_map(|cp| cp.solver_point.map(|x| (cp.stage, x))),
                );
                last_failure = format!("{}: {}", failure.kind.name(), failure.detail);

                if attempt < ctx.retry.max_attempts {
                    let remaining = ctx.remaining();
                    if !ctx.retry.permits_attempt(remaining) {
                        last_failure =
                            format!("run deadline exhausted during retries ({last_failure})");
                        break;
                    }
                    std::thread::sleep(ctx.retry.backoff(ctx.corpus_seed, job, attempt, remaining));
                }
            }
        }
    }

    Ok(failed(last_attempt, last_failure))
}

/// Runs (or resumes) a batch. Jobs with an `outcome` record in `resume`
/// replay verbatim; the rest run from their journaled next attempt with
/// warm starts recovered under the fold-after-failure rule, so the final
/// [`BatchResult`] — and the report rendered from it — is byte-identical
/// to an uninterrupted control run of the same options.
///
/// # Errors
///
/// Returns the first journal I/O error; solver-level problems never fail
/// the batch (that is the point of the isolation boundary).
pub fn run_batch<W: Write + Send>(
    opts: &BatchOptions,
    journal: &Journal<W>,
    resume: Option<&JournalState>,
) -> io::Result<BatchResult> {
    let started = Instant::now();
    let next_job = AtomicU64::new(0);
    let concluded = AtomicU64::new(0);
    let breakers = Mutex::new(SolverBreakers::default());
    let shared = Mutex::new(Shared {
        outcomes: resume.map(|s| s.outcomes.clone()).unwrap_or_default(),
        io_error: None,
    });
    let workers = opts.workers.max(1) as usize;

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                worker(opts, journal, resume, &next_job, &concluded, &shared, &breakers, started);
            });
        }
    });

    let mut inner = shared.into_inner().unwrap_or_else(|e| e.into_inner());
    if let Some(e) = inner.io_error.take() {
        return Err(e);
    }
    inner.outcomes.sort_by_key(|o| o.job);
    let killed = opts.kill.armed();
    if !killed && inner.outcomes.len() as u64 == opts.jobs {
        journal.summary(&opts.config(), &inner.outcomes)?;
    }
    Ok(BatchResult { outcomes: inner.outcomes, killed })
}

#[allow(clippy::too_many_arguments)]
fn worker<W: Write + Send>(
    opts: &BatchOptions,
    journal: &Journal<W>,
    resume: Option<&JournalState>,
    next_job: &AtomicU64,
    concluded: &AtomicU64,
    shared: &Mutex<Shared>,
    breakers: &Mutex<SolverBreakers>,
    started: Instant,
) {
    let ctx = JobContext {
        corpus_seed: opts.corpus_seed,
        retry: opts.retry,
        chaos: opts.chaos.as_ref(),
        budget: None,
        started,
        deadline: opts.deadline,
        breakers,
    };
    loop {
        if opts.kill.armed() {
            return;
        }
        let job = next_job.fetch_add(1, Ordering::SeqCst);
        if job >= opts.jobs {
            return;
        }

        // Replayed job: its outcome is already in `shared.outcomes` (the
        // resume seed) and already journaled — only the conclusion count
        // moves, so `--kill-after` measures total concluded jobs.
        if let Some(prior) = resume.and_then(|s| s.outcome(job)) {
            let _ = prior;
            conclude(opts, concluded);
            continue;
        }

        let first_attempt = resume.map_or(1, |s| s.next_attempt(job));
        let warm = resume.map(|s| s.warm_starts(job)).unwrap_or_default();
        let prior = resume.and_then(|s| s.last_failure(job));
        // Seed-deterministic trace id: a resumed run derives the same id the
        // original run did, so spans from both processes group under one
        // trace when the files are analysed together.
        let _trace =
            tml_telemetry::with_trace(tml_telemetry::TraceContext::derive(opts.corpus_seed, job));
        let io_result = run_corpus_job(journal, &ctx, job, job, first_attempt, warm, prior)
            .and_then(|outcome| journal.outcome(&outcome).map(|()| outcome));
        {
            let mut s = shared.lock().unwrap_or_else(|e| e.into_inner());
            match io_result {
                Ok(outcome) => s.outcomes.push(outcome),
                Err(e) => {
                    if s.io_error.is_none() {
                        s.io_error = Some(e);
                    }
                    opts.kill.arm();
                    return;
                }
            }
        }
        conclude(opts, concluded);
    }
}

/// Counts a concluded job and fires the simulated crash when configured.
fn conclude(opts: &BatchOptions, concluded: &AtomicU64) {
    let total = concluded.fetch_add(1, Ordering::SeqCst) + 1;
    if opts.kill_after == Some(total) {
        if opts.hard_kill {
            // Simulated `kill -9`: no unwinding, no summary, the journal
            // ends wherever the last flush put it.
            std::process::exit(137);
        }
        opts.kill.arm();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{parse_journal, render_report};

    fn batch(seed: u64, jobs: u64) -> BatchOptions {
        BatchOptions::new(seed, jobs)
    }

    fn run(opts: &BatchOptions, resume: Option<&JournalState>) -> (BatchResult, String) {
        let journal = Journal::create(Vec::new(), &opts.config()).unwrap();
        let result = run_batch(opts, &journal, resume).unwrap();
        (result, String::from_utf8(journal.into_inner()).unwrap())
    }

    #[test]
    fn corpus_exercises_every_outcome_class() {
        // The checked-probability anchors must actually produce all three
        // terminal classes, not collapse the batch into "satisfied".
        let opts = batch(7, 18);
        let (result, _) = run(&opts, None);
        let has = |s: JobStatus| result.outcomes.iter().any(|o| o.status == s);
        assert!(has(JobStatus::Satisfied), "some jobs start satisfied");
        assert!(has(JobStatus::DataRepaired), "some jobs are repaired");
        assert!(has(JobStatus::Unrepairable), "some jobs are unrepairable");
    }

    #[test]
    fn quiet_batch_concludes_every_job() {
        let opts = batch(3, 6);
        let (result, text) = run(&opts, None);
        assert!(!result.killed);
        assert_eq!(result.outcomes.len(), 6);
        assert!(result.outcomes.iter().all(|o| o.attempts == 1), "no chaos, no retries");
        let state = parse_journal(&text).unwrap();
        assert!(state.complete, "summary written");
        assert_eq!(state.outcomes.len(), 6);
        assert!(state.failures.is_empty());
    }

    #[test]
    fn chaos_panics_are_contained_and_retried() {
        let mut opts = batch(5, 8);
        opts.chaos = Some(ChaosSpec { panic: 0.5, nan: 0.2, slow: 0.0, seed: 11 });
        opts.retry.base = Duration::from_millis(1);
        opts.retry.cap = Duration::from_millis(2);
        let (result, text) = run(&opts, None);
        assert_eq!(result.outcomes.len(), 8, "every job concluded despite the chaos");
        let state = parse_journal(&text).unwrap();
        assert!(!state.failures.is_empty(), "p=0.7 over 8 jobs: faults fired");
        assert!(
            state.failures.iter().any(|f| f.kind == FailureKind::Panic),
            "panics crossed the isolation boundary as structured failures"
        );
        assert!(result.outcomes.iter().any(|o| o.attempts > 1), "some job needed a retry");
    }

    #[test]
    fn parallel_batch_reports_identically_to_serial() {
        let mut serial = batch(9, 10);
        serial.retry.base = Duration::from_millis(1);
        serial.retry.cap = Duration::from_millis(2);
        serial.chaos = Some(ChaosSpec { panic: 0.3, nan: 0.1, slow: 0.1, seed: 2 });
        let mut parallel = serial.clone();
        parallel.workers = 4;
        parallel.kill = KillSwitch::new();
        let (a, _) = run(&serial, None);
        let (b, _) = run(&parallel, None);
        assert_eq!(
            render_report(&serial.config(), &a.outcomes),
            render_report(&serial.config(), &b.outcomes),
            "worker count is not observable in the report"
        );
    }

    #[test]
    fn isolate_contains_panics_as_strings() {
        assert_eq!(isolate(|| 41 + 1).unwrap(), 42);
        let err = isolate(|| panic!("boom at stage {}", 3)).unwrap_err();
        assert!(err.contains("boom at stage 3"), "payload rendered: {err}");
    }

    #[test]
    fn expired_deadline_yields_zero_attempts() {
        let opts = batch(3, 1);
        let breakers = Mutex::new(SolverBreakers::default());
        let ctx = JobContext {
            corpus_seed: opts.corpus_seed,
            retry: opts.retry,
            chaos: None,
            budget: None,
            started: Instant::now(),
            deadline: Some(Duration::ZERO),
            breakers: &breakers,
        };
        let journal = Journal::create(Vec::new(), &opts.config()).unwrap();
        let out = run_corpus_job(&journal, &ctx, 0, 0, 1, Vec::new(), None).unwrap();
        assert_eq!(out.attempts, 0, "expired deadline permits zero attempts");
        assert_eq!(out.status, JobStatus::Failed);
        let text = String::from_utf8(journal.into_inner()).unwrap();
        assert!(
            !text.contains("\"type\":\"attempt\""),
            "no attempt record for a job that never ran"
        );
    }

    #[test]
    fn zero_eval_budget_degrades_repairs_to_unrepairable() {
        let opts = batch(7, 18);
        let (control, _) = run(&opts, None);
        let repaired = control
            .outcomes
            .iter()
            .find(|o| o.status == JobStatus::DataRepaired || o.status == JobStatus::ModelRepaired)
            .expect("corpus has a repairable job");
        let breakers = Mutex::new(SolverBreakers::default());
        let ctx = JobContext {
            corpus_seed: opts.corpus_seed,
            retry: opts.retry,
            chaos: None,
            budget: Some(Budget::unlimited().with_max_evaluations(0)),
            started: Instant::now(),
            deadline: None,
            breakers: &breakers,
        };
        let journal = Journal::create(Vec::new(), &opts.config()).unwrap();
        let out = run_corpus_job(&journal, &ctx, repaired.job, repaired.job, 1, Vec::new(), None)
            .unwrap();
        assert_eq!(
            out.status,
            JobStatus::Unrepairable,
            "a cap-0 budget exhausts every repair stage immediately"
        );
    }

    #[test]
    fn soft_kill_stops_early_and_resume_matches_control() {
        let mut control = batch(17, 8);
        control.retry.base = Duration::from_millis(1);
        control.retry.cap = Duration::from_millis(2);
        control.chaos = Some(ChaosSpec { panic: 0.4, nan: 0.2, slow: 0.0, seed: 6 });
        let (control_result, _) = run(&control, None);
        let control_report = render_report(&control.config(), &control_result.outcomes);

        let mut killed = control.clone();
        killed.kill = KillSwitch::new();
        killed.kill_after = Some(3);
        let (killed_result, killed_text) = run(&killed, None);
        assert!(killed_result.killed);
        assert!(killed_result.outcomes.len() < 8, "kill cut the batch short");
        let state = parse_journal(&killed_text).unwrap();
        assert!(!state.complete, "no summary in a killed journal");

        let mut resumed = control.clone();
        resumed.kill = KillSwitch::new();
        let (resumed_result, _) = run(&resumed, Some(&state));
        let resumed_report = render_report(&resumed.config(), &resumed_result.outcomes);
        assert_eq!(resumed_report, control_report, "resume is byte-identical to control");
    }

    #[test]
    fn truncation_at_every_byte_offset_parses_and_resumes_identically() {
        use crate::journal::parse_journal_bytes;
        use std::collections::HashSet;

        // A chaotic 3-job batch journals attempt, checkpoint, failure,
        // outcome and summary records, so the cuts below land inside every
        // record type and at every field boundary.
        let mut opts = batch(5, 3);
        opts.retry.base = Duration::from_millis(1);
        opts.retry.cap = Duration::from_millis(2);
        opts.chaos = Some(ChaosSpec { panic: 0.5, nan: 0.2, slow: 0.0, seed: 11 });
        let (control, text) = run(&opts, None);
        let control_report = render_report(&opts.config(), &control.outcomes);
        let bytes = text.as_bytes();
        let meta_end = text.find('\n').expect("meta line") + 1;

        let mut verified: HashSet<String> = HashSet::new();
        for cut in 0..=bytes.len() {
            let state = match parse_journal_bytes(&bytes[..cut]) {
                Ok(state) => state,
                Err(e) => {
                    assert!(
                        cut < meta_end,
                        "cut at byte {cut}: only a torn meta line may fail to parse, got {e}"
                    );
                    continue;
                }
            };
            // Distinct recovered states land one per complete record: a cut
            // inside a record tears its whole line off, recovering the same
            // state as the previous record boundary. Resume each distinct
            // state once — the Debug form is a faithful fingerprint — which
            // keeps the loop to ~one resume per journal line while still
            // asserting every single byte offset.
            if !verified.insert(format!("{state:?}")) {
                continue;
            }
            let mut resumed = opts.clone();
            resumed.kill = KillSwitch::new();
            let (result, _) = run(&resumed, Some(&state));
            assert_eq!(
                render_report(&resumed.config(), &result.outcomes),
                control_report,
                "resume from a journal cut at byte {cut}/{} diverged from the control report",
                bytes.len()
            );
        }
        assert!(
            verified.len() > 10,
            "expected one distinct recovery state per journal record, got {}",
            verified.len()
        );
    }
}
