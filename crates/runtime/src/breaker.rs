//! Per-backend circuit breakers for the checker's linear solvers.
//!
//! The checker records one `checker.backend.<name>.{ok,fail}` counter pair
//! per solve attempt (gauss–seidel, jacobi, direct). The batch executor
//! folds each finished job's counters into a [`SolverBreakers`] set; a
//! backend that fails `threshold` consecutive jobs trips **open** and is
//! skipped — under `LinearSolver::Auto` an open Gauss–Seidel breaker
//! routes jobs straight to the dense direct solver — until `cooldown`
//! subsequent jobs have passed, when a single half-open probe decides
//! whether it closes again.
//!
//! Breakers adapt in job-*completion* order, which depends on scheduling
//! when `workers > 1`; like PR 2's budget exhaustion they are therefore a
//! *performance* mechanism, documented as scheduling-dependent, and the
//! deterministic-report contract keeps them out of the final report (the
//! standard corpus solves small models directly, so they never trip
//! there).

use tml_checker::{CheckOptions, LinearSolver};
use tml_numerics::Diagnostics;

/// Where a breaker currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: requests are rerouted until the cooldown expires.
    Open,
    /// Cooldown expired: one probe request is allowed through.
    HalfOpen,
}

/// A count-based circuit breaker (no clocks — deterministic under replay).
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: u32,
    consecutive_failures: u32,
    cooldown_left: u32,
    state: BreakerState,
}

impl CircuitBreaker {
    /// A breaker that opens after `threshold` consecutive failures and
    /// half-opens after `cooldown` skipped observations.
    pub fn new(threshold: u32, cooldown: u32) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown: cooldown.max(1),
            consecutive_failures: 0,
            cooldown_left: 0,
            state: BreakerState::Closed,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether the next request may use this backend. While open, each
    /// call counts down the cooldown; when it reaches zero the breaker
    /// half-opens and admits one probe.
    pub fn allows(&mut self) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                self.cooldown_left = self.cooldown_left.saturating_sub(1);
                if self.cooldown_left == 0 {
                    self.state = BreakerState::HalfOpen;
                }
                false
            }
        }
    }

    /// Feeds one observation (a job's aggregate verdict for this backend).
    pub fn record(&mut self, ok: bool) {
        if ok {
            self.consecutive_failures = 0;
            self.state = BreakerState::Closed;
            return;
        }
        self.consecutive_failures += 1;
        if self.state == BreakerState::HalfOpen || self.consecutive_failures >= self.threshold {
            self.state = BreakerState::Open;
            self.cooldown_left = self.cooldown;
        }
    }
}

/// The three checker backends, each behind its own breaker.
#[derive(Debug, Clone)]
pub struct SolverBreakers {
    gauss_seidel: CircuitBreaker,
    jacobi: CircuitBreaker,
    direct: CircuitBreaker,
}

impl Default for SolverBreakers {
    fn default() -> Self {
        SolverBreakers {
            gauss_seidel: CircuitBreaker::new(3, 8),
            jacobi: CircuitBreaker::new(3, 8),
            direct: CircuitBreaker::new(5, 16),
        }
    }
}

impl SolverBreakers {
    /// Folds a finished job's diagnostics into the breakers: a backend
    /// with any failure this job counts as one failed observation, one
    /// with only successes as one healthy observation, untouched backends
    /// are not observed.
    pub fn observe(&mut self, diag: &Diagnostics) {
        for (name, breaker) in [
            ("gauss-seidel", &mut self.gauss_seidel),
            ("jacobi", &mut self.jacobi),
            ("direct", &mut self.direct),
        ] {
            let ok = diag.telemetry.counter(&format!("checker.backend.{name}.ok"));
            let fail = diag.telemetry.counter(&format!("checker.backend.{name}.fail"));
            if fail > 0 {
                breaker.record(false);
            } else if ok > 0 {
                breaker.record(true);
            }
        }
    }

    /// Adjusts a job's check options before it runs: with the
    /// Gauss–Seidel breaker open under [`LinearSolver::Auto`], iterative
    /// solves are skipped in favor of the dense direct backend.
    pub fn adjust(&mut self, opts: &mut CheckOptions) {
        if opts.solver == LinearSolver::Auto && !self.gauss_seidel.allows() {
            tml_telemetry::counter!("runtime.breaker.reroutes", 1);
            opts.solver = LinearSolver::Direct;
        }
    }

    /// State triple (gauss-seidel, jacobi, direct) for journaling.
    pub fn states(&self) -> (BreakerState, BreakerState, BreakerState) {
        (self.gauss_seidel.state(), self.jacobi.state(), self.direct.state())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_after_threshold_and_recovers_through_probe() {
        let mut b = CircuitBreaker::new(3, 2);
        assert!(b.allows());
        b.record(false);
        b.record(false);
        assert_eq!(b.state(), BreakerState::Closed, "below threshold");
        b.record(false);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allows(), "cooldown tick 1");
        assert!(!b.allows(), "cooldown tick 2 half-opens");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.allows(), "probe admitted");
        b.record(true);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_failure_reopens_immediately() {
        let mut b = CircuitBreaker::new(3, 1);
        for _ in 0..3 {
            b.record(false);
        }
        assert!(!b.allows(), "single cooldown tick");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record(false);
        assert_eq!(b.state(), BreakerState::Open, "one half-open failure re-trips");
    }

    #[test]
    fn gs_breaker_reroutes_auto_to_direct() {
        let mut set = SolverBreakers::default();
        let mut diag = Diagnostics::new();
        diag.telemetry.incr("checker.backend.gauss-seidel.fail", 2);
        for _ in 0..3 {
            set.observe(&diag);
        }
        let mut opts = CheckOptions::default();
        assert_eq!(opts.solver, LinearSolver::Auto);
        set.adjust(&mut opts);
        assert_eq!(opts.solver, LinearSolver::Direct);
        // An explicitly pinned solver is never overridden.
        let mut pinned = CheckOptions { solver: LinearSolver::GaussSeidel, ..Default::default() };
        let mut set2 = SolverBreakers::default();
        for _ in 0..3 {
            set2.observe(&diag);
        }
        set2.adjust(&mut pinned);
        assert_eq!(pinned.solver, LinearSolver::GaussSeidel);
    }

    #[test]
    fn healthy_observations_keep_breakers_closed() {
        let mut set = SolverBreakers::default();
        let mut diag = Diagnostics::new();
        diag.telemetry.incr("checker.backend.direct.ok", 4);
        for _ in 0..20 {
            set.observe(&diag);
        }
        let (gs, jac, direct) = set.states();
        assert_eq!(gs, BreakerState::Closed, "unobserved backend stays closed");
        assert_eq!(jac, BreakerState::Closed);
        assert_eq!(direct, BreakerState::Closed);
    }
}
