//! Per-backend circuit breakers for the checker's linear solvers.
//!
//! The checker records one `checker.backend.<name>.{ok,fail}` counter pair
//! per solve attempt (scc, gauss–seidel, jacobi, direct, interval, robust).
//! The batch executor
//! folds each finished job's counters into a [`SolverBreakers`] set; a
//! backend that fails `threshold` consecutive jobs trips **open** and is
//! skipped — under `LinearSolver::Auto` an open Gauss–Seidel breaker
//! routes jobs straight to the dense direct solver — until it half-opens
//! again, when a single probe decides whether it closes.
//!
//! Two recovery modes govern the open→half-open transition:
//!
//! * **Count-based** (the default): `cooldown` skipped observations
//!   half-open the breaker. No clocks — deterministic under replay, which
//!   is what the batch runtime's byte-identity contract needs.
//! * **Time-based** ([`CircuitBreaker::with_recovery`]): the breaker
//!   half-opens once `recovery` has elapsed since it tripped, measured on
//!   an injected [`Clock`] so tests advance time instead of sleeping.
//!   This is what a long-running service wants — a backend that failed at
//!   09:00 should get its probe at 09:00:05 whether or not any traffic
//!   arrived in between.
//!
//! Breakers adapt in job-*completion* order, which depends on scheduling
//! when `workers > 1`; like PR 2's budget exhaustion they are therefore a
//! *performance* mechanism, documented as scheduling-dependent, and the
//! deterministic-report contract keeps them out of the final report (the
//! standard corpus solves small models directly, so they never trip
//! there).

use std::time::{Duration, Instant};

use tml_checker::{CheckOptions, LinearSolver};
use tml_numerics::Diagnostics;

use crate::clock::SharedClock;

/// Where a breaker currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: requests are rerouted until the cooldown expires.
    Open,
    /// Cooldown expired: one probe request is allowed through.
    HalfOpen,
}

impl BreakerState {
    /// Stable wire name (`/readyz` payloads, journals).
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// How an open breaker decides to admit its half-open probe.
#[derive(Clone)]
enum Recovery {
    /// Count `cooldown` skipped observations, then half-open.
    Count { cooldown: u32, cooldown_left: u32 },
    /// Half-open once `recovery` has elapsed since the breaker opened.
    Time { recovery: Duration, clock: SharedClock, opened_at: Option<Instant> },
}

impl std::fmt::Debug for Recovery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Recovery::Count { cooldown, cooldown_left } => f
                .debug_struct("Count")
                .field("cooldown", cooldown)
                .field("cooldown_left", cooldown_left)
                .finish(),
            Recovery::Time { recovery, opened_at, .. } => f
                .debug_struct("Time")
                .field("recovery", recovery)
                .field("opened_at", opened_at)
                .finish(),
        }
    }
}

/// A circuit breaker with pluggable (count- or time-based) recovery.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    threshold: u32,
    consecutive_failures: u32,
    recovery: Recovery,
    state: BreakerState,
}

impl CircuitBreaker {
    /// A count-based breaker that opens after `threshold` consecutive
    /// failures and half-opens after `cooldown` skipped observations.
    pub fn new(threshold: u32, cooldown: u32) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            consecutive_failures: 0,
            recovery: Recovery::Count { cooldown: cooldown.max(1), cooldown_left: 0 },
            state: BreakerState::Closed,
        }
    }

    /// A time-based breaker: opens after `threshold` consecutive failures
    /// and half-opens once `recovery` has elapsed on `clock` since the
    /// trip. The elapsed check runs inside [`allows`](Self::allows), so an
    /// idle service still recovers as soon as the next request arrives.
    pub fn with_recovery(threshold: u32, recovery: Duration, clock: SharedClock) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            consecutive_failures: 0,
            recovery: Recovery::Time { recovery, clock, opened_at: None },
            state: BreakerState::Closed,
        }
    }

    /// Current state. Time-based breakers report their state lazily: an
    /// open breaker whose recovery window already elapsed still reads
    /// `Open` until the next [`allows`](Self::allows) call promotes it.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether the next request may use this backend.
    ///
    /// While open, a count-based breaker counts down its cooldown (the
    /// transitioning call still answers `false`; the following one admits
    /// the probe). A time-based breaker half-opens — and admits the probe
    /// immediately — once the recovery window has elapsed.
    pub fn allows(&mut self) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => match &mut self.recovery {
                Recovery::Count { cooldown_left, .. } => {
                    *cooldown_left = cooldown_left.saturating_sub(1);
                    if *cooldown_left == 0 {
                        self.state = BreakerState::HalfOpen;
                    }
                    false
                }
                Recovery::Time { recovery, clock, opened_at } => {
                    let elapsed = opened_at.map(|t| clock.now().saturating_duration_since(t));
                    if elapsed.is_some_and(|e| e >= *recovery) {
                        self.state = BreakerState::HalfOpen;
                        true
                    } else {
                        false
                    }
                }
            },
        }
    }

    /// Feeds one observation (a job's aggregate verdict for this backend).
    pub fn record(&mut self, ok: bool) {
        if ok {
            self.consecutive_failures = 0;
            self.state = BreakerState::Closed;
            return;
        }
        self.consecutive_failures += 1;
        if self.state == BreakerState::HalfOpen || self.consecutive_failures >= self.threshold {
            self.state = BreakerState::Open;
            match &mut self.recovery {
                Recovery::Count { cooldown, cooldown_left } => *cooldown_left = *cooldown,
                Recovery::Time { clock, opened_at, .. } => *opened_at = Some(clock.now()),
            }
        }
    }

    /// A point-in-time snapshot for readiness endpoints and journals.
    pub fn snapshot(&self) -> BreakerSnapshot {
        BreakerSnapshot { state: self.state, consecutive_failures: self.consecutive_failures }
    }
}

/// Point-in-time view of one breaker, cheap to copy into responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerSnapshot {
    /// Where the breaker stands.
    pub state: BreakerState,
    /// Consecutive failed observations (resets on success).
    pub consecutive_failures: u32,
}

/// Point-in-time view of all backend breakers, in the fixed order
/// (scc, gauss-seidel, jacobi, direct, interval, robust) — the shape
/// `/readyz` serializes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakersSnapshot {
    /// The SCC-decomposed backend (first stage under `Auto`).
    pub scc: BreakerSnapshot,
    /// The Gauss–Seidel backend.
    pub gauss_seidel: BreakerSnapshot,
    /// The Jacobi backend.
    pub jacobi: BreakerSnapshot,
    /// The dense direct backend (the last-resort solver).
    pub direct: BreakerSnapshot,
    /// The interval (two-sided) iteration backend.
    pub interval: BreakerSnapshot,
    /// The robust (min-max) value-iteration backend for interval models.
    pub robust: BreakerSnapshot,
}

impl BreakersSnapshot {
    /// `(wire name, snapshot)` pairs in the fixed backend order.
    pub fn named(&self) -> [(&'static str, BreakerSnapshot); 6] {
        [
            ("scc", self.scc),
            ("gauss_seidel", self.gauss_seidel),
            ("jacobi", self.jacobi),
            ("direct", self.direct),
            ("interval", self.interval),
            ("robust", self.robust),
        ]
    }

    /// Whether any backend breaker is currently open.
    pub fn any_open(&self) -> bool {
        self.named().iter().any(|(_, b)| b.state == BreakerState::Open)
    }
}

/// The six checker backends, each behind its own breaker.
#[derive(Debug, Clone)]
pub struct SolverBreakers {
    scc: CircuitBreaker,
    gauss_seidel: CircuitBreaker,
    jacobi: CircuitBreaker,
    direct: CircuitBreaker,
    interval: CircuitBreaker,
    robust: CircuitBreaker,
}

impl Default for SolverBreakers {
    fn default() -> Self {
        SolverBreakers {
            scc: CircuitBreaker::new(3, 8),
            gauss_seidel: CircuitBreaker::new(3, 8),
            jacobi: CircuitBreaker::new(3, 8),
            direct: CircuitBreaker::new(5, 16),
            interval: CircuitBreaker::new(3, 8),
            robust: CircuitBreaker::new(3, 8),
        }
    }
}

impl SolverBreakers {
    /// A breaker set with time-based recovery on every backend — the
    /// long-running-service configuration ([`CircuitBreaker::with_recovery`]).
    pub fn with_recovery(recovery: Duration, clock: SharedClock) -> Self {
        SolverBreakers {
            scc: CircuitBreaker::with_recovery(3, recovery, clock.clone()),
            gauss_seidel: CircuitBreaker::with_recovery(3, recovery, clock.clone()),
            jacobi: CircuitBreaker::with_recovery(3, recovery, clock.clone()),
            direct: CircuitBreaker::with_recovery(5, recovery, clock.clone()),
            interval: CircuitBreaker::with_recovery(3, recovery, clock.clone()),
            robust: CircuitBreaker::with_recovery(3, recovery, clock),
        }
    }

    /// Folds a finished job's diagnostics into the breakers: a backend
    /// with any failure this job counts as one failed observation, one
    /// with only successes as one healthy observation, untouched backends
    /// are not observed.
    pub fn observe(&mut self, diag: &Diagnostics) {
        for (name, breaker) in [
            ("scc", &mut self.scc),
            ("gauss-seidel", &mut self.gauss_seidel),
            ("jacobi", &mut self.jacobi),
            ("direct", &mut self.direct),
            ("interval", &mut self.interval),
            ("robust", &mut self.robust),
        ] {
            let ok = diag.telemetry.counter(&format!("checker.backend.{name}.ok"));
            let fail = diag.telemetry.counter(&format!("checker.backend.{name}.fail"));
            if fail > 0 {
                breaker.record(false);
            } else if ok > 0 {
                breaker.record(true);
            }
        }
    }

    /// Adjusts a job's check options before it runs: with the SCC breaker
    /// open under [`LinearSolver::Auto`], the SCC first stage is skipped
    /// (jobs go straight to monolithic iteration); with the Gauss–Seidel
    /// breaker open, iterative solves are skipped in favor of the dense
    /// direct backend.
    pub fn adjust(&mut self, opts: &mut CheckOptions) {
        if opts.solver == LinearSolver::Auto && opts.scc_enabled && !self.scc.allows() {
            tml_telemetry::counter!("runtime.breaker.scc_disables", 1);
            opts.scc_enabled = false;
        }
        if opts.solver == LinearSolver::Auto && !self.gauss_seidel.allows() {
            tml_telemetry::counter!("runtime.breaker.reroutes", 1);
            opts.solver = LinearSolver::Direct;
        }
        if opts.solver == LinearSolver::Auto && opts.robust_vi_enabled && !self.robust.allows() {
            tml_telemetry::counter!("runtime.breaker.robust_disables", 1);
            opts.robust_vi_enabled = false;
        }
    }

    /// State triple (gauss-seidel, jacobi, direct) for journaling.
    pub fn states(&self) -> (BreakerState, BreakerState, BreakerState) {
        (self.gauss_seidel.state(), self.jacobi.state(), self.direct.state())
    }

    /// Snapshot of all six breakers for readiness endpoints.
    pub fn snapshot(&self) -> BreakersSnapshot {
        BreakersSnapshot {
            scc: self.scc.snapshot(),
            gauss_seidel: self.gauss_seidel.snapshot(),
            jacobi: self.jacobi.snapshot(),
            direct: self.direct.snapshot(),
            interval: self.interval.snapshot(),
            robust: self.robust.snapshot(),
        }
    }

    /// Whether the last-resort direct backend is currently open — the
    /// fail-closed admission signal: with no healthy backend of last
    /// resort, new work should be refused, not queued.
    pub fn direct_open(&self) -> bool {
        self.direct.state() == BreakerState::Open
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use std::sync::Arc;

    #[test]
    fn opens_after_threshold_and_recovers_through_probe() {
        let mut b = CircuitBreaker::new(3, 2);
        assert!(b.allows());
        b.record(false);
        b.record(false);
        assert_eq!(b.state(), BreakerState::Closed, "below threshold");
        b.record(false);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allows(), "cooldown tick 1");
        assert!(!b.allows(), "cooldown tick 2 half-opens");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.allows(), "probe admitted");
        b.record(true);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_failure_reopens_immediately() {
        let mut b = CircuitBreaker::new(3, 1);
        for _ in 0..3 {
            b.record(false);
        }
        assert!(!b.allows(), "single cooldown tick");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record(false);
        assert_eq!(b.state(), BreakerState::Open, "one half-open failure re-trips");
    }

    #[test]
    fn time_based_breaker_half_opens_after_recovery_elapses() {
        let clock = ManualClock::new();
        let mut b =
            CircuitBreaker::with_recovery(2, Duration::from_millis(100), Arc::new(clock.clone()));
        b.record(false);
        b.record(false);
        assert_eq!(b.state(), BreakerState::Open);
        // No amount of traffic half-opens it before the window elapses.
        for _ in 0..50 {
            assert!(!b.allows(), "recovery window not elapsed");
        }
        clock.advance(Duration::from_millis(99));
        assert!(!b.allows(), "1ms short of the window");
        clock.advance(Duration::from_millis(1));
        assert!(b.allows(), "window elapsed: probe admitted immediately");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // A failed probe re-trips and restarts the window from now.
        b.record(false);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allows());
        clock.advance(Duration::from_millis(100));
        assert!(b.allows(), "second probe after a full new window");
        b.record(true);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn time_based_breaker_recovers_while_idle() {
        // The service shape: the breaker trips, no traffic arrives for a
        // while, and the very next request gets the probe.
        let clock = ManualClock::new();
        let mut b =
            CircuitBreaker::with_recovery(1, Duration::from_secs(5), Arc::new(clock.clone()));
        b.record(false);
        assert_eq!(b.state(), BreakerState::Open);
        clock.advance(Duration::from_secs(60));
        assert!(b.allows(), "first request after a long idle period probes");
    }

    #[test]
    fn snapshots_reflect_state_and_failure_counts() {
        let mut set = SolverBreakers::default();
        let mut diag = Diagnostics::new();
        diag.telemetry.incr("checker.backend.gauss-seidel.fail", 1);
        set.observe(&diag);
        set.observe(&diag);
        let snap = set.snapshot();
        assert_eq!(snap.gauss_seidel.state, BreakerState::Closed);
        assert_eq!(snap.gauss_seidel.consecutive_failures, 2);
        assert!(!snap.any_open());
        set.observe(&diag);
        let snap = set.snapshot();
        assert_eq!(snap.gauss_seidel.state, BreakerState::Open);
        assert!(snap.any_open());
        assert!(!set.direct_open(), "only the GS backend tripped");
        let names: Vec<&str> = snap.named().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["scc", "gauss_seidel", "jacobi", "direct", "interval", "robust"]);
        assert_eq!(BreakerState::HalfOpen.name(), "half_open");
    }

    #[test]
    fn gs_breaker_reroutes_auto_to_direct() {
        let mut set = SolverBreakers::default();
        let mut diag = Diagnostics::new();
        diag.telemetry.incr("checker.backend.gauss-seidel.fail", 2);
        for _ in 0..3 {
            set.observe(&diag);
        }
        let mut opts = CheckOptions::default();
        assert_eq!(opts.solver, LinearSolver::Auto);
        set.adjust(&mut opts);
        assert_eq!(opts.solver, LinearSolver::Direct);
        // An explicitly pinned solver is never overridden.
        let mut pinned = CheckOptions { solver: LinearSolver::GaussSeidel, ..Default::default() };
        let mut set2 = SolverBreakers::default();
        for _ in 0..3 {
            set2.observe(&diag);
        }
        set2.adjust(&mut pinned);
        assert_eq!(pinned.solver, LinearSolver::GaussSeidel);
    }

    #[test]
    fn healthy_observations_keep_breakers_closed() {
        let mut set = SolverBreakers::default();
        let mut diag = Diagnostics::new();
        diag.telemetry.incr("checker.backend.direct.ok", 4);
        for _ in 0..20 {
            set.observe(&diag);
        }
        let (gs, jac, direct) = set.states();
        assert_eq!(gs, BreakerState::Closed, "unobserved backend stays closed");
        assert_eq!(jac, BreakerState::Closed);
        assert_eq!(direct, BreakerState::Closed);
        for (_, snap) in set.snapshot().named() {
            assert_eq!(snap.state, BreakerState::Closed);
        }
    }

    #[test]
    fn robust_breaker_disables_robust_vi_under_auto() {
        let mut set = SolverBreakers::default();
        let mut diag = Diagnostics::new();
        diag.telemetry.incr("checker.backend.robust.fail", 1);
        for _ in 0..3 {
            set.observe(&diag);
        }
        let mut opts = CheckOptions::default();
        assert!(opts.robust_vi_enabled);
        set.adjust(&mut opts);
        assert!(!opts.robust_vi_enabled, "open robust breaker clears robust VI");
        assert_eq!(opts.solver, LinearSolver::Auto);
        // A pinned solver keeps robust VI even with the breaker open.
        let mut pinned = CheckOptions { solver: LinearSolver::Direct, ..Default::default() };
        set.adjust(&mut pinned);
        assert!(pinned.robust_vi_enabled);
    }

    #[test]
    fn scc_breaker_disables_scc_stage_under_auto() {
        let mut set = SolverBreakers::default();
        let mut diag = Diagnostics::new();
        diag.telemetry.incr("checker.backend.scc.fail", 1);
        for _ in 0..3 {
            set.observe(&diag);
        }
        let mut opts = CheckOptions::default();
        assert!(opts.scc_enabled);
        set.adjust(&mut opts);
        assert!(!opts.scc_enabled, "open scc breaker clears the scc stage");
        assert_eq!(opts.solver, LinearSolver::Auto, "monolithic chain still allowed");
        // A pinned solver is left alone even with the scc breaker open.
        let mut pinned = CheckOptions { solver: LinearSolver::Scc, ..Default::default() };
        set.adjust(&mut pinned);
        assert!(pinned.scc_enabled);
        assert_eq!(pinned.solver, LinearSolver::Scc);
    }
}
